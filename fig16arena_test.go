package cyclops

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// fig16ArenaTestGrid is a trimmed sweep — one packed 4×4 m venue, two
// serving caps — that exercises the full pipeline (layout, occlusion
// geometry, chaos slot model, backhaul contention, capacity lines)
// affordably under the race detector.
var fig16ArenaTestGrid = fig16ArenaGrid{
	areaM2:     16,
	usersPerTX: []int{2, 8},
	densities:  []float64{2.0},
	traceLen:   15 * time.Second,
}

// TestFig16ArenaWorkerDeterminism pins the arena sweep to the repo's
// contract: bit-identical results — and byte-identical rendered reports —
// at any worker count.
func TestFig16ArenaWorkerDeterminism(t *testing.T) {
	serial, err := fig16ArenaRun(3, 1, fig16ArenaTestGrid)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(serial.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(serial.Cells))
	}
	var handovers, served int
	for _, c := range serial.Cells {
		handovers += c.Handovers
		served += c.Served
	}
	if handovers == 0 {
		t.Fatal("packed venue fired no handovers — test is vacuous")
	}
	if served == 0 {
		t.Fatal("no users served")
	}
	for _, workers := range []int{2, 4} {
		got, err := fig16ArenaRun(3, workers, fig16ArenaTestGrid)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: Fig16ArenaResult differs from serial run", workers)
		}
		if got.Render() != serial.Render() {
			t.Errorf("workers=%d: rendered report differs from serial run", workers)
		}
	}
}

// TestFig16ArenaCapFewerServed: halving the serving cap in a packed venue
// must strand users without changing who the crowd occludes.
func TestFig16ArenaCapFewerServed(t *testing.T) {
	res, err := fig16ArenaRun(3, 2, fig16ArenaTestGrid)
	if err != nil {
		t.Fatal(err)
	}
	small, big := res.Cells[0], res.Cells[1]
	if small.UsersPerTX >= big.UsersPerTX {
		t.Fatalf("grid order changed: %d vs %d", small.UsersPerTX, big.UsersPerTX)
	}
	if small.Served >= big.Served || small.Unserved <= big.Unserved {
		t.Errorf("cap %d served %d/unserved %d vs cap %d served %d/unserved %d",
			small.UsersPerTX, small.Served, small.Unserved,
			big.UsersPerTX, big.Served, big.Unserved)
	}
	if small.Users != big.Users {
		t.Errorf("crowd size changed with the cap: %d vs %d", small.Users, big.Users)
	}
}

// TestFig16ArenaRender pins the report shape the arena-smoke target
// greps: a capacity line per serving cap.
func TestFig16ArenaRender(t *testing.T) {
	res, err := fig16ArenaRun(3, 2, fig16ArenaTestGrid)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if n := strings.Count(out, "capacity:"); n != 2 {
		t.Errorf("rendered %d capacity lines, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "Fig 16-arena") {
		t.Errorf("missing header:\n%s", out)
	}
}

// TestFig16ArenaAt covers the -users/-density single-venue entry point.
func TestFig16ArenaAt(t *testing.T) {
	res, err := Fig16ArenaAt(3, 32, 2.0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.Users != 32 || c.UsersPerTX != 4 {
		t.Errorf("single venue cell: %+v", c)
	}
	if c.TXs == 0 || c.Served == 0 {
		t.Errorf("degenerate venue: %+v", c)
	}
}
