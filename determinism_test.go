package cyclops

// The determinism suite: the parallel experiment engine must produce
// bit-identical results for any worker count. These tests pin that
// contract at the top level — the full Fig 16 corpus pipeline (500 trace
// generations + 500 slot-model simulations) — both with explicit worker
// counts and through the process-wide default that cyclops-bench's
// -parallel flag sets.

import (
	"reflect"
	"testing"
	"time"

	"cyclops/internal/parallel"
)

func TestFig16WorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×3 in -short mode")
	}
	serial := Fig16Workers(3, 1)
	for _, workers := range []int{4, 8} {
		got := Fig16Workers(3, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: Fig16Result differs from serial run", workers)
		}
	}
}

// TestFig16HandoverWorkerDeterminism pins the handover sweep to the same
// contract: the per-episode rescue draws are seeded per trace, so the
// rescue/outage split — and with it every availability figure — must be
// bit-identical at any worker count. A trimmed grid (the harsh occlusion
// corner, 1 and 2 TXs) keeps the race-detector run affordable while
// exercising the identical pipeline as the full sweep.
func TestFig16HandoverWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×3 in -short mode")
	}
	grid := fig16HandoverGrid{
		txCounts: []int{1, 2},
		spacings: []float64{1.4},
		occl: []struct {
			rate float64
			dur  time.Duration
		}{{2, 500 * time.Millisecond}},
	}
	serial, err := fig16HandoverRun(3, 1, grid)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(serial.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(serial.Cells))
	}
	if serial.Cells[1].Handovers == 0 {
		t.Fatal("2-TX cell fired no handovers — test is vacuous")
	}
	for _, workers := range []int{2, 4} {
		got, err := fig16HandoverRun(3, workers, grid)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: Fig16HandoverResult differs from serial run", workers)
		}
	}
}

func TestFig16DefaultWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×2 in -short mode")
	}
	// The -parallel flag path: SetDefaultWorkers must not change results.
	serial := Fig16Workers(3, 1)
	parallel.SetDefaultWorkers(6)
	defer parallel.SetDefaultWorkers(0)
	if got := Fig16(3); !reflect.DeepEqual(got, serial) {
		t.Error("Fig16 under SetDefaultWorkers(6) differs from serial run")
	}
}

// TestFig16MetricsDeterminism pins the observability side of the
// contract: the corpus's merged metrics snapshot — rendered all the way
// to Prometheus text — must be byte-identical for any worker count.
// (The process-default registry is exempt: it aggregates concurrent
// work. The per-corpus snapshot is the deterministic surface.)
func TestFig16MetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×4 in -short mode")
	}
	serial := Fig16Workers(3, 1).Corpus.Metrics.Exposition()
	if serial == "" {
		t.Fatal("serial corpus produced an empty metrics exposition")
	}
	for _, workers := range []int{4, 8} {
		got := Fig16Workers(3, workers).Corpus.Metrics.Exposition()
		if got != serial {
			t.Errorf("workers=%d: metrics exposition differs from serial run", workers)
		}
	}
	parallel.SetDefaultWorkers(6)
	defer parallel.SetDefaultWorkers(0)
	if got := Fig16(3).Corpus.Metrics.Exposition(); got != serial {
		t.Error("metrics exposition under SetDefaultWorkers(6) differs from serial run")
	}
}
