package cyclops

// The determinism suite: the parallel experiment engine must produce
// bit-identical results for any worker count. These tests pin that
// contract at the top level — the full Fig 16 corpus pipeline (500 trace
// generations + 500 slot-model simulations) — both with explicit worker
// counts and through the process-wide default that cyclops-bench's
// -parallel flag sets.

import (
	"reflect"
	"testing"

	"cyclops/internal/parallel"
)

func TestFig16WorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×3 in -short mode")
	}
	serial := Fig16Workers(3, 1)
	for _, workers := range []int{4, 8} {
		got := Fig16Workers(3, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: Fig16Result differs from serial run", workers)
		}
	}
}

func TestFig16DefaultWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×2 in -short mode")
	}
	// The -parallel flag path: SetDefaultWorkers must not change results.
	serial := Fig16Workers(3, 1)
	parallel.SetDefaultWorkers(6)
	defer parallel.SetDefaultWorkers(0)
	if got := Fig16(3); !reflect.DeepEqual(got, serial) {
		t.Error("Fig16 under SetDefaultWorkers(6) differs from serial run")
	}
}

// TestFig16MetricsDeterminism pins the observability side of the
// contract: the corpus's merged metrics snapshot — rendered all the way
// to Prometheus text — must be byte-identical for any worker count.
// (The process-default registry is exempt: it aggregates concurrent
// work. The per-corpus snapshot is the deterministic surface.)
func TestFig16MetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×4 in -short mode")
	}
	serial := Fig16Workers(3, 1).Corpus.Metrics.Exposition()
	if serial == "" {
		t.Fatal("serial corpus produced an empty metrics exposition")
	}
	for _, workers := range []int{4, 8} {
		got := Fig16Workers(3, workers).Corpus.Metrics.Exposition()
		if got != serial {
			t.Errorf("workers=%d: metrics exposition differs from serial run", workers)
		}
	}
	parallel.SetDefaultWorkers(6)
	defer parallel.SetDefaultWorkers(0)
	if got := Fig16(3).Corpus.Metrics.Exposition(); got != serial {
		t.Error("metrics exposition under SetDefaultWorkers(6) differs from serial run")
	}
}
