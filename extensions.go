package cyclops

import (
	"fmt"
	"strings"
	"time"

	"cyclops/internal/baseline"
	"cyclops/internal/geom"
	"cyclops/internal/handover"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// This file exposes the paper's extension/future-work directions as
// experiments: the multi-TX handover sketched in §3, the mmWave baseline
// comparison of §1/§2.1, the eye-safety analysis of footnote 12, and the
// §6 40G+ WDM study.

// ------------------------------------------------------ §3 handover —

// HandoverResult compares single-TX and two-TX deployments under
// identical occlusion traffic.
type HandoverResult struct {
	SingleTX handover.Result
	TwoTX    handover.Result
}

// ExtensionHandover runs the §3 occlusion study: an occluder parks on the
// primary path half of each 20 s cycle; the two-TX array hands the link
// over, the single-TX baseline waits it out.
func ExtensionHandover(seed int64) (HandoverResult, error) {
	positions := []geom.Vec3{
		{X: 0, Y: 0, Z: link.CeilingHeight},
		{X: 1.2, Y: 0.8, Z: link.CeilingHeight},
	}
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: 60 * time.Second}

	run := func(enable bool) (handover.Result, error) {
		a, err := handover.NewArray(Link10G, seed, positions)
		if err != nil {
			return handover.Result{}, err
		}
		mid := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
		away := mid.Add(geom.V(-2, -2, 0))
		a.Occluders = []handover.Occluder{{
			Radius: 0.15,
			Path: func(t time.Duration) geom.Vec3 {
				if (t/time.Second)%20 >= 10 {
					return mid
				}
				return away
			},
		}}
		return a.Run(handover.RunOptions{Program: prog, Enable: enable})
	}

	var r HandoverResult
	var err error
	if r.SingleTX, err = run(false); err != nil {
		return r, err
	}
	if r.TwoTX, err = run(true); err != nil {
		return r, err
	}
	return r, nil
}

// Render prints the handover comparison.
func (r HandoverResult) Render() string {
	return fmt.Sprintf(`Extension: multi-TX handover under periodic occlusion (§3)
  single TX: light %5.1f%% of run, link up %5.1f%%
  two TXs:   light %5.1f%% of run, link up %5.1f%%, %d handovers
`,
		r.SingleTX.LightFraction*100, r.SingleTX.UpFraction*100,
		r.TwoTX.LightFraction*100, r.TwoTX.UpFraction*100, r.TwoTX.Handovers)
}

// ------------------------------------------------ mmWave baseline —

// BaselineResult compares Cyclops against the 802.11ad-class baseline on
// identical normal-use motion.
type BaselineResult struct {
	MmWaveGoodputGbps  float64
	MmWaveUpFraction   float64
	CyclopsGoodputGbps float64
	CyclopsUpFraction  float64
	// Video verdicts: can each link carry the profile? (delivered
	// fraction of raw 4K30 frames.)
	MmWave4K30Delivered  float64
	Cyclops4K30Delivered float64
}

// BaselineMmWave runs the §1 comparison: the same gentle head motion over
// an 802.11ad link and over the calibrated 10G Cyclops link.
func BaselineMmWave(seed int64) (BaselineResult, error) {
	var r BaselineResult

	// Typical normal-use intensity (the Fig 3 distribution's bulk, not
	// its extreme tail — sustained 19 deg/s sits right at the 10G
	// link's angular threshold, as the paper's own Table 3 shows).
	prog := HandHeld(0.10, 0.22, 20*time.Second, seed)
	mm := baseline.NewMmWave().Run(prog, nil)
	r.MmWaveGoodputGbps = mm.MeanGoodputGbps
	r.MmWaveUpFraction = mm.UpFraction

	sys := NewSystem(Link10G, seed)
	if _, err := sys.Calibrate(); err != nil {
		return r, err
	}
	res, err := sys.Run(RunOptions{
		Program:     HandHeld(0.10, 0.22, 20*time.Second, seed),
		SampleEvery: time.Millisecond,
	})
	if err != nil {
		return r, err
	}
	var sum float64
	for _, w := range res.Windows {
		sum += w.Gbps
	}
	if len(res.Windows) > 0 {
		r.CyclopsGoodputGbps = sum / float64(len(res.Windows))
	}
	r.CyclopsUpFraction = res.UpFraction

	// Raw 4K30 over each: the video the renderer actually wants to push.
	mmSamples := mmToSamples(mm)
	r.MmWave4K30Delivered = StreamVideo(mmSamples, Video4K30, baseline.NewMmWave().PeakGoodputGbps).DeliveredFraction()
	r.Cyclops4K30Delivered = StreamVideo(res, Video4K30, 9.4).DeliveredFraction()
	return r, nil
}

// mmToSamples adapts a baseline run to the StreamVideo input: one sample
// per throughput window.
func mmToSamples(m baseline.Result) RunResult {
	var rr RunResult
	for _, w := range m.Windows {
		rr.Samples = append(rr.Samples, Sample{At: w.Start, Up: w.Gbps > 0})
	}
	rr.Windows = m.Windows
	return rr
}

// Render prints the baseline comparison.
func (r BaselineResult) Render() string {
	return fmt.Sprintf(`Baseline: 802.11ad mmWave vs Cyclops 10G, identical normal-use motion (§1)
  mmWave:  %5.2f Gbps mean goodput, up %5.1f%%, raw 4K30 delivered %4.0f%%
  Cyclops: %5.2f Gbps mean goodput, up %5.1f%%, raw 4K30 delivered %4.0f%%
  (mmWave shrugs off motion but cannot carry the §2.1 video rates)
`,
		r.MmWaveGoodputGbps, r.MmWaveUpFraction*100, r.MmWave4K30Delivered*100,
		r.CyclopsGoodputGbps, r.CyclopsUpFraction*100, r.Cyclops4K30Delivered*100)
}

// ------------------------------------------------ eye safety (fn 12) —

// EyeSafetyTable evaluates every standard design.
func EyeSafetyTable() string {
	var b strings.Builder
	b.WriteString("Eye safety (IEC 60825-1 Class 1 at 1550 nm, footnote 12):\n")
	for _, c := range []LinkConfig{Link10GCollimated, Link10GTable1, Link10G, Link25G} {
		fmt.Fprintf(&b, "  %v\n", c.EyeSafety())
	}
	return b.String()
}

// ---------------------------------------------------- §6 40G WDM —

// FutureWork40G runs the §6 lane analysis for both collimator options.
func FutureWork40G() string {
	var b strings.Builder
	b.WriteString("Future work: 40G WDM link (§6)\n")
	for _, cfg := range []optics.WDMConfig{optics.WDM40GStandard, optics.WDM40GCustom} {
		r := cfg.Evaluate()
		fmt.Fprintf(&b, "  %v\n", r)
		for _, l := range r.Lanes {
			status := "ok"
			if !l.Operational {
				status = "FAILS budget"
			}
			fmt.Fprintf(&b, "    %.2f nm: penalty %4.1f dB, peak %6.1f dBm — %s\n",
				l.Lane.WavelengthNM, l.PenaltyDB, l.PeakDBm, status)
		}
	}
	b.WriteString("  (the TP mechanism is unchanged; only the capture optics need work)\n")
	return b.String()
}
