package cyclops

import (
	"reflect"
	"testing"
	"time"
)

// fig16HybridTrim is the CI-sized sweep: the identical pipeline on a
// corpus small enough to run under -race.
var fig16HybridTrim = fig16HybridGrid{n: 32, length: 20 * time.Second}

func fig16HybridCell(t *testing.T, r Fig16HybridResult, sched, medium string) Fig16HybridCell {
	t.Helper()
	for _, c := range r.Cells {
		if c.Schedule == sched && c.Medium == medium {
			return c
		}
	}
	t.Fatalf("no cell %s/%s", sched, medium)
	return Fig16HybridCell{}
}

// The sweep is bit-identical at any worker count — the acceptance
// criterion the corpus engine's shard-order fold guarantees.
func TestFig16HybridWorkerDeterminism(t *testing.T) {
	run := func(workers int) Fig16HybridResult {
		r, err := fig16HybridRun(5, workers, fig16HybridTrim)
		if err != nil {
			t.Fatalf("fig16HybridRun(workers=%d): %v", workers, err)
		}
		return r
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d result differs from serial", w)
		}
	}
	if base.Render() == "" {
		t.Fatal("empty render")
	}
}

// On the haze ramp the hybrid arm must beat FSO-only availability by at
// least five points with no policy flap — the recorded-sweep acceptance
// criteria — while the occlusion storm (physical, blocks both media)
// keeps the three arms honest.
func TestFig16HybridHazeSeparation(t *testing.T) {
	r, err := fig16HybridRun(5, 0, fig16HybridTrim)
	if err != nil {
		t.Fatalf("fig16HybridRun: %v", err)
	}
	if len(r.Cells) != 9 {
		t.Fatalf("got %d cells, want 9", len(r.Cells))
	}

	fso := fig16HybridCell(t, r, "haze-ramp", "fso")
	mm := fig16HybridCell(t, r, "haze-ramp", "mmwave")
	hy := fig16HybridCell(t, r, "haze-ramp", "hybrid")
	if fso.OnScheduleHealthy() {
		t.Fatalf("haze ramp barely hurt FSO (mean %v) — scenario too weak", fso.MeanAvailability)
	}
	if hy.MeanAvailability < fso.MeanAvailability+0.05 {
		t.Fatalf("hybrid %v did not beat FSO-only %v by 5 points",
			hy.MeanAvailability, fso.MeanAvailability)
	}
	if mm.MeanAvailability != 1 {
		t.Errorf("haze blocked the mmWave-only arm: %v", mm.MeanAvailability)
	}
	if hy.Failovers < 1 || hy.Readmits < 1 {
		t.Fatalf("haze hybrid failovers=%d readmits=%d, want ≥1 each", hy.Failovers, hy.Readmits)
	}
	if hy.MinSecondaryDwell < 500*time.Millisecond {
		t.Fatalf("min secondary dwell %v below the 500 ms clear window — policy flapped",
			hy.MinSecondaryDwell)
	}
	if fso.Failovers != 0 || mm.Failovers != 0 {
		t.Error("single-medium arms reported failovers")
	}

	// Clean environment: every arm fully available on the static-origin
	// quantiles' upper end, FSO goodput ≈5× mmWave.
	cleanFSO := fig16HybridCell(t, r, "clean", "fso")
	cleanHy := fig16HybridCell(t, r, "clean", "hybrid")
	if cleanHy.Failovers != 0 || cleanHy.SecondaryFraction != 0 {
		t.Errorf("clean hybrid arm left the primary: %+v", cleanHy)
	}
	if cleanHy.MeanAvailability != cleanFSO.MeanAvailability {
		t.Errorf("clean hybrid availability %v differs from FSO %v",
			cleanHy.MeanAvailability, cleanFSO.MeanAvailability)
	}
}

// OnScheduleHealthy reports whether the cell kept ≥95% availability — a
// test helper for "did the fault schedule actually bite".
func (c Fig16HybridCell) OnScheduleHealthy() bool {
	return c.MeanAvailability >= 0.95
}
