package cyclops

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTable1Regime(t *testing.T) {
	r := Table1()
	// The design trade-off of §5.1 in one table: diverging sacrifices
	// ~25 dB of power for several-fold tolerance.
	if r.Diverging.PeakPowerDBm >= r.Collimated.PeakPowerDBm-20 {
		t.Errorf("power gap too small: %+.1f vs %+.1f dBm",
			r.Collimated.PeakPowerDBm, r.Diverging.PeakPowerDBm)
	}
	if r.Diverging.RXAngularMrad < 2*r.Collimated.RXAngularMrad {
		t.Error("diverging RX tolerance not ≫ collimated")
	}
	out := r.Render()
	for _, want := range []string{"Table 1", "TX angular", "RX angular", "Peak received"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig11Optimum(t *testing.T) {
	r := Fig11()
	if len(r.Points) < 15 {
		t.Fatalf("sweep has %d points", len(r.Points))
	}
	if r.BestDiameterMM < 12 || r.BestDiameterMM > 20 {
		t.Errorf("optimum at %.0f mm, paper: 16", r.BestDiameterMM)
	}
	if math.Abs(r.BestRXTolMrad-5.77) > 1.0 {
		t.Errorf("peak RX tolerance %.2f mrad, paper: 5.77", r.BestRXTolMrad)
	}
	if !strings.Contains(r.Render(), "peaks at") {
		t.Error("render missing peak line")
	}
}

func TestFig3Runner(t *testing.T) {
	r := Fig3(1, 10)
	if r.P95LinearCmS <= 0 || r.P95AngularDegS <= 0 {
		t.Fatal("empty CDFs")
	}
	if r.P95LinearCmS > 20 || r.P95AngularDegS > 28 {
		t.Errorf("P95 speeds out of Fig 3 regime: %.1f cm/s, %.1f deg/s",
			r.P95LinearCmS, r.P95AngularDegS)
	}
	// CDFs are monotone and end at 1.
	for i := 1; i < len(r.LinearY); i++ {
		if r.LinearY[i] < r.LinearY[i-1] {
			t.Fatal("linear CDF not monotone")
		}
	}
	if r.LinearY[len(r.LinearY)-1] != 1 || r.AngularY[len(r.AngularY)-1] != 1 {
		t.Error("CDFs do not reach 1")
	}
	if !strings.Contains(r.Render(), "P95") {
		t.Error("render missing summary")
	}
}

func TestConvergenceRunner(t *testing.T) {
	c, err := Convergence(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanPIters < 1 || c.MeanPIters > 6 {
		t.Errorf("P iterations %.1f, paper 2-5", c.MeanPIters)
	}
	if c.MeanGPrimeIters < 1 || c.MeanGPrimeIters > 5 {
		t.Errorf("G' iterations %.1f, paper 2-4", c.MeanGPrimeIters)
	}
	if c.Failures > c.Points/100 {
		t.Errorf("%d/%d pointing failures", c.Failures, c.Points)
	}
}

func TestFig16Runner(t *testing.T) {
	r := Fig16(3)
	if r.Corpus.MeanOnFraction < 0.95 || r.Corpus.MeanOnFraction > 0.9999 {
		t.Errorf("mean on fraction %.4f, paper 0.986", r.Corpus.MeanOnFraction)
	}
	if r.EffectiveGbps < 22 || r.EffectiveGbps > 23.5 {
		t.Errorf("effective bandwidth %.1f Gbps, paper ≈23", r.EffectiveGbps)
	}
	if !strings.Contains(r.Render(), "CDF") {
		t.Error("render missing CDF")
	}
}

// The handover acceptance bar: at the harsh occlusion corner (2/min ×
// 500 ms) a second ceiling TX at 1.4 m spacing pulls occlusion-layer
// availability back above 99%; the single-TX corpus sits near 89%. Runs
// the harsh slice of the fig16-handover grid through the real pipeline.
func TestFig16HandoverRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus in -short mode")
	}
	grid := fig16HandoverGrid{
		txCounts: []int{1, 2},
		spacings: []float64{1.4},
		occl: []struct {
			rate float64
			dur  time.Duration
		}{{2, 500 * time.Millisecond}},
	}
	r, err := fig16HandoverRun(3, 0, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(r.Cells))
	}
	single, dual := r.Cells[0], r.Cells[1]
	if single.Handovers != 0 || single.ChaosAvailability >= 0.99 {
		t.Errorf("single-TX cell implausible: %+v", single)
	}
	if dual.ChaosAvailability < 0.99 {
		t.Errorf("2-TX chaos availability %.4f, want ≥ 0.99", dual.ChaosAvailability)
	}
	if dual.ChaosAvailability <= single.ChaosAvailability {
		t.Error("handover did not improve availability")
	}
	if dual.Handovers == 0 || dual.Outages >= single.Outages {
		t.Errorf("rescues not visible: %+v vs %+v", dual, single)
	}
	if !strings.Contains(r.Render(), "cost curve") {
		t.Error("render missing the cost curve")
	}
}

func TestTable2Runner(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration in -short mode")
	}
	r, err := Table2(4)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Report
	if rep.Stage1TX.AvgError > 3e-3 || rep.Stage1RX.AvgError > 3e-3 {
		t.Errorf("stage-1 errors out of regime: %v / %v", rep.Stage1TX, rep.Stage1RX)
	}
	if rep.Combined.TXAvg > 6e-3 || rep.Combined.RXAvg > 9e-3 {
		t.Errorf("combined errors out of regime: %v", rep.Combined)
	}
	t.Log("\n" + r.Render())
}

func TestTPEvaluationRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration in -short mode")
	}
	r, err := TPEvaluation(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanReportInterval < 12*time.Millisecond || r.MeanReportInterval > 13*time.Millisecond {
		t.Errorf("mean report interval %v", r.MeanReportInterval)
	}
	if r.SlowReportFraction < 0.002 || r.SlowReportFraction > 0.02 {
		t.Errorf("slow report fraction %.3f, paper 0.007", r.SlowReportFraction)
	}
	if r.StationaryLocationMM < 0.5 || r.StationaryLocationMM > 4 {
		t.Errorf("stationary location noise %.2f mm, paper 1.79", r.StationaryLocationMM)
	}
	if r.StationaryOrientMrad < 0.1 || r.StationaryOrientMrad > 1.5 {
		t.Errorf("stationary orientation noise %.2f mrad, paper 0.41", r.StationaryOrientMrad)
	}
	if r.LockTestsOptimal != r.LockTests || r.LockTests != 10 {
		t.Errorf("lock tests %d/%d optimal, paper 10/10", r.LockTestsOptimal, r.LockTests)
	}
	if r.MeanPowerGapDB < 0 || r.MeanPowerGapDB > 8 {
		t.Errorf("TP power gap %.1f dB, paper 3-4", r.MeanPowerGapDB)
	}
	t.Log("\n" + r.Render())
}

func TestQuickstartFlow(t *testing.T) {
	// The README quick-start must work as written.
	sys := NewSystem(Link10G, 6)
	sys.UseOracleModels() // fast path; Calibrate() covered elsewhere
	res, err := sys.Run(RunOptions{
		Program: LinearRail(0.15, 0.10, 0, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpFraction < 0.95 {
		t.Errorf("quickstart up fraction %.2f", res.UpFraction)
	}
	if len(res.Windows) == 0 {
		t.Error("no throughput windows")
	}
}
