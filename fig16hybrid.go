package cyclops

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/sim"
	"cyclops/internal/trace"
)

// ------------------------------------------------------ fig16-hybrid —

// fig16HybridQuantiles are the per-trace distribution points each cell
// reports, in order: p5, p25, p50, p75, p95.
var fig16HybridQuantiles = [5]float64{0.05, 0.25, 0.5, 0.75, 0.95}

// Fig16HybridCell is one point of the hybrid sweep: a fault schedule × a
// medium (FSO-only, mmWave-only, or the hybrid policy) over the shared
// corpus.
type Fig16HybridCell struct {
	Schedule string
	Medium   string
	// MeanAvailability / MinAvailability are the delivered on-fraction
	// (for the hybrid arm: whichever medium the policy had carrying).
	MeanAvailability float64
	MinAvailability  float64
	// MeanGoodputGbps is the slot-weighted delivered goodput across the
	// corpus.
	MeanGoodputGbps float64
	// AvailQ / GoodputQ are the p5/p25/p50/p75/p95 quantiles of the
	// per-trace availability and mean goodput distributions.
	AvailQ   [5]float64
	GoodputQ [5]float64
	// Failovers / Readmits / SecondaryFraction / MinSecondaryDwell are
	// zero except on the hybrid arm.
	Failovers         int
	Readmits          int
	SecondaryFraction float64
	MinSecondaryDwell time.Duration
}

// Fig16HybridResult is the fig16-hybrid experiment: the §5.4 availability
// study re-run as a medium shoot-out — FSO-only vs mmWave-only vs the
// hybrid failover policy — under clean, occlusion-storm, and haze-ramp
// fault schedules.
type Fig16HybridResult struct {
	Traces   int
	TraceLen time.Duration
	Cells    []Fig16HybridCell
}

// fig16HybridGrid parameterizes the sweep so the determinism suite can
// push a trimmed corpus through the identical pipeline.
type fig16HybridGrid struct {
	n      int
	length time.Duration
}

var fig16HybridSweep = fig16HybridGrid{n: trace.DatasetTraces, length: time.Minute}

// fig16HybridSchedules are the three environments, in render order. The
// occlusion storm is physical (blocks both media); the haze ramp is
// optical-only (transparent at 60 GHz) — the scenario the hybrid policy
// exists for.
func fig16HybridSchedules() []struct {
	name string
	cfg  fault.Config
} {
	storm := fault.Config{
		Occlusion:        fault.ClassConfig{PerMin: 2, MinDur: 500 * time.Millisecond, MaxDur: 500 * time.Millisecond},
		OcclusionDepthDB: [2]float64{25, 45},
		OcclusionRamp:    10 * time.Millisecond,
	}
	return []struct {
		name string
		cfg  fault.Config
	}{
		{"clean", fault.Config{}},
		{"occlusion-storm", storm},
		{"haze-ramp", fault.DefaultHazeConfig()},
	}
}

// Fig16Hybrid runs the hybrid medium sweep with the default worker pool.
func Fig16Hybrid(seed int64) (Fig16HybridResult, error) {
	return Fig16HybridWorkers(seed, 0)
}

// Fig16HybridWorkers is Fig16Hybrid with an explicit worker count. The
// sweep is a pure function of the seed: corpus, per-trace fault plans,
// and all three slot models are seeded, so every worker count returns the
// identical result bit for bit.
func Fig16HybridWorkers(seed int64, workers int) (Fig16HybridResult, error) {
	return fig16HybridRun(seed, workers, fig16HybridSweep)
}

func fig16HybridRun(seed int64, workers int, grid fig16HybridGrid) (Fig16HybridResult, error) {
	src := trace.Source{Seed: seed, N: grid.n, Length: grid.length, Origin: TraceSource(seed).Origin}
	traces := sim.Materialize(src, workers)
	res := Fig16HybridResult{Traces: grid.n, TraceLen: grid.length}
	for _, sched := range fig16HybridSchedules() {
		for _, medium := range []string{"fso", "mmwave", "hybrid"} {
			chaos := &sim.CorpusChaos{Config: sched.cfg, Seed: seed + 1}
			switch medium {
			case "mmwave":
				chaos.MmWaveOnly = &sim.MmWaveSlotParams{}
			case "hybrid":
				chaos.Hybrid = &sim.HybridSlotParams{}
			}
			run, err := sim.RunCorpus(sim.TraceSlice(traces), sim.CorpusOptions{
				Chaos:        chaos,
				Workers:      workers,
				KeepPerTrace: true,
				Registry:     obs.NewRegistry(),
			})
			if err != nil {
				return res, err
			}
			cell := Fig16HybridCell{
				Schedule:          sched.name,
				Medium:            medium,
				MeanAvailability:  run.MeanOnFraction,
				MinAvailability:   run.MinOnFraction,
				Failovers:         run.Failovers,
				Readmits:          run.Readmits,
				MinSecondaryDwell: run.MinSecondaryDwell,
			}
			if run.Slots > 0 {
				cell.SecondaryFraction = float64(run.SecondarySlots) / float64(run.Slots)
			}
			avail := make([]float64, len(run.PerTrace))
			goodput := make([]float64, len(run.PerTrace))
			var gsum float64
			for i, r := range run.PerTrace {
				avail[i] = r.OnFraction
				g := r.MeanGoodputGbps
				if medium == "fso" {
					// The plain chaos model reports availability only;
					// its delivered rate is on-fraction × the 25G optimal.
					g = r.OnFraction * Link25G.Transceiver.OptimalGoodputGbps
				}
				goodput[i] = g
				gsum += g * float64(r.Slots)
			}
			if run.Slots > 0 {
				cell.MeanGoodputGbps = gsum / float64(run.Slots)
			}
			cell.AvailQ = fig16HybridQuantileSet(avail)
			cell.GoodputQ = fig16HybridQuantileSet(goodput)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// fig16HybridQuantileSet sorts a copy and reads the nearest-rank quantile
// at each of the five report points.
func fig16HybridQuantileSet(xs []float64) [5]float64 {
	var q [5]float64
	if len(xs) == 0 {
		return q
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range fig16HybridQuantiles {
		q[i] = s[int(math.Round(p*float64(len(s)-1)))]
	}
	return q
}

// Render prints the sweep table and the haze-ramp availability CDF — the
// environment where the three media genuinely separate.
func (r Fig16HybridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16-hybrid: FSO vs mmWave vs hybrid failover policy (%d traces × %s)\n",
		r.Traces, r.TraceLen)
	b.WriteString("  schedule         medium   avail mean    worst      p5      p50  goodput mean    p50  failovers  readmits  on-2nd  min dwell\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-15s  %-7s  %9.3f%%  %7.3f%%  %6.2f%%  %6.2f%%  %9.2f Gb  %5.2f  %9d  %8d  %5.1f%%  %9s\n",
			c.Schedule, c.Medium,
			c.MeanAvailability*100, c.MinAvailability*100,
			c.AvailQ[0]*100, c.AvailQ[2]*100,
			c.MeanGoodputGbps, c.GoodputQ[2],
			c.Failovers, c.Readmits, c.SecondaryFraction*100, dwellOrDash(c.MinSecondaryDwell))
	}
	// The headline comparison: per-trace availability quantiles on the
	// haze ramp, where fog kills the optical budget but not 60 GHz.
	b.WriteString("  haze-ramp availability quantiles (p5/p25/p50/p75/p95):\n")
	for _, c := range r.Cells {
		if c.Schedule != "haze-ramp" {
			continue
		}
		fmt.Fprintf(&b, "    %-7s:", c.Medium)
		for _, q := range c.AvailQ {
			fmt.Fprintf(&b, "  %6.2f%%", q*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func dwellOrDash(d time.Duration) string {
	if d == 0 {
		return "—"
	}
	return d.String()
}
