// Command cyclops-sim runs the full Cyclops system on a chosen motion
// program and prints the resulting power/throughput time series plus a run
// summary — the interactive way to poke at the simulated prototype.
//
// Usage:
//
//	cyclops-sim -link 10g -motion linear -speed 0.3
//	cyclops-sim -link 25g -motion handheld -duration 30s -oracle
//	cyclops-sim -motion trace -seed 4
//	cyclops-sim -motion handheld -metrics run.prom
//	cyclops-sim -motion handheld -chaos -chaos-seed 7   # fault injection
//	cyclops-sim -motion handheld -chaos -tx 2      # multi-TX handover
//	cyclops-sim -motion static -haze -hybrid       # mmWave failover
//	cyclops-sim -experiment convergence            # registry dispatch
//	cyclops-sim -experiment fig16-arena -users 64 -density 1.0
//
// -experiment bypasses the interactive run and executes a named entry of
// the cyclops.Experiments registry instead (same names as cyclops-bench).
// For fig16-arena, -users switches from the default sweep to a single
// venue sized to hold that many headsets at -density users/m²
// (-users-per-tx caps how many one ceiling TX serves).
// -chaos plans a seeded fault schedule (cyclops.DefaultFaultConfig) over
// the run and arms the recovery supervisor: the summary then reports
// outages, reacquisitions, and degraded time, and the metrics exposition
// gains cyclops_outage_total, cyclops_reacquire_seconds, and the
// supervisor time-in-state gauges.
// -tx N (N > 1, with -chaos) adds N−1 standby ceiling TXs on a ring of
// -handover-spacing meters and arms make-before-break handover: occlusions
// of the primary path switch to a pre-pointed standby inside the SFP's LOS
// holdover instead of unlocking the link. -handover is shorthand for
// -tx 2. The summary gains a handover count and the exposition gains
// cyclops_handover_total / cyclops_handover_seconds.
// -haze plans slow environmental fade ramps (cyclops.DefaultHazeFaultConfig)
// over the run — fog-like attenuation that kills the optical budget but is
// transparent to mmWave; it composes with -chaos's schedule. -hybrid arms
// the hybrid FSO + mmWave failover policy: a shadow mmWave link steps
// beside the plant, the summary gains a failover/readmit line, and the
// exposition gains the cyclops_policy_* and cyclops_mmwave_* instruments.
// -metrics writes the run's Prometheus text exposition to a file on exit;
// the exposition includes cyclops_pointing_beam_evals_total, the forward
// GMA-model evaluation budget the realignment loop consumed.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"cyclops"
)

func main() {
	linkName := flag.String("link", "10g", "link design: 10g | 10g-collimated | 25g")
	motionName := flag.String("motion", "linear", "motion program: static | linear | angular | handheld | trace")
	speed := flag.Float64("speed", 0.25, "peak speed for linear (m/s) or angular (rad/s) programs")
	duration := flag.Duration("duration", 0, "cap the run duration (0 = program length)")
	seed := flag.Int64("seed", 1, "seed for all hidden variation")
	oracle := flag.Bool("oracle", false, "use oracle models instead of running the calibration")
	series := flag.Bool("series", false, "print the 50 ms throughput/power series")
	experiment := flag.String("experiment", "", "run a named experiment from the registry instead of an interactive run")
	metricsFile := flag.String("metrics", "", "write Prometheus text exposition of the run's metrics to this file on exit")
	chaos := flag.Bool("chaos", false, "inject a seeded fault schedule (occlusions, tracker dropouts, galvo faults) and arm the recovery supervisor")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the -chaos fault schedule (independent of -seed)")
	haze := flag.Bool("haze", false, "inject slow environmental fade ramps (fog-like attenuation; composes with -chaos)")
	hybrid := flag.Bool("hybrid", false, "arm the hybrid FSO + mmWave failover policy")
	txCount := flag.Int("tx", 1, "total ceiling TX count; > 1 arms make-before-break handover (requires -chaos)")
	txSpacing := flag.Float64("handover-spacing", 1.4, "ceiling ring spacing in meters for the standby TXs of -tx")
	handoverFlag := flag.Bool("handover", false, "shorthand for -tx 2")
	users := flag.Int("users", 0, "with -experiment fig16-arena: headset count for a single-venue run instead of the default sweep")
	density := flag.Float64("density", 0, "with -experiment fig16-arena: crowd density in users/m² (requires -users)")
	usersPerTX := flag.Int("users-per-tx", 0, "with -experiment fig16-arena -users: per-ceiling-TX serving cap (0 = arena default)")
	flag.Parse()
	if *handoverFlag && *txCount < 2 {
		*txCount = 2
	}

	writeMetrics := func() {
		if *metricsFile == "" {
			return
		}
		exp := cyclops.DefaultMetrics().Exposition()
		if err := os.WriteFile(*metricsFile, []byte(exp), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-sim: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if *experiment == "fig16-arena" && *users > 0 {
		d := *density
		if d <= 0 {
			d = 1.0
		}
		res, err := cyclops.Fig16ArenaAt(*seed, *users, d, *usersPerTX, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-sim: fig16-arena: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		writeMetrics()
		return
	}

	if *experiment != "" {
		e, ok := cyclops.LookupExperiment(*experiment)
		if !ok {
			var names []string
			for _, reg := range cyclops.Experiments() {
				names = append(names, reg.Name())
			}
			fmt.Fprintf(os.Stderr, "cyclops-sim: unknown experiment %q (want %s)\n",
				*experiment, strings.Join(names, "|"))
			os.Exit(2)
		}
		res, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-sim: %s: %v\n", e.Name(), err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		writeMetrics()
		return
	}

	var cfg cyclops.LinkConfig
	switch *linkName {
	case "10g":
		cfg = cyclops.Link10G
	case "10g-collimated":
		cfg = cyclops.Link10GCollimated
	case "25g":
		cfg = cyclops.Link25G
	default:
		fmt.Fprintf(os.Stderr, "cyclops-sim: unknown link %q\n", *linkName)
		os.Exit(2)
	}

	var prog cyclops.Program
	switch *motionName {
	case "static":
		prog = cyclops.LinearRail(0, 0.01, 0, 1)
	case "linear":
		prog = cyclops.LinearRail(0.20, *speed, 0, 6)
	case "angular":
		prog = cyclops.RotationStage(0.30, *speed, 0, 6)
	case "handheld":
		prog = cyclops.HandHeld(0.4, 0.6, 30*time.Second, *seed)
	case "trace":
		prog = cyclops.Playback(cyclops.GenerateTrace(*seed, 0, time.Minute))
	default:
		fmt.Fprintf(os.Stderr, "cyclops-sim: unknown motion %q\n", *motionName)
		os.Exit(2)
	}

	sys := cyclops.NewSystem(cfg, *seed)
	if *oracle {
		sys.UseOracleModels()
		fmt.Println("using oracle models (perfect TP)")
	} else {
		fmt.Println("calibrating (grid board + aligned tuples)...")
		rep, err := sys.Calibrate()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-sim: calibration: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("calibrated: %v\n", rep)
	}

	// Mirrors core.Run: a positive -duration IS the run length (it can
	// extend a short program, whose pose then holds); 0 means the
	// program's own length.
	effDur := prog.Duration()
	if *duration > 0 {
		effDur = *duration
	}
	opts := cyclops.RunOptions{
		Program:     prog,
		Duration:    *duration,
		SampleEvery: 10 * time.Millisecond,
	}
	if *chaos || *haze {
		var cfg cyclops.FaultConfig
		if *chaos {
			cfg = cyclops.DefaultFaultConfig()
		}
		if *haze {
			hz := cyclops.DefaultHazeFaultConfig()
			cfg.Haze, cfg.HazeDepthDB = hz.Haze, hz.HazeDepthDB
			cfg.HazeRampUp, cfg.HazeRampDown = hz.HazeRampUp, hz.HazeRampDown
		}
		sched := cyclops.PlanFaults(cfg, *chaosSeed, effDur)
		opts.Faults = &sched
		fmt.Printf("chaos: injecting %d fault windows (seed %d)\n", len(sched.Windows), *chaosSeed)
	}
	if *hybrid {
		opts.Hybrid = &cyclops.HybridOptions{}
		fmt.Println("hybrid: mmWave secondary armed (SLO-driven failover)")
	}
	if *txCount > 1 {
		if !*chaos {
			fmt.Fprintln(os.Stderr, "cyclops-sim: -tx > 1 needs -chaos (handover only matters under faults)")
			os.Exit(2)
		}
		standbys := cyclops.StandbyRing(cfg, *seed, *txCount-1, *txSpacing)
		// Each standby path gets its own independent occlusion draw,
		// seeded off the chaos seed so the whole run stays reproducible.
		scheds := make([]*cyclops.FaultSchedule, len(standbys))
		for i := range standbys {
			s := cyclops.PlanFaults(cyclops.DefaultFaultConfig(), *chaosSeed+int64(i+1)*101, effDur)
			scheds[i] = &s
		}
		opts.Handover = &cyclops.HandoverOptions{Standbys: standbys, StandbyFaults: scheds}
		fmt.Printf("handover: %d TXs on a %.1f m ring, make-before-break armed\n", *txCount, *txSpacing)
	}
	res, err := sys.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclops-sim: run: %v\n", err)
		os.Exit(1)
	}

	if *series {
		fmt.Println("t(ms)  goodput(Gbps)")
		for _, w := range res.Windows {
			fmt.Printf("%6d  %6.2f\n", w.Start/time.Millisecond, w.Gbps)
		}
	}

	var maxLin, maxAng float64
	for _, s := range res.Samples {
		maxLin = math.Max(maxLin, s.LinSpeed)
		maxAng = math.Max(maxAng, s.AngSpeed)
	}
	fmt.Printf(`run summary (%s, %s):
  duration            %v
  link up             %.1f%% of ticks, %d disconnections
  pointing            %d solves (%.1f P iters, %.1f G' iters avg), %d failures
  TP latency          %v
  peak measured speed %.1f cm/s, %.1f deg/s
`,
		cfg.Name, *motionName,
		effDur,
		res.UpFraction*100, res.Disconnections,
		res.Points, res.MeanPointIters(), res.MeanGPrimeIters(), res.PointFailures,
		res.MeanTPLatency,
		maxLin*100, maxAng*180/math.Pi)
	if *chaos || *haze {
		degraded := 0
		for _, s := range res.Samples {
			if s.Degraded {
				degraded++
			}
		}
		fmt.Printf("  outages             %d (%d reacquired), %d degraded ticks, %d degraded samples\n",
			res.Outages, res.Reacquired, res.DegradedTicks, degraded)
		if *txCount > 1 {
			fmt.Printf("  handovers           %d\n", res.Handovers)
		}
	}
	if *hybrid && res.Hybrid != nil {
		h := res.Hybrid
		fmt.Printf("  hybrid              %d failovers, %d readmits, %d ticks on mmWave, delivered %.1f%% up\n",
			h.Failovers, h.Readmits, h.SecondaryTicks, h.DeliveredUpFraction*100)
	}
	writeMetrics()
}
