// Command cyclops-vet is the repo's invariant linter: a stdlib-only
// static-analysis suite (go/parser + go/types; nothing added to go.mod)
// that loads every non-test package of the module, builds the module-wide
// static call graph, and enforces the determinism (direct + transitive
// taint), float-determinism, hot-path purity (whole call tree),
// metrics-hygiene, error-discipline, and opt-in-contract invariants the
// runtime test suites can only catch after the fact.
//
// Usage:
//
//	cyclops-vet [flags] [./...]
//
//	-root dir       module root to analyze (default "."; go.mod located there)
//	-module path    treat -root as a module with this path even without a
//	                go.mod — used by fixture trees and the lint smoke gates
//	-list           print the rule catalog and exit
//	-json           emit a machine-readable report (module, packages,
//	                elapsed_ms, findings, suppressed, baselined, stale)
//	-baseline file  subtract grandfathered findings recorded in file;
//	                only findings NOT in the baseline fail the build, and
//	                stale entries (no longer occurring) warn
//	-write-baseline file  write the current findings as a new baseline
//	                and exit 0 (the rollout tool; review before committing)
//
// Without -json, findings print one per line as file:line:col: rule:
// message, sorted by path and line. The exit status is 1 when any fresh
// (unbaselined, unsuppressed) finding exists, 2 on load/type-check
// errors; zero fresh findings exits 0. The rule catalog and the
// //cyclops: annotation grammar are documented in DESIGN.md §10; the
// call graph, taint semantics, and baseline workflow in §15.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cyclops/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root directory to analyze")
	modPath := flag.String("module", "", "module path override (analyze -root without a go.mod, e.g. fixture trees)")
	list := flag.Bool("list", false, "print the rule catalog and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings to subtract")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cyclops-vet [flags] [./...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// The conventional `cyclops-vet ./...` spelling is accepted (and is
	// what make lint uses); the loader always covers the whole module.
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "cyclops-vet: unsupported pattern %q (the module at -root is always analyzed whole)\n", arg)
			os.Exit(2)
		}
	}

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%s: %s\n", r.Name, r.Doc)
			if r.Suppress != "" {
				fmt.Printf("    suppress: //cyclops:%s <reason>\n", r.Suppress)
			}
		}
		return
	}

	start := time.Now()
	var mod *analysis.Module
	var err error
	if *modPath != "" {
		mod, err = analysis.LoadTree(*root, *modPath)
	} else {
		mod, err = analysis.LoadModule(*root)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclops-vet: %v\n", err)
		os.Exit(2)
	}

	rep := analysis.Run(mod, analysis.Rules())
	elapsed := time.Since(start)

	if *writeBaseline != "" {
		if err := analysis.NewBaseline(rep.Findings).Save(*writeBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cyclops-vet: wrote %d finding(s) to %s\n", len(rep.Findings), *writeBaseline)
		return
	}

	fresh := rep.Findings
	baselined := 0
	var stale []analysis.BaselineEntry
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-vet: %v\n", err)
			os.Exit(2)
		}
		fresh, baselined, stale = b.Filter(rep.Findings)
	}

	if *jsonOut {
		out := analysis.JSONReport{
			Module:     mod.Path,
			Packages:   len(mod.Pkgs),
			ElapsedMS:  elapsed.Milliseconds(),
			Findings:   analysis.JSONFindings(fresh),
			Suppressed: rep.Suppressed,
			Baselined:  baselined,
			Stale:      stale,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range fresh {
			fmt.Println(f.String())
		}
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "cyclops-vet: stale baseline entry (finding no longer occurs; prune it): %s\n", e)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "cyclops-vet: %d finding(s) in %d package(s)", len(fresh), len(mod.Pkgs))
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, " (%d baselined)", baselined)
		}
		if rep.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, " (%d suppressed by annotation)", rep.Suppressed)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}
