// Command cyclops-vet is the repo's invariant linter: a stdlib-only
// static-analysis suite (go/parser + go/types; nothing added to go.mod)
// that loads every non-test package of the module and enforces the
// determinism, hot-path, metrics-hygiene, and error-discipline contracts
// the runtime test suites can only catch after the fact.
//
// Usage:
//
//	cyclops-vet [flags] [./...]
//
//	-root dir     module root to analyze (default "."; go.mod located there)
//	-module path  treat -root as a module with this path even without a
//	              go.mod — used by fixture trees and the lint-smoke gate
//	-list         print the rule catalog and exit
//
// Findings print one per line as file:line:col: rule: message, sorted by
// path and line, and the exit status is 1 when any unsuppressed finding
// exists (2 on load/type-check errors). Zero findings prints nothing.
// The rule catalog and the //cyclops: annotation grammar are documented
// in DESIGN.md §10.
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root directory to analyze")
	modPath := flag.String("module", "", "module path override (analyze -root without a go.mod, e.g. fixture trees)")
	list := flag.Bool("list", false, "print the rule catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cyclops-vet [flags] [./...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// The conventional `cyclops-vet ./...` spelling is accepted (and is
	// what make lint uses); the loader always covers the whole module.
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "cyclops-vet: unsupported pattern %q (the module at -root is always analyzed whole)\n", arg)
			os.Exit(2)
		}
	}

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%s: %s\n", r.Name, r.Doc)
			if r.Suppress != "" {
				fmt.Printf("    suppress: //cyclops:%s <reason>\n", r.Suppress)
			}
		}
		return
	}

	var mod *analysis.Module
	var err error
	if *modPath != "" {
		mod, err = analysis.LoadTree(*root, *modPath)
	} else {
		mod, err = analysis.LoadModule(*root)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclops-vet: %v\n", err)
		os.Exit(2)
	}

	rep := analysis.Run(mod, analysis.Rules())
	for _, f := range rep.Findings {
		fmt.Println(f.String())
	}
	if len(rep.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "cyclops-vet: %d finding(s) in %d package(s)", len(rep.Findings), len(mod.Pkgs))
		if rep.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, " (%d suppressed by annotation)", rep.Suppressed)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}
