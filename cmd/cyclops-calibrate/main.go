// Command cyclops-calibrate runs the two-stage training pipeline of §4
// standalone and reports the Table 2 error set, optionally across several
// independently manufactured/installed systems.
//
// Usage:
//
//	cyclops-calibrate
//	cyclops-calibrate -systems 5 -seed 10
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclops"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed")
	systems := flag.Int("systems", 1, "number of independent systems to calibrate")
	flag.Parse()

	var s1tx, s1rx, ctx, crx float64
	ok := 0
	for i := 0; i < *systems; i++ {
		r, err := cyclops.Table2(*seed + int64(i)*1000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-calibrate: system %d: %v\n", i, err)
			continue
		}
		fmt.Printf("system %d (seed %d):\n%s\n", i, *seed+int64(i)*1000, r.Render())
		s1tx += r.Report.Stage1TX.AvgError
		s1rx += r.Report.Stage1RX.AvgError
		ctx += r.Report.Combined.TXAvg
		crx += r.Report.Combined.RXAvg
		ok++
	}
	if ok == 0 {
		os.Exit(1)
	}
	if ok > 1 {
		n := float64(ok)
		fmt.Printf(`across %d systems (averages):
  first stage TX %.2f mm   RX %.2f mm   (paper: 1.24 / 1.90)
  combined    TX %.2f mm   RX %.2f mm   (paper: 2.18 / 4.54)
`, ok, s1tx/n*1e3, s1rx/n*1e3, ctx/n*1e3, crx/n*1e3)
	}
}
