// Command cyclops-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	cyclops-bench -experiment all
//	cyclops-bench -experiment table1
//	cyclops-bench -experiment fig13 -seed 7
//	cyclops-bench -experiment fig16 -parallel 8   # 8 workers, same output
//	cyclops-bench -experiment all -parallel 1     # force the serial path
//
// -parallel sets the fan-out width for the corpus simulations and
// multi-rig experiments (0, the default, uses every core). Results are
// bit-identical for any worker count.
//
// Experiments: fig3, table1, fig11, table2, tp, fig13, fig14, fig15,
// table3, fig16, convergence, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cyclops"
	"cyclops/internal/parallel"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (fig3|table1|fig11|table2|tp|fig13|fig14|fig15|table3|fig16|convergence|ablations|extensions|all)")
	seed := flag.Int64("seed", 1, "seed for all hidden variation")
	workers := flag.Int("parallel", 0, "worker count for experiment fan-out (0 = all cores, 1 = serial); any value produces identical results")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	runners := map[string]func(int64) error{
		"fig3": func(s int64) error {
			fmt.Print(cyclops.Fig3(s, 25).Render())
			return nil
		},
		"table1": func(int64) error {
			fmt.Print(cyclops.Table1().Render())
			return nil
		},
		"fig11": func(int64) error {
			fmt.Print(cyclops.Fig11().Render())
			return nil
		},
		"table2": func(s int64) error {
			r, err := cyclops.Table2(s)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
			return nil
		},
		"tp": func(s int64) error {
			r, err := cyclops.TPEvaluation(s)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
			return nil
		},
		"fig13": func(s int64) error {
			lin, ang, err := cyclops.Fig13(s)
			if err != nil {
				return err
			}
			fmt.Print(lin.Render(), ang.Render())
			return nil
		},
		"fig14": func(s int64) error {
			m, err := cyclops.Fig14(s)
			if err != nil {
				return err
			}
			fmt.Print(m.Render())
			return nil
		},
		"fig15": func(s int64) error {
			lin, ang, mix, err := cyclops.Fig15(s)
			if err != nil {
				return err
			}
			fmt.Print(lin.Render(), ang.Render(), mix.Render())
			return nil
		},
		"table3": func(s int64) error {
			r, err := cyclops.Table3(s)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
			return nil
		},
		"fig16": func(s int64) error {
			fmt.Print(cyclops.Fig16(s).Render())
			return nil
		},
		"convergence": func(s int64) error {
			r, err := cyclops.Convergence(s)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
			return nil
		},
		"extensions": func(s int64) error {
			h, err := cyclops.ExtensionHandover(s)
			if err != nil {
				return err
			}
			fmt.Print(h.Render())
			bm, err := cyclops.BaselineMmWave(s + 1)
			if err != nil {
				return err
			}
			fmt.Print(bm.Render())
			fmt.Print(cyclops.EyeSafetyTable())
			fmt.Print(cyclops.FutureWork40G())
			return nil
		},
		"ablations": func(s int64) error {
			dg, err := cyclops.AblationDirectGPrime(s)
			if err != nil {
				return err
			}
			fmt.Print(dg.Render())
			fo, err := cyclops.AblationFixedOrigin(s + 1)
			if err != nil {
				return err
			}
			fmt.Print(fo.Render())
			fmt.Print(cyclops.RenderTrackingRate(cyclops.AblationTrackingRate(s+2, []time.Duration{
				2 * time.Millisecond, 5 * time.Millisecond,
				10 * time.Millisecond, 20 * time.Millisecond,
			})))
			bc, err := cyclops.AblationBeamChoice(s + 3)
			if err != nil {
				return err
			}
			fmt.Print(bc.Render())
			cp, err := cyclops.AblationCouplingImprovement(s + 4)
			if err != nil {
				return err
			}
			fmt.Print(cp.Render())
			return nil
		},
	}
	order := []string{
		"fig3", "table1", "fig11", "table2", "tp",
		"fig13", "fig14", "fig15", "table3", "fig16",
		"convergence", "ablations", "extensions",
	}

	which := strings.ToLower(*experiment)
	if which == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			start := time.Now()
			if err := runners[name](*seed); err != nil {
				fmt.Fprintf(os.Stderr, "cyclops-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
		return
	}
	run, ok := runners[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "cyclops-bench: unknown experiment %q (want %s or all)\n",
			which, strings.Join(order, "|"))
		os.Exit(2)
	}
	if err := run(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "cyclops-bench: %v\n", err)
		os.Exit(1)
	}
}
