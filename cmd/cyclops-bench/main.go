// Command cyclops-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	cyclops-bench -experiment all
//	cyclops-bench -experiment table1
//	cyclops-bench -experiment fig13 -seed 7
//	cyclops-bench -experiment fig16 -parallel 8   # 8 workers, same output
//	cyclops-bench -experiment all -parallel 1     # force the serial path
//	cyclops-bench -experiment fig16 -metrics metrics.prom
//	cyclops-bench -experiment all -pprof localhost:6060
//
// -parallel sets the fan-out width for the corpus simulations and
// multi-rig experiments (0, the default, uses every core). Results are
// bit-identical for any worker count, and every worker runs the solvers
// on precompiled GMA models (gma.Compiled — see DESIGN.md §8 and
// BENCH_hotpath.json for the measured speedup).
//
// -metrics writes the process-wide registry as Prometheus text exposition
// to the given file when the run completes. -pprof serves
// net/http/pprof on the given address for the duration of the run.
//
// The experiment names come from the cyclops.Experiments registry:
// fig3, table1, fig11, table2, tp, fig13, fig14, fig15, table3, fig16,
// fig16-faults (the chaos availability sweep),
// fig16-handover (the multi-TX make-before-break sweep),
// fig16-arena (the multi-user venue capacity sweep),
// fig16-hybrid (the FSO vs mmWave vs hybrid failover sweep),
// convergence, ablations, extensions — or all.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"cyclops"
	"cyclops/internal/parallel"
)

func main() {
	var names []string
	for _, e := range cyclops.Experiments() {
		names = append(names, e.Name())
	}
	experiment := flag.String("experiment", "all",
		"which experiment to run ("+strings.Join(names, "|")+"|all)")
	seed := flag.Int64("seed", 1, "seed for all hidden variation")
	workers := flag.Int("parallel", 0, "worker count for experiment fan-out (0 = all cores, 1 = serial); any value produces identical results")
	metricsFile := flag.String("metrics", "", "write Prometheus text exposition of the run's metrics to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "cyclops-bench: pprof: %v\n", err)
			}
		}()
	}

	run := func(e cyclops.Experiment) error {
		res, err := e.Run(*seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}

	which := strings.ToLower(*experiment)
	switch which {
	case "all":
		for _, e := range cyclops.Experiments() {
			fmt.Printf("==== %s ====\n", e.Name())
			start := time.Now()
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "cyclops-bench: %s: %v\n", e.Name(), err)
				os.Exit(1)
			}
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
	default:
		e, ok := cyclops.LookupExperiment(which)
		if !ok {
			fmt.Fprintf(os.Stderr, "cyclops-bench: unknown experiment %q (want %s or all)\n",
				which, strings.Join(names, "|"))
			os.Exit(2)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *metricsFile != "" {
		exp := cyclops.DefaultMetrics().Exposition()
		if err := os.WriteFile(*metricsFile, []byte(exp), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-bench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
