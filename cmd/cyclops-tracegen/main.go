// Command cyclops-tracegen generates the synthetic 360°-viewing head-motion
// traces used by the §5.4 evaluation, writes them as CSV, and prints their
// speed statistics against the Fig 3 envelope.
//
// Usage:
//
//	cyclops-tracegen -n 10 -out traces/        # write trace CSVs
//	cyclops-tracegen -n 100 -stats             # statistics only
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"cyclops"
)

func main() {
	n := flag.Int("n", 10, "number of traces")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "directory to write trace CSVs (omit to skip writing)")
	length := flag.Duration("length", time.Minute, "trace length")
	statsOnly := flag.Bool("stats", false, "print statistics only")
	flag.Parse()

	if *out != "" && !*statsOnly {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cyclops-tracegen: %v\n", err)
			os.Exit(1)
		}
	}

	var p95Lin, p95Ang, maxLin, maxAng float64
	for i := 0; i < *n; i++ {
		tr := cyclops.GenerateTrace(*seed, i, *length)
		st := tr.Stats()
		p95Lin += st.P95Linear
		p95Ang += st.P95Angular
		maxLin = math.Max(maxLin, st.MaxLinear)
		maxAng = math.Max(maxAng, st.MaxAngular)

		if *out != "" && !*statsOnly {
			path := filepath.Join(*out, fmt.Sprintf("%s.csv", tr.ID))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cyclops-tracegen: %v\n", err)
				os.Exit(1)
			}
			if err := tr.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "cyclops-tracegen: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
	nn := float64(*n)
	fmt.Printf(`%d traces × %v at 10 ms (seed %d):
  P95 linear   %.1f cm/s   (Fig 3 envelope: ≤14)
  P95 angular  %.1f deg/s  (Fig 3 envelope: ≤19)
  max linear   %.1f cm/s
  max angular  %.1f deg/s
`, *n, *length, *seed,
		p95Lin/nn*100, p95Ang/nn*180/math.Pi,
		maxLin*100, maxAng*180/math.Pi)
	if *out != "" && !*statsOnly {
		fmt.Printf("wrote %d CSVs to %s\n", *n, *out)
	}
}
