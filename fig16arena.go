package cyclops

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cyclops/internal/arena"
)

// ------------------------------------------------------- fig16-arena —

// Fig16ArenaCell is one point of the arena capacity sweep: a venue at a
// crowd density, each ceiling TX capped at UsersPerTX headsets.
type Fig16ArenaCell struct {
	UsersPerTX int
	Density    float64 // users per m²
	Users      int
	TXs        int
	Served     int
	Unserved   int
	// MeanAvailability / MinAvailability are the occlusion-layer
	// availability (1 − blocked/total slots — fig16-handover's
	// ChaosAvailability) across and at the worst served user.
	MeanAvailability float64
	MinAvailability  float64
	// Frac99 and Frac999 are the fraction of served users whose
	// occlusion availability meets two and three nines — the capacity
	// planning numbers.
	Frac99  float64
	Frac999 float64
	// MeanGoodputGbps / MinGoodputGbps are the per-user TCP goodput
	// under shared-backhaul contention.
	MeanGoodputGbps float64
	MinGoodputGbps  float64
	Outages         int
	Handovers       int
}

// Fig16ArenaResult is the fig16-arena experiment: the single-headset §5.4
// availability study scaled to a crowded venue on the arena engine.
type Fig16ArenaResult struct {
	VenueW       float64
	PitchM       float64
	TraceLen     time.Duration
	BackhaulGbps float64
	Cells        []Fig16ArenaCell
}

// fig16ArenaGrid parameterizes the sweep so the determinism suite can
// push a trimmed grid through the identical pipeline.
type fig16ArenaGrid struct {
	areaM2     float64
	usersPerTX []int
	densities  []float64
	traceLen   time.Duration
}

// fig16ArenaSweep: an 8×8 m venue (16 ceiling TXs at the 2 m pitch),
// light/standing/packed crowds × three per-TX serving caps.
var fig16ArenaSweep = fig16ArenaGrid{
	areaM2:     64,
	usersPerTX: []int{2, 4, 8},
	densities:  []float64{0.5, 1.0, 2.0},
	traceLen:   time.Minute,
}

// Fig16Arena runs the arena capacity sweep with the default worker pool.
func Fig16Arena(seed int64) (Fig16ArenaResult, error) {
	return Fig16ArenaWorkers(seed, 0)
}

// Fig16ArenaWorkers is Fig16Arena with an explicit worker count. The
// sweep is a pure function of the seed: every worker count returns the
// identical result bit for bit (the arena engine folds its ceiling cells
// in cell order regardless of completion order).
func Fig16ArenaWorkers(seed int64, workers int) (Fig16ArenaResult, error) {
	return fig16ArenaRun(seed, workers, fig16ArenaSweep)
}

// Fig16ArenaAt runs a single arena configuration — the cyclops-sim
// -users/-density entry point. The venue is sized to hold users at
// density; usersPerTX ≤ 0 takes the arena default.
func Fig16ArenaAt(seed int64, users int, density float64, usersPerTX, workers int) (Fig16ArenaResult, error) {
	grid := fig16ArenaGrid{
		areaM2:     float64(users) / density,
		usersPerTX: []int{usersPerTX},
		densities:  []float64{density},
		traceLen:   time.Minute,
	}
	if usersPerTX <= 0 {
		grid.usersPerTX = []int{4}
	}
	return fig16ArenaRun(seed, workers, grid)
}

func fig16ArenaRun(seed int64, workers int, grid fig16ArenaGrid) (Fig16ArenaResult, error) {
	res := Fig16ArenaResult{VenueW: math.Sqrt(grid.areaM2)}
	for _, density := range grid.densities {
		users := int(math.Round(grid.areaM2 * density))
		for _, cap := range grid.usersPerTX {
			run, err := arena.Run(arena.Options{
				Seed:       seed,
				Users:      users,
				Density:    density,
				UsersPerTX: cap,
				TraceLen:   grid.traceLen,
				Workers:    workers,
			})
			if err != nil {
				return res, err
			}
			res.PitchM = run.Layout.Pitch
			res.TraceLen = grid.traceLen
			if res.BackhaulGbps == 0 {
				res.BackhaulGbps = 100
			}
			cell := Fig16ArenaCell{
				UsersPerTX:       cap,
				Density:          density,
				Users:            run.Users,
				TXs:              run.Layout.Cells(),
				Served:           run.Served,
				Unserved:         run.Unserved,
				MeanAvailability: run.MeanAvailability(),
				MinAvailability:  run.MinAvailability,
				MeanGoodputGbps:  run.MeanGoodputGbps(),
				MinGoodputGbps:   run.MinGoodputGbps,
				Outages:          run.Outages,
				Handovers:        run.Handovers,
			}
			if run.Served > 0 {
				cell.Frac99 = float64(run.Avail99) / float64(run.Served)
				cell.Frac999 = float64(run.Avail999) / float64(run.Served)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Render prints the sweep and the capacity-planning lines: headsets one
// ceiling TX serves at two and three nines of occlusion availability.
func (r Fig16ArenaResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16-arena: multi-user capacity, %.1f×%.1f m venue (%.1f m ceiling pitch, %s sessions, %.0f Gbps shared backhaul)\n",
		r.VenueW, r.VenueW, r.PitchM, r.TraceLen, r.BackhaulGbps)
	b.WriteString("  per-TX  density  users  txs  served  unserved  avail mean   worst   ≥2 nines  ≥3 nines  goodput mean    min  handovers\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %6d  %5.2f/m²  %5d  %3d  %6d  %8d  %9.4f%%  %6.3f%%  %7.1f%%  %7.1f%%  %9.2f Gb  %5.2f  %9d\n",
			c.UsersPerTX, c.Density, c.Users, c.TXs, c.Served, c.Unserved,
			c.MeanAvailability*100, c.MinAvailability*100,
			c.Frac99*100, c.Frac999*100,
			c.MeanGoodputGbps, c.MinGoodputGbps, c.Handovers)
	}
	// Capacity planning: for each serving cap, the densest crowd where
	// 99% of served users hold two nines and where 95% hold three.
	for _, cap := range uniqueCaps(r.Cells) {
		best99, best999 := -1.0, -1.0
		for _, c := range r.Cells {
			if c.UsersPerTX != cap || c.Served == 0 {
				continue
			}
			if c.Frac99 >= 0.99 && c.Density > best99 {
				best99 = c.Density
			}
			if c.Frac999 >= 0.95 && c.Density > best999 {
				best999 = c.Density
			}
		}
		fmt.Fprintf(&b, "  capacity: %d users/TX holds 99%% avail up to %s and 99.9%% (95%% of users) up to %s\n",
			cap, densityOrNone(best99), densityOrNone(best999))
	}
	return b.String()
}

func uniqueCaps(cells []Fig16ArenaCell) []int {
	var caps []int
	for _, c := range cells {
		seen := false
		for _, k := range caps {
			if k == c.UsersPerTX {
				seen = true
				break
			}
		}
		if !seen {
			caps = append(caps, c.UsersPerTX)
		}
	}
	return caps
}

func densityOrNone(d float64) string {
	if d < 0 {
		return "no swept density"
	}
	return fmt.Sprintf("%.2f users/m²", d)
}
