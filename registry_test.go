package cyclops

import (
	"strings"
	"testing"
)

// The registry must cover the full evaluation suite, in the order
// cyclops-bench has always run it, under the names it has always used.
func TestExperimentsRegistryNames(t *testing.T) {
	want := []string{
		"fig3", "table1", "fig11", "table2", "tp",
		"fig13", "fig14", "fig15", "table3", "fig16", "fig16-faults",
		"fig16-handover", "fig16-arena", "fig16-hybrid", "convergence", "ablations", "extensions",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("Experiments() returned %d entries, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.Name() != want[i] {
			t.Errorf("Experiments()[%d].Name() = %q, want %q", i, e.Name(), want[i])
		}
	}
}

func TestLookupExperiment(t *testing.T) {
	if _, ok := LookupExperiment("fig16"); !ok {
		t.Error("LookupExperiment(fig16) not found")
	}
	if _, ok := LookupExperiment("Fig16"); !ok {
		t.Error("LookupExperiment is expected to be case-insensitive")
	}
	if _, ok := LookupExperiment("fig99"); ok {
		t.Error("LookupExperiment(fig99) unexpectedly found")
	}
}

// The registry adapters must render exactly what the underlying functions
// render — callers switching from Table1() to the Experiment surface see
// the same report. Checked on the cheap closed-form experiments.
func TestRegistryMatchesDirectCalls(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"table1", Table1().Render()},
		{"fig11", Fig11().Render()},
		{"fig3", Fig3(1, 25).Render()},
	}
	for _, c := range cases {
		e, ok := LookupExperiment(c.name)
		if !ok {
			t.Fatalf("LookupExperiment(%q) not found", c.name)
		}
		res, err := e.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := res.Render(); got != c.want {
			t.Errorf("%s: registry render differs from direct call:\nregistry:\n%s\ndirect:\n%s",
				c.name, got, c.want)
		}
	}
}

// Convergence through the registry exercises a full oracle-model run and
// its rendered report — a smoke test that multi-layer dispatch works.
func TestRegistryConvergence(t *testing.T) {
	e, ok := LookupExperiment("convergence")
	if !ok {
		t.Fatal("convergence not registered")
	}
	res, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "convergence") {
		t.Errorf("unexpected render: %q", res.Render())
	}
}
