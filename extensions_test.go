package cyclops

import (
	"strings"
	"testing"
)

func TestExtensionHandover(t *testing.T) {
	if testing.Short() {
		t.Skip("occlusion runs in -short mode")
	}
	r, err := ExtensionHandover(51)
	if err != nil {
		t.Fatal(err)
	}
	// The §3 claim: handover recovers most of the occluded time.
	if r.SingleTX.LightFraction > 0.65 {
		t.Errorf("baseline light fraction %.2f — occluder ineffective", r.SingleTX.LightFraction)
	}
	if r.TwoTX.LightFraction < r.SingleTX.LightFraction+0.25 {
		t.Errorf("handover light %.2f vs single-TX %.2f — no improvement",
			r.TwoTX.LightFraction, r.SingleTX.LightFraction)
	}
	if r.TwoTX.Handovers == 0 {
		t.Error("no handovers executed")
	}
	if !strings.Contains(r.Render(), "handovers") {
		t.Error("render missing content")
	}
	t.Log("\n" + r.Render())
}

func TestBaselineMmWave(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated run in -short mode")
	}
	r, err := BaselineMmWave(52)
	if err != nil {
		t.Fatal(err)
	}
	// The §1 story in numbers: Cyclops carries ≈2× the data under the
	// same motion, and raw 4K30 video fits it but not mmWave.
	if r.CyclopsGoodputGbps < 1.5*r.MmWaveGoodputGbps {
		t.Errorf("Cyclops %.2f Gbps not ≫ mmWave %.2f", r.CyclopsGoodputGbps, r.MmWaveGoodputGbps)
	}
	if r.MmWave4K30Delivered > 0.9 {
		t.Errorf("mmWave delivered %.0f%% of raw 4K30 — it should not fit 6 Gbps",
			r.MmWave4K30Delivered*100)
	}
	if r.Cyclops4K30Delivered < 0.9 {
		t.Errorf("Cyclops delivered only %.0f%% of raw 4K30", r.Cyclops4K30Delivered*100)
	}
	// mmWave's virtue is real too: it never drops under this motion.
	if r.MmWaveUpFraction < 0.999 {
		t.Errorf("mmWave up %.3f under gentle motion", r.MmWaveUpFraction)
	}
	t.Log("\n" + r.Render())
}

func TestEyeSafetyTable(t *testing.T) {
	out := EyeSafetyTable()
	if !strings.Contains(out, "CLASS 1") {
		t.Errorf("safety table: %s", out)
	}
	// All four standard designs present.
	if got := strings.Count(out, "\n"); got < 5 {
		t.Errorf("table too short:\n%s", out)
	}
}

func TestFutureWork40G(t *testing.T) {
	out := FutureWork40G()
	if !strings.Contains(out, "FAILS budget") {
		t.Error("standard collimator should fail some lanes")
	}
	if !strings.Contains(out, "4/4 lanes") {
		t.Error("custom collimator should close all lanes")
	}
	t.Log("\n" + out)
}
