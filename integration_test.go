package cyclops

import (
	"math"
	"testing"
	"time"
)

// Integration tests exercising the whole stack through the public API.

func TestSystemDeterminism(t *testing.T) {
	// Identical seeds must produce bit-identical runs: same calibration,
	// same pointing decisions, same throughput windows. This is what
	// makes every experiment in EXPERIMENTS.md reproducible.
	run := func() RunResult {
		sys := NewSystem(Link10G, 77)
		sys.UseOracleModels()
		res, err := sys.Run(RunOptions{
			Program:     LinearRail(0.15, 0.12, 0, 2),
			SampleEvery: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.UpFraction != b.UpFraction || a.Points != b.Points ||
		a.TotalPointIters != b.TotalPointIters {
		t.Fatalf("runs diverged: %+v vs %+v", a.Points, b.Points)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed int64) float64 {
		sys := NewSystem(Link10G, seed)
		sys.UseOracleModels()
		return sys.Plant.ReceivedPowerDBm()
	}
	if mk(1) == mk(2) {
		t.Error("different seeds produced identical hidden worlds")
	}
}

func TestCalibratedSystemSurvivesTracePlayback(t *testing.T) {
	// End-to-end: calibrate, then play a real viewing trace through the
	// full controller (not the §5.4 abstraction) — the link should be up
	// nearly all the time for normal viewing.
	if testing.Short() {
		t.Skip("full-system trace run in -short mode")
	}
	sys := NewSystem(Link10G, 78)
	if _, err := sys.Calibrate(); err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrace(5, 3, 20*time.Second)
	res, err := sys.Run(RunOptions{
		Program:     Playback(tr),
		SampleEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §5.4's metric: the fraction of time the beam is *aligned* (power
	// above sensitivity). The SFP's multi-second re-lock makes the raw
	// up-fraction far worse whenever a saccade tail briefly exceeds
	// tolerance — which is exactly why the paper's §5.4 simulation
	// counts slots, and why §6 pushes for higher-rate tracking.
	var ok int
	for _, s := range res.Samples {
		if s.PowerOK {
			ok++
		}
	}
	aligned := float64(ok) / float64(len(res.Samples))
	if aligned < 0.93 {
		t.Errorf("viewing-trace aligned fraction %.3f — normal use should mostly hold", aligned)
	}
	if res.PointFailures > res.Points/50 {
		t.Errorf("%d/%d pointing failures", res.PointFailures, res.Points)
	}
	t.Logf("trace playback: aligned %.1f%%, SFP up %.1f%%, %d solves, %.1f P iters",
		aligned*100, res.UpFraction*100, res.Points, res.MeanPointIters())
}

func TestRecalibrationAfterRedeployment(t *testing.T) {
	// The §4 deployment story: moving the installation (new VR-space,
	// new mounts) only requires redoing the mapping stage; the K-space
	// models carry over. We simulate by recalibrating a second system
	// that reuses the first system's stage-1 models.
	if testing.Short() {
		t.Skip("two calibrations in -short mode")
	}
	sysA := NewSystem(Link10G, 79)
	repA, err := sysA.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	_ = repA

	// "Redeploy": fresh tracker/mounts (different seed) but the same
	// physical GMAs is not constructible through the public API, so we
	// verify the weaker, still-meaningful property: a second full
	// calibration of an independent system also converges to working
	// pointing. (Stage-1 model portability is covered by
	// gma.Transformed's tests.)
	sysB := NewSystem(Link10G, 80)
	if _, err := sysB.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*System{sysA, sysB} {
		res, err := sys.Run(RunOptions{
			Program: LinearRail(0.10, 0.10, 0, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.UpFraction < 0.95 {
			t.Errorf("calibrated system up fraction %.2f", res.UpFraction)
		}
	}
}

func TestStreamVideoEdgeCases(t *testing.T) {
	// Empty run: nothing generated.
	st := StreamVideo(RunResult{}, Video4K30, 9.4)
	if st.Generated != 0 {
		t.Errorf("empty run generated %d frames", st.Generated)
	}
	// Single-sample run does not panic and uses the fallback tick.
	one := RunResult{Samples: []Sample{{At: 0, Up: true}}}
	_ = StreamVideo(one, Video4K30, 9.4)
}

func TestSpeedAccessors(t *testing.T) {
	s := Sample{LinSpeed: 0.25, AngSpeed: 0.5}
	if LinSpeedOf(s) != 0.25 || AngSpeedOf(s) != 0.5 {
		t.Error("accessors broken")
	}
}

func TestDefaultHeadsetPoseGeometry(t *testing.T) {
	// The default rig geometry is the paper's 1.5–2 m link.
	h := DefaultHeadsetPose()
	txHeight := 2.75
	d := math.Hypot(math.Hypot(h.Trans.X, h.Trans.Y), txHeight-h.Trans.Z)
	if d < 1.5 || d > 2.0 {
		t.Errorf("default TX-RX distance %.2f m, want 1.5-2", d)
	}
}
