package cyclops

import (
	"strings"
	"time"
)

// Experiment is one runnable unit of the paper's evaluation: a table, a
// figure, or a bundle of related ablations. Every experiment is driven by
// a single seed (all hidden variation derives from it) and returns a
// Result that renders the same rows the paper reports.
//
// The concrete experiments remain plain functions (Fig3, Table1, …) —
// this interface is the uniform surface the command-line tools and
// harnesses dispatch on.
type Experiment interface {
	// Name is the registry key ("fig3", "table1", …), stable across
	// releases.
	Name() string
	// Run executes the experiment with the given seed.
	Run(seed int64) (Result, error)
}

// Result is a structured experiment outcome that can render itself as the
// paper-style text report. All the per-experiment result types
// (Fig3Result, Table1Result, MotionResult, …) satisfy it.
type Result interface {
	Render() string
}

// experimentFunc adapts a closure to the Experiment interface.
type experimentFunc struct {
	name string
	run  func(seed int64) (Result, error)
}

func (e experimentFunc) Name() string                   { return e.name }
func (e experimentFunc) Run(seed int64) (Result, error) { return e.run(seed) }

// multiResult concatenates sub-results in order — for experiments that
// produce several reports (Fig 13's two rigs, the ablation bundle).
type multiResult []Result

func (m multiResult) Render() string {
	var b strings.Builder
	for _, r := range m {
		b.WriteString(r.Render())
	}
	return b.String()
}

// textResult wraps an already-rendered report (the eye-safety table and
// other static text sections).
type textResult string

func (t textResult) Render() string { return string(t) }

// Experiments returns the full evaluation suite in canonical order — the
// order `cyclops-bench -experiment all` runs and prints them. Seed
// handling inside each entry (offsets between sub-experiments) is part of
// the experiment's definition and matches the historical cyclops-bench
// behavior exactly.
func Experiments() []Experiment {
	return []Experiment{
		experimentFunc{"fig3", func(s int64) (Result, error) {
			return Fig3(s, 25), nil
		}},
		experimentFunc{"table1", func(int64) (Result, error) {
			return Table1(), nil
		}},
		experimentFunc{"fig11", func(int64) (Result, error) {
			return Fig11(), nil
		}},
		experimentFunc{"table2", func(s int64) (Result, error) {
			r, err := Table2(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"tp", func(s int64) (Result, error) {
			r, err := TPEvaluation(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"fig13", func(s int64) (Result, error) {
			lin, ang, err := Fig13(s)
			if err != nil {
				return nil, err
			}
			return multiResult{lin, ang}, nil
		}},
		experimentFunc{"fig14", func(s int64) (Result, error) {
			m, err := Fig14(s)
			if err != nil {
				return nil, err
			}
			return m, nil
		}},
		experimentFunc{"fig15", func(s int64) (Result, error) {
			lin, ang, mix, err := Fig15(s)
			if err != nil {
				return nil, err
			}
			return multiResult{lin, ang, mix}, nil
		}},
		experimentFunc{"table3", func(s int64) (Result, error) {
			r, err := Table3(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"fig16", func(s int64) (Result, error) {
			return Fig16(s), nil
		}},
		experimentFunc{"fig16-faults", func(s int64) (Result, error) {
			r, err := Fig16Faults(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"fig16-handover", func(s int64) (Result, error) {
			r, err := Fig16Handover(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"fig16-arena", func(s int64) (Result, error) {
			r, err := Fig16Arena(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"fig16-hybrid", func(s int64) (Result, error) {
			r, err := Fig16Hybrid(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"convergence", func(s int64) (Result, error) {
			r, err := Convergence(s)
			if err != nil {
				return nil, err
			}
			return r, nil
		}},
		experimentFunc{"ablations", func(s int64) (Result, error) {
			dg, err := AblationDirectGPrime(s)
			if err != nil {
				return nil, err
			}
			fo, err := AblationFixedOrigin(s + 1)
			if err != nil {
				return nil, err
			}
			tr := textResult(RenderTrackingRate(AblationTrackingRate(s+2, []time.Duration{
				2 * time.Millisecond, 5 * time.Millisecond,
				10 * time.Millisecond, 20 * time.Millisecond,
			})))
			bc, err := AblationBeamChoice(s + 3)
			if err != nil {
				return nil, err
			}
			cp, err := AblationCouplingImprovement(s + 4)
			if err != nil {
				return nil, err
			}
			return multiResult{dg, fo, tr, bc, cp}, nil
		}},
		experimentFunc{"extensions", func(s int64) (Result, error) {
			h, err := ExtensionHandover(s)
			if err != nil {
				return nil, err
			}
			bm, err := BaselineMmWave(s + 1)
			if err != nil {
				return nil, err
			}
			return multiResult{h, bm, textResult(EyeSafetyTable()), textResult(FutureWork40G())}, nil
		}},
	}
}

// LookupExperiment finds a registry entry by name (case-insensitive).
func LookupExperiment(name string) (Experiment, bool) {
	name = strings.ToLower(name)
	for _, e := range Experiments() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
