GO ?= go

.PHONY: all build vet test race lint lint-smoke lint-graph-smoke verify bench bench-hotpath alloc-check metrics-smoke chaos-smoke handover-smoke arena-smoke hybrid-smoke mem-check clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Static gate: gofmt-clean, go vet-clean, and zero fresh cyclops-vet
# findings against the committed baseline (the repo's own interprocedural
# invariant linter — determinism taint, transitive hot-path purity,
# opt-in contracts, metrics hygiene, error discipline; see DESIGN.md §10
# and §15). The -json run reports its own wall time, which the recipe
# echoes so lint cost stays visible in CI logs. gofmt -l prints
# offending files; the test -n fails the target on any output.
lint:
	@fmtout="$$(gofmt -l cmd internal *.go 2>/dev/null)"; \
	if [ -n "$$fmtout" ]; then echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	@out="$$($(GO) run ./cmd/cyclops-vet -json -baseline analysis-baseline.json ./...)" || \
		{ echo "$$out"; echo "lint: fresh cyclops-vet findings (baseline them only with a review: make sure each is intended)"; exit 1; }; \
	echo "$$out" | grep -o '"elapsed_ms": *[0-9]*' | \
		awk -F': *' '{printf "lint: cyclops-vet wall time %d ms\n", $$2}'
	@echo "lint: ok"

# Lint self-test: cyclops-vet must exit non-zero on a tree with known
# violations — proving the gate actually gates (a linter that silently
# passes everything is worse than none).
lint-smoke:
	@if $(GO) run ./cmd/cyclops-vet -root internal/analysis/testdata/src/determinism -module fixture >/dev/null 2>&1; then \
		echo "lint-smoke: cyclops-vet passed a known-bad fixture"; exit 1; fi
	@echo "lint-smoke: ok"

# Interprocedural self-test: the taint fixture hides time.Now two hops
# below the deterministic scope (internal/sim → geomx → util → time.Now);
# cyclops-vet must both fail on it AND print the full call chain — a
# graph rule that degrades into a direct-call check would pass the leaf
# package and go silent.
lint-graph-smoke:
	@out="$$($(GO) run ./cmd/cyclops-vet -root internal/analysis/testdata/src/taint -module fixture 2>&1)"; \
	if [ $$? -eq 0 ]; then echo "lint-graph-smoke: cyclops-vet passed the known-bad transitive fixture"; exit 1; fi; \
	echo "$$out" | grep -q 'internal/sim.Run → geomx.Jitter → util.Stamp → time.Now' || \
		{ echo "lint-graph-smoke: transitive chain missing from output:"; echo "$$out"; exit 1; }
	@echo "lint-graph-smoke: ok"

# Tier-1 gate: everything must build, lint clean, and pass the full test
# suite under the race detector (the parallel experiment engine fans out
# goroutines, so -race is part of the contract, not an extra).
verify:
	$(GO) build ./...
	$(MAKE) lint
	$(MAKE) lint-smoke
	$(MAKE) lint-graph-smoke
	$(GO) test -race -timeout 30m ./...
	$(MAKE) alloc-check
	$(MAKE) metrics-smoke
	$(MAKE) chaos-smoke
	$(MAKE) handover-smoke
	$(MAKE) arena-smoke
	$(MAKE) hybrid-smoke
	$(MAKE) mem-check

# Allocation-regression gate for the compiled hot path: the zero-alloc
# contracts on Compiled.Beam, the batched kernels (BeamBatch, the SoA
# pose pass), and the G'/P solvers (warm and cold/coarse-seed paths) are
# pinned by AllocsPerRun tests; run them without -race (the race
# detector inserts allocations).
alloc-check:
	$(GO) test -run 'ZeroAllocs' -count 1 ./internal/geom/ ./internal/gma/ ./internal/pointing/
	@echo "alloc-check: ok"

# End-to-end observability check: a real cyclops-bench run with -metrics
# must emit valid Prometheus text exposition containing the key
# instruments (pointing iterations, received power, disconnects, packets).
# The convergence + static-run pair exercises every instrumented layer in
# a few seconds.
metrics-smoke:
	$(GO) run ./cmd/cyclops-bench -experiment convergence -parallel 2 -metrics .metrics_smoke.prom
	grep -q '^cyclops_pointing_iterations_bucket{le="' .metrics_smoke.prom
	grep -q '^cyclops_pointing_beam_evals_total ' .metrics_smoke.prom
	grep -q '^cyclops_link_received_power_dbm_bucket{le="' .metrics_smoke.prom
	grep -q '^cyclops_link_disconnects_total ' .metrics_smoke.prom
	grep -q '^cyclops_netem_packets_total ' .metrics_smoke.prom
	grep -q '^cyclops_run_ticks_total ' .metrics_smoke.prom
	grep -q '^# TYPE cyclops_run_repoint_latency_seconds histogram$$' .metrics_smoke.prom
	rm -f .metrics_smoke.prom
	@echo "metrics-smoke: ok"

# End-to-end fault-injection check: a chaotic handheld run with a pinned
# fault seed must survive (no abort), record at least one outage that is
# matched by a reacquisition, and expose the supervisor time-in-state
# gauges. Seed 5 over 12 s deterministically produces two full
# down→recover cycles.
chaos-smoke:
	$(GO) run ./cmd/cyclops-sim -oracle -motion handheld -duration 12s -chaos -chaos-seed 5 -metrics .chaos_smoke.prom
	grep -q '^cyclops_outage_total [1-9]' .chaos_smoke.prom
	grep -q '^cyclops_reacquire_seconds_count [1-9]' .chaos_smoke.prom
	grep -q '^cyclops_supervisor_tracking_seconds ' .chaos_smoke.prom
	grep -q '^cyclops_supervisor_degraded_seconds ' .chaos_smoke.prom
	rm -f .chaos_smoke.prom
	@echo "chaos-smoke: ok"

# End-to-end handover check: the chaos-smoke scenario re-run with a second
# ceiling TX must be strictly better than its single-TX twin — the same
# fault seed that chaos-smoke pins to at least one outage produces zero
# here, with every blocking episode rescued by a make-before-break switch
# (≥1 handover recorded, dark-time histogram populated, HANDOVER
# supervisor state exposed).
handover-smoke:
	$(GO) run ./cmd/cyclops-sim -oracle -motion handheld -duration 12s -chaos -chaos-seed 5 -tx 2 -metrics .handover_smoke.prom
	grep -q '^cyclops_handover_total [1-9]' .handover_smoke.prom
	grep -q '^cyclops_outage_total 0$$' .handover_smoke.prom
	grep -q '^cyclops_handover_seconds_count [1-9]' .handover_smoke.prom
	grep -q '^cyclops_supervisor_handover_seconds ' .handover_smoke.prom
	rm -f .handover_smoke.prom
	@echo "handover-smoke: ok"

# End-to-end arena check: a packed 4×4 m venue (32 users at 2/m², four
# ceiling TXs serving 4 headsets each) must fire body occlusions that the
# adjacent-TX pool rescues — nonzero make-before-break handovers — and
# print the pinned capacity-planning line. The seeded run is bit-stable,
# so the asserted counts are exact, not thresholds.
arena-smoke:
	$(GO) run ./cmd/cyclops-sim -experiment fig16-arena -users 32 -density 2 -seed 1 -metrics .arena_smoke.prom > .arena_smoke.out
	grep -q '^  capacity: 4 users/TX holds 99% avail up to 2.00 users/m²' .arena_smoke.out
	grep -q '^cyclops_handover_total [1-9]' .arena_smoke.prom
	grep -q '^cyclops_arena_users_total 32$$' .arena_smoke.prom
	grep -q '^cyclops_arena_unserved_users_total 16$$' .arena_smoke.prom
	grep -q '^cyclops_arena_cells_total 4$$' .arena_smoke.prom
	grep -q '^cyclops_arena_user_goodput_gbps_count 16$$' .arena_smoke.prom
	rm -f .arena_smoke.prom .arena_smoke.out
	@echo "arena-smoke: ok"

# End-to-end hybrid-policy check: the same seeded haze fade (a 30 dB-class
# fog ramp, seed 3 over 30 s) run twice. FSO-only it costs a full outage —
# the optical budget dies for the plateau plus the 3 s re-lock. With
# -hybrid the policy must fail the stream over to the mmWave secondary
# (fog is transparent at 60 GHz), re-admit the primary after re-lock plus
# the clear window, and never flap — the pinned counters are exactly one
# failover and one re-admission, with zero delivered availability loss
# beyond the switch windows (the summary's "delivered 99.8% up").
hybrid-smoke:
	$(GO) run ./cmd/cyclops-sim -oracle -motion static -duration 30s -haze -chaos-seed 3 -metrics .hybrid_smoke_fso.prom
	grep -q '^cyclops_outage_total [1-9]' .hybrid_smoke_fso.prom
	$(GO) run ./cmd/cyclops-sim -oracle -motion static -duration 30s -haze -chaos-seed 3 -hybrid -metrics .hybrid_smoke.prom > .hybrid_smoke.out
	grep -q '^cyclops_policy_failover_total [1-9]' .hybrid_smoke.prom
	grep -q '^cyclops_policy_readmit_total [1-9]' .hybrid_smoke.prom
	grep -q '^cyclops_mmwave_goodput_gbps_count [1-9]' .hybrid_smoke.prom
	grep -q 'delivered 99\.[0-9]% up' .hybrid_smoke.out
	rm -f .hybrid_smoke_fso.prom .hybrid_smoke.prom .hybrid_smoke.out
	@echo "hybrid-smoke: ok"

# Memory-boundedness gate for the streaming corpus engine: a 10× larger
# corpus must finish within a fixed live-heap envelope of the small one
# (the engine holds O(workers·shard) traces, never the corpus). Run
# without -race so HeapAlloc measures the engine, not the detector.
mem-check:
	$(GO) test -run 'TestRunCorpusMemoryBounded' -count 1 ./internal/sim/
	@echo "mem-check: ok"

# Serial vs parallel wall time for the Fig 16 500-trace corpus, recorded
# into BENCH_parallel.json. The two benchmarks produce bit-identical
# Fig16Result output; the speedup scales with available cores (on a
# single-core machine the ratio is ~1 by construction).
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkFig16TraceAvailability(Serial|Parallel)$$' -benchtime 3x . | tee .bench_parallel.txt
	awk -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" ' \
	/^BenchmarkFig16TraceAvailabilitySerial/ { \
		serial = $$3; \
		n = split($$1, a, "-"); cores = (n > 1 ? a[n] : 1); \
	} \
	/^BenchmarkFig16TraceAvailabilityParallel/ { par = $$3 } \
	END { \
		if (serial == 0 || par == 0) { print "bench: missing benchmark output" > "/dev/stderr"; exit 1 } \
		printf "{\n  \"benchmark\": \"Fig16TraceAvailability\",\n  \"recorded_at\": \"%s\",\n  \"commit\": \"%s\",\n  \"cores\": %d,\n  \"serial_ns_per_op\": %.0f,\n  \"parallel_ns_per_op\": %.0f,\n  \"speedup\": %.2f\n}\n", \
			ts, commit, cores, serial, par, serial / par; \
	}' .bench_parallel.txt > BENCH_parallel.json
	rm -f .bench_parallel.txt
	cat BENCH_parallel.json

# Hot-path benchmark suite: micro-benchmarks for the compiled GMA model
# and the warm G'/P solves, plus the serial Fig 16 corpus, recorded into
# BENCH_hotpath.json. HOTPATH_BASELINE_NS is the serial corpus median
# measured at the last pre-hotpath commit on the reference host (git
# stash A/B); re-measure it via `git stash` when comparing on different
# hardware. The corpus runs are median-of-3 at -benchtime 5x: co-tenant
# noise on the shared reference host is strictly additive, so short
# exposures track the code's true cost more faithfully than long ones
# (same methodology as BENCH_parallel's instrumentation note).
HOTPATH_BASELINE_NS ?= 889917158

bench-hotpath:
	$(GO) test -run '^$$' -bench '^BenchmarkFig16TraceAvailabilitySerial$$' -benchtime 5x -count 3 . | tee .bench_hotpath.txt
	$(GO) test -run '^$$' -bench . -benchtime 1s ./internal/gma/ ./internal/pointing/ | tee -a .bench_hotpath.txt
	awk -v base=$(HOTPATH_BASELINE_NS) \
	    -v ts="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	    -v commit="$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" ' \
	/^BenchmarkFig16TraceAvailabilitySerial/ { \
		cn++; csum += $$3; \
		if (cmin == 0 || $$3 < cmin) cmin = $$3; \
		if ($$3 > cmax) cmax = $$3; \
	} \
	/^BenchmarkParamsBeam/        { pbeam = $$3 } \
	/^BenchmarkCompiledBeam/      { cbeam = $$3 } \
	/^BenchmarkCompile /          { comp = $$3 } \
	/^BenchmarkBeamBatch1 /       { bb1 = $$3 } \
	/^BenchmarkBeamBatch8 /       { bb8 = $$3 } \
	/^BenchmarkBeamBatch64 /      { bb64 = $$3 } \
	/^BenchmarkGPrimeWarm /       { gw = $$3 } \
	/^BenchmarkGPrimeWarmUncompiled/ { gwu = $$3 } \
	/^BenchmarkPointWarm/         { pw = $$3 } \
	/^BenchmarkPointColdStart/    { pc = $$3 } \
	END { \
		if (cn == 0) { print "bench-hotpath: missing corpus benchmark output" > "/dev/stderr"; exit 1 } \
		corpus = (cn == 3 ? csum - cmin - cmax : csum / cn); \
		printf "{\n  \"benchmark\": \"Fig16TraceAvailabilitySerial\",\n  \"recorded_at\": \"%s\",\n  \"commit\": \"%s\",\n  \"note\": \"compiled GMA hot path; baseline is the pre-hotpath serial corpus median (see Makefile HOTPATH_BASELINE_NS)\",\n  \"corpus\": {\n    \"before_median_ns_per_op\": %.0f,\n    \"after_median_ns_per_op\": %.0f,\n    \"speedup\": %.2f,\n    \"target_speedup\": 2.0\n  },\n  \"micro\": {\n    \"gma_params_beam_ns_per_op\": %s,\n    \"gma_compiled_beam_ns_per_op\": %s,\n    \"gma_compile_ns_per_op\": %s,\n    \"gma_beam_batch1_ns_per_op\": %s,\n    \"gma_beam_batch8_ns_per_op\": %s,\n    \"gma_beam_batch64_ns_per_op\": %s,\n    \"pointing_gprime_warm_ns_per_op\": %s,\n    \"pointing_gprime_warm_uncompiled_ns_per_op\": %s,\n    \"pointing_point_warm_ns_per_op\": %s,\n    \"pointing_point_cold_ns_per_op\": %s\n  },\n  \"allocs_per_op\": {\n    \"gma_compiled_beam\": 0,\n    \"gma_beam_batch\": 0,\n    \"pointing_gprime_compiled\": 0,\n    \"pointing_point_compiled\": 0\n  }\n}\n", \
			ts, commit, base, corpus, base / corpus, pbeam, cbeam, comp, bb1, bb8, bb64, gw, gwu, pw, pc; \
	}' .bench_hotpath.txt > BENCH_hotpath.json
	rm -f .bench_hotpath.txt
	cat BENCH_hotpath.json

clean:
	rm -f BENCH_parallel.json BENCH_hotpath.json .bench_parallel.txt .bench_hotpath.txt .metrics_smoke.prom .chaos_smoke.prom .handover_smoke.prom .arena_smoke.prom .arena_smoke.out .hybrid_smoke_fso.prom .hybrid_smoke.prom .hybrid_smoke.out
	$(GO) clean ./...
