GO ?= go

.PHONY: all build vet test race verify bench metrics-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel experiment engine fans out
# goroutines, so -race is part of the contract, not an extra).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) metrics-smoke

# End-to-end observability check: a real cyclops-bench run with -metrics
# must emit valid Prometheus text exposition containing the key
# instruments (pointing iterations, received power, disconnects, packets).
# The convergence + static-run pair exercises every instrumented layer in
# a few seconds.
metrics-smoke:
	$(GO) run ./cmd/cyclops-bench -experiment convergence -parallel 2 -metrics .metrics_smoke.prom
	grep -q '^cyclops_pointing_iterations_bucket{le="' .metrics_smoke.prom
	grep -q '^cyclops_link_received_power_dbm_bucket{le="' .metrics_smoke.prom
	grep -q '^cyclops_link_disconnects_total ' .metrics_smoke.prom
	grep -q '^cyclops_netem_packets_total ' .metrics_smoke.prom
	grep -q '^cyclops_run_ticks_total ' .metrics_smoke.prom
	grep -q '^# TYPE cyclops_run_repoint_latency_seconds histogram$$' .metrics_smoke.prom
	rm -f .metrics_smoke.prom
	@echo "metrics-smoke: ok"

# Serial vs parallel wall time for the Fig 16 500-trace corpus, recorded
# into BENCH_parallel.json. The two benchmarks produce bit-identical
# Fig16Result output; the speedup scales with available cores (on a
# single-core machine the ratio is ~1 by construction).
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkFig16TraceAvailability(Serial|Parallel)$$' -benchtime 3x . | tee .bench_parallel.txt
	awk ' \
	/^BenchmarkFig16TraceAvailabilitySerial/ { \
		serial = $$3; \
		n = split($$1, a, "-"); cores = (n > 1 ? a[n] : 1); \
	} \
	/^BenchmarkFig16TraceAvailabilityParallel/ { par = $$3 } \
	END { \
		if (serial == 0 || par == 0) { print "bench: missing benchmark output" > "/dev/stderr"; exit 1 } \
		printf "{\n  \"benchmark\": \"Fig16TraceAvailability\",\n  \"cores\": %d,\n  \"serial_ns_per_op\": %.0f,\n  \"parallel_ns_per_op\": %.0f,\n  \"speedup\": %.2f\n}\n", \
			cores, serial, par, serial / par; \
	}' .bench_parallel.txt > BENCH_parallel.json
	rm -f .bench_parallel.txt
	cat BENCH_parallel.json

clean:
	rm -f BENCH_parallel.json .bench_parallel.txt .metrics_smoke.prom
	$(GO) clean ./...
