GO ?= go

.PHONY: all build vet test race verify bench clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel experiment engine fans out
# goroutines, so -race is part of the contract, not an extra).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# Serial vs parallel wall time for the Fig 16 500-trace corpus, recorded
# into BENCH_parallel.json. The two benchmarks produce bit-identical
# Fig16Result output; the speedup scales with available cores (on a
# single-core machine the ratio is ~1 by construction).
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkFig16TraceAvailability(Serial|Parallel)$$' -benchtime 3x . | tee .bench_parallel.txt
	awk ' \
	/^BenchmarkFig16TraceAvailabilitySerial/ { \
		serial = $$3; \
		n = split($$1, a, "-"); cores = (n > 1 ? a[n] : 1); \
	} \
	/^BenchmarkFig16TraceAvailabilityParallel/ { par = $$3 } \
	END { \
		if (serial == 0 || par == 0) { print "bench: missing benchmark output" > "/dev/stderr"; exit 1 } \
		printf "{\n  \"benchmark\": \"Fig16TraceAvailability\",\n  \"cores\": %d,\n  \"serial_ns_per_op\": %.0f,\n  \"parallel_ns_per_op\": %.0f,\n  \"speedup\": %.2f\n}\n", \
			cores, serial, par, serial / par; \
	}' .bench_parallel.txt > BENCH_parallel.json
	rm -f .bench_parallel.txt
	cat BENCH_parallel.json

clean:
	rm -f BENCH_parallel.json .bench_parallel.txt
	$(GO) clean ./...
