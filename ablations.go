package cyclops

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cyclops/internal/galvo"
	"cyclops/internal/geom"
	"cyclops/internal/kspace"
	"cyclops/internal/motion"
	"cyclops/internal/optimize"
	"cyclops/internal/parallel"
	"cyclops/internal/pointing"
	"cyclops/internal/sim"
	"cyclops/internal/trace"
)

// This file implements the ablations DESIGN.md calls out: each isolates
// one design decision of the paper and measures what happens without it.

// ---------------------------------------------- direct G′ (footnote 3) —

// DirectGPrimeResult compares learning the reverse function G′ directly
// from samples (a generic function approximator, no physical structure)
// against the paper's model-based approach.
type DirectGPrimeResult struct {
	TrainSamples int
	// SamePlaneErrorMM is the direct fit's error on the training plane.
	SamePlaneErrorMM float64
	// OffPlaneErrorMM is its error 0.5 m behind the training plane —
	// the depth generalization a VR deployment needs. Footnote 3: "even
	// several hundred training samples yielded an error of a few cms".
	OffPlaneErrorMM float64
	// ModelBasedOffPlaneErrorMM is the paper's approach on the same
	// off-plane targets.
	ModelBasedOffPlaneErrorMM float64
}

// AblationDirectGPrime fits a quadratic regression voltages = f(target)
// on one plane of grid samples and evaluates depth generalization,
// against the physically structured model learned from the same data.
func AblationDirectGPrime(seed int64) (DirectGPrimeResult, error) {
	dev := galvo.NewUnit(seed)
	rig := kspace.NewRig(dev, seed+1)
	samples, err := rig.Collect()
	if err != nil {
		return DirectGPrimeResult{}, err
	}
	var res DirectGPrimeResult
	res.TrainSamples = len(samples)

	// Direct approach: v1 and v2 each as quadratic polynomials in the
	// 2-D board target. (The direct learner has no access to depth — a
	// plane of aligned samples is all the deployment procedure yields.)
	design := func(x, y float64) []float64 {
		return []float64{1, x, y, x * x, y * y, x * y}
	}
	fitPoly := func(val func(kspace.Sample) float64) []float64 {
		f := func(p, out []float64) {
			for i, s := range samples {
				d := design(s.X, s.Y)
				var pred float64
				for j := range d {
					pred += p[j] * d[j]
				}
				out[i] = pred - val(s)
			}
		}
		r, err := optimize.LeastSquares(f, make([]float64, 6), len(samples), optimize.LMOptions{})
		if err != nil {
			return make([]float64, 6)
		}
		return r.X
	}
	p1 := fitPoly(func(s kspace.Sample) float64 { return s.V1 })
	p2 := fitPoly(func(s kspace.Sample) float64 { return s.V2 })
	evalPoly := func(p []float64, x, y float64) float64 {
		d := design(x, y)
		var v float64
		for j := range d {
			v += p[j] * d[j]
		}
		return v
	}

	// The model-based approach from the same samples.
	learned, _, err := kspace.Fit(samples, rig.Board(), dev.Truth())
	if err != nil {
		return res, err
	}

	// Evaluate both: command the *predicted* voltages on the real device
	// and measure how far the beam lands from the target, on the
	// training plane and half a meter deeper.
	evalOn := func(boardZ float64) (direct, model float64) {
		board := geom.NewPlane(geom.V(0, 0, boardZ), geom.V(0, 0, -1))
		n := 0
		for _, tgt := range kspace.GridTargets()[:60] {
			// Direct: the regression knows only (x, y); feed it the
			// target's transverse coordinates.
			v1 := evalPoly(p1, tgt.X, tgt.Y)
			v2 := evalPoly(p2, tgt.X, tgt.Y)
			beam, err := dev.Truth().Beam(v1, v2)
			if err != nil {
				continue
			}
			hit, _, err := board.Intersect(beam)
			if err != nil {
				continue
			}
			direct += math.Hypot(hit.X-tgt.X, hit.Y-tgt.Y)

			// Model-based: solve G′ for the true 3-D target.
			tau := geom.V(tgt.X, tgt.Y, boardZ)
			mv1, mv2, _, err := pointing.GPrime(learned, tau, 0, 0, pointing.GPrimeOptions{})
			if err != nil {
				continue
			}
			mbeam, err := dev.Truth().Beam(mv1, mv2)
			if err != nil {
				continue
			}
			mhit, _, err := board.Intersect(mbeam)
			if err != nil {
				continue
			}
			model += math.Hypot(mhit.X-tgt.X, mhit.Y-tgt.Y)
			n++
		}
		if n == 0 {
			return 0, 0
		}
		return direct / float64(n) * 1e3, model / float64(n) * 1e3
	}

	res.SamePlaneErrorMM, _ = evalOn(rig.BoardDistance)
	res.OffPlaneErrorMM, res.ModelBasedOffPlaneErrorMM = evalOn(rig.BoardDistance + 0.5)
	return res, nil
}

// Render prints the comparison.
func (r DirectGPrimeResult) Render() string {
	return fmt.Sprintf(`Ablation: direct G' learning vs model-based (footnote 3)
  training samples            %d
  direct fit, training plane  %6.1f mm
  direct fit, +0.5 m depth    %6.1f mm   <- "a few cms" failure mode
  model-based, +0.5 m depth   %6.1f mm
`, r.TrainSamples, r.SamePlaneErrorMM, r.OffPlaneErrorMM, r.ModelBasedOffPlaneErrorMM)
}

// ------------------------------------------- fixed beam origin ([32,33]) —

// FixedOriginResult compares the full distortion-aware GMA model against
// the simplification that the output beam origin p is a constant.
type FixedOriginResult struct {
	FullAvgMM  float64
	FixedAvgMM float64
}

// AblationFixedOrigin fits both models to the same grid samples and
// compares held-out board error (footnote 6: the origin's voltage
// dependence "results in distortion and needs to be considered for high
// accuracy").
func AblationFixedOrigin(seed int64) (FixedOriginResult, error) {
	dev := galvo.NewUnit(seed)
	rig := kspace.NewRig(dev, seed+1)
	samples, err := rig.Collect()
	if err != nil {
		return FixedOriginResult{}, err
	}
	var train, test []kspace.Sample
	for i, s := range samples {
		if i%3 == 2 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}

	full, _, err := kspace.Fit(train, rig.Board(), dev.Truth())
	if err != nil {
		return FixedOriginResult{}, err
	}

	// Fixed-origin model: beam from constant point p0 with direction
	// given by two steering angles linear in the voltages:
	// dir = Rz(a1+g·v1)·Rx(a2+g·v2)·ẑ — 8 parameters.
	fixedEval := func(p []float64, v1, v2 float64) geom.Ray {
		origin := geom.V(p[0], p[1], p[2])
		yaw := p[3] + p[6]*v1
		pitch := p[4] + p[7]*v2
		_ = p[5]
		dir := geom.QuatFromEuler(yaw, pitch, 0).Rotate(geom.V(0, 0, 1))
		return geom.NewRay(origin, dir)
	}
	board := rig.Board()
	f := func(p, out []float64) {
		for i, s := range train {
			hit, _, err := board.Intersect(fixedEval(p, s.V1, s.V2))
			if err != nil {
				out[2*i], out[2*i+1] = 1, 1
				continue
			}
			out[2*i] = hit.X - s.X
			out[2*i+1] = hit.Y - s.Y
		}
	}
	init := []float64{0, 0.01, 0, 0, 0, 0, -2 * 0.0349, 2 * 0.0349}
	fit, err := optimize.LeastSquares(f, init, 2*len(train), optimize.LMOptions{MaxIter: 400})
	if err != nil {
		return FixedOriginResult{}, err
	}

	var res FixedOriginResult
	fullEval := kspace.Evaluate(full, board, test)
	res.FullAvgMM = fullEval.AvgError * 1e3
	var sum float64
	n := 0
	for _, s := range test {
		hit, _, err := board.Intersect(fixedEval(fit.X, s.V1, s.V2))
		if err != nil {
			continue
		}
		sum += math.Hypot(hit.X-s.X, hit.Y-s.Y)
		n++
	}
	if n > 0 {
		res.FixedAvgMM = sum / float64(n) * 1e3
	}
	return res, nil
}

// Render prints the comparison.
func (r FixedOriginResult) Render() string {
	return fmt.Sprintf(`Ablation: fixed-origin GMA model ([32,33]) vs full model (footnote 6)
  full model held-out error    %5.2f mm
  fixed-origin held-out error  %5.2f mm
`, r.FullAvgMM, r.FixedAvgMM)
}

// ------------------------------------------------ tracking rate (§6) —

// TrackingRatePoint is availability at one report interval.
type TrackingRatePoint struct {
	ReportInterval time.Duration
	MeanOnFraction float64
}

// AblationTrackingRate reruns the §5.4 availability model with faster and
// slower trackers — the §6 claim that "a custom VRH-T with much higher
// tracking frequency will improve Cyclops's performance significantly".
// Each interval's 500-trace resample + simulation is independent, so the
// sweep fans out across the default worker pool (results in interval
// order, identical to the serial sweep).
func AblationTrackingRate(seed int64, intervals []time.Duration) []TrackingRatePoint {
	src := TraceSource(seed)
	return parallel.Map(len(intervals), 0, func(k int) TrackingRatePoint {
		iv := intervals[k]
		// resampledSource re-times each trace as it streams — the corpus
		// is never materialized at either sampling rate.
		c, err := sim.RunCorpus(resampledSource{src: src, interval: iv}, sim.CorpusOptions{
			Params: sim.Paper25G(),
			// The interval sweep already fans out; keep each corpus run
			// serial so the two levels don't oversubscribe the pool.
			Workers: 1,
		})
		if err != nil {
			// A context-free clean corpus run has no error source.
			panic(err) //cyclops:panic-ok unreachable
		}
		return TrackingRatePoint{ReportInterval: iv, MeanOnFraction: c.MeanOnFraction}
	})
}

// resampledSource wraps a trace source, re-timing every trace to a fixed
// report interval on the fly.
type resampledSource struct {
	src      trace.Source
	interval time.Duration
}

func (r resampledSource) Len() int { return r.src.Len() }

func (r resampledSource) At(i int) trace.Trace {
	return resampleTrace(r.src.At(i), r.interval)
}

// resampleTrace re-times a trace's reports to the given interval by
// interpolation — simulating a tracker with a different update rate
// watching the same motion.
func resampleTrace(tr trace.Trace, interval time.Duration) trace.Trace {
	out := trace.Trace{ID: tr.ID}
	for at := time.Duration(0); at <= tr.Duration(); at += interval {
		out.Samples = append(out.Samples, trace.Sample{At: at, Pose: tr.PoseAt(at)})
	}
	return out
}

// RenderTrackingRate prints the sweep.
func RenderTrackingRate(points []TrackingRatePoint) string {
	var b strings.Builder
	b.WriteString("Ablation: availability vs tracking report interval (§6)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %6v : %.2f%% slots operational\n", p.ReportInterval, p.MeanOnFraction*100)
	}
	return b.String()
}

// --------------------------------------- coupling improvement (§5.3) —

// CouplingResult quantifies the §5.3 received-power observation: "with
// even a 7-13dB improvement in the coupling loss, the prototype would be
// able to support much higher movement speeds."
type CouplingResult struct {
	// Angular speed thresholds (rad/s) with the prototype coupling and
	// with coupling improved by ImprovementDB.
	BaselineAngular float64
	ImprovedAngular float64
	ImprovementDB   float64
}

// AblationCouplingImprovement runs the rotation-stage sweep on the
// standard 10G design and on a variant with 10 dB less coupling loss
// (custom capture optics), using oracle models to isolate the link budget
// effect.
func AblationCouplingImprovement(seed int64) (CouplingResult, error) {
	r := CouplingResult{ImprovementDB: 10}

	run := func(cfg LinkConfig) (float64, error) {
		sys := NewSystem(cfg, seed)
		sys.UseOracleModels()
		res, err := sys.Run(RunOptions{
			Program: RotationStage(0.30, 0.15, 0.08, 10),

			SampleEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return 0, err
		}
		return SpeedThreshold(res.Samples, AngSpeedOf, 0.05, 20), nil
	}

	var err error
	if r.BaselineAngular, err = run(Link10G); err != nil {
		return r, err
	}
	improved := Link10G
	improved.Name = "10G diverging, coupling +10dB"
	improved.BaseInsertionDB -= r.ImprovementDB
	if r.ImprovedAngular, err = run(improved); err != nil {
		return r, err
	}
	return r, nil
}

// Render prints the coupling comparison.
func (r CouplingResult) Render() string {
	deg := func(v float64) float64 { return v * 180 / math.Pi }
	return fmt.Sprintf(`Ablation: coupling-loss improvement (§5.3 received-power headroom)
  prototype coupling:    angular threshold ≈ %4.1f deg/s
  coupling %+.0f dB:       angular threshold ≈ %4.1f deg/s
  (the paper: -38 dBm at 100 deg/s implies 7-13 dB buys much higher speeds)
`, deg(r.BaselineAngular), r.ImprovementDB, deg(r.ImprovedAngular))
}

// ------------------------------------------------- beam choice (§5.1) —

// BeamChoiceResult compares collimated vs diverging designs end to end on
// identical motion.
type BeamChoiceResult struct {
	CollimatedUpFraction float64
	DivergingUpFraction  float64
}

// AblationBeamChoice runs the same hand-held motion on both designs with
// oracle models (isolating the optics choice from learning error). The
// motion intensity ramps to the Fig 3 "normal use" envelope (≈14 cm/s,
// ≈19 deg/s) — speeds the chosen design must survive.
func AblationBeamChoice(seed int64) (BeamChoiceResult, error) {
	prog := func() motion.Program {
		return HandHeld(0.14, 0.33, 20*time.Second, seed)
	}
	// The two designs share nothing (each job builds its own system and
	// its own program instance), so they run concurrently.
	configs := []LinkConfig{Link10GCollimated, Link10G}
	up, err := parallel.MapErr(len(configs), 0, func(i int) (float64, error) {
		sys := NewSystem(configs[i], seed)
		sys.UseOracleModels()
		res, err := sys.Run(RunOptions{Program: prog()})
		if err != nil {
			return 0, err
		}
		return res.UpFraction, nil
	})
	if err != nil {
		return BeamChoiceResult{}, err
	}
	return BeamChoiceResult{CollimatedUpFraction: up[0], DivergingUpFraction: up[1]}, nil
}

// Render prints the comparison.
func (r BeamChoiceResult) Render() string {
	return fmt.Sprintf(`Ablation: beam choice under identical motion (§5.1)
  collimated 20mm link up  %5.1f%% of run
  diverging 16mm link up   %5.1f%% of run
`, r.CollimatedUpFraction*100, r.DivergingUpFraction*100)
}
