package cyclops

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cyclops/internal/core"
	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/optics"
	"cyclops/internal/parallel"
	"cyclops/internal/pointing"
	"cyclops/internal/sim"
)

// This file contains one runner per table/figure in the paper's
// evaluation. Each returns a structured result whose Render method prints
// the same rows/series the paper reports, so the benchmark harness and the
// cyclops-bench binary share a single implementation.

// ---------------------------------------------------------------- Fig 3 —

// Fig3Result holds the headset speed CDFs of §2.2.
type Fig3Result struct {
	// LinearCDF and AngularCDF are (speed, cumulative fraction) pairs;
	// linear in m/s, angular in rad/s.
	LinearX, LinearY   []float64
	AngularX, AngularY []float64
	P95LinearCmS       float64
	P95AngularDegS     float64
}

// Fig3 computes the speed CDFs over n synthetic viewing traces (the paper
// uses its own user study; we use the Fig 3-calibrated generator).
func Fig3(seed int64, n int) Fig3Result {
	var lin, ang []float64
	for i := 0; i < n; i++ {
		tr := GenerateTrace(seed, i, time.Minute)
		l, a := tr.Speeds()
		lin = append(lin, l...)
		ang = append(ang, a...)
	}
	sort.Float64s(lin)
	sort.Float64s(ang)
	cdf := func(v []float64, points int) (xs, ys []float64) {
		if len(v) == 0 {
			return nil, nil
		}
		for k := 0; k <= points; k++ {
			idx := k * (len(v) - 1) / points
			xs = append(xs, v[idx])
			ys = append(ys, float64(idx+1)/float64(len(v)))
		}
		return xs, ys
	}
	var r Fig3Result
	r.LinearX, r.LinearY = cdf(lin, 20)
	r.AngularX, r.AngularY = cdf(ang, 20)
	if len(lin) > 0 {
		r.P95LinearCmS = lin[int(0.95*float64(len(lin)-1))] * 100
		r.P95AngularDegS = ang[int(0.95*float64(len(ang)-1))] * 180 / math.Pi
	}
	return r
}

// Render prints the CDFs.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: VRH speed CDFs (paper: ≤14 cm/s linear, ≤19 deg/s angular in normal use)\n")
	fmt.Fprintf(&b, "  P95 linear  = %5.1f cm/s\n", r.P95LinearCmS)
	fmt.Fprintf(&b, "  P95 angular = %5.1f deg/s\n", r.P95AngularDegS)
	b.WriteString("  linear cm/s : CDF   |  angular deg/s : CDF\n")
	for i := range r.LinearX {
		fmt.Fprintf(&b, "  %8.2f : %.3f  |  %8.2f : %.3f\n",
			r.LinearX[i]*100, r.LinearY[i],
			r.AngularX[i]*180/math.Pi, r.AngularY[i])
	}
	return b.String()
}

// -------------------------------------------------------------- Table 1 —

// Table1Row is one link design's tolerance set.
type Table1Row struct {
	Design        string
	TXAngularMrad float64
	RXAngularMrad float64
	LateralMM     float64
	PeakPowerDBm  float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Collimated Table1Row
	Diverging  Table1Row
}

// Table1 evaluates the collimated and diverging 10G designs at the 20 mm
// operating point.
func Table1() Table1Result {
	row := func(c optics.LinkConfig) Table1Row {
		t := c.Tolerances()
		return Table1Row{
			Design:        c.Name,
			TXAngularMrad: optics.ToMrad(t.TXAngular),
			RXAngularMrad: optics.ToMrad(t.RXAngular),
			LateralMM:     optics.ToMM(t.Lateral),
			PeakPowerDBm:  t.PeakPowerDBm,
		}
	}
	return Table1Result{
		Collimated: row(optics.Collimated10G),
		Diverging:  row(optics.Diverging10G),
	}
}

// Render prints the Table 1 rows (paper values in parentheses).
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: link movement tolerances, 20 mm beam at RX\n")
	b.WriteString("                          Collimated        Diverging\n")
	fmt.Fprintf(&b, "  TX angular tolerance    %5.2f mrad (2.00)  %5.2f mrad (15.81)\n",
		r.Collimated.TXAngularMrad, r.Diverging.TXAngularMrad)
	fmt.Fprintf(&b, "  RX angular tolerance    %5.2f mrad (2.28)  %5.2f mrad (5.77)\n",
		r.Collimated.RXAngularMrad, r.Diverging.RXAngularMrad)
	fmt.Fprintf(&b, "  Peak received power     %+5.1f dBm (15)    %+5.1f dBm (-10)\n",
		r.Collimated.PeakPowerDBm, r.Diverging.PeakPowerDBm)
	return b.String()
}

// --------------------------------------------------------------- Fig 11 —

// Fig11Point is one beam-diameter sample of the sweep.
type Fig11Point struct {
	DiameterMM    float64
	TXAngularMrad float64
	RXAngularMrad float64
	PeakPowerDBm  float64
}

// Fig11Result is the angular-tolerance-vs-diameter sweep.
type Fig11Result struct {
	Points []Fig11Point
	// BestDiameterMM is where the RX tolerance peaks (paper: 16 mm at
	// 5.77 mrad).
	BestDiameterMM float64
	BestRXTolMrad  float64
}

// Fig11 sweeps the diverging design's beam diameter at RX.
func Fig11() Fig11Result {
	var r Fig11Result
	for d := 6.0; d <= 26.0001; d += 1 {
		c := optics.Diverging10G.WithRXDiameter(optics.MM(d))
		p := Fig11Point{
			DiameterMM:    d,
			TXAngularMrad: optics.ToMrad(c.TXAngularTolerance()),
			RXAngularMrad: optics.ToMrad(c.RXAngularTolerance()),
			PeakPowerDBm:  c.PeakReceivedPowerDBm(),
		}
		r.Points = append(r.Points, p)
		if p.RXAngularMrad > r.BestRXTolMrad {
			r.BestRXTolMrad, r.BestDiameterMM = p.RXAngularMrad, d
		}
	}
	return r
}

// Render prints the sweep series.
func (r Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 11: angular tolerance vs beam diameter at RX\n")
	b.WriteString("  D(mm)   TX(mrad)   RX(mrad)   peak(dBm)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %5.0f   %8.2f   %8.2f   %+8.2f\n",
			p.DiameterMM, p.TXAngularMrad, p.RXAngularMrad, p.PeakPowerDBm)
	}
	fmt.Fprintf(&b, "  RX tolerance peaks at %.0f mm: %.2f mrad (paper: 16 mm, 5.77 mrad)\n",
		r.BestDiameterMM, r.BestRXTolMrad)
	return b.String()
}

// -------------------------------------------------------------- Table 2 —

// Table2Result reproduces the calibration-error table.
type Table2Result struct {
	Report CalibrationReport
}

// Table2 runs the full two-stage calibration on a fresh system.
func Table2(seed int64) (Table2Result, error) {
	sys := NewSystem(Link10G, seed)
	rep, err := sys.Calibrate()
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{Report: rep}, nil
}

// Render prints the Table 2 rows (paper values in parentheses).
func (r Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: GMA model estimation errors\n")
	b.WriteString("                      Avg. Error          Max. Error\n")
	fmt.Fprintf(&b, "  First stage (TX)    %5.2f mm (1.24)    %5.2f mm (5.30)\n",
		r.Report.Stage1TX.AvgError*1e3, r.Report.Stage1TX.MaxError*1e3)
	fmt.Fprintf(&b, "  First stage (RX)    %5.2f mm (1.90)    %5.2f mm (5.41)\n",
		r.Report.Stage1RX.AvgError*1e3, r.Report.Stage1RX.MaxError*1e3)
	fmt.Fprintf(&b, "  Combined (TX)       %5.2f mm (2.18)    %5.2f mm (4.07)\n",
		r.Report.Combined.TXAvg*1e3, r.Report.Combined.TXMax*1e3)
	fmt.Fprintf(&b, "  Combined (RX)       %5.2f mm (4.54)    %5.2f mm (6.50)\n",
		r.Report.Combined.RXAvg*1e3, r.Report.Combined.RXMax*1e3)
	fmt.Fprintf(&b, "  (%d mapping tuples)\n", r.Report.Tuples)
	return b.String()
}

// ----------------------------------------------------------- §5.2 TP —

// TPResult reproduces the §5.2 TP evaluation.
type TPResult struct {
	// Tracking cadence.
	MeanReportInterval time.Duration
	SlowReportFraction float64 // reports in 14–15 ms
	// Stationary tracking noise over a long observation.
	StationaryLocationMM float64
	StationaryOrientMrad float64
	// Pointing latency (hardware realignment).
	MeanTPLatency time.Duration
	// Lock tests: move randomly, lock, realign with learned TP, compare
	// against the optimally aligned link.
	LockTests        int
	LockTestsOptimal int     // achieved optimal throughput
	MeanPowerGapDB   float64 // TP-aligned power below peak (paper: 3–4 dB)
}

// TPEvaluation runs the §5.2 measurements on a calibrated system.
func TPEvaluation(seed int64) (TPResult, error) {
	sys := NewSystem(Link10G, seed)
	if _, err := sys.Calibrate(); err != nil {
		return TPResult{}, err
	}
	var r TPResult

	// Tracking cadence over many intervals.
	const nIntervals = 5000
	var sum time.Duration
	var slow int
	for i := 0; i < nIntervals; i++ {
		iv := sys.Tracker.NextInterval()
		sum += iv
		if iv >= 14*time.Millisecond {
			slow++
		}
	}
	r.MeanReportInterval = sum / nIntervals
	r.SlowReportFraction = float64(slow) / nIntervals

	// Stationary noise: the paper watched 30 minutes; the spread
	// converges long before that, so we sample the equivalent number of
	// reports in batches.
	pose := DefaultHeadsetPose()
	base := sys.Tracker.Report(pose, 0)
	var maxLoc, maxAng float64
	for i := 0; i < 20000; i++ {
		rep := sys.Tracker.Report(pose, 0)
		lin, ang := base.Pose.Delta(rep.Pose)
		maxLoc = math.Max(maxLoc, lin)
		maxAng = math.Max(maxAng, ang)
	}
	r.StationaryLocationMM = maxLoc * 1e3
	r.StationaryOrientMrad = maxAng * 1e3

	// Lock tests.
	peak := sys.Plant.Config.PeakReceivedPowerDBm()
	poses := make([]geom.Pose, 0, 10)
	for i := 0; i < 10; i++ {
		poses = append(poses, randomLockPose(seed+int64(i)))
	}
	var gapSum float64
	var latSum time.Duration
	for i, p := range poses {
		sys.Plant.SetHeadset(p)
		if _, err := sys.PointNow(time.Duration(i)*time.Second, pointing.Voltages{}); err != nil {
			continue
		}
		got := sys.Plant.ReceivedPowerDBm()
		gapSum += peak - got
		r.LockTests++
		if got >= sys.Plant.Config.Transceiver.SensitivityDBm {
			r.LockTestsOptimal++
		}
		latSum += 1800 * time.Microsecond // DAQ + settle, cf. core.hardwareLatency
	}
	if r.LockTests > 0 {
		r.MeanPowerGapDB = gapSum / float64(r.LockTests)
		r.MeanTPLatency = latSum / time.Duration(r.LockTests)
	}
	return r, nil
}

func randomLockPose(seed int64) geom.Pose {
	// Deterministic scattered poses around the default.
	h := DefaultHeadsetPose()
	f := func(k int64) float64 {
		x := float64((seed*2654435761+k*40503)%1000)/1000 - 0.5
		return x
	}
	rot := geom.QuatFromAxisAngle(geom.V(f(1), f(2), f(3)+0.01), f(4)*0.2)
	return geom.NewPose(rot.Mul(h.Rot), h.Trans.Add(geom.V(f(5)*0.4, f(6)*0.4, f(7)*0.2)))
}

// Render prints the §5.2 numbers.
func (r TPResult) Render() string {
	var b strings.Builder
	b.WriteString("§5.2 TP evaluation\n")
	fmt.Fprintf(&b, "  tracking interval      %v mean, %.2f%% in 14-15 ms (paper: 12-13 ms, 0.7%%)\n",
		r.MeanReportInterval.Round(100*time.Microsecond), r.SlowReportFraction*100)
	fmt.Fprintf(&b, "  stationary noise       %.2f mm / %.2f mrad (paper: 1.79 / 0.41)\n",
		r.StationaryLocationMM, r.StationaryOrientMrad)
	fmt.Fprintf(&b, "  TP latency             %v (paper: 1-2 ms)\n", r.MeanTPLatency)
	fmt.Fprintf(&b, "  lock tests             %d/%d connected at optimal rate (paper: 10/10)\n",
		r.LockTestsOptimal, r.LockTests)
	fmt.Fprintf(&b, "  TP power below peak    %.1f dB (paper: 3-4 dB)\n", r.MeanPowerGapDB)
	return b.String()
}

// --------------------------------------------------- Fig 13 / 14 / 15 —

// MotionResult summarizes one throughput-vs-motion experiment.
type MotionResult struct {
	Label string
	// LinearThreshold / AngularThreshold are the highest speeds that
	// sustained the link (m/s, rad/s); zero when that axis was not
	// exercised.
	LinearThreshold  float64
	AngularThreshold float64
	MaxLinearSeen    float64
	MaxAngularSeen   float64
	UpFraction       float64
	MeanGoodputGbps  float64
	// Mixed marks a simultaneous-pair threshold (Fig 14/15 style).
	Mixed  bool
	Result RunResult
}

// Render prints the thresholds.
func (m MotionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", m.Label)
	if m.Mixed {
		fmt.Fprintf(&b, "  simultaneous: optimal ≤ %4.1f cm/s and ≤ %4.1f deg/s\n",
			m.LinearThreshold*100, m.AngularThreshold*180/math.Pi)
		fmt.Fprintf(&b, "  fastest aligned: %4.1f cm/s, %4.1f deg/s\n",
			m.MaxLinearSeen*100, m.MaxAngularSeen*180/math.Pi)
		fmt.Fprintf(&b, "  link up %.1f%% of run, mean goodput %.2f Gbps\n",
			m.UpFraction*100, m.MeanGoodputGbps)
		return b.String()
	}
	if m.LinearThreshold > 0 {
		fmt.Fprintf(&b, "  linear:  optimal ≤ %4.1f cm/s (connected up to %4.1f cm/s)\n",
			m.LinearThreshold*100, m.MaxLinearSeen*100)
	}
	if m.AngularThreshold > 0 {
		fmt.Fprintf(&b, "  angular: optimal ≤ %4.1f deg/s (connected up to %4.1f deg/s)\n",
			m.AngularThreshold*180/math.Pi, m.MaxAngularSeen*180/math.Pi)
	}
	fmt.Fprintf(&b, "  link up %.1f%% of run, mean goodput %.2f Gbps\n",
		m.UpFraction*100, m.MeanGoodputGbps)
	return b.String()
}

func summarizeRun(label string, res RunResult, wantLinear, wantAngular bool) MotionResult {
	m := MotionResult{Label: label, UpFraction: res.UpFraction, Result: res}
	var sum float64
	for _, w := range res.Windows {
		sum += w.Gbps
	}
	if len(res.Windows) > 0 {
		m.MeanGoodputGbps = sum / float64(len(res.Windows))
	}
	switch {
	case wantLinear && wantAngular:
		// Mixed motion: thresholds are a simultaneous pair along a
		// proportional frontier (§5.3's "simultaneous linear and
		// angular speeds of below ...").
		linMax := core.MaxSpeed(res.Samples, LinSpeedOf)
		angMax := core.MaxSpeed(res.Samples, AngSpeedOf)
		m.LinearThreshold, m.AngularThreshold =
			core.MixedSpeedThreshold(res.Samples, linMax, angMax, 40)
		m.MaxLinearSeen = linMax
		m.MaxAngularSeen = angMax
		m.Mixed = true
	case wantLinear:
		m.LinearThreshold = core.SpeedThreshold(res.Samples, LinSpeedOf, 0.05, 20)
		m.MaxLinearSeen = core.MaxSpeed(res.Samples, LinSpeedOf)
	case wantAngular:
		m.AngularThreshold = core.SpeedThreshold(res.Samples, AngSpeedOf, 0.05, 20)
		m.MaxAngularSeen = core.MaxSpeed(res.Samples, AngSpeedOf)
	}
	return m
}

// motionJob is one independent calibrate-and-run experiment: its own
// system (own seed), its own motion program. Jobs share nothing, so the
// experiment runners fan them out with parallel.MapErr.
type motionJob struct {
	label       string
	cfg         LinkConfig
	seed        int64
	program     Program
	wantLinear  bool
	wantAngular bool
}

// runMotionJobs calibrates and runs every job on its own system, in
// parallel, returning results in job order.
func runMotionJobs(jobs []motionJob) ([]MotionResult, error) {
	return parallel.MapErr(len(jobs), 0, func(i int) (MotionResult, error) {
		j := jobs[i]
		sys := NewSystem(j.cfg, j.seed)
		if _, err := sys.Calibrate(); err != nil {
			return MotionResult{}, err
		}
		res, err := sys.Run(RunOptions{
			Program:     j.program,
			SampleEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return MotionResult{}, err
		}
		return summarizeRun(j.label, res, j.wantLinear, j.wantAngular), nil
	})
}

// Fig13 runs the 10G pure-motion experiments (linear rail, rotation
// stage), fanning the two independent rigs out in parallel. Paper:
// optimal ≤33 cm/s linear (up to 39.15), ≤16-18 deg/s angular (up to
// 18.95).
func Fig13(seed int64) (linear, angular MotionResult, err error) {
	out, err := runMotionJobs([]motionJob{
		{
			label: "Fig 13 (10G, pure linear)", cfg: Link10G, seed: seed,
			program: LinearRail(0.20, 0.10, 0.05, 10), wantLinear: true,
		},
		{
			label: "Fig 13 (10G, pure angular)", cfg: Link10G, seed: seed + 1000,
			program: RotationStage(0.30, 0.10, 0.05, 10), wantAngular: true,
		},
	})
	if err != nil {
		return
	}
	return out[0], out[1], nil
}

// Fig14 runs the 10G arbitrary-motion user study. Paper: optimal at
// simultaneous ≤30 cm/s and ≤16-18 deg/s.
func Fig14(seed int64) (MotionResult, error) {
	sys := NewSystem(Link10G, seed)
	if _, err := sys.Calibrate(); err != nil {
		return MotionResult{}, err
	}
	res, err := sys.Run(RunOptions{
		Program:     HandHeld(0.6, 0.7, 60*time.Second, seed),
		SampleEvery: 5 * time.Millisecond,
	})
	if err != nil {
		return MotionResult{}, err
	}
	return summarizeRun("Fig 14 (10G, arbitrary motion)", res, true, true), nil
}

// Fig15 runs the 25G experiments — pure linear, pure angular, and mixed —
// as three independent rigs in parallel. Paper: optimal ≤25 cm/s or
// ≤25 deg/s pure; mixed ≤15 cm/s & 15-20 deg/s.
func Fig15(seed int64) (linear, angular, mixed MotionResult, err error) {
	out, err := runMotionJobs([]motionJob{
		{
			label: "Fig 15 (25G, pure linear)", cfg: Link25G, seed: seed,
			program: LinearRail(0.20, 0.10, 0.05, 10), wantLinear: true,
		},
		{
			label: "Fig 15 (25G, pure angular)", cfg: Link25G, seed: seed + 1000,
			program: RotationStage(0.30, 0.10, 0.05, 12), wantAngular: true,
		},
		{
			label: "Fig 15 (25G, arbitrary motion)", cfg: Link25G, seed: seed + 2000,
			program: HandHeld(0.45, 0.6, 60*time.Second, seed), wantLinear: true, wantAngular: true,
		},
	})
	if err != nil {
		return
	}
	return out[0], out[1], out[2], nil
}

// -------------------------------------------------------------- Table 3 —

// Table3Result is the summary-of-results table.
type Table3Result struct {
	Pure10G  [2]float64 // linear m/s, angular rad/s
	Mixed10G [2]float64
	Pure25G  [2]float64
	Mixed25G [2]float64
}

// Table3 assembles the summary from the Fig 13–15 runs. The three figure
// groups are independent (disjoint seeds, own systems), so they run in
// parallel — and Fig 13/15 fan out their own rigs beneath that.
func Table3(seed int64) (Table3Result, error) {
	var t Table3Result
	type group struct{ a, b, c MotionResult }
	groups, err := parallel.MapErr(3, 0, func(i int) (group, error) {
		switch i {
		case 0:
			lin, ang, err := Fig13(seed)
			return group{a: lin, b: ang}, err
		case 1:
			mix, err := Fig14(seed + 10)
			return group{a: mix}, err
		default:
			lin, ang, mix, err := Fig15(seed + 20)
			return group{a: lin, b: ang, c: mix}, err
		}
	})
	if err != nil {
		return t, err
	}
	t.Pure10G = [2]float64{groups[0].a.LinearThreshold, groups[0].b.AngularThreshold}
	t.Mixed10G = [2]float64{groups[1].a.LinearThreshold, groups[1].a.AngularThreshold}
	t.Pure25G = [2]float64{groups[2].a.LinearThreshold, groups[2].b.AngularThreshold}
	t.Mixed25G = [2]float64{groups[2].c.LinearThreshold, groups[2].c.AngularThreshold}
	return t, nil
}

// Render prints Table 3 (paper values in parentheses).
func (t Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: tolerated speeds vs requirements (14 cm/s, 19 deg/s)\n")
	b.WriteString("              10G pure       10G mixed      25G pure       25G mixed\n")
	fmt.Fprintf(&b, "  linear      %4.0f cm/s (33) %4.0f cm/s (30) %4.0f cm/s (25) %4.0f cm/s (15)\n",
		t.Pure10G[0]*100, t.Mixed10G[0]*100, t.Pure25G[0]*100, t.Mixed25G[0]*100)
	deg := func(r float64) float64 { return r * 180 / math.Pi }
	fmt.Fprintf(&b, "  angular     %4.0f deg/s (17) %4.0f deg/s (16) %4.0f deg/s (25) %4.0f deg/s (17)\n",
		deg(t.Pure10G[1]), deg(t.Mixed10G[1]), deg(t.Pure25G[1]), deg(t.Mixed25G[1]))
	return b.String()
}

// --------------------------------------------------------------- Fig 16 —

// Fig16Result is the trace-driven availability study.
type Fig16Result struct {
	Corpus sim.CorpusResult
	// ScatteredFraction is the share of off-slots in frames with <10
	// off-slots (paper: >60 %).
	ScatteredFraction float64
	// EffectiveGbps is operational fraction × optimal goodput (paper:
	// ≈23 Gbps).
	EffectiveGbps float64
}

// Fig16 runs the §5.4 slot simulation over the 500-trace corpus with the
// paper's 25G constants. Both the corpus generation and the 500 trace
// simulations fan out across the default worker pool.
func Fig16(seed int64) Fig16Result {
	return Fig16Workers(seed, 0)
}

// Fig16Workers is Fig16 with an explicit worker count (≤ 0 means the
// parallel package default, 1 forces the serial path). The determinism
// contract holds: any worker count returns the identical Fig16Result.
func Fig16Workers(seed int64, workers int) Fig16Result {
	run, err := sim.RunCorpus(TraceSource(seed), sim.CorpusOptions{
		Params:       sim.Paper25G(),
		Workers:      workers,
		KeepPerTrace: true,
	})
	if err != nil {
		// A context-free clean corpus run has no error source.
		panic(err) //cyclops:panic-ok unreachable
	}
	corpus := sim.CorpusResult{
		PerTrace:       make([]sim.TraceResult, len(run.PerTrace)),
		MeanOnFraction: run.MeanOnFraction,
		MinOnFraction:  run.MinOnFraction,
		MaxOnFraction:  run.MaxOnFraction,
		Metrics:        run.Metrics,
	}
	for i, r := range run.PerTrace {
		corpus.PerTrace[i] = r.TraceResult
	}
	var off, scattered float64
	for _, r := range corpus.PerTrace {
		off += float64(r.OffSlots)
		scattered += r.ScatteredOffFraction(10) * float64(r.OffSlots)
	}
	res := Fig16Result{Corpus: corpus}
	if off > 0 {
		res.ScatteredFraction = scattered / off
	}
	res.EffectiveGbps = corpus.MeanOnFraction * Link25G.Transceiver.OptimalGoodputGbps
	return res
}

// Render prints the Fig 16 summary and CDF.
func (r Fig16Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 16: trace-driven availability (25G constants, 500 traces)\n")
	fmt.Fprintf(&b, "  operational slots: mean %.2f%% (paper 98.6%%), range %.2f%%-%.2f%% (paper 95-99.98%%)\n",
		r.Corpus.MeanOnFraction*100, r.Corpus.MinOnFraction*100, r.Corpus.MaxOnFraction*100)
	fmt.Fprintf(&b, "  effective bandwidth ≈ %.1f Gbps (paper ≈23)\n", r.EffectiveGbps)
	fmt.Fprintf(&b, "  off-slots in light frames (<10 off): %.0f%% (paper >60%%)\n", r.ScatteredFraction*100)
	xs, ys := r.Corpus.DisconnectionCDF(12)
	b.WriteString("  CDF of per-trace disconnected %:\n")
	for i := range xs {
		fmt.Fprintf(&b, "    ≤%5.2f%% of slots off : %.3f of traces\n", xs[i], ys[i])
	}
	return b.String()
}

// -------------------------------------------------------- fig16-faults —

// Fig16FaultsCell is one point of the chaos sweep: the 500-trace corpus
// under a fault config with the given occlusion rate × duration (plus the
// fixed background of tracker blackouts and stuck-galvo windows).
type Fig16FaultsCell struct {
	OcclusionPerMin float64
	OcclusionDur    time.Duration
	MeanOnFraction  float64
	MinOnFraction   float64
	Outages         int
	// MeanOutage is the mean blocked-episode length (occlusion window plus
	// the re-lock tail) across the corpus.
	MeanOutage time.Duration
}

// Fig16FaultsResult is the fig16-faults chaos experiment: Fig 16's
// availability study re-run under deterministic fault injection.
type Fig16FaultsResult struct {
	// BaselineOnFraction is the fault-free corpus mean — the same number
	// Fig 16 reports, computed on the same traces.
	BaselineOnFraction float64
	Cells              []Fig16FaultsCell
}

// fig16FaultsSweep is the occlusion rate × duration grid. The background
// rates (blackout, stuck) stay fixed so the sweep isolates occlusion.
var fig16FaultsSweep = struct {
	rates []float64
	durs  []time.Duration
}{
	rates: []float64{0.5, 2},
	durs:  []time.Duration{100 * time.Millisecond, 500 * time.Millisecond},
}

// Fig16Faults runs the chaos sweep with the default worker pool.
func Fig16Faults(seed int64) (Fig16FaultsResult, error) {
	return Fig16FaultsWorkers(seed, 0)
}

// Fig16FaultsWorkers is Fig16Faults with an explicit worker count. The
// whole sweep is a pure function of the seed: trace generation, per-trace
// fault plans, and the slot model are all seeded, so every worker count
// returns the identical Fig16FaultsResult bit for bit.
func Fig16FaultsWorkers(seed int64, workers int) (Fig16FaultsResult, error) {
	// The sweep reuses one corpus across every cell, so materialize it
	// once and stream the chaos runs aggregate-only.
	traces := sim.Materialize(TraceSource(seed), workers)
	base, err := sim.RunCorpus(sim.TraceSlice(traces), sim.CorpusOptions{
		Params:  sim.Paper25G(),
		Workers: workers,
	})
	if err != nil {
		return Fig16FaultsResult{}, err
	}
	res := Fig16FaultsResult{BaselineOnFraction: base.MeanOnFraction}
	p := sim.PaperChaos25G()
	for _, rate := range fig16FaultsSweep.rates {
		for _, dur := range fig16FaultsSweep.durs {
			cfg := fault.Config{
				Occlusion:        fault.ClassConfig{PerMin: rate, MinDur: dur, MaxDur: dur},
				OcclusionDepthDB: [2]float64{25, 45},
				OcclusionRamp:    10 * time.Millisecond,
				Blackout:         fault.ClassConfig{PerMin: 1, MinDur: 50 * time.Millisecond, MaxDur: 150 * time.Millisecond},
				Stuck:            fault.ClassConfig{PerMin: 0.5, MinDur: 100 * time.Millisecond, MaxDur: 300 * time.Millisecond},
			}
			c, err := sim.RunCorpus(sim.TraceSlice(traces), sim.CorpusOptions{
				Chaos:   &sim.CorpusChaos{Config: cfg, Seed: seed + 1, Params: p},
				Workers: workers,
			})
			if err != nil {
				return res, err
			}
			cell := Fig16FaultsCell{
				OcclusionPerMin: rate,
				OcclusionDur:    dur,
				MeanOnFraction:  c.MeanOnFraction,
				MinOnFraction:   c.MinOnFraction,
				Outages:         c.Outages,
			}
			if c.Outages > 0 {
				cell.MeanOutage = time.Duration(float64(c.BlockedSlots)/float64(c.Outages)) * p.Slot
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Render prints the chaos sweep table.
func (r Fig16FaultsResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 16-faults: availability under injected occlusion (25G constants, 500 traces)\n")
	fmt.Fprintf(&b, "  baseline (no faults): mean on %.2f%%\n", r.BaselineOnFraction*100)
	b.WriteString("  occl rate  duration   mean on   worst    outages  mean outage\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %5.1f/min  %6s   %6.2f%%  %6.2f%%  %7d  %9s\n",
			c.OcclusionPerMin, c.OcclusionDur, c.MeanOnFraction*100, c.MinOnFraction*100,
			c.Outages, c.MeanOutage.Round(time.Millisecond))
	}
	return b.String()
}

// ------------------------------------------------------ fig16-handover —

// Fig16HandoverCell is one point of the handover sweep: the 500-trace
// corpus under an occlusion rate × duration, served by TXCount ceiling
// units at the given ring spacing. TXCount == 1 is the no-handover
// baseline (SpacingM is 0 there: a single TX has no ring).
type Fig16HandoverCell struct {
	TXCount         int
	SpacingM        float64
	OcclusionPerMin float64
	OcclusionDur    time.Duration
	MeanOnFraction  float64
	MinOnFraction   float64
	// ChaosAvailability is 1 − blocked/total slots: the share of slot time
	// not lost to occlusion episodes — re-lock tails for unrescued ones,
	// the ~2 ms handover slew for rescued ones. This is the occlusion
	// layer's own availability, independent of baseline pointing losses.
	ChaosAvailability float64
	Outages           int
	Handovers         int
}

// Fig16HandoverResult is the fig16-handover experiment: the fig16-faults
// chaos study re-run with make-before-break multi-TX handover, sweeping
// TX count and ceiling spacing against occlusion pressure.
type Fig16HandoverResult struct {
	BaselineOnFraction float64
	Cells              []Fig16HandoverCell
}

// fig16HandoverGrid parameterizes the sweep so the determinism suite can
// push a trimmed grid through the identical pipeline.
type fig16HandoverGrid struct {
	txCounts []int
	spacings []float64
	occl     []struct {
		rate float64
		dur  time.Duration
	}
}

// fig16HandoverSweep: a mild and a harsh occlusion regime (the corners of
// the fig16-faults grid) × 1/2/4 TXs × tight and wide ceiling rings.
var fig16HandoverSweep = fig16HandoverGrid{
	txCounts: []int{1, 2, 4},
	spacings: []float64{0.6, 1.4},
	occl: []struct {
		rate float64
		dur  time.Duration
	}{
		{0.5, 100 * time.Millisecond},
		{2, 500 * time.Millisecond},
	},
}

// Fig16Handover runs the handover sweep with the default worker pool.
func Fig16Handover(seed int64) (Fig16HandoverResult, error) {
	return Fig16HandoverWorkers(seed, 0)
}

// Fig16HandoverWorkers is Fig16Handover with an explicit worker count.
// Like fig16-faults, the whole sweep is a pure function of the seed —
// every worker count returns the identical result bit for bit. Every cell
// reuses the same fault plans (same seed), so the TX-count and spacing
// knobs are the only thing that varies across cells of one occlusion
// regime.
func Fig16HandoverWorkers(seed int64, workers int) (Fig16HandoverResult, error) {
	return fig16HandoverRun(seed, workers, fig16HandoverSweep)
}

func fig16HandoverRun(seed int64, workers int, grid fig16HandoverGrid) (Fig16HandoverResult, error) {
	traces := sim.Materialize(TraceSource(seed), workers)
	base, err := sim.RunCorpus(sim.TraceSlice(traces), sim.CorpusOptions{
		Params:  sim.Paper25G(),
		Workers: workers,
	})
	if err != nil {
		return Fig16HandoverResult{}, err
	}
	res := Fig16HandoverResult{BaselineOnFraction: base.MeanOnFraction}
	for _, oc := range grid.occl {
		cfg := fault.Config{
			Occlusion:        fault.ClassConfig{PerMin: oc.rate, MinDur: oc.dur, MaxDur: oc.dur},
			OcclusionDepthDB: [2]float64{25, 45},
			OcclusionRamp:    10 * time.Millisecond,
			Blackout:         fault.ClassConfig{PerMin: 1, MinDur: 50 * time.Millisecond, MaxDur: 150 * time.Millisecond},
			Stuck:            fault.ClassConfig{PerMin: 0.5, MinDur: 100 * time.Millisecond, MaxDur: 300 * time.Millisecond},
		}
		for _, tx := range grid.txCounts {
			for si, spacing := range grid.spacings {
				if tx <= 1 && si > 0 {
					break // a single TX has no ring: one baseline cell per regime
				}
				p := sim.PaperChaos25G()
				p.TXCount = tx
				p.HandoverDark = 2 * time.Millisecond
				p.StandbyBlockProb = sim.StandbyBlockProbForSpacing(spacing)
				c, err := sim.RunCorpus(sim.TraceSlice(traces), sim.CorpusOptions{
					Chaos:   &sim.CorpusChaos{Config: cfg, Seed: seed + 1, Params: p},
					Workers: workers,
				})
				if err != nil {
					return res, err
				}
				cell := Fig16HandoverCell{
					TXCount:         tx,
					SpacingM:        spacing,
					OcclusionPerMin: oc.rate,
					OcclusionDur:    oc.dur,
					MeanOnFraction:  c.MeanOnFraction,
					MinOnFraction:   c.MinOnFraction,
					Outages:         c.Outages,
					Handovers:       c.Handovers,
				}
				if tx <= 1 {
					cell.SpacingM = 0
				}
				if c.Slots > 0 {
					cell.ChaosAvailability = 1 - float64(c.BlockedSlots)/float64(c.Slots)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// Render prints the handover sweep and the TXs-per-headset cost curve.
func (r Fig16HandoverResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 16-handover: multi-TX make-before-break vs occlusion (25G constants, 500 traces)\n")
	fmt.Fprintf(&b, "  baseline (no faults): mean on %.2f%%\n", r.BaselineOnFraction*100)
	b.WriteString("  txs  spacing  occl rate  duration   mean on   worst   chaos avail  outages  handovers\n")
	for _, c := range r.Cells {
		spacing := "    —"
		if c.TXCount > 1 {
			spacing = fmt.Sprintf("%4.1fm", c.SpacingM)
		}
		fmt.Fprintf(&b, "  %3d  %s  %7.1f/min  %6s   %6.2f%%  %6.2f%%     %7.3f%%  %7d  %9d\n",
			c.TXCount, spacing, c.OcclusionPerMin, c.OcclusionDur,
			c.MeanOnFraction*100, c.MinOnFraction*100, c.ChaosAvailability*100,
			c.Outages, c.Handovers)
	}
	// Cost curve: TXs per headset vs nines of occlusion-layer availability,
	// at the harsh corner (2/min × 500 ms), wide spacing for multi-TX.
	var harsh []Fig16HandoverCell
	for _, c := range r.Cells {
		if c.OcclusionPerMin == 2 && c.OcclusionDur == 500*time.Millisecond &&
			(c.TXCount <= 1 || c.SpacingM == 1.4) {
			harsh = append(harsh, c)
		}
	}
	if len(harsh) > 0 {
		b.WriteString("  cost curve (2.0/min × 500ms, 1.4 m ring):\n")
		b.WriteString("    txs  chaos avail      nines\n")
		for _, c := range harsh {
			nines := math.Inf(1)
			if c.ChaosAvailability < 1 {
				nines = -math.Log10(1 - c.ChaosAvailability)
			}
			fmt.Fprintf(&b, "    %3d     %8.4f%%  %9.2f\n", c.TXCount, c.ChaosAvailability*100, nines)
		}
	}
	return b.String()
}

// --------------------------------------------------- §4.3 convergence —

// ConvergenceResult records the G′ and P iteration statistics.
type ConvergenceResult struct {
	MeanPIters      float64
	MeanGPrimeIters float64
	Points          int
	Failures        int
}

// Convergence measures pointing convergence over a run with mixed motion —
// the §4.3 claim that G′ converges in 2–4 iterations and P in 2–5.
func Convergence(seed int64) (ConvergenceResult, error) {
	sys := NewSystem(Link10G, seed)
	sys.UseOracleModels()
	res, err := sys.Run(RunOptions{
		Program: HandHeld(0.3, 0.6, 10*time.Second, seed),
	})
	if err != nil {
		return ConvergenceResult{}, err
	}
	return ConvergenceResult{
		MeanPIters:      res.MeanPointIters(),
		MeanGPrimeIters: res.MeanGPrimeIters(),
		Points:          res.Points,
		Failures:        res.PointFailures,
	}, nil
}

// Render prints the convergence statistics.
func (c ConvergenceResult) Render() string {
	return fmt.Sprintf("§4.3 convergence: P %.1f iters (paper 2-5), G' %.1f iters (paper 2-4), %d solves, %d failures\n",
		c.MeanPIters, c.MeanGPrimeIters, c.Points, c.Failures)
}
