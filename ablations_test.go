package cyclops

import (
	"strings"
	"testing"
	"time"
)

func TestAblationDirectGPrime(t *testing.T) {
	r, err := AblationDirectGPrime(31)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainSamples < 200 {
		t.Fatalf("only %d training samples", r.TrainSamples)
	}
	// The footnote-3 claim: the direct fit that looks fine on its
	// training plane falls apart in depth, while the model-based
	// approach holds millimeter accuracy.
	if r.OffPlaneErrorMM < 3*r.SamePlaneErrorMM && r.OffPlaneErrorMM < 10 {
		t.Errorf("direct fit generalized too well: plane %.1f mm, depth %.1f mm",
			r.SamePlaneErrorMM, r.OffPlaneErrorMM)
	}
	if r.ModelBasedOffPlaneErrorMM > 5 {
		t.Errorf("model-based depth error %.1f mm — should stay mm-scale", r.ModelBasedOffPlaneErrorMM)
	}
	if r.OffPlaneErrorMM < 2*r.ModelBasedOffPlaneErrorMM {
		t.Errorf("direct %.1f mm not ≫ model-based %.1f mm",
			r.OffPlaneErrorMM, r.ModelBasedOffPlaneErrorMM)
	}
	t.Log("\n" + r.Render())
}

func TestAblationFixedOrigin(t *testing.T) {
	r, err := AblationFixedOrigin(32)
	if err != nil {
		t.Fatal(err)
	}
	// Footnote 6: ignoring the origin's voltage dependence (distortion)
	// costs accuracy.
	if r.FixedAvgMM <= r.FullAvgMM {
		t.Errorf("fixed-origin model (%.2f mm) not worse than full (%.2f mm)",
			r.FixedAvgMM, r.FullAvgMM)
	}
	if r.FullAvgMM > 3 {
		t.Errorf("full model error %.2f mm out of regime", r.FullAvgMM)
	}
	t.Log("\n" + r.Render())
}

func TestAblationTrackingRate(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	points := AblationTrackingRate(33, []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
	})
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// §6: higher tracking frequency improves availability monotonically.
	for i := 1; i < len(points); i++ {
		if points[i].MeanOnFraction > points[i-1].MeanOnFraction+1e-9 {
			t.Errorf("availability not monotone in tracking rate: %v", points)
			break
		}
	}
	if points[0].MeanOnFraction < 0.995 {
		t.Errorf("2 ms tracker availability %.4f — should be near perfect", points[0].MeanOnFraction)
	}
	if out := RenderTrackingRate(points); !strings.Contains(out, "operational") {
		t.Error("render missing content")
	}
	t.Log("\n" + RenderTrackingRate(points))
}

func TestAblationBeamChoice(t *testing.T) {
	if testing.Short() {
		t.Skip("motion runs in -short mode")
	}
	r, err := AblationBeamChoice(34)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1: under realistic motion the diverging design stays up far
	// more than the collimated one despite 25 dB less peak power.
	if r.DivergingUpFraction < r.CollimatedUpFraction {
		t.Errorf("diverging (%.2f) not better than collimated (%.2f)",
			r.DivergingUpFraction, r.CollimatedUpFraction)
	}
	if r.DivergingUpFraction < 0.9 {
		t.Errorf("diverging up fraction %.2f too low for gentle motion", r.DivergingUpFraction)
	}
	t.Log("\n" + r.Render())
}

func TestAblationCouplingImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("rotation sweeps in -short mode")
	}
	r, err := AblationCouplingImprovement(35)
	if err != nil {
		t.Fatal(err)
	}
	// The §5.3 claim: more link budget directly buys faster tolerated
	// motion (the tolerance scales with √margin).
	if r.ImprovedAngular <= r.BaselineAngular {
		t.Errorf("+10 dB coupling did not raise the angular threshold: %.2f vs %.2f rad/s",
			r.ImprovedAngular, r.BaselineAngular)
	}
	if r.ImprovedAngular < 1.2*r.BaselineAngular {
		t.Errorf("improvement too small: %.2f vs %.2f rad/s", r.ImprovedAngular, r.BaselineAngular)
	}
	t.Log("\n" + r.Render())
}
