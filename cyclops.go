// Package cyclops is a full reproduction, as a Go library, of "Cyclops: An
// FSO-based Wireless Link for VR Headsets" (SIGCOMM 2022): a free-space
// optical link between a ceiling-mounted transmitter and a VR headset,
// kept aligned by a learning-based tracking-and-pointing (TP) mechanism
// that leverages the headset's own tracking system.
//
// Because the original is a hardware prototype (galvo mirrors, SFP optics,
// an Oculus Rift S), this library ships a physics simulation of every
// hardware component with hidden ground truth, and runs the paper's actual
// algorithms — the parameterized GMA model G, the two-stage calibration,
// the G′ inverse, and the pointing function P — unmodified against it.
// See DESIGN.md for the substitution table and EXPERIMENTS.md for
// paper-vs-measured results.
//
// # Quick start
//
//	sys := cyclops.NewSystem(cyclops.Link10G, 1)
//	report, err := sys.Calibrate()           // §4.1 + §4.2 training
//	res, err := sys.Run(cyclops.RunOptions{  // drive it with motion
//	    Program: cyclops.LinearRail(0.25, 0.10, 0.05, 8),
//	})
//
// Every table and figure of the paper's evaluation has a runner in this
// package (Table1, Fig11, Table2, TPEvaluation, Fig13, Fig14, Fig15,
// Table3, Fig16, Fig3) returning a structured result that renders the same
// rows the paper reports.
package cyclops

import (
	"time"

	"cyclops/internal/core"
	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/handover"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/netem"
	"cyclops/internal/obs"
	"cyclops/internal/optics"
	"cyclops/internal/policy"
	"cyclops/internal/sim"
	"cyclops/internal/trace"
)

// System is one deployed Cyclops installation: the physical plant, the
// headset tracker, learned models, and the real-time controller.
type System = core.System

// RunOptions configures an experiment run.
type RunOptions = core.RunOptions

// RunResult is a run's recorded output.
type RunResult = core.RunResult

// Sample is one recorded instant of a run.
type Sample = core.Sample

// CalibrationReport summarizes the two-stage training (Table 2's data).
type CalibrationReport = core.CalibrationReport

// LinkConfig is a link design (transceiver + beam option + calibrated
// optics constants).
type LinkConfig = optics.LinkConfig

// Pose is a rigid transform / headset pose.
type Pose = geom.Pose

// Vec3 is a 3-vector (positions in meters, venue coordinates).
type Vec3 = geom.Vec3

// Program drives the true headset pose during a run.
type Program = motion.Program

// Trace is one head-motion viewing session.
type Trace = trace.Trace

// The link designs evaluated in the paper.
var (
	// Link10G is the chosen 10 Gbps design: diverging beam, 16 mm at RX
	// (§5.1 / Fig 11 optimum).
	Link10G = optics.Diverging10G16mm
	// Link10GTable1 is the 20 mm operating point Table 1 reports.
	Link10GTable1 = optics.Diverging10G
	// Link10GCollimated is §5.1 option (a), the wide collimated beam.
	Link10GCollimated = optics.Collimated10G
	// Link25G is the §5.3.1 25 Gbps prototype.
	Link25G = optics.Diverging25G
)

// NewSystem builds a system around a link design; all hidden manufacturing
// and installation variation derives from seed.
func NewSystem(cfg LinkConfig, seed int64) *System { return core.NewSystem(cfg, seed) }

// DefaultHeadsetPose is where the headset rig starts (≈1.75 m from the TX).
func DefaultHeadsetPose() Pose { return link.DefaultHeadsetPose() }

// LinearRail builds the §5.3 linear-rail program: strokes of ±halfTravel
// meters along the rail, with per-stroke peak speed ramping from
// startSpeed by speedStep (m/s) over the given number of strokes.
func LinearRail(halfTravel, startSpeed, speedStep float64, strokes int) Program {
	return motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: halfTravel,
		StartSpeed: startSpeed,
		SpeedStep:  speedStep,
		Strokes:    strokes,
		Dwell:      150 * time.Millisecond,
	}
}

// RotationStage builds the §5.3 rotation-stage program: yaw sweeps of
// ±halfAngle radians with per-sweep peak speed ramping from startSpeed by
// speedStep (rad/s).
// The stage axis is horizontal (perpendicular to the roughly vertical
// beam), so rotation directly stresses the incidence angle as in the
// prototype's horizontal-link rig.
func RotationStage(halfAngle, startSpeed, speedStep float64, sweeps int) Program {
	return motion.AngularSweeps{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfAngle:  halfAngle,
		StartSpeed: startSpeed,
		SpeedStep:  speedStep,
		Sweeps:     sweeps,
		Dwell:      150 * time.Millisecond,
	}
}

// HandHeld builds the §5.3 user-study program: free mixed motion ramping
// to the given linear (m/s) and angular (rad/s) intensities.
func HandHeld(maxLinear, maxAngular float64, length time.Duration, seed int64) Program {
	return &motion.HandHeld{
		Base:       link.DefaultHeadsetPose(),
		MaxLinear:  maxLinear,
		MaxAngular: maxAngular,
		Len:        length,
		Seed:       seed,
	}
}

// Playback replays a head-motion trace on the rig.
func Playback(t Trace) Program {
	return &motion.TracePlayback{Base: link.DefaultHeadsetPose(), T: t}
}

// GenerateTrace synthesizes one Fig 3-calibrated viewing trace anchored
// at the default headset position.
func GenerateTrace(seed int64, index int, length time.Duration) Trace {
	return GenerateTraceAt(seed, index, length, link.DefaultHeadsetPose().Trans)
}

// GenerateTraceAt is GenerateTrace with an explicit anchor: the trace's
// head motion wanders around origin instead of the default headset
// position — one user of a multi-headset venue, or a rig mounted
// off-center.
func GenerateTraceAt(seed int64, index int, length time.Duration, origin Vec3) Trace {
	return trace.Generate(seed, index, length, origin)
}

// TraceSource is the streaming form of the Fig 16 corpus: 500 one-minute
// traces generated on demand. Feed it to RunCorpus to simulate without
// materializing the corpus, or to sim.Materialize for a []Trace.
func TraceSource(seed int64) trace.Source {
	return trace.Source{
		Seed:   seed,
		N:      trace.DatasetTraces,
		Length: time.Minute,
		Origin: link.DefaultHeadsetPose().Trans,
	}
}

// TraceDataset synthesizes the 500-trace corpus used by Fig 16.
//
// Deprecated: use TraceSource with RunCorpus (streaming, memory-bounded)
// or sim.Materialize when a slice is genuinely needed.
func TraceDataset(seed int64) []Trace {
	return sim.Materialize(TraceSource(seed), 0)
}

// SpeedThreshold analyzes run samples for the highest speed bucket that
// sustained the link (the Fig 13 threshold readout).
func SpeedThreshold(samples []Sample, speedOf func(Sample) float64, bucket float64, minSamples int) float64 {
	return core.SpeedThreshold(samples, speedOf, bucket, minSamples)
}

// LinSpeedOf and AngSpeedOf are the standard accessors for SpeedThreshold.
func LinSpeedOf(s Sample) float64 { return s.LinSpeed }

// AngSpeedOf returns the sample's angular speed (rad/s).
func AngSpeedOf(s Sample) float64 { return s.AngSpeed }

// TraceResult is the per-trace outcome of the §5.4 availability
// simulation.
type TraceResult = sim.TraceResult

// TraceAvailability is the per-trace outcome of the §5.4 availability
// simulation.
//
// Deprecated: use TraceResult, which matches the internal/sim name. No
// in-repo caller remains; the alias stays for API compatibility only.
type TraceAvailability = sim.TraceResult

// CorpusResult aggregates a full §5.4 dataset run (Fig 16's data).
type CorpusResult = sim.CorpusResult

// AvailabilityCorpus aggregates a full §5.4 dataset run (Fig 16's data).
//
// Deprecated: use CorpusResult, which matches the internal/sim name. No
// in-repo caller remains; the alias stays for API compatibility only.
type AvailabilityCorpus = sim.CorpusResult

// CorpusSource is a streaming corpus: traces are produced on demand
// (TraceSource, sim.TraceSlice) so corpus size never bounds memory.
type CorpusSource = sim.CorpusSource

// CorpusOptions configures RunCorpus; the zero value means the paper's
// defaults (25G constants, default worker pool, aggregate-only).
type CorpusOptions = sim.CorpusOptions

// CorpusRunResult is RunCorpus's outcome: the order-insensitive aggregate
// plus a resumable checkpoint.
type CorpusRunResult = sim.CorpusRunResult

// CorpusCheckpoint is a resumable position in a corpus run (set
// CorpusOptions.Resume to continue).
type CorpusCheckpoint = sim.Checkpoint

// RunCorpus streams a corpus through the §5.4 slot model — optionally
// under fault injection (CorpusOptions.Chaos) — sharded across the worker
// pool, bit-identical at any worker count, resumable by shard. This is
// the unified entry point behind Fig16, fig16-faults, fig16-handover and
// the arena engine.
func RunCorpus(src CorpusSource, opts CorpusOptions) (CorpusRunResult, error) {
	return sim.RunCorpus(src, opts)
}

// FaultSchedule is a seeded, reproducible list of fault windows. Set
// RunOptions.Faults to a non-empty schedule to arm fault injection and the
// recovery supervisor; see DESIGN.md "Fault model & recovery".
type FaultSchedule = fault.Schedule

// FaultWindow is one fault episode inside a schedule.
type FaultWindow = fault.Window

// FaultConfig sets the per-class rates and durations PlanFaults draws
// from.
type FaultConfig = fault.Config

// RecoveryOptions tunes the link supervisor (backoff, jittered restarts,
// spiral scan, degradation threshold). The zero value uses the documented
// defaults.
type RecoveryOptions = core.RecoveryOptions

// PlanFaults synthesizes a reproducible fault schedule: the same (cfg,
// seed, duration) always yields the identical windows.
func PlanFaults(cfg FaultConfig, seed int64, dur time.Duration) FaultSchedule {
	return fault.Plan(cfg, seed, dur)
}

// DefaultFaultConfig is a moderately hostile chaos mix (occlusions,
// tracker dropouts, galvo faults, solver divergence).
func DefaultFaultConfig() FaultConfig { return fault.DefaultConfig() }

// HandoverOptions arms make-before-break multi-TX handover on a run:
// standby ceiling TXs are kept pre-pointed, and when the primary path
// occludes the supervisor swaps one in within the SFP's LOS holdover —
// ~2 ms of dark instead of the 3 s re-lock. Requires RunOptions.Faults;
// see DESIGN.md "Multi-TX handover as recovery".
type HandoverOptions = core.HandoverOptions

// TXPlant is one ceiling transmitter's physical surface (the primary's is
// owned by System; standbys come from StandbyRing).
type TXPlant = link.Plant

// StandbyRing builds count standby TX plants for cfg, placed on a ceiling
// ring of the given spacing (meters) around the primary, sharing the
// receiver identity derived from rxSeed (pass the System's seed). Hand
// the result to HandoverOptions.Standbys.
func StandbyRing(cfg LinkConfig, rxSeed int64, count int, spacing float64) []*TXPlant {
	return handover.StandbysFor(cfg, rxSeed, handover.RingPositions(count, spacing))
}

// SolveGateOptions arms pose-delta solver gating on a run: assigning the
// pointer to RunOptions.SolveGate skips the P solve when the report's
// pose delta since the last accepted solve is inside the tolerance cone.
// nil (the default) leaves the gate off — byte-identical to baseline.
type SolveGateOptions = core.SolveGateOptions

// HybridOptions arms the hybrid FSO + mmWave link policy on a run: a
// shadow mmWave link steps beside the optical plant, and when the FSO
// power SLO breaches for the breach window the policy fails the stream
// over, re-admitting the primary only after re-lock plus the clear
// window. Unlike HandoverOptions it needs no fault schedule — a clean run
// simply never leaves the primary. See DESIGN.md "Hybrid FSO + mmWave
// failover policy".
type HybridOptions = core.HybridOptions

// HybridStats is the hybrid policy's per-run outcome (RunResult.Hybrid).
type HybridStats = core.HybridStats

// PolicyOptions tunes the failover hysteresis: the sustained-breach
// window before leaving the primary and the sustained-clear window before
// re-admitting it.
type PolicyOptions = policy.Options

// DefaultHazeFaultConfig is the haze-only environmental-fade schedule
// (slow attenuation ramps, transparent to mmWave) behind cyclops-sim
// -haze and fig16-hybrid's haze-ramp arm. It composes with
// DefaultFaultConfig by copying the Haze* fields.
func DefaultHazeFaultConfig() FaultConfig { return fault.DefaultHazeConfig() }

// ChaosParams extend the §5.4 slot model with occlusion blocking and
// re-lock constants.
type ChaosParams = sim.ChaosParams

// ChaosCorpusResult aggregates a chaos corpus run (fig16-faults' data).
type ChaosCorpusResult = sim.ChaosCorpusResult

// MetricsRegistry is a deterministic, dependency-free metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text
// exposition. Hand one to System.Obs or RunOptions.Metrics to collect a
// run's observability; see DESIGN.md "Observability & determinism".
type MetricsRegistry = obs.Registry

// MetricsSnapshot is an immutable point-in-time capture of a registry —
// the form embedded in RunResult.Metrics and CorpusResult.Metrics.
type MetricsSnapshot = obs.Snapshot

// NewMetricsRegistry builds an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics is the process-wide registry: everything not given an
// explicit registry records here. Unlike per-run snapshots it aggregates
// concurrent work, so its exposition is stable in value but not guaranteed
// byte-identical across worker counts.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// VideoProfile describes a raw VR video stream (§2.1's bandwidth
// motivation).
type VideoProfile = netem.VideoProfile

// FrameStats summarizes a video streaming session over the link.
type FrameStats = netem.FrameStats

// Standard raw-video profiles from §2.1.
var (
	// Video8K30 is uncompressed 8K RGB at 30 fps (≈24 Gbps).
	Video8K30 = netem.Video8K30
	// Video4K90 is uncompressed 4K RGB at 90 fps (≈17.9 Gbps).
	Video4K90 = netem.Video4K90
	// Video4K30 is uncompressed 4K RGB at 30 fps (≈6 Gbps).
	Video4K30 = netem.Video4K30
)

// StreamVideo replays a run's recorded link states through a frame
// streamer: the renderer generates raw frames on the video clock and
// pushes them over the link as it was during the run. Record the run with
// a small SampleEvery (≤ a few ms) for faithful results.
func StreamVideo(res RunResult, profile VideoProfile, goodputGbps float64) FrameStats {
	fs := netem.NewFrameStreamer(profile)
	for i, s := range res.Samples {
		var tick time.Duration
		switch {
		case i+1 < len(res.Samples):
			tick = res.Samples[i+1].At - s.At
		case i > 0:
			tick = s.At - res.Samples[i-1].At
		default:
			tick = time.Millisecond
		}
		fs.Tick(s.At, tick, s.Up, goodputGbps)
	}
	return fs.Stats()
}
