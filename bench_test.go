package cyclops

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus the ablations DESIGN.md calls out. Each
// bench regenerates its experiment end to end and logs the same rows the
// paper reports, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation section in one run. EXPERIMENTS.md
// records paper-vs-measured for each.

import (
	"testing"
	"time"
)

// BenchmarkFig3SpeedCDFs regenerates the §2.2 headset speed CDFs.
func BenchmarkFig3SpeedCDFs(b *testing.B) {
	var r Fig3Result
	for i := 0; i < b.N; i++ {
		r = Fig3(1, 25)
	}
	b.Log("\n" + r.Render())
}

// BenchmarkTable1LinkTolerance regenerates Table 1.
func BenchmarkTable1LinkTolerance(b *testing.B) {
	var r Table1Result
	for i := 0; i < b.N; i++ {
		r = Table1()
	}
	b.Log("\n" + r.Render())
}

// BenchmarkFig11DiameterSweep regenerates the Fig 11 tolerance-vs-diameter
// sweep.
func BenchmarkFig11DiameterSweep(b *testing.B) {
	var r Fig11Result
	for i := 0; i < b.N; i++ {
		r = Fig11()
	}
	b.Log("\n" + r.Render())
}

// BenchmarkTable2CalibrationError runs the full two-stage calibration
// (Table 2).
func BenchmarkTable2CalibrationError(b *testing.B) {
	var r Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = Table2(int64(100 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkTPLatency runs the §5.2 TP evaluation (cadence, stationary
// noise, latency, lock tests).
func BenchmarkTPLatency(b *testing.B) {
	var r TPResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = TPEvaluation(int64(200 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkFig13PureMotions runs the 10G rail and rotation-stage
// experiments.
func BenchmarkFig13PureMotions(b *testing.B) {
	var lin, ang MotionResult
	var err error
	for i := 0; i < b.N; i++ {
		lin, ang, err = Fig13(int64(300 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + lin.Render() + ang.Render())
}

// BenchmarkFig14ArbitraryMotion runs the 10G user study.
func BenchmarkFig14ArbitraryMotion(b *testing.B) {
	var m MotionResult
	var err error
	for i := 0; i < b.N; i++ {
		m, err = Fig14(int64(400 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + m.Render())
}

// BenchmarkFig15TwentyFiveG runs the 25G pure and mixed experiments.
func BenchmarkFig15TwentyFiveG(b *testing.B) {
	var lin, ang, mix MotionResult
	var err error
	for i := 0; i < b.N; i++ {
		lin, ang, mix, err = Fig15(int64(500 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + lin.Render() + ang.Render() + mix.Render())
}

// BenchmarkTable3Summary assembles the tolerated-speed summary.
func BenchmarkTable3Summary(b *testing.B) {
	var r Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = Table3(int64(600 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkFig16TraceAvailability runs the §5.4 corpus simulation.
func BenchmarkFig16TraceAvailability(b *testing.B) {
	var r Fig16Result
	for i := 0; i < b.N; i++ {
		r = Fig16(int64(700 + i))
	}
	b.Log("\n" + r.Render())
}

// BenchmarkFig16TraceAvailabilitySerial pins the §5.4 corpus simulation to
// the serial path (workers=1). Compare against the Parallel variant below
// to measure the fan-out speedup on a given machine; the Makefile `bench`
// target records both into BENCH_parallel.json. Output is bit-identical
// between the two for any worker count.
func BenchmarkFig16TraceAvailabilitySerial(b *testing.B) {
	var r Fig16Result
	for i := 0; i < b.N; i++ {
		r = Fig16Workers(int64(700+i), 1)
	}
	b.Log("\n" + r.Render())
}

// BenchmarkFig16TraceAvailabilityParallel runs the same corpus with the
// default worker pool (one worker per core).
func BenchmarkFig16TraceAvailabilityParallel(b *testing.B) {
	var r Fig16Result
	for i := 0; i < b.N; i++ {
		r = Fig16Workers(int64(700+i), 0)
	}
	b.Log("\n" + r.Render())
}

// BenchmarkPointingConvergence measures the §4.3 iteration counts.
func BenchmarkPointingConvergence(b *testing.B) {
	var r ConvergenceResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = Convergence(int64(800 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkAblationDirectGPrime measures the footnote-3 failure mode.
func BenchmarkAblationDirectGPrime(b *testing.B) {
	var r DirectGPrimeResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = AblationDirectGPrime(int64(900 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkAblationFixedOrigin measures the footnote-6 distortion effect.
func BenchmarkAblationFixedOrigin(b *testing.B) {
	var r FixedOriginResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = AblationFixedOrigin(int64(1000 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkAblationTrackingRate measures the §6 tracking-frequency claim.
func BenchmarkAblationTrackingRate(b *testing.B) {
	var pts []TrackingRatePoint
	for i := 0; i < b.N; i++ {
		pts = AblationTrackingRate(int64(1100+i), []time.Duration{
			2 * time.Millisecond, 5 * time.Millisecond,
			10 * time.Millisecond, 20 * time.Millisecond,
		})
	}
	b.Log("\n" + RenderTrackingRate(pts))
}

// BenchmarkAblationBeamChoice measures the §5.1 design decision end to end.
func BenchmarkAblationBeamChoice(b *testing.B) {
	var r BeamChoiceResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = AblationBeamChoice(int64(1200 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkExtensionHandover measures the §3 multi-TX occlusion study.
func BenchmarkExtensionHandover(b *testing.B) {
	var r HandoverResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = ExtensionHandover(int64(1300 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkBaselineMmWave measures the §1 mmWave comparison.
func BenchmarkBaselineMmWave(b *testing.B) {
	var r BaselineResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = BaselineMmWave(int64(1400 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}

// BenchmarkEyeSafety evaluates every design against the Class 1 limit.
func BenchmarkEyeSafety(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = EyeSafetyTable()
	}
	b.Log("\n" + out)
}

// BenchmarkFutureWork40G runs the §6 WDM lane analysis.
func BenchmarkFutureWork40G(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = FutureWork40G()
	}
	b.Log("\n" + out)
}

// BenchmarkAblationCouplingImprovement measures the §5.3 received-power
// headroom claim.
func BenchmarkAblationCouplingImprovement(b *testing.B) {
	var r CouplingResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = AblationCouplingImprovement(int64(1500 + i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + r.Render())
}
