// Traces reproduces the §5.4 study: simulate the 25G prototype over 500
// one-minute head-motion viewing traces and report link availability — the
// Fig 16 result — plus a close-up of the best and worst trace.
package main

import (
	"fmt"
	"sort"
)

import "cyclops"

func main() {
	fmt.Println("generating 500 viewing traces and simulating 1 ms timeslots...")
	r := cyclops.Fig16(9)

	fmt.Printf("\noperational: mean %.2f%% of slots (paper: 98.6%%)\n",
		r.Corpus.MeanOnFraction*100)
	fmt.Printf("per-trace range: %.2f%% - %.2f%% (paper: 95-99.98%%)\n",
		r.Corpus.MinOnFraction*100, r.Corpus.MaxOnFraction*100)
	fmt.Printf("effective bandwidth: %.1f Gbps of the 23.5 Gbps optimal (paper: ≈23)\n",
		r.EffectiveGbps)
	fmt.Printf("off-slots falling in lightly-affected frames: %.0f%% (paper: >60%%)\n\n",
		r.ScatteredFraction*100)

	// Close-up: the distribution's two ends.
	per := append([]cyclops.TraceResult(nil), r.Corpus.PerTrace...)
	sort.Slice(per, func(i, j int) bool { return per[i].OnFraction < per[j].OnFraction })
	worst, best := per[0], per[len(per)-1]
	fmt.Printf("worst trace %-16s %.2f%% on, %4d off-slots\n", worst.ID, worst.OnFraction*100, worst.OffSlots)
	fmt.Printf("best trace  %-16s %.2f%% on, %4d off-slots\n", best.ID, best.OnFraction*100, best.OffSlots)

	xs, ys := r.Corpus.DisconnectionCDF(10)
	fmt.Println("\nCDF of per-trace disconnected percentage (Fig 16):")
	for i := range xs {
		bar := ""
		for k := 0; k < int(ys[i]*40); k++ {
			bar += "#"
		}
		fmt.Printf("  ≤%5.2f%%  %5.1f%%  %s\n", xs[i], ys[i]*100, bar)
	}
}
