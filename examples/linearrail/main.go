// Linearrail reproduces the §5.3 rail experiment interactively: the RX
// assembly strokes back and forth with increasing peak speed until the
// link starts dropping, and the program reports throughput and received
// power per speed bucket — the data behind Fig 13's top row.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"cyclops"
)

func main() {
	sys := cyclops.NewSystem(cyclops.Link10G, 7)
	fmt.Println("calibrating...")
	if _, err := sys.Calibrate(); err != nil {
		log.Fatalf("calibration: %v", err)
	}

	// Strokes ramp from 10 cm/s to 55 cm/s — through the paper's
	// 33 cm/s threshold.
	res, err := sys.Run(cyclops.RunOptions{
		Program:     cyclops.LinearRail(0.20, 0.10, 0.05, 10),
		SampleEvery: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	// Bucket the samples by measured linear speed, print aligned
	// fraction and mean power per bucket — a textual Fig 13.
	const bucket = 0.05
	type acc struct {
		n, ok int
		power float64
	}
	buckets := map[int]*acc{}
	for _, s := range res.Samples {
		b := buckets[int(s.LinSpeed/bucket)]
		if b == nil {
			b = &acc{}
			buckets[int(s.LinSpeed/bucket)] = b
		}
		b.n++
		if s.PowerOK {
			b.ok++
		}
		if !math.IsInf(s.PowerDBm, -1) {
			b.power += s.PowerDBm
		}
	}
	fmt.Println("\nspeed(cm/s)  aligned%   mean power(dBm)  samples")
	for i := 0; i < 16; i++ {
		b := buckets[i]
		if b == nil || b.n < 10 {
			continue
		}
		fmt.Printf("  %3.0f-%3.0f     %5.1f%%    %8.1f       %6d\n",
			float64(i)*bucket*100, float64(i+1)*bucket*100,
			float64(b.ok)/float64(b.n)*100, b.power/float64(b.n), b.n)
	}

	th := cyclops.SpeedThreshold(res.Samples, cyclops.LinSpeedOf, bucket, 20)
	fmt.Printf("\nlink sustained alignment up to ≈%.0f cm/s (paper: 33 cm/s)\n", th*100)
	fmt.Printf("link up %.1f%% of the run (re-locks after a loss take ~3 s, as in §5.3)\n",
		res.UpFraction*100)
}
