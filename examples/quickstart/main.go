// Quickstart: build a Cyclops system, run its two-stage calibration, and
// stream over the link while the headset moves — the README example,
// end to end.
package main

import (
	"fmt"
	"log"

	"cyclops"
)

func main() {
	// A 10 Gbps FSO link with the paper's chosen design: a diverging
	// beam, 16 mm diameter at the receiver. The seed fixes every hidden
	// imperfection — galvo geometry, mounting slop, tracker frames — so
	// runs are reproducible.
	sys := cyclops.NewSystem(cyclops.Link10G, 42)

	// Calibrate: §4.1's grid-board learning of each galvo assembly's
	// model G, then §4.2's joint fit of the 12 parameters mapping both
	// models into the headset tracker's coordinate space.
	report, err := sys.Calibrate()
	if err != nil {
		log.Fatalf("calibration failed: %v", err)
	}
	fmt.Println("calibration errors (cf. paper Table 2):")
	fmt.Printf("  stage 1:  TX %v | RX %v\n", report.Stage1TX, report.Stage1RX)
	fmt.Printf("  combined: %v\n", report.Combined)

	// Move the headset along a linear rail at 15 cm/s — the Fig 3
	// "normal use" envelope — while the tracking-and-pointing loop keeps
	// the beam aligned from the headset's own tracking reports.
	res, err := sys.Run(cyclops.RunOptions{
		Program: cyclops.LinearRail(0.20, 0.15, 0, 4),
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Printf("\nrun: link up %.1f%% of the time, %d pointing solves (%.1f P iterations avg)\n",
		res.UpFraction*100, res.Points, res.MeanPointIters())
	fmt.Println("throughput (50 ms windows):")
	for i, w := range res.Windows {
		if i%10 == 0 { // print every half second
			fmt.Printf("  t=%5dms  %5.2f Gbps\n", w.Start.Milliseconds(), w.Gbps)
		}
	}
}
