// Handover demonstrates the §3 multi-transmitter extension: an occluder
// (someone walking through the room) periodically blocks the primary
// TX→headset path; a second ceiling transmitter plus a handover controller
// keeps the light flowing.
package main

import (
	"fmt"
	"log"
)

import "cyclops"

func main() {
	fmt.Println("60 s static-headset session; an occluder blocks the primary path")
	fmt.Println("for 10 s out of every 20 s.")
	fmt.Println()

	r, err := cyclops.ExtensionHandover(4)
	if err != nil {
		log.Fatalf("handover study: %v", err)
	}
	fmt.Print(r.Render())

	fmt.Println()
	fmt.Printf("handover recovered %.0f%% of the occluded time.\n",
		(r.TwoTX.LightFraction-r.SingleTX.LightFraction)/(1-r.SingleTX.LightFraction)*100)
	fmt.Println("(the §3 sketch, quantified — see internal/handover for the controller)")
}
