// Vrstreaming is the paper's motivating scenario end to end: a renderer
// pushes raw VR video frames over the FSO link while the user's head moves
// (the §5.3 user study's hand-held mixed motion). It compares what the 10G
// and 25G links deliver for the §2.1 video profiles — the "why FSO" story
// in one program.
package main

import (
	"fmt"
	"log"
	"time"

	"cyclops"
)

func main() {
	motionSeed := int64(3)

	type setup struct {
		name    string
		cfg     cyclops.LinkConfig
		goodput float64
		video   cyclops.VideoProfile
	}
	setups := []setup{
		{"10G link / 4K30 raw video", cyclops.Link10G, 9.4, cyclops.Video4K30},
		{"10G link / 8K30 raw video", cyclops.Link10G, 9.4, cyclops.Video8K30},
		{"25G link / 4K90 raw video", cyclops.Link25G, 23.5, cyclops.Video4K90},
	}

	for _, s := range setups {
		sys := cyclops.NewSystem(s.cfg, 11)
		if _, err := sys.Calibrate(); err != nil {
			log.Fatalf("%s: calibration: %v", s.name, err)
		}
		// Gentle mixed head motion (the Fig 3 envelope).
		res, err := sys.Run(cyclops.RunOptions{
			Program:     cyclops.HandHeld(0.14, 0.33, 20*time.Second, motionSeed),
			SampleEvery: time.Millisecond,
		})
		if err != nil {
			log.Fatalf("%s: run: %v", s.name, err)
		}
		stats := cyclops.StreamVideo(res, s.video, s.goodput)
		fmt.Printf("%s (%.1f Gbps raw):\n", s.name, s.video.Gbps())
		fmt.Printf("  link up %.1f%% | %v\n\n", res.UpFraction*100, stats)
	}

	fmt.Println("takeaway: raw 8K30 (~24 Gbps) cannot fit the 10G link no matter how")
	fmt.Println("well it points — the §2.1 argument for ever-higher-rate FSO links.")
}
