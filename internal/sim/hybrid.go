// The hybrid and mmWave-only slot models: the corpus-scale counterparts
// of core.Run's RunOptions.Hybrid. The FSO side is the chaos slot model
// unchanged; the mmWave side is a two-constant caricature of
// baseline.MmWaveLink (a 3° beam shrugs off every head speed in the
// corpus, so only body blockage and its short MAC-level recovery matter);
// the policy.Controller between them is the same state machine the
// hardware path drives, fed one verdict per slot.
package sim

import (
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/policy"
	"cyclops/internal/trace"
)

// MmWaveSlotParams parameterize the slot-model mmWave link.
type MmWaveSlotParams struct {
	// PeakGoodputGbps is the delivered rate while the link is up (the
	// 802.11ad single-carrier peak; the slot model does not grade the MCS
	// ladder — a beam this wide is either carrying or blocked).
	PeakGoodputGbps float64
	// BlockAttenDB is the physical-obstruction depth at or above which
	// the mmWave path counts as body-blocked. The haze component of a
	// fault schedule never blocks it — fog is transparent at 60 GHz.
	BlockAttenDB float64
	// Recovery is the MAC-level reconnect time after a blockage clears
	// (no optical re-lock; beam retraining plus association).
	Recovery time.Duration
}

// PaperMmWave returns the slot-model constants matching
// baseline.NewMmWave: the 4.6 Gbps 802.11ad peak, the 10 dB blocking
// threshold shared with PaperChaos25G, and the 30 ms stream recovery
// baseline.Run models.
func PaperMmWave() MmWaveSlotParams {
	return MmWaveSlotParams{
		PeakGoodputGbps: 4.6,
		BlockAttenDB:    10,
		Recovery:        30 * time.Millisecond,
	}
}

// HybridSlotParams parameterize a hybrid corpus arm.
type HybridSlotParams struct {
	// Policy tunes the failover hysteresis (zero fields: the policy
	// package defaults — 50 ms breach, 500 ms clear).
	Policy policy.Options
	// Secondary is the mmWave side (zero value: PaperMmWave()).
	Secondary MmWaveSlotParams
	// PrimaryGoodputGbps is the delivered rate while the FSO side carries
	// (zero: the 25G transceiver's 23.5 Gbps optimal goodput).
	PrimaryGoodputGbps float64
}

func (p *HybridSlotParams) defaults() {
	if p.Secondary == (MmWaveSlotParams{}) {
		p.Secondary = PaperMmWave()
	}
	if p.PrimaryGoodputGbps <= 0 {
		p.PrimaryGoodputGbps = 23.5
	}
}

// mmSlotState is the slot-model mmWave link: blocked while the physical
// obstruction is at depth, then down for the MAC recovery tail.
type mmSlotState struct {
	p            MmWaveSlotParams
	recoverUntil time.Duration
}

// step advances one slot and reports whether the mmWave link is up.
func (m *mmSlotState) step(at time.Duration, occlDB float64) bool {
	if m.p.BlockAttenDB > 0 && occlDB >= m.p.BlockAttenDB {
		m.recoverUntil = at + m.p.Recovery
		return false
	}
	return at >= m.recoverUntil
}

// SimulateTraceHybrid runs the hybrid link policy over one trace: the FSO
// chaos slot model and the mmWave slot link advance together, the policy
// controller watches the FSO verdict slot by slot, and the returned
// result's availability fields (OffSlots, OnFraction, FrameHistogram) are
// rebuilt for the *delivered* stream — whichever medium the policy had
// carrying each slot. Outages and BlockedSlots keep the FSO side's
// bookkeeping (the episodes the policy routed around), as do the
// cyclops_sim_* and cyclops_outage_* metrics recorded into reg; the
// delivered story is in the result and the cyclops_policy_* instruments.
func SimulateTraceHybrid(tr trace.Trace, p ChaosParams, hp HybridSlotParams, sched *fault.Schedule, reg *obs.Registry) ChaosTraceResult {
	hp.defaults()
	ctl := policy.New(hp.Policy, policy.NewMetrics(reg))
	mm := mmSlotState{p: hp.Secondary}

	var hist [31]int
	offSlots, slotInFrame, frameOff := 0, 0, 0
	secondarySlots := 0
	var goodputSum float64

	res := SimulateTraceChaosSlots(tr, p, sched, reg, func(slot int, off bool) {
		at := time.Duration(slot) * p.Slot
		var fs fault.State
		if !sched.Empty() {
			fs = sched.At(at)
		}
		mmUp := mm.step(at, fs.AttenDB-fs.HazeDB)
		st := ctl.Observe(at, p.Slot, !off)

		deliveredOff := off
		if st.OnSecondary() {
			secondarySlots++
			deliveredOff = !mmUp
			if mmUp {
				goodputSum += hp.Secondary.PeakGoodputGbps
			}
		} else if !off {
			goodputSum += hp.PrimaryGoodputGbps
		}
		if deliveredOff {
			offSlots++
			frameOff++
		}
		slotInFrame++
		if slotInFrame == 30 {
			hist[frameOff]++
			slotInFrame, frameOff = 0, 0
		}
	})
	if slotInFrame > 0 {
		hist[frameOff]++
	}
	if res.Slots == 0 {
		return res
	}
	res.OffSlots = offSlots
	res.FrameHistogram = hist
	res.OnFraction = 1 - float64(offSlots)/float64(res.Slots)
	res.MeanGoodputGbps = goodputSum / float64(res.Slots)
	res.Failovers = ctl.Failovers()
	res.Readmits = ctl.Readmits()
	res.SecondarySlots = secondarySlots
	res.MinSecondaryDwell = ctl.MinSecondaryDwell()
	return res
}

// SimulateTraceMmWave runs the mmWave-only arm over one trace: no FSO
// model at all — the slot link is up except while a physical obstruction
// (the fault schedule's non-haze attenuation) is at blocking depth or its
// MAC recovery tail is running. Misalignment never costs a slot (a 3°
// beam tolerates the whole corpus), so every off slot is a BlockedSlot
// and every blockage episode an Outage. Records cyclops_sim_* into reg.
func SimulateTraceMmWave(tr trace.Trace, p ChaosParams, mp MmWaveSlotParams, sched *fault.Schedule, reg *obs.Registry) ChaosTraceResult {
	if mp == (MmWaveSlotParams{}) {
		mp = PaperMmWave()
	}
	res := ChaosTraceResult{TraceResult: TraceResult{ID: tr.ID}}
	if len(tr.Samples) < 2 || p.Slot <= 0 {
		return res
	}
	mm := mmSlotState{p: mp}
	end := tr.Duration()
	frameOff, slotInFrame := 0, 0
	wasBlocked := false
	var goodputSum float64
	for at := time.Duration(0); at < end; at += p.Slot {
		var fs fault.State
		if !sched.Empty() {
			fs = sched.At(at)
		}
		occl := fs.AttenDB - fs.HazeDB
		up := mm.step(at, occl)
		if blocked := mp.BlockAttenDB > 0 && occl >= mp.BlockAttenDB; blocked {
			if !wasBlocked {
				res.Outages++
			}
			wasBlocked = true
		} else {
			wasBlocked = false
		}

		res.Slots++
		if up {
			goodputSum += mp.PeakGoodputGbps
		} else {
			res.OffSlots++
			res.BlockedSlots++
			frameOff++
		}
		slotInFrame++
		if slotInFrame == 30 {
			res.FrameHistogram[frameOff]++
			slotInFrame, frameOff = 0, 0
		}
	}
	if slotInFrame > 0 {
		res.FrameHistogram[frameOff]++
	}
	if res.Slots > 0 {
		res.OnFraction = 1 - float64(res.OffSlots)/float64(res.Slots)
		res.MeanGoodputGbps = goodputSum / float64(res.Slots)
	}
	recordTrace(reg, res.Slots, res.OffSlots, res.OnFraction)
	return res
}
