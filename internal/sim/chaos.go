package sim

import (
	"context"
	"fmt"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/parallel"
	"cyclops/internal/trace"
)

// ChaosParams extend the §5.4 slot model with the fault-injection
// vocabulary of internal/fault: how deep an occlusion must be to sever the
// link, and how long the transceiver takes to re-lock once light returns.
type ChaosParams struct {
	AvailabilityParams
	// BlockAttenDB is the occlusion depth (dB) at or above which the slot
	// model treats the beam as blocked. Shallower occlusions eat margin on
	// the hardware plant but keep the slot model's link alive.
	BlockAttenDB float64
	// Relock is the SFP re-lock time after an occlusion clears: the link
	// stays down that long past the fault window's end, mirroring
	// link.Monitor's RelockDelay.
	Relock time.Duration
}

// PaperChaos25G returns Paper25G plus the chaos constants: a 10 dB
// blocking threshold (the 25G budget's full margin) and the transceiver
// config's 3 s re-lock.
func PaperChaos25G() ChaosParams {
	return ChaosParams{
		AvailabilityParams: Paper25G(),
		BlockAttenDB:       10,
		Relock:             3 * time.Second,
	}
}

// ChaosTraceResult is the per-trace chaos outcome: the base availability
// result plus the outage bookkeeping the supervisor tracks on the hardware
// path.
type ChaosTraceResult struct {
	TraceResult
	// Outages counts blocked episodes (occlusion plus its re-lock tail)
	// the trace suffered.
	Outages int
	// BlockedSlots counts slots lost to those episodes (a subset of
	// OffSlots; the rest are ordinary misalignment).
	BlockedSlots int
}

// SimulateTraceChaos runs the slot model over one trace with the given
// fault schedule injected. The base drift/realign machinery matches
// SimulateTrace slot for slot; on top of it:
//
//   - an occlusion window at or above BlockAttenDB severs the link for its
//     duration plus the Relock tail — those slots are off regardless of
//     pointing state;
//   - a tracker blackout (or an injected solver divergence) at a report's
//     arrival swallows that report: no realignment is scheduled and the
//     drift rates keep their last value;
//   - a stuck galvo at a realignment's completion turns it into a no-op —
//     the mirrors never moved, so the accumulated offsets stand.
//
// A nil or empty schedule reproduces SimulateTrace's Slots/OffSlots
// exactly. Outage metrics are recorded into reg under the same names the
// hardware supervisor uses (cyclops_outage_total,
// cyclops_reacquire_seconds), so both fault paths expose identically.
func SimulateTraceChaos(tr trace.Trace, p ChaosParams, sched *fault.Schedule, reg *obs.Registry) ChaosTraceResult {
	res := ChaosTraceResult{TraceResult: TraceResult{ID: tr.ID}}
	if len(tr.Samples) < 2 || p.Slot <= 0 {
		return res
	}
	om := fault.NewOutageMetrics(reg)

	lat := p.TPLateralError
	ang := p.TPAngularError
	var latStep, angStep float64
	slotSec := p.Slot.Seconds()

	samples := tr.Samples
	nextReportIdx := 1
	var realignAt time.Duration = -1

	end := tr.Duration()
	frameOff := 0
	slotInFrame := 0
	slots, offSlots := 0, 0
	tolLat, tolAng := p.LateralTolerance, p.AngularTolerance

	// Blocked-episode state.
	var relockUntil time.Duration = -1
	wasBlocked := false
	var blockedSince time.Duration

	for at := time.Duration(0); at < end; at += p.Slot {
		var fs fault.State
		if !sched.Empty() {
			fs = sched.At(at)
		}

		// Report arrivals. A blackout or divergence window swallows the
		// report entirely; otherwise drift rates update and a
		// realignment is scheduled, exactly like the base model.
		for nextReportIdx < len(samples) && samples[nextReportIdx].At <= at {
			a, b := &samples[nextReportIdx-1], &samples[nextReportIdx]
			if realignAt >= 0 && b.At >= realignAt {
				if !fs.GalvoStuck {
					lat = p.TPLateralError
					ang = p.TPAngularError
				}
				realignAt = -1
			}
			if fs.TrackerBlackout || fs.SolverDiverge {
				nextReportIdx++
				continue
			}
			if dt := (b.At - a.At).Seconds(); dt > 0 {
				dLin, dAng := a.Pose.Delta(b.Pose)
				latStep = dLin / dt * slotSec
				angStep = dAng / dt * slotSec
			}
			realignAt = b.At + p.RealignLatency
			nextReportIdx++
		}

		// Realignment completes — unless the mirrors are stuck, in which
		// case the command lands on a dead actuator and the offsets stand.
		if realignAt >= 0 && at >= realignAt {
			if !fs.GalvoStuck {
				lat = p.TPLateralError
				ang = p.TPAngularError
			}
			realignAt = -1
		}

		// Occlusion and its re-lock tail.
		occluded := fs.AttenDB >= p.BlockAttenDB && p.BlockAttenDB > 0
		if occluded {
			relockUntil = at + p.Relock
		}
		blocked := occluded || (relockUntil >= 0 && at < relockUntil)
		if blocked && !wasBlocked {
			res.Outages++
			blockedSince = at
			if om != nil {
				om.Outages.Inc()
			}
		}
		if !blocked && wasBlocked && om != nil {
			om.Reacquire.Observe((at - blockedSince).Seconds())
		}
		wasBlocked = blocked

		// Connectivity check for this slot.
		slots++
		if blocked || lat > tolLat || ang > tolAng {
			offSlots++
			frameOff++
			if blocked {
				res.BlockedSlots++
			}
		}
		slotInFrame++
		if slotInFrame == 30 {
			res.FrameHistogram[frameOff]++
			slotInFrame, frameOff = 0, 0
		}

		lat += latStep
		ang += angStep
	}
	if slotInFrame > 0 {
		res.FrameHistogram[frameOff]++
	}
	res.Slots = slots
	res.OffSlots = offSlots
	if res.Slots > 0 {
		res.OnFraction = 1 - float64(res.OffSlots)/float64(res.Slots)
	}
	recordTrace(reg, res.Slots, res.OffSlots, res.OnFraction)
	return res
}

// ChaosCorpusResult aggregates a chaos corpus run — the data behind the
// fig16-faults sweep.
type ChaosCorpusResult struct {
	PerTrace []ChaosTraceResult
	// MeanOnFraction / MinOnFraction / MaxOnFraction mirror CorpusResult.
	MeanOnFraction               float64
	MinOnFraction, MaxOnFraction float64
	// Outages and BlockedSlots total the per-trace episode bookkeeping.
	Outages      int
	BlockedSlots int
	// Metrics merges the per-trace registries in trace order —
	// byte-identical for any worker count.
	Metrics obs.Snapshot
}

func (c ChaosCorpusResult) String() string {
	return fmt.Sprintf("chaos corpus: mean on %.2f%%, range %.2f%%-%.2f%%, %d outages over %d traces",
		c.MeanOnFraction*100, c.MinOnFraction*100, c.MaxOnFraction*100, c.Outages, len(c.PerTrace))
}

// SimulateChaosCorpus runs the chaos slot model over every trace with a
// per-trace fault schedule planned from cfg: trace i gets the seed
// seed + 7919·i, so each trace's faults are independent but the whole
// corpus is a pure function of (cfg, seed). The fan-out uses
// parallel.MapCtx — ctx cancellation stops claiming new traces — and every
// worker count produces the same result bit for bit.
func SimulateChaosCorpus(ctx context.Context, traces []trace.Trace, p ChaosParams, cfg fault.Config, seed int64, workers int) (ChaosCorpusResult, error) {
	type job struct {
		res  ChaosTraceResult
		snap obs.Snapshot
	}
	var c ChaosCorpusResult
	outs, err := parallel.MapCtx(ctx, len(traces), workers, func(_ context.Context, i int) (job, error) {
		reg := obs.NewRegistry()
		sched := fault.Plan(cfg, seed+7919*int64(i), traces[i].Duration())
		return job{res: SimulateTraceChaos(traces[i], p, &sched, reg), snap: reg.Snapshot()}, nil
	})
	if err != nil {
		return c, err
	}
	c.PerTrace = make([]ChaosTraceResult, len(outs))
	snaps := make([]obs.Snapshot, len(outs))
	for i, o := range outs {
		c.PerTrace[i] = o.res
		snaps[i] = o.snap
	}
	c.Metrics = obs.MergeAll(snaps)
	obs.Default().Merge(c.Metrics)
	var slots, off int
	for i, r := range c.PerTrace {
		slots += r.Slots
		off += r.OffSlots
		c.Outages += r.Outages
		c.BlockedSlots += r.BlockedSlots
		if i == 0 {
			c.MinOnFraction, c.MaxOnFraction = r.OnFraction, r.OnFraction
		} else {
			if r.OnFraction < c.MinOnFraction {
				c.MinOnFraction = r.OnFraction
			}
			if r.OnFraction > c.MaxOnFraction {
				c.MaxOnFraction = r.OnFraction
			}
		}
	}
	if slots > 0 {
		c.MeanOnFraction = 1 - float64(off)/float64(slots)
	}
	return c, nil
}
