package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/trace"
)

// ChaosParams extend the §5.4 slot model with the fault-injection
// vocabulary of internal/fault: how deep an occlusion must be to sever the
// link, and how long the transceiver takes to re-lock once light returns.
type ChaosParams struct {
	AvailabilityParams
	// BlockAttenDB is the occlusion depth (dB) at or above which the slot
	// model treats the beam as blocked. Shallower occlusions eat margin on
	// the hardware plant but keep the slot model's link alive.
	BlockAttenDB float64
	// Relock is the SFP re-lock time after an occlusion clears: the link
	// stays down that long past the fault window's end, mirroring
	// link.Monitor's RelockDelay.
	Relock time.Duration
	// TXCount is the number of ceiling transmitters serving the headset.
	// At most one transmits; the others hold pre-pointed mirror solutions
	// (make-before-break, mirroring core.Run's Handover path). Zero or
	// one: the historical single-TX model, bit for bit.
	TXCount int
	// HandoverDark is the dark time a rescued occlusion episode costs —
	// the ~2 ms realignment slew to the standby instead of the occlusion
	// plus the Relock tail (default 2 ms when TXCount > 1).
	HandoverDark time.Duration
	// StandbyBlockProb is the probability that a given standby path is
	// also blocked by the same occlusion event (each standby draws
	// independently; StandbyBlockProbForSpacing derives it from ceiling
	// placement). An episode with every standby blocked is not rescued
	// and pays the full single-TX cost.
	StandbyBlockProb float64
}

// StandbyBlockProbForSpacing estimates StandbyBlockProb from ceiling
// geometry with a sector-overlap model: the occluder (a torso/arm at
// roughly arm's length, 0.35 m across at 1 m) shadows an angular sector of
// half-angle h around the primary path as seen from the headset; a standby
// whose beam arrives θ = 2·atan(spacing / (2·1.75)) away (1.75 m is the
// nominal ceiling-to-headset height) escapes the shadow when θ exceeds the
// sector. The 2% floor models body-scale events that shadow the whole
// ceiling at once.
func StandbyBlockProbForSpacing(spacing float64) float64 {
	const floorProb = 0.02
	h := math.Atan2(0.35, 1.0)
	theta := 2 * math.Atan2(spacing/2, 1.75)
	if theta >= 2*h {
		return floorProb
	}
	p := (2*h - theta) / (2 * h)
	if p < floorProb {
		p = floorProb
	}
	return p
}

// PaperChaos25G returns Paper25G plus the chaos constants: a 10 dB
// blocking threshold (the 25G budget's full margin) and the transceiver
// config's 3 s re-lock.
func PaperChaos25G() ChaosParams {
	return ChaosParams{
		AvailabilityParams: Paper25G(),
		BlockAttenDB:       10,
		Relock:             3 * time.Second,
	}
}

// ChaosTraceResult is the per-trace chaos outcome: the base availability
// result plus the outage bookkeeping the supervisor tracks on the hardware
// path.
type ChaosTraceResult struct {
	TraceResult
	// Outages counts blocked episodes (occlusion plus its re-lock tail)
	// the trace suffered.
	Outages int
	// BlockedSlots counts slots lost to those episodes (a subset of
	// OffSlots; the rest are ordinary misalignment).
	BlockedSlots int
	// Handovers counts occlusion episodes rescued by a switch to a clear
	// standby TX (TXCount > 1 only): those cost HandoverDark of blocked
	// time instead of an outage.
	Handovers int
	// Failovers / Readmits / SecondarySlots / MinSecondaryDwell are the
	// hybrid link policy's bookkeeping (SimulateTraceHybrid only; zero on
	// every other path): medium switches, time delivered traffic rode the
	// mmWave secondary, and the shortest completed secondary dwell.
	Failovers         int
	Readmits          int
	SecondarySlots    int
	MinSecondaryDwell time.Duration
	// MeanGoodputGbps is the delivered goodput averaged over all slots
	// (hybrid and mmWave-only arms; zero on the plain FSO paths, which
	// report availability only).
	MeanGoodputGbps float64
}

// SimulateTraceChaos runs the slot model over one trace with the given
// fault schedule injected. The base drift/realign machinery matches
// SimulateTrace slot for slot; on top of it:
//
//   - an occlusion window at or above BlockAttenDB severs the link for its
//     duration plus the Relock tail — those slots are off regardless of
//     pointing state;
//   - a tracker blackout (or an injected solver divergence) at a report's
//     arrival swallows that report: no realignment is scheduled and the
//     drift rates keep their last value;
//   - a stuck galvo at a realignment's completion turns it into a no-op —
//     the mirrors never moved, so the accumulated offsets stand.
//
// A nil or empty schedule reproduces SimulateTrace's Slots/OffSlots
// exactly. Outage metrics are recorded into reg under the same names the
// hardware supervisor uses (cyclops_outage_total,
// cyclops_reacquire_seconds), so both fault paths expose identically.
func SimulateTraceChaos(tr trace.Trace, p ChaosParams, sched *fault.Schedule, reg *obs.Registry) ChaosTraceResult {
	return SimulateTraceChaosSlots(tr, p, sched, reg, nil)
}

// SimulateTraceChaosSlots is SimulateTraceChaos with a per-slot sink:
// sink(slot, off) fires once per simulated slot, in slot order, with the
// slot's final connectivity verdict (off covers both misalignment and
// blocking). The arena engine uses it to replay per-user connectivity
// through the shared-backhaul contention pass without materializing a
// second slot loop. A nil sink is the plain SimulateTraceChaos, cost
// included — the nil check is one predictable branch per slot.
func SimulateTraceChaosSlots(tr trace.Trace, p ChaosParams, sched *fault.Schedule, reg *obs.Registry, sink func(slot int, off bool)) ChaosTraceResult {
	res := ChaosTraceResult{TraceResult: TraceResult{ID: tr.ID}}
	if len(tr.Samples) < 2 || p.Slot <= 0 {
		return res
	}
	om := fault.NewOutageMetrics(reg)

	lat := p.TPLateralError
	ang := p.TPAngularError
	var latStep, angStep float64
	slotSec := p.Slot.Seconds()

	samples := tr.Samples
	nextReportIdx := 1
	var realignAt time.Duration = -1

	end := tr.Duration()
	frameOff := 0
	slotInFrame := 0
	slots, offSlots := 0, 0
	tolLat, tolAng := p.LateralTolerance, p.AngularTolerance

	// Blocked-episode state.
	var relockUntil time.Duration = -1
	wasBlocked := false
	var blockedSince time.Duration

	// Multi-TX handover state. The rescue stream is a per-trace rng
	// derived from the schedule's seed, with a fixed per-episode
	// consumption pattern (one draw per standby, every episode), so any
	// worker count replays it bit for bit. TXCount ≤ 1 creates neither
	// the rng nor the handover instruments — the historical single-TX
	// path, byte-identical exposition included.
	multiTX := p.TXCount > 1
	handoverDark := p.HandoverDark
	if handoverDark <= 0 {
		handoverDark = 2 * time.Millisecond
	}
	var hm *fault.HandoverMetrics
	var rng *rand.Rand
	if multiTX {
		hm = fault.NewHandoverMetrics(reg)
		rng = rand.New(rand.NewSource(sched.Seed*9176 + 13))
	}
	inOcc := false
	rescued := false
	blockedRescued := false
	var hoUntil time.Duration

	for at := time.Duration(0); at < end; at += p.Slot {
		var fs fault.State
		if !sched.Empty() {
			fs = sched.At(at)
		}

		// Report arrivals. A blackout or divergence window swallows the
		// report entirely; otherwise drift rates update and a
		// realignment is scheduled, exactly like the base model.
		for nextReportIdx < len(samples) && samples[nextReportIdx].At <= at {
			a, b := &samples[nextReportIdx-1], &samples[nextReportIdx]
			if realignAt >= 0 && b.At >= realignAt {
				if !fs.GalvoStuck {
					lat = p.TPLateralError
					ang = p.TPAngularError
				}
				realignAt = -1
			}
			if fs.TrackerBlackout || fs.SolverDiverge {
				nextReportIdx++
				continue
			}
			if dt := (b.At - a.At).Seconds(); dt > 0 {
				dLin, dAng := a.Pose.Delta(b.Pose)
				latStep = dLin / dt * slotSec
				angStep = dAng / dt * slotSec
			}
			realignAt = b.At + p.RealignLatency
			nextReportIdx++
		}

		// Realignment completes — unless the mirrors are stuck, in which
		// case the command lands on a dead actuator and the offsets stand.
		if realignAt >= 0 && at >= realignAt {
			if !fs.GalvoStuck {
				lat = p.TPLateralError
				ang = p.TPAngularError
			}
			realignAt = -1
		}

		// Occlusion and its re-lock tail. With standby TXs, each
		// occlusion episode draws whether any standby path escaped the
		// same event: a rescued episode costs HandoverDark of blocked
		// slots (the make-before-break slew) and no re-lock tail; an
		// unrescued one pays the full single-TX cost.
		occluded := fs.AttenDB >= p.BlockAttenDB && p.BlockAttenDB > 0
		if occluded && !inOcc {
			inOcc = true
			rescued = false
			if multiTX {
				// One draw per standby on every episode, rescued or
				// not, so the stream's consumption pattern is fixed.
				for k := 1; k < p.TXCount; k++ {
					if rng.Float64() >= p.StandbyBlockProb {
						rescued = true
					}
				}
				if rescued {
					hoUntil = at + handoverDark
					res.Handovers++
					hm.Handovers.Inc()
					hm.Dark.Observe(handoverDark.Seconds())
				}
			}
		} else if !occluded {
			inOcc = false
		}
		sever := occluded && !(rescued && at >= hoUntil)
		if sever && !rescued {
			relockUntil = at + p.Relock
		}
		blocked := sever || (relockUntil >= 0 && at < relockUntil)
		if blocked && !wasBlocked {
			blockedSince = at
			blockedRescued = rescued
			if !rescued {
				// A rescued episode is a handover, not an outage: the
				// transceiver's holdover rides the switch, so neither
				// cyclops_outage_total nor the re-lock histogram sees it.
				res.Outages++
				if om != nil {
					om.Outages.Inc()
				}
			}
		}
		if !blocked && wasBlocked && !blockedRescued && om != nil {
			om.Reacquire.Observe((at - blockedSince).Seconds())
		}
		wasBlocked = blocked

		// Connectivity check for this slot.
		slots++
		off := blocked || lat > tolLat || ang > tolAng
		if off {
			offSlots++
			frameOff++
			if blocked {
				res.BlockedSlots++
			}
		}
		if sink != nil {
			sink(slots-1, off)
		}
		slotInFrame++
		if slotInFrame == 30 {
			res.FrameHistogram[frameOff]++
			slotInFrame, frameOff = 0, 0
		}

		lat += latStep
		ang += angStep
	}
	if slotInFrame > 0 {
		res.FrameHistogram[frameOff]++
	}
	res.Slots = slots
	res.OffSlots = offSlots
	if res.Slots > 0 {
		res.OnFraction = 1 - float64(res.OffSlots)/float64(res.Slots)
	}
	recordTrace(reg, res.Slots, res.OffSlots, res.OnFraction)
	return res
}

// ChaosCorpusResult aggregates a chaos corpus run — the data behind the
// fig16-faults sweep.
type ChaosCorpusResult struct {
	PerTrace []ChaosTraceResult
	// MeanOnFraction / MinOnFraction / MaxOnFraction mirror CorpusResult.
	MeanOnFraction               float64
	MinOnFraction, MaxOnFraction float64
	// Outages, BlockedSlots, and Handovers total the per-trace episode
	// bookkeeping.
	Outages      int
	BlockedSlots int
	Handovers    int
	// Metrics merges the per-trace registries in trace order —
	// byte-identical for any worker count.
	Metrics obs.Snapshot
}

func (c ChaosCorpusResult) String() string {
	return fmt.Sprintf("chaos corpus: mean on %.2f%%, range %.2f%%-%.2f%%, %d outages over %d traces",
		c.MeanOnFraction*100, c.MinOnFraction*100, c.MaxOnFraction*100, c.Outages, len(c.PerTrace))
}

// SimulateChaosCorpus runs the chaos slot model over every trace with a
// per-trace fault schedule planned from cfg: trace i gets the seed
// seed + 7919·i, so each trace's faults are independent but the whole
// corpus is a pure function of (cfg, seed). Ctx cancellation stops
// claiming new traces, and every worker count produces the same result
// bit for bit.
//
// Deprecated: use RunCorpus with CorpusOptions.Chaos — the streaming
// engine behind both. This wrapper pins the historical behavior bit for
// bit (single-trace shards reproduce the old per-trace metrics fold
// exactly; see TestSimulateChaosCorpusWrapperBitIdentical).
func SimulateChaosCorpus(ctx context.Context, traces []trace.Trace, p ChaosParams, cfg fault.Config, seed int64, workers int) (ChaosCorpusResult, error) {
	run, err := runCorpus(TraceSlice(traces), corpusConfig{
		ctx:          ctx,
		chaos:        &chaosRun{cfg: cfg, seed: seed, params: p},
		workers:      workers,
		shardSize:    1,
		keepPerTrace: true,
		registry:     obs.Default(),
	})
	if err != nil {
		return ChaosCorpusResult{}, err
	}
	return ChaosCorpusResult{
		PerTrace:       run.PerTrace,
		MeanOnFraction: run.MeanOnFraction,
		MinOnFraction:  run.MinOnFraction,
		MaxOnFraction:  run.MaxOnFraction,
		Outages:        run.Outages,
		BlockedSlots:   run.BlockedSlots,
		Handovers:      run.Handovers,
		Metrics:        run.Metrics,
	}, nil
}
