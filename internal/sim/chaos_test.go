package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/obs"
	"cyclops/internal/trace"
)

// An all-zero schedule must reproduce the base §5.4 model slot for slot:
// the chaos path is the base path plus branches that never fire.
func TestChaosEmptyScheduleMatchesBase(t *testing.T) {
	origin := geom.V(0.35, 0.25, 1.0)
	for i := 0; i < 8; i++ {
		tr := trace.Generate(5, i, 10*time.Second, origin)
		base := SimulateTrace(tr, Paper25G())
		got := SimulateTraceChaos(tr, PaperChaos25G(), nil, nil)
		if !reflect.DeepEqual(got.TraceResult, base) {
			t.Fatalf("trace %d: empty-schedule chaos result differs from SimulateTrace", i)
		}
		if got.Outages != 0 || got.BlockedSlots != 0 {
			t.Fatalf("trace %d: empty schedule produced outages", i)
		}
		empty := &fault.Schedule{Seed: 1}
		got2 := SimulateTraceChaos(tr, PaperChaos25G(), empty, nil)
		if !reflect.DeepEqual(got2, got) {
			t.Fatalf("trace %d: windowless schedule differs from nil schedule", i)
		}
	}
}

// A single deep occlusion severs the link for its window plus the re-lock
// tail, and never pushes availability outside [0, 1].
func TestChaosOcclusionEpisode(t *testing.T) {
	tr := trace.Generate(5, 42, 10*time.Second, geom.V(0.35, 0.25, 1.0))
	p := PaperChaos25G()
	p.Relock = 500 * time.Millisecond
	sched := &fault.Schedule{Windows: []fault.Window{{
		Kind: fault.Occlusion, Start: 2 * time.Second, End: 2*time.Second + 300*time.Millisecond,
		DepthDB: 30, Ramp: 10 * time.Millisecond,
	}}}
	reg := obs.NewRegistry()
	got := SimulateTraceChaos(tr, p, sched, reg)
	base := SimulateTrace(tr, p.AvailabilityParams)

	if got.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", got.Outages)
	}
	// Window ≈300 ms + 500 ms relock ⇒ roughly 800 blocked slots.
	if got.BlockedSlots < 700 || got.BlockedSlots > 900 {
		t.Errorf("BlockedSlots = %d, want ≈800", got.BlockedSlots)
	}
	if got.OffSlots < got.BlockedSlots {
		t.Errorf("OffSlots = %d < BlockedSlots = %d", got.OffSlots, got.BlockedSlots)
	}
	if got.OnFraction < 0 || got.OnFraction > 1 {
		t.Errorf("OnFraction = %v outside [0, 1]", got.OnFraction)
	}
	if got.OnFraction >= base.OnFraction {
		t.Errorf("occlusion did not cut availability: %v >= %v", got.OnFraction, base.OnFraction)
	}
	// The injected outage shows up in the shared metric names, and its
	// recovery lands in the reacquire histogram.
	exp := reg.Exposition()
	for _, want := range []string{"cyclops_outage_total 1", "cyclops_reacquire_seconds_count 1"} {
		if !containsLine(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
}

// A stuck galvo makes realignments no-ops: offsets keep accumulating, so a
// motion-heavy trace loses more slots than the fault-free run.
func TestChaosStuckGalvoDegrades(t *testing.T) {
	tr := trace.Generate(5, 7, 10*time.Second, geom.V(0.35, 0.25, 1.0))
	p := PaperChaos25G()
	sched := &fault.Schedule{Windows: []fault.Window{{
		Kind: fault.GalvoStuck, Start: 1 * time.Second, End: 4 * time.Second,
	}}}
	got := SimulateTraceChaos(tr, p, sched, nil)
	base := SimulateTrace(tr, p.AvailabilityParams)
	if got.BlockedSlots != 0 {
		t.Errorf("stuck galvo is not an occlusion: BlockedSlots = %d", got.BlockedSlots)
	}
	if got.OffSlots < base.OffSlots {
		t.Errorf("stuck galvo reduced off slots: %d < %d", got.OffSlots, base.OffSlots)
	}
	if got.OnFraction < 0 || got.OnFraction > 1 {
		t.Errorf("OnFraction = %v outside [0, 1]", got.OnFraction)
	}
}

// TXCount 0 and 1 take the identical single-TX path: same results, same
// exposition, no handover instruments, no rescue rng consumed.
func TestChaosSingleTXBitIdentical(t *testing.T) {
	tr := trace.Generate(5, 42, 10*time.Second, geom.V(0.35, 0.25, 1.0))
	p := PaperChaos25G()
	p.Relock = 500 * time.Millisecond
	sched := &fault.Schedule{Seed: 3, Windows: []fault.Window{{
		Kind: fault.Occlusion, Start: 2 * time.Second, End: 2*time.Second + 300*time.Millisecond,
		DepthDB: 30, Ramp: 10 * time.Millisecond,
	}}}
	run := func(txCount int) (ChaosTraceResult, string) {
		reg := obs.NewRegistry()
		q := p
		q.TXCount = txCount
		return SimulateTraceChaos(tr, q, sched, reg), reg.Exposition()
	}
	r0, e0 := run(0)
	r1, e1 := run(1)
	if !reflect.DeepEqual(r1, r0) {
		t.Error("TXCount=1 differs from TXCount=0")
	}
	if e1 != e0 {
		t.Error("TXCount=1 exposition differs from TXCount=0")
	}
	if containsSub(e0, "cyclops_handover") {
		t.Error("single-TX run registered handover metrics")
	}
}

// With a certainly-clear standby every occlusion episode is rescued: one
// handover per episode, no outage, ~HandoverDark of blocked time instead of
// the occlusion plus the re-lock tail. With every standby certainly blocked
// the multi-TX run collapses to the single-TX cost.
func TestChaosMultiTXRescue(t *testing.T) {
	tr := trace.Generate(5, 42, 10*time.Second, geom.V(0.35, 0.25, 1.0))
	p := PaperChaos25G()
	p.Relock = 500 * time.Millisecond
	p.TXCount = 2
	p.HandoverDark = 2 * time.Millisecond
	sched := &fault.Schedule{Seed: 3, Windows: []fault.Window{{
		Kind: fault.Occlusion, Start: 2 * time.Second, End: 2*time.Second + 300*time.Millisecond,
		DepthDB: 30, Ramp: 10 * time.Millisecond,
	}}}

	p.StandbyBlockProb = 0 // standby always clear
	reg := obs.NewRegistry()
	rescued := SimulateTraceChaos(tr, p, sched, reg)
	if rescued.Handovers != 1 {
		t.Errorf("Handovers = %d, want 1", rescued.Handovers)
	}
	if rescued.Outages != 0 {
		t.Errorf("Outages = %d, want 0 (rescued episode is not an outage)", rescued.Outages)
	}
	if rescued.BlockedSlots < 1 || rescued.BlockedSlots > 4 {
		t.Errorf("BlockedSlots = %d, want ≈2 (one HandoverDark slew)", rescued.BlockedSlots)
	}
	exp := reg.Exposition()
	for _, want := range []string{"cyclops_handover_total 1", "cyclops_outage_total 0"} {
		if !containsLine(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	p.StandbyBlockProb = 1 // standby always shadowed too
	doomed := SimulateTraceChaos(tr, p, sched, obs.NewRegistry())
	single := p
	single.TXCount = 1
	base := SimulateTraceChaos(tr, single, sched, obs.NewRegistry())
	if doomed.Handovers != 0 || doomed.Outages != base.Outages || doomed.BlockedSlots != base.BlockedSlots {
		t.Errorf("fully-shadowed multi-TX run differs from single-TX: %+v vs %+v",
			doomed, base)
	}

	// Same parameters, same seed: bit-identical replay.
	again := SimulateTraceChaos(tr, p, sched, obs.NewRegistry())
	if !reflect.DeepEqual(again, doomed) {
		t.Error("multi-TX chaos run not reproducible")
	}
}

// The sector-overlap placement model: wider ceiling spacing means a standby
// is less likely to share the primary's shadow, floored at the body-scale
// event rate.
func TestStandbyBlockProbForSpacing(t *testing.T) {
	narrow := StandbyBlockProbForSpacing(0.6)
	wide := StandbyBlockProbForSpacing(1.4)
	if !(narrow > wide) {
		t.Errorf("narrow spacing %v not riskier than wide %v", narrow, wide)
	}
	if wide != 0.02 {
		t.Errorf("1.4 m spacing = %v, want the 0.02 floor", wide)
	}
	if huge := StandbyBlockProbForSpacing(10); huge != 0.02 {
		t.Errorf("huge spacing = %v, want the 0.02 floor", huge)
	}
	if narrow <= 0.02 || narrow >= 1 {
		t.Errorf("narrow spacing %v outside (0.02, 1)", narrow)
	}
}

func TestSimulateChaosCorpusWorkerDeterminism(t *testing.T) {
	origin := geom.V(0.35, 0.25, 1.0)
	traces := make([]trace.Trace, 24)
	for i := range traces {
		traces[i] = trace.Generate(5, i, 5*time.Second, origin)
	}
	cfg := fault.DefaultConfig()
	p := PaperChaos25G()
	p.Relock = 200 * time.Millisecond
	serial, err := SimulateChaosCorpus(context.Background(), traces, p, cfg, 99, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.Outages == 0 {
		t.Fatal("default fault config injected no outages — test is vacuous")
	}
	for _, workers := range []int{4, 8} {
		got, err := SimulateChaosCorpus(context.Background(), traces, p, cfg, 99, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: ChaosCorpusResult differs from serial", workers)
		}
		if got.Metrics.Exposition() != serial.Metrics.Exposition() {
			t.Errorf("workers=%d: metrics exposition differs from serial", workers)
		}
	}
	for _, r := range serial.PerTrace {
		if r.OnFraction < 0 || r.OnFraction > 1 {
			t.Errorf("trace %s: OnFraction = %v outside [0, 1]", r.ID, r.OnFraction)
		}
		if r.OffSlots > r.Slots || r.OffSlots < 0 {
			t.Errorf("trace %s: OffSlots = %d of %d slots", r.ID, r.OffSlots, r.Slots)
		}
	}
}

func TestSimulateChaosCorpusCancellation(t *testing.T) {
	traces := []trace.Trace{trace.Generate(5, 1, 2*time.Second, geom.V(0.35, 0.25, 1.0))}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateChaosCorpus(ctx, traces, PaperChaos25G(), fault.DefaultConfig(), 1, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func containsLine(exp, want string) bool {
	for len(exp) > 0 {
		i := 0
		for i < len(exp) && exp[i] != '\n' {
			i++
		}
		if exp[:i] == want {
			return true
		}
		if i == len(exp) {
			break
		}
		exp = exp[i+1:]
	}
	return false
}
