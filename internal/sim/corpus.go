// The streaming corpus engine: the one entry point behind which the
// historical SimulateCorpus / SimulateCorpusWorkers / SimulateChaosCorpus
// triplet now sits. A corpus is an indexed CorpusSource — traces are
// produced on demand, never materialized as a whole — cut into fixed-size
// shards that fan out through parallel.MapCtx and reduce serially, in
// shard order, into a running aggregate. The engine's contract:
//
//   - bit-identical results for any worker count (the shard partition is a
//     function of the options alone, never of the worker count, and every
//     reduction happens serially in shard order);
//   - memory bounded: live heap is O(workers · shard), independent of
//     corpus length, unless KeepPerTrace asks for the full per-trace slice;
//   - resumable: the returned Checkpoint restarts the run mid-corpus
//     (Resume + MaxShards) and the stitched result is bit-identical to the
//     uninterrupted one.
package sim

import (
	"context"
	"fmt"

	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/parallel"
	"cyclops/internal/trace"
)

// CorpusSource is an indexed stream of traces. At must be a pure function
// of i — the engine calls it from worker goroutines and may call it again
// for the same index on a resumed run. trace.Source generates the §5.4
// synthetic corpus this way; TraceSlice adapts an already-materialized
// slice.
type CorpusSource interface {
	// Len is the corpus size.
	Len() int
	// At returns trace i (0 ≤ i < Len). Must be pure and safe for
	// concurrent calls.
	At(i int) trace.Trace
}

// ReusableSource is an optional CorpusSource refinement: AtInto is At
// with a caller-owned sample buffer, aliased by the returned trace when
// large enough. The engine consumes each trace fully (simulate, fold,
// drop) before asking for the next one in the shard, so runShard keeps a
// single buffer per shard and threads it through every AtInto call —
// turning ~ShardSize per-trace sample allocations (and their clears)
// into one. trace.Source implements it; sources that don't silently get
// the plain At path.
type ReusableSource interface {
	CorpusSource
	// AtInto is At with a reusable buffer. Like At it must be pure in i
	// and safe for concurrent calls (distinct buffers).
	AtInto(i int, buf []trace.Sample) trace.Trace
}

// TraceSlice adapts a materialized []trace.Trace to CorpusSource.
type TraceSlice []trace.Trace

// Len returns the corpus size.
func (s TraceSlice) Len() int { return len(s) }

// At returns trace i.
func (s TraceSlice) At(i int) trace.Trace { return s[i] }

// Materialize realizes a source as a slice, generating traces across the
// worker pool (≤ 0 means the parallel package default). Use it when an
// experiment reuses the same corpus for several sweep cells; for a single
// pass, stream the source through RunCorpus instead.
func Materialize(src CorpusSource, workers int) []trace.Trace {
	return parallel.Map(src.Len(), workers, src.At)
}

// CorpusChaos arms fault injection on a corpus run: trace i's schedule is
// fault.Plan(Config, Seed + 7919·i, trace duration) — independent faults
// per trace, the whole corpus a pure function of (Config, Seed).
type CorpusChaos struct {
	// Config sets the per-class fault rates and durations.
	Config fault.Config
	// Seed derives every per-trace schedule.
	Seed int64
	// Params are the chaos slot-model constants (blocking threshold,
	// re-lock, TX count, handover). Validate defaults a zero value to
	// PaperChaos25G and a zero embedded AvailabilityParams to the run's
	// Params.
	Params ChaosParams
	// Hybrid, when non-nil, runs the hybrid FSO + mmWave policy arm
	// (SimulateTraceHybrid) instead of the plain chaos model. Mutually
	// exclusive with MmWaveOnly.
	Hybrid *HybridSlotParams
	// MmWaveOnly, when non-nil, runs the mmWave-only arm
	// (SimulateTraceMmWave): the fault schedules still plan per trace,
	// but only their physical-obstruction component matters.
	MmWaveOnly *MmWaveSlotParams
}

// CorpusOptions configures RunCorpus. The zero value is valid: Paper25G
// constants, no chaos, default workers, 64-trace shards, aggregate-only
// results, metrics merged into obs.Default().
type CorpusOptions struct {
	// Context cancels the run between shard batches and inside the
	// fan-out; nil means context.Background(). A canceled run returns the
	// partial aggregate with a resumable Checkpoint alongside ctx's error.
	Context context.Context
	// Params are the §5.4 slot-model constants; the zero value means
	// Paper25G().
	Params AvailabilityParams
	// Chaos, when non-nil, runs the chaos slot model with per-trace fault
	// schedules instead of the clean one.
	Chaos *CorpusChaos
	// Workers is the fan-out width (≤ 0: the parallel package default;
	// 1: the serial reference path). Any value yields bit-identical
	// results.
	Workers int
	// ShardSize is the number of consecutive traces per shard (≤ 0: 64).
	// The shard partition — not the worker count — is part of the
	// result's identity: metric histogram sums are folded shard by shard,
	// so changing ShardSize may flip last-bit float rounding while every
	// integer aggregate stays identical.
	ShardSize int
	// KeepPerTrace retains the per-trace results (for CDFs and per-trace
	// renders). Off, the run holds only O(workers · ShardSize) results at
	// a time — the memory-bounded mode. On a resumed run PerTrace covers
	// only the shards this call executed.
	KeepPerTrace bool
	// Registry receives the corpus's merged metrics once, when the run
	// completes (Checkpoint.Done). nil means obs.Default(); pass a
	// throwaway obs.NewRegistry() to keep a run out of the process
	// registry.
	Registry *obs.Registry
	// Resume continues a previous run from its returned Checkpoint.
	Resume Checkpoint
	// MaxShards caps how many shards this call executes (0: no cap) —
	// the checkpointing window for interruptible runs.
	MaxShards int
}

// Validate fills defaults in place and rejects malformed options.
func (o *CorpusOptions) Validate() error {
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.ShardSize < 0 {
		return fmt.Errorf("sim: CorpusOptions.ShardSize %d is negative", o.ShardSize)
	}
	if o.ShardSize == 0 {
		o.ShardSize = DefaultShardSize
	}
	if o.MaxShards < 0 {
		return fmt.Errorf("sim: CorpusOptions.MaxShards %d is negative", o.MaxShards)
	}
	if o.Resume.NextShard < 0 {
		return fmt.Errorf("sim: CorpusOptions.Resume.NextShard %d is negative", o.Resume.NextShard)
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Params == (AvailabilityParams{}) {
		o.Params = Paper25G()
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	if o.Chaos != nil {
		if o.Chaos.Params == (ChaosParams{}) {
			o.Chaos.Params = PaperChaos25G()
		}
		if o.Chaos.Params.AvailabilityParams == (AvailabilityParams{}) {
			o.Chaos.Params.AvailabilityParams = o.Params
		}
		if o.Chaos.Hybrid != nil && o.Chaos.MmWaveOnly != nil {
			return fmt.Errorf("sim: CorpusChaos.Hybrid and MmWaveOnly are mutually exclusive")
		}
	}
	return nil
}

// DefaultShardSize is the shard width Validate applies when
// CorpusOptions.ShardSize is zero.
const DefaultShardSize = 64

// CorpusAggregate is the running reduction of a corpus run — every field
// folds associatively in shard order, so a resumed run accumulates into
// the same values as an uninterrupted one.
type CorpusAggregate struct {
	// Traces, Slots, OffSlots total the corpus so far.
	Traces   int
	Slots    int
	OffSlots int
	// MeanOnFraction is 1 − OffSlots/Slots, recomputed after every fold.
	MeanOnFraction float64
	// MinOnFraction / MaxOnFraction bound the per-trace spread.
	MinOnFraction, MaxOnFraction float64
	// Outages, BlockedSlots, Handovers total the chaos bookkeeping (zero
	// on clean runs).
	Outages      int
	BlockedSlots int
	Handovers    int
	// Failovers, Readmits, SecondarySlots total the hybrid policy's
	// bookkeeping; MinSecondaryDwell is the shortest completed secondary
	// dwell across the corpus (zero when none completed); GoodputSlotSum
	// is Σ MeanGoodputGbps·Slots over traces, so the corpus-mean delivered
	// goodput is GoodputSlotSum/Slots. All zero outside hybrid/mmWave arms.
	Failovers         int
	Readmits          int
	SecondarySlots    int
	MinSecondaryDwell time.Duration
	GoodputSlotSum    float64
	// Metrics folds the per-trace observability snapshots — per trace
	// within a shard, then shard by shard, always in index order.
	Metrics obs.Snapshot
}

// addTrace folds one trace's result and metrics snapshot into the
// aggregate. Serial use only.
func (a *CorpusAggregate) addTrace(r ChaosTraceResult, snap obs.Snapshot) {
	if a.Traces == 0 {
		a.MinOnFraction, a.MaxOnFraction = r.OnFraction, r.OnFraction
	} else {
		if r.OnFraction < a.MinOnFraction {
			a.MinOnFraction = r.OnFraction
		}
		if r.OnFraction > a.MaxOnFraction {
			a.MaxOnFraction = r.OnFraction
		}
	}
	a.Traces++
	a.Slots += r.Slots
	a.OffSlots += r.OffSlots
	a.Outages += r.Outages
	a.BlockedSlots += r.BlockedSlots
	a.Handovers += r.Handovers
	a.Failovers += r.Failovers
	a.Readmits += r.Readmits
	a.SecondarySlots += r.SecondarySlots
	if r.MinSecondaryDwell > 0 && (a.MinSecondaryDwell == 0 || r.MinSecondaryDwell < a.MinSecondaryDwell) {
		a.MinSecondaryDwell = r.MinSecondaryDwell
	}
	a.GoodputSlotSum += r.MeanGoodputGbps * float64(r.Slots)
	a.Metrics = a.Metrics.Merge(snap)
}

// merge folds a completed shard's aggregate in. Serial use only, shards in
// index order.
func (a *CorpusAggregate) merge(o CorpusAggregate) {
	if o.Traces == 0 {
		return
	}
	if a.Traces == 0 {
		a.MinOnFraction, a.MaxOnFraction = o.MinOnFraction, o.MaxOnFraction
	} else {
		if o.MinOnFraction < a.MinOnFraction {
			a.MinOnFraction = o.MinOnFraction
		}
		if o.MaxOnFraction > a.MaxOnFraction {
			a.MaxOnFraction = o.MaxOnFraction
		}
	}
	a.Traces += o.Traces
	a.Slots += o.Slots
	a.OffSlots += o.OffSlots
	a.Outages += o.Outages
	a.BlockedSlots += o.BlockedSlots
	a.Handovers += o.Handovers
	a.Failovers += o.Failovers
	a.Readmits += o.Readmits
	a.SecondarySlots += o.SecondarySlots
	if o.MinSecondaryDwell > 0 && (a.MinSecondaryDwell == 0 || o.MinSecondaryDwell < a.MinSecondaryDwell) {
		a.MinSecondaryDwell = o.MinSecondaryDwell
	}
	a.GoodputSlotSum += o.GoodputSlotSum
	a.Metrics = a.Metrics.Merge(o.Metrics)
}

// finalize recomputes the derived mean. Idempotent.
func (a *CorpusAggregate) finalize() {
	a.MeanOnFraction = 0
	if a.Slots > 0 {
		a.MeanOnFraction = 1 - float64(a.OffSlots)/float64(a.Slots)
	}
}

// Checkpoint marks how far a corpus run got. Feed it back through
// CorpusOptions.Resume (same source, same options) to continue; the
// stitched result is bit-identical to an uninterrupted run.
type Checkpoint struct {
	// NextShard is the first shard index not yet executed.
	NextShard int
	// Done reports that every shard has run.
	Done bool
	// Agg is the aggregate over shards [0, NextShard).
	Agg CorpusAggregate
}

// CorpusRunResult is RunCorpus's outcome: the aggregate so far, the
// resume checkpoint, and (with KeepPerTrace) the per-trace results of the
// shards this call executed.
type CorpusRunResult struct {
	CorpusAggregate
	Checkpoint Checkpoint
	// PerTrace holds this call's per-trace results in trace order when
	// KeepPerTrace is set (clean runs leave the chaos fields zero).
	PerTrace []ChaosTraceResult
}

// RunCorpus streams a corpus through the sharded slot-model engine. It is
// the single replacement for SimulateCorpus, SimulateCorpusWorkers, and
// SimulateChaosCorpus: clean or chaos (Options.Chaos), any worker count
// with bit-identical results, memory-bounded unless KeepPerTrace, and
// resumable via the returned Checkpoint. On cancellation the partial
// result and its Checkpoint are returned alongside the context's error.
func RunCorpus(src CorpusSource, opts CorpusOptions) (CorpusRunResult, error) {
	if err := opts.Validate(); err != nil {
		return CorpusRunResult{}, err
	}
	cfg := corpusConfig{
		ctx:          opts.Context,
		params:       opts.Params,
		workers:      opts.Workers,
		shardSize:    opts.ShardSize,
		keepPerTrace: opts.KeepPerTrace,
		registry:     opts.Registry,
		resume:       opts.Resume,
		maxShards:    opts.MaxShards,
	}
	if opts.Chaos != nil {
		cfg.chaos = &chaosRun{
			cfg:    opts.Chaos.Config,
			seed:   opts.Chaos.Seed,
			params: opts.Chaos.Params,
			hybrid: opts.Chaos.Hybrid,
			mmOnly: opts.Chaos.MmWaveOnly,
		}
	}
	return runCorpus(src, cfg)
}

// corpusConfig is the fully resolved form of CorpusOptions. The deprecated
// wrappers construct it directly, bypassing Validate's defaulting, so
// their behavior is pinned to the historical one for every input.
type corpusConfig struct {
	ctx          context.Context
	params       AvailabilityParams
	chaos        *chaosRun
	workers      int
	shardSize    int
	keepPerTrace bool
	registry     *obs.Registry
	resume       Checkpoint
	maxShards    int
}

type chaosRun struct {
	cfg    fault.Config
	seed   int64
	params ChaosParams
	hybrid *HybridSlotParams
	mmOnly *MmWaveSlotParams
}

// shardOut is one shard's contribution, reduced serially by the caller.
type shardOut struct {
	agg      CorpusAggregate
	perTrace []ChaosTraceResult
}

func runCorpus(src CorpusSource, cfg corpusConfig) (CorpusRunResult, error) {
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := src.Len()
	shardSize := cfg.shardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	nShards := (n + shardSize - 1) / shardSize

	agg := cfg.resume.Agg
	start := cfg.resume.NextShard
	if start > nShards {
		start = nShards
	}
	end := nShards
	if cfg.maxShards > 0 && start+cfg.maxShards < end {
		end = start + cfg.maxShards
	}

	res := CorpusRunResult{}
	if cfg.keepPerTrace {
		res.PerTrace = make([]ChaosTraceResult, 0, (end-start)*shardSize)
	}

	// Batches bound the in-flight shard results; the batch width affects
	// only concurrency, never the reduction order, so it may derive from
	// the worker count without breaking the determinism contract.
	workers := cfg.workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	batch := workers * 4
	if batch < 16 {
		batch = 16
	}

	finish := func(next int, err error) (CorpusRunResult, error) {
		agg.finalize()
		res.CorpusAggregate = agg
		res.Checkpoint = Checkpoint{NextShard: next, Done: next == nShards, Agg: agg}
		if err == nil && res.Checkpoint.Done && cfg.registry != nil {
			cfg.registry.Merge(agg.Metrics)
		}
		return res, err
	}

	for lo := start; lo < end; lo += batch {
		hi := lo + batch
		if hi > end {
			hi = end
		}
		outs, err := parallel.MapCtx(ctx, hi-lo, cfg.workers, func(_ context.Context, k int) (shardOut, error) {
			shard := lo + k
			tLo := shard * shardSize
			tHi := tLo + shardSize
			if tHi > n {
				tHi = n
			}
			return runShard(src, cfg, tLo, tHi), nil
		})
		if err != nil {
			return finish(lo, err)
		}
		for _, so := range outs {
			agg.merge(so.agg)
			if cfg.keepPerTrace {
				res.PerTrace = append(res.PerTrace, so.perTrace...)
			}
		}
	}
	return finish(end, nil)
}

// runShard simulates traces [lo, hi) serially and folds them — results and
// per-trace metric snapshots alike — in trace order.
func runShard(src CorpusSource, cfg corpusConfig, lo, hi int) shardOut {
	var out shardOut
	if cfg.keepPerTrace {
		out.perTrace = make([]ChaosTraceResult, 0, hi-lo)
	}
	// One sample buffer per shard: each trace is fully consumed by its
	// simulate call below before the next AtInto overwrites the buffer.
	reuse, _ := src.(ReusableSource)
	var buf []trace.Sample
	for i := lo; i < hi; i++ {
		var tr trace.Trace
		if reuse != nil {
			tr = reuse.AtInto(i, buf)
		} else {
			tr = src.At(i)
		}
		reg := obs.NewRegistry()
		var r ChaosTraceResult
		if cfg.chaos != nil {
			sched := fault.Plan(cfg.chaos.cfg, cfg.chaos.seed+7919*int64(i), tr.Duration())
			switch {
			case cfg.chaos.hybrid != nil:
				r = SimulateTraceHybrid(tr, cfg.chaos.params, *cfg.chaos.hybrid, &sched, reg)
			case cfg.chaos.mmOnly != nil:
				r = SimulateTraceMmWave(tr, cfg.chaos.params, *cfg.chaos.mmOnly, &sched, reg)
			default:
				r = SimulateTraceChaos(tr, cfg.chaos.params, &sched, reg)
			}
		} else {
			// The clean path keeps the event-driven fast loop — the chaos
			// per-slot loop is never paid without a schedule.
			r = ChaosTraceResult{TraceResult: SimulateTraceObs(tr, cfg.params, reg)}
		}
		out.agg.addTrace(r, reg.Snapshot())
		if cfg.keepPerTrace {
			out.perTrace = append(out.perTrace, r)
		}
		if reuse != nil {
			buf = tr.Samples[:0]
		}
	}
	return out
}
