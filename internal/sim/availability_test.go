package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/trace"
)

// staticTrace returns a trace with no motion.
func staticTrace(n int) trace.Trace {
	tr := trace.Trace{ID: "static"}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{
			At:   time.Duration(i) * trace.SampleInterval,
			Pose: geom.PoseIdentity(),
		})
	}
	return tr
}

// spinningTrace rotates steadily at rate rad/s.
func spinningTrace(n int, rate float64) trace.Trace {
	tr := trace.Trace{ID: "spin"}
	for i := 0; i < n; i++ {
		at := time.Duration(i) * trace.SampleInterval
		tr.Samples = append(tr.Samples, trace.Sample{
			At:   at,
			Pose: geom.NewPose(geom.QuatFromAxisAngle(geom.V(0, 1, 0), rate*at.Seconds()), geom.Zero),
		})
	}
	return tr
}

func TestStaticTraceFullyOn(t *testing.T) {
	r := SimulateTrace(staticTrace(600), Paper25G())
	if r.OnFraction != 1 {
		t.Errorf("static trace on fraction = %v", r.OnFraction)
	}
	if r.OffSlots != 0 {
		t.Errorf("static trace off slots = %d", r.OffSlots)
	}
	if r.Slots < 5900 || r.Slots > 6000 {
		t.Errorf("slots = %d, want ≈5990 for 6 s at 1 ms", r.Slots)
	}
}

func TestSlowRotationStaysOn(t *testing.T) {
	// 10 deg/s: drift per 12 ms ≈ 2.1 mrad + 2.6 mrad residual < 8.73.
	r := SimulateTrace(spinningTrace(600, 10*math.Pi/180), Paper25G())
	if r.OnFraction < 0.999 {
		t.Errorf("10 deg/s on fraction = %v", r.OnFraction)
	}
}

func TestFastRotationDisconnects(t *testing.T) {
	// 60 deg/s: drift per 10 ms ≈ 10.5 mrad ≫ tolerance even before the
	// residual — the link must spend much of its time off.
	r := SimulateTrace(spinningTrace(600, 60*math.Pi/180), Paper25G())
	if r.OnFraction > 0.7 {
		t.Errorf("60 deg/s on fraction = %v — too optimistic", r.OnFraction)
	}
	if r.OffSlots == 0 {
		t.Error("no off slots at 60 deg/s")
	}
}

func TestThresholdRotationRegime(t *testing.T) {
	// The §5.3.1 pure-angular threshold (~25 deg/s) should emerge from
	// the §5.4 constants: below it mostly on, well above it mostly off.
	below := SimulateTrace(spinningTrace(600, 20*math.Pi/180), Paper25G())
	above := SimulateTrace(spinningTrace(600, 45*math.Pi/180), Paper25G())
	if below.OnFraction < 0.95 {
		t.Errorf("20 deg/s on fraction = %v, want ≈1", below.OnFraction)
	}
	if above.OnFraction > below.OnFraction {
		t.Error("faster rotation should not be more available")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	var empty trace.Trace
	r := SimulateTrace(empty, Paper25G())
	if r.Slots != 0 {
		t.Error("empty trace produced slots")
	}
	p := Paper25G()
	p.Slot = 0
	if r := SimulateTrace(staticTrace(10), p); r.Slots != 0 {
		t.Error("zero slot length produced slots")
	}
}

func TestFrameHistogram(t *testing.T) {
	r := SimulateTrace(spinningTrace(600, 30*math.Pi/180), Paper25G())
	var frames, off int
	for k, n := range r.FrameHistogram {
		frames += n
		off += k * n
	}
	// Histogram accounts for every slot's frame and every off slot.
	wantFrames := (r.Slots + 29) / 30
	if frames != wantFrames {
		t.Errorf("histogram frames = %d, want %d", frames, wantFrames)
	}
	if off != r.OffSlots {
		t.Errorf("histogram off slots = %d, want %d", off, r.OffSlots)
	}
}

func TestScatteredOffFraction(t *testing.T) {
	var r TraceResult
	r.OffSlots = 10
	r.FrameHistogram[2] = 2 // 4 off slots in light frames
	r.FrameHistogram[6] = 1 // 6 in a heavy frame
	got := r.ScatteredOffFraction(5)
	if math.Abs(got-0.4) > 1e-9 {
		t.Errorf("scattered fraction = %v, want 0.4", got)
	}
	// No off slots: zero.
	var z TraceResult
	if z.ScatteredOffFraction(10) != 0 {
		t.Error("zero-off trace scattered fraction nonzero")
	}
}

func TestFig16CorpusRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus simulation in -short mode")
	}
	traces := trace.Dataset(16, geom.V(0.35, 0.25, 1.0))
	c := SimulateCorpus(traces, Paper25G())
	t.Logf("%v", c)

	// Fig 16: operational ≈98.6 % of slots on average, per-trace range
	// ≈95 % to 99.98 %.
	if c.MeanOnFraction < 0.95 || c.MeanOnFraction > 0.9999 {
		t.Errorf("mean on fraction = %.4f, want ≈0.986", c.MeanOnFraction)
	}
	if c.MinOnFraction < 0.85 {
		t.Errorf("worst trace on fraction = %.4f — too pessimistic", c.MinOnFraction)
	}
	if c.MaxOnFraction < 0.99 {
		t.Errorf("best trace on fraction = %.4f, want ≈0.9998", c.MaxOnFraction)
	}

	// The CDF is monotone from ~0 to 1.
	xs, ys := c.DisconnectionCDF(50)
	if len(xs) != 50 {
		t.Fatalf("CDF has %d points", len(xs))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Error("CDF does not reach 1")
	}

	// User-experience metric: most off slots are scattered (>60 % in
	// frames with <10 off slots).
	var off, scattered float64
	for _, r := range c.PerTrace {
		off += float64(r.OffSlots)
		scattered += r.ScatteredOffFraction(10) * float64(r.OffSlots)
	}
	if off > 0 {
		frac := scattered / off
		t.Logf("scattered off-slot fraction: %.2f", frac)
		if frac < 0.3 {
			t.Errorf("scattered fraction = %.2f, paper observes >0.6", frac)
		}
	}
}

func TestSimulateCorpusWorkerDeterminism(t *testing.T) {
	// The §5.4 engine's contract: any worker count — including the
	// default pool — produces a CorpusResult bit-identical to the serial
	// loop. 40 shorter traces keep this fast enough to run everywhere.
	origin := geom.V(0.35, 0.25, 1.0)
	traces := make([]trace.Trace, 40)
	for i := range traces {
		traces[i] = trace.Generate(5, i, 10*time.Second, origin)
	}
	serial := SimulateCorpusWorkers(traces, Paper25G(), 1)
	for _, workers := range []int{4, 8} {
		got := SimulateCorpusWorkers(traces, Paper25G(), workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: CorpusResult differs from serial", workers)
		}
	}
	if got := SimulateCorpus(traces, Paper25G()); !reflect.DeepEqual(got, serial) {
		t.Error("default-worker SimulateCorpus differs from serial")
	}
}

func TestCorpusEmpty(t *testing.T) {
	c := SimulateCorpus(nil, Paper25G())
	if c.MeanOnFraction != 0 || len(c.PerTrace) != 0 {
		t.Error("empty corpus nonzero")
	}
	xs, ys := c.DisconnectionCDF(10)
	if xs != nil || ys != nil {
		t.Error("empty corpus CDF nonempty")
	}
}
