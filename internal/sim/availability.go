// Package sim implements the §5.4 trace-driven availability simulation:
// the paper's own methodology for evaluating the 25 Gbps prototype against
// 500 one-minute head-motion traces without wearing the (too bulky) rig.
//
// The model divides time into 1 ms slots. Whenever a head position report
// arrives (every ~10 ms in the dataset), the TP mechanism realigns within
// the realignment latency, leaving the link with the TP residual error;
// between reports the terminal drifts laterally and angularly at the rate
// implied by consecutive reports. A slot is disconnected when the total
// lateral or angular offset exceeds the link's movement tolerance.
package sim

import (
	"fmt"
	"math"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/obs"
	"cyclops/internal/trace"
)

// AvailabilityParams are the §5.4 simulation constants.
type AvailabilityParams struct {
	// Slot is the simulation timeslot (1 ms in the paper).
	Slot time.Duration
	// RealignLatency is the TP latency after each report (1–2 ms; the
	// paper's simulation uses the upper end conservatively).
	RealignLatency time.Duration
	// LateralTolerance and AngularTolerance are the link's movement
	// tolerances (6 mm / 8.73 mrad for the 25G design).
	LateralTolerance float64 // meters
	AngularTolerance float64 // radians
	// TPLateralError and TPAngularError are the residual misalignments
	// right after a realignment (the combined model errors of Table 2:
	// 4.54 mm lateral, 4.54 mm over the 1.75 m link ≈ 2.6 mrad angular).
	TPLateralError float64 // meters
	TPAngularError float64 // radians
}

// Paper25G returns the §5.4 constants exactly as the paper states them:
// 8.73 mrad / 6 mm tolerances, TP error 4.54 mm and 4.54/1750 rad, 1–2 ms
// realignment (we use 2 ms).
func Paper25G() AvailabilityParams {
	return AvailabilityParams{
		Slot:             time.Millisecond,
		RealignLatency:   2 * time.Millisecond,
		LateralTolerance: 6e-3,
		AngularTolerance: 8.73e-3,
		TPLateralError:   4.54e-3,
		TPAngularError:   4.54e-3 / 1.75,
	}
}

// TraceResult is the per-trace outcome.
type TraceResult struct {
	ID         string
	Slots      int
	OffSlots   int
	OnFraction float64
	// FrameHistogram buckets 30-slot frames by their off-slot count:
	// FrameHistogram[k] frames had exactly k off slots (k in 0..30).
	FrameHistogram [31]int
}

// ScatteredOffFraction returns the fraction of off-slots that fall in
// frames with fewer than threshold off-slots — the paper's user-experience
// metric (">60% of off-timeslots occur in frames with less than 10").
func (r TraceResult) ScatteredOffFraction(threshold int) float64 {
	if r.OffSlots == 0 {
		return 0
	}
	var scattered int
	for k := 0; k < threshold && k < len(r.FrameHistogram); k++ {
		scattered += k * r.FrameHistogram[k]
	}
	return float64(scattered) / float64(r.OffSlots)
}

// simBlock is the number of reports whose drift steps SimulateTrace
// precomputes per batch (4 KB of stack). See the block comment at the
// fill site for why batching pays.
const simBlock = 256

// SimulateTrace runs the §5.4 slot model over one trace.
func SimulateTrace(tr trace.Trace, p AvailabilityParams) TraceResult {
	res := TraceResult{ID: tr.ID}
	if len(tr.Samples) < 2 || p.Slot <= 0 {
		return res
	}

	// Current drift state: offsets at the start of the current slot.
	lat := p.TPLateralError
	ang := p.TPAngularError

	// Drift rates between the last pair of reports (per second), and the
	// per-slot increments they imply. The increments are computed once
	// when the rates change — rate*slotSec is the identical product the
	// per-slot multiply used to produce, so the accumulated offsets stay
	// bit-identical while the 1 ms loop sheds two multiplies (and the
	// Duration.Seconds conversion, ~5 % of the corpus run) per slot.
	var latStep, angStep float64
	slotSec := p.Slot.Seconds()

	samples := tr.Samples
	nextReportIdx := 1
	var realignAt time.Duration = -1

	end := tr.Duration()
	frameOff := 0
	slotInFrame := 0
	slots, offSlots := 0, 0
	tolLat, tolAng := p.LateralTolerance, p.AngularTolerance

	// The per-report drift steps are pure functions of the sample pairs,
	// independent across reports, so they are precomputed in blocks of
	// simBlock reports ahead of the event loop. Batching keeps the
	// normalize→distance→angle chains (each a long serial float
	// dependency ending in an Acos polynomial) adjacent, letting the
	// out-of-order core overlap consecutive reports instead of paying
	// each chain's full latency between slot segments. Every step value
	// is computed by the same operations in the same order as the inline
	// form, so the accumulated offsets are bit-identical
	// (TestSimulateTraceMatchesReference).
	//
	// prevN is the normalized orientation of the previous report, reused
	// as the a side of the next pair (each report is the b of one pair
	// and the a of the next): one normalization per report instead of
	// two. lastGap/lastDt memoize the report-spacing conversion — in the
	// corpus the gap is a constant 10 ms, so Duration.Seconds (two
	// integer divides) runs once instead of once per report. Both are
	// pure, so the cached values are exactly the recomputed ones.
	var latStepC, angStepC [simBlock]float64
	stepLo, stepHi := 1, 1 // report index range cached in latStepC/angStepC
	prevN := samples[0].Pose.Rot.Normalize()
	prevNIdx := 0
	lastGap := time.Duration(math.MinInt64)
	var lastDt float64
	// Steps persist across dt ≤ 0 reports (a malformed pair keeps the
	// previous rates), so the fill carries the last computed values.
	var carryLat, carryAng float64
	fillSteps := func(lo int) {
		hi := lo + simBlock
		if hi > len(samples) {
			hi = len(samples)
		}
		for j := lo; j < hi; j++ {
			a, b := &samples[j-1], &samples[j]
			if gap := b.At - a.At; gap != lastGap {
				lastGap, lastDt = gap, gap.Seconds()
			}
			if dt := lastDt; dt > 0 {
				if prevNIdx != j-1 {
					prevN = a.Pose.Rot.Normalize()
				}
				bN := b.Pose.Rot.Normalize()
				dLin := a.Pose.Trans.Dist(b.Pose.Trans)
				dAng := geom.AngleBetweenNormalized(prevN, bN)
				prevN, prevNIdx = bN, j
				latRate := dLin / dt
				angRate := dAng / dt
				carryLat = latRate * slotSec
				carryAng = angRate * slotSec
			}
			latStepC[j-lo] = carryLat
			angStepC[j-lo] = carryAng
		}
		stepLo, stepHi = lo, hi
	}

	// The loop is event-driven: all state changes (rate updates,
	// realignments) happen at report arrivals or realignment
	// completions, so between events the 1 ms slots run in a tight inner
	// loop with nothing but the connectivity check and the drift adds.
	// Slot-for-slot this visits the same states in the same order as the
	// straightforward check-every-slot loop.
	for at := time.Duration(0); at < end; {
		// Report arrival: schedule a realignment and update drift
		// rates from the new report pair. Realignments pipeline: one
		// that was due to complete before a newer report arrives takes
		// effect first rather than being silently superseded (a
		// tracker faster than the realign latency must not starve the
		// mirrors).
		for nextReportIdx < len(samples) && samples[nextReportIdx].At <= at {
			b := &samples[nextReportIdx]
			if realignAt >= 0 && b.At >= realignAt {
				lat = p.TPLateralError
				ang = p.TPAngularError
				realignAt = -1
			}
			if nextReportIdx >= stepHi {
				fillSteps(nextReportIdx)
			}
			latStep = latStepC[nextReportIdx-stepLo]
			angStep = angStepC[nextReportIdx-stepLo]
			realignAt = b.At + p.RealignLatency
			nextReportIdx++
		}

		// Realignment completes: residual TP error only.
		if realignAt >= 0 && at >= realignAt {
			lat = p.TPLateralError
			ang = p.TPAngularError
			realignAt = -1
		}

		// Run slots up to (but not including) the next event. After the
		// event handling above, the next report strictly follows at and
		// any pending realignment completes strictly after at, so the
		// inner loop always advances.
		limit := end
		if nextReportIdx < len(samples) && samples[nextReportIdx].At < limit {
			limit = samples[nextReportIdx].At
		}
		if realignAt >= 0 && realignAt < limit {
			limit = realignAt
		}
		// delta and at are non-negative, so delta − k·Slot is exactly
		// delta mod Slot: the multiply-compare spells the remainder
		// check without a second hardware divide on the segment path.
		delta := limit - at
		if k := int(delta / p.Slot); k > 0 {
			if time.Duration(k)*p.Slot != delta {
				k++
			}
			// Fully-connected fast path. The drift steps are
			// non-negative (rates are distances over positive dt), so
			// the sequentially-accumulated offsets are non-decreasing
			// within the segment: adding y ≥ 0 under round-to-nearest
			// never moves a float below itself. The last slot's checked
			// values (k−1 accumulation steps from here) therefore bound
			// every check in the segment — if they are inside tolerance,
			// no slot is off, and the per-slot bookkeeping collapses to
			// O(1). The accumulation itself still runs step by step, so
			// lat/ang leave the segment bit-identical to the per-slot
			// loop.
			lat0, ang0 := lat, ang
			for i := 1; i < k; i++ {
				lat += latStep
				ang += angStep
			}
			if lat <= tolLat && ang <= tolAng {
				lat += latStep
				ang += angStep
				slots += k
				if total := slotInFrame + k; total >= 30 {
					// The first completed frame carries the off count
					// accumulated before this segment; the rest are
					// all-on frames.
					res.FrameHistogram[frameOff]++
					res.FrameHistogram[0] += total/30 - 1
					slotInFrame = total % 30
					frameOff = 0
				} else {
					slotInFrame = total
				}
				at += time.Duration(k) * p.Slot
			} else {
				// At least one slot trips a tolerance: replay the
				// segment per slot (the adds are pure, so the replay
				// revisits the exact same values).
				lat, ang = lat0, ang0
				for ; at < limit; at += p.Slot {
					// Connectivity check for this slot.
					slots++
					if lat > tolLat || ang > tolAng {
						offSlots++
						frameOff++
					}
					slotInFrame++
					if slotInFrame == 30 {
						res.FrameHistogram[frameOff]++
						slotInFrame, frameOff = 0, 0
					}

					// Drift across the slot.
					lat += latStep
					ang += angStep
				}
			}
		}
	}
	if slotInFrame > 0 {
		res.FrameHistogram[frameOff]++
	}
	res.Slots = slots
	res.OffSlots = offSlots
	if res.Slots > 0 {
		res.OnFraction = 1 - float64(res.OffSlots)/float64(res.Slots)
	}
	return res
}

// SimulateTraceObs is SimulateTrace with observability: the per-trace
// aggregates (slots, off slots, off-fraction distribution) are recorded
// into reg. Recording happens once per trace — never per slot — so the
// hot loop's cost is untouched.
func SimulateTraceObs(tr trace.Trace, p AvailabilityParams, reg *obs.Registry) TraceResult {
	res := SimulateTrace(tr, p)
	recordTrace(reg, res.Slots, res.OffSlots, res.OnFraction)
	return res
}

// recordTrace is the single registering call site for the per-trace sim
// metrics — both the clean (SimulateTraceObs) and chaos
// (SimulateTraceChaos) paths feed the same series, so a corpus mixing the
// two still merges into one exposition.
func recordTrace(reg *obs.Registry, slots, offSlots int, onFraction float64) {
	if reg == nil {
		return
	}
	reg.Counter("cyclops_sim_traces_total",
		"Head-motion traces run through the 5.4 slot model.").Inc()
	reg.Counter("cyclops_sim_slots_total",
		"1 ms availability slots simulated.").Add(float64(slots))
	reg.Counter("cyclops_sim_off_slots_total",
		"Slots with the link disconnected.").Add(float64(offSlots))
	reg.Histogram("cyclops_sim_trace_off_fraction",
		"Per-trace disconnected fraction (the Fig 16 CDF's underlying distribution).",
		[]float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}).
		Observe(1 - onFraction)
}

// CorpusResult aggregates a full dataset run — the data behind Fig 16.
type CorpusResult struct {
	PerTrace []TraceResult
	// MeanOnFraction is the operational fraction across all traces'
	// slots (the paper's 98.6 %).
	MeanOnFraction float64
	// MinOnFraction / MaxOnFraction bound the per-trace spread (95 % to
	// 99.98 % in the paper).
	MinOnFraction, MaxOnFraction float64
	// Metrics is the corpus's observability snapshot: every trace
	// simulation records into its own per-job registry, and the
	// snapshots reduce serially in trace order — byte-identical for any
	// worker count, like every other field here.
	Metrics obs.Snapshot
}

func (c CorpusResult) String() string {
	return fmt.Sprintf("corpus: mean on %.2f%%, range %.2f%%-%.2f%% over %d traces",
		c.MeanOnFraction*100, c.MinOnFraction*100, c.MaxOnFraction*100, len(c.PerTrace))
}

// SimulateCorpus runs the slot model over every trace on the default
// worker pool. The result is bit-identical to a serial run.
//
// Deprecated: use RunCorpus, the streaming engine behind this wrapper.
func SimulateCorpus(traces []trace.Trace, p AvailabilityParams) CorpusResult {
	return SimulateCorpusWorkers(traces, p, 0)
}

// SimulateCorpusWorkers is SimulateCorpus with an explicit worker count
// (≤ 0 means the parallel package default, 1 forces the serial path).
// Every worker count produces the same CorpusResult bit for bit.
//
// Deprecated: use RunCorpus with CorpusOptions.Workers. This wrapper pins
// the historical behavior bit for bit: single-trace shards reproduce the
// old per-trace metrics fold exactly (see
// TestSimulateCorpusWrapperBitIdentical).
func SimulateCorpusWorkers(traces []trace.Trace, p AvailabilityParams, workers int) CorpusResult {
	run, err := runCorpus(TraceSlice(traces), corpusConfig{
		params:       p,
		workers:      workers,
		shardSize:    1,
		keepPerTrace: true,
		registry:     obs.Default(),
	})
	if err != nil {
		// Unreachable: no context, no fallible jobs — kept as a guard so
		// an engine regression cannot silently return a zero corpus.
		//cyclops:panic-ok unreachable: a context-free clean corpus run has no error source
		panic(err)
	}
	c := CorpusResult{
		PerTrace:       make([]TraceResult, len(run.PerTrace)),
		MeanOnFraction: run.MeanOnFraction,
		MinOnFraction:  run.MinOnFraction,
		MaxOnFraction:  run.MaxOnFraction,
		Metrics:        run.Metrics,
	}
	for i, r := range run.PerTrace {
		c.PerTrace[i] = r.TraceResult
	}
	return c
}

// DisconnectionCDF returns the cumulative distribution of per-trace
// disconnected percentage: point (x[i], y[i]) means a fraction y[i] of
// traces were disconnected for at most x[i] percent of their slots — the
// Fig 16 curve.
func (c CorpusResult) DisconnectionCDF(points int) (xs, ys []float64) {
	if points < 2 || len(c.PerTrace) == 0 {
		return nil, nil
	}
	var maxOff float64
	offs := make([]float64, len(c.PerTrace))
	for i, r := range c.PerTrace {
		offs[i] = (1 - r.OnFraction) * 100
		if offs[i] > maxOff {
			maxOff = offs[i]
		}
	}
	for k := 0; k < points; k++ {
		x := maxOff * float64(k) / float64(points-1)
		count := 0
		for _, o := range offs {
			if o <= x {
				count++
			}
		}
		xs = append(xs, x)
		ys = append(ys, float64(count)/float64(len(offs)))
	}
	return xs, ys
}
