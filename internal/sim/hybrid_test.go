package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/obs"
	"cyclops/internal/policy"
	"cyclops/internal/trace"
)

// hazeSched is a single deep haze fade: long enough to drive a failover,
// transparent to the mmWave side.
func hazeSched(start, end time.Duration) *fault.Schedule {
	return &fault.Schedule{Seed: 1, Windows: []fault.Window{{
		Kind: fault.HazeFade, Start: start, End: end,
		DepthDB: 30, Ramp: 500 * time.Millisecond, RampDown: time.Second,
	}}}
}

// With no faults the hybrid arm never leaves the primary and its
// availability fields match the plain chaos model slot for slot.
func TestHybridEmptyScheduleStaysPrimary(t *testing.T) {
	origin := geom.V(0.35, 0.25, 1.0)
	for i := 0; i < 4; i++ {
		tr := trace.Generate(5, i, 10*time.Second, origin)
		base := SimulateTraceChaos(tr, PaperChaos25G(), nil, nil)
		got := SimulateTraceHybrid(tr, PaperChaos25G(), HybridSlotParams{}, nil, nil)
		if got.Failovers != 0 || got.Readmits != 0 || got.SecondarySlots != 0 {
			t.Fatalf("trace %d: clean hybrid run switched media: %+v", i, got)
		}
		if got.OffSlots != base.OffSlots || got.OnFraction != base.OnFraction ||
			got.FrameHistogram != base.FrameHistogram {
			t.Fatalf("trace %d: clean hybrid availability differs from chaos model", i)
		}
		if base.OffSlots == 0 && got.MeanGoodputGbps != 23.5 {
			t.Fatalf("trace %d: fully-on goodput %v, want 23.5", i, got.MeanGoodputGbps)
		}
	}
}

// A deep haze fade kills the FSO side but not the mmWave side: the hybrid
// arm must fail over, carry on the secondary, re-admit after the fade, and
// deliver strictly better availability than FSO alone — with no secondary
// dwell shorter than the clear window.
func TestHybridHazeBeatsFSO(t *testing.T) {
	tr := trace.Generate(5, 3, 20*time.Second, geom.V(0.35, 0.25, 1.0))
	sched := hazeSched(4*time.Second, 12*time.Second)
	hp := HybridSlotParams{Policy: policy.Options{ClearAfter: 500 * time.Millisecond}}

	fso := SimulateTraceChaos(tr, PaperChaos25G(), sched, nil)
	hy := SimulateTraceHybrid(tr, PaperChaos25G(), hp, sched, nil)

	if fso.OnFraction >= 0.95 {
		t.Fatalf("haze fade barely hurt FSO (%v on) — scenario too weak", fso.OnFraction)
	}
	if hy.Failovers < 1 || hy.Readmits < 1 {
		t.Fatalf("failovers=%d readmits=%d, want ≥1 each", hy.Failovers, hy.Readmits)
	}
	if hy.OnFraction <= fso.OnFraction {
		t.Fatalf("hybrid on %v did not beat FSO-only %v", hy.OnFraction, fso.OnFraction)
	}
	if hy.MinSecondaryDwell < 500*time.Millisecond {
		t.Fatalf("min secondary dwell %v below clear window — policy flapped", hy.MinSecondaryDwell)
	}
	if hy.SecondarySlots == 0 {
		t.Fatal("no secondary slots despite a failover")
	}
	// The FSO-side episode bookkeeping is preserved for comparison.
	if hy.Outages != fso.Outages || hy.BlockedSlots != fso.BlockedSlots {
		t.Errorf("hybrid rewrote FSO episode bookkeeping: %d/%d vs %d/%d",
			hy.Outages, hy.BlockedSlots, fso.Outages, fso.BlockedSlots)
	}
}

// The mmWave-only arm ignores haze entirely and is severed by physical
// occlusion for the window plus its MAC recovery tail.
func TestMmWaveOnlyArm(t *testing.T) {
	tr := trace.Generate(5, 7, 10*time.Second, geom.V(0.35, 0.25, 1.0))
	p := PaperChaos25G()

	clean := SimulateTraceMmWave(tr, p, MmWaveSlotParams{}, nil, nil)
	if clean.OffSlots != 0 || clean.OnFraction != 1 || clean.Outages != 0 {
		t.Fatalf("clean mmWave arm not fully on: %+v", clean)
	}
	if math.Abs(clean.MeanGoodputGbps-4.6) > 1e-9 {
		t.Fatalf("clean mmWave goodput %v, want 4.6", clean.MeanGoodputGbps)
	}

	haze := SimulateTraceMmWave(tr, p, MmWaveSlotParams{}, hazeSched(2*time.Second, 8*time.Second), nil)
	if haze.OffSlots != 0 || haze.Outages != 0 {
		t.Fatalf("haze blocked the mmWave arm: %+v", haze)
	}

	occl := &fault.Schedule{Windows: []fault.Window{{
		Kind: fault.Occlusion, Start: 2 * time.Second, End: 2*time.Second + 300*time.Millisecond,
		DepthDB: 30, Ramp: 10 * time.Millisecond,
	}}}
	reg := obs.NewRegistry()
	blocked := SimulateTraceMmWave(tr, p, MmWaveSlotParams{}, occl, reg)
	if blocked.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", blocked.Outages)
	}
	// ≈300 ms window + 30 ms MAC recovery at 1 ms slots ⇒ ≈330 off slots,
	// far below an FSO re-lock tail.
	if blocked.OffSlots < 250 || blocked.OffSlots > 400 {
		t.Errorf("OffSlots = %d, want ≈330", blocked.OffSlots)
	}
	if blocked.OffSlots != blocked.BlockedSlots {
		t.Errorf("OffSlots %d != BlockedSlots %d — mmWave never misaligns", blocked.OffSlots, blocked.BlockedSlots)
	}
}

// The hybrid and mmWave-only corpus arms are bit-identical at any worker
// count, and the aggregate folds (switch counts, secondary time, goodput
// sums) match a serial re-fold of the per-trace results.
func TestHybridCorpusWorkerDeterminism(t *testing.T) {
	src := trace.Source{Seed: 5, N: 48, Length: 15 * time.Second, Origin: geom.V(0.35, 0.25, 1.0)}
	for _, arm := range []struct {
		name  string
		chaos CorpusChaos
	}{
		{"hybrid", CorpusChaos{Config: fault.DefaultHazeConfig(), Seed: 11,
			Hybrid: &HybridSlotParams{}}},
		{"mmwave", CorpusChaos{Config: fault.DefaultConfig(), Seed: 11,
			MmWaveOnly: &MmWaveSlotParams{}}},
	} {
		t.Run(arm.name, func(t *testing.T) {
			run := func(workers int) CorpusRunResult {
				chaos := arm.chaos
				res, err := RunCorpus(src, CorpusOptions{
					Chaos: &chaos, Workers: workers, ShardSize: 8,
					KeepPerTrace: true, Registry: obs.NewRegistry(),
				})
				if err != nil {
					t.Fatalf("RunCorpus(workers=%d): %v", workers, err)
				}
				return res
			}
			base := run(1)
			for _, w := range []int{2, 4} {
				got := run(w)
				if !reflect.DeepEqual(got.CorpusAggregate, base.CorpusAggregate) {
					t.Fatalf("workers=%d aggregate differs from serial", w)
				}
				if !reflect.DeepEqual(got.PerTrace, base.PerTrace) {
					t.Fatalf("workers=%d per-trace results differ from serial", w)
				}
			}
			var failovers, readmits, secondary int
			var goodput float64
			for _, r := range base.PerTrace {
				failovers += r.Failovers
				readmits += r.Readmits
				secondary += r.SecondarySlots
				goodput += r.MeanGoodputGbps * float64(r.Slots)
			}
			a := base.CorpusAggregate
			if a.Failovers != failovers || a.Readmits != readmits || a.SecondarySlots != secondary {
				t.Errorf("aggregate switch counts %d/%d/%d, re-fold %d/%d/%d",
					a.Failovers, a.Readmits, a.SecondarySlots, failovers, readmits, secondary)
			}
			// The engine folds per shard then merges, so the sum's float
			// association differs from a flat re-fold — compare within ulps.
			if math.Abs(a.GoodputSlotSum-goodput) > 1e-6*math.Abs(goodput) {
				t.Errorf("GoodputSlotSum %v, re-fold %v", a.GoodputSlotSum, goodput)
			}
			if arm.name == "hybrid" && a.Failovers == 0 {
				t.Error("haze corpus drove no failovers — arm not exercised")
			}
		})
	}
}
