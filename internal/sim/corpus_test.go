package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/obs"
	"cyclops/internal/parallel"
	"cyclops/internal/trace"
)

// testSource is a small streaming corpus for the engine tests.
func testSource(n int) trace.Source {
	return trace.Source{Seed: 11, N: n, Length: 10 * time.Second, Origin: geom.V(0.35, 0.25, 1.0)}
}

// testChaos is a hostile-enough chaos spec to produce outages and (with a
// second TX) handovers on the short test corpus.
func testChaos() *CorpusChaos {
	p := PaperChaos25G()
	p.TXCount = 2
	p.HandoverDark = 2 * time.Millisecond
	p.StandbyBlockProb = 0.3
	return &CorpusChaos{
		Config: fault.Config{
			Occlusion:        fault.ClassConfig{PerMin: 6, MinDur: 300 * time.Millisecond, MaxDur: 500 * time.Millisecond},
			OcclusionDepthDB: [2]float64{25, 45},
			OcclusionRamp:    10 * time.Millisecond,
		},
		Seed:   21,
		Params: p,
	}
}

// runOpts builds engine options that stay out of the process registry.
func runOpts(workers int, chaos *CorpusChaos) CorpusOptions {
	return CorpusOptions{
		Workers:      workers,
		ShardSize:    8,
		KeepPerTrace: true,
		Chaos:        chaos,
		Registry:     obs.NewRegistry(),
	}
}

func TestRunCorpusWorkerDeterminism(t *testing.T) {
	src := testSource(40)
	for _, chaos := range []*CorpusChaos{nil, testChaos()} {
		serial, err := RunCorpus(src, runOpts(1, chaos))
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		if serial.Traces != 40 || serial.Slots == 0 {
			t.Fatalf("serial aggregate empty: %+v", serial.CorpusAggregate)
		}
		if chaos != nil && (serial.Outages == 0 || serial.Handovers == 0) {
			t.Fatalf("chaos run fired %d outages / %d handovers — test is vacuous",
				serial.Outages, serial.Handovers)
		}
		for _, workers := range []int{2, 4} {
			got, err := RunCorpus(src, runOpts(workers, chaos))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("workers=%d chaos=%v: CorpusRunResult differs from serial", workers, chaos != nil)
			}
			if got.Metrics.Exposition() != serial.Metrics.Exposition() {
				t.Errorf("workers=%d chaos=%v: metrics exposition differs from serial", workers, chaos != nil)
			}
		}
	}
}

// TestRunCorpusResume proves a run interrupted at every possible shard
// boundary and resumed stitches back to the uninterrupted result — the
// aggregate, the checkpoint, and the concatenated per-trace slices alike.
func TestRunCorpusResume(t *testing.T) {
	src := testSource(30) // 4 shards of 8
	full, err := RunCorpus(src, runOpts(2, testChaos()))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if !full.Checkpoint.Done {
		t.Fatal("full run not Done")
	}
	for _, window := range []int{1, 2, 3} {
		var per []ChaosTraceResult
		ck := Checkpoint{}
		for !ck.Done {
			opts := runOpts(2, testChaos())
			opts.Resume = ck
			opts.MaxShards = window
			part, err := RunCorpus(src, opts)
			if err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
			per = append(per, part.PerTrace...)
			ck = part.Checkpoint
		}
		if !reflect.DeepEqual(ck, full.Checkpoint) {
			t.Errorf("window=%d: stitched checkpoint differs from uninterrupted run", window)
		}
		if !reflect.DeepEqual(per, full.PerTrace) {
			t.Errorf("window=%d: stitched per-trace results differ from uninterrupted run", window)
		}
		if ck.Agg.Metrics.Exposition() != full.Metrics.Exposition() {
			t.Errorf("window=%d: stitched metrics exposition differs", window)
		}
	}
}

// TestRunCorpusCancel pins the cancellation contract: a canceled run
// returns ctx's error with a usable checkpoint, and resuming from it
// reproduces the uninterrupted result.
func TestRunCorpusCancel(t *testing.T) {
	src := testSource(30)
	full, err := RunCorpus(src, runOpts(2, nil))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := runOpts(2, nil)
	opts.Context = ctx
	part, err := RunCorpus(src, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	if part.Checkpoint.Done {
		t.Fatal("canceled run claims Done")
	}
	resume := runOpts(2, nil)
	resume.Resume = part.Checkpoint
	rest, err := RunCorpus(src, resume)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(rest.Checkpoint, full.Checkpoint) {
		t.Error("resumed-after-cancel checkpoint differs from uninterrupted run")
	}
}

func TestCorpusOptionsValidate(t *testing.T) {
	var o CorpusOptions
	if err := o.Validate(); err != nil {
		t.Fatalf("zero options: %v", err)
	}
	if o.Params != Paper25G() || o.ShardSize != DefaultShardSize || o.Context == nil || o.Registry != obs.Default() {
		t.Errorf("zero-options defaults wrong: %+v", o)
	}
	chaos := CorpusOptions{Chaos: &CorpusChaos{}}
	if err := chaos.Validate(); err != nil {
		t.Fatalf("zero chaos: %v", err)
	}
	if chaos.Chaos.Params.BlockAttenDB != PaperChaos25G().BlockAttenDB {
		t.Errorf("zero chaos params not defaulted: %+v", chaos.Chaos.Params)
	}
	inherit := CorpusOptions{Chaos: &CorpusChaos{Params: ChaosParams{BlockAttenDB: 7}}}
	if err := inherit.Validate(); err != nil {
		t.Fatalf("inherit: %v", err)
	}
	if inherit.Chaos.Params.AvailabilityParams != Paper25G() || inherit.Chaos.Params.BlockAttenDB != 7 {
		t.Errorf("chaos availability params not inherited: %+v", inherit.Chaos.Params)
	}
	for _, bad := range []CorpusOptions{
		{ShardSize: -1},
		{MaxShards: -1},
		{Resume: Checkpoint{NextShard: -1}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

// TestSimulateCorpusWrapperBitIdentical pins the deprecated wrapper to the
// pre-engine algorithm, re-implemented inline: MapObs fan-out, MergeAll
// per-trace metrics fold, serial min/max/mean reduction. Every field —
// including the float histogram sums in the metrics snapshot — must match
// bit for bit, because single-trace shards reproduce the old fold's
// association exactly.
func TestSimulateCorpusWrapperBitIdentical(t *testing.T) {
	src := testSource(40)
	traces := Materialize(src, 0)
	p := Paper25G()

	var old CorpusResult
	old.PerTrace, old.Metrics = parallel.MapObs(len(traces), 2, func(i int, reg *obs.Registry) TraceResult {
		return SimulateTraceObs(traces[i], p, reg)
	})
	var slots, off int
	for i, r := range old.PerTrace {
		slots += r.Slots
		off += r.OffSlots
		if i == 0 {
			old.MinOnFraction, old.MaxOnFraction = r.OnFraction, r.OnFraction
		} else {
			if r.OnFraction < old.MinOnFraction {
				old.MinOnFraction = r.OnFraction
			}
			if r.OnFraction > old.MaxOnFraction {
				old.MaxOnFraction = r.OnFraction
			}
		}
	}
	if slots > 0 {
		old.MeanOnFraction = 1 - float64(off)/float64(slots)
	}

	got := SimulateCorpusWorkers(traces, p, 2)
	if !reflect.DeepEqual(got, old) {
		t.Error("SimulateCorpusWorkers differs from the historical algorithm")
	}
	if got.Metrics.Exposition() != old.Metrics.Exposition() {
		t.Error("wrapper metrics exposition differs from the historical fold")
	}
}

// TestSimulateChaosCorpusWrapperBitIdentical is the chaos twin: the
// wrapper must reproduce the historical MapCtx + MergeAll pipeline bit for
// bit, per-episode rescue draws included.
func TestSimulateChaosCorpusWrapperBitIdentical(t *testing.T) {
	src := testSource(40)
	traces := Materialize(src, 0)
	spec := testChaos()

	type job struct {
		res  ChaosTraceResult
		snap obs.Snapshot
	}
	var old ChaosCorpusResult
	outs, err := parallel.MapCtx(context.Background(), len(traces), 2, func(_ context.Context, i int) (job, error) {
		reg := obs.NewRegistry()
		sched := fault.Plan(spec.Config, spec.Seed+7919*int64(i), traces[i].Duration())
		return job{res: SimulateTraceChaos(traces[i], spec.Params, &sched, reg), snap: reg.Snapshot()}, nil
	})
	if err != nil {
		t.Fatalf("historical pipeline: %v", err)
	}
	old.PerTrace = make([]ChaosTraceResult, len(outs))
	snaps := make([]obs.Snapshot, len(outs))
	for i, o := range outs {
		old.PerTrace[i] = o.res
		snaps[i] = o.snap
	}
	old.Metrics = obs.MergeAll(snaps)
	var slots, off int
	for i, r := range old.PerTrace {
		slots += r.Slots
		off += r.OffSlots
		old.Outages += r.Outages
		old.BlockedSlots += r.BlockedSlots
		old.Handovers += r.Handovers
		if i == 0 {
			old.MinOnFraction, old.MaxOnFraction = r.OnFraction, r.OnFraction
		} else {
			if r.OnFraction < old.MinOnFraction {
				old.MinOnFraction = r.OnFraction
			}
			if r.OnFraction > old.MaxOnFraction {
				old.MaxOnFraction = r.OnFraction
			}
		}
	}
	if slots > 0 {
		old.MeanOnFraction = 1 - float64(off)/float64(slots)
	}
	if old.Outages == 0 || old.Handovers == 0 {
		t.Fatalf("historical pipeline fired %d outages / %d handovers — test is vacuous",
			old.Outages, old.Handovers)
	}

	got, err := SimulateChaosCorpus(context.Background(), traces, spec.Params, spec.Config, spec.Seed, 2)
	if err != nil {
		t.Fatalf("wrapper: %v", err)
	}
	if !reflect.DeepEqual(got, old) {
		t.Error("SimulateChaosCorpus differs from the historical algorithm")
	}
	if got.Metrics.Exposition() != old.Metrics.Exposition() {
		t.Error("wrapper metrics exposition differs from the historical fold")
	}
}

// TestSimulateTraceChaosSlotsSink checks the per-slot sink fires once per
// slot, in order, with verdicts that total exactly OffSlots.
func TestSimulateTraceChaosSlotsSink(t *testing.T) {
	tr := testSource(1).At(0)
	spec := testChaos()
	sched := fault.Plan(spec.Config, spec.Seed, tr.Duration())
	var calls, offs, lastSlot int
	lastSlot = -1
	res := SimulateTraceChaosSlots(tr, spec.Params, &sched, nil, func(slot int, off bool) {
		if slot != lastSlot+1 {
			t.Fatalf("sink slot %d after %d — not in order", slot, lastSlot)
		}
		lastSlot = slot
		calls++
		if off {
			offs++
		}
	})
	if calls != res.Slots {
		t.Errorf("sink fired %d times over %d slots", calls, res.Slots)
	}
	if offs != res.OffSlots {
		t.Errorf("sink saw %d off slots, result has %d", offs, res.OffSlots)
	}
	plain := SimulateTraceChaos(tr, spec.Params, &sched, nil)
	if !reflect.DeepEqual(plain, res) {
		t.Error("sink changed the simulation result")
	}
}

// TestRunCorpusMemoryBounded is the streaming claim, measured: a 10×
// longer corpus run in aggregate-only mode must stay within a fixed live
// heap envelope of the small one (the engine holds O(workers·shard)
// traces, never the corpus). The run steps through Resume/MaxShards
// windows so retained state is sampled between batches, after a forced GC.
func TestRunCorpusMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming-heap measurement in -short mode")
	}
	peak := func(n int) uint64 {
		src := trace.Source{Seed: 11, N: n, Length: 2 * time.Second, Origin: geom.V(0.35, 0.25, 1.0)}
		var peak uint64
		ck := Checkpoint{}
		for !ck.Done {
			res, err := RunCorpus(src, CorpusOptions{
				Workers:   2,
				ShardSize: 16,
				Registry:  obs.NewRegistry(),
				Resume:    ck,
				MaxShards: 4,
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			ck = res.Checkpoint
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return peak
	}
	small := peak(160)
	big := peak(1600)
	// The envelope is generous (GC timing, -race bookkeeping) but far
	// below the ~10× growth a materialized corpus would show.
	limit := small*2 + 16<<20
	t.Logf("live heap peak: %d traces -> %d bytes, %d traces -> %d bytes (limit %d)",
		160, small, 1600, big, limit)
	if big > limit {
		t.Errorf("10x corpus peaked at %d bytes live heap, want <= %d (2x small + 16MB)", big, limit)
	}
}
