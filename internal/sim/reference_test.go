package sim

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/trace"
)

// simulateTraceReference is the §5.4 slot model as a straight-line
// check-every-slot loop: no event-driven segment stripping, no report
// batching, no memoized conversions — one slot per iteration, rates
// recomputed inline at each report. It is the oracle for SimulateTrace's
// optimized loop: both must produce identical results (including every
// accumulated float, observable through OffSlots/FrameHistogram) on any
// trace.
func simulateTraceReference(tr trace.Trace, p AvailabilityParams) TraceResult {
	res := TraceResult{ID: tr.ID}
	if len(tr.Samples) < 2 || p.Slot <= 0 {
		return res
	}

	lat := p.TPLateralError
	ang := p.TPAngularError
	var latStep, angStep float64
	slotSec := p.Slot.Seconds()

	samples := tr.Samples
	nextReportIdx := 1
	var realignAt time.Duration = -1

	end := tr.Duration()
	frameOff := 0
	slotInFrame := 0
	tolLat, tolAng := p.LateralTolerance, p.AngularTolerance

	prevN := samples[0].Pose.Rot.Normalize()
	prevNIdx := 0
	lastGap := time.Duration(math.MinInt64)
	var lastDt float64

	for at := time.Duration(0); at < end; at += p.Slot {
		for nextReportIdx < len(samples) && samples[nextReportIdx].At <= at {
			a, b := &samples[nextReportIdx-1], &samples[nextReportIdx]
			if realignAt >= 0 && b.At >= realignAt {
				lat = p.TPLateralError
				ang = p.TPAngularError
				realignAt = -1
			}
			if gap := b.At - a.At; gap != lastGap {
				lastGap, lastDt = gap, gap.Seconds()
			}
			if dt := lastDt; dt > 0 {
				if prevNIdx != nextReportIdx-1 {
					prevN = a.Pose.Rot.Normalize()
				}
				bN := b.Pose.Rot.Normalize()
				dLin := a.Pose.Trans.Dist(b.Pose.Trans)
				dAng := geom.AngleBetweenNormalized(prevN, bN)
				prevN, prevNIdx = bN, nextReportIdx
				latRate := dLin / dt
				angRate := dAng / dt
				latStep = latRate * slotSec
				angStep = angRate * slotSec
			}
			realignAt = b.At + p.RealignLatency
			nextReportIdx++
		}

		if realignAt >= 0 && at >= realignAt {
			lat = p.TPLateralError
			ang = p.TPAngularError
			realignAt = -1
		}

		res.Slots++
		if lat > tolLat || ang > tolAng {
			res.OffSlots++
			frameOff++
		}
		slotInFrame++
		if slotInFrame == 30 {
			res.FrameHistogram[frameOff]++
			slotInFrame, frameOff = 0, 0
		}

		lat += latStep
		ang += angStep
	}
	if slotInFrame > 0 {
		res.FrameHistogram[frameOff]++
	}
	if res.Slots > 0 {
		res.OnFraction = 1 - float64(res.OffSlots)/float64(res.Slots)
	}
	return res
}

// TestSimulateTraceMatchesReference pins the optimized slot loop (event
// segmentation, monotone fast path, blocked report-delta precompute) to
// the naive per-slot reference on real synthetic traces — including ones
// long enough to cross many simBlock boundaries — and on adversarial
// spacings (duplicate timestamps, irregular gaps).
func TestSimulateTraceMatchesReference(t *testing.T) {
	p := Paper25G()
	check := func(name string, tr trace.Trace) {
		t.Helper()
		want := simulateTraceReference(tr, p)
		got := SimulateTrace(tr, p)
		if got.Slots != want.Slots || got.OffSlots != want.OffSlots ||
			math.Float64bits(got.OnFraction) != math.Float64bits(want.OnFraction) ||
			got.FrameHistogram != want.FrameHistogram {
			t.Errorf("%s: optimized %+v != reference %+v", name, got, want)
		}
	}

	// Full-length synthetic traces across several seeds (6001 reports
	// each: ~23 simBlock fills per trace).
	for _, seed := range []int64{3, 700, 701, -12} {
		check("synthetic", trace.Generate(seed, int(seed&7), time.Minute, geom.V(0, -1.5, 0)))
	}
	// Short trace: fewer reports than one block.
	check("short", trace.Generate(9, 1, 300*time.Millisecond, geom.Vec3{}))

	// Duplicate timestamps (dt == 0 must keep the previous drift rates)
	// and an irregular gap breaking the memoized conversion.
	base := trace.Generate(5, 2, 2*time.Second, geom.Vec3{})
	irregular := trace.Trace{ID: "irregular", Samples: append([]trace.Sample(nil), base.Samples...)}
	irregular.Samples[40].At = irregular.Samples[39].At // dt = 0
	irregular.Samples[80].At += 3 * time.Millisecond    // gap change
	irregular.Samples[81].At += 3 * time.Millisecond
	check("irregular", irregular)
}
