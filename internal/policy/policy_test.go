package policy

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"cyclops/internal/obs"
)

const ms = time.Millisecond

// drive feeds one sample per millisecond from a health string: 'h' is
// healthy, 'b' is breaching. Returns the state after each sample.
func drive(c *Controller, pattern string) []State {
	out := make([]State, len(pattern))
	for i, ch := range pattern {
		out[i] = c.Observe(time.Duration(i)*ms, ms, ch == 'h')
	}
	return out
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Primary:        "PRIMARY",
		BreachPending:  "BREACH-PENDING",
		Secondary:      "SECONDARY",
		ReadmitPending: "READMIT-PENDING",
		State(9):       "policy.State(9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", uint8(st), got, want)
		}
	}
	if Primary.OnSecondary() || BreachPending.OnSecondary() {
		t.Error("primary-side states must not report OnSecondary")
	}
	if !Secondary.OnSecondary() || !ReadmitPending.OnSecondary() {
		t.Error("secondary-side states must report OnSecondary")
	}
}

func TestOptionsDefaultsAndValidate(t *testing.T) {
	var o Options
	o.Defaults()
	if o.BreachAfter != 50*ms || o.ClearAfter != 500*ms {
		t.Fatalf("defaults = %+v, want 50ms/500ms", o)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options must validate: %v", err)
	}
	if err := (Options{BreachAfter: -ms}).Validate(); err == nil {
		t.Error("negative BreachAfter must be rejected")
	}
	if err := (Options{ClearAfter: -ms}).Validate(); err == nil {
		t.Error("negative ClearAfter must be rejected")
	}
}

// TestTransitionTable pins the full state machine against hand-computed
// sequences. Hysteresis windows are boundary-inclusive: a breach clock
// started at t fails over at t+BreachAfter exactly.
func TestTransitionTable(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		pattern string
		want    []State
	}{
		{
			name:    "sustained breach fails over at the boundary",
			opts:    Options{BreachAfter: 3 * ms, ClearAfter: 2 * ms},
			pattern: "hbbbb",
			// b@1 starts the clock; b@4 is 3ms after → SECONDARY.
			want: []State{Primary, BreachPending, BreachPending, BreachPending, Secondary},
		},
		{
			name:    "transient breach rides through",
			opts:    Options{BreachAfter: 3 * ms, ClearAfter: 2 * ms},
			pattern: "hbbhh",
			want:    []State{Primary, BreachPending, BreachPending, Primary, Primary},
		},
		{
			name:    "clear window matures at the boundary",
			opts:    Options{BreachAfter: ms, ClearAfter: 3 * ms},
			pattern: "bbhhhh",
			// b@0 starts clock, b@1 fails over; h@2 starts clear clock,
			// h@5 is 3ms after → PRIMARY.
			want: []State{BreachPending, Secondary, ReadmitPending, ReadmitPending, ReadmitPending, Primary},
		},
		{
			name:    "breach during clear window restarts it",
			opts:    Options{BreachAfter: ms, ClearAfter: 3 * ms},
			pattern: "bbhhbhhhh",
			want: []State{BreachPending, Secondary, ReadmitPending, ReadmitPending,
				Secondary, ReadmitPending, ReadmitPending, ReadmitPending, Primary},
		},
		{
			name:    "zero windows default, not instant",
			opts:    Options{},
			pattern: "hbh",
			// Default BreachAfter is 50ms, far beyond this trace.
			want: []State{Primary, BreachPending, Primary},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := drive(New(tc.opts, nil), tc.pattern)
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("sample %d (%c): state %v, want %v (full: %v)",
						i, tc.pattern[i], got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestZeroWindowOptionsUseDefaults: explicit sub-millisecond windows give
// immediate transitions (boundary-inclusive with a zero-length clock).
func TestImmediateWindows(t *testing.T) {
	c := New(Options{BreachAfter: time.Nanosecond, ClearAfter: time.Nanosecond}, nil)
	// One nanosecond never elapses on a 1ms grid... but the clock starts
	// at the first breach sample, so the *next* sample matures it.
	got := drive(c, "bbhh")
	want := []State{BreachPending, Secondary, ReadmitPending, Primary}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: state %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestNoFlapDwellFloor: every completed dwell is at least ClearAfter, for
// arbitrary breach patterns — the structural no-flap guarantee.
func TestNoFlapDwellFloor(t *testing.T) {
	opts := Options{BreachAfter: 2 * ms, ClearAfter: 5 * ms}
	// A nasty pattern: short breaches, short clears, repeated.
	pattern := strings.Repeat("bbbbhhbhhhhhhb", 20)
	c := New(opts, nil)
	drive(c, pattern)
	if c.Failovers() == 0 || c.Readmits() == 0 {
		t.Fatalf("pattern must exercise both transitions: failovers=%d readmits=%d",
			c.Failovers(), c.Readmits())
	}
	if d := c.MinSecondaryDwell(); d < opts.ClearAfter {
		t.Fatalf("min dwell %v below clear window %v — policy flapped", d, opts.ClearAfter)
	}
}

func TestCountersAndSecondaryTime(t *testing.T) {
	c := New(Options{BreachAfter: ms, ClearAfter: 2 * ms}, nil)
	// b@0 clock, b@1 → SECONDARY (2 secondary samples: 1,2? walk it):
	// samples: b0=BREACH, b1=SECONDARY, b2=SECONDARY, h3=READMIT,
	// h4=READMIT, h5=PRIMARY. OnSecondary at 1,2,3,4 → 4ms.
	drive(c, "bbbhhh")
	if c.Failovers() != 1 || c.Readmits() != 1 {
		t.Fatalf("failovers=%d readmits=%d, want 1/1", c.Failovers(), c.Readmits())
	}
	if got := c.SecondaryTime(); got != 4*ms {
		t.Fatalf("SecondaryTime = %v, want 4ms", got)
	}
	// Dwell: failed over at t=1ms, readmitted at t=5ms.
	if got := c.MinSecondaryDwell(); got != 4*ms {
		t.Fatalf("MinSecondaryDwell = %v, want 4ms", got)
	}
	if c.State() != Primary {
		t.Fatalf("final state %v, want PRIMARY", c.State())
	}
}

func TestNoDwellBeforeFirstReadmit(t *testing.T) {
	c := New(Options{BreachAfter: ms, ClearAfter: 2 * ms}, nil)
	drive(c, "bbb")
	if got := c.MinSecondaryDwell(); got != 0 {
		t.Fatalf("MinSecondaryDwell with no completed dwell = %v, want 0", got)
	}
}

func TestMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := New(Options{BreachAfter: ms, ClearAfter: 2 * ms}, m)
	drive(c, "bbbhhh")
	exp := reg.Exposition()
	// Replicate the counter's accumulation order so the float compare is
	// exact (four Add(0.001) calls, not one Add(0.004)).
	var secs float64
	for i := 0; i < 4; i++ {
		secs += ms.Seconds()
	}
	for _, want := range []string{
		"cyclops_policy_failover_total 1",
		"cyclops_policy_readmit_total 1",
		"cyclops_policy_secondary_seconds " + strconv.FormatFloat(secs, 'g', -1, 64),
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
	if !strings.Contains(exp, "cyclops_policy_secondary_dwell_seconds_count 1") {
		t.Errorf("dwell histogram not observed:\n%s", exp)
	}
}

func TestNilMetricsSafe(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatal("NewMetrics(nil) must return nil")
	}
	c := New(Options{BreachAfter: ms, ClearAfter: ms}, nil)
	drive(c, "bbbhhbbhh") // exercise every transition with nil metrics
}

// TestDeterminism: two controllers fed the same sequence agree exactly.
func TestDeterminism(t *testing.T) {
	pattern := strings.Repeat("bbhbhhhbbbbhhhhhh", 50)
	a := drive(New(Options{BreachAfter: 3 * ms, ClearAfter: 4 * ms}, nil), pattern)
	b := drive(New(Options{BreachAfter: 3 * ms, ClearAfter: 4 * ms}, nil), pattern)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}
