// Package policy implements the deterministic hybrid link policy: the
// SLO-driven state machine that decides, tick by tick, whether delivered
// traffic rides the FSO primary or an RF secondary (the 802.11ad mmWave
// link of internal/baseline). The paper's framing (§1, §2.1) is that FSO
// carries the tens of gigabits VR needs while mmWave is the fallback-class
// medium everyone ships; this package is the glue that makes the fallback
// live instead of a standalone comparison.
//
// The controller is a pure function of the health samples it is fed — no
// clocks, no randomness — so a policy run is exactly as bit-reproducible
// as the run that drives it. Consumers (core.Run's RunOptions.Hybrid, the
// sim hybrid slot model) translate their own notion of "primary healthy"
// into the boolean Observe consumes; the usual definition is "SFP locked
// AND received power clears sensitivity plus margin", which makes the SFP
// re-lock tail count as unhealthy and therefore delays re-admission until
// the optical link is actually carrying again.
//
// # State machine
//
//	PRIMARY ──unhealthy──▶ BREACH-PENDING ──sustained BreachAfter──▶ SECONDARY
//	   ▲                        │healthy                               │healthy
//	   │                        ▼                                      ▼
//	   └──sustained ClearAfter── READMIT-PENDING ◀────────────── (clear clock
//	                                  │unhealthy──▶ SECONDARY      starts)
//
// Both hysteresis windows are boundary-inclusive: with BreachAfter zero
// the first unhealthy sample fails over, with ClearAfter zero the first
// healthy sample re-admits — the same closed-boundary convention
// link.Monitor uses for HoldOver and RelockDelay. Because leaving
// SECONDARY requires ClearAfter of uninterrupted health, a completed
// failover→readmit dwell is never shorter than ClearAfter: the policy
// cannot flap during a recovery or a handover slew by construction.
package policy

import (
	"fmt"
	"time"

	"cyclops/internal/obs"
)

// State is the policy state. Traffic rides the primary in Primary and
// BreachPending, the secondary in Secondary and ReadmitPending.
type State uint8

const (
	// Primary: the FSO link is healthy and carrying.
	Primary State = iota
	// BreachPending: the primary is breaching its SLO; the breach clock
	// runs but traffic still rides the primary (hysteresis against
	// realignment transients and handover slews).
	BreachPending
	// Secondary: traffic failed over to the RF secondary.
	Secondary
	// ReadmitPending: the primary looks healthy again; the clear clock
	// runs but traffic stays on the secondary until it matures.
	ReadmitPending
)

// String names the policy state.
func (s State) String() string {
	switch s {
	case Primary:
		return "PRIMARY"
	case BreachPending:
		return "BREACH-PENDING"
	case Secondary:
		return "SECONDARY"
	case ReadmitPending:
		return "READMIT-PENDING"
	}
	return fmt.Sprintf("policy.State(%d)", uint8(s))
}

// OnSecondary reports whether delivered traffic rides the secondary
// medium in this state.
func (s State) OnSecondary() bool { return s == Secondary || s == ReadmitPending }

// Options tune the SLO hysteresis. The zero value of each field means
// "use the documented default"; Validate rejects negative values.
type Options struct {
	// BreachAfter is how long the primary must stay continuously
	// unhealthy before the controller fails over (default 50 ms — far
	// above a realignment transient or a make-before-break handover slew,
	// far below the 3 s SFP re-lock an occlusion costs).
	BreachAfter time.Duration
	// ClearAfter is how long the primary must stay continuously healthy
	// (re-locked and inside margin) before the controller re-admits it
	// (default 500 ms, matching HandoverOptions.FailbackAfter). This is
	// also the minimum completed SECONDARY dwell — the no-flap floor.
	ClearAfter time.Duration
}

// Defaults fills zero fields with the documented defaults in place.
func (o *Options) Defaults() {
	if o.BreachAfter <= 0 {
		o.BreachAfter = 50 * time.Millisecond
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 500 * time.Millisecond
	}
}

// Validate rejects negative hysteresis windows (zero always means "use
// the default", never "disable").
func (o Options) Validate() error {
	if o.BreachAfter < 0 {
		return fmt.Errorf("policy: negative BreachAfter %v", o.BreachAfter)
	}
	if o.ClearAfter < 0 {
		return fmt.Errorf("policy: negative ClearAfter %v", o.ClearAfter)
	}
	return nil
}

// Metrics instruments the policy layer. Like fault.OutageMetrics, every
// consumer of the controller (core.Run's hybrid path, the sim hybrid slot
// model) records under these names, so they are defined exactly once,
// here.
type Metrics struct {
	// Failovers counts PRIMARY→SECONDARY transitions.
	Failovers *obs.Counter
	// Readmits counts SECONDARY→PRIMARY transitions (clear window
	// matured).
	Readmits *obs.Counter
	// SecondarySeconds totals time delivered traffic rode the secondary.
	SecondarySeconds *obs.Counter
	// Dwell is the completed failover→readmit dwell distribution. Every
	// observation sits at or above Options.ClearAfter — a bucket below it
	// filling up is the flap signature the policy exists to prevent.
	Dwell *obs.Histogram
}

// SecondaryDwellBuckets are the cyclops_policy_secondary_dwell_seconds
// histogram bounds. They straddle the default 500 ms clear window and the
// multi-second haze fades that drive realistic failovers.
var SecondaryDwellBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 60}

// NewMetrics registers the policy instruments in reg (nil reg → nil
// metrics, recording disabled).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Failovers: reg.Counter("cyclops_policy_failover_total",
			"Hybrid link policy failovers: FSO primary to mmWave secondary on sustained SLO breach."),
		Readmits: reg.Counter("cyclops_policy_readmit_total",
			"Hybrid link policy re-admissions: back to the FSO primary after re-lock plus the clear window."),
		SecondarySeconds: reg.Counter("cyclops_policy_secondary_seconds",
			"Time delivered traffic rode the mmWave secondary."),
		Dwell: reg.Histogram("cyclops_policy_secondary_dwell_seconds",
			"Completed failover-to-readmit dwell on the secondary (never below the clear window).",
			SecondaryDwellBuckets),
	}
}

// Controller is the per-run policy state machine. Feed it one health
// sample per tick through Observe; it is not safe for concurrent use.
type Controller struct {
	opts Options
	m    *Metrics

	state       State
	breachSince time.Duration
	clearSince  time.Duration
	failedAt    time.Duration

	failovers     int
	readmits      int
	secondaryTime time.Duration
	minDwell      time.Duration
	hasDwell      bool
}

// New builds a controller in the PRIMARY state. A nil Metrics disables
// recording; Options zero fields take the documented defaults.
func New(opts Options, m *Metrics) *Controller {
	opts.Defaults()
	return &Controller{opts: opts, m: m}
}

// Observe feeds one tick: at is the sample time (non-decreasing), tick
// the simulation step it covers, and primaryHealthy the caller's SLO
// verdict on the FSO link for this tick. It returns the state after the
// sample — the medium that carries this tick's traffic.
func (c *Controller) Observe(at, tick time.Duration, primaryHealthy bool) State {
	switch c.state {
	case Primary:
		if !primaryHealthy {
			c.state = BreachPending
			c.breachSince = at
			c.maybeFailover(at)
		}
	case BreachPending:
		if primaryHealthy {
			c.state = Primary
		} else {
			c.maybeFailover(at)
		}
	case Secondary:
		if primaryHealthy {
			c.state = ReadmitPending
			c.clearSince = at
			c.maybeReadmit(at)
		}
	case ReadmitPending:
		if !primaryHealthy {
			c.state = Secondary
		} else {
			c.maybeReadmit(at)
		}
	}
	if c.state.OnSecondary() {
		c.secondaryTime += tick
		if c.m != nil {
			c.m.SecondarySeconds.Add(tick.Seconds())
		}
	}
	return c.state
}

func (c *Controller) maybeFailover(at time.Duration) {
	if at-c.breachSince < c.opts.BreachAfter {
		return
	}
	c.state = Secondary
	c.failedAt = at
	c.failovers++
	if c.m != nil {
		c.m.Failovers.Inc()
	}
}

func (c *Controller) maybeReadmit(at time.Duration) {
	if at-c.clearSince < c.opts.ClearAfter {
		return
	}
	c.state = Primary
	c.readmits++
	dwell := at - c.failedAt
	if !c.hasDwell || dwell < c.minDwell {
		c.minDwell = dwell
		c.hasDwell = true
	}
	if c.m != nil {
		c.m.Readmits.Inc()
		c.m.Dwell.Observe(dwell.Seconds())
	}
}

// State returns the current policy state.
func (c *Controller) State() State { return c.state }

// Failovers counts PRIMARY→SECONDARY transitions so far.
func (c *Controller) Failovers() int { return c.failovers }

// Readmits counts SECONDARY→PRIMARY transitions so far.
func (c *Controller) Readmits() int { return c.readmits }

// SecondaryTime totals the tick time spent with traffic on the secondary.
func (c *Controller) SecondaryTime() time.Duration { return c.secondaryTime }

// MinSecondaryDwell is the shortest completed failover→readmit dwell, or
// zero when no dwell has completed. By construction it is never below
// Options.ClearAfter — the no-flap guarantee the acceptance tests pin.
func (c *Controller) MinSecondaryDwell() time.Duration {
	if !c.hasDwell {
		return 0
	}
	return c.minDwell
}
