package pointing

import (
	"errors"
	"testing"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
)

// warmFixture returns compiled models plus a converged voltage set, so the
// benchmarks and allocation tests exercise the warm-start path the
// real-time loop lives on (one report ≈ one small re-solve).
func warmFixture(tb testing.TB) (ct, cr gma.Compiled, v Voltages, tau geom.Vec3) {
	tb.Helper()
	gt, gr := fixture(11)
	ct, cr = gt.Compile(), gr.Compile()
	res, err := PointCompiled(&ct, &cr, Voltages{}, PointOptions{})
	if err != nil {
		tb.Fatalf("fixture alignment failed: %v", err)
	}
	// At convergence the TX solve's target is the RX beam's origin (the
	// modeled capture point); a few millimeters off that is the shape of
	// one fresh tracking report.
	br, err := cr.Beam(res.V.RX1, res.V.RX2)
	if err != nil {
		tb.Fatalf("fixture beam failed: %v", err)
	}
	return ct, cr, res.V, br.Origin.Add(geom.V(0.002, -0.001, 0))
}

// TestGPrimeCompiledZeroAllocs pins the solver's zero-allocation contract
// on the warm-start success path.
func TestGPrimeCompiledZeroAllocs(t *testing.T) {
	ct, _, v, tau := warmFixture(t)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, _, err := GPrimeCompiled(&ct, tau, v.TX1, v.TX2, GPrimeOptions{}); err != nil {
			t.Fatalf("GPrime failed: %v", err)
		}
	}); n != 0 {
		t.Fatalf("GPrimeCompiled allocates %v per solve, want 0", n)
	}
}

// TestGPrimeCompiledColdZeroAllocs pins the contract on the cold-start
// path too: a start far from the target forces the batched 9×9 coarse
// seed (81 evaluations through one BeamBatch call over stack buffers),
// which must stay as allocation-free as the warm path.
func TestGPrimeCompiledColdZeroAllocs(t *testing.T) {
	ct, _, _, tau := warmFixture(t)
	const cold1, cold2 = 8.0, -8.0
	if b, err := ct.Beam(cold1, cold2); err == nil && b.DistanceTo(tau) <= 0.1 {
		t.Fatalf("start (%v, %v) is not cold: beam already within 0.1 m of tau", cold1, cold2)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, _, err := GPrimeCompiled(&ct, tau, cold1, cold2, GPrimeOptions{}); err != nil {
			t.Fatalf("cold GPrime failed: %v", err)
		}
	}); n != 0 {
		t.Fatalf("cold GPrimeCompiled allocates %v per solve, want 0", n)
	}
}

// TestPointCompiledZeroAllocs extends the contract to a full warm P solve
// (metrics disabled — a nil *Metrics is the hot default inside tight
// loops that attach their own registries).
func TestPointCompiledZeroAllocs(t *testing.T) {
	ct, cr, v, _ := warmFixture(t)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := PointCompiled(&ct, &cr, v, PointOptions{}); err != nil {
			t.Fatalf("Point failed: %v", err)
		}
	}); n != 0 {
		t.Fatalf("PointCompiled allocates %v per solve, want 0", n)
	}
}

// TestGPrimeDegenerateBasisZeroAllocs is the regression test for the
// fmt.Errorf calls the transitive hotpath vet rule flagged inside
// GPrimeCompiled's call tree: the no-cause failure branches now return
// the prebuilt errProbeParallel/errDegenerateBasis, so even a failing
// solve stays allocation-free. A model with Theta1 = 0 steers nowhere —
// all three Jacobian probes produce the identical beam, the per-ε
// displacement basis collapses, and iteration 1 exits through the
// degenerate-basis branch. Before the prebuilt errors this test failed:
// fmt.Errorf built a fresh error on every failing solve.
func TestGPrimeDegenerateBasisZeroAllocs(t *testing.T) {
	frozen := gma.Nominal()
	frozen.Theta1 = 0
	cf := frozen.Compile()
	b0, err := cf.Beam(0, 0)
	if err != nil {
		t.Fatalf("frozen fixture beam failed: %v", err)
	}
	// tau sits on the zero-voltage beam, so the cold-start guard keeps the
	// warm path and the solve reaches the basis solve on iteration 1.
	tau := b0.At(1.5)
	_, _, iters, err := GPrimeCompiled(&cf, tau, 0, 0, GPrimeOptions{})
	if !errors.Is(err, errDegenerateBasis) {
		t.Fatalf("frozen solve returned (iters=%d, err=%v), want errDegenerateBasis", iters, err)
	}
	if n := testing.AllocsPerRun(200, func() {
		GPrimeCompiled(&cf, tau, 0, 0, GPrimeOptions{})
	}); n != 0 {
		t.Fatalf("failing GPrimeCompiled allocates %v per solve, want 0", n)
	}
}

func BenchmarkGPrimeWarm(b *testing.B) {
	ct, _, v, tau := warmFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := GPrimeCompiled(&ct, tau, v.TX1, v.TX2, GPrimeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPrimeWarmUncompiled is the before-shape of the same solve:
// Params in, a fresh compilation per call.
func BenchmarkGPrimeWarmUncompiled(b *testing.B) {
	gt, _ := fixture(11)
	_, _, v, tau := warmFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := GPrime(gt, tau, v.TX1, v.TX2, GPrimeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointWarm(b *testing.B) {
	ct, cr, v, _ := warmFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PointCompiled(&ct, &cr, v, PointOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointColdStart(b *testing.B) {
	ct, cr, _, _ := warmFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PointCompiled(&ct, &cr, Voltages{}, PointOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
