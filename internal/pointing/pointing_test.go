package pointing

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
)

// fixture builds a TX model at the world origin (beam exiting +Z) and an
// RX model 1.75 m away facing back down at it — the ceiling-to-headset
// geometry flipped into a convenient frame.
func fixture(seed int64) (gt, gr gma.Params) {
	rng := rand.New(rand.NewSource(seed))
	gt = gma.Perturbed(rng)
	rxMount := geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(0, 1, 0), math.Pi),
		geom.V(0.25, 0.15, 1.75),
	)
	gr = gma.Perturbed(rng).Transformed(rxMount)
	return gt, gr
}

func TestGPrimeHitsTarget(t *testing.T) {
	gt, _ := fixture(1)
	targets := []geom.Vec3{
		{X: 0.1, Y: 0.05, Z: 1.5},
		{X: -0.2, Y: 0.1, Z: 1.75},
		{X: 0, Y: 0, Z: 2.0},
		{X: 0.3, Y: -0.25, Z: 1.6},
	}
	for _, tau := range targets {
		v1, v2, iters, err := GPrime(gt, tau, 0, 0, GPrimeOptions{})
		if err != nil {
			t.Fatalf("target %v: %v", tau, err)
		}
		beam, err := gt.Beam(v1, v2)
		if err != nil {
			t.Fatal(err)
		}
		if d := beam.DistanceTo(tau); d > 1e-4 {
			t.Errorf("target %v: beam misses by %v m", tau, d)
		}
		if iters > 8 {
			t.Errorf("target %v: %d iterations, want ≤8", tau, iters)
		}
	}
}

func TestGPrimeConvergesFast(t *testing.T) {
	// The paper observes 2–4 iterations. Cold starts from zero across a
	// spread of targets should average in that range.
	gt, _ := fixture(2)
	rng := rand.New(rand.NewSource(3))
	var total, n int
	for i := 0; i < 50; i++ {
		tau := geom.V(rng.Float64()*0.6-0.3, rng.Float64()*0.6-0.3, 1.5+rng.Float64()*0.5)
		_, _, iters, err := GPrime(gt, tau, 0, 0, GPrimeOptions{})
		if err != nil {
			continue
		}
		total += iters
		n++
	}
	if n < 45 {
		t.Fatalf("only %d/50 targets solved", n)
	}
	avg := float64(total) / float64(n)
	if avg < 1.5 || avg > 6 {
		t.Errorf("average G' iterations = %.1f, paper observes 2-4", avg)
	}
}

func TestGPrimeWarmStart(t *testing.T) {
	// Warm starts (the real-time loop's previous voltages) converge at
	// least as fast as cold starts.
	gt, _ := fixture(4)
	tau := geom.V(0.1, 0.1, 1.7)
	v1, v2, _, err := GPrime(gt, tau, 0, 0, GPrimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tau2 := tau.Add(geom.V(0.005, -0.003, 0))
	_, _, warm, err := GPrime(gt, tau2, v1, v2, GPrimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cold, err := GPrime(gt, tau2, 0, 0, GPrimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm > cold {
		t.Errorf("warm start took %d iters vs cold %d", warm, cold)
	}
}

func TestPointAlignsBeams(t *testing.T) {
	gt, gr := fixture(5)
	res, err := Point(gt, gr, Voltages{}, PointOptions{})
	if err != nil {
		t.Fatalf("point failed after %d iters: %v", res.Iterations, err)
	}
	// Lemma 1 coincidence: each beam passes through the other's origin
	// to sub-millimeter precision.
	if res.Residual > 1e-3 {
		t.Errorf("coincidence residual = %v m", res.Residual)
	}
	bt, _ := gt.Beam(res.V.TX1, res.V.TX2)
	br, _ := gr.Beam(res.V.RX1, res.V.RX2)
	if d := bt.DistanceTo(br.Origin); d > 1e-3 {
		t.Errorf("TX beam misses RX capture point by %v", d)
	}
	if d := br.DistanceTo(bt.Origin); d > 1e-3 {
		t.Errorf("RX reverse beam misses TX origin by %v", d)
	}
	// And the two beams are anti-parallel (the light retraces the
	// imaginary beam).
	if ang := bt.Dir.AngleTo(br.Dir.Neg()); ang > 2e-3 {
		t.Errorf("beams not anti-parallel: %v rad", ang)
	}
}

func TestPointIterationCount(t *testing.T) {
	// §4.3: P converges in 2–5 outer iterations.
	var total, n int
	for seed := int64(10); seed < 40; seed++ {
		gt, gr := fixture(seed)
		res, err := Point(gt, gr, Voltages{}, PointOptions{})
		if err != nil {
			continue
		}
		total += res.Iterations
		n++
	}
	if n < 25 {
		t.Fatalf("only %d/30 fixtures solved", n)
	}
	avg := float64(total) / float64(n)
	if avg < 1.5 || avg > 7 {
		t.Errorf("average P iterations = %.1f, paper observes 2-5", avg)
	}
}

func TestPointWarmStartFewerIterations(t *testing.T) {
	gt, gr := fixture(6)
	cold, err := Point(gt, gr, Voltages{}, PointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Move the RX a few millimeters (one tracking interval of motion)
	// and re-point from the previous solution.
	gr2 := gr.Transformed(geom.NewPose(geom.QuatIdentity(), geom.V(0.004, -0.002, 0.001)))
	warm, err := Point(gt, gr2, cold.V, PointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start %d iters vs cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestRXInVRSpaceComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := gma.Perturbed(rng)
	mrx := geom.NewPose(geom.QuatFromAxisAngle(geom.V(1, 0, 0), 0.2), geom.V(0.05, 0.02, 0.01))
	psi := geom.NewPose(geom.QuatFromAxisAngle(geom.V(0, 1, 0), 1.0), geom.V(1, 1.5, 2))
	got := RXInVRSpace(k, mrx, psi)
	want := k.Transformed(psi.Compose(mrx))
	if got != want {
		t.Error("RXInVRSpace composition mismatch")
	}
}

func TestCoincidenceResidualZeroAtAlignment(t *testing.T) {
	gt, gr := fixture(8)
	res, err := Point(gt, gr, Voltages{}, PointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := CoincidenceResidual(gt, gr, res.V)
	if r < 0 || r > 1e-3 {
		t.Errorf("residual at alignment = %v", r)
	}
	// A detuned voltage set has a visibly larger residual.
	detuned := res.V
	detuned.TX1 += 0.05
	if CoincidenceResidual(gt, gr, detuned) < 10*r {
		t.Error("residual not sensitive to detuning")
	}
}

// Non-finite inputs are refused at the door with typed sentinels, before
// any model evaluation — a NaN would otherwise survive every tolerance
// comparison and reach the galvo DAQ.
func TestNonFiniteInputsRejected(t *testing.T) {
	gt, gr := fixture(1)
	ct, cr := gt.Compile(), gr.Compile()
	nan := math.NaN()

	// G′: poisoned target point.
	_, _, iters, err := GPrimeCompiled(&ct, geom.V(nan, 0, 1), 0, 0, GPrimeOptions{})
	if !errors.Is(err, ErrNonFiniteTarget) {
		t.Errorf("NaN target: err = %v, want ErrNonFiniteTarget", err)
	}
	if iters != 0 {
		t.Errorf("NaN target burned %d iterations", iters)
	}

	// G′: poisoned start voltages.
	if _, _, _, err := GPrimeCompiled(&ct, geom.V(0, 0, 1), math.Inf(1), 0, GPrimeOptions{}); !errors.Is(err, ErrNonFiniteStart) {
		t.Errorf("Inf start: err = %v, want ErrNonFiniteStart", err)
	}

	// P: poisoned start voltages.
	res, err := PointCompiled(&ct, &cr, Voltages{TX1: nan}, PointOptions{})
	if !errors.Is(err, ErrNonFiniteStart) {
		t.Errorf("NaN P start: err = %v, want ErrNonFiniteStart", err)
	}
	if res.BeamEvals != 0 {
		t.Errorf("NaN P start consumed %d beam evals", res.BeamEvals)
	}

	// Finite inputs do not trip the guards.
	if _, err := PointCompiled(&ct, &cr, Voltages{}, PointOptions{}); errors.Is(err, ErrNonFiniteStart) || errors.Is(err, ErrNonFiniteTarget) {
		t.Errorf("finite solve tripped a finiteness sentinel: %v", err)
	}
}

func TestVoltagesFinite(t *testing.T) {
	if !(Voltages{1, 2, 3, 4}).Finite() {
		t.Error("finite voltages reported non-finite")
	}
	for _, bad := range []Voltages{
		{TX1: math.NaN()}, {TX2: math.Inf(1)}, {RX1: math.Inf(-1)}, {RX2: math.NaN()},
	} {
		if bad.Finite() {
			t.Errorf("%+v reported finite", bad)
		}
	}
}
