// Package pointing implements the real-time half of Cyclops's TP mechanism
// (§4.3): the reverse GMA function G′ (target point → mirror voltages) and
// the pointing function P (VRH position → the four voltages that align the
// beam), both built purely on evaluations of learned GMA models — no
// additional training and no power feedback.
//
// The solvers run on compiled models (gma.Compiled): the per-report hot
// path compiles each model once and then every Beam evaluation inside the
// G′ and P iterations is allocation-free. The Params-based entry points
// remain as thin compiling wrappers for callers outside the hot path.
package pointing

import (
	"errors"
	"fmt"
	"math"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
)

// GPrimeOptions tunes the G′ iteration.
type GPrimeOptions struct {
	// Epsilon is the voltage probe step for the local linear model
	// (default 0.01 V).
	Epsilon float64
	// Tol is the convergence threshold on the voltage update magnitude;
	// the paper stops at the minimum GM voltage step (default 0.3 mV,
	// the USB-1608G step).
	Tol float64
	// MaxIter bounds the iteration (default 25; the paper observes
	// convergence in 2–4).
	MaxIter int
	// MaxStep caps the per-iteration voltage change (default 3 V): a
	// trust region that keeps a locally linear step from swinging the
	// mirrors so far that the modeled beam leaves its own assembly.
	MaxStep float64
	// VoltLimit caps the absolute commandable voltage (default 12 V,
	// slightly beyond the DAQ's ±10 V so the iteration can overshoot
	// and come back).
	VoltLimit float64
}

func (o *GPrimeOptions) defaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.Tol <= 0 {
		o.Tol = 0.3e-3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 25
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 3
	}
	if o.VoltLimit <= 0 {
		o.VoltLimit = 12
	}
}

// Validate rejects option sets the defaulting pass cannot repair. Tol
// must be a finite, non-negative voltage step: zero means "use the
// default", but a NaN or ±Inf Tol compares false against every step
// magnitude, which would silently disable (or trivially satisfy) the
// convergence test and burn MaxIter evaluations per solve; a negative
// Tol is a contradiction, not a default request. The solvers call this
// at the door, so a poisoned tolerance fails fast instead of shaping
// every subsequent solve.
func (o GPrimeOptions) Validate() error {
	if !finite(o.Tol) || o.Tol < 0 {
		//cyclops:alloc-ok cold validation failure: formats the poisoned Tol once, then the run aborts
		return fmt.Errorf("pointing: invalid GPrimeOptions: Tol %v (want a finite, non-negative voltage step; 0 means default)", o.Tol)
	}
	return nil
}

// ErrNoConverge is returned when an iteration exhausts MaxIter without the
// update falling below tolerance.
var ErrNoConverge = errors.New("pointing: iteration did not converge")

// ErrNonFiniteStart is returned when the starting voltages contain
// NaN/Inf. Like the optimize package's finiteness gate, the solvers
// refuse poisoned numerics at the door instead of propagating NaN into
// galvo commands.
var ErrNonFiniteStart = errors.New("pointing: non-finite start voltages")

// ErrNonFiniteTarget is returned when the G′ target point contains
// NaN/Inf — the downstream symptom of a non-finite tracking report.
var ErrNonFiniteTarget = errors.New("pointing: non-finite target point")

// errProbeParallel and errDegenerateBasis are prebuilt so the solver's
// failure branches stay allocation-free (they sit inside hot-path call
// trees; the transitive hotpath vet rule keeps them that way).
var (
	errProbeParallel   = errors.New("pointing: probe beam parallel to target plane")
	errDegenerateBasis = errors.New("pointing: degenerate steering basis")
)

// finite reports whether x is a usable number (mirrors the allFinite
// check in optimize/lm.go, scalar form).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// GPrime computes G′(τ) on an uncompiled model: it compiles and delegates
// to GPrimeCompiled. Hot loops should compile once and call
// GPrimeCompiled directly.
func GPrime(model gma.Params, tau geom.Vec3, v1, v2 float64, opts GPrimeOptions) (float64, float64, int, error) {
	c := model.Compile()
	return GPrimeCompiled(&c, tau, v1, v2, opts)
}

// GPrimeCompiled computes G′(τ): the voltages that make the model's output
// beam pass through the target point tau, starting from (v1, v2). It
// returns the voltages and the number of iterations used.
//
// Each step follows §4.3 exactly: evaluate G at (v1,v2), (v1+ε,v2),
// (v1,v2+ε); intersect the three beams with the plane P through τ
// perpendicular to the current beam; express the miss vector in the basis
// of the two per-ε beam displacements; and take the implied linear step.
// The successful path performs zero heap allocations.
//
//cyclops:hotpath zero-alloc contract pinned by TestGPrimeCompiledZeroAllocs and make alloc-check
func GPrimeCompiled(model *gma.Compiled, tau geom.Vec3, v1, v2 float64, opts GPrimeOptions) (float64, float64, int, error) {
	rv1, rv2, iters, _, err := gprime(model, tau, v1, v2, opts)
	return rv1, rv2, iters, err
}

// gprime is the shared core; it additionally reports how many forward
// model evaluations (G calls) the solve consumed, which the P solver
// aggregates into the cyclops_pointing_beam_evals_total counter.
func gprime(model *gma.Compiled, tau geom.Vec3, v1, v2 float64, opts GPrimeOptions) (float64, float64, int, int, error) {
	if err := opts.Validate(); err != nil {
		return v1, v2, 0, 0, err
	}
	opts.defaults()

	if !tau.Finite() {
		return v1, v2, 0, 0, ErrNonFiniteTarget
	}
	if !finite(v1) || !finite(v2) {
		return v1, v2, 0, 0, ErrNonFiniteStart
	}

	beamEvals := 0

	// Cold-start guard: Newton's local linearization is only trustworthy
	// when the beam already passes reasonably near the target. If the
	// starting beam misses by decimeters (a cold start in an arbitrarily
	// rotated VR frame), seed the iteration with a coarse scan of the
	// voltage grid — 81 model evaluations, microseconds. When the guard's
	// beam is good, it is exactly the b0 the first iteration would
	// recompute (Beam is a pure function), so it is reused instead of
	// thrown away — warm-start solves save one evaluation in three.
	var b0 geom.Ray
	haveB0 := false
	if b, err := model.Beam(v1, v2); err != nil || b.DistanceTo(tau) > 0.1 {
		cv1, cv2, evals, ok := coarseSeed(model, tau, opts.VoltLimit)
		beamEvals += 1 + evals
		if ok {
			v1, v2 = cv1, cv2
		}
	} else {
		beamEvals++
		b0, haveB0 = b, true
	}

	// SoA probe workspace: up to three voltage pairs per iteration
	// (current point, +ε on v1, +ε on v2) evaluated through a single
	// BeamBatch call, so the model loads are paid once per iteration
	// instead of once per evaluation. The arrays live on this frame —
	// BeamBatch only writes through the slices, so nothing escapes and
	// the solver's zero-allocation contract holds.
	var (
		pv1, pv2   [3]float64
		porg, pdir [3]geom.Vec3
		perr       [3]error
	)
	probes := gma.BeamBatchBuf{V2: pv2[:], Origin: porg[:], Dir: pdir[:], Err: perr[:]}

	var lastStep1, lastStep2 float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Pack the iteration's probes: slot k is the first Jacobian
		// probe (b0 occupies slot 0 only when it must be recomputed).
		k := 0
		if !haveB0 {
			pv1[0], pv2[0] = v1, v2
			k = 1
		}
		pv1[k], pv2[k] = v1+opts.Epsilon, v2
		pv1[k+1], pv2[k+1] = v1, v2+opts.Epsilon
		probes.V1 = pv1[:k+2]
		model.BeamBatch(&probes)

		// Unwind the batch with the scalar path's exact accounting: an
		// evaluation the sequential code would never have reached (a
		// probe after an earlier error) is not counted, so the
		// cyclops_pointing_beam_evals_total stream is unchanged.
		if !haveB0 {
			beamEvals++
			if err := perr[0]; err != nil {
				// The last step carried the beam outside its own
				// assembly's geometry — back off half of it and retry.
				if lastStep1 != 0 || lastStep2 != 0 {
					v1 -= lastStep1 / 2
					v2 -= lastStep2 / 2
					lastStep1 /= 2
					lastStep2 /= 2
					continue
				}
				//cyclops:alloc-ok cold error return: wraps the beam-eval cause only when the solve fails
				return v1, v2, iter, beamEvals, fmt.Errorf("pointing: %w", err)
			}
			b0 = probes.Ray(0)
		}
		haveB0 = false
		beamEvals++
		if err := perr[k]; err != nil {
			//cyclops:alloc-ok cold error return: wraps the beam-eval cause only when the solve fails
			return v1, v2, iter, beamEvals, fmt.Errorf("pointing: %w", err)
		}
		b1 := probes.Ray(k)
		beamEvals++
		if err := perr[k+1]; err != nil {
			//cyclops:alloc-ok cold error return: wraps the beam-eval cause only when the solve fails
			return v1, v2, iter, beamEvals, fmt.Errorf("pointing: %w", err)
		}
		b2 := probes.Ray(k + 1)

		// Plane through τ perpendicular to the current beam direction.
		plane := geom.NewPlane(tau, b0.Dir)
		k0, _, err := plane.IntersectLine(b0)
		if err != nil {
			//cyclops:alloc-ok cold error return: wraps the intersection cause only when the solve fails
			return v1, v2, iter, beamEvals, fmt.Errorf("pointing: beam parallel to target plane: %w", err)
		}
		k1, _, err1 := plane.IntersectLine(b1)
		k2, _, err2 := plane.IntersectLine(b2)
		if err1 != nil || err2 != nil {
			return v1, v2, iter, beamEvals, errProbeParallel
		}

		// Per-ε displacement vectors on the plane, and the miss vector.
		u1 := k1.Sub(k0)
		u2 := k2.Sub(k0)
		miss := tau.Sub(k0)

		// Solve miss ≈ a·u1 + b·u2 in the least-squares sense (2×2
		// normal equations on the plane).
		g11 := u1.Dot(u1)
		g12 := u1.Dot(u2)
		g22 := u2.Dot(u2)
		det := g11*g22 - g12*g12
		if det <= 1e-30 {
			return v1, v2, iter, beamEvals, errDegenerateBasis
		}
		r1 := miss.Dot(u1)
		r2 := miss.Dot(u2)
		a := (g22*r1 - g12*r2) / det
		b := (g11*r2 - g12*r1) / det

		s1 := clampAbs(a*opts.Epsilon, opts.MaxStep)
		s2 := clampAbs(b*opts.Epsilon, opts.MaxStep)
		v1 = clampAbs(v1+s1, opts.VoltLimit)
		v2 = clampAbs(v2+s2, opts.VoltLimit)
		lastStep1, lastStep2 = s1, s2

		if abs(s1) < opts.Tol && abs(s2) < opts.Tol {
			return v1, v2, iter, beamEvals, nil
		}
	}
	return v1, v2, opts.MaxIter, beamEvals, ErrNoConverge
}

func clampAbs(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}

// coarseSeed scans a 9×9 voltage grid over ±0.8·limit and returns the pair
// whose beam passes closest to tau (plus the number of model evaluations
// spent), or ok=false if no grid point produces a valid beam. The whole
// sweep is one BeamBatch call over stack-resident SoA buffers: the grid
// fill, the 81 evaluations, and the argmin scan are separated so the
// kernel loop carries no selection branches, while the scan visits the
// results in the exact row-major order the sequential loop compared them
// in (same best-so-far tie behavior, same floats).
func coarseSeed(model *gma.Compiled, tau geom.Vec3, limit float64) (float64, float64, int, bool) {
	const n = 9
	span := 0.8 * limit

	var (
		v1a, v2a   [n * n]float64
		orga, dira [n * n]geom.Vec3
		erra       [n * n]error
	)
	k := 0
	for i := 0; i < n; i++ {
		v1 := -span + 2*span*float64(i)/(n-1)
		for j := 0; j < n; j++ {
			v1a[k] = v1
			v2a[k] = -span + 2*span*float64(j)/(n-1)
			k++
		}
	}
	buf := gma.BeamBatchBuf{V1: v1a[:], V2: v2a[:], Origin: orga[:], Dir: dira[:], Err: erra[:]}
	model.BeamBatch(&buf)

	best1, best2 := 0.0, 0.0
	bestD := -1.0
	for k := 0; k < n*n; k++ {
		if erra[k] != nil {
			continue
		}
		d := buf.Ray(k).DistanceTo(tau)
		if bestD < 0 || d < bestD {
			bestD, best1, best2 = d, v1a[k], v2a[k]
		}
	}
	return best1, best2, n * n, bestD >= 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
