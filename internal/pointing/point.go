package pointing

import (
	"fmt"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/obs"
)

// Voltages are the four GM drive values of the pointing function
// P(Ψ) = ⟨v_tx1, v_tx2, v_rx1, v_rx2⟩.
type Voltages struct {
	TX1, TX2 float64
	RX1, RX2 float64
}

// PointOptions tunes the pointing fixed-point iteration.
type PointOptions struct {
	// Tol is the stop threshold on the largest voltage change per round;
	// the paper uses the minimum GM voltage step (default 0.3 mV).
	Tol float64
	// MaxIter bounds the outer iteration (default 25; the paper observes
	// 2–5 rounds).
	MaxIter int
	// GPrime configures the inner G′ solves.
	GPrime GPrimeOptions
	// Metrics, when non-nil, receives per-solve observability: solve and
	// failure counts plus P / G′ iteration histograms.
	Metrics *Metrics
}

// Metrics holds the pointing solver's observability instruments. All
// fields are nil-safe, so a nil *Metrics (or one built from a nil
// registry) costs one branch per solve.
type Metrics struct {
	Solves      *obs.Counter
	Failures    *obs.Counter
	Iterations  *obs.Histogram // outer P rounds per solve
	GPrimeIters *obs.Histogram // total inner G′ iterations per solve
	BeamEvals   *obs.Counter   // forward model (G) evaluations
}

// NewMetrics registers the pointing instruments in reg (nil reg → nil
// metrics, all recording disabled).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Solves: reg.Counter("cyclops_pointing_solves_total",
			"Pointing function P solves attempted."),
		Failures: reg.Counter("cyclops_pointing_failures_total",
			"P solves that stopped without converging."),
		Iterations: reg.Histogram("cyclops_pointing_iterations",
			"Outer fixed-point rounds per P solve (paper: 2-5).",
			[]float64{1, 2, 3, 4, 5, 6, 8, 10, 15, 25}),
		GPrimeIters: reg.Histogram("cyclops_pointing_gprime_iterations",
			"Total inner G' iterations per P solve, both terminals (paper: 2-4 per solve).",
			[]float64{2, 4, 6, 8, 12, 16, 24, 32, 48, 64}),
		BeamEvals: reg.Counter("cyclops_pointing_beam_evals_total",
			"Forward GMA model (G) evaluations consumed by P solves."),
	}
}

func (m *Metrics) record(res Result, err error) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	if err != nil {
		m.Failures.Inc()
	}
	m.Iterations.Observe(float64(res.Iterations))
	m.GPrimeIters.Observe(float64(res.GPrimeIterations))
	m.BeamEvals.Add(float64(res.BeamEvals))
}

func (o *PointOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 0.3e-3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 25
	}
}

// Validate rejects option sets defaulting cannot repair: like
// GPrimeOptions.Validate, Tol must be a finite, non-negative voltage
// step (zero means default; NaN/Inf would silently break the fixed-point
// convergence test), and the embedded G′ options must validate too.
func (o PointOptions) Validate() error {
	if !finite(o.Tol) || o.Tol < 0 {
		//cyclops:alloc-ok cold validation failure: formats the poisoned Tol once, then the run aborts
		return fmt.Errorf("pointing: invalid PointOptions: Tol %v (want a finite, non-negative voltage step; 0 means default)", o.Tol)
	}
	return o.GPrime.Validate()
}

// Result reports a pointing solve.
type Result struct {
	V Voltages
	// Iterations is the number of outer fixed-point rounds.
	Iterations int
	// GPrimeIterations is the total inner G′ iterations across both
	// terminals and all rounds.
	GPrimeIterations int
	// BeamEvals is the total number of forward model (G) evaluations the
	// solve consumed, including coarse seeds and the final residual
	// check — the unit of work the paper's 1–2 ms TP budget is spent on.
	BeamEvals int
	// Residual is the final coincidence error d(p_t,τ_r)+d(p_r,τ_t)
	// implied by the models, meters.
	Residual float64
}

// Point computes P for one VRH position on uncompiled models: it compiles
// both and delegates to PointCompiled. Hot loops (the core engine calls P
// on every tracking report) should compile the models themselves — the TX
// model once per run, the RX model once per report — and call
// PointCompiled.
func Point(gt, gr gma.Params, start Voltages, opts PointOptions) (Result, error) {
	ct, cr := gt.Compile(), gr.Compile()
	return PointCompiled(&ct, &cr, start, opts)
}

// PointCompiled computes P for one VRH position: given the compiled
// TX-GMA and RX-GMA models expressed in a common frame (VR-space; the
// caller applies the learned §4.2 mappings and the current tracking
// report), find the four voltages that align the beam.
//
// It runs the §4.3 fixed-point loop over Lemma 1's coincidence condition:
// each terminal's beam origin is the other terminal's target, solved with
// G′, until the voltages stop moving.
//
//cyclops:hotpath zero-alloc contract pinned by TestPointCompiledZeroAllocs and make alloc-check
func PointCompiled(gt, gr *gma.Compiled, start Voltages, opts PointOptions) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{V: start}, err
	}
	opts.defaults()
	res, err := point(gt, gr, start, opts)
	opts.Metrics.record(res, err)
	return res, err
}

// Finite reports whether all four voltages are finite (no NaN/Inf).
func (v Voltages) Finite() bool {
	return finite(v.TX1) && finite(v.TX2) && finite(v.RX1) && finite(v.RX2)
}

func point(gt, gr *gma.Compiled, start Voltages, opts PointOptions) (Result, error) {
	v := start
	res := Result{V: v}

	// Refuse poisoned starts before any model evaluation: a NaN voltage
	// would otherwise survive the whole fixed-point loop (NaN compares
	// false against every tolerance) and reach the galvo DAQ unchecked.
	if !v.Finite() {
		return res, ErrNonFiniteStart
	}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		res.Iterations = iter

		bt, err := gt.Beam(v.TX1, v.TX2)
		res.BeamEvals++
		if err != nil {
			//cyclops:alloc-ok cold error return: wraps the model cause only when the solve fails
			return res, fmt.Errorf("pointing: TX model: %w", err)
		}
		br, err := gr.Beam(v.RX1, v.RX2)
		res.BeamEvals++
		if err != nil {
			//cyclops:alloc-ok cold error return: wraps the model cause only when the solve fails
			return res, fmt.Errorf("pointing: RX model: %w", err)
		}

		// Each origin becomes the other terminal's target point.
		nt1, nt2, it, et, err := gprime(gt, br.Origin, v.TX1, v.TX2, opts.GPrime)
		res.GPrimeIterations += it
		res.BeamEvals += et
		if err != nil {
			//cyclops:alloc-ok cold error return: wraps the solver cause only when the solve fails
			return res, fmt.Errorf("pointing: G'_T: %w", err)
		}
		nr1, nr2, ir, er, err := gprime(gr, bt.Origin, v.RX1, v.RX2, opts.GPrime)
		res.GPrimeIterations += ir
		res.BeamEvals += er
		if err != nil {
			//cyclops:alloc-ok cold error return: wraps the solver cause only when the solve fails
			return res, fmt.Errorf("pointing: G'_R: %w", err)
		}

		delta := max4(abs(nt1-v.TX1), abs(nt2-v.TX2), abs(nr1-v.RX1), abs(nr2-v.RX2))
		v = Voltages{TX1: nt1, TX2: nt2, RX1: nr1, RX2: nr2}
		if delta < opts.Tol {
			res.V = v
			res.Residual = coincidenceResidual(gt, gr, v)
			res.BeamEvals += 2
			return res, nil
		}
	}
	res.V = v
	res.Residual = coincidenceResidual(gt, gr, v)
	res.BeamEvals += 2
	return res, ErrNoConverge
}

// coincidenceResidual evaluates the Lemma 1 error d(p_t, τ_r) + d(p_r, τ_t)
// for the given models and voltages: each beam should pass through the
// other's origin.
func coincidenceResidual(gt, gr *gma.Compiled, v Voltages) float64 {
	bt, err1 := gt.Beam(v.TX1, v.TX2)
	br, err2 := gr.Beam(v.RX1, v.RX2)
	if err1 != nil || err2 != nil {
		return -1
	}
	// τ_r is where the RX (imaginary) beam meets the TX origin's
	// neighborhood and vice versa; measured as each beam's distance of
	// closest approach to the other's origin.
	return bt.DistanceTo(br.Origin) + br.DistanceTo(bt.Origin)
}

// CoincidenceResidual is the exported form used by tests and the
// calibration error analysis.
func CoincidenceResidual(gt, gr gma.Params, v Voltages) float64 {
	ct, cr := gt.Compile(), gr.Compile()
	return coincidenceResidual(&ct, &cr, v)
}

// InVRSpace places a K-space GMA model into VR-space. For the TX terminal
// the mapping is the fixed learned pose M_tx; for the RX terminal the
// K-space rides on the headset, so the mapping composes the current
// tracking report Ψ with the learned relative pose M_rx (§4.2 footnote 8).
func InVRSpace(kspaceModel gma.Params, mapping geom.Pose) gma.Params {
	return kspaceModel.Transformed(mapping)
}

// RXInVRSpace maps the RX K-space model into VR-space for the tracking
// report psi: K-space → tracked frame (learned M_rx) → VR-space (Ψ).
func RXInVRSpace(kspaceModel gma.Params, mrx geom.Pose, psi geom.Pose) gma.Params {
	return kspaceModel.Transformed(psi.Compose(mrx))
}

func max4(a, b, c, d float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}
