package pointing

import (
	"math"
	"testing"
)

// TestOptionsValidateTol pins the regression the Validate gate exists
// for: a NaN Tol used to slip through the `Tol <= 0` defaulting (NaN
// compares false against everything), leaving a tolerance that no step
// magnitude could ever satisfy — every solve silently burned MaxIter
// iterations and returned ErrNoConverge. Non-finite and negative
// tolerances must now be rejected at the door by both option types and
// both solver entry points.
func TestOptionsValidateTol(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.3e-3, -1}
	good := []float64{0, 0.3e-3, 1e-6}

	for _, tol := range bad {
		if err := (GPrimeOptions{Tol: tol}).Validate(); err == nil {
			t.Errorf("GPrimeOptions{Tol: %v}.Validate() = nil, want error", tol)
		}
		if err := (PointOptions{Tol: tol}).Validate(); err == nil {
			t.Errorf("PointOptions{Tol: %v}.Validate() = nil, want error", tol)
		}
		// A bad G′ Tol must fail PointOptions validation too (the P
		// solver hands its GPrime options to every inner solve).
		if err := (PointOptions{GPrime: GPrimeOptions{Tol: tol}}).Validate(); err == nil {
			t.Errorf("PointOptions{GPrime.Tol: %v}.Validate() = nil, want error", tol)
		}
	}
	for _, tol := range good {
		if err := (GPrimeOptions{Tol: tol}).Validate(); err != nil {
			t.Errorf("GPrimeOptions{Tol: %v}.Validate() = %v, want nil", tol, err)
		}
		if err := (PointOptions{Tol: tol}).Validate(); err != nil {
			t.Errorf("PointOptions{Tol: %v}.Validate() = %v, want nil", tol, err)
		}
	}
}

// TestSolversRejectInvalidTol checks the gate is actually wired into the
// solver entry points: a poisoned tolerance fails immediately (zero
// iterations consumed) instead of shaping the solve.
func TestSolversRejectInvalidTol(t *testing.T) {
	ct, cr, v, tau := warmFixture(t)

	_, _, iters, err := GPrimeCompiled(&ct, tau, v.TX1, v.TX2, GPrimeOptions{Tol: math.NaN()})
	if err == nil {
		t.Fatal("GPrimeCompiled accepted a NaN Tol")
	}
	if iters != 0 {
		t.Fatalf("GPrimeCompiled consumed %d iterations before rejecting a NaN Tol", iters)
	}

	res, err := PointCompiled(&ct, &cr, v, PointOptions{Tol: math.Inf(1)})
	if err == nil {
		t.Fatal("PointCompiled accepted an infinite Tol")
	}
	if res.Iterations != 0 || res.BeamEvals != 0 {
		t.Fatalf("PointCompiled consumed work (%d iters, %d evals) before rejecting an infinite Tol",
			res.Iterations, res.BeamEvals)
	}

	if _, err := PointCompiled(&ct, &cr, v, PointOptions{GPrime: GPrimeOptions{Tol: -1}}); err == nil {
		t.Fatal("PointCompiled accepted a negative G' Tol")
	}
}
