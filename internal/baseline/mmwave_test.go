package baseline

import (
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
)

func handMotion(seed int64) motion.Program {
	return &motion.HandHeld{
		Base:       link.DefaultHeadsetPose(),
		MaxLinear:  0.14,
		MaxAngular: 0.33,
		Len:        15 * time.Second,
		Seed:       seed,
	}
}

func TestMmWaveSurvivesNormalMotion(t *testing.T) {
	// The baseline's whole appeal: a 3° beam shrugs off head motion that
	// stresses the optical link.
	res := NewMmWave().Run(handMotion(1), nil)
	if res.UpFraction < 0.999 {
		t.Errorf("mmWave up fraction %.3f under normal motion", res.UpFraction)
	}
	if res.MeanGoodputGbps < 4.0 {
		t.Errorf("mmWave goodput %.2f Gbps, want ≈4.6", res.MeanGoodputGbps)
	}
}

func TestMmWaveCannotExceedItsPeak(t *testing.T) {
	// And its whole problem: 4.6 Gbps is the ceiling — half a 10G FSO
	// link, a fifth of the 25G one (§1).
	res := NewMmWave().Run(handMotion(2), nil)
	if res.MeanGoodputGbps > 7 {
		t.Errorf("mmWave goodput %.2f Gbps — model too generous", res.MeanGoodputGbps)
	}
	for _, w := range res.Windows {
		if w.Gbps > 7 {
			t.Fatalf("window at %v = %.2f Gbps", w.Start, w.Gbps)
		}
	}
}

func TestMmWaveBlockageHurts(t *testing.T) {
	blocked := func(at time.Duration) bool {
		return (at/time.Second)%4 >= 2 // blocked half the time
	}
	clear := NewMmWave().Run(handMotion(3), nil)
	obstructed := NewMmWave().Run(handMotion(3), blocked)
	if obstructed.MeanGoodputGbps > clear.MeanGoodputGbps*0.7 {
		t.Errorf("25 dB body blockage barely hurt: %.2f vs %.2f Gbps",
			obstructed.MeanGoodputGbps, clear.MeanGoodputGbps)
	}
}

func TestMmWaveStaleBeamDegrades(t *testing.T) {
	// With beam training disabled for seconds at a time, a walking user
	// leaves the 3° lobe.
	l := NewMmWave()
	l.TrainInterval = 10 * time.Second
	prog := motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.4,
		StartSpeed: 0.3,
		SpeedStep:  0,
		Strokes:    4,
		Dwell:      100 * time.Millisecond,
	}
	res := l.Run(prog, nil)
	if res.MeanGoodputGbps > 4.0 {
		t.Errorf("stale beam still delivered %.2f Gbps", res.MeanGoodputGbps)
	}
}

func TestGoodputLadderMonotone(t *testing.T) {
	l := NewMmWave()
	h := link.DefaultHeadsetPose().Trans
	l.aim = h.Sub(l.APPosition).Unit()
	aligned := l.goodputAt(h, false)
	blockedRate := l.goodputAt(h, true)
	if aligned != l.PeakGoodputGbps {
		t.Errorf("aligned rate %.2f", aligned)
	}
	if blockedRate >= aligned {
		t.Error("blockage did not reduce rate")
	}
	// Degenerate geometry.
	if g := l.goodputAt(l.APPosition, false); g != 0 {
		t.Errorf("zero-range goodput %.2f", g)
	}
}
