package baseline

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/obs"
)

func handMotion(seed int64) motion.Program {
	return &motion.HandHeld{
		Base:       link.DefaultHeadsetPose(),
		MaxLinear:  0.14,
		MaxAngular: 0.33,
		Len:        15 * time.Second,
		Seed:       seed,
	}
}

func TestMmWaveSurvivesNormalMotion(t *testing.T) {
	// The baseline's whole appeal: a 3° beam shrugs off head motion that
	// stresses the optical link.
	res := NewMmWave().Run(handMotion(1), nil)
	if res.UpFraction < 0.999 {
		t.Errorf("mmWave up fraction %.3f under normal motion", res.UpFraction)
	}
	if res.MeanGoodputGbps < 4.0 {
		t.Errorf("mmWave goodput %.2f Gbps, want ≈4.6", res.MeanGoodputGbps)
	}
}

func TestMmWaveCannotExceedItsPeak(t *testing.T) {
	// And its whole problem: 4.6 Gbps is the ceiling — half a 10G FSO
	// link, a fifth of the 25G one (§1).
	res := NewMmWave().Run(handMotion(2), nil)
	if res.MeanGoodputGbps > 7 {
		t.Errorf("mmWave goodput %.2f Gbps — model too generous", res.MeanGoodputGbps)
	}
	for _, w := range res.Windows {
		if w.Gbps > 7 {
			t.Fatalf("window at %v = %.2f Gbps", w.Start, w.Gbps)
		}
	}
}

func TestMmWaveBlockageHurts(t *testing.T) {
	blocked := func(at time.Duration) bool {
		return (at/time.Second)%4 >= 2 // blocked half the time
	}
	clear := NewMmWave().Run(handMotion(3), nil)
	obstructed := NewMmWave().Run(handMotion(3), blocked)
	if obstructed.MeanGoodputGbps > clear.MeanGoodputGbps*0.7 {
		t.Errorf("25 dB body blockage barely hurt: %.2f vs %.2f Gbps",
			obstructed.MeanGoodputGbps, clear.MeanGoodputGbps)
	}
}

func TestMmWaveStaleBeamDegrades(t *testing.T) {
	// With beam training disabled for seconds at a time, a walking user
	// leaves the 3° lobe.
	l := NewMmWave()
	l.TrainInterval = 10 * time.Second
	prog := motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.4,
		StartSpeed: 0.3,
		SpeedStep:  0,
		Strokes:    4,
		Dwell:      100 * time.Millisecond,
	}
	res := l.Run(prog, nil)
	if res.MeanGoodputGbps > 4.0 {
		t.Errorf("stale beam still delivered %.2f Gbps", res.MeanGoodputGbps)
	}
}

func TestGoodputLadderMonotone(t *testing.T) {
	l := NewMmWave()
	h := link.DefaultHeadsetPose().Trans
	l.aim = h.Sub(l.APPosition).Unit()
	aligned := l.goodputAt(h, false)
	blockedRate := l.goodputAt(h, true)
	if aligned != l.PeakGoodputGbps {
		t.Errorf("aligned rate %.2f", aligned)
	}
	if blockedRate >= aligned {
		t.Error("blockage did not reduce rate")
	}
	// Degenerate geometry.
	if g := l.goodputAt(l.APPosition, false); g != 0 {
		t.Errorf("zero-range goodput %.2f", g)
	}
}

func TestMmWaveValidate(t *testing.T) {
	if err := NewMmWave().Validate(); err != nil {
		t.Fatalf("default link must validate: %v", err)
	}
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*MmWaveLink)
	}{
		{"nan AP position", func(l *MmWaveLink) { l.APPosition = geom.V(0, nan, 2) }},
		{"inf AP position", func(l *MmWaveLink) { l.APPosition = geom.V(math.Inf(1), 0, 2) }},
		{"zero peak goodput", func(l *MmWaveLink) { l.PeakGoodputGbps = 0 }},
		{"negative peak goodput", func(l *MmWaveLink) { l.PeakGoodputGbps = -1 }},
		{"nan peak goodput", func(l *MmWaveLink) { l.PeakGoodputGbps = nan }},
		{"zero beamwidth", func(l *MmWaveLink) { l.BeamWidth = 0 }},
		{"inf beamwidth", func(l *MmWaveLink) { l.BeamWidth = math.Inf(1) }},
		{"zero train interval", func(l *MmWaveLink) { l.TrainInterval = 0 }},
		{"negative train interval", func(l *MmWaveLink) { l.TrainInterval = -time.Second }},
		{"negative blockage loss", func(l *MmWaveLink) { l.BlockageLossDB = -5 }},
		{"nan blockage loss", func(l *MmWaveLink) { l.BlockageLossDB = nan }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewMmWave()
			tc.mutate(l)
			if err := l.Validate(); err == nil {
				t.Error("bad config must be rejected")
			}
		})
	}
}

// TestMmWaveStepMatchesRun: the Step/Reset state machine the hybrid layer
// drives must reproduce Run's loop exactly.
func TestMmWaveStepMatchesRun(t *testing.T) {
	prog := handMotion(3)
	blocked := func(at time.Duration) bool {
		return at > 4*time.Second && at < 5*time.Second
	}
	want := NewMmWave().Run(prog, blocked)

	l := NewMmWave()
	l.Reset()
	const tick = time.Millisecond
	var ticks, up int
	var sum float64
	for at := time.Duration(0); at <= prog.Duration(); at += tick {
		g := l.Step(at, prog.Pose(at).Trans, blocked(at))
		if g > 0 {
			up++
		}
		sum += g
		ticks++
	}
	gotUp := float64(up) / float64(ticks)
	gotMean := sum / float64(ticks)
	if gotUp != want.UpFraction || gotMean != want.MeanGoodputGbps {
		t.Fatalf("Step loop: up %v mean %v, Run: up %v mean %v",
			gotUp, gotMean, want.UpFraction, want.MeanGoodputGbps)
	}
}

// TestMmWaveMetricsOnlyWithRegistry: a nil registry yields nil metrics
// and a metrics-free run; a real registry records goodput, retrains, and
// the blockage gauge under cyclops_mmwave_* names.
func TestMmWaveMetricsOnlyWithRegistry(t *testing.T) {
	if m := NewMmWaveMetrics(nil); m != nil {
		t.Fatal("NewMmWaveMetrics(nil) must return nil")
	}

	reg := obs.NewRegistry()
	l := NewMmWave()
	l.Metrics = NewMmWaveMetrics(reg)
	prog := handMotion(4)
	l.Run(prog, func(at time.Duration) bool { return at < time.Second })

	exp := reg.Exposition()
	wantRetrains := int(prog.Duration()/l.TrainInterval) + 1
	if want := fmt.Sprintf("cyclops_mmwave_retrain_total %d", wantRetrains); !strings.Contains(exp, want) {
		t.Errorf("exposition missing %q:\n%s", want, exp)
	}
	ticks := int(prog.Duration()/time.Millisecond) + 1
	if want := fmt.Sprintf("cyclops_mmwave_goodput_gbps_count %d", ticks); !strings.Contains(exp, want) {
		t.Errorf("exposition missing %q:\n%s", want, exp)
	}
	// The last tick is unblocked, so the gauge must have settled at 0.
	if !strings.Contains(exp, "cyclops_mmwave_blockage_loss_db 0") {
		t.Errorf("blockage gauge not settled at 0:\n%s", exp)
	}
}
