// Package baseline implements the comparison system the paper positions
// itself against (§1, §2.1): a 60 GHz mmWave link in the IEEE 802.11ad
// class, as used by the HTC Vive wireless adapter and the research
// prototypes of [22, 60].
//
// The mmWave model is deliberately favorable to mmWave: a 3°-beamwidth
// phased array realigns by codebook training every 100 ms and tolerates
// every head speed in this repository's motion programs without breaking
// a sweat. What it cannot do is carry tens of gigabits — the entire point
// of the paper — and it shares FSO's vulnerability to body blockage while
// lacking its beam-steering-around-it story.
package baseline

import (
	"math"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/netem"
)

// MmWaveLink models an 802.11ad-class 60 GHz link between a ceiling access
// point and the headset.
type MmWaveLink struct {
	// APPosition is the access point location.
	APPosition geom.Vec3
	// PeakGoodputGbps is the goodput at the top MCS; 802.11ad single
	// carrier peaks at 4.6 Gbps PHY ≈ 6.0 Gbps with channel bonding
	// claims, but measured prototypes deliver less. Default 4.6.
	PeakGoodputGbps float64
	// BeamWidth is the array's 3 dB beamwidth, radians (default 3°).
	BeamWidth float64
	// TrainInterval is the beam-refinement cadence (default 100 ms).
	TrainInterval time.Duration
	// BlockageLossDB is the penalty of a human-body obstruction
	// (20–30 dB at 60 GHz; enough to drop the top MCS ladder entirely).
	BlockageLossDB float64

	// aim is the current beam direction (world frame, from the AP).
	aim geom.Vec3
}

// NewMmWave builds the default 802.11ad baseline mounted at the Cyclops
// TX position.
func NewMmWave() *MmWaveLink {
	return &MmWaveLink{
		APPosition:      geom.V(0, 0, link.CeilingHeight),
		PeakGoodputGbps: 4.6,
		BeamWidth:       3 * math.Pi / 180,
		TrainInterval:   100 * time.Millisecond,
		BlockageLossDB:  25,
	}
}

// goodputAt returns the instantaneous goodput toward a headset at hpos
// given the current beam aim and blockage state: the 802.11ad MCS ladder
// reduced to an SNR-step function of pointing error and obstruction.
func (l *MmWaveLink) goodputAt(hpos geom.Vec3, blocked bool) float64 {
	dir := hpos.Sub(l.APPosition)
	if dir.IsZero() {
		return 0
	}
	missAngle := dir.Unit().AngleTo(l.aim)

	// SNR loss: quadratic within the main lobe, cliff outside.
	var lossDB float64
	switch {
	case missAngle <= l.BeamWidth/2:
		r := missAngle / (l.BeamWidth / 2)
		lossDB = 3 * r * r
	case missAngle <= l.BeamWidth:
		lossDB = 12
	default:
		lossDB = 40
	}
	if blocked {
		lossDB += l.BlockageLossDB
	}

	// MCS ladder: full rate with ≤3 dB of headroom loss, stepping down
	// to zero past ~20 dB.
	switch {
	case lossDB <= 3:
		return l.PeakGoodputGbps
	case lossDB <= 6:
		return l.PeakGoodputGbps * 0.7
	case lossDB <= 12:
		return l.PeakGoodputGbps * 0.4
	case lossDB <= 20:
		return l.PeakGoodputGbps * 0.15
	default:
		return 0
	}
}

// Result summarizes a baseline run.
type Result struct {
	UpFraction      float64
	MeanGoodputGbps float64
	Windows         []netem.Window
}

// Run drives the mmWave link through a motion program. blocked, when
// non-nil, reports body blockage over time (share it with a Cyclops
// occlusion run for an apples-to-apples comparison).
func (l *MmWaveLink) Run(prog motion.Program, blocked func(t time.Duration) bool) Result {
	const tick = time.Millisecond
	dur := prog.Duration()
	stream := netem.NewStream()
	// mmWave reconnects fast after an outage (no optical re-lock);
	// model a short MAC-level recovery.
	stream.RampTime = 30 * time.Millisecond

	l.aim = prog.Pose(0).Trans.Sub(l.APPosition).Unit()
	var nextTrain time.Duration

	var ticks, up int
	var sum float64
	for at := time.Duration(0); at <= dur; at += tick {
		hpos := prog.Pose(at).Trans
		if at >= nextTrain {
			// Beam training snaps the aim back onto the headset.
			l.aim = hpos.Sub(l.APPosition).Unit()
			nextTrain = at + l.TrainInterval
		}
		isBlocked := blocked != nil && blocked(at)
		g := l.goodputAt(hpos, isBlocked)
		stream.Tick(at, tick, g > 0, g)
		if g > 0 {
			up++
		}
		sum += g
		ticks++
	}
	res := Result{Windows: stream.Finish()}
	if ticks > 0 {
		res.UpFraction = float64(up) / float64(ticks)
		res.MeanGoodputGbps = sum / float64(ticks)
	}
	return res
}
