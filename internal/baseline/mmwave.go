// Package baseline implements the comparison system the paper positions
// itself against (§1, §2.1): a 60 GHz mmWave link in the IEEE 802.11ad
// class, as used by the HTC Vive wireless adapter and the research
// prototypes of [22, 60].
//
// The mmWave model is deliberately favorable to mmWave: a 3°-beamwidth
// phased array realigns by codebook training every 100 ms and tolerates
// every head speed in this repository's motion programs without breaking
// a sweat. What it cannot do is carry tens of gigabits — the entire point
// of the paper — and it shares FSO's vulnerability to body blockage while
// lacking its beam-steering-around-it story.
package baseline

import (
	"fmt"
	"math"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/netem"
	"cyclops/internal/obs"
)

// MmWaveLink models an 802.11ad-class 60 GHz link between a ceiling access
// point and the headset.
type MmWaveLink struct {
	// APPosition is the access point location.
	APPosition geom.Vec3
	// PeakGoodputGbps is the goodput at the top MCS; 802.11ad single
	// carrier peaks at 4.6 Gbps PHY ≈ 6.0 Gbps with channel bonding
	// claims, but measured prototypes deliver less. Default 4.6.
	PeakGoodputGbps float64
	// BeamWidth is the array's 3 dB beamwidth, radians (default 3°).
	BeamWidth float64
	// TrainInterval is the beam-refinement cadence (default 100 ms).
	TrainInterval time.Duration
	// BlockageLossDB is the penalty of a human-body obstruction
	// (20–30 dB at 60 GHz; enough to drop the top MCS ladder entirely).
	BlockageLossDB float64

	// Metrics, when non-nil, instruments every Step (and therefore Run).
	Metrics *MmWaveMetrics

	// aim is the current beam direction (world frame, from the AP).
	aim geom.Vec3
	// nextTrain is when the next beam-refinement cycle fires.
	nextTrain time.Duration
}

// NewMmWave builds the default 802.11ad baseline mounted at the Cyclops
// TX position.
func NewMmWave() *MmWaveLink {
	return &MmWaveLink{
		APPosition:      geom.V(0, 0, link.CeilingHeight),
		PeakGoodputGbps: 4.6,
		BeamWidth:       3 * math.Pi / 180,
		TrainInterval:   100 * time.Millisecond,
		BlockageLossDB:  25,
	}
}

// MmWaveMetrics instruments the mmWave baseline. Defined once here (the
// obs registry panics on conflicting re-registration): every consumer —
// the standalone Run comparison and core.Run's hybrid secondary — records
// under these names.
type MmWaveMetrics struct {
	// Goodput is the per-tick instantaneous goodput distribution, Gbps.
	Goodput *obs.Histogram
	// Retrains counts beam-refinement (codebook training) cycles.
	Retrains *obs.Counter
	// BlockageLoss is the blockage penalty applied at the latest tick, dB
	// (0 when the body is clear of the path).
	BlockageLoss *obs.Gauge
}

// MmWaveGoodputBuckets are the cyclops_mmwave_goodput_gbps histogram
// bounds, straddling the 802.11ad MCS ladder steps (0.15/0.4/0.7/1.0 ×
// the 4.6 Gbps peak).
var MmWaveGoodputBuckets = []float64{0.5, 1, 2, 3, 4, 5}

// NewMmWaveMetrics registers the mmWave instruments in reg (nil reg → nil
// metrics, recording disabled).
func NewMmWaveMetrics(reg *obs.Registry) *MmWaveMetrics {
	if reg == nil {
		return nil
	}
	return &MmWaveMetrics{
		Goodput: reg.Histogram("cyclops_mmwave_goodput_gbps",
			"Instantaneous mmWave goodput per tick (802.11ad MCS ladder).",
			MmWaveGoodputBuckets),
		Retrains: reg.Counter("cyclops_mmwave_retrain_total",
			"mmWave beam-refinement (codebook training) cycles."),
		BlockageLoss: reg.Gauge("cyclops_mmwave_blockage_loss_db",
			"Body-blockage penalty applied at the latest tick."),
	}
}

// Validate rejects non-finite or non-positive link parameters, mirroring
// core.RunOptions.Validate so a bad config fails loudly at arm time
// instead of producing NaN goodput mid-run.
func (l *MmWaveLink) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	if !finite(l.APPosition.X) || !finite(l.APPosition.Y) || !finite(l.APPosition.Z) {
		return fmt.Errorf("baseline: non-finite APPosition %+v", l.APPosition)
	}
	if !(l.PeakGoodputGbps > 0) || !finite(l.PeakGoodputGbps) {
		return fmt.Errorf("baseline: PeakGoodputGbps %v must be positive and finite", l.PeakGoodputGbps)
	}
	if !(l.BeamWidth > 0) || !finite(l.BeamWidth) {
		return fmt.Errorf("baseline: BeamWidth %v must be positive and finite", l.BeamWidth)
	}
	if l.TrainInterval <= 0 {
		return fmt.Errorf("baseline: TrainInterval %v must be positive", l.TrainInterval)
	}
	if !(l.BlockageLossDB >= 0) || !finite(l.BlockageLossDB) {
		return fmt.Errorf("baseline: BlockageLossDB %v must be non-negative and finite", l.BlockageLossDB)
	}
	return nil
}

// goodputAt returns the instantaneous goodput toward a headset at hpos
// given the current beam aim and blockage state: the 802.11ad MCS ladder
// reduced to an SNR-step function of pointing error and obstruction.
func (l *MmWaveLink) goodputAt(hpos geom.Vec3, blocked bool) float64 {
	dir := hpos.Sub(l.APPosition)
	if dir.IsZero() {
		return 0
	}
	missAngle := dir.Unit().AngleTo(l.aim)

	// SNR loss: quadratic within the main lobe, cliff outside.
	var lossDB float64
	switch {
	case missAngle <= l.BeamWidth/2:
		r := missAngle / (l.BeamWidth / 2)
		lossDB = 3 * r * r
	case missAngle <= l.BeamWidth:
		lossDB = 12
	default:
		lossDB = 40
	}
	if blocked {
		lossDB += l.BlockageLossDB
	}

	// MCS ladder: full rate with ≤3 dB of headroom loss, stepping down
	// to zero past ~20 dB.
	switch {
	case lossDB <= 3:
		return l.PeakGoodputGbps
	case lossDB <= 6:
		return l.PeakGoodputGbps * 0.7
	case lossDB <= 12:
		return l.PeakGoodputGbps * 0.4
	case lossDB <= 20:
		return l.PeakGoodputGbps * 0.15
	default:
		return 0
	}
}

// Result summarizes a baseline run.
type Result struct {
	UpFraction      float64
	MeanGoodputGbps float64
	Windows         []netem.Window
}

// Reset rewinds the link state machine to the start of a run: the beam
// unaimed and the first training cycle due immediately.
func (l *MmWaveLink) Reset() {
	l.aim = geom.Vec3{}
	l.nextTrain = 0
}

// Step advances the link one tick: trains the beam when the refinement
// cycle is due, then returns the instantaneous goodput toward a headset
// at hpos under the given blockage state. Call Reset before the first
// Step of a run.
func (l *MmWaveLink) Step(at time.Duration, hpos geom.Vec3, blocked bool) float64 {
	if at >= l.nextTrain {
		// Beam training snaps the aim back onto the headset.
		l.aim = hpos.Sub(l.APPosition).Unit()
		l.nextTrain = at + l.TrainInterval
		if l.Metrics != nil {
			l.Metrics.Retrains.Inc()
		}
	}
	g := l.goodputAt(hpos, blocked)
	if l.Metrics != nil {
		l.Metrics.Goodput.Observe(g)
		var loss float64
		if blocked {
			loss = l.BlockageLossDB
		}
		l.Metrics.BlockageLoss.Set(loss)
	}
	return g
}

// Run drives the mmWave link through a motion program. blocked, when
// non-nil, reports body blockage over time (share it with a Cyclops
// occlusion run for an apples-to-apples comparison).
func (l *MmWaveLink) Run(prog motion.Program, blocked func(t time.Duration) bool) Result {
	const tick = time.Millisecond
	dur := prog.Duration()
	stream := netem.NewStream()
	// mmWave reconnects fast after an outage (no optical re-lock);
	// model a short MAC-level recovery.
	stream.RampTime = 30 * time.Millisecond

	l.Reset()
	var ticks, up int
	var sum float64
	for at := time.Duration(0); at <= dur; at += tick {
		hpos := prog.Pose(at).Trans
		g := l.Step(at, hpos, blocked != nil && blocked(at))
		stream.Tick(at, tick, g > 0, g)
		if g > 0 {
			up++
		}
		sum += g
		ticks++
	}
	res := Result{Windows: stream.Finish()}
	if ticks > 0 {
		res.UpFraction = float64(up) / float64(ticks)
		res.MeanGoodputGbps = sum / float64(ticks)
	}
	return res
}
