// Package vrh simulates the headset's built-in tracking system (VRH-T, §3):
// an Oculus Rift S-class inside-out tracker. The simulator reproduces the
// three properties the paper's TP design has to live with:
//
//  1. Opacity — the reported position is the pose of some unknown interior
//     point of the headset, expressed in an unknown coordinate frame
//     ("VR-space"). Both the frame and the point are hidden fields here;
//     calibration code never reads them.
//  2. Noise — with the headset completely stationary the reported location
//     and orientation wander by up to ~1.79 mm and ~0.41 mrad (§5.2).
//  3. Cadence — reports arrive every 12–13 ms, with ~0.7 % of gaps
//     stretching to 14–15 ms (§5.2).
package vrh

import (
	"math"
	"math/rand"
	"time"

	"cyclops/internal/geom"
)

// Report is one VRH-T tracking report: the pose Ψ of the hidden tracked
// point in the hidden VR-space frame.
type Report struct {
	Pose geom.Pose
	// At is the simulation time the report was produced.
	At time.Duration
}

// Tracker simulates VRH-T for one headset.
type Tracker struct {
	// vrSpace maps world coordinates into the VR-space frame the
	// tracker reports in. Hidden.
	vrSpace geom.Pose
	// offset maps the tracked interior point's frame into the headset
	// frame. Hidden.
	offset geom.Pose

	locSigma float64 // meters, per-axis
	angSigma float64 // radians

	// warpAmp/warpFreq shape the systematic, pose-dependent tracking
	// error: inside-out camera localization is not uniformly accurate
	// across the play space, so the reported position is biased by a
	// smooth spatial field, not just white noise. warpAmp is the peak
	// bias in meters; warpAngAmp the peak orientation bias in radians;
	// warpFreq the field's spatial frequency in rad/m.
	warpAmp    float64
	warpAngAmp float64
	warpFreq   float64

	// motionNoiseLin/motionNoiseAng scale the report noise with headset
	// speed: IMU integration error and camera motion blur make a moving
	// headset's reports markedly worse than the stationary floor. Units:
	// meters of extra 1-σ location noise per (m/s); radians per (rad/s).
	motionNoiseLin float64
	motionNoiseAng float64

	// lastTruth/lastAt let the tracker estimate its own motion.
	lastTruth geom.Pose
	lastAt    time.Duration
	haveLast  bool

	// lastReport remembers the most recent published report so Holdover
	// can replay it (the frozen-pipeline failure mode).
	lastReport Report
	haveReport bool

	rng *rand.Rand
}

// Option configures a Tracker.
type Option func(*Tracker)

// WithNoise overrides the stationary noise (1-σ location in meters,
// orientation in radians).
func WithNoise(loc, ang float64) Option {
	return func(t *Tracker) { t.locSigma, t.angSigma = loc, ang }
}

// WithWarp overrides the systematic pose-dependent tracking bias: peak
// location bias (meters), peak orientation bias (radians), and spatial
// frequency (rad/m). Zeros give an ideally unbiased tracker.
func WithWarp(loc, ang, freq float64) Option {
	return func(t *Tracker) { t.warpAmp, t.warpAngAmp, t.warpFreq = loc, ang, freq }
}

// WithMotionNoise overrides the speed-proportional noise growth: extra 1-σ
// location noise per m/s of linear speed and orientation noise per rad/s
// of angular speed. Zeros give speed-independent noise.
func WithMotionNoise(linPerMS, angPerRadS float64) Option {
	return func(t *Tracker) { t.motionNoiseLin, t.motionNoiseAng = linPerMS, angPerRadS }
}

// WithFrames pins the hidden frames (useful for deterministic fixtures).
func WithFrames(vrSpace, offset geom.Pose) Option {
	return func(t *Tracker) { t.vrSpace, t.offset = vrSpace, offset }
}

// New creates a tracker with randomized hidden frames. The VR-space origin
// lands within a couple of meters of the world origin with arbitrary yaw
// (VR runtimes place their origin wherever the guardian setup happened);
// the tracked point sits a few centimeters inside the headset with a small
// attitude offset.
func New(seed int64, opts ...Option) *Tracker {
	rng := rand.New(rand.NewSource(seed))
	randPose := func(posScale, angScale float64) geom.Pose {
		axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if axis.IsZero() {
			axis = geom.V(0, 1, 0)
		}
		return geom.NewPose(
			geom.QuatFromAxisAngle(axis, rng.NormFloat64()*angScale),
			geom.V(rng.NormFloat64()*posScale, rng.NormFloat64()*posScale, rng.NormFloat64()*posScale),
		)
	}
	t := &Tracker{
		vrSpace: randPose(1.0, 0.8),
		offset:  randPose(0.04, 0.15),
		// 4σ ≈ the observed 1.79 mm / 0.41 mrad stationary bounds.
		locSigma: 0.45e-3,
		angSigma: 0.10e-3,
		// A couple of millimeters / a milliradian of smooth spatial
		// bias across the play volume — typical of inside-out
		// localization, and the reason the combined model errors of
		// Table 2 exceed the first-stage errors.
		warpAmp:    1.5e-3,
		warpAngAmp: 1.0e-3,
		warpFreq:   4.0,
		// Moving-headset degradation: ≈8 mm of extra 1-σ location
		// noise per m/s and ≈5 mrad per rad/s. At the Fig 3 envelope
		// (14 cm/s, 19 deg/s) this is ≈1 mm / 1.7 mrad — small; at the
		// speeds where the paper's link drops it dominates, which is
		// precisely why the prototype's tolerated speeds sit where
		// they do rather than at the pure drift-rate limit.
		motionNoiseLin: 9e-3,
		motionNoiseAng: 5e-3,
		rng:            rng,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// warpBias returns the systematic tracking error at a given true world
// position: a smooth sinusoidal field for location, and an orientation
// bias about a position-dependent axis.
func (t *Tracker) warpBias(p geom.Vec3) (geom.Vec3, geom.Quat) {
	if t.warpAmp == 0 && t.warpAngAmp == 0 {
		return geom.Vec3{}, geom.QuatIdentity()
	}
	k := t.warpFreq
	loc := geom.V(
		t.warpAmp*math.Sin(k*p.X+0.9*k*p.Z),
		t.warpAmp*math.Sin(k*p.Y+1.3),
		t.warpAmp*math.Sin(k*p.Z+0.7*k*p.X+2.1),
	)
	ang := t.warpAngAmp * math.Sin(k*(p.X+p.Y)+0.5)
	rot := geom.QuatFromAxisAngle(geom.V(math.Sin(k*p.Y), 1, math.Cos(k*p.X)), ang)
	return loc, rot
}

// Report produces a tracking report for a headset whose true world pose is
// truth, stamped with the given simulation time.
func (t *Tracker) Report(truth geom.Pose, at time.Duration) Report {
	ideal := t.vrSpace.Compose(truth).Compose(t.offset)
	warpT, warpR := t.warpBias(truth.Trans)
	ideal = geom.NewPose(warpR.Mul(ideal.Rot), ideal.Trans.Add(warpT))

	// Estimate current speed from the previous call to scale the noise.
	// Only consecutive reports count (≤100 ms apart) — a long gap means
	// the headset was repositioned and settled, not moving.
	locSigma, angSigma := t.locSigma, t.angSigma
	if t.haveLast && at > t.lastAt && at-t.lastAt <= 100*time.Millisecond {
		dt := (at - t.lastAt).Seconds()
		lin, ang := t.lastTruth.Delta(truth)
		locSigma += t.motionNoiseLin * lin / dt
		angSigma += t.motionNoiseAng * ang / dt
	}
	t.lastTruth, t.lastAt, t.haveLast = truth, at, true

	noiseT := geom.V(
		t.rng.NormFloat64()*locSigma,
		t.rng.NormFloat64()*locSigma,
		t.rng.NormFloat64()*locSigma,
	)
	axis := geom.V(t.rng.NormFloat64(), t.rng.NormFloat64(), t.rng.NormFloat64())
	if axis.IsZero() {
		axis = geom.V(1, 0, 0)
	}
	noiseR := geom.QuatFromAxisAngle(axis, t.rng.NormFloat64()*angSigma)

	rep := Report{
		Pose: geom.NewPose(noiseR.Mul(ideal.Rot), ideal.Trans.Add(noiseT)),
		At:   at,
	}
	t.lastReport, t.haveReport = rep, true
	return rep
}

// Holdover returns what a frozen tracking pipeline publishes: the last
// report's pose re-stamped at the given time — fresh timestamp, stale
// pose. It consumes no randomness, so a freeze window leaves the noise
// stream exactly where a healthy report sequence would resume it. Before
// any report exists it returns an identity-pose report.
func (t *Tracker) Holdover(at time.Duration) Report {
	if !t.haveReport {
		return Report{Pose: geom.PoseIdentity(), At: at}
	}
	rep := t.lastReport
	rep.At = at
	return rep
}

// NextInterval returns the gap until the next tracking report: uniform in
// 12–13 ms, except 0.7 % of the time uniform in 14–15 ms — the measured
// Rift S cadence including the <1 ms control-channel latency (§5.2).
func (t *Tracker) NextInterval() time.Duration {
	if t.rng.Float64() < 0.007 {
		return time.Duration((14 + t.rng.Float64()) * float64(time.Millisecond))
	}
	return time.Duration((12 + t.rng.Float64()) * float64(time.Millisecond))
}

// VRSpace exposes the hidden world→VR-space transform. Test/oracle use
// only: calibration code must learn its effect, never read it.
func (t *Tracker) VRSpace() geom.Pose { return t.vrSpace }

// Offset exposes the hidden tracked-point offset. Test/oracle use only.
func (t *Tracker) Offset() geom.Pose { return t.offset }

// Speeds computes the linear (m/s) and angular (rad/s) speeds implied by
// two consecutive reports — how the paper measures headset speed both for
// the Fig 3 characterization and for the 50 ms speed windows of §5.3.
func Speeds(a, b Report) (linear, angular float64) {
	dt := (b.At - a.At).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	lin, ang := a.Pose.Delta(b.Pose)
	return lin / dt, ang / dt
}
