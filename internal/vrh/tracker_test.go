package vrh

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
)

func TestReportOpacity(t *testing.T) {
	// The report is NOT the true pose: frame and offset are hidden.
	tr := New(1)
	truth := geom.NewPose(geom.QuatIdentity(), geom.V(0.5, 1.6, 0.5))
	rep := tr.Report(truth, 0)
	if rep.Pose.Trans.Dist(truth.Trans) < 1e-3 {
		t.Error("report suspiciously equals the true pose — hidden frames missing")
	}
}

func TestReportConsistentWithHiddenFrames(t *testing.T) {
	tr := New(2, WithNoise(0, 0), WithWarp(0, 0, 0))
	truth := geom.NewPose(geom.QuatFromAxisAngle(geom.V(0, 1, 0), 0.3), geom.V(0.1, 1.5, -0.2))
	rep := tr.Report(truth, 0)
	want := tr.VRSpace().Compose(truth).Compose(tr.Offset())
	lin, ang := rep.Pose.Delta(want)
	if lin > 1e-12 || ang > 1e-9 {
		t.Errorf("noise-free report off by %v m / %v rad", lin, ang)
	}
}

func TestStationaryNoiseBounds(t *testing.T) {
	// §5.2: stationary headset, location varies ≲1.79 mm, orientation
	// ≲0.41 mrad. Collect many reports and check the spread is in that
	// regime (non-zero, bounded).
	tr := New(3)
	truth := geom.NewPose(geom.QuatIdentity(), geom.V(0, 1.6, 0))
	base := tr.Report(truth, 0)
	var maxLin, maxAng float64
	for i := 0; i < 2000; i++ {
		rep := tr.Report(truth, 0)
		lin, ang := base.Pose.Delta(rep.Pose)
		maxLin = math.Max(maxLin, lin)
		maxAng = math.Max(maxAng, ang)
	}
	if maxLin == 0 || maxAng == 0 {
		t.Fatal("no stationary noise")
	}
	if maxLin < 0.5e-3 || maxLin > 4e-3 {
		t.Errorf("stationary location spread = %v m, want ≈1.8 mm", maxLin)
	}
	if maxAng < 0.1e-3 || maxAng > 1.2e-3 {
		t.Errorf("stationary orientation spread = %v rad, want ≈0.4 mrad", maxAng)
	}
}

func TestNextIntervalDistribution(t *testing.T) {
	tr := New(4)
	var slow int
	const n = 20000
	for i := 0; i < n; i++ {
		iv := tr.NextInterval()
		switch {
		case iv >= 12*time.Millisecond && iv <= 13*time.Millisecond:
		case iv >= 14*time.Millisecond && iv <= 15*time.Millisecond:
			slow++
		default:
			t.Fatalf("interval %v outside 12-13/14-15 ms", iv)
		}
	}
	frac := float64(slow) / n
	if frac < 0.003 || frac > 0.012 {
		t.Errorf("slow-report fraction = %v, want ≈0.007", frac)
	}
}

func TestSpeeds(t *testing.T) {
	a := Report{
		Pose: geom.NewPose(geom.QuatIdentity(), geom.V(0, 0, 0)),
		At:   0,
	}
	b := Report{
		Pose: geom.NewPose(geom.QuatFromAxisAngle(geom.V(0, 1, 0), 0.002), geom.V(0.001, 0, 0)),
		At:   10 * time.Millisecond,
	}
	lin, ang := Speeds(a, b)
	if math.Abs(lin-0.1) > 1e-9 {
		t.Errorf("linear speed = %v, want 0.1 m/s", lin)
	}
	if math.Abs(ang-0.2) > 1e-9 {
		t.Errorf("angular speed = %v, want 0.2 rad/s", ang)
	}
	// Degenerate dt.
	if l, a2 := Speeds(b, a); l != 0 || a2 != 0 {
		t.Error("non-positive dt should yield zero speeds")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, b := New(7), New(7)
	truth := geom.NewPose(geom.QuatIdentity(), geom.V(1, 1, 1))
	ra, rb := a.Report(truth, 0), b.Report(truth, 0)
	lin, ang := ra.Pose.Delta(rb.Pose)
	if lin != 0 || ang > 1e-12 {
		t.Error("same seed produced different reports")
	}
}

func TestMotionScaledNoise(t *testing.T) {
	// A headset moving at 0.5 m/s reports with visibly more noise than a
	// stationary one (IMU integration + camera blur).
	spread := func(moving bool) float64 {
		tr := New(9, WithWarp(0, 0, 0))
		var max float64
		pos := geom.V(0, 1.6, 0)
		at := time.Duration(0)
		var prev Report
		for i := 0; i < 500; i++ {
			if moving {
				pos = pos.Add(geom.V(0.00625, 0, 0)) // 0.5 m/s at 12.5 ms
			}
			truth := geom.NewPose(geom.QuatIdentity(), pos)
			rep := tr.Report(truth, at)
			if i > 0 {
				// Deviation of the measured step from the true step.
				lin, _ := prev.Pose.Delta(rep.Pose)
				trueStep := 0.0
				if moving {
					trueStep = 0.00625
				}
				if d := math.Abs(lin - trueStep); d > max {
					max = d
				}
			}
			prev = rep
			at += 12500 * time.Microsecond
		}
		return max
	}
	still := spread(false)
	moving := spread(true)
	if moving < 2*still {
		t.Errorf("motion noise %.4f not ≫ stationary %.4f", moving, still)
	}
}

func TestWithMotionNoiseDisable(t *testing.T) {
	tr := New(10, WithWarp(0, 0, 0), WithMotionNoise(0, 0))
	// Even at speed, noise stays at the stationary floor.
	pos := geom.V(0, 1.6, 0)
	at := time.Duration(0)
	var maxDev float64
	var prev Report
	for i := 0; i < 300; i++ {
		pos = pos.Add(geom.V(0.00625, 0, 0))
		rep := tr.Report(geom.NewPose(geom.QuatIdentity(), pos), at)
		if i > 0 {
			lin, _ := prev.Pose.Delta(rep.Pose)
			if d := math.Abs(lin - 0.00625); d > maxDev {
				maxDev = d
			}
		}
		prev = rep
		at += 12500 * time.Microsecond
	}
	// Pure stationary noise: a few×0.45 mm per axis, differenced.
	if maxDev > 4e-3 {
		t.Errorf("disabled motion noise still grew: %.4f", maxDev)
	}
}

func TestWithFrames(t *testing.T) {
	vr := geom.NewPose(geom.QuatFromAxisAngle(geom.V(0, 1, 0), 1), geom.V(1, 2, 3))
	off := geom.NewPose(geom.QuatIdentity(), geom.V(0.01, 0.02, 0.03))
	tr := New(8, WithFrames(vr, off), WithNoise(0, 0))
	if tr.VRSpace() != vr {
		t.Error("WithFrames did not pin VR-space")
	}
	if tr.Offset() != off {
		t.Error("WithFrames did not pin offset")
	}
}

// Holdover replays the last report with a fresh timestamp and consumes no
// randomness — a freeze window must leave the noise stream untouched.
func TestHoldover(t *testing.T) {
	tr := New(3)
	truth := geom.NewPose(geom.QuatIdentity(), geom.V(0.3, 1.5, 0.4))
	rep := tr.Report(truth, 10*time.Millisecond)

	held := tr.Holdover(20 * time.Millisecond)
	if held.At != 20*time.Millisecond {
		t.Errorf("holdover At = %v, want 20ms", held.At)
	}
	if held.Pose != rep.Pose {
		t.Error("holdover pose differs from the last report")
	}

	// The RNG stream is untouched: a twin tracker that never held over
	// produces bit-identical subsequent reports.
	twin := New(3)
	twin.Report(truth, 10*time.Millisecond)
	a := tr.Report(truth, 30*time.Millisecond)
	b := twin.Report(truth, 30*time.Millisecond)
	if a.Pose != b.Pose {
		t.Error("holdover consumed randomness — subsequent reports diverged")
	}
}

// Before any report exists, Holdover degrades to the identity pose rather
// than inventing data.
func TestHoldoverBeforeFirstReport(t *testing.T) {
	tr := New(4)
	rep := tr.Holdover(5 * time.Millisecond)
	if rep.At != 5*time.Millisecond {
		t.Errorf("At = %v", rep.At)
	}
	if rep.Pose != geom.PoseIdentity() {
		t.Errorf("pose = %v, want identity", rep.Pose)
	}
}
