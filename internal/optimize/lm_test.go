package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func TestLMLinearFit(t *testing.T) {
	// Fit y = a·x + b to exact data.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	f := func(p, out []float64) {
		for i, x := range xs {
			out[i] = p[0]*x + p[1] - ys[i]
		}
	}
	res, err := LeastSquares(f, []float64{0, 0}, len(xs), LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2.5) > 1e-6 || math.Abs(res.X[1]+1.25) > 1e-6 {
		t.Errorf("fit = %v, want [2.5 -1.25]", res.X)
	}
	if res.RMSE > 1e-6 {
		t.Errorf("RMSE = %g", res.RMSE)
	}
}

func TestLMRosenbrockResiduals(t *testing.T) {
	// Rosenbrock as least squares: r1 = 10(y - x²), r2 = 1 - x.
	f := func(p, out []float64) {
		out[0] = 10 * (p[1] - p[0]*p[0])
		out[1] = 1 - p[0]
	}
	res, err := LeastSquares(f, []float64{-1.2, 1}, 2, LMOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Errorf("Rosenbrock min = %v, want [1 1] (%s)", res.X, res.Reason)
	}
}

func TestLMExponentialFitWithNoise(t *testing.T) {
	// Fit y = a·exp(b·x) with noisy samples; recover parameters roughly.
	rng := rand.New(rand.NewSource(1))
	const a, b = 3.0, -0.7
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i) * 0.1
		ys[i] = a*math.Exp(b*xs[i]) + rng.NormFloat64()*0.01
	}
	f := func(p, out []float64) {
		for i := range xs {
			out[i] = p[0]*math.Exp(p[1]*xs[i]) - ys[i]
		}
	}
	res, err := LeastSquares(f, []float64{1, 0}, len(xs), LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-a) > 0.05 || math.Abs(res.X[1]-b) > 0.05 {
		t.Errorf("fit = %v, want [%v %v]", res.X, a, b)
	}
}

func TestLMCostMonotone(t *testing.T) {
	// The accepted cost never exceeds the starting cost.
	f := func(p, out []float64) {
		out[0] = p[0]*p[0] - 2
		out[1] = p[0] + p[1]*p[1] - 3
	}
	start := []float64{5, 5}
	r0 := make([]float64, 2)
	f(start, r0)
	cost0 := half2(r0)
	res, err := LeastSquares(f, start, 2, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > cost0 {
		t.Errorf("final cost %g exceeds initial %g", res.Cost, cost0)
	}
}

func TestLMBadProblem(t *testing.T) {
	f := func(p, out []float64) {}
	if _, err := LeastSquares(f, nil, 3, LMOptions{}); err == nil {
		t.Error("empty x0 accepted")
	}
	if _, err := LeastSquares(f, []float64{1}, 0, LMOptions{}); err == nil {
		t.Error("zero residuals accepted")
	}
	nan := func(p, out []float64) { out[0] = math.NaN() }
	if _, err := LeastSquares(nan, []float64{1}, 1, LMOptions{}); err == nil {
		t.Error("NaN residuals at start accepted")
	}
}

func TestLMDoesNotModifyX0(t *testing.T) {
	f := func(p, out []float64) { out[0] = p[0] - 7 }
	x0 := []float64{0}
	if _, err := LeastSquares(f, x0, 1, LMOptions{}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 0 {
		t.Errorf("x0 modified to %v", x0)
	}
}

func TestSolveInPlace(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	if err := solveInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if err := solveInPlace(a, b); err == nil {
		t.Error("singular system solved without error")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 5}
	if err := solveInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-5) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [5 3]", b)
	}
}
