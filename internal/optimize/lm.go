// Package optimize implements the non-linear optimization routines that the
// paper delegates to SciPy [57]: a Levenberg–Marquardt least-squares solver
// with a numeric Jacobian, and a Nelder–Mead simplex minimizer as a
// derivative-free fallback. Both calibration stages of Cyclops (§4.1 K-space
// fitting, §4.2 joint 12-parameter mapping) run on these.
//
// Everything is pure Go over float64 slices — no external linear-algebra
// dependency. The problem sizes are tiny (≤ 25 parameters, ≤ a few hundred
// residuals), so dense Gaussian elimination with partial pivoting is more
// than adequate.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cyclops/internal/obs"
)

// ResidualFunc evaluates the residual vector for parameter vector x,
// writing len(out) residuals. The fitter minimizes ½·Σ out[i]².
type ResidualFunc func(x []float64, out []float64)

// LMOptions configures LeastSquares.
type LMOptions struct {
	// MaxIter bounds the number of LM iterations (default 200).
	MaxIter int
	// TolFun stops when the relative reduction of the cost falls below
	// this (default 1e-12).
	TolFun float64
	// TolX stops when the step norm relative to the parameter norm falls
	// below this (default 1e-12).
	TolX float64
	// InitLambda is the initial damping factor (default 1e-3).
	InitLambda float64
	// Step is the relative finite-difference step for the numeric
	// Jacobian (default 1e-7).
	Step float64
}

func (o *LMOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.TolFun <= 0 {
		o.TolFun = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-12
	}
	if o.InitLambda <= 0 {
		o.InitLambda = 1e-3
	}
	if o.Step <= 0 {
		o.Step = 1e-7
	}
}

// Result reports the outcome of a fit.
type Result struct {
	X          []float64 // best parameters found
	Cost       float64   // ½·Σ r²  at X
	RMSE       float64   // sqrt(Σ r² / m)
	Iterations int
	// FuncEvals counts residual/objective function evaluations — the
	// calibration cost metric (Jacobians dominate for LM).
	FuncEvals int
	Converged bool
	Reason    string // human-readable stop reason
}

// The solvers publish aggregate eval/fit counts to the process-default
// registry: calibration runs deep inside kspace/vrspace with no registry
// in scope, and the counts are integer-valued so concurrent fits still
// total exactly.
var (
	solverMetricsOnce sync.Once
	lmFits, lmEvals   *obs.Counter
	nmRuns, nmEvals   *obs.Counter
)

func solverMetrics() {
	solverMetricsOnce.Do(func() {
		r := obs.Default()
		lmFits = r.Counter("cyclops_optimize_lm_fits_total",
			"Levenberg-Marquardt fits run (both calibration stages).")
		lmEvals = r.Counter("cyclops_optimize_lm_evals_total",
			"Residual-function evaluations across all LM fits.")
		nmRuns = r.Counter("cyclops_optimize_nm_runs_total",
			"Nelder-Mead minimizations run.")
		nmEvals = r.Counter("cyclops_optimize_nm_evals_total",
			"Objective evaluations across all Nelder-Mead runs.")
	})
}

func (r Result) String() string {
	return fmt.Sprintf("optimize: cost=%.6g rmse=%.6g iters=%d converged=%v (%s)",
		r.Cost, r.RMSE, r.Iterations, r.Converged, r.Reason)
}

// ErrBadProblem is returned for malformed inputs (no parameters, no
// residuals, or a residual function that produces non-finite values at the
// starting point).
var ErrBadProblem = errors.New("optimize: malformed problem")

// LeastSquares minimizes ½·Σ f(x)² with Levenberg–Marquardt starting from
// x0, evaluating m residuals per call. x0 is not modified.
func LeastSquares(f ResidualFunc, x0 []float64, m int, opts LMOptions) (Result, error) {
	solverMetrics()
	evals := 0
	counted := func(x, out []float64) { evals++; f(x, out) }
	res, err := leastSquares(counted, x0, m, opts)
	res.FuncEvals = evals
	lmFits.Inc()
	lmEvals.Add(float64(evals))
	return res, err
}

func leastSquares(f ResidualFunc, x0 []float64, m int, opts LMOptions) (Result, error) {
	opts.defaults()
	n := len(x0)
	if n == 0 || m == 0 {
		return Result{}, ErrBadProblem
	}

	x := append([]float64(nil), x0...)
	r := make([]float64, m)
	f(x, r)
	if !allFinite(r) {
		return Result{}, fmt.Errorf("%w: non-finite residuals at start", ErrBadProblem)
	}
	cost := half2(r)

	jac := newMat(m, n)
	jtj := newMat(n, n)
	a := newMat(n, n)
	g := make([]float64, n)
	step := make([]float64, n)
	xTrial := make([]float64, n)
	rTrial := make([]float64, m)
	rPerturb := make([]float64, m)

	lambda := opts.InitLambda
	res := Result{X: x, Cost: cost}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		res.Iterations = iter

		// Numeric Jacobian by forward differences.
		for j := 0; j < n; j++ {
			h := opts.Step * math.Max(math.Abs(x[j]), 1)
			saved := x[j]
			x[j] = saved + h
			f(x, rPerturb)
			x[j] = saved
			inv := 1 / h
			for i := 0; i < m; i++ {
				jac[i][j] = (rPerturb[i] - r[i]) * inv
			}
		}

		// JᵀJ and gradient Jᵀr.
		for j := 0; j < n; j++ {
			for k := j; k < n; k++ {
				var s float64
				for i := 0; i < m; i++ {
					s += jac[i][j] * jac[i][k]
				}
				jtj[j][k] = s
				jtj[k][j] = s
			}
			var s float64
			for i := 0; i < m; i++ {
				s += jac[i][j] * r[i]
			}
			g[j] = s
		}

		// Inner loop: grow lambda until a step reduces the cost.
		improved := false
		for tries := 0; tries < 30; tries++ {
			for j := 0; j < n; j++ {
				copy(a[j], jtj[j])
				// Marquardt scaling: damp by the diagonal so the
				// step respects per-parameter curvature.
				a[j][j] += lambda * math.Max(jtj[j][j], 1e-12)
				step[j] = -g[j]
			}
			if err := solveInPlace(a, step); err != nil {
				lambda *= 10
				continue
			}
			for j := 0; j < n; j++ {
				xTrial[j] = x[j] + step[j]
			}
			f(xTrial, rTrial)
			if !allFinite(rTrial) {
				lambda *= 10
				continue
			}
			trialCost := half2(rTrial)
			if trialCost < cost {
				// Accept.
				relRed := (cost - trialCost) / math.Max(cost, 1e-300)
				stepNorm := norm(step)
				xNorm := norm(x)
				copy(x, xTrial)
				copy(r, rTrial)
				cost = trialCost
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				// Declare convergence only when the trust region is
				// relaxed: a tiny step accepted under heavy damping
				// (large lambda) says nothing about being at a
				// minimum — the next iterations will expand the
				// region and keep descending.
				if lambda <= opts.InitLambda {
					if relRed < opts.TolFun {
						res.X, res.Cost = x, cost
						res.Converged = true
						res.Reason = "relative cost reduction below TolFun"
						res.RMSE = math.Sqrt(2 * cost / float64(m))
						return res, nil
					}
					if stepNorm < opts.TolX*(xNorm+opts.TolX) {
						res.X, res.Cost = x, cost
						res.Converged = true
						res.Reason = "step size below TolX"
						res.RMSE = math.Sqrt(2 * cost / float64(m))
						return res, nil
					}
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			res.X, res.Cost = x, cost
			res.Converged = true
			res.Reason = "no downhill step found (local minimum)"
			res.RMSE = math.Sqrt(2 * cost / float64(m))
			return res, nil
		}
	}

	res.X, res.Cost = x, cost
	res.Converged = false
	res.Reason = "max iterations reached"
	res.RMSE = math.Sqrt(2 * cost / float64(m))
	return res, nil
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func half2(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s / 2
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func newMat(m, n int) [][]float64 {
	buf := make([]float64, m*n)
	rows := make([][]float64, m)
	for i := range rows {
		rows[i], buf = buf[:n], buf[n:]
	}
	return rows
}

// solveInPlace solves a·x = b via Gaussian elimination with partial
// pivoting, overwriting a and b; on return b holds x.
func solveInPlace(a [][]float64, b []float64) error {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a[row][col]); v > best {
				best, piv = v, row
			}
		}
		if best < 1e-300 {
			return errors.New("optimize: singular system")
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			b[piv], b[col] = b[col], b[piv]
		}
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			factor := a[row][col] * inv
			if factor == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= factor * a[col][k]
			}
			b[row] -= factor * b[col]
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * b[k]
		}
		b[row] = s / a[row][row]
	}
	return nil
}
