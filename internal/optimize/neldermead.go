package optimize

import (
	"math"
	"sort"
)

// ObjectiveFunc evaluates a scalar cost for parameter vector x.
type ObjectiveFunc func(x []float64) float64

// NMOptions configures NelderMead.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations (default 2000).
	MaxIter int
	// TolF stops when the spread of simplex costs falls below this
	// (default 1e-12).
	TolF float64
	// TolX stops when the simplex diameter falls below this
	// (default 1e-10).
	TolX float64
	// InitStep sets the initial simplex edge length per dimension
	// (default 0.1 relative to the start point, floor 0.01).
	InitStep float64
}

func (o *NMOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.InitStep <= 0 {
		o.InitStep = 0.1
	}
}

// NelderMead minimizes f starting from x0 with the downhill simplex method
// (standard α=1, γ=2, ρ=0.5, σ=0.5 coefficients). It needs no derivatives,
// which makes it the right tool for objectives that are only piecewise
// smooth — e.g. received optical power as a function of galvo voltages,
// which plateaus at zero outside the capture cone.
func NelderMead(f ObjectiveFunc, x0 []float64, opts NMOptions) Result {
	solverMetrics()
	evals := 0
	counted := func(x []float64) float64 { evals++; return f(x) }
	res := nelderMead(counted, x0, opts)
	res.FuncEvals = evals
	nmRuns.Inc()
	nmEvals.Add(float64(evals))
	return res
}

func nelderMead(f ObjectiveFunc, x0 []float64, opts NMOptions) Result {
	opts.defaults()
	n := len(x0)
	if n == 0 {
		return Result{Reason: "empty parameter vector"}
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = f(simplex[0].x)
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		h := opts.InitStep * math.Max(math.Abs(x[i-1]), 0.1)
		x[i-1] += h
		simplex[i] = vertex{x: x, f: f(x)}
	}

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	var iters int
	reason := "max iterations reached"
	for iters = 1; iters <= opts.MaxIter; iters++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		best, worst := simplex[0], simplex[n]

		// Convergence checks.
		if math.Abs(worst.f-best.f) <= opts.TolF*(math.Abs(best.f)+opts.TolF) {
			reason = "cost spread below TolF"
			break
		}
		var diam float64
		for i := 1; i <= n; i++ {
			var d float64
			for j := 0; j < n; j++ {
				dd := simplex[i].x[j] - simplex[0].x[j]
				d += dd * dd
			}
			diam = math.Max(diam, math.Sqrt(d))
		}
		if diam <= opts.TolX {
			reason = "simplex diameter below TolX"
			break
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += simplex[i].x[j]
			}
			centroid[j] = s / float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr := f(xr)
		switch {
		case fr < best.f:
			// Expansion.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe := f(xe)
			if fe < fr {
				copy(simplex[n].x, xe)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, xr)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, xr)
			simplex[n].f = fr
		default:
			// Contraction (outside if reflection helped a bit, else inside).
			if fr < worst.f {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + 0.5*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
				}
			}
			fc := f(xc)
			if fc < math.Min(fr, worst.f) {
				copy(simplex[n].x, xc)
				simplex[n].f = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}

	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return Result{
		X:          simplex[0].x,
		Cost:       simplex[0].f,
		Iterations: iters,
		Converged:  reason != "max iterations reached",
		Reason:     reason,
	}
}

// GoldenSection minimizes a 1-D unimodal function on [a, b] to within tol,
// returning the minimizing x. Used for the tolerance probes in the link
// evaluation (finding where received power crosses the sensitivity
// threshold is a 1-D search).
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	if a > b {
		a, b = b, a
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Bisect finds x in [lo, hi] where pred flips from true to false, assuming
// pred(lo) is true. It returns the largest x (within tol) for which pred
// holds. This is the root-finder behind "maximum angular movement for which
// the link stays connected".
func Bisect(pred func(float64) bool, lo, hi, tol float64) float64 {
	if !pred(lo) {
		return lo
	}
	if pred(hi) {
		return hi
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
