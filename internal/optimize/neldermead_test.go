package optimize

import (
	"math"
	"testing"
)

func TestNMQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res := NelderMead(f, []float64{0, 0}, NMOptions{})
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("min = %v, want [3 -1] (%s)", res.X, res.Reason)
	}
}

func TestNMRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock min = %v, want [1 1]", res.X)
	}
}

func TestNMPlateauObjective(t *testing.T) {
	// Flat-zero outside a basin — mimics received power vs voltages,
	// which is why the paper's exhaustive alignment needs a coarse scan
	// first. NM must still descend when started inside the basin.
	f := func(x []float64) float64 {
		d := x[0]*x[0] + x[1]*x[1]
		if d > 1 {
			return 1 // plateau
		}
		return d
	}
	res := NelderMead(f, []float64{0.4, -0.3}, NMOptions{})
	if res.Cost > 1e-6 {
		t.Errorf("cost = %g inside basin", res.Cost)
	}
}

func TestNMHighDim(t *testing.T) {
	// 12-dimensional sphere — same dimensionality as the joint mapping fit.
	f := func(x []float64) float64 {
		var s float64
		for i, v := range x {
			d := v - float64(i)*0.1
			s += d * d
		}
		return s
	}
	x0 := make([]float64, 12)
	res := NelderMead(f, x0, NMOptions{MaxIter: 20000})
	for i, v := range res.X {
		if math.Abs(v-float64(i)*0.1) > 5e-3 {
			t.Errorf("x[%d] = %v, want %v", i, v, float64(i)*0.1)
		}
	}
}

func TestNMEmpty(t *testing.T) {
	res := NelderMead(func(x []float64) float64 { return 0 }, nil, NMOptions{})
	if res.Converged {
		t.Error("empty problem reported converged")
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	got := GoldenSection(f, -10, 10, 1e-8)
	if math.Abs(got-1.7) > 1e-6 {
		t.Errorf("min = %v, want 1.7", got)
	}
	// Reversed interval works too.
	got = GoldenSection(f, 10, -10, 1e-8)
	if math.Abs(got-1.7) > 1e-6 {
		t.Errorf("min (reversed) = %v", got)
	}
}

func TestBisect(t *testing.T) {
	// pred(x) = x ≤ 3.2
	got := Bisect(func(x float64) bool { return x <= 3.2 }, 0, 10, 1e-9)
	if math.Abs(got-3.2) > 1e-6 {
		t.Errorf("threshold = %v, want 3.2", got)
	}
	// pred false at lo.
	if got := Bisect(func(x float64) bool { return false }, 2, 10, 1e-9); got != 2 {
		t.Errorf("all-false bisect = %v, want lo", got)
	}
	// pred true everywhere.
	if got := Bisect(func(x float64) bool { return true }, 2, 10, 1e-9); got != 10 {
		t.Errorf("all-true bisect = %v, want hi", got)
	}
}

func TestNMCostNeverWorseThanStart(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Abs(x[0]) + math.Abs(x[1])*3 + 0.5
	}
	start := []float64{4, -2}
	res := NelderMead(f, start, NMOptions{})
	if res.Cost > f(start) {
		t.Errorf("NM made the cost worse: %g > %g", res.Cost, f(start))
	}
}
