package kspace

import (
	"fmt"
	"math"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/optimize"
)

// priorWeight anchors the fit to the CAD initial guess. The board
// observations constrain only the composed voltage→board map, which leaves
// several internal parameter directions nearly unconstrained (a point can
// slide along its rotation axis, a direction can rescale, a mirror plane
// can shift with the beam origin compensating). Left free, those
// directions drift ~1 cm — matching the board over the ±10° training cone
// but folding the beam outside the mirror geometry at the larger steering
// angles the pointing loop needs. The prior pins them to the CAD drawing:
// at weight 0.5, a 1 mm parameter drift costs a 0.5 mm-equivalent residual
// — strong enough to stop centimeter excursions, far below the ≈1.3 mm
// per-sample observation noise for the sub-millimeter corrections the data
// genuinely demands.
const priorWeight = 0.5

// Fit learns the 25 GMA parameters from grid samples by minimizing the
// board-plane error Σ d((x,y), f(G(v1,v2)))² with Levenberg–Marquardt —
// the §4.1(B) procedure. initial is the "good initial guess" the paper
// takes from the manufacturer's CAD drawing (gma.Nominal for our units).
func Fit(samples []Sample, board geom.Plane, initial gma.Params) (gma.Params, optimize.Result, error) {
	if len(samples) == 0 {
		return gma.Params{}, optimize.Result{}, fmt.Errorf("kspace: no samples")
	}

	init := initial.Vector()
	nRes := 2*len(samples) + gma.NumParams
	residuals := func(x []float64, out []float64) {
		p, err := gma.FromVector(x)
		if err != nil {
			//cyclops:panic-ok impossible: the optimizer preserves the vector length fixed below
			panic(err)
		}
		for i, s := range samples {
			hit, err := p.BoardHit(s.V1, s.V2, board)
			if err != nil {
				// A candidate that cannot even hit the board is
				// penalized heavily but smoothly enough for LM to
				// back away.
				out[2*i] = 10
				out[2*i+1] = 10
				continue
			}
			out[2*i] = hit.X - s.X
			out[2*i+1] = hit.Y - s.Y
		}
		for j := 0; j < gma.NumParams; j++ {
			out[2*len(samples)+j] = priorWeight * (x[j] - init[j])
		}
	}

	res, err := optimize.LeastSquares(residuals, init, nRes, optimize.LMOptions{
		MaxIter: 300,
	})
	if err != nil {
		return gma.Params{}, res, err
	}
	learned, err := gma.FromVector(res.X)
	if err != nil {
		return gma.Params{}, res, err
	}
	if err := learned.Valid(); err != nil {
		return gma.Params{}, res, fmt.Errorf("kspace: fit produced invalid model: %w", err)
	}
	return learned, res, nil
}

// Evaluation summarizes model error over a sample set — the quantities of
// Table 2 (average and maximum distance between the recorded grid point
// and where the learned model says the beam lands).
type Evaluation struct {
	AvgError float64 // meters
	MaxError float64 // meters
	N        int
}

func (e Evaluation) String() string {
	return fmt.Sprintf("avg %.2f mm, max %.2f mm over %d samples",
		e.AvgError*1e3, e.MaxError*1e3, e.N)
}

// Evaluate measures the learned model against samples on the given board.
func Evaluate(p gma.Params, board geom.Plane, samples []Sample) Evaluation {
	var sum, max float64
	n := 0
	for _, s := range samples {
		hit, err := p.BoardHit(s.V1, s.V2, board)
		if err != nil {
			continue
		}
		d := math.Hypot(hit.X-s.X, hit.Y-s.Y)
		sum += d
		if d > max {
			max = d
		}
		n++
	}
	if n == 0 {
		return Evaluation{}
	}
	return Evaluation{AvgError: sum / float64(n), MaxError: max, N: n}
}

// Calibrate is the end-to-end stage-1 pipeline for one device: collect the
// grid samples, fit, and evaluate on a held-out third of the samples.
// It returns the learned model and its held-out evaluation.
//
// Levenberg–Marquardt occasionally stalls in a poor local minimum of the
// 25-parameter landscape; when the held-out error is far above the
// observation-noise floor, the fit is restarted from a jittered initial
// guess (standard multi-start — the physical analogue is the experimenter
// re-measuring the rig and re-running the solver).
func Calibrate(r *Rig, initial gma.Params) (gma.Params, Evaluation, error) {
	samples, err := r.Collect()
	if err != nil {
		return gma.Params{}, Evaluation{}, err
	}
	// Hold out every third sample for evaluation; fit on the rest.
	var train, test []Sample
	for i, s := range samples {
		if i%3 == 2 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}

	// Accept when held-out error is near the noise floor AND the learned
	// geometry stays physically evaluable across the full steering range
	// (a fit can match the ±10° training cone while folding the beam off
	// a mirror at the larger angles the pointing loop needs); otherwise
	// restart from a perturbed guess. Valid models always outrank
	// invalid ones.
	goodEnough := 3 * r.ObsNoise
	var best gma.Params
	var bestEval Evaluation
	haveBest, bestValid := false, false
	guess := initial
	for attempt := 0; attempt < 12; attempt++ {
		learned, _, err := Fit(train, r.Board(), guess)
		if err == nil {
			eval := Evaluate(learned, r.Board(), test)
			valid := fullRangeValid(learned)
			better := !haveBest ||
				(valid && !bestValid) ||
				(valid == bestValid && eval.AvgError < bestEval.AvgError)
			if better {
				best, bestEval, haveBest, bestValid = learned, eval, true, valid
			}
			if bestValid && bestEval.AvgError <= goodEnough {
				break
			}
		}
		// Jitter the initial guess for the next attempt — on the scale
		// of the assembly tolerances themselves, so restarts explore
		// genuinely different basins.
		v := initial.Vector()
		for i := range v {
			v[i] += (r.rng.Float64()*2 - 1) * 0.008 * (1 + abs64(v[i]))
		}
		//cyclops:discard-ok FromVector only fails on length, and v came from Vector() so the length is right by construction
		guess, _ = gma.FromVector(v)
	}
	if !haveBest {
		return gma.Params{}, Evaluation{}, fmt.Errorf("kspace: all fit attempts failed")
	}
	return best, bestEval, nil
}

// fullRangeValid checks that the model's beam path stays on its mirrors
// across the whole ±10 V drive range (a 21×21 grid).
func fullRangeValid(p gma.Params) bool {
	for i := -10; i <= 10; i++ {
		for j := -10; j <= 10; j++ {
			if _, err := p.Beam(float64(i), float64(j)); err != nil {
				return false
			}
		}
	}
	return true
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
