// Package kspace implements the first calibration stage of §4.1: learning a
// GMA model G in a known coordinate frame from grid-board samples.
//
// The rig reproduces Figure 8's setup: the assembly is fixed in front of a
// planar board with 1-inch grid cells. For each internal grid intersection
// the experimenter searches for the voltage pair that puts the beam spot on
// the intersection and records the 4-attribute sample (x, y, v1, v2). A
// non-linear least-squares fit then recovers the 25 parameters of G.
//
// The simulated rig is honest about what the physical rig can observe: the
// spot position on the board is read with ~millimeter noise (a beam spot
// judged against a printed grid), and the voltage search uses only those
// noisy observations. The Table 2 first-stage errors (≈1–2 mm average)
// emerge from exactly this observation noise, not from anything injected
// downstream.
package kspace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cyclops/internal/galvo"
	"cyclops/internal/geom"
)

// Inch is the grid pitch of the calibration board, meters.
const Inch = 0.0254

// Sample is one §4.1 training sample: the grid target (X, Y) on the board
// and the voltages that were found to hit it.
type Sample struct {
	X, Y   float64 // board coordinates, meters
	V1, V2 float64 // volts
}

// Rig is the simulated calibration bench.
type Rig struct {
	Dev *galvo.Device

	// BoardDistance is the GMA-to-board distance along the rest beam;
	// the prototype used 1.5 m.
	BoardDistance float64

	// ObsNoise is the 1-σ error of reading the beam-spot position
	// against the printed grid, meters.
	ObsNoise float64

	// SearchTol is how well the (noisily observed) spot must match the
	// target before the experimenter accepts the voltages.
	SearchTol float64

	rng *rand.Rand
}

// NewRig builds a bench around a device with the prototype's geometry:
// board at 1.5 m, ~1.3 mm spot-reading noise (a multi-millimeter beam spot
// judged against a printed grid), 0.5 mm acceptance. With these the
// learned model's held-out error reproduces Table 2's first stage
// (averages 1.24–1.90 mm, maxima ≈5 mm).
func NewRig(dev *galvo.Device, seed int64) *Rig {
	return &Rig{
		Dev:           dev,
		BoardDistance: 1.5,
		ObsNoise:      1.3e-3,
		SearchTol:     1.3e-3,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// Board returns the board plane in the device's K-space frame. The board
// is the X-Y plane of K-space (as in §4.1) placed BoardDistance down the
// rest-beam axis (+Z for the nominal assembly).
func (r *Rig) Board() geom.Plane {
	return geom.NewPlane(geom.V(0, 0, r.BoardDistance), geom.V(0, 0, -1))
}

// ObserveHit commands the voltages and reads the spot position on the
// board with observation noise. It fails when the beam misses the board
// (steered outside the coverage cone).
func (r *Rig) ObserveHit(v1, v2 float64) (x, y float64, err error) {
	beam, err := r.Dev.BeamAt(v1, v2)
	if err != nil {
		return 0, 0, err
	}
	hit, _, err := r.Board().Intersect(beam)
	if err != nil {
		return 0, 0, fmt.Errorf("kspace: beam off board: %w", err)
	}
	return hit.X + r.rng.NormFloat64()*r.ObsNoise,
		hit.Y + r.rng.NormFloat64()*r.ObsNoise, nil
}

// ErrSearchFailed is returned when the voltage search cannot bring the
// spot onto the target.
var ErrSearchFailed = errors.New("kspace: voltage search did not converge")

// FindVoltages searches for the voltage pair whose beam hits board target
// (tx, ty), using only noisy spot observations — a faithful stand-in for
// the experimenter's walk-the-spot-onto-the-grid-point procedure. It
// returns the best voltages found.
func (r *Rig) FindVoltages(tx, ty float64) (v1, v2 float64, err error) {
	// Probe step for the finite-difference Jacobian: large enough that
	// the spot motion (≈ 2·θ₁·ε·distance ≈ 21 mm) dwarfs the observation
	// noise, so the 2×2 Jacobian determinant stays well-conditioned.
	const probe = 0.2
	const maxIter = 60
	// maxStep bounds each Newton update; with noisy observations an
	// occasional bad Jacobian must not fling the spot off the board.
	const maxStep = 1.5

	v1, v2 = 0, 0
	bestV1, bestV2 := v1, v2
	bestErr := math.Inf(1)

	for iter := 0; iter < maxIter; iter++ {
		x0, y0, err := r.ObserveHit(v1, v2)
		if err != nil {
			// Stepped off the board: halve back toward the best
			// known point.
			v1 = (v1 + bestV1) / 2
			v2 = (v2 + bestV2) / 2
			continue
		}
		miss := math.Hypot(x0-tx, y0-ty)
		if miss < bestErr {
			bestErr, bestV1, bestV2 = miss, v1, v2
		}
		if miss < r.SearchTol {
			return v1, v2, nil
		}

		x1, y1, err1 := r.ObserveHit(v1+probe, v2)
		x2, y2, err2 := r.ObserveHit(v1, v2+probe)
		if err1 != nil || err2 != nil {
			v1 = (v1 + bestV1) / 2
			v2 = (v2 + bestV2) / 2
			continue
		}
		// 2×2 Newton step on the observed board map, damped and
		// clamped against observation noise in the Jacobian.
		a, b := (x1-x0)/probe, (x2-x0)/probe
		c, d := (y1-y0)/probe, (y2-y0)/probe
		det := a*d - b*c
		if math.Abs(det) < 1e-4 {
			// Noise swamped the Jacobian; re-probe from here.
			continue
		}
		dx, dy := tx-x0, ty-y0
		s1 := (d*dx - b*dy) / det
		s2 := (-c*dx + a*dy) / det
		v1 += clampStep(s1, maxStep)
		v2 += clampStep(s2, maxStep)
	}
	if bestErr < 5*r.SearchTol {
		return bestV1, bestV2, nil
	}
	return 0, 0, ErrSearchFailed
}

func clampStep(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}

// GridTargets returns the 266 internal intersection points of the 20×15
// one-inch board grid, centered on the board origin (19 × 14 points).
func GridTargets() []geom.Vec3 {
	var pts []geom.Vec3
	const nx, ny = 19, 14
	for i := 0; i < nx; i++ {
		x := (float64(i) - float64(nx-1)/2) * Inch
		for j := 0; j < ny; j++ {
			y := (float64(j) - float64(ny-1)/2) * Inch
			pts = append(pts, geom.V(x, y, 0))
		}
	}
	return pts
}

// Collect runs the full §4.1(B) sample-gathering pass: the voltage search
// for every internal grid point. Points the search cannot reach are
// skipped (the prototype likewise used only points it could align on).
func (r *Rig) Collect() ([]Sample, error) {
	targets := GridTargets()
	samples := make([]Sample, 0, len(targets))
	for _, p := range targets {
		v1, v2, err := r.FindVoltages(p.X, p.Y)
		if err != nil {
			continue
		}
		samples = append(samples, Sample{X: p.X, Y: p.Y, V1: v1, V2: v2})
	}
	if len(samples) < len(targets)/2 {
		return samples, fmt.Errorf("kspace: only %d/%d grid points reachable", len(samples), len(targets))
	}
	return samples, nil
}
