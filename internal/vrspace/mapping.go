// Package vrspace implements the second calibration stage of §4.2: jointly
// learning the 12 "mapping parameters" — six rigid-transform parameters
// placing the TX GMA model in VR-space, and six placing the RX GMA model
// relative to the headset's hidden tracked point.
//
// Training data are 5-tuples (v1, v2, v3, v4, Ψ): the four voltages that an
// automated power-feedback search found to align the link, plus the VRH-T
// position report at that pose. The error function is Lemma 1's
// coincidence condition — at perfect alignment, each terminal's modeled
// beam must pass through the other terminal's modeled capture point.
package vrspace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/link"
	"cyclops/internal/optimize"
	"cyclops/internal/pointing"
	"cyclops/internal/vrh"
)

// Tuple is one §4.2 training sample.
type Tuple struct {
	V   pointing.Voltages
	Psi geom.Pose
}

// Mapping holds the learned 12 parameters as two poses.
type Mapping struct {
	// MTX maps TX K-space into VR-space (fixed for a deployment).
	MTX geom.Pose
	// MRX maps RX K-space into the tracked-point frame; composed with a
	// live report Ψ it places the RX model in VR-space (footnote 8).
	MRX geom.Pose
}

// Vector flattens the mapping into the 12-parameter optimizer vector.
func (m Mapping) Vector() []float64 {
	a := m.MTX.Params6()
	b := m.MRX.Params6()
	return []float64{a[0], a[1], a[2], a[3], a[4], a[5], b[0], b[1], b[2], b[3], b[4], b[5]}
}

// MappingFromVector rebuilds a Mapping from a 12-vector.
func MappingFromVector(v []float64) (Mapping, error) {
	if len(v) != 12 {
		return Mapping{}, fmt.Errorf("vrspace: mapping vector has %d values, want 12", len(v))
	}
	return Mapping{
		MTX: geom.PoseFromParams6([6]float64{v[0], v[1], v[2], v[3], v[4], v[5]}),
		MRX: geom.PoseFromParams6([6]float64{v[6], v[7], v[8], v[9], v[10], v[11]}),
	}, nil
}

// TXModel places the stage-1 TX model into VR-space.
func (m Mapping) TXModel(kTX gma.Params) gma.Params {
	return kTX.Transformed(m.MTX)
}

// RXModel places the stage-1 RX model into VR-space for tracking report
// psi.
func (m Mapping) RXModel(kRX gma.Params, psi geom.Pose) gma.Params {
	return kRX.Transformed(psi.Compose(m.MRX))
}

// CoincidenceError evaluates the §4.2 error for one tuple under this
// mapping: d(p_t, τ_r) + d(p_r, τ_t), measured as each modeled beam's
// distance from the other's origin.
func (m Mapping) CoincidenceError(kTX, kRX gma.Params, t Tuple) (float64, error) {
	gt := m.TXModel(kTX)
	gr := m.RXModel(kRX, t.Psi)
	bt, err := gt.Beam(t.V.TX1, t.V.TX2)
	if err != nil {
		return 0, err
	}
	br, err := gr.Beam(t.V.RX1, t.V.RX2)
	if err != nil {
		return 0, err
	}
	return bt.DistanceTo(br.Origin) + br.DistanceTo(bt.Origin), nil
}

// ErrNotEnoughTuples is returned when fewer than the minimum usable tuples
// are supplied (12 parameters need at least 6 tuples of 2 residuals; we
// require a safety factor).
var ErrNotEnoughTuples = errors.New("vrspace: not enough training tuples")

// FitMapping learns the 12 mapping parameters from aligned-link tuples by
// Levenberg–Marquardt on the coincidence error, starting from init (the
// installer's rough manual measurement of where things are).
func FitMapping(kTX, kRX gma.Params, tuples []Tuple, init Mapping) (Mapping, optimize.Result, error) {
	if len(tuples) < 10 {
		return Mapping{}, optimize.Result{}, fmt.Errorf("%w: have %d, want ≥10", ErrNotEnoughTuples, len(tuples))
	}

	residuals := func(x []float64, out []float64) {
		m, err := MappingFromVector(x)
		if err != nil {
			//cyclops:panic-ok impossible: the optimizer preserves the 12-parameter vector length
			panic(err)
		}
		// One TX compilation per candidate mapping covers every tuple;
		// the RX model moves with each tuple's report and is compiled
		// per tuple (still amortized over its two beam evaluations).
		gt := m.TXModel(kTX).Compile()
		for i, tp := range tuples {
			gr := m.RXModel(kRX, tp.Psi).Compile()
			bt, err1 := gt.Beam(tp.V.TX1, tp.V.TX2)
			br, err2 := gr.Beam(tp.V.RX1, tp.V.RX2)
			if err1 != nil || err2 != nil {
				out[2*i], out[2*i+1] = 1, 1
				continue
			}
			out[2*i] = bt.DistanceTo(br.Origin)
			out[2*i+1] = br.DistanceTo(bt.Origin)
		}
	}

	res, err := optimize.LeastSquares(residuals, init.Vector(), 2*len(tuples), optimize.LMOptions{
		MaxIter: 400,
	})
	if err != nil {
		return Mapping{}, res, err
	}
	m, err := MappingFromVector(res.X)
	return m, res, err
}

// CalibrationPoses returns n headset poses spread through the play volume
// for tuple collection: translations within ±0.25 m of the default pose
// and attitudes within ±12°, deterministic in seed. The spread matters —
// degenerate pose sets leave mapping directions unconstrained.
func CalibrationPoses(n int, seed int64) []geom.Pose {
	rng := rand.New(rand.NewSource(seed))
	base := link.DefaultHeadsetPose()
	poses := make([]geom.Pose, 0, n)
	for i := 0; i < n; i++ {
		axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if axis.IsZero() {
			axis = geom.V(0, 1, 0)
		}
		rot := geom.QuatFromAxisAngle(axis, rng.NormFloat64()*0.12)
		trans := base.Trans.Add(geom.V(
			rng.Float64()*0.5-0.25,
			rng.Float64()*0.5-0.25,
			rng.Float64()*0.3-0.15,
		))
		poses = append(poses, geom.NewPose(rot.Mul(base.Rot), trans))
	}
	return poses
}

// CollectTuples runs the §4.2 data-gathering pass on the physical plant:
// for each pose, lock the headset there, read a tracking report, run the
// automated alignment search, and record the 5-tuple. Poses where the
// search fails are skipped.
func CollectTuples(p *link.Plant, tr *vrh.Tracker, poses []geom.Pose, rng *rand.Rand) []Tuple {
	var tuples []Tuple
	for i, pose := range poses {
		p.SetHeadset(pose)
		rep := tr.Report(pose, time.Duration(i)*time.Second)
		v, _, err := p.Align(rng)
		if err != nil {
			continue
		}
		tuples = append(tuples, Tuple{V: v, Psi: rep.Pose})
	}
	return tuples
}

// TrueMapping computes the oracle mapping from the plant's and tracker's
// hidden truths: M_tx = (world→VR) ∘ (TX K→world); M_rx = (tracked→headset)⁻¹
// ∘ (RX K→headset). Test/evaluation use only.
func TrueMapping(p *link.Plant, tr *vrh.Tracker) Mapping {
	return Mapping{
		MTX: tr.VRSpace().Compose(p.TXMountTruth()),
		MRX: tr.Offset().Inverse().Compose(p.RXMountTruth()),
	}
}

// InitialGuess perturbs the true mapping by installer-measurement error
// (a few centimeters, a few degrees) — the §4.2 analogue of the K-space
// stage's CAD prior.
func InitialGuess(p *link.Plant, tr *vrh.Tracker, rng *rand.Rand) Mapping {
	truth := TrueMapping(p, tr)
	perturb := func(m geom.Pose) geom.Pose {
		axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if axis.IsZero() {
			axis = geom.V(1, 0, 0)
		}
		d := geom.NewPose(
			geom.QuatFromAxisAngle(axis, rng.NormFloat64()*0.05),
			geom.V(rng.NormFloat64()*0.03, rng.NormFloat64()*0.03, rng.NormFloat64()*0.03),
		)
		return d.Compose(m)
	}
	return Mapping{MTX: perturb(truth.MTX), MRX: perturb(truth.MRX)}
}

// Evaluation is the Table 2 "combined" error set: how far each learned
// model's beam passes from the other terminal's true capture point, over
// held-out aligned poses.
type Evaluation struct {
	TXAvg, TXMax float64 // meters
	RXAvg, RXMax float64 // meters
	N            int
}

func (e Evaluation) String() string {
	return fmt.Sprintf("combined TX avg %.2f / max %.2f mm, RX avg %.2f / max %.2f mm (n=%d)",
		e.TXAvg*1e3, e.TXMax*1e3, e.RXAvg*1e3, e.RXMax*1e3, e.N)
}

// Evaluate measures combined (stage-1 + stage-2) model error on fresh
// poses. For each pose the plant is truly aligned (oracle voltages); the
// learned TX model's beam is compared against the true RX capture point
// and vice versa — the simulation analogue of the paper's physical
// measurement.
func Evaluate(p *link.Plant, tr *vrh.Tracker, kTX, kRX gma.Params, m Mapping, poses []geom.Pose) (Evaluation, error) {
	var e Evaluation
	for i, pose := range poses {
		p.SetHeadset(pose)
		rep := tr.Report(pose, time.Duration(i)*time.Second)
		v, err := p.OracleAlignedVoltages()
		if err != nil {
			continue
		}
		p.ApplyVoltages(v)

		// True beams from the plant's hidden geometry.
		btTrue, err1 := p.TXBeam()
		brTrue, err2 := p.RXReverseBeam()
		if err1 != nil || err2 != nil {
			continue
		}

		// Learned beams in VR-space; to compare against world-frame
		// truth, move them into the world via the tracker's hidden
		// frame (evaluation instrumentation only).
		vrToWorld := tr.VRSpace().Inverse()
		gt := m.TXModel(kTX)
		gr := m.RXModel(kRX, rep.Pose)
		btModel, err1 := gt.Beam(v.TX1, v.TX2)
		brModel, err2 := gr.Beam(v.RX1, v.RX2)
		if err1 != nil || err2 != nil {
			continue
		}
		btW := vrToWorld.ApplyRay(btModel)
		brW := vrToWorld.ApplyRay(brModel)

		txErr := btW.DistanceTo(brTrue.Origin)
		rxErr := brW.DistanceTo(btTrue.Origin)
		e.TXAvg += txErr
		e.RXAvg += rxErr
		e.TXMax = math.Max(e.TXMax, txErr)
		e.RXMax = math.Max(e.RXMax, rxErr)
		e.N++
	}
	if e.N == 0 {
		return e, errors.New("vrspace: no evaluable poses")
	}
	e.TXAvg /= float64(e.N)
	e.RXAvg /= float64(e.N)
	return e, nil
}
