package vrspace

import (
	"math"
	"math/rand"
	"testing"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/kspace"
	"cyclops/internal/link"
	"cyclops/internal/optics"
	"cyclops/internal/pointing"
	"cyclops/internal/vrh"
)

func TestMappingVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m := Mapping{
			MTX: geom.NewPose(
				geom.QuatFromAxisAngle(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()+0.1), rng.Float64()*2),
				geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()),
			),
			MRX: geom.NewPose(
				geom.QuatFromAxisAngle(geom.V(1, 0.2, 0), rng.Float64()),
				geom.V(0.1, 0.2, 0.3),
			),
		}
		got, err := MappingFromVector(m.Vector())
		if err != nil {
			t.Fatal(err)
		}
		v := geom.V(0.3, -0.2, 0.9)
		if !got.MTX.Apply(v).NearlyEqual(m.MTX.Apply(v), 1e-7) {
			t.Fatal("MTX roundtrip changed transform")
		}
		if !got.MRX.Apply(v).NearlyEqual(m.MRX.Apply(v), 1e-7) {
			t.Fatal("MRX roundtrip changed transform")
		}
	}
}

func TestMappingFromVectorWrongLength(t *testing.T) {
	if _, err := MappingFromVector(make([]float64, 5)); err == nil {
		t.Error("short vector accepted")
	}
}

func TestFitMappingNotEnoughTuples(t *testing.T) {
	if _, _, err := FitMapping(gma.Nominal(), gma.Nominal(), make([]Tuple, 3), Mapping{}); err == nil {
		t.Error("3 tuples accepted")
	}
}

func TestCalibrationPosesSpread(t *testing.T) {
	poses := CalibrationPoses(30, 5)
	if len(poses) != 30 {
		t.Fatalf("got %d poses", len(poses))
	}
	// Orientation variety (needed to constrain M_rx rotation).
	var maxAng float64
	for _, p := range poses {
		for _, q := range poses {
			_, ang := p.Delta(q)
			maxAng = math.Max(maxAng, ang)
		}
	}
	if maxAng < 0.1 {
		t.Errorf("pose set orientation spread = %v rad — too degenerate to fit", maxAng)
	}
	// Determinism.
	again := CalibrationPoses(30, 5)
	if again[7] != poses[7] {
		t.Error("poses not deterministic in seed")
	}
}

func TestTrueMappingReproducesGeometry(t *testing.T) {
	// The oracle mapping must place the RX model exactly where the plant
	// does: Ψ∘M_rx ≡ (VR←world)∘headset∘rxMount for a noise-free report.
	p := link.NewPlant(optics.Diverging10G16mm, 11)
	p.FlexCoeff = 0 // ideally rigid for an exact chain comparison
	tr := vrh.New(12, vrh.WithNoise(0, 0), vrh.WithWarp(0, 0, 0))
	m := TrueMapping(p, tr)

	pose := CalibrationPoses(1, 3)[0]
	p.SetHeadset(pose)
	rep := tr.Report(pose, 0)

	// Through the mapping chain.
	viaMapping := rep.Pose.Compose(m.MRX)
	// Directly through the hidden truth.
	direct := tr.VRSpace().Compose(p.RXWorldPose())

	v := geom.V(0.1, -0.05, 0.2)
	if !viaMapping.Apply(v).NearlyEqual(direct.Apply(v), 1e-9) {
		t.Error("true mapping chain disagrees with hidden geometry")
	}
	// Same for TX.
	if !m.MTX.Apply(v).NearlyEqual(tr.VRSpace().Compose(p.TXMountTruth()).Apply(v), 1e-9) {
		t.Error("true TX mapping disagrees with hidden geometry")
	}
}

// TestEndToEndCalibration is the Table 2 reproduction: stage 1 on both
// GMAs, tuple collection with the automated alignment search, the joint
// 12-parameter fit, and combined-error evaluation on fresh poses.
func TestEndToEndCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration in -short mode")
	}
	p := link.NewPlant(optics.Diverging10G16mm, 21)
	tr := vrh.New(22)
	rng := rand.New(rand.NewSource(23))

	// Stage 1 (pre-deployment, per §4.1, done per GMA by the
	// manufacturer).
	kTX, evTX, err := kspace.Calibrate(kspace.NewRig(p.TXDev, 24), gma.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	kRX, evRX, err := kspace.Calibrate(kspace.NewRig(p.RXDev, 25), gma.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	// First-stage errors in the Table 2 regime (paper: 1.24 / 1.90 mm
	// averages, ≈5.4 mm maxima).
	for _, ev := range []kspace.Evaluation{evTX, evRX} {
		if ev.AvgError > 3e-3 {
			t.Errorf("stage-1 avg error %v m, want ≤3 mm", ev.AvgError)
		}
	}

	// Stage 2 (at deployment): ~30 aligned tuples (paper used ≈30).
	tuples := CollectTuples(p, tr, CalibrationPoses(30, 26), rng)
	if len(tuples) < 20 {
		t.Fatalf("only %d tuples collected", len(tuples))
	}
	init := InitialGuess(p, tr, rng)
	m, res, err := FitMapping(kTX, kRX, tuples, init)
	if err != nil {
		t.Fatalf("mapping fit: %v (%s)", err, res.Reason)
	}

	// Combined evaluation on fresh poses — the Table 2 "Combined" rows
	// (paper: TX 2.18 mm avg / 4.07 max; RX 4.54 avg / 6.50 max).
	eval, err := Evaluate(p, tr, kTX, kRX, m, CalibrationPoses(12, 27))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stage-1 TX: %v", evTX)
	t.Logf("stage-1 RX: %v", evRX)
	t.Logf("combined:   %v", eval)

	if eval.TXAvg > 6e-3 {
		t.Errorf("combined TX avg = %.2f mm, want ≲4 (paper 2.18)", eval.TXAvg*1e3)
	}
	if eval.RXAvg > 8e-3 {
		t.Errorf("combined RX avg = %.2f mm, want ≲6 (paper 4.54)", eval.RXAvg*1e3)
	}
	if eval.TXMax > 12e-3 || eval.RXMax > 15e-3 {
		t.Errorf("combined maxima too large: %v", eval)
	}

	// The calibrated system must actually point: run P on a fresh pose
	// and check the link comes up at near-peak power.
	pose := CalibrationPoses(1, 99)[0]
	p.SetHeadset(pose)
	rep := tr.Report(pose, 0)
	gt := m.TXModel(kTX)
	gr := m.RXModel(kRX, rep.Pose)
	pres, err := pointing.Point(gt, gr, pointing.Voltages{}, pointing.PointOptions{})
	if err != nil {
		t.Fatalf("pointing with learned models: %v", err)
	}
	p.ApplyVoltages(pres.V)
	got := p.ReceivedPowerDBm()
	peak := p.Config.PeakReceivedPowerDBm()
	// §5.2: TP-aligned power lands a few dB below peak (−13 to −14 dBm
	// vs −10 peak).
	if got < peak-8 {
		t.Errorf("TP-aligned power %.1f dBm, peak %.1f — model too inaccurate", got, peak)
	}
	if !p.Connected() {
		t.Error("TP-aligned link not connected")
	}
}

func TestCoincidenceErrorSensitive(t *testing.T) {
	p := link.NewPlant(optics.Diverging10G16mm, 31)
	tr := vrh.New(32, vrh.WithNoise(0, 0), vrh.WithWarp(0, 0, 0))
	truth := TrueMapping(p, tr)

	pose := link.DefaultHeadsetPose()
	p.SetHeadset(pose)
	rep := tr.Report(pose, 0)
	v, err := p.OracleAlignedVoltages()
	if err != nil {
		t.Fatal(err)
	}
	tuple := Tuple{V: v, Psi: rep.Pose}

	// With truth mapping and truth GMA models the coincidence error is
	// tiny (only servo noise / DAC quantization remains).
	e0, err := truth.CoincidenceError(p.TXDev.Truth(), p.RXDev.Truth(), tuple)
	if err != nil {
		t.Fatal(err)
	}
	if e0 > 2e-3 {
		t.Errorf("truth coincidence error = %v m", e0)
	}
	// Perturbing the mapping inflates it.
	bad := truth
	bad.MTX = geom.NewPose(bad.MTX.Rot, bad.MTX.Trans.Add(geom.V(0.02, 0, 0)))
	e1, err := bad.CoincidenceError(p.TXDev.Truth(), p.RXDev.Truth(), tuple)
	if err != nil {
		t.Fatal(err)
	}
	if e1 < 5*e0 {
		t.Errorf("perturbed mapping error %v not ≫ truth error %v", e1, e0)
	}
}
