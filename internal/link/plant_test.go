package link

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/optics"
	"cyclops/internal/pointing"
)

func alignedPlant(t *testing.T, cfg optics.LinkConfig, seed int64) *Plant {
	t.Helper()
	p := NewPlant(cfg, seed)
	v, err := p.OracleAlignedVoltages()
	if err != nil {
		t.Fatalf("oracle alignment: %v", err)
	}
	p.ApplyVoltages(v)
	return p
}

func TestOracleAlignmentReachesPeakPower(t *testing.T) {
	p := alignedPlant(t, optics.Diverging10G16mm, 1)
	got := p.ReceivedPowerDBm()
	want := p.Config.PeakReceivedPowerDBm()
	// Within ~1.5 dB of the radiometric peak (servo noise + DAC
	// quantization keep it slightly below).
	if got < want-1.5 || got > want+0.5 {
		t.Errorf("aligned power = %.2f dBm, peak = %.2f dBm", got, want)
	}
	if !p.Connected() {
		t.Error("aligned link not connected")
	}
}

func TestRangeIsNominal(t *testing.T) {
	p := alignedPlant(t, optics.Diverging10G16mm, 2)
	m, err := p.Misalignment()
	if err != nil {
		t.Fatal(err)
	}
	if m.Range < 1.4 || m.Range > 2.1 {
		t.Errorf("TX-RX range = %.2f m, want ≈1.75", m.Range)
	}
}

func TestHeadsetMovementDegradesPower(t *testing.T) {
	p := alignedPlant(t, optics.Diverging10G16mm, 3)
	aligned := p.ReceivedPowerDBm()

	// Rotate the headset well beyond the RX angular tolerance without
	// re-pointing.
	h := p.Headset()
	p.SetHeadset(geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(1, 0, 0), 0.05).Mul(h.Rot), h.Trans))
	rotated := p.ReceivedPowerDBm()
	if rotated >= aligned-10 {
		t.Errorf("50 mrad rotation only dropped power %.1f → %.1f dBm", aligned, rotated)
	}
	if p.Connected() {
		t.Error("link survived rotation far beyond tolerance")
	}
}

func TestSmallMovementWithinTolerance(t *testing.T) {
	p := alignedPlant(t, optics.Diverging10G16mm, 4)
	h := p.Headset()
	// 2 mrad rotation: well inside the ≈5.8 mrad RX tolerance.
	p.SetHeadset(geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(1, 0, 0), 0.002).Mul(h.Rot), h.Trans))
	if !p.Connected() {
		t.Error("link lost within angular tolerance")
	}
	// 2 mm translation: inside lateral tolerance.
	p.SetHeadset(geom.NewPose(h.Rot, h.Trans.Add(geom.V(0.002, 0, 0))))
	if !p.Connected() {
		t.Error("link lost within lateral tolerance")
	}
}

func TestRepointingRestoresPower(t *testing.T) {
	p := alignedPlant(t, optics.Diverging10G16mm, 5)
	h := p.Headset()
	moved := geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(0, 1, 0), 0.03).Mul(h.Rot),
		h.Trans.Add(geom.V(0.05, -0.03, 0.02)))
	p.SetHeadset(moved)
	if p.Connected() {
		t.Fatal("test premise broken: big move should disconnect")
	}
	v, err := p.OracleAlignedVoltages()
	if err != nil {
		t.Fatal(err)
	}
	p.ApplyVoltages(v)
	if !p.Connected() {
		t.Error("re-pointing did not restore the link")
	}
	if got, want := p.ReceivedPowerDBm(), p.Config.PeakReceivedPowerDBm(); got < want-1.5 {
		t.Errorf("re-pointed power %.2f dBm below peak %.2f", got, want)
	}
}

func TestMisalignmentCollimatedUsesBeamAxisAngle(t *testing.T) {
	// For a collimated link, rotating the TX changes the incidence
	// mismatch; for a diverging link it must not (§5.1 mechanism).
	for _, tc := range []struct {
		cfg        optics.LinkConfig
		wantChange bool
	}{
		{optics.Collimated10G, true},
		{optics.Diverging10G16mm, false},
	} {
		p := alignedPlant(t, tc.cfg, 6)
		m0, err := p.Misalignment()
		if err != nil {
			t.Fatal(err)
		}
		// Detune one TX mirror by 1.5 mrad optical.
		v := p.CurrentVoltages()
		v.TX1 += 0.0015 / p.TXDev.Spec().RadPerVolt()
		p.ApplyVoltages(v)
		m1, err := p.Misalignment()
		if err != nil {
			t.Fatal(err)
		}
		change := math.Abs(m1.IncidenceMismatch - m0.IncidenceMismatch)
		if tc.wantChange && change < 0.5e-3 {
			t.Errorf("%s: TX rotation did not change incidence (%v)", tc.cfg.Name, change)
		}
		if !tc.wantChange && change > 0.5e-3 {
			t.Errorf("%s: TX rotation changed incidence by %v — diverging beams should be immune", tc.cfg.Name, change)
		}
		// Both kinds see the lateral offset grow.
		if m1.LateralOffset <= m0.LateralOffset {
			t.Errorf("%s: TX rotation did not grow lateral offset", tc.cfg.Name)
		}
	}
}

func TestAlignSearchFindsSignal(t *testing.T) {
	p := NewPlant(optics.Diverging10G16mm, 7)
	rng := rand.New(rand.NewSource(1))
	v, pw, err := p.Align(rng)
	if err != nil {
		t.Fatal(err)
	}
	peak := p.Config.PeakReceivedPowerDBm()
	if pw < peak-3 {
		t.Errorf("search power %.2f dBm, peak %.2f dBm", pw, peak)
	}
	// Search result close to the oracle voltages.
	ov, err := p.OracleAlignedVoltages()
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]float64{
		"TX1": v.TX1 - ov.TX1, "TX2": v.TX2 - ov.TX2,
		"RX1": v.RX1 - ov.RX1, "RX2": v.RX2 - ov.RX2,
	} {
		if math.Abs(d) > 0.1 {
			t.Errorf("search %s off oracle by %.3f V", name, d)
		}
	}
}

func TestAlignSearchFailsWithNoSignal(t *testing.T) {
	p := NewPlant(optics.Diverging10G16mm, 8)
	// Start absurdly far from alignment with a tiny window: no light.
	_, _, err := p.AlignSearch(pointing.Voltages{TX1: 9, TX2: 9, RX1: -9, RX2: -9},
		AlignOptions{CoarseSpan: 0.05, CoarseStep: 0.02})
	if err == nil {
		t.Error("expected alignment failure far from signal")
	}
}

func TestMonitorRelock(t *testing.T) {
	m := NewMonitor(optics.SFP10GZR)
	ms := func(x int) time.Duration { return time.Duration(x) * time.Millisecond }

	if !m.Observe(ms(0), -20) {
		t.Fatal("healthy link reported down")
	}
	if m.GoodputGbps() != optics.SFP10GZR.OptimalGoodputGbps {
		t.Error("goodput while up")
	}
	// Power drop: immediate loss.
	if m.Observe(ms(10), -40) {
		t.Fatal("link survived power below sensitivity")
	}
	if m.GoodputGbps() != 0 {
		t.Error("goodput while down")
	}
	// Light back: stays down until relock delay elapses.
	if m.Observe(ms(20), -20) {
		t.Fatal("relocked instantly")
	}
	if m.Observe(ms(1000), -20) {
		t.Fatal("relocked before delay")
	}
	if !m.Observe(ms(20+3000), -20) {
		t.Fatal("did not relock after delay")
	}
	// A flicker during relock restarts the clock.
	m2 := NewMonitor(optics.SFP10GZR)
	m2.Observe(ms(0), -40)
	m2.Observe(ms(10), -20)
	m2.Observe(ms(1500), -40) // flicker
	m2.Observe(ms(1510), -20)
	if m2.Observe(ms(3200), -20) {
		t.Error("flicker did not restart relock clock")
	}
	if !m2.Observe(ms(1510+3000), -20) {
		t.Error("no relock after flicker recovery")
	}
}

// HoldOver is the SFP's LOS-assert window: dark spells shorter than it
// never unlock the link; one that reaches it drops the link on the sample
// that crosses the threshold. The zero default keeps the historical
// drop-on-first-dark behavior (TestMonitorRelock pins that path).
func TestMonitorHoldOver(t *testing.T) {
	ms := func(x int) time.Duration { return time.Duration(x) * time.Millisecond }
	m := NewMonitor(optics.SFP10GZR)
	m.HoldOver = ms(5)

	if !m.Observe(ms(0), -20) {
		t.Fatal("healthy link reported down")
	}
	// A 3 ms dark spell (a handover slew) rides through.
	for at := 10; at < 13; at++ {
		if !m.Observe(ms(at), -40) {
			t.Fatalf("link dropped %v into a sub-holdover dark spell", ms(at-10))
		}
	}
	if !m.Observe(ms(13), -20) {
		t.Fatal("link down after light returned within holdover")
	}
	// Light resets the dark clock: a later dark spell gets the full window.
	if !m.Observe(ms(20), -40) || !m.Observe(ms(24), -40) {
		t.Fatal("dark clock not reset by intervening light")
	}
	// Crossing the window unlocks, and re-lock takes the full delay again.
	if m.Observe(ms(25), -40) {
		t.Fatal("link survived dark past the holdover window")
	}
	if m.Observe(ms(30), -20) {
		t.Fatal("relocked instantly after a holdover-exceeded drop")
	}
	if !m.Observe(ms(30+3000), -20) {
		t.Fatal("did not relock after the delay")
	}
}

func TestPlantDeterministic(t *testing.T) {
	a := alignedPlant(t, optics.Diverging10G16mm, 42)
	b := alignedPlant(t, optics.Diverging10G16mm, 42)
	va, vb := a.CurrentVoltages(), b.CurrentVoltages()
	if va != vb {
		t.Errorf("same seed, different alignment: %+v vs %+v", va, vb)
	}
}

func TestGravityFlex(t *testing.T) {
	p := NewPlant(optics.Diverging10G16mm, 11)
	h := p.Headset()
	base := p.RXWorldPose()

	// Upright headset: no sag regardless of coefficient.
	p.FlexCoeff = 0.008
	if got := p.RXWorldPose(); got.Trans.Dist(base.Trans) > 1e-12 {
		t.Error("sag applied with upright headset")
	}
	// Tilted headset: the assembly shifts by ≈ coeff·|Δg| ≈ 1.7 mm at 12°.
	tilted := geom.NewPose(geom.QuatFromAxisAngle(geom.V(1, 0, 0), 0.21).Mul(h.Rot), h.Trans)
	p.SetHeadset(tilted)
	withFlex := p.RXWorldPose()
	p.FlexCoeff = 0
	rigid := p.RXWorldPose()
	d := withFlex.Trans.Dist(rigid.Trans)
	if d < 0.5e-3 || d > 4e-3 {
		t.Errorf("sag at 12° tilt = %v m, want ≈1.7 mm", d)
	}
}

func Test25GPlantWorks(t *testing.T) {
	p := alignedPlant(t, optics.Diverging25G, 9)
	if !p.Connected() {
		t.Error("25G plant not connectable")
	}
}

func TestCollimatedPlantWorks(t *testing.T) {
	p := alignedPlant(t, optics.Collimated10G, 10)
	if !p.Connected() {
		t.Error("collimated plant not connectable")
	}
	got := p.ReceivedPowerDBm()
	if math.Abs(got-15) > 2.5 {
		t.Errorf("collimated aligned power = %.2f dBm, want ≈15", got)
	}
}

// The relock boundary is exact: a sample at lightSince + RelockDelay flips
// up on that sample, for every delay including zero (where first light
// itself is the boundary sample).
func TestMonitorRelockBoundaryExact(t *testing.T) {
	ms := func(x int) time.Duration { return time.Duration(x) * time.Millisecond }
	cases := []struct {
		name   string
		delay  time.Duration
		checks []struct {
			at   time.Duration
			want bool
		}
	}{
		{"zero-delay relocks on first light", 0, []struct {
			at   time.Duration
			want bool
		}{
			{ms(10), false}, // dark
			{ms(20), true},  // first light = boundary sample
		}},
		{"3s delay relocks exactly at the boundary tick", 3 * time.Second, []struct {
			at   time.Duration
			want bool
		}{
			{ms(10), false},        // dark
			{ms(20), false},        // first light, clock starts
			{ms(20 + 2999), false}, // one tick early
			{ms(20 + 3000), true},  // exactly lightSince + delay
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := optics.SFP10GZR
			spec.RelockDelay = c.delay
			m := NewMonitor(spec)
			if !m.Observe(0, spec.SensitivityDBm+10) {
				t.Fatal("did not start up")
			}
			for i, step := range c.checks {
				power := spec.SensitivityDBm + 10.0
				if i == 0 {
					power = spec.SensitivityDBm - 30 // the dark sample
				}
				if got := m.Observe(step.at, power); got != step.want {
					t.Fatalf("step %d at %v: up = %v, want %v", i, step.at, got, step.want)
				}
			}
		})
	}
}

// A gradual fade — attenuation ramping linearly through the sensitivity
// threshold, the HazeFade envelope shape — must hit the exact same
// boundary samples as a step fade: light is power >= sensitivity (the
// sample exactly at sensitivity rides through), the LOS clock starts at
// the first strictly-dark sample, and the unlock lands on the sample
// exactly HoldOver later. PR 4 fixed an off-by-one at the relock
// boundary; this pins the untested ramp path on both edges.
func TestMonitorGradualFadeBoundaries(t *testing.T) {
	ms := func(x int) time.Duration { return time.Duration(x) * time.Millisecond }
	// Power under a 1 dB/ms attenuation ramp starting at rampAt, from a
	// -20 dBm aligned baseline against SFP10GZR's -25 dBm sensitivity:
	// the ramp crosses sensitivity exactly at rampAt+5ms.
	fade := func(at, rampAt time.Duration) float64 {
		atten := 0.0
		if at > rampAt {
			atten = float64(at-rampAt) / float64(time.Millisecond)
		}
		return -20 - atten
	}
	type sample struct {
		at   time.Duration
		dbm  float64
		want bool
	}
	cases := []struct {
		name     string
		holdOver time.Duration
		samples  []sample
	}{
		{
			// The sample at exactly sensitivity (-25 at rampAt+5) is
			// light; the first strictly-dark sample (rampAt+6) starts the
			// LOS clock; the unlock lands exactly HoldOver later.
			name:     "ramp crosses threshold mid-window, 5ms holdover",
			holdOver: ms(5),
			samples: []sample{
				{ms(100), fade(ms(100), ms(100)), true},  // ramp starts
				{ms(104), fade(ms(104), ms(100)), true},  // -24: above
				{ms(105), fade(ms(105), ms(100)), true},  // -25: at threshold = light
				{ms(106), fade(ms(106), ms(100)), true},  // -26: dark, clock starts
				{ms(110), fade(ms(110), ms(100)), true},  // 4ms dark: rides through
				{ms(111), fade(ms(111), ms(100)), false}, // 5ms dark: unlock boundary
			},
		},
		{
			// Zero holdover: the first strictly-dark sample itself drops
			// the link — one sample after the at-threshold one.
			name:     "ramp with zero holdover drops on first dark sample",
			holdOver: 0,
			samples: []sample{
				{ms(105), fade(ms(105), ms(100)), true},  // -25: still light
				{ms(106), fade(ms(106), ms(100)), false}, // -26: immediate drop
			},
		},
		{
			// A shallow fade that bottoms out 3 dB below sensitivity and
			// recovers before the window elapses never unlocks, and the
			// intervening light re-arms the full window for a later fade.
			name:     "sub-holdover fade dip rides through and resets the clock",
			holdOver: ms(5),
			samples: []sample{
				{ms(10), -26, true},  // dark, clock starts
				{ms(12), -27, true},  // 2ms dark
				{ms(14), -25, true},  // back at threshold: light, clock reset
				{ms(20), -26, true},  // new fade, new clock
				{ms(24), -28, true},  // 4ms dark: still inside the window
				{ms(25), -29, false}, // 5ms dark: unlock
			},
		},
		{
			// Recovery side: power ramping back up re-lights at the exact
			// sensitivity sample and the relock clock runs from it.
			name:     "gradual recovery relocks exactly RelockDelay after re-light",
			holdOver: ms(5),
			samples: []sample{
				{ms(0), -30, true},         // dark, clock starts
				{ms(5), -30, false},        // unlock at the boundary
				{ms(10), -26, false},       // rising but still dark
				{ms(11), -25, false},       // re-light: relock clock starts
				{ms(3010), -24, false},     // 2999ms of light: not yet
				{ms(11 + 3000), -24, true}, // exactly RelockDelay: up
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMonitor(optics.SFP10GZR)
			m.HoldOver = tc.holdOver
			for _, s := range tc.samples {
				if got := m.Observe(s.at, s.dbm); got != s.want {
					t.Fatalf("Observe(%v, %.1f dBm) = %v, want %v", s.at, s.dbm, got, s.want)
				}
			}
		})
	}
}
