// Package link models the physical FSO link end to end: a TX galvo
// assembly fixed to the ceiling, an RX galvo assembly riding on the
// headset, and the radiometry connecting them. It is the "world" that the
// calibration and pointing algorithms act on — they may command voltages
// and read received power, while the plant computes what physically
// happens from hidden ground-truth geometry.
package link

import (
	"math"
	"math/rand"

	"cyclops/internal/galvo"
	"cyclops/internal/geom"
	"cyclops/internal/obs"
	"cyclops/internal/optics"
	"cyclops/internal/pointing"
)

// Plant is the physical link: two terminals plus current headset pose.
//
// World frame convention: Z is up, the floor is z=0. The TX is mounted on
// the ceiling with its coverage cone facing down; the headset starts near
// (0.35, 0.25, 1.0) so the nominal TX–RX range is ≈1.75 m, matching the
// prototype's 1.5–2 m rigs.
type Plant struct {
	Config optics.LinkConfig

	TXDev *galvo.Device
	RXDev *galvo.Device

	// txMount maps TX K-space into the world. Hidden installation truth.
	txMount geom.Pose
	// rxMount maps RX K-space into the headset frame. Hidden assembly
	// truth — the quantity footnote 8 says must be learned at
	// deployment.
	rxMount geom.Pose

	// Metrics, when non-nil, receives a received-power observation on
	// every radiometry read. core.Run and core.Calibrate attach a
	// per-run/per-calibration instrument set here and detach it after.
	Metrics *PlantMetrics

	// attenDB is extra path attenuation applied to every radiometry
	// read — the injection surface for occlusion faults. The plant does
	// not know why the path darkened; it just attenuates.
	attenDB float64

	// FlexCoeff models the RX breadboard's gravity sag: the assembly
	// shifts within the headset frame by FlexCoeff meters per unit
	// change of the headset-frame gravity direction (≈1.7 mm at a 12°
	// tilt for the default 8 mm/unit). This is the "relative position
	// ... may not be perfectly fixed as assumed" effect the paper blames
	// for the RX model's larger combined error (§5.2); set it to 0 for
	// an ideally rigid assembly.
	FlexCoeff float64

	headset geom.Pose
}

// DefaultHeadsetPose is where the headset rig starts: roughly under the
// transmitter at sitting height.
func DefaultHeadsetPose() geom.Pose {
	return geom.NewPose(geom.QuatIdentity(), geom.V(0.35, 0.25, 1.0))
}

// CeilingHeight is the TX mounting height, meters.
const CeilingHeight = 2.75

// NewPlant builds a plant with the given link design. The seed controls
// all hidden manufacturing and installation variation.
func NewPlant(cfg optics.LinkConfig, seed int64) *Plant {
	return NewPlantAt(cfg, seed, seed, geom.V(0, 0, CeilingHeight))
}

// NewPlantAt builds a plant whose TX is installed at txPos (aimed toward
// the default headset position so the coverage cone is centered on the
// play area). txSeed and rxSeed control the two terminals' hardware
// identities separately, which lets a multi-transmitter deployment share
// one physical RX assembly across several plants.
func NewPlantAt(cfg optics.LinkConfig, txSeed, rxSeed int64, txPos geom.Vec3) *Plant {
	rng := rand.New(rand.NewSource(txSeed))

	// Aim the TX K-space +Z from its mount point toward the play area,
	// with a little installation slop.
	aimDir := DefaultHeadsetPose().Trans.Sub(txPos)
	if aimDir.IsZero() {
		aimDir = geom.V(0, 0, -1)
	}
	txAim := geom.RotationBetween(geom.V(0, 0, 1), aimDir)
	slop := geom.QuatFromAxisAngle(
		geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()+1e-9),
		rng.NormFloat64()*0.02,
	)
	txMount := geom.NewPose(slop.Mul(txAim), txPos)

	// The RX assembly sits on the headset breadboard, beam axis up with
	// small assembly slop, a few centimeters above the head origin. Its
	// identity derives from rxSeed so plants sharing an RX agree on it.
	rxRng := rand.New(rand.NewSource(rxSeed + 7))
	rxSlop := geom.QuatFromAxisAngle(
		geom.V(rxRng.NormFloat64(), rxRng.NormFloat64(), rxRng.NormFloat64()+1e-9),
		rxRng.NormFloat64()*0.02,
	)
	rxMount := geom.NewPose(rxSlop, geom.V(0.05, 0.0, 0.12))

	return &Plant{
		Config:    cfg,
		TXDev:     galvo.NewUnit(txSeed + 100),
		RXDev:     galvo.NewUnit(rxSeed + 200),
		txMount:   txMount,
		rxMount:   rxMount,
		FlexCoeff: 0.008,
		headset:   DefaultHeadsetPose(),
	}
}

// SetHeadset moves the headset (true world pose).
func (p *Plant) SetHeadset(pose geom.Pose) { p.headset = pose }

// Headset returns the current true headset pose.
func (p *Plant) Headset() geom.Pose { return p.headset }

// TXMountTruth exposes the hidden TX installation pose (oracle use only).
func (p *Plant) TXMountTruth() geom.Pose { return p.txMount }

// RXMountTruth exposes the hidden RX assembly pose (oracle use only).
func (p *Plant) RXMountTruth() geom.Pose { return p.rxMount }

// RXWorldPose returns the current RX K-space → world transform, including
// the gravity flex of the assembly.
func (p *Plant) RXWorldPose() geom.Pose {
	return p.headset.Compose(p.rxMountEffective())
}

// rxMountEffective applies the breadboard's gravity sag to the nominal
// assembly pose: tilting the headset re-loads the board, shifting the
// optics within the headset frame.
func (p *Plant) rxMountEffective() geom.Pose {
	if p.FlexCoeff == 0 {
		return p.rxMount
	}
	down := geom.V(0, 0, -1)
	gLocal := p.headset.Rot.Conj().Rotate(down)
	sag := gLocal.Sub(down).Scale(p.FlexCoeff)
	return geom.NewPose(p.rxMount.Rot, p.rxMount.Trans.Add(sag))
}

// TXBeam returns the TX beam in world coordinates for the current TX
// voltages (with servo noise, as physically emitted).
func (p *Plant) TXBeam() (geom.Ray, error) {
	b, err := p.TXDev.Beam()
	if err != nil {
		return geom.Ray{}, err
	}
	return p.txMount.ApplyRay(b), nil
}

// RXReverseBeam returns Lemma 1's "imaginary beam emanating from RX" in
// world coordinates: the path light would take launched backward out of
// the RX collimator through the RX mirrors. Its origin is the capture
// point p_r on the RX second mirror; received light couples best when it
// arrives at that point traveling exactly opposite this direction.
func (p *Plant) RXReverseBeam() (geom.Ray, error) {
	b, err := p.RXDev.Beam()
	if err != nil {
		return geom.Ray{}, err
	}
	return p.RXWorldPose().ApplyRay(b), nil
}

// Misalignment reduces the current geometry to the radiometric scalars.
func (p *Plant) Misalignment() (optics.Misalignment, error) {
	tx, err := p.TXBeam()
	if err != nil {
		return optics.Misalignment{}, err
	}
	rx, err := p.RXReverseBeam()
	if err != nil {
		return optics.Misalignment{}, err
	}

	capture := rx.Origin
	rng := capture.Dist(tx.Origin)

	// Lateral offset: distance from the capture point to the TX beam
	// axis.
	lateral := tx.DistanceTo(capture)

	// Local incoming ray direction at the capture point: from the beam
	// origin for a diverging beam (spherical wavefront), the beam axis
	// direction for a collimated one (plane wavefront).
	var incoming geom.Vec3
	if p.Config.Kind == optics.Diverging {
		incoming = capture.Sub(tx.Origin).Unit()
	} else {
		incoming = tx.Dir
	}
	mismatch := incoming.AngleTo(rx.Dir.Neg())

	return optics.Misalignment{
		Range:             rng,
		LateralOffset:     lateral,
		IncidenceMismatch: mismatch,
	}, nil
}

// PlantMetrics holds the plant's observability instruments.
type PlantMetrics struct {
	// Power is the received optical power distribution; geometric
	// failures (-Inf power) are clamped to the lowest bucket so the
	// histogram sum stays finite.
	Power *obs.Histogram
	Reads *obs.Counter
}

// NewPlantMetrics registers the plant instruments in reg (nil reg → nil
// metrics, recording disabled).
func NewPlantMetrics(reg *obs.Registry) *PlantMetrics {
	if reg == nil {
		return nil
	}
	return &PlantMetrics{
		Power: reg.Histogram("cyclops_link_received_power_dbm",
			"Instantaneous received optical power at the RX SFP, dBm.",
			[]float64{-60, -45, -40, -35, -30, -27, -24, -21, -18, -15, -12, -9, -6, -3, 0, 3, 6, 9, 12, 15, 18}),
		Reads: reg.Counter("cyclops_link_power_reads_total",
			"Radiometry reads (one per simulation tick during a run)."),
	}
}

func (m *PlantMetrics) observe(powerDBm float64) {
	if m == nil {
		return
	}
	m.Reads.Inc()
	if math.IsInf(powerDBm, -1) {
		powerDBm = -90 // below every bucket; keeps the sum finite
	}
	m.Power.Observe(powerDBm)
}

// SetAttenuationDB sets the extra optical path attenuation, in dB,
// applied to every subsequent radiometry read. Zero restores the clear
// path. This is the plant's only fault-injection surface: an occlusion
// schedule drives it, but the plant stays fault-agnostic.
func (p *Plant) SetAttenuationDB(db float64) { p.attenDB = db }

// AttenuationDB returns the current extra path attenuation, dB.
func (p *Plant) AttenuationDB() float64 { return p.attenDB }

// ReceivedPowerDBm returns the instantaneous optical power at the RX SFP.
// Geometric failure (a beam steered outside its own assembly) reads as no
// light.
func (p *Plant) ReceivedPowerDBm() float64 {
	m, err := p.Misalignment()
	if err != nil {
		p.Metrics.observe(math.Inf(-1))
		return math.Inf(-1)
	}
	power := p.Config.ReceivedPowerDBm(m) - p.attenDB
	p.Metrics.observe(power)
	return power
}

// Connected reports whether instantaneous power clears the SFP
// sensitivity. (For time-aware link state including re-lock delays, use
// Monitor.)
func (p *Plant) Connected() bool {
	return p.ReceivedPowerDBm() >= p.Config.Transceiver.SensitivityDBm
}

// OracleAlignedVoltages computes the four perfectly aligning voltages from
// the hidden truth via the pointing algorithm. It stands in for the
// prototype's rough hand-aiming that precedes the §4.2 automated search,
// and serves as the test oracle for TP accuracy.
func (p *Plant) OracleAlignedVoltages() (pointing.Voltages, error) {
	gt := p.TXDev.Truth().Transformed(p.txMount)
	gr := p.RXDev.Truth().Transformed(p.RXWorldPose())
	res, err := pointing.Point(gt, gr, pointing.Voltages{}, pointing.PointOptions{})
	if err != nil {
		return pointing.Voltages{}, err
	}
	return res.V, nil
}

// ApplyVoltages commands both devices.
func (p *Plant) ApplyVoltages(v pointing.Voltages) {
	p.TXDev.SetVoltages(v.TX1, v.TX2)
	p.RXDev.SetVoltages(v.RX1, v.RX2)
}

// CurrentVoltages reads both devices.
func (p *Plant) CurrentVoltages() pointing.Voltages {
	t1, t2 := p.TXDev.Voltages()
	r1, r2 := p.RXDev.Voltages()
	return pointing.Voltages{TX1: t1, TX2: t2, RX1: r1, RX2: r2}
}
