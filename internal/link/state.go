package link

import (
	"time"

	"cyclops/internal/obs"
	"cyclops/internal/optics"
)

// Monitor is the time-aware link-state machine layered on instantaneous
// received power. It models the §5.3 observation that "once the link is
// lost, it takes a few seconds to regain" — the SFP and NIC must re-lock
// after a loss of signal even though light returned immediately.
type Monitor struct {
	t optics.Transceiver

	// Metrics, when non-nil, counts connected-state transitions.
	Metrics *MonitorMetrics

	// HoldOver is the SFP's LOS-assert window: while the link is up, a
	// dark spell shorter than HoldOver does not unlock the transceiver —
	// the SerDes rides through on its clock-recovery flywheel. Zero (the
	// default) keeps the historical behavior of dropping on the first
	// dark sample; non-zero is what makes a make-before-break handover
	// worth anything, since a ~2 ms switch would otherwise still pay the
	// full RelockDelay.
	HoldOver time.Duration

	up bool
	// lightSince is when optical power was last continuously above
	// sensitivity while the link is down.
	lightSince time.Duration
	hasLight   bool
	// darkSince is when light was first continuously lost while the link
	// is up (holdover accounting).
	darkSince time.Duration
	hasDark   bool
}

// NewMonitor creates a monitor that starts in the connected state (the
// experiments begin from an aligned, locked link).
func NewMonitor(t optics.Transceiver) *Monitor {
	return &Monitor{t: t, up: true}
}

// MonitorMetrics counts the link-state machine's transitions.
type MonitorMetrics struct {
	Disconnects *obs.Counter // up → down
	Reconnects  *obs.Counter // down → up (after the SFP/NIC re-lock)
}

// NewMonitorMetrics registers the monitor instruments in reg (nil reg →
// nil metrics, recording disabled).
func NewMonitorMetrics(reg *obs.Registry) *MonitorMetrics {
	if reg == nil {
		return nil
	}
	return &MonitorMetrics{
		Disconnects: reg.Counter("cyclops_link_disconnects_total",
			"Link up-to-down transitions (loss of signal)."),
		Reconnects: reg.Counter("cyclops_link_reconnects_total",
			"Link down-to-up transitions (after the multi-second re-lock)."),
	}
}

// Observe feeds one (time, power) sample and returns whether the link is
// up after it. Samples must be fed in non-decreasing time order.
func (m *Monitor) Observe(at time.Duration, powerDBm float64) bool {
	light := powerDBm >= m.t.SensitivityDBm
	if m.up {
		if light {
			m.hasDark = false
			return true
		}
		// Dark while up: the LOS-assert clock runs from the first dark
		// sample, and the link unlocks once it reaches HoldOver. The
		// zero-HoldOver default makes that first dark sample itself the
		// disconnect — the historical drop-on-first-dark behavior, bit
		// for bit.
		if !m.hasDark {
			m.hasDark = true
			m.darkSince = at
		}
		if at-m.darkSince >= m.HoldOver {
			m.up = false
			m.hasLight = false
			m.hasDark = false
			if m.Metrics != nil {
				m.Metrics.Disconnects.Inc()
			}
		}
		return m.up
	}
	// Link down: track continuous light until relock.
	if !light {
		m.hasLight = false
		return false
	}
	// First light starts the re-lock clock and then falls through to the
	// same boundary check every later sample takes: a sample exactly at
	// lightSince + RelockDelay flips up before returning, so core.Run
	// sees the reconnect on the tick that satisfies the delay, including
	// the RelockDelay == 0 edge where first light itself is that tick.
	// (Previously the first-light sample returned false unconditionally,
	// so a zero-delay transceiver stayed down one extra tick.)
	if !m.hasLight {
		m.hasLight = true
		m.lightSince = at
	}
	if at-m.lightSince >= m.t.RelockDelay {
		m.up = true
		if m.Metrics != nil {
			m.Metrics.Reconnects.Inc()
		}
	}
	return m.up
}

// Up returns the current link state.
func (m *Monitor) Up() bool { return m.up }

// GoodputGbps returns the instantaneous TCP goodput: the optimal rate when
// up, zero when down.
func (m *Monitor) GoodputGbps() float64 {
	if m.up {
		return m.t.OptimalGoodputGbps
	}
	return 0
}
