package link

import (
	"time"

	"cyclops/internal/optics"
)

// Monitor is the time-aware link-state machine layered on instantaneous
// received power. It models the §5.3 observation that "once the link is
// lost, it takes a few seconds to regain" — the SFP and NIC must re-lock
// after a loss of signal even though light returned immediately.
type Monitor struct {
	t optics.Transceiver

	up bool
	// lightSince is when optical power was last continuously above
	// sensitivity while the link is down.
	lightSince time.Duration
	hasLight   bool
}

// NewMonitor creates a monitor that starts in the connected state (the
// experiments begin from an aligned, locked link).
func NewMonitor(t optics.Transceiver) *Monitor {
	return &Monitor{t: t, up: true}
}

// Observe feeds one (time, power) sample and returns whether the link is
// up after it. Samples must be fed in non-decreasing time order.
func (m *Monitor) Observe(at time.Duration, powerDBm float64) bool {
	light := powerDBm >= m.t.SensitivityDBm
	if m.up {
		if !light {
			m.up = false
			m.hasLight = false
		}
		return m.up
	}
	// Link down: track continuous light until relock.
	if !light {
		m.hasLight = false
		return false
	}
	if !m.hasLight {
		m.hasLight = true
		m.lightSince = at
		return false
	}
	if at-m.lightSince >= m.t.RelockDelay {
		m.up = true
	}
	return m.up
}

// Up returns the current link state.
func (m *Monitor) Up() bool { return m.up }

// GoodputGbps returns the instantaneous TCP goodput: the optimal rate when
// up, zero when down.
func (m *Monitor) GoodputGbps() float64 {
	if m.up {
		return m.t.OptimalGoodputGbps
	}
	return 0
}
