package link

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cyclops/internal/optimize"
	"cyclops/internal/pointing"
)

// This file implements the §4.2 automated-exhaustive alignment search: find
// the combination of four voltages that maximizes received power, using
// only power feedback (the photodiode quad + DAQ of footnote 9). The
// search is what makes mapping-stage training samples "obviously precise"
// — and, at 1–2 minutes per sample on the real rig, what makes direct
// learning of P hopeless (footnote 3).

// AlignOptions tunes the search.
type AlignOptions struct {
	// CoarseSpan is the ± voltage window scanned around the starting
	// point in the coarse stages (default 0.3 V ≈ ±21 mrad optical).
	CoarseSpan float64
	// CoarseStep is the scan step (default 0.02 V ≈ 1.4 mrad, a fraction
	// of every design's angular tolerance so the basin cannot be
	// stepped over).
	CoarseStep float64
	// Floor is the power (dBm) below which the photodiodes see nothing
	// usable (default -60).
	Floor float64
}

func (o *AlignOptions) defaults() {
	if o.CoarseSpan <= 0 {
		o.CoarseSpan = 0.3
	}
	if o.CoarseStep <= 0 {
		o.CoarseStep = 0.02
	}
	if o.Floor == 0 {
		o.Floor = -60
	}
}

// ErrAlignFailed is returned when no detectable signal is found anywhere
// in the scan window.
var ErrAlignFailed = errors.New("link: alignment search found no signal")

// AlignSearch runs the automated alignment from a rough starting point:
// coarse 2-D scans of the TX pair then the RX pair (the photodiode-guided
// walk), followed by a Nelder–Mead polish of all four voltages on the
// received-power objective. It leaves the devices at — and returns — the
// best voltages with the power achieved there.
func (p *Plant) AlignSearch(start pointing.Voltages, opts AlignOptions) (pointing.Voltages, float64, error) {
	opts.defaults()

	power := func(v pointing.Voltages) float64 {
		p.ApplyVoltages(v)
		return p.ReceivedPowerDBm()
	}

	best := start
	bestP := power(start)

	// Stage 1: coarse TX scan with RX fixed.
	for v1 := start.TX1 - opts.CoarseSpan; v1 <= start.TX1+opts.CoarseSpan; v1 += opts.CoarseStep {
		for v2 := start.TX2 - opts.CoarseSpan; v2 <= start.TX2+opts.CoarseSpan; v2 += opts.CoarseStep {
			cand := best
			cand.TX1, cand.TX2 = v1, v2
			if pw := power(cand); pw > bestP {
				best, bestP = cand, pw
			}
		}
	}
	// Stage 2: coarse RX scan with the best TX.
	for v1 := start.RX1 - opts.CoarseSpan; v1 <= start.RX1+opts.CoarseSpan; v1 += opts.CoarseStep {
		for v2 := start.RX2 - opts.CoarseSpan; v2 <= start.RX2+opts.CoarseSpan; v2 += opts.CoarseStep {
			cand := best
			cand.RX1, cand.RX2 = v1, v2
			if pw := power(cand); pw > bestP {
				best, bestP = cand, pw
			}
		}
	}
	if bestP < opts.Floor {
		return best, bestP, fmt.Errorf("%w: best %.1f dBm", ErrAlignFailed, bestP)
	}

	// Stage 3: joint polish. Nelder–Mead on negative power; the basin is
	// smooth once there is signal.
	obj := func(x []float64) float64 {
		v := pointing.Voltages{TX1: x[0], TX2: x[1], RX1: x[2], RX2: x[3]}
		pw := power(v)
		if math.IsInf(pw, -1) {
			return 1e6
		}
		return -pw
	}
	res := optimize.NelderMead(obj,
		[]float64{best.TX1, best.TX2, best.RX1, best.RX2},
		optimize.NMOptions{MaxIter: 400, InitStep: 0.05, TolX: 1e-5})
	polished := pointing.Voltages{TX1: res.X[0], TX2: res.X[1], RX1: res.X[2], RX2: res.X[3]}
	if pw := power(polished); pw > bestP {
		best, bestP = polished, pw
	} else {
		p.ApplyVoltages(best) // restore the better point
	}
	return best, bestP, nil
}

// HandAim produces the rough starting point a human installer provides
// before the automated search: the true aligned voltages disturbed by a
// few tenths of a volt (±ish 10 mrad of aim error).
func (p *Plant) HandAim(rng *rand.Rand) (pointing.Voltages, error) {
	v, err := p.OracleAlignedVoltages()
	if err != nil {
		return pointing.Voltages{}, err
	}
	jitter := func() float64 { return rng.NormFloat64() * 0.08 }
	v.TX1 += jitter()
	v.TX2 += jitter()
	v.RX1 += jitter()
	v.RX2 += jitter()
	return v, nil
}

// Align runs the full physical alignment procedure (hand aim + automated
// search) and returns the aligned voltages and power.
func (p *Plant) Align(rng *rand.Rand) (pointing.Voltages, float64, error) {
	start, err := p.HandAim(rng)
	if err != nil {
		return pointing.Voltages{}, math.Inf(-1), err
	}
	return p.AlignSearch(start, AlignOptions{})
}
