package geom

import (
	"errors"
	"math"
)

// Ray is a half-infinite line: a beam originating at Origin traveling along
// the unit direction Dir. In the paper's notation a beam is the pair
// (p, x⃗); Origin is p and Dir is x⃗.
type Ray struct {
	Origin Vec3
	Dir    Vec3 // unit length by construction via NewRay
}

// NewRay builds a ray, normalizing the direction.
func NewRay(origin, dir Vec3) Ray {
	return Ray{Origin: origin, Dir: dir.Unit()}
}

// At returns the point Origin + t·Dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// ErrNoIntersection is returned when a ray does not hit a plane or disk
// (parallel, behind the origin, or outside the aperture).
var ErrNoIntersection = errors.New("geom: no intersection")

// Plane is the set of points p with (p - Point)·Normal = 0.
type Plane struct {
	Point  Vec3
	Normal Vec3 // unit length by construction via NewPlane
}

// NewPlane builds a plane through point with the given normal (normalized).
func NewPlane(point, normal Vec3) Plane {
	return Plane{Point: point, Normal: normal.Unit()}
}

// Intersect returns the point where the ray crosses the plane and the ray
// parameter t ≥ 0 at which it does. Rays traveling parallel to the plane
// (or away from it) return ErrNoIntersection.
func (pl Plane) Intersect(r Ray) (Vec3, float64, error) {
	denom := r.Dir.Dot(pl.Normal)
	if math.Abs(denom) < 1e-15 {
		return Vec3{}, 0, ErrNoIntersection
	}
	t := pl.Point.Sub(r.Origin).Dot(pl.Normal) / denom
	if t < 0 {
		return Vec3{}, 0, ErrNoIntersection
	}
	return r.At(t), t, nil
}

// IntersectLine returns the point where the infinite line through r
// (both directions) crosses the plane. Unlike Intersect it accepts
// negative ray parameters; only truly parallel lines fail. The pointing
// iteration uses this so that a badly initialized beam whose plane-crossing
// lies "behind" it still produces a usable Newton step.
func (pl Plane) IntersectLine(r Ray) (Vec3, float64, error) {
	denom := r.Dir.Dot(pl.Normal)
	if math.Abs(denom) < 1e-15 {
		return Vec3{}, 0, ErrNoIntersection
	}
	t := pl.Point.Sub(r.Origin).Dot(pl.Normal) / denom
	return r.At(t), t, nil
}

// DistanceTo returns the signed distance from point q to the plane, positive
// on the side the normal points toward.
func (pl Plane) DistanceTo(q Vec3) float64 {
	return q.Sub(pl.Point).Dot(pl.Normal)
}

// Project returns the orthogonal projection of q onto the plane.
func (pl Plane) Project(q Vec3) Vec3 {
	return q.Sub(pl.Normal.Scale(pl.DistanceTo(q)))
}

// Reflect implements the mirror reflection operator R of §4.1: given an
// incoming beam (as a Ray) and a mirror (an infinite plane), it returns the
// outgoing beam. The outgoing origin is the point where the beam strikes
// the mirror and the outgoing direction is the specular reflection of the
// incoming direction. Returns ErrNoIntersection when the beam misses the
// mirror plane (travels parallel or away).
func Reflect(beam Ray, mirror Plane) (Ray, error) {
	hit, _, err := mirror.Intersect(beam)
	if err != nil {
		return Ray{}, err
	}
	d := beam.Dir
	n := mirror.Normal
	out := d.Sub(n.Scale(2 * d.Dot(n)))
	return Ray{Origin: hit, Dir: out.Unit()}, nil
}

// ClosestPointTo returns the point on the ray closest to q and its ray
// parameter (clamped to t ≥ 0).
func (r Ray) ClosestPointTo(q Vec3) (Vec3, float64) {
	t := q.Sub(r.Origin).Dot(r.Dir)
	if t < 0 {
		t = 0
	}
	return r.At(t), t
}

// DistanceTo returns the distance from q to the nearest point on the ray.
func (r Ray) DistanceTo(q Vec3) float64 {
	p, _ := r.ClosestPointTo(q)
	return p.Dist(q)
}

// Disk is a finite circular aperture: the set of plane points within Radius
// of Center. It models collimator lenses and mirror faces.
type Disk struct {
	Center Vec3
	Normal Vec3 // unit length by construction via NewDisk
	Radius float64
}

// NewDisk builds a disk, normalizing the normal.
func NewDisk(center, normal Vec3, radius float64) Disk {
	return Disk{Center: center, Normal: normal.Unit(), Radius: radius}
}

// Plane returns the infinite plane containing the disk.
func (d Disk) Plane() Plane { return Plane{Point: d.Center, Normal: d.Normal} }

// Intersect returns where the ray crosses the disk. Rays that hit the
// plane outside the radius return ErrNoIntersection.
func (d Disk) Intersect(r Ray) (Vec3, float64, error) {
	hit, t, err := d.Plane().Intersect(r)
	if err != nil {
		return Vec3{}, 0, err
	}
	if hit.Dist(d.Center) > d.Radius {
		return Vec3{}, 0, ErrNoIntersection
	}
	return hit, t, nil
}

// Segment is the line segment from A to B.
type Segment struct {
	A, B Vec3
}

// Length returns |B-A|.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns (A+B)/2.
func (s Segment) Midpoint() Vec3 { return s.A.Add(s.B).Scale(0.5) }

// DistanceTo returns the distance from point q to the nearest point on the
// segment. Used for line-of-sight checks against spherical occluders.
func (s Segment) DistanceTo(q Vec3) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return s.A.Dist(q)
	}
	t := q.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Add(d.Scale(t)).Dist(q)
}

// ClosestApproach returns the points on rays r1 and r2 that are closest to
// each other, and the distance between them. For parallel rays it returns
// the perpendicular foot from r1.Origin. This is used to quantify how close
// the TX beam passes to the RX capture point.
func ClosestApproach(r1, r2 Ray) (Vec3, Vec3, float64) {
	d1, d2 := r1.Dir, r2.Dir
	w := r1.Origin.Sub(r2.Origin)
	a := d1.Dot(d1)
	b := d1.Dot(d2)
	c := d2.Dot(d2)
	d := d1.Dot(w)
	e := d2.Dot(w)
	denom := a*c - b*b
	var t1, t2 float64
	if denom < 1e-15 {
		t1 = 0
		t2 = e / c
	} else {
		t1 = (b*e - c*d) / denom
		t2 = (a*e - b*d) / denom
	}
	if t1 < 0 {
		t1 = 0
	}
	if t2 < 0 {
		t2 = 0
	}
	p1, p2 := r1.At(t1), r2.At(t2)
	return p1, p2, p1.Dist(p2)
}
