package geom

// PosesFromEulerBatch writes NewPose(QuatFromEuler(yaw[i], pitch[i],
// roll[i]), pos[i]) into out[i] for every i in out — the generic SoA form
// of batched pose construction. The trace synthesizer fuses this exact
// per-element chain into its own sample-store loop (writing a staging
// []Pose only to copy it out cost a 64-byte store+load per sample); the
// kernel remains for callers that want poses in a plain slice. The four
// input slices must be at least len(out) long; the caller owns every
// buffer and the kernel allocates nothing.
//
// The per-element body is the scalar call chain itself, so each output
// is bit-for-bit the one the scalar path produces
// (TestPosesFromEulerBatchBitIdentical pins this). The batch form's win
// is structural, not numerical: the bounds hints below lift the slice
// checks out of the loop, and the independent per-element chains sit
// adjacent for the out-of-order core to overlap. (A fully flattened
// body — QuatFromEuler and Normalize inlined by hand — benchmarked no
// faster than the call chain and was dropped.)
//
//cyclops:hotpath
func PosesFromEulerBatch(out []Pose, yaw, pitch, roll []float64, pos []Vec3) {
	_ = yaw[len(out)-1]
	_ = pitch[len(out)-1]
	_ = roll[len(out)-1]
	_ = pos[len(out)-1]
	for i := range out {
		out[i] = NewPose(QuatFromEuler(yaw[i], pitch[i], roll[i]), pos[i])
	}
}
