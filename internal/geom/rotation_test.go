package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestAxisAngleBasic(t *testing.T) {
	// 90° about Z maps X to Y.
	r := AxisAngle(V(0, 0, 1), math.Pi/2)
	if got := r.Apply(V(1, 0, 0)); !got.NearlyEqual(V(0, 1, 0), eps) {
		t.Errorf("Rz(90°)·x = %v, want y", got)
	}
	// 180° about X maps Y to -Y.
	r = AxisAngle(V(1, 0, 0), math.Pi)
	if got := r.Apply(V(0, 1, 0)); !got.NearlyEqual(V(0, -1, 0), eps) {
		t.Errorf("Rx(180°)·y = %v, want -y", got)
	}
}

func TestAxisAngleIsRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		axis := randVec(rng)
		if axis.IsZero() {
			continue
		}
		theta := rng.Float64()*4*math.Pi - 2*math.Pi
		m := AxisAngle(axis, theta)
		if !m.IsRotation(1e-9) {
			t.Fatalf("AxisAngle(%v, %v) is not a rotation", axis, theta)
		}
	}
}

func TestAxisAnglePreservesAxis(t *testing.T) {
	axis := V(1, 2, -1)
	m := AxisAngle(axis, 1.234)
	if got := m.Apply(axis); !got.NearlyEqual(axis, 1e-9) {
		t.Errorf("rotation moved its own axis: %v -> %v", axis, got)
	}
}

func TestAxisAngleComposition(t *testing.T) {
	// Two rotations about the same axis compose by angle addition.
	axis := V(0.3, -0.4, 0.86)
	a, b := 0.5, 0.9
	lhs := AxisAngle(axis, a).Mul(AxisAngle(axis, b))
	rhs := AxisAngle(axis, a+b)
	v := V(1, -2, 0.5)
	if !lhs.Apply(v).NearlyEqual(rhs.Apply(v), 1e-9) {
		t.Error("same-axis rotations did not compose additively")
	}
}

func TestMat3TransposeInverse(t *testing.T) {
	m := AxisAngle(V(1, 1, 0), 0.7)
	v := V(2, -1, 3)
	back := m.Transpose().Apply(m.Apply(v))
	if !back.NearlyEqual(v, 1e-9) {
		t.Errorf("Rᵀ·R·v = %v, want %v", back, v)
	}
}

func TestMat3Det(t *testing.T) {
	almost(t, Identity3().Det(), 1, eps, "det(I)")
	almost(t, AxisAngle(V(0, 1, 0), 2.1).Det(), 1, 1e-12, "det(R)")
	// A reflection-like matrix has det -1.
	m := Identity3()
	m.M[0][0] = -1
	almost(t, m.Det(), -1, eps, "det(mirror)")
}

func TestMat3RowCol(t *testing.T) {
	m := Mat3{M: [3][3]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}}
	if m.Row(1) != V(4, 5, 6) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	if m.Col(2) != V(3, 6, 9) {
		t.Errorf("Col(2) = %v", m.Col(2))
	}
}

func TestQuatRotateMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		axis := randVec(rng)
		if axis.IsZero() {
			continue
		}
		theta := rng.Float64() * 2 * math.Pi
		q := QuatFromAxisAngle(axis, theta)
		m := AxisAngle(axis, theta)
		v := randVec(rng)
		if !q.Rotate(v).NearlyEqual(m.Apply(v), 1e-8*(1+v.Norm())) {
			t.Fatalf("quat and matrix disagree for axis=%v theta=%v", axis, theta)
		}
		// Quat→Mat roundtrip agrees too.
		if !q.Mat().Apply(v).NearlyEqual(m.Apply(v), 1e-8*(1+v.Norm())) {
			t.Fatalf("q.Mat() disagrees for axis=%v theta=%v", axis, theta)
		}
	}
}

func TestQuatMulComposes(t *testing.T) {
	q1 := QuatFromAxisAngle(V(0, 0, 1), math.Pi/2)
	q2 := QuatFromAxisAngle(V(1, 0, 0), math.Pi/2)
	v := V(0, 1, 0)
	// Apply q2 first, then q1.
	want := q1.Rotate(q2.Rotate(v))
	got := q1.Mul(q2).Rotate(v)
	if !got.NearlyEqual(want, eps) {
		t.Errorf("composition mismatch: %v vs %v", got, want)
	}
}

func TestQuatConjInverts(t *testing.T) {
	q := QuatFromAxisAngle(V(1, 2, 3), 1.1)
	v := V(4, 5, 6)
	if got := q.Conj().Rotate(q.Rotate(v)); !got.NearlyEqual(v, 1e-9) {
		t.Errorf("q*·q·v = %v, want %v", got, v)
	}
}

func TestQuatAngleTo(t *testing.T) {
	q0 := QuatIdentity()
	q1 := QuatFromAxisAngle(V(0, 1, 0), 0.25)
	almost(t, q0.AngleTo(q1), 0.25, 1e-9, "AngleTo")
	almost(t, q1.AngleTo(q1), 0, 1e-6, "self angle")
	// Double cover: q and -q are the same orientation.
	neg := Quat{-q1.W, -q1.X, -q1.Y, -q1.Z}
	almost(t, q1.AngleTo(neg), 0, 1e-6, "double cover")
}

func TestQuatSlerp(t *testing.T) {
	q0 := QuatIdentity()
	q1 := QuatFromAxisAngle(V(0, 0, 1), 1.0)
	mid := q0.Slerp(q1, 0.5)
	almost(t, q0.AngleTo(mid), 0.5, 1e-9, "slerp midpoint angle")
	almost(t, mid.AngleTo(q1), 0.5, 1e-9, "slerp midpoint angle 2")
	if got := q0.Slerp(q1, 0); got.AngleTo(q0) > 1e-9 {
		t.Error("Slerp(0) != q0")
	}
	if got := q0.Slerp(q1, 1); got.AngleTo(q1) > 1e-9 {
		t.Error("Slerp(1) != q1")
	}
	// Nearly-parallel fallback path.
	q2 := QuatFromAxisAngle(V(0, 0, 1), 1e-4)
	m := q0.Slerp(q2, 0.5)
	almost(t, q0.AngleTo(m), 5e-5, 1e-7, "nlerp fallback")
}

func TestQuatNormalizeZero(t *testing.T) {
	z := Quat{}
	if got := z.Normalize(); got != QuatIdentity() {
		t.Errorf("Normalize(0) = %v", got)
	}
}

func TestRotationBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		a, b := randVec(rng), randVec(rng)
		if a.IsZero() || b.IsZero() {
			continue
		}
		q := RotationBetween(a, b)
		got := q.Rotate(a.Unit())
		if !got.NearlyEqual(b.Unit(), 1e-9) {
			t.Fatalf("RotationBetween(%v,%v) maps to %v", a, b, got)
		}
	}
	// Identity for parallel inputs.
	if q := RotationBetween(V(1, 2, 3), V(2, 4, 6)); q.AngleTo(QuatIdentity()) > 1e-6 {
		t.Error("parallel inputs should yield identity")
	}
	// π for anti-parallel inputs, still mapping correctly.
	q := RotationBetween(V(0, 0, 1), V(0, 0, -1))
	if got := q.Rotate(V(0, 0, 1)); !got.NearlyEqual(V(0, 0, -1), 1e-9) {
		t.Errorf("anti-parallel rotation maps to %v", got)
	}
	// Zero input degenerates to identity rather than NaN.
	if q := RotationBetween(Zero, V(1, 0, 0)); q != QuatIdentity() {
		t.Error("zero input should yield identity")
	}
}

func TestQuatFromEuler(t *testing.T) {
	// Pure yaw rotates X toward -Z (right-hand rule about +Y).
	q := QuatFromEuler(math.Pi/2, 0, 0)
	if got := q.Rotate(V(1, 0, 0)); !got.NearlyEqual(V(0, 0, -1), 1e-9) {
		t.Errorf("yaw 90°: %v", got)
	}
	// Pure pitch rotates Y toward Z? Rotation about +X maps y->z.
	q = QuatFromEuler(0, math.Pi/2, 0)
	if got := q.Rotate(V(0, 1, 0)); !got.NearlyEqual(V(0, 0, 1), 1e-9) {
		t.Errorf("pitch 90°: %v", got)
	}
}
