package geom

import (
	"math"
	"math/rand"
	"testing"
)

// The hot-path rewrites in this package (specialized QuatFromEuler, the
// W-only AngleTo product, the Unit/Normalize identity fast paths) carry a
// bit-identity contract: they must return exactly the floats the generic
// formulations produce, because the §5.4 corpus results and the obs
// exposition are pinned byte for byte. These tests enforce the contract
// against straightforward reference implementations.

func quatBits(q Quat) [4]uint64 {
	return [4]uint64{
		math.Float64bits(q.W), math.Float64bits(q.X),
		math.Float64bits(q.Y), math.Float64bits(q.Z),
	}
}

// referenceQuatFromEuler is the original generic composition.
func referenceQuatFromEuler(yaw, pitch, roll float64) Quat {
	qy := QuatFromAxisAngle(Vec3{0, 1, 0}, yaw)
	qx := QuatFromAxisAngle(Vec3{1, 0, 0}, pitch)
	qz := QuatFromAxisAngle(Vec3{0, 0, 1}, roll)
	return qy.Mul(qx).Mul(qz)
}

func TestQuatFromEulerBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	angles := []float64{0, math.Copysign(0, -1), math.Pi, -math.Pi,
		math.Pi / 2, -math.Pi / 2, 1e-300, -1e-300}
	check := func(yaw, pitch, roll float64) {
		t.Helper()
		got := QuatFromEuler(yaw, pitch, roll)
		want := referenceQuatFromEuler(yaw, pitch, roll)
		if quatBits(got) != quatBits(want) {
			t.Fatalf("QuatFromEuler(%v, %v, %v) = %#v, generic path gives %#v",
				yaw, pitch, roll, got, want)
		}
	}
	// Edge angles in every slot, including exact zeros of both signs —
	// the sign-of-zero propagation through the expanded products is the
	// subtle part of the specialization.
	for _, y := range angles {
		for _, p := range angles {
			for _, r := range angles {
				check(y, p, r)
			}
		}
	}
	for i := 0; i < 200000; i++ {
		check(rng.NormFloat64(), rng.NormFloat64()*0.3, rng.NormFloat64()*0.2)
	}
}

// TestSincosBitIdentical pins the assumption QuatFromEuler (and the
// compiled GMA evaluator) lean on: math.Sincos returns exactly
// (math.Sin(x), math.Cos(x)).
func TestSincosBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	check := func(x float64) {
		t.Helper()
		s, c := math.Sincos(x)
		if math.Float64bits(s) != math.Float64bits(math.Sin(x)) ||
			math.Float64bits(c) != math.Float64bits(math.Cos(x)) {
			t.Fatalf("Sincos(%v) = (%v, %v), want (%v, %v)",
				x, s, c, math.Sin(x), math.Cos(x))
		}
	}
	for _, x := range []float64{0, math.Copysign(0, -1), math.Pi, -math.Pi,
		math.Pi / 2, 1e-308, 1e300, -1e300} {
		check(x)
	}
	for i := 0; i < 500000; i++ {
		check(rng.NormFloat64() * math.Pi)
	}
}

func TestAngleToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	reference := func(q, r Quat) float64 {
		d := q.Normalize().Conj().Mul(r.Normalize())
		w := math.Abs(d.W)
		if w > 1 {
			w = 1
		}
		return 2 * math.Acos(w)
	}
	randQuat := func() Quat {
		return Quat{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	for i := 0; i < 200000; i++ {
		q, r := randQuat().Normalize(), randQuat().Normalize()
		if i%16 == 0 {
			r = q // zero-angle case: the product W lands exactly on ±1
		}
		got, want := q.AngleTo(r), reference(q, r)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("AngleTo: got %v (%x), reference %v (%x)",
				got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestUnitNormalizeFastPaths verifies the n==1 shortcuts agree with the
// full division path on inputs whose norm computes to exactly 1.
func TestUnitNormalizeFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	hitsV, hitsQ := 0, 0
	for i := 0; i < 100000; i++ {
		v := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		if n := v.Norm(); n == 1 {
			hitsV++
			full := v.Scale(1 / n)
			if math.Float64bits(full.X) != math.Float64bits(v.X) ||
				math.Float64bits(full.Y) != math.Float64bits(v.Y) ||
				math.Float64bits(full.Z) != math.Float64bits(v.Z) {
				t.Fatalf("Unit fast path diverges on %v", v)
			}
		}
		q := Quat{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalize()
		if n := q.Norm(); n == 1 {
			hitsQ++
			full := Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
			if quatBits(full) != quatBits(q.Normalize()) {
				t.Fatalf("Normalize fast path diverges on %#v", q)
			}
		}
	}
	if hitsV == 0 || hitsQ == 0 {
		t.Fatalf("fast paths never exercised (hitsV=%d hitsQ=%d)", hitsV, hitsQ)
	}
}
