package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestPosesFromEulerBatchBitIdentical pins the SoA kernel to the scalar
// NewPose(QuatFromEuler(...)) path bit for bit, including specials (±0
// angles, exact-π multiples, values large enough to exercise the sincos
// Payne–Hanek fallback) and degenerate zero-norm inputs.
func TestPosesFromEulerBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const batch = 97 // deliberately not a power of two
	yaw := make([]float64, batch)
	pitch := make([]float64, batch)
	roll := make([]float64, batch)
	pos := make([]Vec3, batch)
	out := make([]Pose, batch)

	specials := []float64{0, math.Copysign(0, -1), math.Pi, -math.Pi, math.Pi / 2, 1e9, -1e9, 5e-324}
	for round := 0; round < 200; round++ {
		for i := 0; i < batch; i++ {
			if i%13 == 0 {
				yaw[i] = specials[(round+i)%len(specials)]
				pitch[i] = specials[(round+2*i)%len(specials)]
				roll[i] = specials[(round+3*i)%len(specials)]
			} else {
				yaw[i] = (rng.Float64() - 0.5) * 8
				pitch[i] = (rng.Float64() - 0.5) * 4
				roll[i] = (rng.Float64() - 0.5) * 2
			}
			pos[i] = V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		PosesFromEulerBatch(out, yaw, pitch, roll, pos)
		for i := 0; i < batch; i++ {
			want := NewPose(QuatFromEuler(yaw[i], pitch[i], roll[i]), pos[i])
			if !posesBitEqual(out[i], want) {
				t.Fatalf("round %d elem %d (yaw=%g pitch=%g roll=%g): got %+v want %+v",
					round, i, yaw[i], pitch[i], roll[i], out[i], want)
			}
		}
	}
}

func posesBitEqual(a, b Pose) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Rot.W, b.Rot.W) && eq(a.Rot.X, b.Rot.X) && eq(a.Rot.Y, b.Rot.Y) && eq(a.Rot.Z, b.Rot.Z) &&
		eq(a.Trans.X, b.Trans.X) && eq(a.Trans.Y, b.Trans.Y) && eq(a.Trans.Z, b.Trans.Z)
}

// TestPosesFromEulerBatchZeroAllocs pins the kernel at zero allocations.
func TestPosesFromEulerBatchZeroAllocs(t *testing.T) {
	const batch = 64
	yaw := make([]float64, batch)
	pitch := make([]float64, batch)
	roll := make([]float64, batch)
	pos := make([]Vec3, batch)
	out := make([]Pose, batch)
	for i := range yaw {
		yaw[i] = float64(i) * 0.01
		pitch[i] = float64(i) * -0.005
		roll[i] = float64(i) * 0.002
	}
	if n := testing.AllocsPerRun(100, func() {
		PosesFromEulerBatch(out, yaw, pitch, roll, pos)
	}); n != 0 {
		t.Fatalf("PosesFromEulerBatch allocates %v per run, want 0", n)
	}
}

func BenchmarkPosesFromEulerBatch(b *testing.B) {
	const batch = 64
	yaw := make([]float64, batch)
	pitch := make([]float64, batch)
	roll := make([]float64, batch)
	pos := make([]Vec3, batch)
	out := make([]Pose, batch)
	rng := rand.New(rand.NewSource(5))
	for i := range yaw {
		yaw[i] = (rng.Float64() - 0.5) * 8
		pitch[i] = (rng.Float64() - 0.5) * 4
		roll[i] = (rng.Float64() - 0.5) * 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PosesFromEulerBatch(out, yaw, pitch, roll, pos)
	}
}

func BenchmarkPosesFromEulerScalar(b *testing.B) {
	const batch = 64
	yaw := make([]float64, batch)
	pitch := make([]float64, batch)
	roll := make([]float64, batch)
	pos := make([]Vec3, batch)
	out := make([]Pose, batch)
	rng := rand.New(rand.NewSource(5))
	for i := range yaw {
		yaw[i] = (rng.Float64() - 0.5) * 8
		pitch[i] = (rng.Float64() - 0.5) * 4
		roll[i] = (rng.Float64() - 0.5) * 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batch; k++ {
			out[k] = NewPose(QuatFromEuler(yaw[k], pitch[k], roll[k]), pos[k])
		}
	}
}
