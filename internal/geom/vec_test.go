package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestVecBasics(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	almost(t, a.Dot(b), 1*4+2*-5+3*6, eps, "Dot")
	almost(t, a.Norm(), math.Sqrt(14), eps, "Norm")
	almost(t, a.Norm2(), 14, eps, "Norm2")
}

func TestCrossOrthogonality(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-2, 0.5, 4)
	c := a.Cross(b)
	almost(t, c.Dot(a), 0, eps, "c·a")
	almost(t, c.Dot(b), 0, eps, "c·b")
}

func TestCrossHandedness(t *testing.T) {
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); !got.NearlyEqual(V(0, 0, 1), eps) {
		t.Errorf("x×y = %v, want z", got)
	}
}

func TestUnitZeroSafe(t *testing.T) {
	if got := Zero.Unit(); got != Zero {
		t.Errorf("Unit(0) = %v", got)
	}
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if V(1e-300, 0, 0).IsZero() {
		t.Error("tiny vector reported zero")
	}
}

func TestUnitLength(t *testing.T) {
	for _, v := range []Vec3{V(3, 4, 0), V(1e-8, 1e-8, 1e-8), V(-5, 2, 7)} {
		almost(t, v.Unit().Norm(), 1, 1e-12, "Unit length of "+v.String())
	}
}

func TestAngleTo(t *testing.T) {
	almost(t, V(1, 0, 0).AngleTo(V(0, 1, 0)), math.Pi/2, eps, "90°")
	almost(t, V(1, 0, 0).AngleTo(V(1, 0, 0)), 0, eps, "0°")
	almost(t, V(1, 0, 0).AngleTo(V(-1, 0, 0)), math.Pi, eps, "180°")
	// Robust for nearly-parallel vectors (acos would lose precision here).
	tiny := 1e-8
	got := V(1, 0, 0).AngleTo(V(1, tiny, 0))
	almost(t, got, tiny, 1e-12, "tiny angle")
}

func TestDistAndLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 0, 0)
	almost(t, a.Dist(b), 2, eps, "Dist")
	if got := a.Lerp(b, 0.25); !got.NearlyEqual(V(0.5, 0, 0), eps) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.NearlyEqual(b, eps) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestOrthonormal(t *testing.T) {
	for _, v := range []Vec3{V(1, 0, 0), V(0, 1, 0), V(0, 0, 1), V(1, 1, 1), V(-0.3, 2, -7)} {
		u1, u2 := v.Orthonormal()
		n := v.Unit()
		almost(t, u1.Norm(), 1, eps, "|u1|")
		almost(t, u2.Norm(), 1, eps, "|u2|")
		almost(t, u1.Dot(n), 0, eps, "u1·n")
		almost(t, u2.Dot(n), 0, eps, "u2·n")
		almost(t, u1.Dot(u2), 0, eps, "u1·u2")
		// Right-handed: n × u1 = u2... our construction gives u2 = n×u1.
		if !n.Cross(u1).NearlyEqual(u2, 1e-9) {
			t.Errorf("basis not right-handed for %v", v)
		}
	}
}

func TestFinite(t *testing.T) {
	if !V(1, 2, 3).Finite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).Finite() {
		t.Error("NaN reported finite")
	}
	if V(0, math.Inf(1), 0).Finite() {
		t.Error("Inf reported finite")
	}
}

// randVec produces bounded random vectors for property tests.
func randVec(r *rand.Rand) Vec3 {
	return V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
}

func TestPropertyDotCommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9*(1+math.Abs(a.Dot(b)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyCrossAnticommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		return a.Cross(b).NearlyEqual(b.Cross(a).Neg(), 1e-6*(1+a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// quickCfg bounds testing/quick's inputs to a sane range: the default
// generator produces huge magnitudes where float64 cancellation dwarfs any
// geometric tolerance.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(42)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64()*200 - 100)
			}
		},
	}
}
