package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randPose(rng *rand.Rand) Pose {
	axis := randVec(rng)
	if axis.IsZero() {
		axis = V(1, 0, 0)
	}
	return NewPose(
		QuatFromAxisAngle(axis, rng.Float64()*2*math.Pi-math.Pi),
		randVec(rng),
	)
}

func TestPoseApplyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p := randPose(rng)
		v := randVec(rng)
		back := p.Inverse().Apply(p.Apply(v))
		if !back.NearlyEqual(v, 1e-8*(1+v.Norm())) {
			t.Fatalf("inverse roundtrip failed: %v -> %v", v, back)
		}
	}
}

func TestPoseCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p, q := randPose(rng), randPose(rng)
		v := randVec(rng)
		want := p.Apply(q.Apply(v))
		got := p.Compose(q).Apply(v)
		if !got.NearlyEqual(want, 1e-8*(1+v.Norm())) {
			t.Fatalf("compose mismatch: %v vs %v", got, want)
		}
	}
}

func TestPoseIdentity(t *testing.T) {
	v := V(1, 2, 3)
	if got := PoseIdentity().Apply(v); got != v {
		t.Errorf("identity moved %v to %v", v, got)
	}
}

func TestPoseApplyDirIgnoresTranslation(t *testing.T) {
	p := NewPose(QuatFromAxisAngle(V(0, 0, 1), math.Pi/2), V(100, 100, 100))
	if got := p.ApplyDir(V(1, 0, 0)); !got.NearlyEqual(V(0, 1, 0), eps) {
		t.Errorf("ApplyDir = %v", got)
	}
}

func TestPoseApplyRay(t *testing.T) {
	p := NewPose(QuatFromAxisAngle(V(0, 0, 1), math.Pi/2), V(1, 0, 0))
	r := p.ApplyRay(NewRay(V(0, 0, 0), V(1, 0, 0)))
	if !r.Origin.NearlyEqual(V(1, 0, 0), eps) {
		t.Errorf("ray origin = %v", r.Origin)
	}
	if !r.Dir.NearlyEqual(V(0, 1, 0), eps) {
		t.Errorf("ray dir = %v", r.Dir)
	}
}

func TestPoseParams6Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		p := randPose(rng)
		q := PoseFromParams6(p.Params6())
		// Same rigid transform: check action on points, not representation.
		for j := 0; j < 3; j++ {
			v := randVec(rng)
			if !q.Apply(v).NearlyEqual(p.Apply(v), 1e-7*(1+v.Norm())) {
				t.Fatalf("Params6 roundtrip changed the transform (i=%d)", i)
			}
		}
	}
}

func TestPoseParams6Identity(t *testing.T) {
	p := PoseIdentity()
	got := p.Params6()
	for i, v := range got {
		almost(t, v, 0, eps, "identity param "+string(rune('0'+i)))
	}
}

func TestPoseDelta(t *testing.T) {
	p := PoseIdentity()
	q := NewPose(QuatFromAxisAngle(V(0, 1, 0), 0.1), V(0.03, 0, 0.04))
	lin, ang := p.Delta(q)
	almost(t, lin, 0.05, 1e-9, "linear delta")
	almost(t, ang, 0.1, 1e-9, "angular delta")
}

func TestPoseInterpolate(t *testing.T) {
	p := PoseIdentity()
	q := NewPose(QuatFromAxisAngle(V(0, 0, 1), 1.0), V(2, 0, 0))
	m := p.Interpolate(q, 0.5)
	lin, ang := p.Delta(m)
	almost(t, lin, 1, 1e-9, "interp translation")
	almost(t, ang, 0.5, 1e-9, "interp rotation")
	// Endpoints.
	l0, a0 := p.Interpolate(q, 0).Delta(p)
	almost(t, l0, 0, 1e-9, "t=0 translation")
	almost(t, a0, 0, 1e-6, "t=0 rotation")
	l1, a1 := p.Interpolate(q, 1).Delta(q)
	almost(t, l1, 0, 1e-9, "t=1 translation")
	almost(t, a1, 0, 1e-6, "t=1 rotation")
}

func TestPoseFromParams6LargeRotation(t *testing.T) {
	// A rotation vector with |θ| near π must survive the roundtrip.
	p := NewPose(QuatFromAxisAngle(V(1, 1, 1), math.Pi-0.01), V(0, 0, 0))
	q := PoseFromParams6(p.Params6())
	v := V(1, -2, 0.3)
	if !q.Apply(v).NearlyEqual(p.Apply(v), 1e-7) {
		t.Error("large-angle roundtrip failed")
	}
}
