package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlaneIntersect(t *testing.T) {
	pl := NewPlane(V(0, 0, 5), V(0, 0, 1))
	r := NewRay(V(1, 2, 0), V(0, 0, 1))
	hit, tt, err := pl.Intersect(r)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, tt, 5, eps, "t")
	if !hit.NearlyEqual(V(1, 2, 5), eps) {
		t.Errorf("hit = %v", hit)
	}
}

func TestPlaneIntersectParallel(t *testing.T) {
	pl := NewPlane(V(0, 0, 5), V(0, 0, 1))
	r := NewRay(V(0, 0, 0), V(1, 0, 0))
	if _, _, err := pl.Intersect(r); err != ErrNoIntersection {
		t.Errorf("parallel ray: err = %v", err)
	}
}

func TestPlaneIntersectBehind(t *testing.T) {
	pl := NewPlane(V(0, 0, 5), V(0, 0, 1))
	r := NewRay(V(0, 0, 10), V(0, 0, 1)) // travels away from plane
	if _, _, err := pl.Intersect(r); err != ErrNoIntersection {
		t.Errorf("ray pointing away: err = %v", err)
	}
}

func TestPlaneDistanceAndProject(t *testing.T) {
	pl := NewPlane(V(0, 0, 2), V(0, 0, 1))
	almost(t, pl.DistanceTo(V(5, 5, 7)), 5, eps, "signed dist")
	almost(t, pl.DistanceTo(V(5, 5, -1)), -3, eps, "signed dist below")
	if got := pl.Project(V(5, 5, 7)); !got.NearlyEqual(V(5, 5, 2), eps) {
		t.Errorf("Project = %v", got)
	}
}

func TestReflectSpecular(t *testing.T) {
	// 45° mirror: beam along +Z hits mirror with normal (0,-1,1)/√2 and
	// must leave along +Y.
	mirror := NewPlane(V(0, 0, 1), V(0, -1, 1))
	beam := NewRay(V(0, 0, 0), V(0, 0, 1))
	out, err := Reflect(beam, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Origin.NearlyEqual(V(0, 0, 1), eps) {
		t.Errorf("origin = %v", out.Origin)
	}
	if !out.Dir.NearlyEqual(V(0, 1, 0), eps) {
		t.Errorf("dir = %v", out.Dir)
	}
}

func TestReflectAngleOfIncidence(t *testing.T) {
	// The reflected beam makes the same angle with the normal as the
	// incident beam, for random geometries.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		n := randVec(rng)
		if n.IsZero() {
			continue
		}
		mirror := NewPlane(randVec(rng), n)
		origin := mirror.Point.Add(mirror.Normal.Scale(1 + rng.Float64()*5))
		// Aim somewhere on the mirror plane.
		target := mirror.Point.Add(randVec(rng).Sub(mirror.Normal.Scale(randVec(rng).Dot(mirror.Normal))))
		target = mirror.Project(target)
		dir := target.Sub(origin)
		if dir.IsZero() {
			continue
		}
		beam := NewRay(origin, dir)
		out, err := Reflect(beam, mirror)
		if err != nil {
			continue // grazing geometry; skip
		}
		inAngle := beam.Dir.Neg().AngleTo(mirror.Normal)
		outAngle := out.Dir.AngleTo(mirror.Normal)
		if math.Abs(inAngle-outAngle) > 1e-8 {
			t.Fatalf("angle in %v != angle out %v", inAngle, outAngle)
		}
		// Energy: direction stays unit.
		almost(t, out.Dir.Norm(), 1, 1e-12, "reflected dir norm")
	}
}

func TestReflectInvolution(t *testing.T) {
	// Reflecting a reflected direction off the same plane restores the
	// original direction (applied at the hit point, traveling backward).
	mirror := NewPlane(V(0, 0, 3), V(0.2, -0.3, 1))
	beam := NewRay(V(0, 0, 0), V(0.1, 0.05, 1))
	out, err := Reflect(beam, mirror)
	if err != nil {
		t.Fatal(err)
	}
	n := mirror.Normal
	back := out.Dir.Sub(n.Scale(2 * out.Dir.Dot(n)))
	if !back.NearlyEqual(beam.Dir, 1e-12) {
		t.Errorf("double reflection: %v vs %v", back, beam.Dir)
	}
}

func TestDiskIntersect(t *testing.T) {
	d := NewDisk(V(0, 0, 2), V(0, 0, 1), 0.5)
	if _, _, err := d.Intersect(NewRay(V(0.3, 0, 0), V(0, 0, 1))); err != nil {
		t.Errorf("inside-aperture ray missed: %v", err)
	}
	if _, _, err := d.Intersect(NewRay(V(0.6, 0, 0), V(0, 0, 1))); err != ErrNoIntersection {
		t.Errorf("outside-aperture ray hit: %v", err)
	}
}

func TestRayClosestPoint(t *testing.T) {
	r := NewRay(V(0, 0, 0), V(1, 0, 0))
	p, tt := r.ClosestPointTo(V(3, 4, 0))
	almost(t, tt, 3, eps, "t")
	if !p.NearlyEqual(V(3, 0, 0), eps) {
		t.Errorf("closest = %v", p)
	}
	almost(t, r.DistanceTo(V(3, 4, 0)), 4, eps, "dist")
	// Point behind the origin clamps to t=0.
	p, tt = r.ClosestPointTo(V(-5, 1, 0))
	almost(t, tt, 0, eps, "clamped t")
	if !p.NearlyEqual(V(0, 0, 0), eps) {
		t.Errorf("clamped closest = %v", p)
	}
}

func TestClosestApproach(t *testing.T) {
	r1 := NewRay(V(0, 0, 0), V(1, 0, 0))
	r2 := NewRay(V(0, 1, 5), V(0, 0, -1))
	p1, p2, d := ClosestApproach(r1, r2)
	almost(t, d, 1, eps, "skew distance")
	if !p1.NearlyEqual(V(0, 0, 0), eps) {
		t.Errorf("p1 = %v", p1)
	}
	if !p2.NearlyEqual(V(0, 1, 0), eps) {
		t.Errorf("p2 = %v", p2)
	}
}

func TestClosestApproachParallel(t *testing.T) {
	r1 := NewRay(V(0, 0, 0), V(1, 0, 0))
	r2 := NewRay(V(0, 2, 0), V(1, 0, 0))
	_, _, d := ClosestApproach(r1, r2)
	almost(t, d, 2, eps, "parallel distance")
}

func TestSegment(t *testing.T) {
	s := Segment{A: V(0, 0, 0), B: V(2, 0, 0)}
	almost(t, s.Length(), 2, eps, "Length")
	if got := s.Midpoint(); !got.NearlyEqual(V(1, 0, 0), eps) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestSegmentDistanceTo(t *testing.T) {
	s := Segment{A: V(0, 0, 0), B: V(2, 0, 0)}
	almost(t, s.DistanceTo(V(1, 3, 0)), 3, eps, "perpendicular")
	almost(t, s.DistanceTo(V(-2, 0, 0)), 2, eps, "before A")
	almost(t, s.DistanceTo(V(5, 4, 0)), 5, eps, "past B (3-4-5)")
	almost(t, s.DistanceTo(V(1, 0, 0)), 0, eps, "on segment")
	// Degenerate zero-length segment.
	z := Segment{A: V(1, 1, 1), B: V(1, 1, 1)}
	almost(t, z.DistanceTo(V(1, 1, 3)), 2, eps, "point segment")
}

func TestIntersectLineNegativeT(t *testing.T) {
	// The plane sits behind the ray origin: Intersect refuses, but
	// IntersectLine (used by the pointing Newton step) accepts.
	pl := NewPlane(V(0, 0, -5), V(0, 0, 1))
	r := NewRay(V(0, 0, 0), V(0, 0, 1))
	if _, _, err := pl.Intersect(r); err == nil {
		t.Error("Intersect accepted a behind-the-origin crossing")
	}
	hit, tt, err := pl.IntersectLine(r)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, tt, -5, eps, "line parameter")
	if !hit.NearlyEqual(V(0, 0, -5), eps) {
		t.Errorf("line hit = %v", hit)
	}
	// Parallel still fails.
	if _, _, err := pl.IntersectLine(NewRay(V(0, 0, 0), V(1, 0, 0))); err == nil {
		t.Error("parallel line accepted")
	}
}

func TestRayAt(t *testing.T) {
	r := NewRay(V(1, 1, 1), V(0, 0, 2)) // normalizes dir
	if got := r.At(3); !got.NearlyEqual(V(1, 1, 4), eps) {
		t.Errorf("At = %v", got)
	}
}
