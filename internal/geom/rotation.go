package geom

import (
	"fmt"
	"math"

	"cyclops/internal/xmath"
)

// Mat3 is a 3×3 matrix in row-major order. It is primarily used for
// rotation matrices produced by AxisAngle (the R(r⃗, θ) operator of the
// paper's §4.1) but supports general linear maps.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// AxisAngle returns the rotation matrix R(axis, θ) that rotates a vector by
// angle theta (radians) about the given axis (which need not be unit
// length), following the right-hand rule. This is Rodrigues' rotation
// formula, the R(r⃗, θ) of the paper's GMA model.
func AxisAngle(axis Vec3, theta float64) Mat3 {
	u := axis.Unit()
	c, s := math.Cos(theta), math.Sin(theta)
	oc := 1 - c
	x, y, z := u.X, u.Y, u.Z
	return Mat3{M: [3][3]float64{
		{c + x*x*oc, x*y*oc - z*s, x*z*oc + y*s},
		{y*x*oc + z*s, c + y*y*oc, y*z*oc - x*s},
		{z*x*oc - y*s, z*y*oc + x*s, c + z*z*oc},
	}}
}

// Apply returns m·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m.M[i][k] * n.M[k][j]
			}
			r.M[i][j] = s
		}
	}
	return r
}

// Transpose returns mᵀ. For a rotation matrix this is the inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[j][i]
		}
	}
	return r
}

// Det returns the determinant.
func (m Mat3) Det() float64 {
	a := m.M
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// Col returns column j as a vector.
func (m Mat3) Col(j int) Vec3 { return Vec3{m.M[0][j], m.M[1][j], m.M[2][j]} }

// Row returns row i as a vector.
func (m Mat3) Row(i int) Vec3 { return Vec3{m.M[i][0], m.M[i][1], m.M[i][2]} }

// IsRotation reports whether m is orthonormal with determinant +1, to
// within tol.
func (m Mat3) IsRotation(tol float64) bool {
	id := m.Mul(m.Transpose())
	want := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(id.M[i][j]-want.M[i][j]) > tol {
				return false
			}
		}
	}
	return math.Abs(m.Det()-1) <= tol
}

// Quat is a unit quaternion representing an orientation. W is the scalar
// part. Cyclops uses quaternions for headset orientations (the VRH-T
// reports location plus orientation) because they interpolate cleanly and
// avoid gimbal lock during fast head motion.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity is the identity orientation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion for a rotation of theta radians
// about axis.
func QuatFromAxisAngle(axis Vec3, theta float64) Quat {
	u := axis.Unit()
	s := math.Sin(theta / 2)
	return Quat{W: math.Cos(theta / 2), X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// QuatFromEuler builds a quaternion from intrinsic yaw (about +Y), pitch
// (about +X), then roll (about +Z) angles in radians. This matches the
// yaw/pitch/roll convention used for head-motion traces.
//
// The body is the composition qy·qx·qz expanded term by term, with the
// structurally-zero axis components kept as 0·sin(θ/2) products so every
// intermediate (including the sign of zeros) matches the generic
// QuatFromAxisAngle/Mul path bit for bit — trace generation calls this
// once per sample, and the §5.4 corpus is pinned to byte-identical
// output. TestQuatFromEulerBitIdentical enforces the equivalence.
func QuatFromEuler(yaw, pitch, roll float64) Quat {
	// xmath.Sincos3 is bit-identical to three math.Sincos calls but
	// evaluates the independent chains in one frame (see its doc).
	sy, cy, sx, cx, sz, cz := xmath.Sincos3(yaw/2, pitch/2, roll/2)
	// ±0 terms exactly as the generic path produces them (u.X*s etc.).
	zy, zx, zz := 0*sy, 0*sx, 0*sz

	// m = qy.Mul(qx) with qy=(cy, zy, sy, zy), qx=(cx, sx, zx, zx).
	mw := cy*cx - zy*sx - sy*zx - zy*zx
	mx := cy*sx + zy*cx + sy*zx - zy*zx
	my := cy*zx - zy*zx + sy*cx + zy*sx
	mz := cy*zx + zy*zx - sy*sx + zy*cx

	// m.Mul(qz) with qz=(cz, zz, zz, sz).
	return Quat{
		W: mw*cz - mx*zz - my*zz - mz*sz,
		X: mw*zz + mx*cz + my*sz - mz*zz,
		Y: mw*zz - mx*sz + my*cz + mz*zz,
		Z: mw*sz + mx*zz - my*zz + mz*cz,
	}
}

// RotationBetween returns the shortest-arc quaternion rotating direction a
// onto direction b (inputs need not be unit length). Anti-parallel inputs
// rotate π about an arbitrary perpendicular axis.
func RotationBetween(a, b Vec3) Quat {
	ua, ub := a.Unit(), b.Unit()
	if ua.IsZero() || ub.IsZero() {
		return QuatIdentity()
	}
	d := ua.Dot(ub)
	if d > 1-1e-12 {
		return QuatIdentity()
	}
	if d < -1+1e-12 {
		perp, _ := ua.Orthonormal()
		return QuatFromAxisAngle(perp, math.Pi)
	}
	axis := ua.Cross(ub)
	return QuatFromAxisAngle(axis, math.Acos(clampUnit(d)))
}

func clampUnit(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Mul returns the quaternion product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit length. The zero quaternion maps to
// the identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	if n == 1 {
		// Division by 1 is an exact identity; skipping the four divides
		// is bit-identical. Quats that went through Normalize once
		// mostly land here (the norm re-computes to exactly 1 for about
		// two thirds of unit quats), which makes repeated normalization
		// in hot paths (AngleTo during pose deltas) nearly free.
		return q
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to v: q·v·q*.
func (q Quat) Rotate(v Vec3) Vec3 {
	// Optimized form: t = 2·(q.xyz × v); v' = v + w·t + q.xyz × t
	qv := Vec3{q.X, q.Y, q.Z}
	t := qv.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(qv.Cross(t))
}

// Mat returns the equivalent rotation matrix.
func (q Quat) Mat() Mat3 {
	n := q.Normalize()
	w, x, y, z := n.W, n.X, n.Y, n.Z
	return Mat3{M: [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}}
}

// AngleTo returns the geodesic angle in radians between two orientations,
// in [0, π]. This is the angular distance used when measuring headset
// angular speed from consecutive VRH-T reports.
func (q Quat) AngleTo(r Quat) float64 {
	return AngleBetweenNormalized(q.Normalize(), r.Normalize())
}

// AngleBetweenNormalized is the core of AngleTo for inputs that are
// already the outputs of Normalize. Callers that walk a chain of
// orientations (the §5.4 slot model visits each report twice, as the b of
// one pair and the a of the next) can normalize each quaternion once and
// reuse the result; because Normalize is a pure function, the cached
// value is bit-for-bit the one AngleTo would recompute.
func AngleBetweenNormalized(a, b Quat) float64 {
	// Only the scalar part of a.Conj().Mul(b) is needed. Expanded, that
	// is a.W*b.W − (−a.X)*b.X − (−a.Y)*b.Y − (−a.Z)*b.Z; since IEEE
	// subtraction of a negated product is exactly addition of the
	// product, the four-term dot below is bit-identical to the full
	// quaternion product's W — without computing the three unused
	// components. Pose deltas run this once per trace sample.
	w := math.Abs(a.W*b.W + a.X*b.X + a.Y*b.Y + a.Z*b.Z)
	// Clamp for numeric safety.
	if w > 1 {
		w = 1
	}
	// xmath.Acos is math.Acos with the asin/satan call plumbing
	// flattened — bit-identical (see its doc and equality test).
	return 2 * xmath.Acos(w)
}

// Slerp spherically interpolates from q to r by t in [0,1].
func (q Quat) Slerp(r Quat, t float64) Quat {
	a, b := q.Normalize(), r.Normalize()
	dot := a.W*b.W + a.X*b.X + a.Y*b.Y + a.Z*b.Z
	if dot < 0 {
		b = Quat{-b.W, -b.X, -b.Y, -b.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: fall back to normalized lerp.
		return Quat{
			a.W + t*(b.W-a.W),
			a.X + t*(b.X-a.X),
			a.Y + t*(b.Y-a.Y),
			a.Z + t*(b.Z-a.Z),
		}.Normalize()
	}
	theta := math.Acos(dot)
	s := math.Sin(theta)
	wa := math.Sin((1-t)*theta) / s
	wb := math.Sin(t*theta) / s
	return Quat{
		wa*a.W + wb*b.W,
		wa*a.X + wb*b.X,
		wa*a.Y + wb*b.Y,
		wa*a.Z + wb*b.Z,
	}.Normalize()
}

// String renders the quaternion.
// Finite reports whether all components are finite (no NaN/Inf).
func (q Quat) Finite() bool {
	return !math.IsNaN(q.W) && !math.IsInf(q.W, 0) &&
		!math.IsNaN(q.X) && !math.IsInf(q.X, 0) &&
		!math.IsNaN(q.Y) && !math.IsInf(q.Y, 0) &&
		!math.IsNaN(q.Z) && !math.IsInf(q.Z, 0)
}

func (q Quat) String() string {
	return fmt.Sprintf("quat(w=%.4f, x=%.4f, y=%.4f, z=%.4f)", q.W, q.X, q.Y, q.Z)
}
