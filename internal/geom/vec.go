// Package geom provides the 3-D geometric primitives used throughout
// Cyclops: vectors, rays, planes, rotations (axis-angle and quaternion),
// and rigid transforms. All angles are radians and all lengths are meters
// unless a name says otherwise.
//
// The package is deliberately small and allocation-free: every type is a
// plain value type so that the hot pointing loop (which evaluates the GMA
// forward model thousands of times per second) never touches the heap.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector (or point) in meters.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Zero is the zero vector.
var Zero = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|² without the square root.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v/|v|. The zero vector is returned unchanged so callers
// never divide by zero; use IsZero to detect that case explicitly.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	if n == 1 {
		// Already unit length: scaling by 1/1 is an exact identity, so
		// skipping it returns bit-identical components. Hot paths
		// (compiled GMA evaluation, pose deltas) hit this constantly.
		return v
	}
	return v.Scale(1 / n)
}

// IsZero reports whether every component is exactly zero.
func (v Vec3) IsZero() bool { return v == Vec3{} }

// Dist returns the Euclidean distance |v-w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Lerp linearly interpolates from v to w: result = v + t·(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// AngleTo returns the angle in radians between v and w, in [0, π].
// It is numerically robust near 0 and π (uses atan2 instead of acos).
func (v Vec3) AngleTo(w Vec3) float64 {
	c := v.Cross(w).Norm()
	d := v.Dot(w)
	return math.Atan2(c, d)
}

// NearlyEqual reports whether v and w agree to within tol in every
// component-wise difference (Euclidean distance).
func (v Vec3) NearlyEqual(w Vec3, tol float64) bool {
	return v.Dist(w) <= tol
}

// Orthonormal returns two unit vectors u1, u2 such that (v.Unit(), u1, u2)
// form a right-handed orthonormal basis. v must be non-zero.
func (v Vec3) Orthonormal() (Vec3, Vec3) {
	n := v.Unit()
	// Pick the axis least aligned with n to avoid degeneracy.
	var a Vec3
	ax, ay, az := math.Abs(n.X), math.Abs(n.Y), math.Abs(n.Z)
	switch {
	case ax <= ay && ax <= az:
		a = Vec3{1, 0, 0}
	case ay <= az:
		a = Vec3{0, 1, 0}
	default:
		a = Vec3{0, 0, 1}
	}
	u1 := n.Cross(a).Unit()
	u2 := n.Cross(u1)
	return u1, u2
}

// String renders the vector with millimeter precision, which is the scale
// that matters in Cyclops (link tolerances are a few mm).
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4f, %.4f, %.4f)", v.X, v.Y, v.Z)
}

// Finite reports whether all components are finite (no NaN/Inf).
func (v Vec3) Finite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
