package geom

import (
	"fmt"
	"math"
)

// Pose is a rigid transform (rotation followed by translation) mapping
// points from a local frame into a parent frame: world = R·local + T.
//
// Poses serve two roles in Cyclops:
//
//   - A headset position as reported by the VRH tracking system (location +
//     orientation), the Ψ of the paper's 5-tuples.
//   - The K-space → VR-space mapping of §4.2. Each mapping is 6 parameters
//     (3 rotation, 3 translation); the TX and RX mappings together are the
//     12 "mapping parameters" learned jointly at deployment.
type Pose struct {
	Rot   Quat
	Trans Vec3
}

// PoseIdentity is the identity transform.
func PoseIdentity() Pose { return Pose{Rot: QuatIdentity()} }

// NewPose builds a pose from an orientation and a translation.
func NewPose(rot Quat, trans Vec3) Pose { return Pose{Rot: rot.Normalize(), Trans: trans} }

// Apply maps a point from the local frame to the parent frame.
func (p Pose) Apply(v Vec3) Vec3 { return p.Rot.Rotate(v).Add(p.Trans) }

// ApplyDir maps a direction (no translation).
func (p Pose) ApplyDir(v Vec3) Vec3 { return p.Rot.Rotate(v) }

// ApplyRay maps a ray.
func (p Pose) ApplyRay(r Ray) Ray {
	return Ray{Origin: p.Apply(r.Origin), Dir: p.ApplyDir(r.Dir)}
}

// Inverse returns the pose mapping parent-frame points back to the local
// frame.
func (p Pose) Inverse() Pose {
	inv := p.Rot.Conj()
	return Pose{Rot: inv, Trans: inv.Rotate(p.Trans.Neg())}
}

// Compose returns the pose that first applies q, then p: (p∘q)(v) = p(q(v)).
func (p Pose) Compose(q Pose) Pose {
	return Pose{Rot: p.Rot.Mul(q.Rot).Normalize(), Trans: p.Apply(q.Trans)}
}

// Params6 packs the pose into the 6-parameter vector used by the §4.2
// mapping optimizer: a rotation vector (axis scaled by angle, radians)
// followed by the translation (meters). Rotation vectors are the natural
// minimal parameterization for gradient-based fitting: no normalization
// constraint, smooth near identity.
func (p Pose) Params6() [6]float64 {
	n := p.Rot.Normalize()
	// Convert quaternion to rotation vector.
	w := n.W
	v := Vec3{n.X, n.Y, n.Z}
	s := v.Norm()
	var rv Vec3
	if s < 1e-12 {
		rv = Vec3{} // identity
	} else {
		if w > 1 {
			w = 1
		} else if w < -1 {
			w = -1
		}
		angle := 2 * math.Atan2(s, w)
		// Keep angle in (-π, π] for a unique representation.
		if angle > math.Pi {
			angle -= 2 * math.Pi
		}
		rv = v.Scale(angle / s)
	}
	return [6]float64{rv.X, rv.Y, rv.Z, p.Trans.X, p.Trans.Y, p.Trans.Z}
}

// PoseFromParams6 is the inverse of Params6.
func PoseFromParams6(p [6]float64) Pose {
	rv := Vec3{p[0], p[1], p[2]}
	angle := rv.Norm()
	var q Quat
	if angle < 1e-12 {
		q = QuatIdentity()
	} else {
		q = QuatFromAxisAngle(rv, angle)
	}
	return Pose{Rot: q, Trans: Vec3{p[3], p[4], p[5]}}
}

// Finite reports whether every component of the pose is finite — the
// validity gate a poisoned tracking report must fail before its NaNs can
// reach the pointing solvers.
func (p Pose) Finite() bool { return p.Rot.Finite() && p.Trans.Finite() }

// Delta returns the translational and rotational distance between two
// poses: |T₁-T₂| in meters and the geodesic angle in radians. These are
// the two speeds (after dividing by elapsed time) that the paper's Fig 3
// characterizes for headset motion.
func (p Pose) Delta(q Pose) (linear, angular float64) {
	return p.Trans.Dist(q.Trans), p.Rot.AngleTo(q.Rot)
}

// Interpolate moves from p toward q by fraction t in [0,1], translating
// linearly and rotating along the geodesic. Used by the trace player to
// resample 10 ms pose reports onto the 1 ms simulation timeline.
func (p Pose) Interpolate(q Pose, t float64) Pose {
	return Pose{Rot: p.Rot.Slerp(q.Rot, t), Trans: p.Trans.Lerp(q.Trans, t)}
}

// String renders the pose compactly.
func (p Pose) String() string {
	return fmt.Sprintf("pose{t=%v, r=%v}", p.Trans, p.Rot)
}
