package core

import (
	"testing"
	"time"

	"cyclops/internal/obs"
	"cyclops/internal/pointing"
)

const tickMs = time.Millisecond

// The supervisor's transition table: TRACKING → REACQUIRING on link loss,
// REACQUIRING → DEGRADED after DegradeAfter of continuous downtime, and
// any down state → TRACKING the moment the monitor reports up.
func TestSupervisorStateTransitions(t *testing.T) {
	cases := []struct {
		name string
		step func(s *Supervisor)
		want SupState
	}{
		{"starts tracking", func(s *Supervisor) {}, SupTracking},
		{"stays tracking while up", func(s *Supervisor) {
			for at := time.Duration(0); at < 50*tickMs; at += tickMs {
				s.Observe(at, tickMs, true, true)
			}
		}, SupTracking},
		{"link loss enters reacquiring", func(s *Supervisor) {
			s.Observe(0, tickMs, true, true)
			s.Observe(tickMs, tickMs, false, false)
		}, SupReacquiring},
		{"short outage never degrades", func(s *Supervisor) {
			for at := time.Duration(0); at < 100*tickMs; at += tickMs {
				s.Observe(at, tickMs, false, false)
			}
		}, SupReacquiring},
		{"long outage degrades", func(s *Supervisor) {
			for at := time.Duration(0); at < 600*tickMs; at += tickMs {
				s.Observe(at, tickMs, false, false)
			}
		}, SupDegraded},
		{"recovery returns to tracking", func(s *Supervisor) {
			for at := time.Duration(0); at < 600*tickMs; at += tickMs {
				s.Observe(at, tickMs, false, false)
			}
			s.Observe(600*tickMs, tickMs, true, true)
		}, SupTracking},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewSupervisor(RecoveryOptions{}, 1, nil)
			c.step(s)
			if s.State() != c.want {
				t.Errorf("state = %v, want %v", s.State(), c.want)
			}
		})
	}
}

// The HANDOVER extension of the transition table: TRACKING → HANDOVER at
// BeginHandover, HANDOVER → TRACKING on first standby light, HANDOVER →
// REACQUIRING when the monitor's holdover expires while still dark, and a
// failed handover degrades like any other outage.
func TestSupervisorHandoverTransitions(t *testing.T) {
	cases := []struct {
		name string
		step func(s *Supervisor)
		want SupState
	}{
		{"begin enters handover", func(s *Supervisor) {
			s.Observe(0, tickMs, true, true)
			s.BeginHandover(tickMs, 5*tickMs)
		}, SupHandover},
		{"standby light completes handover", func(s *Supervisor) {
			s.Observe(0, tickMs, true, true)
			s.BeginHandover(tickMs, 5*tickMs)
			s.Observe(2*tickMs, tickMs, true, false) // dark, riding holdover
			s.Observe(3*tickMs, tickMs, true, true)  // standby lit
		}, SupTracking},
		{"holdover expiry falls through to reacquiring", func(s *Supervisor) {
			s.Observe(0, tickMs, true, true)
			s.BeginHandover(tickMs, 5*tickMs)
			s.Observe(2*tickMs, tickMs, false, false) // standby never lit
		}, SupReacquiring},
		{"failed handover degrades like any outage", func(s *Supervisor) {
			s.Observe(0, tickMs, true, true)
			s.BeginHandover(tickMs, 5*tickMs)
			for at := 2 * tickMs; at < 700*tickMs; at += tickMs {
				s.Observe(at, tickMs, false, false)
			}
		}, SupDegraded},
		{"mid-outage switch leaves the outage machinery in charge", func(s *Supervisor) {
			s.Observe(0, tickMs, false, false) // already REACQUIRING
			s.BeginHandover(tickMs, 5*tickMs)
		}, SupReacquiring},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewSupervisor(RecoveryOptions{}, 1, nil)
			c.step(s)
			if s.State() != c.want {
				t.Errorf("state = %v, want %v", s.State(), c.want)
			}
			if s.Handovers() != 1 {
				t.Errorf("handovers = %d, want 1", s.Handovers())
			}
		})
	}
}

// The handover instruments register only when armed, and record the dark
// time and staleness of each completed switch.
func TestSupervisorHandoverMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSupervisor(RecoveryOptions{}, 1, reg)
	s.ArmHandover(reg)
	s.Observe(0, tickMs, true, true)
	s.BeginHandover(tickMs, 6*tickMs)
	s.Observe(2*tickMs, tickMs, true, false)
	s.Observe(3*tickMs, tickMs, true, true)
	s.Finish()
	exp := reg.Exposition()
	for _, want := range []string{
		"cyclops_handover_total 1",
		"cyclops_handover_seconds_count 1",
		"cyclops_handover_standby_staleness_seconds 0.006",
		"cyclops_supervisor_handover_seconds",
	} {
		if !contains(exp, want) {
			t.Errorf("armed exposition missing %q", want)
		}
	}
	if s.TimeIn(SupHandover) == 0 {
		t.Error("no HANDOVER time accumulated")
	}

	// Unarmed supervisors must not register the handover names — a faulted
	// run without standbys exposes the historical metric set byte for byte.
	reg2 := obs.NewRegistry()
	s2 := NewSupervisor(RecoveryOptions{}, 1, reg2)
	s2.Observe(0, tickMs, true, true)
	s2.Finish()
	if contains(reg2.Exposition(), "cyclops_handover") {
		t.Error("unarmed supervisor registered handover metrics")
	}
}

func TestSupervisorOutageAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSupervisor(RecoveryOptions{}, 1, reg)
	down := func(from, ticks int) {
		for i := 0; i < ticks; i++ {
			s.Observe(time.Duration(from+i)*tickMs, tickMs, false, false)
		}
	}
	up := func(from, ticks int) {
		for i := 0; i < ticks; i++ {
			s.Observe(time.Duration(from+i)*tickMs, tickMs, true, true)
		}
	}
	up(0, 10)
	down(10, 700) // one long outage (degrades)
	up(710, 10)
	down(720, 100) // one short outage
	up(820, 10)

	if s.Outages() != 2 || s.Reacquired() != 2 {
		t.Errorf("outages = %d reacquired = %d, want 2/2", s.Outages(), s.Reacquired())
	}
	if s.Down() {
		t.Error("supervisor still down after recovery")
	}
	if got := s.TimeIn(SupDegraded); got == 0 {
		t.Error("no degraded time accumulated")
	}
	total := s.TimeIn(SupTracking) + s.TimeIn(SupReacquiring) + s.TimeIn(SupDegraded)
	if want := 830 * tickMs; total != want {
		t.Errorf("time-in-state total = %v, want %v", total, want)
	}
	s.Finish()
	exp := reg.Exposition()
	for _, want := range []string{"cyclops_outage_total 2", "cyclops_reacquire_seconds_count 2"} {
		if !contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// Backoff grows exponentially (with bounded jitter) and resets on success;
// the spiral arms after SpiralAfter consecutive failures.
func TestSupervisorBackoffAndSpiral(t *testing.T) {
	s := NewSupervisor(RecoveryOptions{}, 1, nil)
	if !s.AllowSolve(0) {
		t.Fatal("fresh supervisor blocks solves")
	}
	var prev time.Duration
	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 100 * tickMs
		s.SolveFailed(at)
		delay := s.retryAt - at
		if delay <= 0 {
			t.Fatalf("failure %d: non-positive backoff %v", i, delay)
		}
		// Jitter is ±25%, growth ×2 until the cap — so each delay stays
		// within [0.75, 2.5]× the previous one once growing.
		if i > 0 && delay > 0 {
			lo, hi := prev*3/8, prev*3 // wide envelope around ×2 ± jitter
			if delay < lo || delay > hi {
				t.Errorf("failure %d: backoff %v outside [%v, %v] (prev %v)", i, delay, lo, hi, prev)
			}
		}
		prev = delay
		if s.AllowSolve(at) {
			t.Errorf("failure %d: solve allowed during backoff", i)
		}
	}
	if !s.SpiralDue(10 * time.Second) {
		t.Error("spiral not armed after 6 consecutive failures")
	}
	// Spiral probes are deterministic and expand outward.
	s2 := NewSupervisor(RecoveryOptions{}, 1, nil)
	for i := 0; i < 6; i++ {
		s2.SolveFailed(time.Duration(i) * 100 * tickMs)
	}
	fallback := pointing.Voltages{TX1: 1, TX2: -1, RX1: 0.5, RX2: -0.5}
	var lastR float64
	for i := 0; i < 5; i++ {
		at := 10*time.Second + time.Duration(i)*10*tickMs
		v := s.SpiralNext(at, fallback)
		v2 := s2.SpiralNext(at, fallback)
		if v != v2 {
			t.Fatalf("probe %d: spiral not deterministic: %+v vs %+v", i, v, v2)
		}
		d1, d2 := v.TX1-fallback.TX1, v.TX2-fallback.TX2
		r := d1*d1 + d2*d2
		if r <= lastR {
			t.Errorf("probe %d: radius² %v did not grow from %v", i, r, lastR)
		}
		lastR = r
	}
	// Success resets everything.
	s.SolveOK(fallback)
	if !s.AllowSolve(0) || s.SpiralDue(time.Hour) {
		t.Error("SolveOK did not reset backoff/spiral")
	}
}

// StartVoltages passes the warm start through on a healthy solver and
// perturbs from last-good (deterministically per seed) after failures.
func TestSupervisorStartVoltages(t *testing.T) {
	warm := pointing.Voltages{TX1: 1, TX2: 2, RX1: 3, RX2: 4}
	good := pointing.Voltages{TX1: 0.1, TX2: 0.2, RX1: 0.3, RX2: 0.4}

	s := NewSupervisor(RecoveryOptions{}, 7, nil)
	if got := s.StartVoltages(warm); got != warm {
		t.Errorf("healthy start = %+v, want warm %+v", got, warm)
	}
	s.SolveOK(good)
	s.SolveFailed(10 * tickMs)
	got := s.StartVoltages(warm)
	if got == warm || got == good {
		t.Error("post-failure start not perturbed from last-good")
	}
	if !got.Finite() {
		t.Errorf("perturbed start not finite: %+v", got)
	}

	// Same seed → same perturbation sequence.
	s2 := NewSupervisor(RecoveryOptions{}, 7, nil)
	s2.StartVoltages(warm)
	s2.SolveOK(good)
	s2.SolveFailed(10 * tickMs)
	if got2 := s2.StartVoltages(warm); got2 != got {
		t.Errorf("same-seed supervisors diverged: %+v vs %+v", got2, got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
