package core

import (
	"reflect"
	"testing"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/handover"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// occlusionAt builds a deep occlusion window on a schedule.
func occlusionAt(start, end time.Duration) fault.Window {
	return fault.Window{
		Kind: fault.Occlusion, Start: start, End: end,
		DepthDB: 40, Ramp: 10 * time.Millisecond,
	}
}

// A primary-path occlusion with a clear standby is rescued by one
// make-before-break switch: the monitor's holdover rides through the ~2 ms
// slew, so the SFP never unlocks and the 3 s re-lock is never paid.
func TestRunHandoverRescuesOcclusion(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	standbys := handover.StandbysFor(optics.Diverging10G16mm, 5, handover.RingPositions(1, 1.4))
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{
		occlusionAt(2*time.Second, 2*time.Second+300*time.Millisecond),
	}}
	res, err := s.Run(RunOptions{
		Program:  motion.Static{P: link.DefaultHeadsetPose(), Len: 8 * time.Second},
		Faults:   sched,
		Handover: &HandoverOptions{Standbys: standbys},
	})
	if err != nil {
		t.Fatalf("handover run aborted: %v", err)
	}
	if res.Handovers < 2 {
		t.Errorf("Handovers = %d, want ≥ 2 (switch out + failback)", res.Handovers)
	}
	// The whole point: the same occlusion that costs the single-TX run a
	// multi-second outage (TestRunMidRunOcclusionRecovers) never unlocks
	// the SFP here.
	if res.Outages != 0 {
		t.Errorf("Outages = %d, want 0 (handover should pre-empt the outage)", res.Outages)
	}
	if res.UpFraction != 1 {
		t.Errorf("UpFraction = %v, want 1 (holdover must carry the switch)", res.UpFraction)
	}
	if res.DegradedTicks != 0 {
		t.Errorf("DegradedTicks = %d, want 0", res.DegradedTicks)
	}
	if last := res.Samples[len(res.Samples)-1]; !last.Up || !last.PowerOK {
		t.Errorf("run did not end healthy: %+v", last)
	}
	// Failback restored the primary, and Run's defer restored s.Plant.
	exp := res.Metrics.Exposition()
	for _, want := range []string{"cyclops_handover_total 2", "cyclops_handover_seconds_count"} {
		if !contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Bit-reproducible, like every faulted run.
	s2 := oracleSystem(optics.Diverging10G16mm, 5)
	standbys2 := handover.StandbysFor(optics.Diverging10G16mm, 5, handover.RingPositions(1, 1.4))
	res2, err := s2.Run(RunOptions{
		Program:  motion.Static{P: link.DefaultHeadsetPose(), Len: 8 * time.Second},
		Faults:   sched,
		Handover: &HandoverOptions{Standbys: standbys2},
	})
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(res2, res) {
		t.Error("handover run not reproducible")
	}
}

// Run restores the System's plant (the primary) after a handover run, even
// when the run ends while a standby is active.
func TestRunRestoresPrimaryPlant(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	primary := s.Plant
	standbys := handover.StandbysFor(optics.Diverging10G16mm, 5, handover.RingPositions(1, 1.4))
	// Occlusion runs to the end of the program: no failback.
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{
		occlusionAt(1*time.Second, 4*time.Second),
	}}
	res, err := s.Run(RunOptions{
		Program:  motion.Static{P: link.DefaultHeadsetPose(), Len: 3 * time.Second},
		Faults:   sched,
		Handover: &HandoverOptions{Standbys: standbys},
	})
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if res.Handovers != 1 {
		t.Errorf("Handovers = %d, want 1 (no failback before the run ends)", res.Handovers)
	}
	if s.Plant != primary {
		t.Error("System.Plant not restored to the primary after the run")
	}
	if standbys[0].AttenuationDB() != 0 {
		t.Error("standby fault surface not cleaned after the run")
	}
}

// When every TX path is blocked there is nothing to switch to: no handover
// fires, and the episode runs through the ordinary outage machinery
// (REACQUIRING → DEGRADED), exactly like a single-TX run.
func TestRunHandoverAllPathsBlocked(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	standbys := handover.StandbysFor(optics.Diverging10G16mm, 5, handover.RingPositions(1, 1.4))
	win := []fault.Window{occlusionAt(2*time.Second, 2*time.Second+300*time.Millisecond)}
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 8 * time.Second},
		Faults:  &fault.Schedule{Seed: 1, Windows: win},
		Handover: &HandoverOptions{
			Standbys:      standbys,
			StandbyFaults: []*fault.Schedule{{Seed: 2, Windows: win}},
		},
	})
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if res.Handovers != 0 {
		t.Errorf("Handovers = %d, want 0 (no clear candidate existed)", res.Handovers)
	}
	if res.Outages != 1 {
		t.Errorf("Outages = %d, want 1", res.Outages)
	}
	if res.DegradedTicks == 0 {
		t.Error("all-blocked episode never degraded")
	}
}

// Handover option validation: standbys are required, a fault schedule must
// be armed, and StandbyFaults must match the standby count.
func TestRunOptionsValidateHandover(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	standbys := handover.StandbysFor(optics.Diverging10G16mm, 1, handover.RingPositions(1, 1.4))
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{
		occlusionAt(100*time.Millisecond, 200*time.Millisecond),
	}}
	cases := []struct {
		name string
		opts RunOptions
	}{
		{"no standbys", RunOptions{Program: prog, Faults: sched, Handover: &HandoverOptions{}}},
		{"no faults", RunOptions{Program: prog, Handover: &HandoverOptions{Standbys: standbys}}},
		{"mismatched standby faults", RunOptions{Program: prog, Faults: sched, Handover: &HandoverOptions{
			Standbys:      standbys,
			StandbyFaults: []*fault.Schedule{{}, {}},
		}}},
		{"negative duration", RunOptions{Program: prog, Faults: sched, Handover: &HandoverOptions{
			Standbys: standbys, LOSHold: -time.Millisecond,
		}}},
	}
	for _, c := range cases {
		s := oracleSystem(optics.Diverging10G16mm, 1)
		if _, err := s.Run(c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// The closed-interval fencepost of core.Run is deliberate and load-bearing:
// a run of duration D at tick T produces D/T + 1 samples, landing on both
// endpoints. internal/sim and internal/handover use the half-open D/T
// convention instead — do not unify them; every published RunResult was
// produced by this loop shape.
func TestRunClosedLoopConvention(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 3)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Samples); got != 101 {
		t.Fatalf("samples = %d, want 101 (closed [0, dur] at 1 ms)", got)
	}
	if first := res.Samples[0].At; first != 0 {
		t.Errorf("first sample at %v, want 0", first)
	}
	if last := res.Samples[100].At; last != 100*time.Millisecond {
		t.Errorf("last sample at %v, want 100ms (the closed endpoint)", last)
	}
}
