package core

import (
	"fmt"
	"math"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/netem"
	"cyclops/internal/obs"
	"cyclops/internal/pointing"
	"cyclops/internal/vrh"
)

// RunOptions configures one experiment run. The zero value of every field
// except Program means "use the documented default"; Validate rejects
// nonsensical values instead of silently patching them.
type RunOptions struct {
	// Program drives the true headset pose. Required — there is no
	// default motion.
	Program motion.Program
	// Duration caps the run. Default (0): the program's own duration.
	Duration time.Duration
	// Tick is the simulation step. Default (0): 1 ms, the paper's slot
	// resolution.
	Tick time.Duration
	// SampleEvery controls how often a Sample is recorded. Default (0):
	// every tick.
	SampleEvery time.Duration
	// ReportEvery overrides the tracker's own 12–13 ms report cadence
	// with a fixed interval — the §6 "custom VRH-T with much higher
	// tracking frequency" scenario. Default (0): the tracker's cadence.
	// Intervals shorter than the realignment latency make reports arrive
	// while a mirror command is still in flight.
	ReportEvery time.Duration
	// DisableTP freezes the mirrors at their initial alignment — the
	// no-tracking baseline ablation.
	DisableTP bool
	// Metrics, when non-nil, is the registry this run records into (the
	// run's own contribution is still embedded as RunResult.Metrics).
	// Default (nil): System.Obs, and when that is nil too the run
	// records into a private registry whose snapshot is published to
	// obs.Default().
	Metrics *obs.Registry
	// Faults, when non-nil and non-empty, is the deterministic fault
	// schedule injected into this run; it also arms the Supervisor
	// recovery layer (link-down detection, backoff'd solve retries,
	// spiral reacquisition, graceful degradation). Default (nil), and an
	// empty schedule: no injection, no supervisor — bit-identical to the
	// historical run loop.
	Faults *fault.Schedule
	// Recovery tunes the supervisor; the zero value means the documented
	// defaults. Consulted only when Faults is armed — it tunes a layer
	// Faults arms rather than arming anything itself, which is why it is
	// a value, not a pointer arm.
	//cyclops:contract-ok tuning sub-struct for the Faults-gated supervisor, not an opt-in feature arm; zero value = documented defaults
	Recovery RecoveryOptions
	// SolveGate, when non-nil, arms pose-delta solver gating: a tracking
	// report whose pose has moved less than the gate's tolerance cone
	// since the last accepted solve skips the full P iteration and lets
	// the in-flight (or settled) mirror command stand. Default (nil):
	// every report runs through P, bit-identical to the historical loop;
	// arming it trades bounded extra pointing error (below the beam's
	// own capture tolerance when the cone is set sanely) for skipped
	// solves on near-static poses.
	SolveGate *SolveGateOptions
	// Handover, when non-nil, arms make-before-break multi-TX recovery:
	// standby ceiling transmitters are kept pre-pointed and the run
	// switches to the best clear one when the active path goes dark,
	// paying one realignment latency instead of the 3 s SFP re-lock.
	// Requires an armed fault schedule (handover is a recovery layer —
	// without faults there is nothing to recover from). Default (nil):
	// single-TX, bit-identical to the historical run loop.
	Handover *HandoverOptions
	// Hybrid, when non-nil, arms the hybrid FSO + mmWave link policy: the
	// baseline 802.11ad link runs side by side over its own netem stream
	// and delivered traffic fails over to it on a sustained SLO breach,
	// re-admitting FSO after re-lock plus a clear window. Unlike Handover
	// it does not require faults — a breach can come from misalignment
	// alone. Default (nil): FSO only, bit-identical to the historical run
	// loop (results and metrics exposition).
	Hybrid *HybridOptions
}

// SolveGateOptions configure pose-delta solver gating
// (RunOptions.SolveGate). Setting the pointer arms the gate — there is
// no Enable bit, so "off" and "zeroed" cannot diverge; the zero value
// of each threshold means "use the documented default".
type SolveGateOptions struct {
	// MaxTrans is the translation delta (meters) below which a report is
	// considered inside the tolerance cone (default 0.5 mm — well under
	// the millimeter-scale lateral capture tolerance of §5.4, so a
	// skipped solve cannot by itself walk the beam off the aperture).
	MaxTrans float64
	// MaxAngle is the rotation delta (radians) below which a report is
	// inside the cone (default 1 mrad, the same order as the solver's
	// own voltage tolerance mapped through the mirror gain).
	MaxAngle float64
}

func (o *SolveGateOptions) defaults() {
	if o.MaxTrans <= 0 {
		o.MaxTrans = 0.5e-3
	}
	if o.MaxAngle <= 0 {
		o.MaxAngle = 1e-3
	}
}

// HandoverOptions configure the multi-TX recovery path. The zero value of
// every duration/threshold field means "use the documented default".
type HandoverOptions struct {
	// Standbys are the standby transmitter plants (handover.StandbysFor
	// builds them); each shares the primary's RX assembly identity and
	// hosts its own TX hardware at its own ceiling mount.
	Standbys []*link.Plant
	// StandbyFaults gives each standby path its own deterministic fault
	// schedule (nil entries mean a clear path). Must be empty or match
	// len(Standbys); the primary path's schedule is RunOptions.Faults.
	StandbyFaults []*fault.Schedule
	// SwitchAfter is how long the active path must stay dark before the
	// controller switches (default 1 ms — one slot of debounce).
	SwitchAfter time.Duration
	// FreshEvery is the standby pre-point refresh cadence (default 12 ms,
	// the tracker's own report cadence).
	FreshEvery time.Duration
	// LOSHold is the SFP's LOS-assert window (Monitor.HoldOver): dark
	// spells shorter than this do not unlock the transceiver, which is
	// what lets a ~2 ms switch ride through without the re-lock penalty
	// (default 5 ms).
	LOSHold time.Duration
	// FailbackAfter is how long the primary path must stay clear before a
	// lit run switches back to it (default 500 ms).
	FailbackAfter time.Duration
	// BlockAttenDB is the injected attenuation at or above which a path
	// counts as blocked for candidate selection (default 10 dB, the 25G
	// budget's full margin — same constant the sim chaos model uses).
	BlockAttenDB float64
}

func (o *HandoverOptions) defaults() {
	if o.SwitchAfter <= 0 {
		o.SwitchAfter = time.Millisecond
	}
	if o.FreshEvery <= 0 {
		o.FreshEvery = 12 * time.Millisecond
	}
	if o.LOSHold <= 0 {
		o.LOSHold = 5 * time.Millisecond
	}
	if o.FailbackAfter <= 0 {
		o.FailbackAfter = 500 * time.Millisecond
	}
	if o.BlockAttenDB <= 0 {
		o.BlockAttenDB = 10
	}
}

// Validate reports whether the options are usable: Program must be set,
// and durations must be non-negative (zero always means "default", never
// "disable"). System.Run calls it before touching any state.
func (o RunOptions) Validate() error {
	if o.Program == nil {
		return fmt.Errorf("core: invalid RunOptions: Program is nil")
	}
	if o.Duration < 0 {
		return fmt.Errorf("core: invalid RunOptions: negative Duration %v", o.Duration)
	}
	if o.Tick < 0 {
		return fmt.Errorf("core: invalid RunOptions: negative Tick %v", o.Tick)
	}
	if o.SampleEvery < 0 {
		return fmt.Errorf("core: invalid RunOptions: negative SampleEvery %v", o.SampleEvery)
	}
	if o.ReportEvery < 0 {
		return fmt.Errorf("core: invalid RunOptions: negative ReportEvery %v", o.ReportEvery)
	}
	if o.Faults != nil {
		for i, w := range o.Faults.Windows {
			if w.Start < 0 || w.End < w.Start {
				return fmt.Errorf("core: invalid RunOptions: fault window %d malformed (%v-%v)",
					i, w.Start, w.End)
			}
		}
	}
	if g := o.SolveGate; g != nil {
		if math.IsNaN(g.MaxTrans) || math.IsInf(g.MaxTrans, 0) || g.MaxTrans < 0 ||
			math.IsNaN(g.MaxAngle) || math.IsInf(g.MaxAngle, 0) || g.MaxAngle < 0 {
			return fmt.Errorf("core: invalid RunOptions: SolveGate thresholds (%v m, %v rad) must be finite and non-negative",
				g.MaxTrans, g.MaxAngle)
		}
	}
	if h := o.Handover; h != nil {
		if len(h.Standbys) == 0 {
			return fmt.Errorf("core: invalid RunOptions: Handover armed with no standby TXs")
		}
		if o.Faults.Empty() {
			return fmt.Errorf("core: invalid RunOptions: Handover requires an armed fault schedule")
		}
		if n := len(h.StandbyFaults); n != 0 && n != len(h.Standbys) {
			return fmt.Errorf("core: invalid RunOptions: %d StandbyFaults for %d standbys",
				n, len(h.Standbys))
		}
		if h.SwitchAfter < 0 || h.FreshEvery < 0 || h.LOSHold < 0 || h.FailbackAfter < 0 {
			return fmt.Errorf("core: invalid RunOptions: negative Handover duration")
		}
	}
	if o.Hybrid != nil {
		if err := o.Hybrid.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Sample is one recorded instant of a run.
type Sample struct {
	At       time.Duration
	PowerDBm float64
	// Up is the SFP/NIC link state (includes the multi-second re-lock
	// after a loss of signal).
	Up bool
	// PowerOK reports whether instantaneous optical power clears the
	// receiver sensitivity — the alignment-capability signal, free of
	// re-lock hysteresis. Speed-threshold analysis uses this, exactly as
	// the paper leans on its received-power subplots (§5.3): once the
	// beam realigns the light is fine even while the SFP still re-locks.
	PowerOK bool
	// LinSpeed (m/s) and AngSpeed (rad/s) are the speeds implied by the
	// two most recent tracking reports — the same speed estimate the
	// paper's 50 ms windows use.
	LinSpeed, AngSpeed float64
	// Degraded marks ticks the supervisor spent in the DEGRADED state
	// (outage longer than RecoveryOptions.DegradeAfter): the run kept
	// going, but traffic accounting was frozen and the sample should not
	// count against alignment quality. Always false without fault
	// injection.
	Degraded bool
}

// RunResult holds everything a run produced.
type RunResult struct {
	Samples []Sample
	// Windows are the 50 ms iperf-style throughput measurements.
	Windows []netem.Window
	// Disconnections counts up→down transitions.
	Disconnections int
	// UpFraction is the fraction of ticks with the link up.
	UpFraction float64
	// Pointing statistics.
	Points           int
	PointFailures    int
	TotalPointIters  int
	TotalGPrimeIters int
	// SolvesSkipped counts tracking reports the pose-delta gate answered
	// without a P solve. Always zero unless RunOptions.SolveGate is
	// enabled.
	SolvesSkipped int
	// TPLatency is the realignment latency applied after each report
	// (DAQ + mirror settle), as measured from the devices.
	MeanTPLatency time.Duration
	// Outages / Reacquired count the supervisor's link-down episodes and
	// how many recovered within the run; DegradedTicks counts ticks
	// spent in the DEGRADED state. All zero without fault injection.
	Outages       int
	Reacquired    int
	DegradedTicks int
	// Handovers counts make-before-break TX switches (failbacks to the
	// primary included). Always zero without RunOptions.Handover.
	Handovers int
	// Hybrid is the link policy's contribution: failovers, re-admits,
	// time on the mmWave secondary, and the delivered availability across
	// both media. Always nil without RunOptions.Hybrid (on hybrid runs,
	// Windows and the netem metrics follow the *delivered* stream —
	// switching medium with the policy — while UpFraction still reports
	// the FSO link's own state).
	Hybrid *HybridStats
	// Metrics is this run's own observability contribution (a diff
	// against the registry's state when Run started, so shared
	// registries still yield per-run numbers).
	Metrics obs.Snapshot
}

// MeanPointIters returns the average P iterations per realignment.
func (r RunResult) MeanPointIters() float64 {
	if r.Points == 0 {
		return 0
	}
	return float64(r.TotalPointIters) / float64(r.Points)
}

// MeanGPrimeIters returns the average G′ iterations per G′ solve (two
// solves per P iteration).
func (r RunResult) MeanGPrimeIters() float64 {
	if r.TotalPointIters == 0 {
		return 0
	}
	return float64(r.TotalGPrimeIters) / float64(2*r.TotalPointIters)
}

// Run executes the experiment loop: at every tick the headset follows the
// program; on the tracker's own cadence (12–13 ms) a report arrives and
// the controller re-solves P (warm-started from the current voltages) and
// commands the mirrors, which settle after the hardware latency; the link
// monitor and traffic stream observe the resulting power each tick.
func (s *System) Run(opts RunOptions) (RunResult, error) {
	if !s.calibrated {
		return RunResult{}, fmt.Errorf("core: system not calibrated")
	}
	if err := opts.Validate(); err != nil {
		return RunResult{}, err
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = time.Millisecond
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = opts.Program.Duration()
	}
	sampleEvery := opts.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = tick
	}

	// Registry resolution: RunOptions.Metrics, else System.Obs, else a
	// private registry published to the process default at the end.
	reg := opts.Metrics
	if reg == nil {
		reg = s.Obs
	}
	publish := reg == nil
	if publish {
		reg = obs.NewRegistry()
	}
	startSnap := reg.Snapshot()
	rm := newRunMetrics(reg)
	prevPlantMetrics := s.Plant.Metrics
	s.Plant.Metrics = link.NewPlantMetrics(reg)
	defer func() { s.Plant.Metrics = prevPlantMetrics }()

	var res RunResult
	mon := link.NewMonitor(s.Plant.Config.Transceiver)
	mon.Metrics = link.NewMonitorMetrics(reg)
	stream := netem.NewStream()
	stream.Metrics = netem.NewStreamMetrics(reg)
	popts := pointing.PointOptions{Metrics: pointing.NewMetrics(reg)}

	// Fault injection + recovery: armed only by a non-empty schedule.
	// With inj == nil the loop below takes the historical code path bit
	// for bit — an all-zero schedule is indistinguishable from none.
	var inj *fault.Schedule
	var sup *Supervisor
	if !opts.Faults.Empty() {
		inj = opts.Faults
		sup = NewSupervisor(opts.Recovery, inj.Seed+1_000_099, reg)
		defer func() {
			// Leave the plant clean for the next run on this system.
			s.Plant.SetAttenuationDB(0)
			s.Plant.TXDev.SetHold(false)
			s.Plant.RXDev.SetHold(false)
			s.Plant.TXDev.SetRangeLimit(0)
			s.Plant.RXDev.SetRangeLimit(0)
		}()
	}

	// Multi-TX handover: standby plants join the run (sharing the primary's
	// metrics instance — one registering site per name), the link monitor
	// gains its LOS-assert holdover, and the supervisor gets the HANDOVER
	// instruments. This defer runs before the two above, so s.Plant is the
	// primary again by the time they clean and restore it.
	var ho *hoState
	if opts.Handover != nil {
		ho = newHoState(s, opts.Handover, opts.Faults)
		mon.HoldOver = ho.opts.LOSHold
		sup.ArmHandover(reg)
		primary := s.Plant
		prevStandbyMetrics := make([]*link.PlantMetrics, len(opts.Handover.Standbys))
		for i, p := range opts.Handover.Standbys {
			prevStandbyMetrics[i] = p.Metrics
			p.Metrics = primary.Metrics
		}
		defer func() {
			for i, p := range opts.Handover.Standbys {
				p.SetAttenuationDB(0)
				p.Metrics = prevStandbyMetrics[i]
			}
			s.Plant = primary
		}()
	}

	// Hybrid FSO + mmWave policy: the secondary link joins the run with
	// its instruments registered here (restored after, like the plant's),
	// and the policy controller records under the cyclops_policy_* names.
	var hy *hyState
	if opts.Hybrid != nil {
		hy = newHyState(opts.Hybrid, reg)
		defer func() { hy.sec.Metrics = hy.prevSecMetrics }()
	}

	// Initial state: align at the program's first pose. Under fault
	// injection a failed initial solve is an outage to recover from, not
	// a reason to abort.
	s.Plant.SetHeadset(opts.Program.Pose(0))
	first, err := s.PointNow(0, s.Plant.CurrentVoltages())
	if err != nil {
		if sup == nil {
			return res, fmt.Errorf("core: initial alignment: %w", err)
		}
		sup.SolveFailed(0)
		first.V = s.Plant.CurrentVoltages()
	}
	// The TX model does not depend on the headset pose: compile it once
	// and every P solve of the run reuses the precomputed form.
	var gate SolveGateOptions
	if opts.SolveGate != nil {
		gate = *opts.SolveGate
		gate.defaults()
	}
	l := &runLoop{
		s:           s,
		opts:        opts,
		tick:        tick,
		gate:        gate,
		gateOn:      opts.SolveGate != nil,
		sampleEvery: sampleEvery,
		rm:          rm,
		mon:         mon,
		stream:      stream,
		popts:       popts,
		inj:         inj,
		sup:         sup,
		ho:          ho,
		hy:          hy,
		gt:          s.Map.TXModel(s.KTX).Compile(),
		lastV:       first.V,
		pendingAt:   -1,
		wasUp:       true,
	}
	l.nextReport = l.reportInterval()

	// One sample lands every sampleEvery from 0 through dur inclusive;
	// sizing the slice up front keeps the record step allocation-free
	// (away from the periodic growth copies append would do).
	l.res.Samples = make([]Sample, 0, dur/sampleEvery+1)

	// Closed interval [0, dur] — deliberately one slot more than the
	// half-open `at < end` convention internal/sim and internal/handover
	// use: a run's samples must land on both endpoints (the last sample
	// sits exactly AT dur), and every published RunResult was produced by
	// this fencepost. Pinned by TestRunClosedLoopConvention — do not
	// "unify" this to at < dur, it would shift every result by a slot.
	for at := time.Duration(0); at <= dur; at += tick {
		l.step(at)
	}
	res = l.res

	if sup != nil {
		sup.Finish()
		res.Outages = sup.Outages()
		res.Reacquired = sup.Reacquired()
		res.Handovers = sup.Handovers()
		// A run that ends mid-outage still honors the contract that every
		// injected outage is matched by a recovery or an explicit
		// Degraded terminal sample.
		if sup.Down() && len(res.Samples) > 0 {
			res.Samples[len(res.Samples)-1].Degraded = true
		}
	}
	res.Windows = stream.Finish()
	if hy != nil {
		res.Hybrid = hy.finish(l.totalTicks)
	}
	if l.totalTicks > 0 {
		res.UpFraction = float64(l.upTicks) / float64(l.totalTicks)
	}
	if l.latencyN > 0 {
		res.MeanTPLatency = l.latencySum / time.Duration(l.latencyN)
	}
	rm.ticks.Add(float64(l.totalTicks))
	rm.upTicks.Add(float64(l.upTicks))
	res.Metrics = reg.Snapshot().Diff(startSnap)
	if publish {
		obs.Default().Merge(res.Metrics)
	}
	return res, nil
}

// speedWindow is the horizon recent reports are kept over: the paper
// measures speed as the VRH-T displacement across each 50 ms window,
// which averages down the per-report tracking noise.
const speedWindow = 50 * time.Millisecond

// runLoop is one run's per-tick state. Pulling the tick body out of Run
// into step makes it a named unit the hotpath lint can hold to the
// no-allocation contract; the operations and their order are exactly the
// historical inline loop's, so results stay bit-identical.
type runLoop struct {
	s           *System
	opts        RunOptions
	tick        time.Duration
	sampleEvery time.Duration

	rm     runMetrics
	mon    *link.Monitor
	stream *netem.Stream
	popts  pointing.PointOptions
	inj    *fault.Schedule
	sup    *Supervisor
	ho     *hoState
	hy     *hyState
	gt     gma.Compiled

	res RunResult

	// Recent reports, kept over the 50 ms speed horizon. The ring reuses
	// one backing array for the whole run; the old slice-and-reslice
	// window (recent = recent[1:]) leaked capacity and reallocated on
	// every window's worth of reports.
	recent reportRing

	// Pending voltage command: computed at a report, applied after the
	// hardware latency.
	pendingV  pointing.Voltages
	pendingAt time.Duration

	lastV      pointing.Voltages
	nextReport time.Duration
	nextSample time.Duration

	// Pose-delta solver gating (RunOptions.SolveGate): gateOn mirrors
	// the arm's non-nil-ness; gate is the defaulted copy. solvedPose is
	// the pose of the last accepted solve, valid while haveSolvedPose. A
	// report inside the gate's tolerance cone of solvedPose skips the P
	// iteration.
	gate           SolveGateOptions
	gateOn         bool
	solvedPose     geom.Pose
	haveSolvedPose bool

	upTicks    int
	totalTicks int
	latencySum time.Duration
	latencyN   int
	wasUp      bool
}

func (l *runLoop) reportInterval() time.Duration {
	if l.opts.ReportEvery > 0 {
		return l.opts.ReportEvery
	}
	return l.s.Tracker.NextInterval()
}

// step advances the simulation by one tick: follow the program, apply
// injected faults and settled mirror commands, consume a tracking report
// when one is due (re-solving P warm-started from the in-flight
// trajectory), then run physics, monitors, and traffic accounting.
//
//cyclops:hotpath runs once per simulated millisecond; Samples is pre-sized so the append never grows
func (l *runLoop) step(at time.Duration) {
	pose := l.opts.Program.Pose(at) //cyclops:alloc-ok Program is the motion interface; every module implementation is itself in the vet scope and the 0-alloc contract is pinned by make alloc-check
	l.s.Plant.SetHeadset(pose)
	if l.ho != nil {
		l.ho.setOtherHeadsets(l.s.Plant, pose)
	}

	// Injected fault state for this tick, applied through the
	// device surfaces (which stay fault-agnostic).
	var fs fault.State
	if l.inj != nil {
		fs = l.inj.At(at)
		if l.ho != nil {
			// Every TX path carries its own occlusion schedule; the
			// tracker/solver/galvo faults stay with the (shared) RX
			// assembly and whichever TX is active.
			fs.AttenDB = l.ho.applyAtten(at)
		} else {
			l.s.Plant.SetAttenuationDB(fs.AttenDB)
		}
		l.s.Plant.TXDev.SetHold(fs.GalvoStuck)
		l.s.Plant.RXDev.SetHold(fs.GalvoStuck)
		l.s.Plant.TXDev.SetRangeLimit(fs.GalvoSatLimit)
		l.s.Plant.RXDev.SetRangeLimit(fs.GalvoSatLimit)
	}

	// Apply a settled mirror command.
	if l.pendingAt >= 0 && at >= l.pendingAt {
		l.s.Plant.ApplyVoltages(l.pendingV)
		l.lastV = l.pendingV
		l.pendingAt = -1
	}

	// Tracking report due? A blackout window swallows the report
	// entirely (no pose, no solve — but the cadence clock keeps
	// running, like the real pipeline's dropped frames).
	if at >= l.nextReport && !l.opts.DisableTP && !fs.TrackerBlackout {
		var rep vrh.Report
		if fs.TrackerFreeze {
			// Frozen pipeline: stale pose, fresh timestamp, no
			// RNG consumed — the noise stream resumes untouched.
			rep = l.s.Tracker.Holdover(at)
		} else {
			rep = l.s.Tracker.Report(l.s.Plant.Headset(), at)
		}
		l.recent.push(rep)
		for l.recent.len() > 1 && rep.At-l.recent.front().At > speedWindow {
			l.recent.popFront()
		}

		// Warm-start from where the mirrors will actually be when
		// the new command lands: if a command is still in flight,
		// the mirrors are already moving to pendingV, and lastV is
		// one report staler than the hardware's trajectory.
		warmV := l.lastV
		if l.pendingAt >= 0 {
			warmV = l.pendingV
		}
		switch {
		case !rep.Pose.Finite():
			// Poisoned report: refuse the solve at the door
			// (pointing would reject it too — this keeps the NaN
			// out of the model transform entirely).
			l.rm.reports.Inc()
			l.res.Points++
			l.res.PointFailures++
			if l.sup != nil {
				l.sup.SolveFailed(at)
			}
		case fs.SolverDiverge:
			// Injected solver divergence: the attempt fails
			// before the iteration produces anything usable.
			l.rm.reports.Inc()
			l.res.Points++
			l.res.PointFailures++
			if l.sup != nil {
				l.sup.SolveFailed(at)
			}
		case l.sup != nil && !l.sup.AllowSolve(at):
			// Backoff: skip this report's solve; the cadence and
			// the speed window still advance.
			l.rm.reports.Inc()
		case l.ho != nil && l.ho.active != 0:
			// On a standby TX the report re-points by oracle rather
			// than through the learned model, which was calibrated
			// against the primary's TX geometry (the same isolation
			// handover.Run documents: the switching mechanism is
			// studied apart from learning error). The primary's model
			// and mapping stay untouched for failback.
			l.rm.reports.Inc()
			l.res.Points++
			v, verr := l.s.Plant.OracleAlignedVoltages()
			if verr != nil {
				l.res.PointFailures++
				if l.sup != nil {
					l.sup.SolveFailed(at)
				}
			} else {
				lat := hardwareLatency(l.s)
				l.rm.repoint.Observe(lat.Seconds())
				l.latencySum += lat
				l.latencyN++
				l.pendingV = v
				l.pendingAt = at + lat
				if l.sup != nil {
					l.sup.SolveOK(v)
				}
			}
		default:
			// Pose-delta gate: if the reported pose sits inside the
			// tolerance cone of the last accepted solve, the settled
			// (or in-flight) mirror command is still within the beam's
			// capture tolerance — answer the report without a solve.
			// Checked only on the model-based path, after the failure
			// and backoff cases above, so recovery is never starved.
			if l.gateOn && l.haveSolvedPose {
				lin, ang := rep.Pose.Delta(l.solvedPose)
				if lin <= l.gate.MaxTrans && ang <= l.gate.MaxAngle {
					l.rm.reports.Inc()
					l.rm.solvesSkipped.Inc()
					l.res.SolvesSkipped++
					break
				}
			}
			// The RX model rides on the headset: transformed and
			// compiled once per report, then shared by every Beam
			// evaluation inside the solve.
			gr := l.s.Map.RXModel(l.s.KRX, rep.Pose).Compile()
			startV := warmV
			if l.sup != nil {
				startV = l.sup.StartVoltages(warmV)
			}
			pres, perr := pointing.PointCompiled(&l.gt, &gr, startV, l.popts)
			l.rm.reports.Inc()
			l.res.Points++
			if perr != nil {
				l.res.PointFailures++
				if l.sup != nil {
					l.sup.SolveFailed(at)
				}
			} else {
				l.res.TotalPointIters += pres.Iterations
				l.res.TotalGPrimeIters += pres.GPrimeIterations
				// Hardware latency: DAQ conversion + mirror
				// settle, as the devices report it. We probe the
				// TX device's cost without mutating it by using
				// the spec directly (both ends move in parallel).
				lat := hardwareLatency(l.s)
				l.rm.repoint.Observe(lat.Seconds())
				l.latencySum += lat
				l.latencyN++
				l.pendingV = pres.V
				l.pendingAt = at + lat
				l.solvedPose, l.haveSolvedPose = rep.Pose, true
				if l.sup != nil {
					l.sup.SolveOK(pres.V)
				}
			}
		}
		l.nextReport = at + l.reportInterval()
	} else if at >= l.nextReport && !l.opts.DisableTP {
		l.nextReport = at + l.reportInterval()
	}

	// Spiral reacquisition: when solves keep failing, the supervisor
	// sweeps the mirrors deterministically around the last-good
	// voltages, one probe per settle interval, independent of the
	// report cadence. In-flight commands are never clobbered.
	if l.sup != nil && l.pendingAt < 0 && l.sup.SpiralDue(at) {
		v := l.sup.SpiralNext(at, l.lastV)
		lat := hardwareLatency(l.s)
		l.pendingV = v
		l.pendingAt = at + lat
	}

	// Physics + monitors.
	power := l.s.Plant.ReceivedPowerDBm()
	up := l.mon.Observe(at, power)
	if l.wasUp && !up {
		l.res.Disconnections++
	}
	l.wasUp = up
	if up {
		l.upTicks++
	}
	l.totalTicks++
	powerOK := power >= l.s.Plant.Config.Transceiver.SensitivityDBm
	if l.ho != nil {
		l.hoTick(at, powerOK)
	}
	degraded := false
	if l.sup != nil {
		l.sup.Observe(at, l.tick, up, powerOK)
		degraded = l.sup.State() == SupDegraded
		if degraded {
			l.res.DegradedTicks++
		}
	}
	if l.hy != nil {
		// Hybrid policy owns delivered-traffic accounting: it routes
		// l.stream to whichever medium carries this tick.
		l.hyTick(at, pose, fs, power, up, degraded)
	} else if degraded {
		// Graceful degradation: the stream's clock advances but
		// accounting freezes — a long outage is marked, not billed
		// as measured zero-throughput windows.
		l.stream.FreezeTick(at, l.tick)
	} else {
		l.stream.Tick(at, l.tick, up, l.s.Plant.Config.Transceiver.OptimalGoodputGbps)
	}

	if at >= l.nextSample {
		var lin, ang float64
		if l.recent.len() >= 2 {
			lin, ang = vrh.Speeds(l.recent.front(), l.recent.back())
		}
		l.res.Samples = append(l.res.Samples, Sample{
			At:       at,
			PowerDBm: power,
			Up:       up,
			PowerOK:  powerOK,
			LinSpeed: lin,
			AngSpeed: ang,
			Degraded: degraded,
		})
		l.nextSample = at + l.sampleEvery
	}
}

// reportRing is the 50 ms speed window's report queue: push at the back,
// pop expired reports from the front, peek both ends. It reuses one
// backing array (growing only if a run's report cadence packs more
// reports into the window than ever before), unlike the previous
// recent = recent[1:] window which abandoned a slot per expiry and forced
// append into a fresh allocation once the original array filled.
type reportRing struct {
	buf  []vrh.Report
	head int // index of the oldest report
	n    int
}

func (r *reportRing) len() int { return r.n }

func (r *reportRing) push(rep vrh.Report) {
	if r.n == len(r.buf) {
		//cyclops:alloc-ok amortized ring growth: only when a run packs more reports into the window than ever before; steady state never grows (pinned by make alloc-check)
		grown := make([]vrh.Report, 2*r.n+8)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = rep
	r.n++
}

func (r *reportRing) popFront() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

func (r *reportRing) front() vrh.Report { return r.buf[r.head] }

func (r *reportRing) back() vrh.Report {
	return r.buf[(r.head+r.n-1)%len(r.buf)]
}

// runMetrics are the loop-level instruments of core.Run; the per-subsystem
// instruments (plant power, monitor transitions, pointing iterations,
// stream totals) are registered by their own packages into the same
// registry.
type runMetrics struct {
	ticks         *obs.Counter
	upTicks       *obs.Counter
	reports       *obs.Counter
	solvesSkipped *obs.Counter
	repoint       *obs.Histogram
}

func newRunMetrics(reg *obs.Registry) runMetrics {
	return runMetrics{
		ticks: reg.Counter("cyclops_run_ticks_total",
			"Simulation ticks executed by core.Run."),
		upTicks: reg.Counter("cyclops_run_up_ticks_total",
			"Ticks with the link up (SFP locked)."),
		reports: reg.Counter("cyclops_run_reports_total",
			"Tracking reports processed (the 12-13 ms VRH-T cadence unless overridden)."),
		solvesSkipped: reg.Counter("cyclops_pointing_solves_skipped_total",
			"Tracking reports answered by the pose-delta gate without a P solve (RunOptions.SolveGate)."),
		repoint: reg.Histogram("cyclops_run_repoint_latency_seconds",
			"Realignment latency per report: DAQ write + mirror settle (paper: 1-2 ms).",
			[]float64{0.0005, 0.001, 0.00125, 0.0015, 0.00175, 0.002, 0.0025, 0.003, 0.005, 0.01}),
	}
}

// hardwareLatency estimates the realignment latency: one DAQ write plus
// the galvo small-step settle — the 1–2 ms of §5.2. (The P computation
// itself is microseconds and ignored, as in the paper.)
func hardwareLatency(s *System) time.Duration {
	// Derived from the device specs rather than mutating device state.
	spec := s.Plant.TXDev.Spec()
	return 1500*time.Microsecond + spec.StepLatency
}

// SpeedThreshold analyzes a run for the Fig 13-style question: up to what
// speed did the link sustain alignment? It buckets samples by the given
// speed accessor and returns the highest bucket (center value) whose
// samples kept optical power above sensitivity (PowerOK), scanning from
// slow to fast. Buckets with fewer than minSamples are skipped. PowerOK
// rather than SFP state keeps multi-second re-lock tails from polluting
// the slow buckets the rig passes through during recovery.
func SpeedThreshold(samples []Sample, speedOf func(Sample) float64, bucket float64, minSamples int) float64 {
	if bucket <= 0 {
		return 0
	}
	type acc struct{ ok, n int }
	buckets := map[int]*acc{}
	maxIdx := 0
	for _, s := range samples {
		idx := int(speedOf(s) / bucket)
		a := buckets[idx]
		if a == nil {
			a = &acc{}
			buckets[idx] = a
		}
		a.n++
		if s.PowerOK {
			a.ok++
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	last := 0.0
	for idx := 0; idx <= maxIdx; idx++ {
		a := buckets[idx]
		if a == nil || a.n < minSamples {
			continue
		}
		frac := float64(a.ok) / float64(a.n)
		if frac < 0.95 {
			break
		}
		last = (float64(idx) + 0.5) * bucket
	}
	return last
}

// MixedSpeedThreshold answers the Fig 14/15 mixed-motion question: what
// simultaneous (linear, angular) speed pair did the link sustain? It
// buckets samples on a 2-D speed grid (5 cm/s × 5 deg/s cells), marks each
// populated cell OK when ≥95 % of its samples kept optical power, and
// returns the corner of the largest all-OK rectangle anchored at the
// origin — "for simultaneous speeds below (lin, ang) the link stayed
// optimal", the paper's own phrasing. Cells with fewer than minSamples are
// ignored (the rig simply never dwelled there).
func MixedSpeedThreshold(samples []Sample, linMax, angMax float64, minSamples int) (lin, ang float64) {
	const (
		linBucket = 0.05              // m/s
		angBucket = 5 * math.Pi / 180 // rad/s
	)
	type cell struct{ ok, n int }
	if linMax <= 0 || angMax <= 0 {
		return 0, 0
	}
	ni := int(linMax/linBucket) + 1
	nj := int(angMax/angBucket) + 1
	grid := make([][]cell, ni)
	for i := range grid {
		grid[i] = make([]cell, nj)
	}
	exercised := false
	for _, s := range samples {
		i := int(s.LinSpeed / linBucket)
		j := int(s.AngSpeed / angBucket)
		if i >= ni || j >= nj {
			continue
		}
		grid[i][j].n++
		if grid[i][j].n >= minSamples {
			exercised = true
		}
		if s.PowerOK {
			grid[i][j].ok++
		}
	}
	// No cell was actually exercised: every populated cell is below
	// minSamples, so "unexercised does not veto" would declare the whole
	// grid OK and the tie-break would report a corner fabricated from no
	// data. There is no evidence for any tolerance — say so.
	if !exercised {
		return 0, 0
	}
	cellOK := func(i, j int) bool {
		c := grid[i][j]
		if c.n < minSamples {
			return true // unexercised: does not veto
		}
		return float64(c.ok)/float64(c.n) >= 0.95
	}
	// Pick the all-OK origin rectangle covering the most samples; ties
	// go to the smaller corner so sparse unexercised fringes cannot
	// stretch the reported bound past motion the rig actually performed.
	var bestCount int
	bestArea := math.Inf(1)
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			valid := true
			count := 0
		scan:
			for a := 0; a <= i; a++ {
				for b := 0; b <= j; b++ {
					if !cellOK(a, b) {
						valid = false
						break scan
					}
					count += grid[a][b].n
				}
			}
			if !valid {
				continue
			}
			l := float64(i+1) * linBucket
			g := float64(j+1) * angBucket
			area := l * g
			if count > bestCount || (count == bestCount && area < bestArea) {
				bestCount, bestArea = count, area
				lin, ang = l, g
			}
		}
	}
	return lin, ang
}

// MaxSpeed returns the fastest speed seen among power-OK samples.
func MaxSpeed(samples []Sample, speedOf func(Sample) float64) float64 {
	var m float64
	for _, s := range samples {
		if s.PowerOK {
			m = math.Max(m, speedOf(s))
		}
	}
	return m
}
