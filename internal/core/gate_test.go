package core

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// gateProg is a slow stroke with dwells: motion segments fast enough to
// defeat the gate's cone, separated by near-static dwells the gate can
// answer without solving.
func gateProg() motion.Program {
	return motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.10,
		StartSpeed: 0.10,
		SpeedStep:  0,
		Strokes:    2,
		Dwell:      300 * time.Millisecond,
	}
}

// TestSolveGateNilBitIdentical pins the opt-out contract after the
// pointer-arm migration: the gate is armed by setting RunOptions.SolveGate
// (there is no Enable bit any more, so the old ambiguous "disabled but
// thresholds set" state is unrepresentable). A nil arm must engage no gate
// machinery — zero skips — and stay bit-identical run to run: same
// samples, same pointing counts.
func TestSolveGateNilBitIdentical(t *testing.T) {
	run := func() RunResult {
		t.Helper()
		s := oracleSystem(optics.Diverging10G16mm, 11)
		res, err := s.Run(RunOptions{Program: gateProg(), SolveGate: nil})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	off := run()

	if base.SolvesSkipped != 0 || off.SolvesSkipped != 0 {
		t.Fatalf("nil gate skipped solves: %d / %d", base.SolvesSkipped, off.SolvesSkipped)
	}
	if base.Points != off.Points || base.PointFailures != off.PointFailures ||
		base.TotalPointIters != off.TotalPointIters ||
		base.TotalGPrimeIters != off.TotalGPrimeIters ||
		base.Disconnections != off.Disconnections ||
		math.Float64bits(base.UpFraction) != math.Float64bits(off.UpFraction) {
		t.Fatalf("nil gate is not deterministic:\n  base %+v\n  off  %+v", base, off)
	}
	if len(base.Samples) != len(off.Samples) {
		t.Fatalf("sample count differs: %d vs %d", len(base.Samples), len(off.Samples))
	}
	for i := range base.Samples {
		if base.Samples[i] != off.Samples[i] {
			t.Fatalf("sample %d differs:\n  base %+v\n  off  %+v", i, base.Samples[i], off.Samples[i])
		}
	}
}

// TestSolveGateSkipsNearStaticReports checks the gate earns its keep
// without hurting the link: during the dwells the pose moves less than
// the cone, those reports are answered without a P solve (counted in
// both RunResult and the cyclops_pointing_solves_skipped_total counter),
// and the link holds because the last accepted command is still inside
// the beam's capture tolerance.
func TestSolveGateSkipsNearStaticReports(t *testing.T) {
	base := func() RunResult {
		s := oracleSystem(optics.Diverging10G16mm, 11)
		res, err := s.Run(RunOptions{Program: gateProg()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	s := oracleSystem(optics.Diverging10G16mm, 11)
	res, err := s.Run(RunOptions{Program: gateProg(), SolveGate: &SolveGateOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolvesSkipped == 0 {
		t.Fatal("gate enabled over 600 ms of dwells yet skipped nothing")
	}
	if got := res.Metrics.Counters["cyclops_pointing_solves_skipped_total"]; got != float64(res.SolvesSkipped) {
		t.Errorf("skip counter = %v, want %d", got, res.SolvesSkipped)
	}
	if res.Points >= base.Points {
		t.Errorf("gated run solved %d times, ungated %d — gate saved nothing", res.Points, base.Points)
	}
	if res.Points+res.SolvesSkipped != base.Points {
		t.Errorf("solves (%d) + skips (%d) != ungated solves (%d): reports went missing",
			res.Points, res.SolvesSkipped, base.Points)
	}
	if res.UpFraction < 0.98 {
		t.Errorf("gated up fraction = %v — skipping in-cone solves broke the link", res.UpFraction)
	}
}

// TestSolveGateValidate: armed gates must carry sane thresholds; a nil
// arm has no thresholds to consult. (Before the pointer migration a
// "disabled" gate could carry garbage thresholds that validation
// ignored; that state no longer exists.)
func TestSolveGateValidate(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	cases := []struct {
		name string
		gate *SolveGateOptions
		ok   bool
	}{
		{"nil arm", nil, true},
		{"armed defaults", &SolveGateOptions{}, true},
		{"armed explicit", &SolveGateOptions{MaxTrans: 1e-3, MaxAngle: 2e-3}, true},
		{"NaN trans", &SolveGateOptions{MaxTrans: math.NaN()}, false},
		{"inf angle", &SolveGateOptions{MaxAngle: math.Inf(1)}, false},
		{"negative trans", &SolveGateOptions{MaxTrans: -1}, false},
	}
	for _, c := range cases {
		err := RunOptions{Program: prog, SolveGate: c.gate}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
