package core

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// gateProg is a slow stroke with dwells: motion segments fast enough to
// defeat the gate's cone, separated by near-static dwells the gate can
// answer without solving.
func gateProg() motion.Program {
	return motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.10,
		StartSpeed: 0.10,
		SpeedStep:  0,
		Strokes:    2,
		Dwell:      300 * time.Millisecond,
	}
}

// TestSolveGateDisabledBitIdentical pins the opt-out contract: with the
// gate left at its zero value (and with Enable false but nonsense
// thresholds that must be ignored), a run is byte-identical to the
// historical loop — same samples, same pointing counts, no skips.
func TestSolveGateDisabledBitIdentical(t *testing.T) {
	run := func(gate SolveGateOptions) RunResult {
		t.Helper()
		s := oracleSystem(optics.Diverging10G16mm, 11)
		res, err := s.Run(RunOptions{Program: gateProg(), SolveGate: gate})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(SolveGateOptions{})
	off := run(SolveGateOptions{Enable: false, MaxTrans: 5, MaxAngle: 5})

	if base.SolvesSkipped != 0 || off.SolvesSkipped != 0 {
		t.Fatalf("disabled gate skipped solves: %d / %d", base.SolvesSkipped, off.SolvesSkipped)
	}
	if base.Points != off.Points || base.PointFailures != off.PointFailures ||
		base.TotalPointIters != off.TotalPointIters ||
		base.TotalGPrimeIters != off.TotalGPrimeIters ||
		base.Disconnections != off.Disconnections ||
		math.Float64bits(base.UpFraction) != math.Float64bits(off.UpFraction) {
		t.Fatalf("disabled gate changed the run:\n  base %+v\n  off  %+v", base, off)
	}
	if len(base.Samples) != len(off.Samples) {
		t.Fatalf("sample count differs: %d vs %d", len(base.Samples), len(off.Samples))
	}
	for i := range base.Samples {
		if base.Samples[i] != off.Samples[i] {
			t.Fatalf("sample %d differs:\n  base %+v\n  off  %+v", i, base.Samples[i], off.Samples[i])
		}
	}
}

// TestSolveGateSkipsNearStaticReports checks the gate earns its keep
// without hurting the link: during the dwells the pose moves less than
// the cone, those reports are answered without a P solve (counted in
// both RunResult and the cyclops_pointing_solves_skipped_total counter),
// and the link holds because the last accepted command is still inside
// the beam's capture tolerance.
func TestSolveGateSkipsNearStaticReports(t *testing.T) {
	base := func() RunResult {
		s := oracleSystem(optics.Diverging10G16mm, 11)
		res, err := s.Run(RunOptions{Program: gateProg()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	s := oracleSystem(optics.Diverging10G16mm, 11)
	res, err := s.Run(RunOptions{Program: gateProg(), SolveGate: SolveGateOptions{Enable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolvesSkipped == 0 {
		t.Fatal("gate enabled over 600 ms of dwells yet skipped nothing")
	}
	if got := res.Metrics.Counters["cyclops_pointing_solves_skipped_total"]; got != float64(res.SolvesSkipped) {
		t.Errorf("skip counter = %v, want %d", got, res.SolvesSkipped)
	}
	if res.Points >= base.Points {
		t.Errorf("gated run solved %d times, ungated %d — gate saved nothing", res.Points, base.Points)
	}
	if res.Points+res.SolvesSkipped != base.Points {
		t.Errorf("solves (%d) + skips (%d) != ungated solves (%d): reports went missing",
			res.Points, res.SolvesSkipped, base.Points)
	}
	if res.UpFraction < 0.98 {
		t.Errorf("gated up fraction = %v — skipping in-cone solves broke the link", res.UpFraction)
	}
}

// TestSolveGateValidate: enabled gates must carry sane thresholds; a
// disabled gate's thresholds are never consulted.
func TestSolveGateValidate(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	cases := []struct {
		name string
		gate SolveGateOptions
		ok   bool
	}{
		{"zero value", SolveGateOptions{}, true},
		{"enabled defaults", SolveGateOptions{Enable: true}, true},
		{"enabled explicit", SolveGateOptions{Enable: true, MaxTrans: 1e-3, MaxAngle: 2e-3}, true},
		{"NaN trans", SolveGateOptions{Enable: true, MaxTrans: math.NaN()}, false},
		{"inf angle", SolveGateOptions{Enable: true, MaxAngle: math.Inf(1)}, false},
		{"negative trans", SolveGateOptions{Enable: true, MaxTrans: -1}, false},
		{"disabled garbage ignored", SolveGateOptions{MaxTrans: math.NaN(), MaxAngle: -1}, true},
	}
	for _, c := range cases {
		err := RunOptions{Program: prog, SolveGate: c.gate}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
