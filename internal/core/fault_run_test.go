package core

import (
	"reflect"
	"testing"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// A nil Faults field and an empty schedule take the identical code path:
// the run output — samples, windows, metrics exposition — is bit-identical.
func TestRunEmptyScheduleBitIdentical(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: 2 * time.Second}
	run := func(sched *fault.Schedule) RunResult {
		s := oracleSystem(optics.Diverging10G16mm, 5)
		res, err := s.Run(RunOptions{Program: prog, Faults: sched})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	base := run(nil)
	empty := run(&fault.Schedule{Seed: 42})
	if !reflect.DeepEqual(empty, base) {
		t.Error("empty schedule changed the run output")
	}
	if empty.Metrics.Exposition() != base.Metrics.Exposition() {
		t.Error("empty schedule changed the metrics exposition")
	}
	if base.Outages != 0 || base.DegradedTicks != 0 {
		t.Errorf("fault-free run reports outages=%d degraded=%d", base.Outages, base.DegradedTicks)
	}
}

// A mid-run occlusion takes the link down and the supervisor brings it
// back: the run never aborts, availability stays in [0, 1], goodput never
// goes negative, and the outage is matched by a recovery.
func TestRunMidRunOcclusionRecovers(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{{
		Kind:    fault.Occlusion,
		Start:   2 * time.Second,
		End:     2*time.Second + 300*time.Millisecond,
		DepthDB: 40,
		Ramp:    10 * time.Millisecond,
	}}}
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 8 * time.Second},
		Faults:  sched,
	})
	if err != nil {
		t.Fatalf("faulted run aborted: %v", err)
	}
	if res.UpFraction < 0 || res.UpFraction > 1 {
		t.Errorf("UpFraction = %v outside [0, 1]", res.UpFraction)
	}
	for _, w := range res.Windows {
		if w.Gbps < 0 {
			t.Errorf("window at %v has negative goodput %v", w.Start, w.Gbps)
		}
	}
	if res.Outages != 1 {
		t.Errorf("Outages = %d, want 1", res.Outages)
	}
	if res.Reacquired != 1 {
		t.Errorf("Reacquired = %d, want 1 (outage not matched by recovery)", res.Reacquired)
	}
	// The 300 ms window + 3 s re-lock outlasts DegradeAfter.
	if res.DegradedTicks == 0 {
		t.Error("long outage never degraded")
	}
	var sawDegraded bool
	for _, smp := range res.Samples {
		if smp.Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("no sample marked Degraded during the outage")
	}
	// Degradation is not the end state: the final sample is healthy.
	if last := res.Samples[len(res.Samples)-1]; last.Degraded || !last.Up {
		t.Errorf("run did not recover: final sample %+v", last)
	}
	// The same faulted run is reproducible bit for bit.
	s2 := oracleSystem(optics.Diverging10G16mm, 5)
	res2, err := s2.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 8 * time.Second},
		Faults:  sched,
	})
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(res2, res) {
		t.Error("faulted run not reproducible")
	}
}

// A run that ends inside an outage keeps the invariant "every outage is
// matched by a recovery or an explicit Degraded terminal sample".
func TestRunEndsMidOutageMarksTerminalDegraded(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{{
		Kind:    fault.Occlusion,
		Start:   2 * time.Second,
		End:     2*time.Second + 300*time.Millisecond,
		DepthDB: 40,
		Ramp:    10 * time.Millisecond,
	}}}
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 3 * time.Second},
		Faults:  sched,
	})
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if res.Outages != 1 || res.Reacquired != 0 {
		t.Fatalf("outages=%d reacquired=%d, want 1/0", res.Outages, res.Reacquired)
	}
	if len(res.Samples) == 0 || !res.Samples[len(res.Samples)-1].Degraded {
		t.Error("terminal sample not marked Degraded for an unrecovered outage")
	}
}

// Injected tracker and galvo faults degrade the run without aborting it,
// and the fault-window metrics surface in the run's exposition.
func TestRunTrackerAndGalvoFaults(t *testing.T) {
	prog := &motion.HandHeld{
		Base: link.DefaultHeadsetPose(), MaxLinear: 0.2, MaxAngular: 0.3,
		Len: 4 * time.Second, Seed: 2,
	}
	sched := &fault.Schedule{Seed: 1, Windows: []fault.Window{
		{Kind: fault.TrackerBlackout, Start: 500 * time.Millisecond, End: 700 * time.Millisecond},
		{Kind: fault.TrackerFreeze, Start: 1200 * time.Millisecond, End: 1400 * time.Millisecond},
		{Kind: fault.GalvoStuck, Start: 2 * time.Second, End: 2200 * time.Millisecond},
		{Kind: fault.SolverDiverge, Start: 2800 * time.Millisecond, End: 2900 * time.Millisecond},
		{Kind: fault.GalvoSaturation, Start: 3300 * time.Millisecond, End: 3500 * time.Millisecond, Limit: 0.5},
	}}
	s := oracleSystem(optics.Diverging10G16mm, 5)
	res, err := s.Run(RunOptions{Program: prog, Faults: sched})
	if err != nil {
		t.Fatalf("faulted run aborted: %v", err)
	}
	if res.UpFraction < 0 || res.UpFraction > 1 {
		t.Errorf("UpFraction = %v outside [0, 1]", res.UpFraction)
	}
	// The divergence window forces at least one solve failure.
	if res.PointFailures == 0 {
		t.Error("SolverDiverge window produced no pointing failures")
	}
	// Blackout drops reports: fewer solves than the fault-free twin.
	s2 := oracleSystem(optics.Diverging10G16mm, 5)
	base, err := s2.Run(RunOptions{Program: prog})
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	if res.Points >= base.Points {
		t.Errorf("blackout did not drop reports: %d faulted vs %d base solves", res.Points, base.Points)
	}
	exp := res.Metrics.Exposition()
	for _, want := range []string{"cyclops_supervisor_tracking_seconds", "cyclops_outage_total"} {
		if !contains(exp, want) {
			t.Errorf("faulted run exposition missing %q", want)
		}
	}
}

// Malformed fault windows are rejected by options validation.
func TestRunOptionsValidateFaults(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	bad := []fault.Schedule{
		{Windows: []fault.Window{{Kind: fault.Occlusion, Start: -time.Second, End: time.Second}}},
		{Windows: []fault.Window{{Kind: fault.Occlusion, Start: 2 * time.Second, End: time.Second}}},
	}
	for i := range bad {
		s := oracleSystem(optics.Diverging10G16mm, 1)
		if _, err := s.Run(RunOptions{Program: prog, Faults: &bad[i]}); err == nil {
			t.Errorf("case %d: malformed window accepted", i)
		}
	}
}
