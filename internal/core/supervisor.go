package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/obs"
	"cyclops/internal/pointing"
)

// SupState is the supervisor's recovery state.
type SupState uint8

const (
	// SupTracking: the link is up and the normal report→solve→command
	// loop is in charge.
	SupTracking SupState = iota
	// SupReacquiring: the link is down; the supervisor is driving
	// recovery (backoff'd solves, jittered restarts, spiral scan).
	SupReacquiring
	// SupDegraded: the outage has outlasted DegradeAfter; the run keeps
	// going with samples marked Degraded and traffic accounting frozen.
	SupDegraded
	// SupHandover: the active TX path went dark and a pre-pointed standby
	// is being switched in (make-before-break). Resolves to TRACKING the
	// moment the standby lights the receiver, or falls through to the
	// ordinary outage machinery (REACQUIRING) if the monitor's holdover
	// expires first. Appended after SupDegraded so the existing states
	// keep their numeric values.
	SupHandover

	numSupStates
)

// String names the supervisor state.
func (s SupState) String() string {
	switch s {
	case SupTracking:
		return "tracking"
	case SupReacquiring:
		return "reacquiring"
	case SupDegraded:
		return "degraded"
	case SupHandover:
		return "handover"
	}
	return fmt.Sprintf("core.SupState(%d)", uint8(s))
}

// RecoveryOptions tunes the supervisor. The zero value of every field
// means "use the documented default".
type RecoveryOptions struct {
	// BackoffBase is the first retry delay after a failed solve
	// (default 10 ms — skip at most one report).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff growth (default 160 ms).
	BackoffMax time.Duration
	// JitterFrac spreads each backoff uniformly by ±JitterFrac around
	// its nominal value, drawn from the supervisor's own seeded stream
	// (default 0.25).
	JitterFrac float64
	// RestartJitterV is the 1-σ voltage perturbation applied per
	// consecutive failure when restarting a solve from the last-good
	// voltages (default 0.02 V) — the jittered-restart escape from a
	// stuck fixed point.
	RestartJitterV float64
	// SpiralAfter is the consecutive-failure count that abandons warm
	// restarts for the spiral scan (default 3).
	SpiralAfter int
	// SpiralStepV scales the spiral radius: attempt n sits at
	// SpiralStepV·√(n+1) volts from the last-good voltages (default
	// 0.04 V).
	SpiralStepV float64
	// SpiralEvery paces spiral commands (default 10 ms, roughly one
	// mirror settle per probe).
	SpiralEvery time.Duration
	// DegradeAfter is the continuous downtime that flips REACQUIRING to
	// DEGRADED (default 500 ms — ten 50 ms throughput windows lost).
	DegradeAfter time.Duration
}

func (o *RecoveryOptions) defaults() {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 160 * time.Millisecond
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.25
	}
	if o.RestartJitterV <= 0 {
		o.RestartJitterV = 0.02
	}
	if o.SpiralAfter <= 0 {
		o.SpiralAfter = 3
	}
	if o.SpiralStepV <= 0 {
		o.SpiralStepV = 0.04
	}
	if o.SpiralEvery <= 0 {
		o.SpiralEvery = 10 * time.Millisecond
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 500 * time.Millisecond
	}
}

// goldenAngle spreads successive spiral probes maximally apart.
const goldenAngle = 2.399963229728653

// Supervisor is the recovery state machine core.Run wires around the link
// monitor when fault injection is enabled: TRACKING until the link drops,
// REACQUIRING while it drives solve retries (exponential backoff with
// seeded jitter) and, when solves keep failing, a deterministic spiral
// scan around the last-good voltages; DEGRADED once the outage outlasts
// DegradeAfter — the run never aborts, it marks samples and freezes
// traffic accounting until the link returns.
//
// All randomness (backoff jitter, restart perturbations) comes from the
// supervisor's own rand stream seeded at construction, so recovery
// activity never perturbs the tracker/galvo noise streams and the whole
// faulted run stays bit-reproducible.
type Supervisor struct {
	opts RecoveryOptions
	rng  *rand.Rand

	state      SupState
	timeIn     [numSupStates]time.Duration
	down       bool
	downSince  time.Duration
	outages    int
	reacquired int

	consecFails  int
	retryAt      time.Duration
	lastGood     pointing.Voltages
	haveGood     bool
	spiralN      int
	spiralNextAt time.Duration

	hoSince   time.Duration
	handovers int

	om *fault.OutageMetrics
	sm *supervisorMetrics
	hm *fault.HandoverMetrics
	// hoGauge is the time-in-HANDOVER gauge; like hm it registers only
	// when ArmHandover runs, so non-handover runs expose byte-identical
	// metric sets.
	hoGauge *obs.Gauge
}

// NewSupervisor builds a supervisor recording into reg (nil reg disables
// recording). The seed drives the backoff-jitter and restart-perturbation
// stream only.
func NewSupervisor(opts RecoveryOptions, seed int64, reg *obs.Registry) *Supervisor {
	opts.defaults()
	return &Supervisor{
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
		state: SupTracking,
		om:    fault.NewOutageMetrics(reg),
		sm:    newSupervisorMetrics(reg),
	}
}

// supervisorMetrics are the supervisor's own instruments; the shared
// outage pair (cyclops_outage_total / cyclops_reacquire_seconds) lives in
// fault.NewOutageMetrics so the sim chaos path registers identically.
type supervisorMetrics struct {
	tracking    *obs.Gauge
	reacquiring *obs.Gauge
	degraded    *obs.Gauge
	spiral      *obs.Counter
}

func newSupervisorMetrics(reg *obs.Registry) *supervisorMetrics {
	if reg == nil {
		return nil
	}
	return &supervisorMetrics{
		tracking: reg.Gauge("cyclops_supervisor_tracking_seconds",
			"Run time spent in the TRACKING supervisor state."),
		reacquiring: reg.Gauge("cyclops_supervisor_reacquiring_seconds",
			"Run time spent in the REACQUIRING supervisor state."),
		degraded: reg.Gauge("cyclops_supervisor_degraded_seconds",
			"Run time spent in the DEGRADED supervisor state."),
		spiral: reg.Counter("cyclops_supervisor_spiral_commands_total",
			"Spiral-scan mirror commands issued while reacquiring."),
	}
}

// ArmHandover equips the supervisor with the make-before-break instruments.
// Deliberately separate from NewSupervisor: a faulted run without standby
// TXs must not register handover metrics, or its exposition would drift
// from the pre-handover builds byte for byte.
func (s *Supervisor) ArmHandover(reg *obs.Registry) {
	s.hm = fault.NewHandoverMetrics(reg)
	if reg != nil {
		s.hoGauge = reg.Gauge("cyclops_supervisor_handover_seconds",
			"Run time spent in the HANDOVER supervisor state.")
	}
}

// BeginHandover records the make-before-break switch: the active path went
// dark past the debounce and a standby is slewing in. staleness is the age
// of the standby's pre-point voltages at the moment of the switch.
func (s *Supervisor) BeginHandover(at, staleness time.Duration) {
	s.handovers++
	if s.hm != nil {
		s.hm.Handovers.Inc()
		s.hm.Staleness.Set(staleness.Seconds())
	}
	// A switch during an established outage (the SFP already unlocked) is
	// still worth doing — light returns sooner, so the re-lock clock
	// starts sooner — but the outage machinery keeps the state: the run
	// is REACQUIRING/DEGRADED until the monitor comes back, and only a
	// make-before-break switch from a locked link enters HANDOVER.
	if s.down {
		return
	}
	s.state = SupHandover
	s.hoSince = at
}

// Handovers returns how many make-before-break switches were begun.
func (s *Supervisor) Handovers() int { return s.handovers }

// State returns the current supervisor state.
func (s *Supervisor) State() SupState { return s.state }

// Down reports whether the supervisor currently sees the link down.
func (s *Supervisor) Down() bool { return s.down }

// Outages returns how many link-down episodes the supervisor entered.
func (s *Supervisor) Outages() int { return s.outages }

// Reacquired returns how many of those episodes recovered to link-up.
func (s *Supervisor) Reacquired() int { return s.reacquired }

// Observe feeds one tick's link verdict: up is the monitor's SFP state
// (re-lock hysteresis included), powerOK the instantaneous optical
// signal. It advances the state timers and runs every state transition:
// up→down opens an outage (→ REACQUIRING), down→up closes it with a
// reacquire-time observation (→ TRACKING), and a down stretch longer than
// DegradeAfter sinks to DEGRADED.
func (s *Supervisor) Observe(at, tick time.Duration, up, powerOK bool) {
	s.timeIn[s.state] += tick
	// HANDOVER resolves on the optical signal, not the SFP state: the
	// whole point of make-before-break is that the monitor's holdover
	// carries the lock across the switch. First light from the standby
	// completes the handover; if instead the holdover expires (up goes
	// false) while still dark, the switch failed and the ordinary outage
	// machinery below takes over.
	if s.state == SupHandover && powerOK {
		if s.hm != nil {
			s.hm.Dark.Observe((at - s.hoSince).Seconds())
		}
		s.state = SupTracking
	}
	switch {
	case s.down && up:
		if s.om != nil {
			s.om.Reacquire.Observe((at - s.downSince).Seconds())
		}
		s.reacquired++
		s.down = false
		s.state = SupTracking
		s.resetRecovery()
	case s.down:
		if s.state == SupReacquiring && at-s.downSince >= s.opts.DegradeAfter {
			s.state = SupDegraded
		}
	case !up:
		s.down = true
		s.downSince = at
		s.outages++
		if s.om != nil {
			s.om.Outages.Inc()
		}
		s.state = SupReacquiring
	}
	// Light found (even before the SFP re-locks): the spiral's job is
	// done — stop probing and let the next report solve from here.
	if powerOK && s.spiralN > 0 {
		s.consecFails = 0
		s.spiralN = 0
		s.retryAt = 0
	}
}

func (s *Supervisor) resetRecovery() {
	s.consecFails = 0
	s.retryAt = 0
	s.spiralN = 0
	s.spiralNextAt = 0
}

// AllowSolve reports whether a report arriving at time at may attempt a
// pointing solve, honoring the current backoff.
func (s *Supervisor) AllowSolve(at time.Duration) bool { return at >= s.retryAt }

// StartVoltages picks the solve's starting point: the caller's warm start
// normally; after failures, the last-good voltages perturbed by a seeded
// jitter that grows with the consecutive-failure count — re-running the
// exact diverging solve from the exact same point would fail the exact
// same way.
func (s *Supervisor) StartVoltages(warm pointing.Voltages) pointing.Voltages {
	if s.consecFails == 0 {
		return warm
	}
	base := warm
	if s.haveGood {
		base = s.lastGood
	}
	j := s.opts.RestartJitterV * float64(s.consecFails)
	base.TX1 += s.rng.NormFloat64() * j
	base.TX2 += s.rng.NormFloat64() * j
	base.RX1 += s.rng.NormFloat64() * j
	base.RX2 += s.rng.NormFloat64() * j
	return base
}

// SolveOK records a converged solve and its voltages as the new last-good
// point.
func (s *Supervisor) SolveOK(v pointing.Voltages) {
	s.consecFails = 0
	s.retryAt = 0
	s.lastGood = v
	s.haveGood = true
}

// SolveFailed records a failed solve and schedules the next attempt with
// exponential backoff and seeded jitter.
func (s *Supervisor) SolveFailed(at time.Duration) {
	s.consecFails++
	backoff := s.opts.BackoffBase
	for i := 1; i < s.consecFails && backoff < s.opts.BackoffMax; i++ {
		backoff *= 2
	}
	if backoff > s.opts.BackoffMax {
		backoff = s.opts.BackoffMax
	}
	jitter := 1 + s.opts.JitterFrac*(2*s.rng.Float64()-1)
	s.retryAt = at + time.Duration(float64(backoff)*jitter)
	if s.spiralN == 0 {
		s.spiralNextAt = at // first spiral probe may fire immediately
	}
}

// SpiralDue reports whether a spiral-scan command should be issued now:
// solves have failed SpiralAfter times in a row and the per-probe pacing
// interval has elapsed.
func (s *Supervisor) SpiralDue(at time.Duration) bool {
	return s.consecFails >= s.opts.SpiralAfter && at >= s.spiralNextAt
}

// SpiralNext returns the next spiral-scan voltages: probe n sits at
// radius SpiralStepV·√(n+1) and angle n·goldenAngle around the last-good
// voltages (or the caller's fallback when no solve ever succeeded). The
// TX and RX pairs take mirrored angular offsets so the two ends do not
// chase each other along the same direction.
func (s *Supervisor) SpiralNext(at time.Duration, fallback pointing.Voltages) pointing.Voltages {
	c := fallback
	if s.haveGood {
		c = s.lastGood
	}
	n := s.spiralN
	s.spiralN++
	s.spiralNextAt = at + s.opts.SpiralEvery
	if s.sm != nil {
		s.sm.spiral.Inc()
	}
	r := s.opts.SpiralStepV * math.Sqrt(float64(n+1))
	th := float64(n) * goldenAngle
	dv1, dv2 := r*math.Cos(th), r*math.Sin(th)
	return pointing.Voltages{
		TX1: c.TX1 + dv1, TX2: c.TX2 + dv2,
		RX1: c.RX1 + dv1, RX2: c.RX2 - dv2,
	}
}

// Finish flushes the time-in-state gauges.
func (s *Supervisor) Finish() {
	if s.sm == nil {
		return
	}
	s.sm.tracking.Set(s.timeIn[SupTracking].Seconds())
	s.sm.reacquiring.Set(s.timeIn[SupReacquiring].Seconds())
	s.sm.degraded.Set(s.timeIn[SupDegraded].Seconds())
	if s.hoGauge != nil {
		s.hoGauge.Set(s.timeIn[SupHandover].Seconds())
	}
}

// TimeIn returns the accumulated time in the given state.
func (s *Supervisor) TimeIn(st SupState) time.Duration {
	if st >= numSupStates {
		return 0
	}
	return s.timeIn[st]
}
