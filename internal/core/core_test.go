package core

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/obs"
	"cyclops/internal/optics"
	"cyclops/internal/pointing"
)

func oracleSystem(cfg optics.LinkConfig, seed int64) *System {
	s := NewSystem(cfg, seed)
	s.UseOracleModels()
	return s
}

func TestRunRequiresCalibration(t *testing.T) {
	s := NewSystem(optics.Diverging10G16mm, 1)
	_, err := s.Run(RunOptions{Program: motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}})
	if err == nil {
		t.Error("uncalibrated run accepted")
	}
	if _, err := s.PointNow(0, pointing.Voltages{}); err == nil {
		t.Error("uncalibrated PointNow accepted")
	}
}

func TestRunRequiresProgram(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 1)
	if _, err := s.Run(RunOptions{}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestRunOptionsValidate(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	cases := []struct {
		name string
		opts RunOptions
		ok   bool
	}{
		{"zero values mean defaults", RunOptions{Program: prog}, true},
		{"explicit values", RunOptions{Program: prog, Duration: time.Second, Tick: time.Millisecond, SampleEvery: 5 * time.Millisecond, ReportEvery: 2 * time.Millisecond}, true},
		{"nil program", RunOptions{}, false},
		{"negative duration", RunOptions{Program: prog, Duration: -time.Second}, false},
		{"negative tick", RunOptions{Program: prog, Tick: -time.Millisecond}, false},
		{"negative sample", RunOptions{Program: prog, SampleEvery: -time.Millisecond}, false},
		{"negative report", RunOptions{Program: prog, ReportEvery: -time.Millisecond}, false},
	}
	for _, c := range cases {
		if err := c.opts.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	// Run rejects what Validate rejects.
	s := oracleSystem(optics.Diverging10G16mm, 1)
	if _, err := s.Run(RunOptions{Program: prog, Tick: -time.Millisecond}); err == nil {
		t.Error("Run accepted a negative Tick")
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := oracleSystem(optics.Diverging10G16mm, 2)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics
	if got := snap.Counters["cyclops_run_ticks_total"]; got != 1001 {
		t.Errorf("ticks counter = %v, want 1001 (1 s at 1 ms inclusive)", got)
	}
	if snap.Counters["cyclops_run_reports_total"] <= 0 {
		t.Error("no tracking reports recorded")
	}
	h, ok := snap.Histograms["cyclops_run_repoint_latency_seconds"]
	if !ok || h.Count == 0 {
		t.Error("repoint latency histogram empty")
	}
	if p, ok := snap.Histograms["cyclops_link_received_power_dbm"]; !ok || p.Count == 0 {
		t.Error("received power histogram empty")
	}
	if _, ok := snap.Counters["cyclops_netem_packets_total"]; !ok {
		t.Error("netem packet counter missing")
	}
	// The caller's registry saw the same data.
	if got := reg.Snapshot().Counters["cyclops_run_ticks_total"]; got != 1001 {
		t.Errorf("registry ticks counter = %v, want 1001", got)
	}
	// A second run into the same registry diffs correctly: per-run
	// metrics stay per-run even on a shared registry.
	res2, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Metrics.Counters["cyclops_run_ticks_total"]; got != 1001 {
		t.Errorf("second run's diffed ticks counter = %v, want 1001", got)
	}
}

func TestRunStaticLinkStaysUp(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 2)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpFraction < 0.999 {
		t.Errorf("static link up fraction = %v", res.UpFraction)
	}
	if res.Disconnections != 0 {
		t.Errorf("static link disconnected %d times", res.Disconnections)
	}
	// Throughput windows at the optimal rate after the initial ramp.
	ws := res.Windows
	if len(ws) < 10 {
		t.Fatalf("only %d windows", len(ws))
	}
	for _, w := range ws[5:] {
		if math.Abs(w.Gbps-9.4) > 0.2 {
			t.Errorf("window %v = %.2f Gbps, want 9.4", w.Start, w.Gbps)
		}
	}
}

func TestRunTPKeepsLinkThroughSlowMotion(t *testing.T) {
	// A slow linear stroke well inside the paper's tolerated envelope
	// (≤33 cm/s): with TP on, the link holds; with TP off, it dies.
	prog := motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.15,
		StartSpeed: 0.10,
		SpeedStep:  0,
		Strokes:    2,
		Dwell:      100 * time.Millisecond,
	}
	s := oracleSystem(optics.Diverging10G16mm, 3)
	res, err := s.Run(RunOptions{Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpFraction < 0.98 {
		t.Errorf("TP-on up fraction = %v for 10 cm/s strokes", res.UpFraction)
	}

	s2 := oracleSystem(optics.Diverging10G16mm, 3)
	res2, err := s2.Run(RunOptions{Program: prog, DisableTP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.UpFraction > 0.6 {
		t.Errorf("TP-off up fraction = %v — mirrors frozen yet link survived 30 cm travel", res2.UpFraction)
	}
}

func TestRunPointingStatistics(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 4)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~80 reports in a second at 12-13 ms cadence.
	if res.Points < 70 || res.Points > 90 {
		t.Errorf("pointing solves = %d, want ≈80", res.Points)
	}
	if res.PointFailures > 0 {
		t.Errorf("%d pointing failures", res.PointFailures)
	}
	// §4.3: P converges in 2–5 iterations (warm-started it sits at the
	// bottom of that range); G′ in 2–4.
	if it := res.MeanPointIters(); it < 1 || it > 6 {
		t.Errorf("mean P iterations = %.1f", it)
	}
	if it := res.MeanGPrimeIters(); it < 1 || it > 5 {
		t.Errorf("mean G' iterations = %.1f", it)
	}
	// §5.2: TP latency 1–2 ms.
	if res.MeanTPLatency < time.Millisecond || res.MeanTPLatency > 3*time.Millisecond {
		t.Errorf("TP latency = %v, want 1-2 ms", res.MeanTPLatency)
	}
}

func TestRunWarmStartsFromInFlightCommand(t *testing.T) {
	// Reports every 1 ms outpace the ~1.8 ms realignment latency, so
	// every solve after the first happens while a mirror command is still
	// in flight. The solver must warm-start from that in-flight command —
	// where the mirrors are actually headed — not from the stale applied
	// voltages: during a steady stroke the stale start drifts ever
	// further from the solution and costs extra P iterations per solve
	// (measured: 2.9 mean from the stale start vs 2.0 from the in-flight
	// command on this exact run).
	s := oracleSystem(optics.Diverging10G16mm, 11)
	res, err := s.Run(RunOptions{
		Program: motion.LinearStrokes{
			Base:       link.DefaultHeadsetPose(),
			Axis:       geom.V(1, 0, 0),
			HalfTravel: 0.15,
			StartSpeed: 0.10,
			Strokes:    2,
			Dwell:      100 * time.Millisecond,
		},
		ReportEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PointFailures > 0 {
		t.Errorf("%d pointing failures", res.PointFailures)
	}
	if it := res.MeanPointIters(); it > 2.4 {
		t.Errorf("mean P iterations = %.2f with in-flight reports, want ≈2.0 (stale warm start costs ≈2.9)", it)
	}
}

func TestRunReportEveryOverridesCadence(t *testing.T) {
	// A 5 ms fixed cadence yields ~200 reports over a second (the
	// tracker's own cadence would yield ~80) and, being slower than the
	// realignment latency, must keep the link up on a static pose.
	s := oracleSystem(optics.Diverging10G16mm, 12)
	res, err := s.Run(RunOptions{
		Program:     motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second},
		ReportEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 190 || res.Points > 210 {
		t.Errorf("pointing solves = %d with 5 ms reports, want ≈200", res.Points)
	}
	if res.UpFraction < 0.99 {
		t.Errorf("up fraction %.3f with 5 ms reports on a static pose", res.UpFraction)
	}
}

func TestSpeedThreshold(t *testing.T) {
	mk := func(speed float64, up bool) Sample {
		return Sample{LinSpeed: speed, Up: up, PowerOK: up}
	}
	var samples []Sample
	// Connected below 0.3 m/s, disconnected above.
	for v := 0.01; v < 0.6; v += 0.002 {
		for i := 0; i < 5; i++ {
			samples = append(samples, mk(v, v < 0.3))
		}
	}
	th := SpeedThreshold(samples, func(s Sample) float64 { return s.LinSpeed }, 0.05, 3)
	if th < 0.2 || th > 0.33 {
		t.Errorf("threshold = %v, want ≈0.275", th)
	}
	// Degenerate inputs.
	if SpeedThreshold(nil, func(s Sample) float64 { return 0 }, 0.05, 3) != 0 {
		t.Error("empty threshold nonzero")
	}
	if SpeedThreshold(samples, func(s Sample) float64 { return s.LinSpeed }, 0, 3) != 0 {
		t.Error("zero bucket accepted")
	}
}

func TestMaxSpeed(t *testing.T) {
	samples := []Sample{
		{LinSpeed: 0.1, PowerOK: true},
		{LinSpeed: 0.9}, // misaligned: excluded
		{LinSpeed: 0.4, PowerOK: true},
	}
	got := MaxSpeed(samples, func(s Sample) float64 { return s.LinSpeed })
	if got != 0.4 {
		t.Errorf("MaxSpeed = %v", got)
	}
}

func TestRunDurationOverride(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 7)
	res, err := s.Run(RunOptions{
		Program:  motion.Static{P: link.DefaultHeadsetPose(), Len: time.Hour},
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1].At
	if last > 301*time.Millisecond {
		t.Errorf("run continued to %v past the 300 ms cap", last)
	}
}

func TestRunCoarseTick(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 8)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second},
		Tick:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UpFraction < 0.99 {
		t.Errorf("coarse-tick static run up fraction %v", res.UpFraction)
	}
	// Samples land on the coarse grid.
	if len(res.Samples) < 150 || len(res.Samples) > 210 {
		t.Errorf("coarse run recorded %d samples, want ≈200", len(res.Samples))
	}
}

func TestMixedSpeedThreshold(t *testing.T) {
	// Synthetic 2-D field: OK iff lin ≤ 0.2 AND ang ≤ 0.3.
	var samples []Sample
	for l := 0.025; l < 0.5; l += 0.05 {
		for a := 0.04; a < 0.6; a += 0.087 {
			for i := 0; i < 25; i++ {
				samples = append(samples, Sample{
					LinSpeed: l, AngSpeed: a,
					PowerOK: l <= 0.2 && a <= 0.3,
				})
			}
		}
	}
	lin, ang := MixedSpeedThreshold(samples, 0.5, 0.6, 20)
	if lin < 0.15 || lin > 0.25 {
		t.Errorf("mixed linear threshold = %v, want ≈0.2", lin)
	}
	if ang < 0.22 || ang > 0.36 {
		t.Errorf("mixed angular threshold = %v, want ≈0.3", ang)
	}
	// Degenerate bounds.
	if l, a := MixedSpeedThreshold(samples, 0, 0, 20); l != 0 || a != 0 {
		t.Error("zero bounds accepted")
	}
}

func TestMixedSpeedThresholdSparseSamples(t *testing.T) {
	// Every populated cell sits below minSamples: no cell is exercised,
	// so no tolerance can be claimed. The pre-fix code treated every
	// sparse cell as "unexercised OK" and the smallest-corner tie-break
	// fabricated (0.05 m/s, 5 deg/s) from no data.
	var samples []Sample
	for l := 0.025; l < 0.5; l += 0.05 {
		for a := 0.04; a < 0.6; a += 0.087 {
			// 3 samples per cell, far below minSamples=40.
			for i := 0; i < 3; i++ {
				samples = append(samples, Sample{LinSpeed: l, AngSpeed: a, PowerOK: true})
			}
		}
	}
	if lin, ang := MixedSpeedThreshold(samples, 0.5, 0.6, 40); lin != 0 || ang != 0 {
		t.Errorf("sparse samples produced threshold (%v, %v), want (0, 0)", lin, ang)
	}
	// A single under-populated cell: same story.
	one := []Sample{{LinSpeed: 0.01, AngSpeed: 0.01, PowerOK: true}}
	if lin, ang := MixedSpeedThreshold(one, 0.5, 0.6, 40); lin != 0 || ang != 0 {
		t.Errorf("one sample produced threshold (%v, %v), want (0, 0)", lin, ang)
	}
	// And entirely empty input.
	if lin, ang := MixedSpeedThreshold(nil, 0.5, 0.6, 40); lin != 0 || ang != 0 {
		t.Errorf("no samples produced threshold (%v, %v), want (0, 0)", lin, ang)
	}
}

func TestUseOracleModelsAligns(t *testing.T) {
	s := NewSystem(optics.Diverging10G16mm, 9)
	s.UseOracleModels()
	if !s.Calibrated() {
		t.Fatal("oracle system not calibrated")
	}
	if !s.Plant.Connected() {
		t.Error("oracle system not aligned after setup")
	}
}

// TestFig13LinearThresholdRegime runs the rail experiment with a fully
// calibrated (not oracle) system and checks the tolerated linear speed
// falls in the paper's regime (optimal ≤ ~33 cm/s).
func TestFig13LinearThresholdRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("full rig experiment in -short mode")
	}
	s := NewSystem(optics.Diverging10G16mm, 5)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	prog := motion.LinearStrokes{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.20,
		StartSpeed: 0.10,
		SpeedStep:  0.05,
		Strokes:    10,
		Dwell:      150 * time.Millisecond,
	}
	res, err := s.Run(RunOptions{Program: prog, SampleEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	th := SpeedThreshold(res.Samples, func(s Sample) float64 { return s.LinSpeed }, 0.05, 20)
	t.Logf("linear threshold ≈ %.2f m/s (paper: 0.33), up fraction %.3f", th, res.UpFraction)
	if th < 0.15 || th > 0.60 {
		t.Errorf("linear speed threshold = %.2f m/s, want in the ≈0.3 regime", th)
	}
}

// TestFig13AngularThresholdRegime does the same for the rotation stage
// (optimal ≤ ~16-18 deg/s per the paper).
func TestFig13AngularThresholdRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("full rig experiment in -short mode")
	}
	s := NewSystem(optics.Diverging10G16mm, 6)
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	prog := motion.AngularSweeps{
		Base:       link.DefaultHeadsetPose(),
		Axis:       geom.V(1, 0, 0),
		HalfAngle:  0.30,
		StartSpeed: 0.10,
		SpeedStep:  0.05,
		Sweeps:     10,
		Dwell:      150 * time.Millisecond,
	}
	res, err := s.Run(RunOptions{Program: prog, SampleEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	th := SpeedThreshold(res.Samples, func(s Sample) float64 { return s.AngSpeed }, 0.05, 20)
	t.Logf("angular threshold ≈ %.1f deg/s (paper: 16-18), up fraction %.3f",
		th*180/math.Pi, res.UpFraction)
	deg := th * 180 / math.Pi
	if deg < 8 || deg > 40 {
		t.Errorf("angular speed threshold = %.1f deg/s, want in the ≈16-18 regime", deg)
	}
}
