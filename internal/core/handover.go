package core

import (
	"math"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/pointing"
)

// hoState is the run-scoped make-before-break machinery behind
// RunOptions.Handover. plants[0] is the primary (the System's own plant at
// Run start); the rest are the caller's standbys. Everything here is driven
// from runLoop.step, one decision per tick, with no randomness of its own —
// a handover run is as bit-reproducible as the faulted run it extends.
type hoState struct {
	opts   HandoverOptions
	plants []*link.Plant
	// scheds[k] is TX k's path fault schedule; scheds[0] aliases
	// RunOptions.Faults so candidate checks read every path uniformly.
	scheds []*fault.Schedule
	active int

	// Pre-point cache: the freshest oracle mirror solution per inactive
	// TX, refreshed on the FreshEvery cadence but only applied at a
	// switch — the "make" of make-before-break.
	preV  []pointing.Voltages
	preAt []time.Duration
	preOK []bool

	nextFresh time.Duration
	// darkSince clocks sustained loss of optical signal on the active
	// path (−1 while lit); settleUntil carves the post-switch slew window
	// out of that clock, the same debounce lesson handover.Run learned.
	darkSince   time.Duration
	settleUntil time.Duration
	// clearSince0 clocks how long the primary path has been clear while
	// a standby is active (−1 while blocked) — the failback condition.
	clearSince0 time.Duration
}

func newHoState(s *System, o *HandoverOptions, primary *fault.Schedule) *hoState {
	ho := &hoState{opts: *o}
	ho.opts.defaults()
	ho.plants = make([]*link.Plant, 0, len(o.Standbys)+1)
	ho.plants = append(ho.plants, s.Plant)
	ho.plants = append(ho.plants, o.Standbys...)
	ho.scheds = make([]*fault.Schedule, len(ho.plants))
	ho.scheds[0] = primary
	for i, f := range o.StandbyFaults {
		ho.scheds[i+1] = f
	}
	n := len(ho.plants)
	ho.preV = make([]pointing.Voltages, n)
	ho.preAt = make([]time.Duration, n)
	ho.preOK = make([]bool, n)
	ho.darkSince = -1
	ho.settleUntil = -1
	ho.clearSince0 = -1
	return ho
}

// setOtherHeadsets mirrors the headset pose onto every plant except the
// active one (which step already moved).
func (ho *hoState) setOtherHeadsets(active *link.Plant, p geom.Pose) {
	for _, pl := range ho.plants {
		if pl != active {
			pl.SetHeadset(p)
		}
	}
}

// applyAtten applies each path's scheduled attenuation to its plant and
// returns the active path's value (for fault-state coherence in step).
func (ho *hoState) applyAtten(at time.Duration) float64 {
	var activeAtten float64
	for k, p := range ho.plants {
		a := ho.scheds[k].At(at).AttenDB
		p.SetAttenuationDB(a)
		if k == ho.active {
			activeAtten = a
		}
	}
	return activeAtten
}

// pathAtten reads TX k's scheduled attenuation without touching any plant.
func (ho *hoState) pathAtten(at time.Duration, k int) float64 {
	return ho.scheds[k].At(at).AttenDB
}

// candidate returns the best switch target at time at: the clear-path,
// successfully pre-pointed TX geometrically closest to the receiver — or
// −1 when every other path is blocked (nothing to switch to; the ordinary
// outage machinery owns the episode).
func (ho *hoState) candidate(at time.Duration) int {
	best := -1
	bestDist := math.Inf(1)
	for k, p := range ho.plants {
		if k == ho.active || !ho.preOK[k] {
			continue
		}
		if ho.pathAtten(at, k) >= ho.opts.BlockAttenDB {
			continue
		}
		d := p.TXMountTruth().Trans.Dist(p.RXWorldPose().Trans)
		if d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// hoTick is the per-tick handover controller: refresh standby pre-points,
// clock darkness on the active path, switch to the best clear standby once
// the debounce matures, and fail back to the primary after its path has
// stayed clear for FailbackAfter.
func (l *runLoop) hoTick(at time.Duration, powerOK bool) {
	ho := l.ho

	// Pre-point refresh ("make"): every inactive TX keeps a fresh oracle
	// mirror solution ready, so the eventual switch ("break") costs one
	// slew, not a solve.
	if at >= ho.nextFresh {
		for k, p := range ho.plants {
			if k == ho.active {
				continue
			}
			v, err := p.OracleAlignedVoltages()
			ho.preOK[k] = err == nil
			if err == nil {
				ho.preV[k], ho.preAt[k] = v, at
			}
		}
		ho.nextFresh = at + ho.opts.FreshEvery
	}

	// Failback bookkeeping: while a standby is active, clock how long the
	// primary path has been continuously clear.
	if ho.active != 0 {
		if ho.pathAtten(at, 0) >= ho.opts.BlockAttenDB {
			ho.clearSince0 = -1
		} else if ho.clearSince0 < 0 {
			ho.clearSince0 = at
		}
	}

	// Dark clock, with the post-switch slew window carved out: the forced
	// darkness while the mirrors slew to the new TX must not re-arm the
	// debounce, or any SwitchAfter at or below the realignment latency
	// would flap straight off the TX we just switched to (the same bug
	// handover.Run had).
	if powerOK {
		ho.darkSince = -1
	} else if ho.darkSince < 0 && at >= ho.settleUntil {
		ho.darkSince = at
	}

	if ho.darkSince >= 0 && at-ho.darkSince >= ho.opts.SwitchAfter {
		if k := ho.candidate(at); k >= 0 {
			l.hoSwitch(at, k)
			return
		}
	}

	// Failback: light is on, the primary has been clear long enough, and
	// its pre-point is good — re-admit it (make-before-break again; the
	// monitor's holdover rides through the slew).
	if ho.active != 0 && powerOK && ho.clearSince0 >= 0 &&
		at-ho.clearSince0 >= ho.opts.FailbackAfter && ho.preOK[0] {
		l.hoSwitch(at, 0)
	}
}

// hoSwitch executes the switch to TX k: the System's plant becomes k's,
// the cached pre-point voltages go in flight as a pending command landing
// after one hardware latency, and the supervisor records the handover.
func (l *runLoop) hoSwitch(at time.Duration, k int) {
	ho := l.ho
	ho.active = k
	l.s.Plant = ho.plants[k]
	l.pendingV = ho.preV[k]
	lat := hardwareLatency(l.s)
	l.pendingAt = at + lat
	ho.settleUntil = l.pendingAt
	ho.darkSince = -1
	ho.clearSince0 = -1
	if l.sup != nil {
		l.sup.BeginHandover(at, at-ho.preAt[k])
	}
}
