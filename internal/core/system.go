// Package core assembles the full Cyclops system — physical plant, headset
// tracker, two-stage learned models, real-time pointing controller, link
// monitor, and traffic — and runs the experiment loop all evaluations
// share: move the headset along a motion program at millisecond
// resolution, realign on every tracking report, and record power,
// throughput, and speed.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"cyclops/internal/gma"
	"cyclops/internal/kspace"
	"cyclops/internal/link"
	"cyclops/internal/obs"
	"cyclops/internal/optics"
	"cyclops/internal/pointing"
	"cyclops/internal/vrh"
	"cyclops/internal/vrspace"
)

// System is one deployed Cyclops installation.
type System struct {
	Plant   *link.Plant
	Tracker *vrh.Tracker

	// KTX and KRX are the stage-1 learned GMA models; Map holds the
	// stage-2 learned 12 mapping parameters.
	KTX, KRX gma.Params
	Map      vrspace.Mapping

	// Obs, when non-nil, receives observability from Calibrate and from
	// every Run that does not set its own RunOptions.Metrics. Nil sends
	// the same data to obs.Default() instead.
	Obs *obs.Registry

	calibrated bool
	seed       int64
}

// NewSystem builds a system around the given link design. All hidden
// variation (device geometry, mounts, tracker frames) derives from seed.
func NewSystem(cfg optics.LinkConfig, seed int64) *System {
	return &System{
		Plant:   link.NewPlant(cfg, seed),
		Tracker: vrh.New(seed + 1),
		seed:    seed,
	}
}

// CalibrationReport summarizes the full §4 training pipeline — the data
// behind Table 2.
type CalibrationReport struct {
	Stage1TX kspace.Evaluation
	Stage1RX kspace.Evaluation
	Combined vrspace.Evaluation
	Tuples   int
}

func (r CalibrationReport) String() string {
	return fmt.Sprintf("stage1 TX[%v] RX[%v]; combined[%v]; %d tuples",
		r.Stage1TX, r.Stage1RX, r.Combined, r.Tuples)
}

// Calibrate runs the complete two-stage training: K-space grid calibration
// of both GMAs (§4.1), aligned-tuple collection and the joint 12-parameter
// mapping fit (§4.2), then a combined-error evaluation on fresh poses.
// The headset is left at the default pose with the link aligned by the
// learned pointing function.
func (s *System) Calibrate() (CalibrationReport, error) {
	var rep CalibrationReport
	rng := rand.New(rand.NewSource(s.seed + 2))

	// Same registry resolution as Run: System.Obs or a private registry
	// whose contribution is published to the process default. Plant power
	// reads during tuple collection land here too.
	reg := s.Obs
	publish := reg == nil
	if publish {
		reg = obs.NewRegistry()
	}
	startSnap := reg.Snapshot()
	prevPlantMetrics := s.Plant.Metrics
	s.Plant.Metrics = link.NewPlantMetrics(reg)
	defer func() {
		s.Plant.Metrics = prevPlantMetrics
		if publish {
			obs.Default().Merge(reg.Snapshot().Diff(startSnap))
		}
	}()

	kTX, evTX, err := kspace.Calibrate(kspace.NewRig(s.Plant.TXDev, s.seed+3), gma.Nominal())
	if err != nil {
		return rep, fmt.Errorf("core: TX stage 1: %w", err)
	}
	kRX, evRX, err := kspace.Calibrate(kspace.NewRig(s.Plant.RXDev, s.seed+4), gma.Nominal())
	if err != nil {
		return rep, fmt.Errorf("core: RX stage 1: %w", err)
	}
	s.KTX, s.KRX = kTX, kRX
	rep.Stage1TX, rep.Stage1RX = evTX, evRX

	tuples := vrspace.CollectTuples(s.Plant, s.Tracker, vrspace.CalibrationPoses(30, s.seed+5), rng)
	rep.Tuples = len(tuples)
	m, _, err := vrspace.FitMapping(kTX, kRX, tuples, vrspace.InitialGuess(s.Plant, s.Tracker, rng))
	if err != nil {
		return rep, fmt.Errorf("core: mapping fit: %w", err)
	}
	s.Map = m

	rep.Combined, err = vrspace.Evaluate(s.Plant, s.Tracker, kTX, kRX, m, vrspace.CalibrationPoses(12, s.seed+6))
	if err != nil {
		return rep, fmt.Errorf("core: evaluation: %w", err)
	}
	s.calibrated = true

	// Park the headset at the default pose and align with the learned
	// models so a Run can start from a connected link.
	s.Plant.SetHeadset(link.DefaultHeadsetPose())
	if _, err := s.PointNow(0, pointing.Voltages{}); err != nil {
		return rep, fmt.Errorf("core: initial pointing: %w", err)
	}
	reg.Counter("cyclops_calibrations_total",
		"Full two-stage calibrations completed.").Inc()
	reg.Counter("cyclops_calibration_tuples_total",
		"Aligned mapping tuples collected during stage-2 calibration.").Add(float64(rep.Tuples))
	return rep, nil
}

// UseOracleModels configures the system with the hidden ground truth
// instead of learned models: perfect stage-1 GMAs and the true mapping.
// This is the "perfect TP" baseline used to separate learning error from
// link physics in the ablation benches, and a fast path for tests that do
// not exercise calibration itself.
func (s *System) UseOracleModels() {
	s.KTX = s.Plant.TXDev.Truth()
	s.KRX = s.Plant.RXDev.Truth()
	s.Map = vrspace.TrueMapping(s.Plant, s.Tracker)
	s.calibrated = true
	s.Plant.SetHeadset(link.DefaultHeadsetPose())
	//cyclops:discard-ok best-effort pre-alignment; Run re-points on its first tick and handles the error there
	_, _ = s.PointNow(0, pointing.Voltages{})
}

// Calibrated reports whether models are in place.
func (s *System) Calibrated() bool { return s.calibrated }

// PointNow takes a fresh tracking report at simulation time at, solves the
// pointing function P from the given starting voltages, and applies the
// result to the hardware. It returns the pointing result.
func (s *System) PointNow(at time.Duration, start pointing.Voltages) (pointing.Result, error) {
	if !s.calibrated {
		return pointing.Result{}, fmt.Errorf("core: system not calibrated")
	}
	rep := s.Tracker.Report(s.Plant.Headset(), at)
	gt := s.Map.TXModel(s.KTX).Compile()
	gr := s.Map.RXModel(s.KRX, rep.Pose).Compile()
	res, err := pointing.PointCompiled(&gt, &gr, start, pointing.PointOptions{})
	if err != nil {
		return res, err
	}
	s.Plant.ApplyVoltages(res.V)
	return res, nil
}
