package core

import (
	"fmt"
	"math"
	"time"

	"cyclops/internal/baseline"
	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/netem"
	"cyclops/internal/obs"
	"cyclops/internal/policy"
)

// HybridOptions arm the hybrid FSO + mmWave link policy
// (RunOptions.Hybrid): the baseline 802.11ad link runs side by side with
// the optical plant over its own netem stream, and the policy.Controller
// fails delivered traffic over to it on a sustained SLO breach, re-
// admitting the FSO primary only after re-lock plus the clear window.
// The zero value of every field means "use the documented default".
type HybridOptions struct {
	// Secondary is the mmWave link to run as the RF fallback. Default
	// (nil): baseline.NewMmWave() — the paper's 802.11ad comparison
	// system mounted at the Cyclops TX position.
	Secondary *baseline.MmWaveLink
	// Policy tunes the failover hysteresis (breach and clear windows).
	Policy policy.Options
	// MarginDB is the SLO headroom above receiver sensitivity the primary
	// must hold to count as healthy: power below sensitivity + MarginDB
	// starts the breach clock even while the SFP still carries. Default 0
	// — healthy is exactly "locked and above sensitivity".
	MarginDB float64
	// BlockAttenDB is the injected physical-obstruction attenuation at or
	// above which the mmWave path counts as body-blocked too (haze does
	// not block RF, so the haze component is excluded). Default 10 dB,
	// the same constant HandoverOptions and the sim chaos model use.
	BlockAttenDB float64
}

func (o *HybridOptions) defaults() {
	if o.Secondary == nil {
		o.Secondary = baseline.NewMmWave()
	}
	if o.BlockAttenDB <= 0 {
		o.BlockAttenDB = 10
	}
	o.Policy.Defaults()
}

// validate is HybridOptions' slice of RunOptions.Validate.
func (o *HybridOptions) validate() error {
	if err := o.Policy.Validate(); err != nil {
		return fmt.Errorf("core: invalid RunOptions: Hybrid %w", err)
	}
	if math.IsNaN(o.MarginDB) || math.IsInf(o.MarginDB, 0) || o.MarginDB < 0 {
		return fmt.Errorf("core: invalid RunOptions: Hybrid MarginDB %v must be finite and non-negative", o.MarginDB)
	}
	if math.IsNaN(o.BlockAttenDB) || math.IsInf(o.BlockAttenDB, 0) || o.BlockAttenDB < 0 {
		return fmt.Errorf("core: invalid RunOptions: Hybrid BlockAttenDB %v must be finite and non-negative", o.BlockAttenDB)
	}
	if o.Secondary != nil {
		if err := o.Secondary.Validate(); err != nil {
			return fmt.Errorf("core: invalid RunOptions: Hybrid Secondary: %w", err)
		}
	}
	return nil
}

// HybridStats is the hybrid policy's contribution to a RunResult. Always
// nil without RunOptions.Hybrid.
type HybridStats struct {
	// Failovers / Readmits count the policy's PRIMARY→SECONDARY and
	// SECONDARY→PRIMARY transitions.
	Failovers int
	Readmits  int
	// SecondaryTicks counts ticks delivered traffic rode the mmWave link.
	SecondaryTicks int
	// DeliveredUpTicks counts ticks the *delivered* stream was up on
	// whichever medium carried it; DeliveredUpFraction normalizes by the
	// run's total ticks. RunResult.UpFraction still reports the FSO
	// link's own state — the delta between the two is what the policy
	// bought.
	DeliveredUpTicks    int
	DeliveredUpFraction float64
	// MinSecondaryDwell is the shortest completed failover→readmit dwell
	// (zero when none completed). Never below Policy.ClearAfter — the
	// no-flap guarantee.
	MinSecondaryDwell time.Duration
	// SecondaryWindows are the shadow mmWave stream's 50 ms throughput
	// windows, measured for the whole run regardless of policy state
	// (the primary stream in RunResult.Windows carries the delivered
	// traffic, switching medium with the policy).
	SecondaryWindows []netem.Window
}

// hyState is the run-scoped hybrid machinery behind RunOptions.Hybrid.
// Everything is driven from runLoop.step, one Observe per tick, with no
// randomness of its own — a hybrid run is as bit-reproducible as the run
// it extends.
type hyState struct {
	opts HybridOptions
	sec  *baseline.MmWaveLink
	ctl  *policy.Controller
	// stream shadows the secondary: it measures the mmWave link every
	// tick of the run so SecondaryWindows is a full side-by-side trace,
	// not just the failover episodes. It carries no metrics — the run's
	// netem instruments belong to the delivered (primary) stream.
	stream *netem.Stream

	prevSecMetrics *baseline.MmWaveMetrics
	secondaryTicks int
	deliveredUp    int
}

func newHyState(o *HybridOptions, reg *obs.Registry) *hyState {
	hy := &hyState{opts: *o}
	hy.opts.defaults()
	hy.sec = hy.opts.Secondary
	hy.prevSecMetrics = hy.sec.Metrics
	hy.sec.Metrics = baseline.NewMmWaveMetrics(reg)
	hy.sec.Reset()
	hy.ctl = policy.New(hy.opts.Policy, policy.NewMetrics(reg))
	hy.stream = netem.NewStream()
	// Same MAC-level recovery constant baseline.Run uses: mmWave
	// reconnects fast after a blockage, no optical re-lock.
	hy.stream.RampTime = 30 * time.Millisecond
	return hy
}

// hyTick is the per-tick hybrid policy: step the mmWave secondary, feed
// the primary's SLO verdict to the controller, and route this tick's
// delivered-traffic accounting to whichever medium the policy picked. It
// owns the l.stream accounting entirely on hybrid runs (step's historical
// freeze/tick branch runs only when l.hy == nil).
func (l *runLoop) hyTick(at time.Duration, pose geom.Pose, fs fault.State, power float64, up, degraded bool) {
	hy := l.hy

	// The mmWave path shares the FSO link's body-blockage exposure (§2.1)
	// but not its haze sensitivity: only the physical-obstruction
	// component of the injected attenuation blocks it.
	blocked := fs.AttenDB-fs.HazeDB >= hy.opts.BlockAttenDB
	g := hy.sec.Step(at, pose.Trans, blocked)
	hy.stream.Tick(at, l.tick, g > 0, g)

	// SLO verdict: locked AND inside the power margin. Using the monitor's
	// up state makes the 3 s SFP re-lock tail count as breaching, so
	// re-admission waits for re-lock plus the clear window.
	healthy := up && power >= l.s.Plant.Config.Transceiver.SensitivityDBm+hy.opts.MarginDB
	st := hy.ctl.Observe(at, l.tick, healthy)

	if st.OnSecondary() {
		hy.secondaryTicks++
		if g > 0 {
			hy.deliveredUp++
		}
		// The mmWave link is carrying: delivered accounting follows it
		// even while the supervisor holds the FSO side in DEGRADED — the
		// whole point of the failover is zero delivered-availability loss
		// beyond the switch cost.
		l.stream.Tick(at, l.tick, g > 0, g)
		return
	}
	if up {
		hy.deliveredUp++
	}
	if degraded {
		l.stream.FreezeTick(at, l.tick)
	} else {
		l.stream.Tick(at, l.tick, up, l.s.Plant.Config.Transceiver.OptimalGoodputGbps)
	}
}

// finish folds the run's hybrid state into a HybridStats.
func (hy *hyState) finish(totalTicks int) *HybridStats {
	st := &HybridStats{
		Failovers:         hy.ctl.Failovers(),
		Readmits:          hy.ctl.Readmits(),
		SecondaryTicks:    hy.secondaryTicks,
		DeliveredUpTicks:  hy.deliveredUp,
		MinSecondaryDwell: hy.ctl.MinSecondaryDwell(),
		SecondaryWindows:  hy.stream.Finish(),
	}
	if totalTicks > 0 {
		st.DeliveredUpFraction = float64(hy.deliveredUp) / float64(totalTicks)
	}
	return st
}
