package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"cyclops/internal/baseline"
	"cyclops/internal/fault"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
	"cyclops/internal/policy"
)

// RunOptions.Hybrid == nil must be byte-identical to the historical run —
// results AND metrics exposition — exactly like the SolveGate and
// Handover gates. This is the regression pin the acceptance criteria
// name.
func TestRunNilHybridBitIdentical(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: 2 * time.Second}
	run := func(opts RunOptions) RunResult {
		s := oracleSystem(optics.Diverging10G16mm, 5)
		opts.Program = prog
		res, err := s.Run(opts)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	base := run(RunOptions{})
	again := run(RunOptions{Hybrid: nil})
	if !reflect.DeepEqual(again, base) {
		t.Error("nil Hybrid changed the run output")
	}
	if again.Metrics.Exposition() != base.Metrics.Exposition() {
		t.Error("nil Hybrid changed the metrics exposition")
	}
	if base.Hybrid != nil {
		t.Error("non-hybrid run must report Hybrid == nil")
	}
	if strings.Contains(base.Metrics.Exposition(), "cyclops_policy_") ||
		strings.Contains(base.Metrics.Exposition(), "cyclops_mmwave_") {
		t.Error("non-hybrid run leaked policy/mmwave metrics")
	}
}

// A clean hybrid run (no faults, static pose) stays on the primary for
// every tick and delivers full availability on both accountings.
func TestRunHybridCleanStaysPrimary(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 2 * time.Second},
		Hybrid:  &HybridOptions{},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	h := res.Hybrid
	if h == nil {
		t.Fatal("hybrid run must report HybridStats")
	}
	if h.Failovers != 0 || h.Readmits != 0 || h.SecondaryTicks != 0 {
		t.Errorf("clean run switched media: %+v", h)
	}
	if h.DeliveredUpFraction != res.UpFraction {
		t.Errorf("clean run delivered %v but FSO was up %v", h.DeliveredUpFraction, res.UpFraction)
	}
	if len(h.SecondaryWindows) == 0 {
		t.Error("shadow mmWave stream measured no windows")
	}
	exp := res.Metrics.Exposition()
	for _, name := range []string{"cyclops_policy_failover_total 0",
		"cyclops_mmwave_retrain_total"} {
		if !strings.Contains(exp, name) {
			t.Errorf("hybrid exposition missing %q", name)
		}
	}
}

// A haze fade deep enough to kill the optical budget must drive exactly
// the advertised sequence: failover onto mmWave during the fade, full
// delivered availability while the FSO side is dark, and re-admission
// after re-lock plus the clear window — with no dwell shorter than the
// clear window (the no-flap acceptance criterion).
func TestRunHybridHazeFailoverAndReadmit(t *testing.T) {
	s := oracleSystem(optics.Diverging10G16mm, 5)
	clear := 500 * time.Millisecond
	sched := &fault.Schedule{Seed: 3, Windows: []fault.Window{{
		Kind:     fault.HazeFade,
		Start:    2 * time.Second,
		End:      8 * time.Second,
		DepthDB:  30,
		Ramp:     time.Second,
		RampDown: 2 * time.Second,
	}}}
	res, err := s.Run(RunOptions{
		Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 16 * time.Second},
		Faults:  sched,
		Hybrid:  &HybridOptions{Policy: policy.Options{ClearAfter: clear}},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	h := res.Hybrid
	if h == nil {
		t.Fatal("hybrid run must report HybridStats")
	}
	if h.Failovers < 1 || h.Readmits < 1 {
		t.Fatalf("haze fade produced failovers=%d readmits=%d, want ≥1 each", h.Failovers, h.Readmits)
	}
	if h.MinSecondaryDwell < clear {
		t.Fatalf("min dwell %v below clear window %v — policy flapped", h.MinSecondaryDwell, clear)
	}
	if h.SecondaryTicks == 0 {
		t.Fatal("no time on secondary despite a failover")
	}
	// Haze does not block mmWave, so delivered availability must beat the
	// FSO link's own up fraction by roughly the outage the fade cost.
	if h.DeliveredUpFraction <= res.UpFraction {
		t.Errorf("delivered %v did not beat FSO-only %v", h.DeliveredUpFraction, res.UpFraction)
	}
	if h.DeliveredUpFraction < 0.98 {
		t.Errorf("delivered availability %v, want ≈1 (mmWave carries through haze)", h.DeliveredUpFraction)
	}
}

// Hybrid runs are deterministic: same seed, same schedule, same result.
func TestRunHybridDeterministic(t *testing.T) {
	run := func() RunResult {
		s := oracleSystem(optics.Diverging10G16mm, 7)
		sched := &fault.Schedule{Seed: 9, Windows: []fault.Window{{
			Kind: fault.HazeFade, Start: time.Second, End: 3 * time.Second,
			DepthDB: 28, Ramp: 500 * time.Millisecond, RampDown: time.Second,
		}}}
		res, err := s.Run(RunOptions{
			Program: motion.Static{P: link.DefaultHeadsetPose(), Len: 5 * time.Second},
			Faults:  sched,
			Hybrid:  &HybridOptions{},
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("hybrid runs with identical inputs diverged")
	}
	if a.Metrics.Exposition() != b.Metrics.Exposition() {
		t.Error("hybrid metric expositions diverged")
	}
}

func TestHybridOptionsValidate(t *testing.T) {
	prog := motion.Static{P: link.DefaultHeadsetPose(), Len: time.Second}
	cases := []struct {
		name string
		h    *HybridOptions
	}{
		{"negative margin", &HybridOptions{MarginDB: -1}},
		{"nan block atten", &HybridOptions{BlockAttenDB: math.NaN()}},
		{"negative breach window", &HybridOptions{Policy: policy.Options{BreachAfter: -time.Second}}},
		{"bad secondary", func() *HybridOptions {
			sec := baseline.NewMmWave()
			sec.PeakGoodputGbps = -1
			return &HybridOptions{Secondary: sec}
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RunOptions{Program: prog, Hybrid: tc.h}.Validate()
			if err == nil {
				t.Error("bad hybrid options accepted")
			}
		})
	}
	if err := (RunOptions{Program: prog, Hybrid: &HybridOptions{}}).Validate(); err != nil {
		t.Errorf("zero hybrid options rejected: %v", err)
	}
}
