package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the interprocedural
// rules (determinism-taint, float-determinism, transitive hotpath) are
// founded on. The graph is intentionally simple and conservative
// (DESIGN.md §15):
//
//   - One node per function or method *declared in the module* with a
//     body. Function literals are attributed to the enclosing
//     declaration: a closure's calls, sources, and dynamic calls count
//     against the function that defines it, whether or not the literal
//     ever runs — over-approximation is the safe direction for taint.
//   - A call edge for every call whose callee the type checker resolves
//     to a module-declared function or method (direct calls, method
//     calls through values or pointers, generic instantiations resolve
//     to their origin declaration).
//   - A ref edge for every *mention* of a module function outside call
//     position (passing trace.Generate to parallel.Map, storing a method
//     value in a struct). A referenced function may be called by whoever
//     receives it, so refs propagate taint exactly like calls.
//   - Interface method calls and calls through func-typed values cannot
//     be resolved statically; they are recorded as Dynamic entries. The
//     taint rules do not traverse them (the deterministic scope is broad
//     enough that any module-defined implementation is itself checked);
//     the transitive hotpath rule reports them as unknown-callee
//     findings, because purity must be provable there.
//   - Uses of the forbidden nondeterminism sources (time.Now and
//     friends, os.Getenv and friends, global math/rand, math.FMA) and
//     `range` over a map are recorded as Sources on the containing
//     node; the taint rules seed from them.
//
// Package-level variable initializers are not part of the graph: the
// direct determinism rule walks whole files, so a forbidden source in a
// scoped package's var block is still a finding — it just doesn't taint.

// SourceCat classifies a taint source.
type SourceCat string

const (
	// SrcClock is time.Now/Since/Until.
	SrcClock SourceCat = "clock"
	// SrcEnv is os.Getenv/LookupEnv/Environ.
	SrcEnv SourceCat = "env"
	// SrcRand is a global math/rand (or math/rand/v2) top-level function.
	SrcRand SourceCat = "rand"
	// SrcMapRange is `for range` over a map.
	SrcMapRange SourceCat = "map-range"
	// SrcFMA is math.FMA (fused rounding differs from x*y+z and invites
	// platform-variant code paths).
	SrcFMA SourceCat = "fma"
)

// CGSource is one forbidden-source use inside a function body.
type CGSource struct {
	Pos  token.Pos
	Cat  SourceCat
	Desc string // "time.Now", "range over map m"
	Alt  string // the sanctioned alternative, for the finding message
}

// CGEdge is one resolved static edge to a module-declared function.
type CGEdge struct {
	To  *types.Func
	Pos token.Pos
	// Ref marks a mention outside call position (function value); the
	// target may be called by whoever receives it.
	Ref bool
}

// CGDyn is one call whose callee cannot be resolved statically.
type CGDyn struct {
	Pos  token.Pos
	Desc string // "interface call (io.Writer).Write", "call through func value f"
}

// CGNode is one module-declared function or method.
type CGNode struct {
	Fn      *types.Func
	Pkg     *Package
	Decl    *ast.FuncDecl
	Calls   []CGEdge
	Dynamic []CGDyn
	Sources []CGSource
}

// Name renders the node's qualified name for chain messages:
// "internal/core.(*runLoop).step", "internal/geom.Unit".
func (n *CGNode) Name() string {
	return funcName(n.Pkg.RelPath, n.Fn)
}

func funcName(rel string, fn *types.Func) string {
	prefix := rel
	if prefix == "." {
		prefix = fn.Pkg().Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return prefix + ".(" + recv + ")." + fn.Name()
	}
	return prefix + "." + fn.Name()
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
	// Order lists the nodes in deterministic (package, file, position)
	// order — every rule iteration goes through it.
	Order []*CGNode
}

// NodeByName finds a node by its qualified Name; nil when absent (test
// helper and chain-construction convenience).
func (g *CallGraph) NodeByName(name string) *CGNode {
	for _, n := range g.Order {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.graph != nil {
		return m.graph
	}
	g := &CallGraph{Nodes: map[*types.Func]*CGNode{}}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Pkg: pkg, Decl: fd}
				buildNode(m, pkg, fd, node)
				g.Nodes[fn] = node
				g.Order = append(g.Order, node)
			}
		}
	}
	// m.Pkgs is path-sorted and files/decls walk in source order, but
	// pin the order explicitly against future loader changes.
	sort.SliceStable(g.Order, func(i, j int) bool {
		a, b := g.Order[i], g.Order[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	m.graph = g
	return g
}

// moduleFunc reports whether fn is declared in the module under analysis.
func (m *Module) moduleFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == m.Path || strings.HasPrefix(p, m.Path+"/")
}

// buildNode walks one declaration body (closures included) and fills the
// node's edges, dynamic calls, and sources.
func buildNode(m *Module, pkg *Package, fd *ast.FuncDecl, node *CGNode) {
	info := pkg.Info

	// First pass: remember which identifiers sit in call position (the
	// callee ident itself, or the Sel of a callee selector), so the ref
	// pass below doesn't double-count a call as a mention.
	inCallPos := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			inCallPos[fun] = true
		case *ast.SelectorExpr:
			inCallPos[fun.Sel] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			buildCall(m, info, node, n)
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					node.Sources = append(node.Sources, CGSource{
						Pos:  n.For,
						Cat:  SrcMapRange,
						Desc: "range over map " + types.ExprString(n.X),
						Alt:  "extract sorted keys",
					})
				}
			}
		case *ast.Ident:
			fn, ok := info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			if src, ok := forbiddenSource(fn); ok {
				node.Sources = append(node.Sources, CGSource{Pos: n.Pos(), Cat: src.cat, Desc: src.desc, Alt: src.alt})
				return true
			}
			if m.moduleFunc(fn) && !inCallPos[n] {
				node.Calls = append(node.Calls, CGEdge{To: fn, Pos: n.Pos(), Ref: true})
			}
		}
		return true
	})
}

// buildCall classifies one call expression: static edge, dynamic call, or
// neither (builtins, conversions, stdlib).
func buildCall(m *Module, info *types.Info, node *CGNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Type conversion or builtin: no callee.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	if builtinName(info, fun) != "" {
		return
	}
	// An immediately-invoked literal's body is walked as part of this
	// node already.
	if _, ok := fun.(*ast.FuncLit); ok {
		return
	}

	if fn := calleeFunc(info, fun); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				node.Dynamic = append(node.Dynamic, CGDyn{
					Pos:  call.Pos(),
					Desc: "interface call (" + types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + ")." + fn.Name(),
				})
				return
			}
		}
		if m.moduleFunc(fn) {
			node.Calls = append(node.Calls, CGEdge{To: fn, Pos: call.Pos()})
		}
		// Stdlib callee: sources are recorded by the ident walk;
		// nothing else to do (bodies outside the module are trusted to
		// the runtime gates).
		return
	}

	// Unresolvable: a call through a func-typed value.
	node.Dynamic = append(node.Dynamic, CGDyn{
		Pos:  call.Pos(),
		Desc: "call through func value " + types.ExprString(fun),
	})
}

// forbidden source classification for the ident walk.
type srcInfo struct {
	cat  SourceCat
	desc string
	alt  string
}

func forbiddenSource(fn *types.Func) (srcInfo, bool) {
	if fn.Pkg() == nil {
		return srcInfo{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return srcInfo{}, false // methods (e.g. (*rand.Rand).Intn) are fine
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	if alt, bad := forbiddenStdlibFuncs[path][name]; bad {
		cat := SrcClock
		if path == "os" {
			cat = SrcEnv
		}
		return srcInfo{cat: cat, desc: path + "." + name, alt: alt}, true
	}
	if (path == "math/rand" || path == "math/rand/v2") && !sanctionedRandFuncs[name] {
		return srcInfo{cat: SrcRand, desc: "global " + path + "." + name, alt: "use rand.New(rand.NewSource(seed))"}, true
	}
	if path == "math" && name == "FMA" {
		return srcInfo{
			cat:  SrcFMA,
			desc: "math.FMA",
			alt:  "write the unfused x*y + z (one rounding per op, identical on every platform)",
		}, true
	}
	return srcInfo{}, false
}
