package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// metricNameRE is the repo's metric-name contract: cyclops_-prefixed
// snake_case (DESIGN.md §7).
var metricNameRE = regexp.MustCompile(`^cyclops_[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// ruleMetrics enforces metrics hygiene at every obs registry constructor
// call site ((*obs.Registry).Counter/Gauge/Histogram): the name must be a
// string literal (greppable, never computed), must match the
// cyclops_-prefixed snake_case contract, and must be registered from one
// call site only, module-wide — a deliberately shared name (the sim
// corpus aggregates) carries a //cyclops:metric-ok annotation at the
// duplicate site. The obs package itself is exempt: its Merge plumbing
// re-registers names that arrive in snapshots.
func ruleMetrics() Rule {
	return Rule{
		Name: "metrics",
		Doc: "Names passed to obs registry constructors must be string literals, cyclops_-prefixed " +
			"snake_case, and unique module-wide (one registering call site per name; annotate a " +
			"deliberate share with //cyclops:metric-ok <reason>). The obs package's own re-registration " +
			"plumbing is exempt.",
		Suppress: dirMetricOK,
		Check: func(p *Pass) {
			type site struct {
				at   ast.Node
				posn string // "file:line", for the duplicate message
				pkg  *Package
				kind string
				name string
			}
			var sites []site
			for _, pkg := range p.Module.Pkgs {
				if pkg.Types.Name() == "obs" {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						kind, ok := registryConstructor(pkg.Info, call)
						if !ok || len(call.Args) == 0 {
							return true
						}
						lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
						if !ok || lit.Kind.String() != "STRING" {
							p.Reportf(p.Pos(call.Args[0].Pos()),
								"metric name passed to Registry.%s must be a string literal, got %s",
								kind, types.ExprString(call.Args[0]))
							return true
						}
						name, err := strconv.Unquote(lit.Value)
						if err != nil {
							return true
						}
						if !metricNameRE.MatchString(name) {
							p.Reportf(p.Pos(lit.Pos()),
								"metric name %q must be cyclops_-prefixed snake_case (%s)",
								name, metricNameRE)
							return true
						}
						pos := p.Pos(lit.Pos())
						sites = append(sites, site{
							at:   lit,
							posn: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
							pkg:  pkg,
							kind: kind,
							name: name,
						})
						return true
					})
				}
			}
			// Uniqueness: sites arrive in (package path, file, position)
			// order already — the loader sorts packages and files and
			// Inspect walks in source order — so the first site of a name
			// is canonical and later registering sites are findings.
			first := map[string]site{}
			for _, s := range sites {
				if prev, dup := first[s.name]; dup {
					detail := ""
					if prev.kind != s.kind {
						detail = fmt.Sprintf(" as a different kind (%s vs %s)", s.kind, prev.kind)
					}
					p.Reportf(p.Pos(s.at.Pos()),
						"metric %q already registered%s at %s: one call site per name module-wide (or annotate //cyclops:metric-ok <reason>)",
						s.name, detail, prev.posn)
					continue
				}
				first[s.name] = s
			}
		},
	}
}

// registryConstructor reports whether call is
// (*obs.Registry).Counter/Gauge/Histogram and which one.
func registryConstructor(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return fn.Name(), true
}
