package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ruleErrDiscipline enforces error discipline in internal/... non-test
// code: no `_ =` discards of error values (every error is handled,
// returned, or carries a //cyclops:discard-ok justification) and no
// panic(...) without a //cyclops:panic-ok justification (panics are
// reserved for provably-impossible states and registration-time contract
// violations; runtime paths return errors).
func ruleErrDiscipline() Rule {
	return Rule{
		Name: "error-discipline",
		Doc: "In internal/... non-test code, `_ =` error discards require //cyclops:discard-ok <reason> " +
			"and panic(...) requires //cyclops:panic-ok <reason>.",
		Suppress: dirDiscardOK,
		Check: func(p *Pass) {
			for _, pkg := range p.Module.Pkgs {
				if pkg.RelPath != "internal" && !strings.HasPrefix(pkg.RelPath, "internal/") {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.AssignStmt:
							checkDiscards(p, pkg, n)
						case *ast.CallExpr:
							if builtinName(pkg.Info, n.Fun) == "panic" {
								p.ReportfSuppress(dirPanicOK, p.Pos(n.Pos()),
									"panic in %s: return an error, or annotate //cyclops:panic-ok <reason>",
									pkg.RelPath)
							}
						}
						return true
					})
				}
			}
		},
	}
}

// checkDiscards flags blank identifiers that receive an error value:
// `_ = f()`, `x, _ := g()`, and the pairwise form `a, _ = b, err`.
func checkDiscards(p *Pass, pkg *Package, as *ast.AssignStmt) {
	info := pkg.Info
	valueType := func(i int) types.Type {
		if len(as.Rhs) == len(as.Lhs) {
			if tv, ok := info.Types[as.Rhs[i]]; ok {
				return tv.Type
			}
			return nil
		}
		// Multi-assign from one call: position i of the result tuple.
		if len(as.Rhs) != 1 {
			return nil
		}
		tv, ok := info.Types[as.Rhs[0]]
		if !ok {
			return nil
		}
		if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
			return tuple.At(i).Type()
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := valueType(i)
		if t == nil || !isErrorType(t) {
			continue
		}
		p.Reportf(p.Pos(lhs.Pos()),
			"error discarded with _ in %s: handle it, return it, or annotate //cyclops:discard-ok <reason>",
			pkg.RelPath)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
