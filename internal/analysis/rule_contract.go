package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleOptInContract enforces the two conventions that keep feature arms
// and state machines evolvable without silent behavior drift
// (DESIGN.md §15):
//
//   - Feature-arm fields on a RunOptions struct in the deterministic
//     scope — fields whose type is a named struct ending in "Options" —
//     must be pointer-typed with a doc comment that documents the nil
//     default (the SolveGate/Handover/Hybrid convention: nil arm ==
//     feature off == byte-identical to baseline). A value-typed arm has
//     no "absent" state, so "feature off" and "feature zeroed" collapse
//     into one ambiguous default.
//   - Exported state enums (exported named integer types with at least
//     two package-level constants in scoped packages) must stay a single
//     append-only iota chain, and every switch over one must handle
//     every exported state: a `default:` that silently swallows a
//     freshly appended state is a finding. A panicking default is loud
//     and fine; so is a default on a fully covered switch (the String()
//     fallback style).
//
// Both halves answer to //cyclops:contract-ok <reason> — on the field
// for a deliberately value-typed sub-struct, on the switch or default
// line for a documented catch-all.
func ruleOptInContract() Rule {
	return Rule{
		Name: "opt-in-contract",
		Doc: "Feature-arm fields on core.RunOptions (named-struct types ending in \"Options\") must be " +
			"pointer-typed with a documented nil default; exported state enums in the deterministic scope " +
			"must be single append-only iota chains, and switches over them must handle every exported " +
			"state — a silent default swallowing a new state is a finding (panicking defaults are fine). " +
			"Suppress a justified exception with //cyclops:contract-ok <reason>.",
		Suppress: dirContractOK,
		Check: func(p *Pass) {
			checkRunOptionsArms(p)
			enums := collectEnums(p)
			checkEnumChains(p, enums)
			checkEnumSwitches(p, enums)
		},
	}
}

// checkRunOptionsArms walks every RunOptions struct declared in the
// deterministic scope and checks the pointer-arm convention field by
// field.
func checkRunOptionsArms(p *Pass) {
	for _, pkg := range p.Module.Pkgs {
		if !inDeterministicScope(pkg.RelPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "RunOptions" {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						checkArmField(p, pkg, field)
					}
				}
			}
		}
	}
}

func checkArmField(p *Pass, pkg *Package, field *ast.Field) {
	tv, ok := pkg.Info.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	name := fieldLabel(field)
	if ptr, ok := tv.Type.(*types.Pointer); ok {
		arm := optionsStructName(ptr.Elem())
		if arm == "" {
			return
		}
		if !strings.Contains(strings.ToLower(field.Doc.Text()), "nil") {
			p.Reportf(p.Pos(field.Pos()),
				"opt-in arm %s (*%s) on RunOptions must document its nil default in the field doc comment",
				name, arm)
		}
		return
	}
	if arm := optionsStructName(tv.Type); arm != "" {
		p.Reportf(p.Pos(field.Pos()),
			"opt-in arm %s on RunOptions has value type %s: feature arms must be *%s so nil means off and byte-identical to baseline",
			name, arm, arm)
	}
}

func fieldLabel(field *ast.Field) string {
	if len(field.Names) > 0 {
		return field.Names[0].Name
	}
	return types.ExprString(field.Type) // embedded
}

// optionsStructName returns the type name when t is a named struct type
// whose name ends in "Options" (the feature-arm naming convention), else
// "".
func optionsStructName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	n := named.Obj().Name()
	if !strings.HasSuffix(n, "Options") {
		return ""
	}
	return n
}

// enumInfo is one exported state enum: an exported named integer type
// from a scoped package with at least two package-level constants.
type enumInfo struct {
	obj      *types.TypeName
	exported []string // exported member names, declaration order
	members  []*enumMember
	blocks   []*ast.GenDecl // const blocks declaring members, in order
}

type enumMember struct {
	name  string
	spec  *ast.ValueSpec
	block *ast.GenDecl
}

// collectEnums finds the enums and their members. Candidate types come
// from the deterministic scope; members are collected module-wide so a
// stray `const X pkg.State = 9` elsewhere still shows up as a chain
// break.
func collectEnums(p *Pass) []*enumInfo {
	byObj := map[*types.TypeName]*enumInfo{}
	var order []*enumInfo
	for _, pkg := range p.Module.Pkgs {
		if !inDeterministicScope(pkg.RelPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					b, ok := named.Underlying().(*types.Basic)
					if !ok || b.Info()&types.IsInteger == 0 {
						continue
					}
					e := &enumInfo{obj: obj}
					byObj[obj] = e
					order = append(order, e)
				}
			}
		}
	}
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, nm := range vs.Names {
						c, ok := pkg.Info.Defs[nm].(*types.Const)
						if !ok {
							continue
						}
						named, ok := c.Type().(*types.Named)
						if !ok {
							continue
						}
						e := byObj[named.Obj()]
						if e == nil {
							continue
						}
						e.members = append(e.members, &enumMember{name: nm.Name, spec: vs, block: gd})
						if nm.IsExported() {
							e.exported = append(e.exported, nm.Name)
						}
						if len(e.blocks) == 0 || e.blocks[len(e.blocks)-1] != gd {
							e.blocks = append(e.blocks, gd)
						}
					}
				}
			}
		}
	}
	var enums []*enumInfo
	for _, e := range order {
		if len(e.members) >= 2 {
			enums = append(enums, e)
		}
	}
	return enums
}

// checkEnumChains enforces the append-only shape: all members in one
// const block, first member `= iota`, later members with no explicit
// value (so appending at the end is the only way to add a state and no
// existing value can ever be renumbered).
func checkEnumChains(p *Pass, enums []*enumInfo) {
	for _, e := range enums {
		name := e.obj.Name()
		if len(e.blocks) > 1 {
			for _, b := range e.blocks[1:] {
				p.Reportf(p.Pos(b.Pos()),
					"enum %s: members declared outside its original const block; keep the enum a single append-only iota chain",
					name)
			}
		}
		first := true
		for _, m := range e.members {
			if m.block != e.blocks[0] {
				continue
			}
			if first {
				first = false
				if len(m.spec.Values) != 1 || types.ExprString(m.spec.Values[0]) != "iota" {
					p.Reportf(p.Pos(m.spec.Pos()),
						"enum %s: first member %s must be declared `= iota` to anchor the append-only chain",
						name, m.name)
				}
				continue
			}
			if m.spec == e.members[0].spec {
				continue // second name in the anchoring spec
			}
			if len(m.spec.Values) != 0 {
				p.Reportf(p.Pos(m.spec.Pos()),
					"enum %s: member %s has an explicit value; append new members to the end of the iota chain instead",
					name, m.name)
			}
		}
	}
}

// checkEnumSwitches checks every expression switch in the module whose
// tag is an enum type for exhaustive coverage of the exported members.
func checkEnumSwitches(p *Pass, enums []*enumInfo) {
	byObj := map[*types.TypeName]*enumInfo{}
	for _, e := range enums {
		byObj[e.obj] = e
	}
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pkg.Info.Types[sw.Tag]
				if !ok || tv.Type == nil {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				if e := byObj[named.Obj()]; e != nil {
					checkOneSwitch(p, pkg, sw, e)
				}
				return true
			})
		}
	}
}

func checkOneSwitch(p *Pass, pkg *Package, sw *ast.SwitchStmt, e *enumInfo) {
	covered := map[string]bool{}
	var def *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			def = cc
			continue
		}
		for _, expr := range cc.List {
			var obj types.Object
			switch x := ast.Unparen(expr).(type) {
			case *ast.Ident:
				obj = pkg.Info.Uses[x]
			case *ast.SelectorExpr:
				obj = pkg.Info.Uses[x.Sel]
			}
			if c, ok := obj.(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, name := range e.exported {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return // fully covered; a default here is the String() fallback style
	}
	list := strings.Join(missing, ", ")
	switch {
	case def == nil:
		p.Reportf(p.Pos(sw.Pos()),
			"switch on enum %s does not handle %s and has no default: a newly appended state would fall through silently",
			e.obj.Name(), list)
	case !loudDefault(pkg, def):
		p.Reportf(p.Pos(def.Pos()),
			"switch on enum %s has a default that silently swallows %s: handle every state or make the default panic",
			e.obj.Name(), list)
	}
}

// loudDefault reports whether the default clause panics — loud enough
// that a new state cannot slip through unnoticed at runtime.
func loudDefault(pkg *Package, def *ast.CaseClause) bool {
	loud := false
	for _, stmt := range def.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && builtinName(pkg.Info, call.Fun) == "panic" {
				loud = true
			}
			return true
		})
	}
	return loud
}
