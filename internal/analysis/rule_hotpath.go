package analysis

import (
	"go/ast"
	"go/types"
)

// ruleHotPath checks every function annotated //cyclops:hotpath AND its
// whole static call tree: no function the root transitively calls (or
// references as a function value) may call into fmt, allocate with
// make/new, append outside the capacity-reusing self-append form
// `x = append(x, ...)`, or convert values to interface types (explicitly,
// at call arguments, or at returns) — every one of those is a heap
// allocation (or an escape) on the paths the alloc-check runtime gate
// pins at zero allocs/op. Calls the graph cannot resolve (interface
// method calls, calls through func values) are findings themselves:
// purity must be provable over the whole tree. A //cyclops:alloc-ok
// annotation on a call line cuts the traversal there — the sanctioned
// way to mark a cold branch (outage handling, error paths) whose cost is
// accounted outside the steady state. Findings below the root carry the
// call chain in the message ("hot path step → (*Supervisor).SolveOK: …").
func ruleHotPath() Rule {
	return Rule{
		Name: "hotpath",
		Doc: "Functions annotated //cyclops:hotpath and every function in their static call tree may " +
			"not call fmt.*, allocate with make/new, append into anything but the slice itself " +
			"(x = append(x, ...)), or convert values to interface types; unresolvable calls (interface " +
			"methods, func values) in the tree are findings. Suppress a justified line with " +
			"//cyclops:alloc-ok <reason>; the same annotation on a call line cuts the traversal into a " +
			"documented cold branch.",
		Suppress: dirAllocOK,
		Check: func(p *Pass) {
			g := p.Module.CallGraph()
			visited := map[*types.Func]bool{}
			var visit func(fn *types.Func, label string)
			visit = func(fn *types.Func, label string) {
				node := g.Nodes[fn]
				if node == nil {
					return
				}
				checkHotFunc(p, node.Pkg, node.Decl, label)
				for _, d := range node.Dynamic {
					p.Reportf(p.Pos(d.Pos),
						"hot path %s: %s (unknown callee): every hot-path call must resolve statically so the whole tree is checkable; annotate //cyclops:alloc-ok <reason> to cut",
						label, d.Desc)
				}
				for _, e := range node.Calls {
					to := g.Nodes[e.To]
					if to == nil || visited[e.To] {
						continue
					}
					if p.ann.suppressed(dirAllocOK, p.Pos(e.Pos)) {
						p.suppressed++ // an annotated cut is a justified cold branch
						continue
					}
					visited[e.To] = true
					visit(e.To, label+" → "+declLabel(to.Decl))
				}
			}
			for _, pkg := range p.Module.Pkgs {
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil || !funcHasDirective(fd, dirHotpath) {
							continue
						}
						fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
						if !ok || visited[fn] {
							continue
						}
						visited[fn] = true
						visit(fn, declLabel(fd))
					}
				}
			}
		},
	}
}

// declLabel is the chain element for a declaration: "step",
// "(*Supervisor).SolveOK".
func declLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkHotFunc(p *Pass, pkg *Package, fn *ast.FuncDecl, label string) {
	info := pkg.Info

	// Self-appends `x = append(x, ...)` reuse capacity and are the
	// sanctioned pattern for preallocated slices; collect them first so
	// the call walk below can exempt them.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || builtinName(info, call.Fun) != "append" || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			selfAppend[call] = true
		}
		return true
	})

	// Result types of the enclosing function, for return-site checks.
	var results *types.Tuple
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, pkg, label, n, selfAppend)
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				return true // naked return or single-call multi-value: nothing concrete to flag
			}
			for i, res := range n.Results {
				if isInterface(results.At(i).Type()) && convertsToInterface(info, res) {
					p.Reportf(p.Pos(res.Pos()),
						"hot path %s returns %s as interface %s (allocates): return a concrete type or a prebuilt value",
						label, types.ExprString(res), results.At(i).Type())
				}
			}
		}
		return true
	})
}

func checkHotCall(p *Pass, pkg *Package, label string, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	info := pkg.Info

	// Conversion T(x)? Flag only conversions to interface types.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && convertsToInterface(info, call.Args[0]) {
			p.Reportf(p.Pos(call.Pos()),
				"hot path %s converts to interface type %s (allocates)", label, tv.Type)
		}
		return
	}

	switch builtinName(info, call.Fun) {
	case "append":
		if !selfAppend[call] {
			p.Reportf(p.Pos(call.Pos()),
				"hot path %s: append result does not feed back into its slice (escapes/allocates); use the x = append(x, ...) form on a preallocated slice",
				label)
		}
		return
	case "make", "new":
		p.Reportf(p.Pos(call.Pos()),
			"hot path %s allocates with %s: hoist the allocation out of the hot path",
			label, builtinName(info, call.Fun))
		return
	case "":
		// not a builtin — fall through to the function-call checks
	default:
		return // len/cap/copy/... are fine
	}

	// fmt.* calls: always allocating (interface boxing + formatting).
	if obj := calleeFunc(info, call.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		p.Reportf(p.Pos(call.Pos()),
			"hot path %s calls fmt.%s (allocates): precompute messages or use prebuilt errors",
			label, obj.Name())
		return
	}

	// Implicit interface conversions at call arguments.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !isInterface(pt) {
			continue
		}
		if convertsToInterface(info, arg) {
			p.Reportf(p.Pos(arg.Pos()),
				"hot path %s passes %s as interface %s (allocates)",
				label, types.ExprString(arg), pt)
		}
	}
}

// paramType returns the type of parameter i of sig, unrolling variadics
// (for a call without ..., the variadic tail's element type applies).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !ellipsis {
		if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// convertsToInterface reports whether assigning e to an interface-typed
// slot performs a concrete→interface conversion: true unless e is already
// interface-typed or is the untyped nil.
func convertsToInterface(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// builtinName returns the name of the builtin fun resolves to, or "".
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleeFunc resolves fun to the *types.Func it calls, through selectors
// and parentheses; nil for func-typed variables and literals.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}
