package analysis

import (
	"go/token"
	"path/filepath"
	"reflect"
	"testing"
)

func bf(rule, file, msg string) Finding {
	return Finding{Rule: rule, Pos: token.Position{Filename: file, Line: 1, Column: 1}, Msg: msg}
}

// TestBaselineFilter pins the matching semantics: (rule, file, msg)
// multisets, line numbers ignored, unmatched findings stay fresh, and
// unconsumed entries come back stale.
func TestBaselineFilter(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{Rule: "hotpath", File: "a.go", Msg: "boom"},
		{Rule: "hotpath", File: "a.go", Msg: "twice", Count: 2},
		{Rule: "metrics", File: "gone.go", Msg: "never happens again"},
	}}
	findings := []Finding{
		bf("hotpath", "a.go", "boom"),
		bf("hotpath", "a.go", "twice"),
		bf("hotpath", "a.go", "twice"),
		bf("hotpath", "a.go", "twice"), // third copy exceeds the count: fresh
		bf("determinism", "b.go", "new"),
	}
	fresh, baselined, stale := b.Filter(findings)
	if baselined != 3 {
		t.Errorf("baselined = %d, want 3", baselined)
	}
	var freshMsgs []string
	for _, f := range fresh {
		freshMsgs = append(freshMsgs, f.Rule+":"+f.Msg)
	}
	if want := []string{"hotpath:twice", "determinism:new"}; !reflect.DeepEqual(freshMsgs, want) {
		t.Errorf("fresh = %v, want %v", freshMsgs, want)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" || stale[0].Count != 1 {
		t.Errorf("stale = %+v, want the gone.go entry with count 1", stale)
	}
}

// TestBaselineRoundTrip: NewBaseline aggregates with counts and sorts;
// Save/LoadBaseline round-trips; the loaded baseline filters its own
// findings to zero fresh.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bf("b-rule", "z.go", "m"),
		bf("a-rule", "a.go", "dup"),
		bf("a-rule", "a.go", "dup"),
	}
	b := NewBaseline(findings)
	want := []BaselineEntry{
		{Rule: "a-rule", File: "a.go", Msg: "dup", Count: 2},
		{Rule: "b-rule", File: "z.go", Msg: "m"},
	}
	if !reflect.DeepEqual(b.Entries, want) {
		t.Fatalf("NewBaseline = %+v, want %+v", b.Entries, want)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Entries, b.Entries) {
		t.Errorf("round-trip changed entries: %+v vs %+v", loaded.Entries, b.Entries)
	}
	fresh, baselined, stale := loaded.Filter(findings)
	if len(fresh) != 0 || baselined != 3 || len(stale) != 0 {
		t.Errorf("self-filter: fresh=%d baselined=%d stale=%d, want 0/3/0",
			len(fresh), baselined, len(stale))
	}
}

// TestBaselineMissingFile pins the load-error path the command turns
// into exit status 2.
func TestBaselineMissingFile(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing baseline succeeded")
	}
}
