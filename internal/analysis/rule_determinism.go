package analysis

import (
	"go/ast"
	"go/types"
)

// forbiddenStdlibFuncs maps package path → function name → the message
// suffix explaining the sanctioned alternative. Any *use* of the object is
// flagged (calls, but also taking the function as a value).
var forbiddenStdlibFuncs = map[string]map[string]string{
	"time": {
		"Now":   "derive timestamps from the simulation clock or the seed",
		"Since": "derive durations from the simulation clock",
		"Until": "derive durations from the simulation clock",
	},
	"os": {
		"Getenv":    "plumb configuration through options structs",
		"LookupEnv": "plumb configuration through options structs",
		"Environ":   "plumb configuration through options structs",
	},
}

// sanctionedRandFuncs are the math/rand package-level constructors that
// ARE the sanctioned seeded pattern; every other package-level math/rand
// function draws from the global, scheduling-ordered source and is
// forbidden in deterministic packages.
var sanctionedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func ruleDeterminism() Rule {
	return Rule{
		Name: "determinism",
		Doc: "In the deterministic packages (internal/{core,sim,fault,trace,parallel,obs,netem}), " +
			"non-test code must be a pure function of explicit seeds: time.Now/Since/Until, " +
			"os.Getenv/LookupEnv/Environ, and the global math/rand top-level functions are forbidden " +
			"(rand.New(rand.NewSource(seed)) is the sanctioned pattern).",
		Suppress: dirDetOK,
		Check: func(p *Pass) {
			for _, pkg := range p.Module.Pkgs {
				if !inDeterministicScope(pkg.RelPath) {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						fn, ok := pkg.Info.Uses[id].(*types.Func)
						if !ok || fn.Pkg() == nil {
							return true
						}
						if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
							return true // methods (e.g. (*rand.Rand).Intn) are fine
						}
						path := fn.Pkg().Path()
						if alt, bad := forbiddenStdlibFuncs[path][fn.Name()]; bad {
							p.Reportf(p.Pos(id.Pos()),
								"%s.%s in deterministic package %s: %s", path, fn.Name(), pkg.RelPath, alt)
							return true
						}
						if (path == "math/rand" || path == "math/rand/v2") && !sanctionedRandFuncs[fn.Name()] {
							p.Reportf(p.Pos(id.Pos()),
								"global %s.%s in deterministic package %s: use rand.New(rand.NewSource(seed))",
								path, fn.Name(), pkg.RelPath)
						}
						return true
					})
				}
			}
		},
	}
}

func ruleMapOrder() Rule {
	return Rule{
		Name: "map-order",
		Doc: "In the deterministic packages, `for range` over a map iterates in randomized order and " +
			"must not exist in non-test code unless annotated //cyclops:deterministic-ok <reason> " +
			"(sorted-key extraction is the sanctioned pattern; a justified annotation states why " +
			"order cannot leak, e.g. the loop builds another map or the reduction is exact).",
		Suppress: dirDetOK,
		Check: func(p *Pass) {
			for _, pkg := range p.Module.Pkgs {
				if !inDeterministicScope(pkg.RelPath) {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						rs, ok := n.(*ast.RangeStmt)
						if !ok {
							return true
						}
						tv, ok := pkg.Info.Types[rs.X]
						if !ok {
							return true
						}
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							p.Reportf(p.Pos(rs.For),
								"range over map %s in deterministic package %s: extract sorted keys, or annotate //cyclops:deterministic-ok <reason>",
								types.ExprString(rs.X), pkg.RelPath)
						}
						return true
					})
				}
			}
		},
	}
}
