package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The interprocedural taint rules. The direct rules (determinism,
// map-order, float-determinism's in-scope clause) flag forbidden sources
// *inside* the deterministic scope; the taint rules close the loop the
// other way: a function defined outside the scope but reachable from it
// through the static call graph must not reach a source either, or the
// nondeterminism leaks in through an unannotated callee. Findings land on
// the tainted function's declaration and print the full call chain from a
// scope entry point down to the source (DESIGN.md §15).

// taintInfo is the result of one taint computation over the call graph,
// restricted to a set of source categories.
type taintInfo struct {
	graph *CallGraph
	// dist is the number of call hops from a function to its nearest
	// live (unsuppressed) source; present only for tainted functions.
	dist map[*types.Func]int
	// next is the edge to follow toward the source (dist strictly
	// decreases along it, so chains terminate even through cycles).
	next map[*types.Func]CGEdge
	// src is the terminal source for functions with a live local source.
	src map[*types.Func]CGSource
}

// computeTaint seeds from every unsuppressed source whose category is in
// cats and propagates backward over call and ref edges to a fixpoint.
// A //cyclops:deterministic-ok annotation at a source line removes the
// seed — the same annotation that silences the direct rules.
func computeTaint(p *Pass, cats map[SourceCat]bool) *taintInfo {
	g := p.Module.CallGraph()
	t := &taintInfo{
		graph: g,
		dist:  map[*types.Func]int{},
		next:  map[*types.Func]CGEdge{},
		src:   map[*types.Func]CGSource{},
	}

	// Reverse adjacency, in deterministic order (g.Order, then edge
	// order inside each node).
	callers := map[*types.Func][]*CGNode{}
	for _, n := range g.Order {
		for _, e := range n.Calls {
			callers[e.To] = append(callers[e.To], n)
		}
	}

	// Seed: functions with a live local source (first by position wins
	// as the reported terminal).
	var frontier []*CGNode
	for _, n := range g.Order {
		for _, s := range n.Sources {
			if !cats[s.Cat] {
				continue
			}
			if p.ann.suppressed(dirDetOK, p.Pos(s.Pos)) {
				continue
			}
			if _, seeded := t.dist[n.Fn]; !seeded || s.Pos < t.src[n.Fn].Pos {
				t.dist[n.Fn] = 0
				t.src[n.Fn] = s
			}
		}
		if _, ok := t.dist[n.Fn]; ok {
			frontier = append(frontier, n)
		}
	}

	// BFS backward: callers of a tainted function are tainted one hop
	// further out. Level-order keeps dist minimal; iteration over
	// g.Order-derived slices keeps it deterministic.
	for len(frontier) > 0 {
		var nextFrontier []*CGNode
		for _, n := range frontier {
			for _, caller := range callers[n.Fn] {
				if _, seen := t.dist[caller.Fn]; seen {
					continue
				}
				t.dist[caller.Fn] = t.dist[n.Fn] + 1
				nextFrontier = append(nextFrontier, caller)
			}
		}
		frontier = nextFrontier
	}

	// Chain pointers: the first edge (source order) whose target is one
	// hop closer to a source.
	for _, n := range g.Order {
		d, tainted := t.dist[n.Fn]
		if !tainted || d == 0 {
			continue
		}
		for _, e := range n.Calls {
			if td, ok := t.dist[e.To]; ok && td == d-1 {
				t.next[n.Fn] = e
				break
			}
		}
	}
	return t
}

// sourceChain renders the call chain from fn down to its terminal source:
// "a → b → time.Now", plus the source for the message tail.
func (t *taintInfo) sourceChain(fn *types.Func) ([]string, CGSource) {
	var names []string
	cur := fn
	for {
		node := t.graph.Nodes[cur]
		names = append(names, node.Name())
		if t.dist[cur] == 0 {
			src := t.src[cur]
			names = append(names, src.Desc)
			return names, src
		}
		cur = t.next[cur].To
	}
}

// scopeReach computes, for every out-of-scope node, how the deterministic
// scope first reaches it (BFS over call+ref edges from every in-scope
// node; parent pointers rebuild the entry chain).
func scopeReach(g *CallGraph) map[*types.Func]*CGNode {
	parent := map[*types.Func]*CGNode{}
	inScope := func(n *CGNode) bool { return inDeterministicScope(n.Pkg.RelPath) }
	var frontier []*CGNode
	for _, n := range g.Order {
		if !inScope(n) {
			continue
		}
		for _, e := range n.Calls {
			to := g.Nodes[e.To]
			if to == nil || inScope(to) {
				continue
			}
			if _, seen := parent[e.To]; seen {
				continue
			}
			parent[e.To] = n
			frontier = append(frontier, to)
		}
	}
	for len(frontier) > 0 {
		var next []*CGNode
		for _, n := range frontier {
			for _, e := range n.Calls {
				to := g.Nodes[e.To]
				if to == nil || inScope(to) {
					continue
				}
				if _, seen := parent[e.To]; seen {
					continue
				}
				parent[e.To] = n
				next = append(next, to)
			}
		}
		frontier = next
	}
	return parent
}

// entryChain rebuilds the path from the first in-scope entry point down
// to fn: "internal/sim.Run → geomx.Jitter".
func entryChain(g *CallGraph, parent map[*types.Func]*CGNode, fn *types.Func) []string {
	var rev []string
	cur := fn
	for {
		rev = append(rev, g.Nodes[cur].Name())
		p, ok := parent[cur]
		if !ok {
			break // cur is in scope: the entry point
		}
		cur = p.Fn
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// reportTransitive runs one taint pass and reports every tainted
// out-of-scope function reachable from the deterministic scope, with the
// full call chain (entry → ... → function → ... → source) in the message.
func reportTransitive(p *Pass, cats map[SourceCat]bool) {
	g := p.Module.CallGraph()
	t := computeTaint(p, cats)
	parent := scopeReach(g)
	for _, n := range g.Order {
		if inDeterministicScope(n.Pkg.RelPath) {
			continue // direct rules own the in-scope findings
		}
		if _, reached := parent[n.Fn]; !reached {
			continue
		}
		if _, tainted := t.dist[n.Fn]; !tainted {
			continue
		}
		entry := entryChain(g, parent, n.Fn)
		down, src := t.sourceChain(n.Fn)
		chain := append(entry, down[1:]...) // n appears once, at the seam
		p.Reportf(p.Pos(n.Decl.Pos()),
			"%s is reachable from the deterministic scope and reaches %s: %s — %s",
			n.Name(), src.Desc, strings.Join(chain, " → "), src.Alt)
	}
}

// detTaintCats are the determinism-taint source categories; SrcFMA is
// float-determinism's.
var detTaintCats = map[SourceCat]bool{SrcClock: true, SrcEnv: true, SrcRand: true, SrcMapRange: true}

func ruleDeterminismTaint() Rule {
	return Rule{
		Name: "determinism-taint",
		Doc: "Functions outside the deterministic scope but reachable from it through the static call " +
			"graph (direct calls, method calls, function-value references) must not transitively reach " +
			"time.Now/Since/Until, os.Getenv/LookupEnv/Environ, global math/rand, or a map range. The " +
			"finding lands on the tainted function's declaration with the full call chain; suppress there " +
			"(or at the source line) with //cyclops:deterministic-ok <reason>.",
		Suppress: dirDetOK,
		Check: func(p *Pass) {
			reportTransitive(p, detTaintCats)
		},
	}
}

func ruleFloatDeterminism() Rule {
	return Rule{
		Name: "float-determinism",
		Doc: "math.FMA fuses multiply-add into one rounding, so its results differ from the unfused " +
			"x*y + z the rest of the codebase computes and invite platform-variant fast paths. It is " +
			"forbidden in the deterministic scope, directly or through any reachable callee. Suppress a " +
			"justified use with //cyclops:deterministic-ok <reason>.",
		Suppress: dirDetOK,
		Check: func(p *Pass) {
			// Direct: any use inside the scope (whole-file walk, so var
			// initializers count too, same as the determinism rule).
			for _, pkg := range p.Module.Pkgs {
				if !inDeterministicScope(pkg.RelPath) {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						fn, ok := pkg.Info.Uses[id].(*types.Func)
						if !ok {
							return true
						}
						if src, bad := forbiddenSource(fn); bad && src.cat == SrcFMA {
							p.Reportf(p.Pos(id.Pos()),
								"math.FMA in deterministic package %s: %s", pkg.RelPath, src.alt)
						}
						return true
					})
				}
			}
			// Transitive: reachable callees outside the scope.
			reportTransitive(p, map[SourceCat]bool{SrcFMA: true})
		},
	}
}
