package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Rule is one self-contained invariant check. Rules are pure functions of
// the loaded module: they walk the typed ASTs and report findings through
// the Pass. Adding a rule is a one-place change: implement the Check,
// give it a Name/Doc/Suppress directive, and append it to Rules().
type Rule struct {
	// Name is the stable rule ID that findings carry ("determinism",
	// "map-order", …).
	Name string
	// Doc is the one-paragraph description -list prints.
	Doc string
	// Suppress is the //cyclops: directive that silences this rule at a
	// finding's line ("" = not suppressible).
	Suppress string
	// Check walks the module and reports findings.
	Check func(p *Pass)
}

// RuleAnnotation is the pseudo-rule ID for malformed //cyclops: comments
// (reported by the annotation parser itself, never suppressible).
const RuleAnnotation = "annotation"

// Finding is one reported violation.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String renders the finding in the conventional file:line:col form, with
// the file path relative to the module root when possible.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Report is the outcome of running the rule table over a module.
type Report struct {
	// Findings are the unsuppressed findings, sorted by (file, line,
	// column, rule, message).
	Findings []Finding
	// Suppressed counts findings silenced by valid annotations.
	Suppressed int
}

// Pass carries the module and collects findings while rules run.
type Pass struct {
	Module *Module

	rule       Rule
	ann        *annotations
	findings   []Finding
	suppressed int
}

// Reportf records a finding for the running rule at pos, honoring the
// rule's suppression directive.
func (p *Pass) Reportf(pos token.Position, format string, args ...any) {
	p.reportAs(p.rule.Name, p.rule.Suppress, pos, fmt.Sprintf(format, args...))
}

// ReportfSuppress is Reportf with an explicit suppression directive, for
// rules whose sub-checks answer to different annotations (error-discipline
// uses discard-ok and panic-ok).
func (p *Pass) ReportfSuppress(dir string, pos token.Position, format string, args ...any) {
	p.reportAs(p.rule.Name, dir, pos, fmt.Sprintf(format, args...))
}

func (p *Pass) reportAs(rule, dir string, pos token.Position, msg string) {
	if dir != "" && p.ann.suppressed(dir, pos) {
		p.suppressed++
		return
	}
	p.findings = append(p.findings, Finding{Rule: rule, Pos: pos, Msg: msg})
}

// Pos converts a token.Pos to a module-root-relative Position.
func (p *Pass) Pos(pos token.Pos) token.Position {
	position := p.Module.Fset.Position(pos)
	position.Filename = p.Module.relFile(position.Filename)
	return position
}

func (m *Module) relFile(file string) string {
	if rel, err := relIfUnder(m.Root, file); err == nil {
		return rel
	}
	return file
}

func relIfUnder(root, file string) (string, error) {
	if !strings.HasPrefix(file, root) {
		return "", fmt.Errorf("outside root")
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(file, root), "/")
	if rel == "" {
		return "", fmt.Errorf("outside root")
	}
	return rel, nil
}

// Run executes the rule table over the module and returns the
// deterministic report.
func Run(mod *Module, rules []Rule) Report {
	p := &Pass{Module: mod}
	p.ann = parseAnnotations(mod, func(rule string, pos token.Position, msg string) {
		pos.Filename = mod.relFile(pos.Filename)
		p.reportAs(rule, "", pos, msg)
	})
	for _, r := range rules {
		p.rule = r
		r.Check(p)
	}
	sort.Slice(p.findings, func(i, j int) bool {
		a, b := p.findings[i], p.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return Report{Findings: p.findings, Suppressed: p.suppressed}
}

// Rules returns the full rule table in its canonical order. New rules
// register here and nowhere else.
func Rules() []Rule {
	return []Rule{
		ruleDeterminism(),
		ruleDeterminismTaint(),
		ruleFloatDeterminism(),
		ruleMapOrder(),
		ruleHotPath(),
		ruleMetrics(),
		ruleErrDiscipline(),
		ruleOptInContract(),
	}
}

// deterministicScopeHoles are the module-relative package paths under
// internal/ documented OUT of the deterministic scope, each with its
// reason. Everything else under internal/ is in scope: the scope is
// "all of internal/ minus documented holes", so a freshly added package
// is covered by default instead of silently missing from an allowlist
// that drifts. (A slice, not a map: this package is part of the scope's
// tooling and practices what it preaches about map iteration order.)
var deterministicScopeHoles = []struct {
	path, reason string
}{
	{"internal/analysis", "offline build tooling that never runs inside an experiment; its own output order is pinned by TestReportDeterministic"},
}

// inDeterministicScope reports whether a package (by module-relative
// path) is covered by the determinism rules: every package under
// internal/ except the documented holes.
func inDeterministicScope(rel string) bool {
	if !strings.HasPrefix(rel, "internal/") {
		return false
	}
	for _, h := range deterministicScopeHoles {
		if rel == h.path || strings.HasPrefix(rel, h.path+"/") {
			return false
		}
	}
	return true
}
