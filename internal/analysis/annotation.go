package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //cyclops: annotation grammar (DESIGN.md §10). An annotation is a
// line comment of the exact form
//
//	//cyclops:<directive> [reason...]
//
// (no space after //, matching the //go: convention). Directives:
//
//   - hotpath — on a function's doc comment: the function body must stay
//     allocation-free (no fmt, no make/new, no append that grows a fresh
//     slice, no conversions to interface types). A trailing note is
//     allowed and ignored.
//   - deterministic-ok <reason> — suppresses determinism and map-order
//     findings on the annotated line. Reason required.
//   - alloc-ok <reason> — suppresses hotpath findings. Reason required.
//   - metric-ok <reason> — suppresses metrics-hygiene findings. Reason
//     required.
//   - discard-ok <reason> — suppresses error-discard findings. Reason
//     required.
//   - panic-ok <reason> — suppresses panic findings. Reason required.
//   - contract-ok <reason> — suppresses opt-in-contract findings (a
//     RunOptions field that is deliberately not a pointer-armed feature,
//     or a switch whose default is a documented catch-all). Reason
//     required.
//
// A suppressing annotation covers findings on its own line (trailing
// comment) and on the line directly below it (standalone comment above
// the offending statement). Unknown directives and suppressors without a
// reason are themselves findings (rule "annotation") and suppress
// nothing — a typo must never silently disable a check.

const annPrefix = "//cyclops:"

// directive names.
const (
	dirHotpath    = "hotpath"
	dirDetOK      = "deterministic-ok"
	dirAllocOK    = "alloc-ok"
	dirMetricOK   = "metric-ok"
	dirDiscardOK  = "discard-ok"
	dirPanicOK    = "panic-ok"
	dirContractOK = "contract-ok"
)

// needsReason reports whether a directive is a suppressor requiring a
// justification.
func needsReason(dir string) bool {
	switch dir {
	case dirDetOK, dirAllocOK, dirMetricOK, dirDiscardOK, dirPanicOK, dirContractOK:
		return true
	}
	return false
}

func knownDirective(dir string) bool {
	return dir == dirHotpath || needsReason(dir)
}

// annotation is one parsed //cyclops: comment.
type annotation struct {
	dir    string
	reason string
	pos    token.Position
}

// annotations indexes a module's valid suppressing annotations by
// (filename, line, directive).
type annotations struct {
	byLine map[annKey]bool
}

type annKey struct {
	file string
	line int
	dir  string
}

// parseAnnotations scans every comment of every file, records valid
// suppressors, and reports malformed ones through report (signature
// matches Pass.report).
func parseAnnotations(mod *Module, report func(rule string, pos token.Position, msg string)) *annotations {
	ann := &annotations{byLine: map[annKey]bool{}}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, annPrefix)
					if !ok {
						// Catch the near-miss that would otherwise
						// silently not suppress: a known directive
						// behind "// cyclops:" spacing or casing.
						// (Ordinary prose mentioning "Cyclops:" never
						// names a directive, so it stays untouched.)
						t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
						if rest, isAnn := strings.CutPrefix(strings.ToLower(t), "cyclops:"); isAnn {
							d, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
							if knownDirective(d) {
								report(RuleAnnotation, mod.Fset.Position(c.Pos()),
									"malformed annotation "+strings.TrimSpace(c.Text)+" (write //cyclops:"+d+" with no space after //)")
							}
						}
						continue
					}
					dir, reason, _ := strings.Cut(text, " ")
					reason = strings.TrimSpace(reason)
					// Findings carry module-root-relative filenames
					// (Pass.Pos); the suppression index must key the
					// same way or nothing ever matches.
					pos := mod.Fset.Position(c.Pos())
					pos.Filename = mod.relFile(pos.Filename)
					switch {
					case !knownDirective(dir):
						report(RuleAnnotation, pos, "unknown //cyclops: directive "+strings.TrimSpace(dir))
					case needsReason(dir) && reason == "":
						report(RuleAnnotation, pos, "//cyclops:"+dir+" requires a reason")
					case needsReason(dir):
						ann.byLine[annKey{pos.Filename, pos.Line, dir}] = true
					}
				}
			}
		}
	}
	return ann
}

// suppressed reports whether a finding at pos is covered by directive dir:
// an annotation on the finding's own line or on the line directly above.
func (a *annotations) suppressed(dir string, pos token.Position) bool {
	if a == nil {
		return false
	}
	return a.byLine[annKey{pos.Filename, pos.Line, dir}] ||
		a.byLine[annKey{pos.Filename, pos.Line - 1, dir}]
}

// funcHasDirective reports whether fn's doc comment carries the given
// directive (used by the hotpath rule to find annotated functions).
func funcHasDirective(fn *ast.FuncDecl, dir string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, annPrefix); ok {
			d, _, _ := strings.Cut(text, " ")
			if d == dir {
				return true
			}
		}
	}
	return false
}
