// Package helper is outside the deterministic scope.
package helper

import "math"

// Fuse is reachable from the scope and fuses: tainted.
func Fuse(x, y, z float64) float64 {
	return math.FMA(x, y, z)
}

// FreeAgent fuses too, but nothing in the scope reaches it: clean.
func FreeAgent(x, y, z float64) float64 {
	return math.FMA(x, y, z)
}
