// Package sim exercises float-determinism: a direct math.FMA in scope
// and one reached transitively through an out-of-scope helper.
package sim

import (
	"math"

	"fixture/helper"
)

// Mix fuses in scope: a direct finding.
func Mix(x, y, z float64) float64 {
	return math.FMA(x, y, z)
}

// Via reaches the fuse one hop below the scope: a transitive finding on
// the helper.
func Via() float64 {
	return helper.Fuse(1, 2, 3)
}
