// Package core exercises the opt-in-contract rule: RunOptions feature
// arms and state-enum hygiene.
package core

// GateOptions is a feature arm's option struct.
type GateOptions struct{ X int }

// TuneOptions is a tuning sub-struct, deliberately not an arm.
type TuneOptions struct{ Y int }

// PlainOptions is a feature arm's option struct.
type PlainOptions struct{ Z int }

// RunOptions is the struct the rule keys on by name.
type RunOptions struct {
	// Gate is value-typed: a finding (no nil state).
	Gate GateOptions
	// Tuned is deliberately value-typed.
	//cyclops:contract-ok tuning sub-struct, zero value means defaults, not an opt-in arm
	Tuned TuneOptions
	// Plain arms the plain feature. Its doc never documents the
	// pointer's default: a finding.
	Plain *PlainOptions
	// Good, when non-nil, arms the good feature. Default (nil): off.
	Good *GateOptions
	// Count is not an Options struct; the rule ignores it.
	Count int
}

// State is a well-formed append-only enum.
type State int

const (
	Idle State = iota
	Busy
	Done
	numStates // unexported terminator, exempt from switch coverage
)

// Mode breaks append-only: a member declared outside the original block.
type Mode int

const (
	Fast Mode = iota
	Slow
)

// Broken extends Mode outside its block: a finding.
const Broken Mode = 7

// Weird never anchors its chain with iota: a finding.
type Weird int

const (
	W1 Weird = 1
	W2 Weird = 2
)
