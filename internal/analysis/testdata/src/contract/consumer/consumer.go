// Package consumer is outside the deterministic scope, but switches over
// scoped enums are checked module-wide: a consumer is exactly where a new
// state gets swallowed.
package consumer

import "fixture/internal/core"

// SilentDefault swallows Busy and Done: a finding.
func SilentDefault(s core.State) int {
	switch s {
	case core.Idle:
		return 0
	default:
		return -1
	}
}

// NoDefault misses Done with nothing to catch it: a finding.
func NoDefault(s core.State) int {
	switch s {
	case core.Idle:
		return 0
	case core.Busy:
		return 1
	}
	return -1
}

// LoudDefault panics on anything unhandled: fine.
func LoudDefault(s core.State) int {
	switch s {
	case core.Idle:
		return 0
	default:
		panic("unhandled state")
	}
}

// Exhaustive covers every exported state, with a String()-style fallback
// default: fine.
func Exhaustive(s core.State) string {
	switch s {
	case core.Idle:
		return "idle"
	case core.Busy:
		return "busy"
	case core.Done:
		return "done"
	default:
		return "unknown"
	}
}

// Annotated is a documented deliberate subset: suppressed.
func Annotated(s core.State) bool {
	//cyclops:contract-ok fixture: only Idle matters here, every other state is a no-op by design
	switch s {
	case core.Idle:
		return true
	}
	return false
}
