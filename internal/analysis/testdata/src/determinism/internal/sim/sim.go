package sim

import (
	"math/rand"
	"os"
	"time"
)

// Bad reaches for every forbidden source of nondeterminism.
func Bad() time.Duration {
	start := time.Now()
	mode := os.Getenv("FIXTURE_MODE")
	if rand.Float64() > 0.5 && mode != "" {
		return 0
	}
	return time.Since(start)
}

// Good uses the sanctioned seeded pattern.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Tolerated carries a justification.
func Tolerated() time.Time {
	//cyclops:deterministic-ok wall-clock is only logged here, never fed into results
	return time.Now()
}
