package tool

import "time"

// Elapsed is wall-clock benching in a cmd — outside the deterministic
// scope, so the determinism rule stays quiet.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Start is likewise fine here.
func Start() time.Time { return time.Now() }
