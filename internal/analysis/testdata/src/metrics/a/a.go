package a

import "fixture/internal/obs"

// Register exercises the literal, spelling, and uniqueness clauses.
func Register(r *obs.Registry, dynamic string) {
	r.Counter("cyclops_good_total", "first site, quiet")
	r.Gauge(dynamic, "computed name")
	r.Counter("BadName", "not snake_case, no prefix")
	r.Counter("cyclops_good_total", "duplicate, same kind")
	r.Histogram("cyclops_good_total", "duplicate, different kind", nil)
	r.Counter("cyclops_shared_total", "canonical site of a shared series")
}
