// Package obs mimics the real registry's constructor surface so call
// sites in the fixture type-check against the same method shapes.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }

func (r *Registry) Gauge(name, help string) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram { return nil }

// reregister is the exemption the rule grants the obs package itself:
// computed names inside obs stay quiet.
func (r *Registry) reregister(name string) *Counter { return r.Counter(name, "") }
