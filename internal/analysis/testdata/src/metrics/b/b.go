package b

import "fixture/internal/obs"

// Register shares a/a.go's series deliberately, with the annotation.
func Register(r *obs.Registry) {
	//cyclops:metric-ok deliberately feeds the series registered in a/a.go
	r.Counter("cyclops_shared_total", "suppressed duplicate")
}
