package core

// Flagged ranges over a map with no annotation.
func Flagged(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Suppressed carries a justification.
func Suppressed(m map[string]int) int {
	total := 0
	//cyclops:deterministic-ok integer addition is order-exact
	for _, v := range m {
		total += v
	}
	return total
}

// Slices iterate deterministically and stay quiet.
func Slices(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// Named map types are still maps underneath.
type bag map[string]int

// FlaggedNamed ranges over a named map type.
func FlaggedNamed(b bag) int {
	total := 0
	for _, v := range b {
		total += v
	}
	return total
}
