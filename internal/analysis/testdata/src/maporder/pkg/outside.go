package pkg

// Sum ranges over a map outside the deterministic scope — quiet.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
