// Package a exercises the annotation parser. Cyclops: a prose colon like
// this one is not an annotation and must stay quiet.
package a

//cyclops:bogus not a directive
func A() {
	//cyclops:panic-ok
	panic("reasonless suppressor suppresses nothing")
}

// B spaces out the marker, which the parser calls out as a near-miss.
func B() {
	// cyclops:panic-ok spaced-out marker
	panic("not suppressed either")
}
