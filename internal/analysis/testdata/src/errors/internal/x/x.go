package x

import "errors"

func fail() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("x") }

// Discard exercises every blank-assignment shape.
func Discard() int {
	_ = fail()
	n, _ := pair()
	//cyclops:discard-ok fixture demonstrates a justified discard
	_ = fail()
	return n
}

// Boom panics without a justification.
func Boom() {
	panic("boom")
}

// Checked handles its error and justifies its panic.
func Checked() error {
	if err := fail(); err != nil {
		return err
	}
	//cyclops:panic-ok unreachable: fail always errors in this fixture
	panic("justified")
}
