package outside

import "errors"

func fail() error { return errors.New("x") }

// Loose is outside internal/ — discards and panics stay quiet here.
func Loose() {
	_ = fail()
	panic("fine out here")
}
