package hp

import "fmt"

type thing struct{ buf []int }

// Bad violates every hot-path clause.
//
//cyclops:hotpath fixture
func (t *thing) Bad(n int) error {
	s := make([]int, n)
	t.buf = append(t.buf, n)
	other := append(s, 1)
	t.buf = other
	return fmt.Errorf("n=%d", n)
}

// Box returns a concrete value through an interface result.
//
//cyclops:hotpath fixture
func Box(v int) interface{} {
	return v
}

// Convert boxes explicitly and implicitly.
//
//cyclops:hotpath fixture
func Convert(v int) {
	x := interface{}(v)
	_ = x
	sink(v)
}

func sink(v interface{}) { _ = v }

// NotHot does all of the above unannotated — quiet.
func NotHot(n int) []int {
	return append([]int{}, n)
}

var errPrebuilt = fmt.Errorf("prebuilt")

// BatchFill is the SoA batch-kernel shape (gma.BeamBatch,
// geom.PosesFromEulerBatch): caller-owned parallel slices written in
// place, including prebuilt error values stored into an error slice.
// Writes through slice parameters are not allocations and must stay
// clean — only the creation of the buffers is hot-path-hostile, and that
// happens at the caller.
//
//cyclops:hotpath fixture
func BatchFill(dst []int, errs []error, src []int) {
	out := dst[:len(src)]
	for i := range src {
		if src[i] < 0 {
			out[i] = 0
			errs[i] = errPrebuilt
			continue
		}
		out[i] = src[i] * 2
		errs[i] = nil
	}
}

// Allowed suppresses a justified allocation.
//
//cyclops:hotpath fixture
func Allowed() int {
	//cyclops:alloc-ok warmup allocation, measured at zero steady-state by the alloc gate
	s := make([]int, 4)
	return len(s)
}
