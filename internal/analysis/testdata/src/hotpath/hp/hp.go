package hp

import "fmt"

type thing struct{ buf []int }

// Bad violates every hot-path clause.
//
//cyclops:hotpath fixture
func (t *thing) Bad(n int) error {
	s := make([]int, n)
	t.buf = append(t.buf, n)
	other := append(s, 1)
	t.buf = other
	return fmt.Errorf("n=%d", n)
}

// Box returns a concrete value through an interface result.
//
//cyclops:hotpath fixture
func Box(v int) interface{} {
	return v
}

// Convert boxes explicitly and implicitly.
//
//cyclops:hotpath fixture
func Convert(v int) {
	x := interface{}(v)
	_ = x
	sink(v)
}

func sink(v interface{}) { _ = v }

// NotHot does all of the above unannotated — quiet.
func NotHot(n int) []int {
	return append([]int{}, n)
}

// Allowed suppresses a justified allocation.
//
//cyclops:hotpath fixture
func Allowed() int {
	//cyclops:alloc-ok warmup allocation, measured at zero steady-state by the alloc gate
	s := make([]int, 4)
	return len(s)
}
