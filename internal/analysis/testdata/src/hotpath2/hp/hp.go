// Package hp exercises the transitive hotpath rule: the root is clean,
// the violations live in callees.
package hp

import (
	"fmt"
	"io"
)

//cyclops:hotpath fixture root; the whole call tree below must stay pure
func Root(w io.Writer, f func()) int {
	n := helperAlloc()
	n += deepCaller()
	w.Write(nil) // interface call: unknown callee
	f()          // func value: unknown callee
	//cyclops:alloc-ok documented cold branch; traversal must stop here
	n += coldAlloc()
	return n
}

// helperAlloc is one hop below the root.
func helperAlloc() int {
	s := make([]int, 8)
	return len(s)
}

// deepCaller is clean itself; deep puts the fmt call two hops down.
func deepCaller() int {
	return deep()
}

func deep() int {
	return len(fmt.Sprintf("%d", 7))
}

// coldAlloc allocates, but the annotated call site above cuts the
// traversal before it: no finding.
func coldAlloc() int {
	s := make([]int, 64)
	return cap(s)
}

// NotReached allocates and is in nobody's hot tree: no finding.
func NotReached() []byte {
	return make([]byte, 1)
}
