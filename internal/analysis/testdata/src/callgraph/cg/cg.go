// Package cg is the call-graph unit-test fixture: method calls, ref
// edges, dynamic calls, closure attribution, and source recording.
package cg

import (
	"io"
	"time"
)

type T struct{}

func (t *T) M() int { return 1 }

func F() int { return 2 }

// Caller resolves a method call, a direct call, and mentions F without
// calling it (ref edge).
func Caller() func() int {
	var t T
	_ = t.M() + F()
	return F
}

// HasClosure calls F only inside a literal; the edge is attributed to
// HasClosure.
func HasClosure() {
	f := func() int { return F() }
	f()
}

// Dyn makes one interface call and one call through a func value: two
// dynamic records, no static edges.
func Dyn(w io.Writer, f func()) {
	w.Write(nil)
	f()
}

// Src reads the clock and ranges a map: two recorded sources.
func Src(m map[int]int) int {
	n := int(time.Now().Unix())
	for k := range m {
		n += k
	}
	return n
}
