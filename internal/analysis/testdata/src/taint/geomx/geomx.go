// Package geomx sits outside the deterministic scope (not under
// internal/) but is called from it.
package geomx

import "fixture/util"

// Jitter is one hop below the scope; util.Stamp puts the forbidden call
// a second hop down.
func Jitter() float64 {
	return util.Stamp()
}

// Sorted carries its own forbidden source: map iteration order.
func Sorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// MakeFn never calls Stamp — it returns it. The ref edge must taint
// MakeFn anyway: whoever receives the value can call it.
func MakeFn() func() float64 {
	return util.Stamp
}

// Settle only reaches the suppressed source: clean.
func Settle() float64 {
	return util.Quiet()
}
