// Package util is two hops below the deterministic scope.
package util

import "time"

// Stamp is the terminal source: a wall-clock read.
func Stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Quiet's source is annotated away, so nothing reaching only Quiet is
// tainted.
func Quiet() float64 {
	t := time.Now() //cyclops:deterministic-ok fixture: justified wall-clock read
	return float64(t.Second())
}

// Lonely touches the clock but is reachable from nowhere in the scope:
// out-of-scope code may do as it pleases.
func Lonely() time.Time {
	return time.Now()
}
