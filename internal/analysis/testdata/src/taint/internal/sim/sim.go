// Package sim is inside the deterministic scope (all of internal/ is).
// It contains no forbidden source itself — the nondeterminism it reaches
// lives two hops away, outside the scope, which is exactly what the
// determinism-taint rule exists to catch.
package sim

import (
	"fixture/geomx"
)

// Run reaches time.Now through geomx.Jitter → util.Stamp.
func Run() float64 {
	return geomx.Jitter()
}

// UsesSorted reaches a map range one hop away.
func UsesSorted() []int {
	return geomx.Sorted(map[int]int{1: 1})
}

// UsesFn receives a function value built outside the scope; the ref edge
// inside geomx.MakeFn keeps the taint flowing.
func UsesFn() float64 {
	return geomx.MakeFn()()
}

// Calm reaches only the annotated (suppressed) source: no finding.
func Calm() float64 {
	return geomx.Settle()
}
