package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The baseline workflow (DESIGN.md §15): `cyclops-vet -baseline
// analysis-baseline.json` subtracts grandfathered findings from the
// report, so a rule rollout can land with its pre-existing debt recorded
// while any *new* finding still fails `make verify`. Entries match on
// (rule, file, message) as a multiset — line numbers are deliberately
// excluded so unrelated edits above a finding don't churn the file.
// Baselined findings that no longer occur are "stale": reported as a
// warning (prune the file), never a failure, so burning debt down stays
// frictionless.

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Msg  string `json:"msg"`
	// Count is the number of identical (rule, file, msg) findings this
	// entry covers; 0 or absent means 1.
	Count int `json:"count,omitempty"`
}

func (e BaselineEntry) String() string {
	return fmt.Sprintf("%s: %s: %s", e.File, e.Rule, e.Msg)
}

// Baseline is the committed set of grandfathered findings.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file written by Save (or -write-baseline).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &b, nil
}

type baselineKey struct {
	rule, file, msg string
}

// Filter splits findings into fresh (not in the baseline — these fail
// the build) and counts the baselined ones; stale returns baseline
// entries no current finding matched (with Count set to the unmatched
// remainder).
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, baselined int, stale []BaselineEntry) {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[baselineKey{e.Rule, e.File, e.Msg}] += n
	}
	for _, f := range findings {
		k := baselineKey{f.Rule, f.Pos.Filename, f.Msg}
		if remaining[k] > 0 {
			remaining[k]--
			baselined++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Rule, e.File, e.Msg}
		if remaining[k] > 0 {
			e.Count = remaining[k]
			stale = append(stale, e)
			remaining[k] = 0
		}
	}
	return fresh, baselined, stale
}

// NewBaseline aggregates findings into a baseline, deduplicated with
// counts and sorted by (file, rule, msg) so the committed file diffs
// cleanly.
func NewBaseline(findings []Finding) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.Rule, f.Pos.Filename, f.Msg}]++
	}
	b := &Baseline{Entries: []BaselineEntry{}}
	for k, n := range counts { //cyclops:deterministic-ok sorted immediately below
		e := BaselineEntry{Rule: k.rule, File: k.file, Msg: k.msg}
		if n > 1 {
			e.Count = n
		}
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	return b
}

// Save writes the baseline as indented JSON (the committed format).
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// JSONReport is the machine-readable vet output (-json).
type JSONReport struct {
	Module     string          `json:"module"`
	Packages   int             `json:"packages"`
	ElapsedMS  int64           `json:"elapsed_ms"`
	Findings   []JSONFinding   `json:"findings"`
	Suppressed int             `json:"suppressed"`
	Baselined  int             `json:"baselined"`
	Stale      []BaselineEntry `json:"stale,omitempty"`
}

// JSONFinding is one finding in -json output.
type JSONFinding struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// JSONFindings converts findings (already sorted by Run) to their wire
// form.
func JSONFindings(findings []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			Rule: f.Rule,
			File: f.Pos.Filename,
			Line: f.Pos.Line,
			Col:  f.Pos.Column,
			Msg:  f.Msg,
		})
	}
	return out
}
