package analysis

import (
	"reflect"
	"testing"
)

// TestCallGraph pins the resolution semantics the interprocedural rules
// are founded on: method calls resolve through the type checker, a
// mention outside call position becomes a ref edge, unresolvable calls
// become dynamic records, closures attribute to the enclosing
// declaration, and forbidden sources are recorded on their node.
func TestCallGraph(t *testing.T) {
	mod := loadFixture(t, "callgraph")
	g := mod.CallGraph()

	if again := mod.CallGraph(); again != g {
		t.Error("CallGraph() did not cache: two calls returned distinct graphs")
	}

	node := func(name string) *CGNode {
		t.Helper()
		n := g.NodeByName(name)
		if n == nil {
			var names []string
			for _, n := range g.Order {
				names = append(names, n.Name())
			}
			t.Fatalf("no node %q; have %v", name, names)
		}
		return n
	}

	edges := func(n *CGNode) (calls, refs []string) {
		for _, e := range n.Calls {
			name := g.Nodes[e.To].Name()
			if e.Ref {
				refs = append(refs, name)
			} else {
				calls = append(calls, name)
			}
		}
		return calls, refs
	}

	// Caller: a method call, a direct call, and one ref edge (return F).
	calls, refs := edges(node("cg.Caller"))
	if want := []string{"cg.(*T).M", "cg.F"}; !reflect.DeepEqual(calls, want) {
		t.Errorf("Caller calls = %v, want %v", calls, want)
	}
	if want := []string{"cg.F"}; !reflect.DeepEqual(refs, want) {
		t.Errorf("Caller refs = %v, want %v", refs, want)
	}
	if n := node("cg.Caller"); len(n.Dynamic) != 0 || len(n.Sources) != 0 {
		t.Errorf("Caller has %d dynamic, %d sources; want none", len(n.Dynamic), len(n.Sources))
	}

	// HasClosure: the literal's call to F counts against HasClosure; the
	// immediately-invoked f() is not a dynamic record... but f() is a call
	// through a func variable, which IS dynamic — pin exactly what happens.
	calls, _ = edges(node("cg.HasClosure"))
	if want := []string{"cg.F"}; !reflect.DeepEqual(calls, want) {
		t.Errorf("HasClosure calls = %v, want %v (closure attribution)", calls, want)
	}

	// Dyn: two unresolvable calls, zero static edges.
	dyn := node("cg.Dyn")
	if len(dyn.Calls) != 0 {
		t.Errorf("Dyn has %d static edges, want 0", len(dyn.Calls))
	}
	var descs []string
	for _, d := range dyn.Dynamic {
		descs = append(descs, d.Desc)
	}
	want := []string{"interface call (Writer).Write", "call through func value f"}
	if !reflect.DeepEqual(descs, want) {
		t.Errorf("Dyn dynamic = %v, want %v", descs, want)
	}

	// Src: a clock read and a map range, in source order.
	src := node("cg.Src")
	var cats []SourceCat
	for _, s := range src.Sources {
		cats = append(cats, s.Cat)
	}
	if wantCats := []SourceCat{SrcClock, SrcMapRange}; !reflect.DeepEqual(cats, wantCats) {
		t.Errorf("Src sources = %v, want %v", cats, wantCats)
	}
}
