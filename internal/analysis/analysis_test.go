package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
)

func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	mod, err := LoadTree(filepath.Join("testdata", "src", name), "fixture")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return mod
}

func findingStrings(rep Report) []string {
	var out []string
	for _, f := range rep.Findings {
		out = append(out, f.String())
	}
	return out
}

// TestFixtures runs the full rule table over each fixture tree and pins
// the findings (golden, one line per finding) and the suppressed count.
// Each fixture exercises one rule's bad cases, good cases, and annotation
// edge cases; the subtests run in parallel to exercise the shared stdlib
// importer under -race.
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture    string
		want       []string
		suppressed int
	}{
		{
			fixture: "determinism",
			want: []string{
				"internal/sim/sim.go:11:16: determinism: time.Now in deterministic package internal/sim: derive timestamps from the simulation clock or the seed",
				"internal/sim/sim.go:12:13: determinism: os.Getenv in deterministic package internal/sim: plumb configuration through options structs",
				"internal/sim/sim.go:13:10: determinism: global math/rand.Float64 in deterministic package internal/sim: use rand.New(rand.NewSource(seed))",
				"internal/sim/sim.go:16:14: determinism: time.Since in deterministic package internal/sim: derive durations from the simulation clock",
			},
			suppressed: 1, // the //cyclops:deterministic-ok time.Now in Tolerated
		},
		{
			fixture: "maporder",
			want: []string{
				"internal/core/core.go:6:2: map-order: range over map m in deterministic package internal/core: extract sorted keys, or annotate //cyclops:deterministic-ok <reason>",
				"internal/core/core.go:37:2: map-order: range over map b in deterministic package internal/core: extract sorted keys, or annotate //cyclops:deterministic-ok <reason>",
			},
			suppressed: 1, // the annotated range in Suppressed
		},
		{
			fixture: "hotpath",
			want: []string{
				"hp/hp.go:11:7: hotpath: hot path (*thing).Bad allocates with make: hoist the allocation out of the hot path",
				"hp/hp.go:13:11: hotpath: hot path (*thing).Bad: append result does not feed back into its slice (escapes/allocates); use the x = append(x, ...) form on a preallocated slice",
				"hp/hp.go:15:9: hotpath: hot path (*thing).Bad calls fmt.Errorf (allocates): precompute messages or use prebuilt errors",
				"hp/hp.go:22:9: hotpath: hot path Box returns v as interface interface{} (allocates): return a concrete type or a prebuilt value",
				"hp/hp.go:29:7: hotpath: hot path Convert converts to interface type interface{} (allocates)",
				"hp/hp.go:31:7: hotpath: hot path Convert passes v as interface interface{} (allocates)",
			},
			suppressed: 1, // the //cyclops:alloc-ok make in Allowed
		},
		{
			fixture: "metrics",
			want: []string{
				"a/a.go:8:10: metrics: metric name passed to Registry.Gauge must be a string literal, got dynamic",
				`a/a.go:9:12: metrics: metric name "BadName" must be cyclops_-prefixed snake_case (^cyclops_[a-z][a-z0-9]*(_[a-z0-9]+)*$)`,
				`a/a.go:10:12: metrics: metric "cyclops_good_total" already registered at a/a.go:7: one call site per name module-wide (or annotate //cyclops:metric-ok <reason>)`,
				`a/a.go:11:14: metrics: metric "cyclops_good_total" already registered as a different kind (Histogram vs Counter) at a/a.go:7: one call site per name module-wide (or annotate //cyclops:metric-ok <reason>)`,
			},
			suppressed: 1, // b/b.go's annotated duplicate of cyclops_shared_total
		},
		{
			fixture: "errors",
			want: []string{
				"internal/x/x.go:11:2: error-discipline: error discarded with _ in internal/x: handle it, return it, or annotate //cyclops:discard-ok <reason>",
				"internal/x/x.go:12:5: error-discipline: error discarded with _ in internal/x: handle it, return it, or annotate //cyclops:discard-ok <reason>",
				"internal/x/x.go:20:2: error-discipline: panic in internal/x: return an error, or annotate //cyclops:panic-ok <reason>",
			},
			suppressed: 2, // the discard-ok discard and the panic-ok panic in Checked
		},
		{
			fixture: "taint",
			want: []string{
				"geomx/geomx.go:9:1: determinism-taint: geomx.Jitter is reachable from the deterministic scope and reaches time.Now: internal/sim.Run → geomx.Jitter → util.Stamp → time.Now — derive timestamps from the simulation clock or the seed",
				"geomx/geomx.go:14:1: determinism-taint: geomx.Sorted is reachable from the deterministic scope and reaches range over map m: internal/sim.UsesSorted → geomx.Sorted → range over map m — extract sorted keys",
				"geomx/geomx.go:24:1: determinism-taint: geomx.MakeFn is reachable from the deterministic scope and reaches time.Now: internal/sim.UsesFn → geomx.MakeFn → util.Stamp → time.Now — derive timestamps from the simulation clock or the seed",
				"util/util.go:7:1: determinism-taint: util.Stamp is reachable from the deterministic scope and reaches time.Now: internal/sim.Run → geomx.Jitter → util.Stamp → time.Now — derive timestamps from the simulation clock or the seed",
			},
			suppressed: 0,
		},
		{
			fixture: "hotpath2",
			want: []string{
				"hp/hp.go:14:2: hotpath: hot path Root: interface call (Writer).Write (unknown callee): every hot-path call must resolve statically so the whole tree is checkable; annotate //cyclops:alloc-ok <reason> to cut",
				"hp/hp.go:15:2: hotpath: hot path Root: call through func value f (unknown callee): every hot-path call must resolve statically so the whole tree is checkable; annotate //cyclops:alloc-ok <reason> to cut",
				"hp/hp.go:23:7: hotpath: hot path Root → helperAlloc allocates with make: hoist the allocation out of the hot path",
				"hp/hp.go:33:13: hotpath: hot path Root → deepCaller → deep calls fmt.Sprintf (allocates): precompute messages or use prebuilt errors",
			},
			suppressed: 1, // the alloc-ok call-site cut in Root
		},
		{
			fixture: "contract",
			want: []string{
				"consumer/consumer.go:13:2: opt-in-contract: switch on enum State has a default that silently swallows Busy, Done: handle every state or make the default panic",
				"consumer/consumer.go:20:2: opt-in-contract: switch on enum State does not handle Done and has no default: a newly appended state would fall through silently",
				"internal/core/opts.go:17:2: opt-in-contract: opt-in arm Gate on RunOptions has value type GateOptions: feature arms must be *GateOptions so nil means off and byte-identical to baseline",
				"internal/core/opts.go:23:2: opt-in-contract: opt-in arm Plain (*PlainOptions) on RunOptions must document its nil default in the field doc comment",
				"internal/core/opts.go:49:1: opt-in-contract: enum Mode: members declared outside its original const block; keep the enum a single append-only iota chain",
				"internal/core/opts.go:55:2: opt-in-contract: enum Weird: first member W1 must be declared `= iota` to anchor the append-only chain",
				"internal/core/opts.go:56:2: opt-in-contract: enum Weird: member W2 has an explicit value; append new members to the end of the iota chain instead",
			},
			suppressed: 2, // the contract-ok'd Tuned field and Annotated switch
		},
		{
			fixture: "fma",
			want: []string{
				"helper/helper.go:7:1: float-determinism: helper.Fuse is reachable from the deterministic scope and reaches math.FMA: internal/sim.Via → helper.Fuse → math.FMA — write the unfused x*y + z (one rounding per op, identical on every platform)",
				"internal/sim/sim.go:13:14: float-determinism: math.FMA in deterministic package internal/sim: write the unfused x*y + z (one rounding per op, identical on every platform)",
			},
			suppressed: 0,
		},
		{
			fixture: "annotation",
			want: []string{
				"internal/a/a.go:5:1: annotation: unknown //cyclops: directive bogus",
				"internal/a/a.go:7:2: annotation: //cyclops:panic-ok requires a reason",
				"internal/a/a.go:8:2: error-discipline: panic in internal/a: return an error, or annotate //cyclops:panic-ok <reason>",
				"internal/a/a.go:13:2: annotation: malformed annotation // cyclops:panic-ok spaced-out marker (write //cyclops:panic-ok with no space after //)",
				"internal/a/a.go:14:2: error-discipline: panic in internal/a: return an error, or annotate //cyclops:panic-ok <reason>",
			},
			suppressed: 0, // reasonless and spaced-out suppressors suppress nothing
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fixture, func(t *testing.T) {
			t.Parallel()
			rep := Run(loadFixture(t, tc.fixture), Rules())
			got := findingStrings(rep)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("findings mismatch\ngot:\n  %s\nwant:\n  %s",
					join(got), join(tc.want))
			}
			if rep.Suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", rep.Suppressed, tc.suppressed)
			}
		})
	}
}

func join(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// TestReportDeterministic loads the same fixture twice and demands
// byte-identical reports — the analyzer's own output is held to the
// repo's determinism bar.
func TestReportDeterministic(t *testing.T) {
	a := Run(loadFixture(t, "metrics"), Rules())
	b := Run(loadFixture(t, "metrics"), Rules())
	if !reflect.DeepEqual(findingStrings(a), findingStrings(b)) {
		t.Errorf("two runs over one fixture disagreed:\n%s\nvs\n%s",
			join(findingStrings(a)), join(findingStrings(b)))
	}
}

// TestRulesTable pins the catalog's shape: stable unique names, docs, and
// a suppression directive everywhere one is promised.
func TestRulesTable(t *testing.T) {
	wantNames := []string{
		"determinism", "determinism-taint", "float-determinism", "map-order",
		"hotpath", "metrics", "error-discipline", "opt-in-contract",
	}
	rules := Rules()
	if len(rules) != len(wantNames) {
		t.Fatalf("rule count = %d, want %d", len(rules), len(wantNames))
	}
	seen := map[string]bool{}
	for i, r := range rules {
		if r.Name != wantNames[i] {
			t.Errorf("rule %d = %q, want %q", i, r.Name, wantNames[i])
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Doc == "" {
			t.Errorf("rule %q has no doc", r.Name)
		}
		if r.Check == nil {
			t.Errorf("rule %q has no check", r.Name)
		}
	}
}

// TestLoadTreeMissingDir pins the load-error path the cyclops-vet command
// turns into exit status 2.
func TestLoadTreeMissingDir(t *testing.T) {
	if _, err := LoadTree(filepath.Join("testdata", "src", "no-such-fixture"), "fixture"); err == nil {
		t.Fatal("loading a missing tree succeeded")
	}
}
