// Package analysis is cyclops-vet's engine: a stdlib-only static-analysis
// pass over the whole module that enforces the repo's determinism,
// hot-path, and metrics invariants at compile time. It loads and
// type-checks every non-test package with go/parser + go/types (stdlib
// imports resolve through the source importer, so it works offline and
// adds nothing to go.mod), then runs a table of Rules over the typed ASTs
// and reports findings deterministically (path+line sorted).
//
// The rule catalog, the //cyclops: annotation grammar, and the procedure
// for adding a rule are documented in DESIGN.md §10.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis (non-test files only — the invariants cyclops-vet enforces are
// stated on production code; tests are free to use time.Now and maps).
type Package struct {
	// Path is the import path ("cyclops/internal/core").
	Path string
	// RelPath is the module-relative path ("internal/core", "." for the
	// module root package) — what rule scoping matches on, so fixture
	// trees analyze identically to the real module.
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded module tree: every package, type-checked, plus the
// FileSet that positions every finding.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod (or the explicit path given to
	// LoadTree for go.mod-less fixture trees).
	Path string
	Fset *token.FileSet
	// Pkgs are all packages sorted by import path.
	Pkgs []*Package

	// graph caches the lazily built static call graph (CallGraph()).
	graph *CallGraph
}

// stdImporter is the shared source importer for standard-library imports.
// It caches type-checked stdlib packages across loads (fixture tests load
// several trees; re-checking fmt's dependency closure per tree would
// dominate the run time) and is serialized because srcimporter makes no
// concurrency promises.
var (
	stdImporterMu sync.Mutex
	stdImporterV  types.Importer
)

func stdImport(fset *token.FileSet, path string) (*types.Package, error) {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	if stdImporterV == nil {
		// One importer instance for the process: its cache keys off its
		// own FileSet, which is fine — positions inside stdlib packages
		// never appear in findings.
		stdImporterV = importer.ForCompiler(fset, "source", nil)
	}
	return stdImporterV.Import(path)
}

// moduleImporter resolves module-internal imports from the packages
// already checked this load (the loader checks in dependency order) and
// everything else through the shared stdlib source importer.
type moduleImporter struct {
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return stdImport(m.fset, path)
}

// LoadModule loads the module rooted at dir (which must contain go.mod).
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w (point cyclops-vet at a module root, or use -module for a fixture tree)", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s", filepath.Join(abs, "go.mod"))
	}
	return LoadTree(abs, modPath)
}

// LoadTree loads dir as if it were the root of a module named modPath,
// without requiring a go.mod — the entry point for the analyzer's own
// testdata fixture trees.
func LoadTree(dir, modPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: abs, Path: modPath, Fset: token.NewFileSet()}

	type parsed struct {
		pkg     *Package
		imports []string // module-internal imports only
	}
	byPath := map[string]*parsed{}
	var paths []string

	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(mod.Fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(abs, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + rel
		}
		p := &parsed{pkg: &Package{Path: imp, RelPath: rel, Dir: path, Files: files}}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[imp] = p
		paths = append(paths, imp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	// Type-check in dependency order (DFS postorder over module-internal
	// imports; starting points and neighbor expansion are both sorted, so
	// the whole load is deterministic).
	checked := map[string]*types.Package{}
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p := byPath[path]
		if p == nil || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = 1
		deps := append([]string(nil), p.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: &moduleImporter{fset: mod.Fset, pkgs: checked}}
		tp, err := conf.Check(path, mod.Fset, p.pkg.Files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		p.pkg.Types = tp
		p.pkg.Info = info
		checked[path] = tp
		state[path] = 2
		mod.Pkgs = append(mod.Pkgs, p.pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// parseDir parses the non-test, non-ignored .go files of one directory,
// in sorted file-name order. Directories whose .go files belong to
// multiple packages (a stray "package main" fixture next to a library)
// are rejected — the module layout this analyzer serves never does that.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: packages %s and %s in one directory", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}
