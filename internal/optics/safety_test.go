package optics

import (
	"math"
	"strings"
	"testing"
)

func TestDivergingDesignsAreClass1(t *testing.T) {
	// Footnote 12: the diverging designs stay eye-safe despite the
	// amplifier, because the beam spreads and the coupling losses the
	// amp compensates occur at capture.
	for _, c := range []LinkConfig{Diverging10G, Diverging10G16mm, Diverging25G} {
		r := c.EyeSafety()
		if !r.Class1Installed() {
			t.Errorf("%s not Class 1 as installed: %v", c.Name, r)
		}
		if r.MarginDB() < 0 {
			t.Errorf("%s margin %.1f dB", c.Name, r.MarginDB())
		}
	}
	// The amplified bare aperture would NOT pass at the 100 mm bench
	// distance — the reason the prototype's amplifier sits behind the
	// assembly's enclosure and the unit hangs from the ceiling.
	if Diverging10G16mm.EyeSafety().Class1At100mm() {
		t.Error("amplified diverging unit unexpectedly Class 1 at 100 mm")
	}
}

func TestWorstCaseIsNearTheAperture(t *testing.T) {
	// For a diverging beam the corneal exposure is worst at the closest
	// approach and falls with distance.
	c := Diverging10G16mm
	near := c.Beam().RadiusAt(0.1)
	far := c.Beam().RadiusAt(2.0)
	fNear := CaptureFractionCentered(near, MeasurementApertureRadius)
	fFar := CaptureFractionCentered(far, MeasurementApertureRadius)
	if fFar >= fNear {
		t.Errorf("aperture fraction did not fall with distance: %v vs %v", fNear, fFar)
	}
}

func TestCollimatedBeamSaferPerMilliwatt(t *testing.T) {
	// The 20 mm collimated beam puts a small fraction of its power
	// through a 3.5 mm pupil at any distance.
	r := Collimated10G.EyeSafety()
	frac := r.AtInstalledMW / r.LaunchPowerMW
	want := CaptureFractionCentered(MM(10), MeasurementApertureRadius)
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("collimated aperture fraction = %v, want ≈%v", frac, want)
	}
}

func TestSafetyReportString(t *testing.T) {
	r := Diverging10G16mm.EyeSafety()
	s := r.String()
	if !strings.Contains(s, "CLASS 1") {
		t.Errorf("report: %s", s)
	}
	if !strings.Contains(s, "enclosure") {
		t.Errorf("report should flag the 100 mm caveat: %s", s)
	}
	// A pathological design reads as unsafe even installed.
	hot := Diverging10G16mm
	hot.Amp.GainDB = 60
	if hot.EyeSafety().Class1Installed() {
		t.Error("a 60 dB amplifier should not be Class 1")
	}
	if !strings.Contains(hot.EyeSafety().String(), "NOT Class 1") {
		t.Error("unsafe report text")
	}
}

func TestSafetyMarginInfiniteForZeroPower(t *testing.T) {
	r := SafetyReport{LimitMW: 10}
	if !math.IsInf(r.MarginDB(), 1) {
		t.Error("zero exposure should have infinite margin")
	}
}
