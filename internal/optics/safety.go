package optics

import (
	"fmt"
	"math"
)

// This file implements the eye-safety analysis the paper leans on (§2.2,
// §3, footnote 12): SFPs are Class 1 devices, 1550 nm light is absorbed in
// the cornea rather than focused on the retina, and the EDFA's gain is
// spent against coupling losses while the diverging beam spreads the power
// over a growing aperture.
//
// The model follows IEC 60825-1's structure for a continuous-wave source
// in the 1400–4000 nm "retina-safe" band: exposure is limited by corneal
// irradiance averaged over a measurement aperture at the closest credible
// viewing distance.

// Class1AELmW1550 is the accessible emission limit for a CW Class 1
// source at 1550 nm: 10 mW through the standard 3.5 mm measurement
// aperture (IEC 60825-1 table values for t > 10 s in the 1400–1500+ nm
// band).
const Class1AELmW1550 = 10.0

// MeasurementApertureRadius is the standard 3.5 mm-diameter measurement
// aperture's radius, meters.
const MeasurementApertureRadius = 1.75e-3

// InstalledApproach is the closest credible eye position for a
// ceiling-mounted transmitter during normal use: a tall standing user's
// eyes sit ≈1.95 m up, leaving ≥0.8 m to a 2.75 m ceiling.
const InstalledApproach = 0.8

// SafetyReport summarizes the eye-safety evaluation of a link design at
// two evaluation distances: IEC's standard 100 mm (anyone can reach the
// aperture) and the installed ceiling geometry.
type SafetyReport struct {
	Design string
	// LaunchPowerMW is the total optical power leaving the TX aperture
	// (after the amplifier).
	LaunchPowerMW float64
	// At100mmMW and AtInstalledMW are the worst-case powers collectable
	// through the 3.5 mm measurement aperture anywhere at or beyond the
	// respective approach distance.
	At100mmMW     float64
	AtInstalledMW float64
	// LimitMW is the applicable Class 1 AEL.
	LimitMW float64
}

// Class1Installed reports whether the design is eye-safe in its installed
// ceiling geometry — the footnote-12 claim.
func (r SafetyReport) Class1Installed() bool { return r.AtInstalledMW <= r.LimitMW }

// Class1At100mm reports Class 1 compliance at the standard bench
// evaluation distance — what a bare (unenclosed) amplified unit would be
// graded at.
func (r SafetyReport) Class1At100mm() bool { return r.At100mmMW <= r.LimitMW }

// MarginDB returns how far (dB) the installed-geometry exposure sits
// below the limit; negative means over the limit.
func (r SafetyReport) MarginDB() float64 {
	if r.AtInstalledMW <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(r.LimitMW/r.AtInstalledMW)
}

func (r SafetyReport) String() string {
	verdict := "CLASS 1 as installed"
	if !r.Class1Installed() {
		verdict = "NOT Class 1 as installed"
	}
	note := ""
	if !r.Class1At100mm() {
		note = "; requires enclosure/interlock against 100 mm approach"
	}
	return fmt.Sprintf("%s: launch %.1f mW; through 3.5 mm aperture %.2f mW @100 mm, %.2f mW @%.1f m (limit %.0f mW, margin %.1f dB) — %s%s",
		r.Design, r.LaunchPowerMW, r.At100mmMW, r.AtInstalledMW, InstalledApproach,
		r.LimitMW, r.MarginDB(), verdict, note)
}

// EyeSafety evaluates the design. The launch power is the SFP's output
// plus amplifier gain minus the fiber/collimator insertion that precedes
// free space (we conservatively credit none of the divergence-dependent
// coupling loss, which occurs at the receiver); each worst case scans the
// beam from its approach distance outward.
func (c LinkConfig) EyeSafety() SafetyReport {
	r := SafetyReport{
		Design:  c.Name,
		LimitMW: Class1AELmW1550,
	}
	// Power in free space: SFP + amplifier, less only the pre-aperture
	// fixed insertion (conservative: assume half the base insertion is
	// before the aperture).
	launchDBm := c.Transceiver.TxPowerDBm + c.Amp.GainDB - c.BaseInsertionDB/2
	r.LaunchPowerMW = DBmToMilliwatt(launchDBm)

	worstBeyond := func(minZ float64) float64 {
		worst := 0.0
		for z := minZ; z <= 3.0; z += 0.01 {
			w := c.Beam().RadiusAt(z)
			frac := CaptureFractionCentered(w, MeasurementApertureRadius)
			if p := r.LaunchPowerMW * frac; p > worst {
				worst = p
			}
		}
		return worst
	}
	r.At100mmMW = worstBeyond(0.100)
	r.AtInstalledMW = worstBeyond(InstalledApproach)
	return r
}
