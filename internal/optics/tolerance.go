package optics

import "cyclops/internal/optimize"

// This file computes the §5.1 link-tolerance metrics: the maximum movement
// from the aligned position for which the link stays connected. Each probe
// reduces a pure movement (TX rotation, RX rotation, RX translation) to the
// Misalignment scalars it induces and bisects for the largest connected
// movement.
//
// The reductions encode the optics of §5.1 and §3 footnote 1:
//
//   - Rotating the TX steers the beam axis: the intensity pattern at the
//     receiver shifts by ≈ range·θ. For a *collimated* beam the ray
//     direction rotates with the axis, so the arrival angle also changes by
//     θ; for a *diverging* beam, rays passing through the (unmoved)
//     aperture still come from the same origin, so the arrival angle is
//     unchanged — only intensity is lost. This asymmetry is exactly why the
//     diverging design tolerates ~8× more TX rotation (Table 1).
//
//   - Rotating the RX tilts the collimator axis away from the arriving
//     rays: a pure incidence-angle mismatch, no intensity shift.
//
//   - Translating the RX laterally shifts the aperture off the beam axis;
//     for a diverging (spherical) wavefront it additionally changes the
//     local ray direction by ≈ d/range.

// toleranceProbeTol is the bisection resolution: 1 µrad for angles,
// 1 µm for translations — far below anything the link can resolve.
const (
	angleProbeTol  = 1e-6
	lengthProbeTol = 1e-6
)

// txRotation returns the misalignment induced by rotating the transmitter
// by theta from perfect alignment.
func (c LinkConfig) txRotation(theta float64) Misalignment {
	m := Misalignment{
		Range:         c.NominalRange,
		LateralOffset: c.NominalRange * theta,
	}
	if c.Kind == Collimated {
		m.IncidenceMismatch = theta
	}
	return m
}

// rxRotation returns the misalignment induced by rotating the receiver
// assembly by theta in place.
func (c LinkConfig) rxRotation(theta float64) Misalignment {
	return Misalignment{Range: c.NominalRange, IncidenceMismatch: theta}
}

// rxTranslation returns the misalignment induced by translating the
// receiver laterally by d.
func (c LinkConfig) rxTranslation(d float64) Misalignment {
	m := Misalignment{Range: c.NominalRange, LateralOffset: d}
	if c.Kind == Diverging {
		m.IncidenceMismatch = d / c.NominalRange
	}
	return m
}

// TXAngularTolerance returns the maximum TX rotation (radians) from the
// aligned position for which the link stays connected — the "TX Angular
// Tolerance" row of Table 1.
func (c LinkConfig) TXAngularTolerance() float64 {
	return optimize.Bisect(func(th float64) bool {
		return c.Connected(c.txRotation(th))
	}, 0, 0.2, angleProbeTol)
}

// RXAngularTolerance returns the maximum RX rotation (radians) for which
// the link stays connected — the "RX Angular Tolerance" row of Table 1 and
// the quantity Fig 11 sweeps against beam diameter.
func (c LinkConfig) RXAngularTolerance() float64 {
	return optimize.Bisect(func(th float64) bool {
		return c.Connected(c.rxRotation(th))
	}, 0, 0.2, angleProbeTol)
}

// LateralTolerance returns the maximum lateral RX translation (meters) for
// which the link stays connected. The paper reports ~6 mm for the 25G
// design (§5.3.1) and notes lateral constraints are subsumed by angular
// ones for the 10G design.
func (c LinkConfig) LateralTolerance() float64 {
	return optimize.Bisect(func(d float64) bool {
		return c.Connected(c.rxTranslation(d))
	}, 0, 0.5, lengthProbeTol)
}

// ToleranceReport bundles the Table 1 row set for one design.
type ToleranceReport struct {
	Config       string
	TXAngular    float64 // radians
	RXAngular    float64 // radians
	Lateral      float64 // meters
	PeakPowerDBm float64
	MarginDB     float64
}

// Tolerances evaluates all tolerance metrics for the design.
func (c LinkConfig) Tolerances() ToleranceReport {
	return ToleranceReport{
		Config:       c.Name,
		TXAngular:    c.TXAngularTolerance(),
		RXAngular:    c.RXAngularTolerance(),
		Lateral:      c.LateralTolerance(),
		PeakPowerDBm: c.PeakReceivedPowerDBm(),
		MarginDB:     c.MarginDB(),
	}
}
