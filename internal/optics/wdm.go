package optics

import "fmt"

// This file models the §6 future-work analysis: extending Cyclops past
// 40 Gbps. The TP mechanism is unchanged — the paper's point — but
// high-rate single-strand transceivers (QSFP+/QSFP28 [12, 13]) multiplex
// several wavelengths on one fiber, and a collimator optimized for a
// single wavelength captures the others with a chromatic penalty. §6:
// "the link would likely need customized collimators that can efficiently
// capture a range of wavelengths".

// WDMLane is one wavelength of a multiplexed transceiver.
type WDMLane struct {
	WavelengthNM float64
	RateGbps     float64
}

// WDMConfig is a multi-wavelength link: a base single-lane design plus
// the lane plan and the receive optics' chromatic behavior.
type WDMConfig struct {
	Name string
	// Base carries the per-lane radiometry (the 25G-class diverging
	// design, one lane's power budget).
	Base LinkConfig
	// Lanes is the wavelength plan (e.g. LAN-WDM 1295–1310 nm ×4).
	Lanes []WDMLane
	// CenterNM is the wavelength the receive collimator is optimized
	// for.
	CenterNM float64
	// ChromaticLossDBPerNM is the extra coupling loss per nm of offset
	// from CenterNM — the penalty a narrowband-optimized collimator
	// charges the outer lanes. A custom achromatic collimator makes it
	// ~0.
	ChromaticLossDBPerNM float64
}

// LaneReport is the §6 analysis for one wavelength.
type LaneReport struct {
	Lane        WDMLane
	PenaltyDB   float64
	PeakDBm     float64
	Operational bool
}

// WDMReport aggregates the lane analyses.
type WDMReport struct {
	Config           string
	Lanes            []LaneReport
	OperationalLanes int
	AggregateGbps    float64
}

func (r WDMReport) String() string {
	return fmt.Sprintf("%s: %d/%d lanes operational, aggregate %.0f Gbps",
		r.Config, r.OperationalLanes, len(r.Lanes), r.AggregateGbps)
}

// Evaluate computes, per lane, the chromatic penalty and whether the lane
// closes its link budget at perfect alignment.
func (c WDMConfig) Evaluate() WDMReport {
	r := WDMReport{Config: c.Name}
	for _, lane := range c.Lanes {
		offset := lane.WavelengthNM - c.CenterNM
		if offset < 0 {
			offset = -offset
		}
		penalty := c.ChromaticLossDBPerNM * offset
		peak := c.Base.PeakReceivedPowerDBm() - penalty
		op := peak >= c.Base.Transceiver.SensitivityDBm
		r.Lanes = append(r.Lanes, LaneReport{
			Lane:        lane,
			PenaltyDB:   penalty,
			PeakDBm:     peak,
			Operational: op,
		})
		if op {
			r.OperationalLanes++
			r.AggregateGbps += lane.RateGbps
		}
	}
	return r
}

// lan4x10 is the 4×10G LAN-WDM plan of a QSFP+ LR4 (1295.56, 1300.05,
// 1304.58, 1309.14 nm).
func lan4x10() []WDMLane {
	return []WDMLane{
		{WavelengthNM: 1295.56, RateGbps: 10.3},
		{WavelengthNM: 1300.05, RateGbps: 10.3},
		{WavelengthNM: 1304.58, RateGbps: 10.3},
		{WavelengthNM: 1309.14, RateGbps: 10.3},
	}
}

// WDM40GStandard is the §6 failure case: a 4×10G transceiver behind the
// prototype's narrowband-optimized diverging-beam collimator. The outer
// lanes pay several dB of chromatic penalty against a ~12 dB margin and
// some fail to close.
var WDM40GStandard = WDMConfig{
	Name:                 "40G WDM, standard collimator",
	Base:                 Diverging25G,
	Lanes:                lan4x10(),
	CenterNM:             1302.3,
	ChromaticLossDBPerNM: 2.0,
}

// WDM40GCustom is the §6 remedy: a custom achromatic collimator flattens
// the chromatic response; every lane closes and the TP mechanism carries
// over unchanged.
var WDM40GCustom = WDMConfig{
	Name:                 "40G WDM, custom achromatic collimator",
	Base:                 Diverging25G,
	Lanes:                lan4x10(),
	CenterNM:             1302.3,
	ChromaticLossDBPerNM: 0.1,
}
