package optics

import "time"

// Transceiver models an SFP optical transceiver: launch power, receiver
// sensitivity, and the line/goodput rates observed through a NIC.
type Transceiver struct {
	Name string
	// LineRateGbps is the nominal serial rate.
	LineRateGbps float64
	// OptimalGoodputGbps is the iperf-style TCP goodput the paper
	// observed when the link is cleanly connected (9.4 for 10G,
	// 23.5 for 25G).
	OptimalGoodputGbps float64
	// TxPowerDBm is the launch power into the fiber.
	TxPowerDBm float64
	// SensitivityDBm is the minimum received power for error-free
	// operation; below it the SFP declares loss of signal.
	SensitivityDBm float64
	// RelockDelay is how long the SFP+NIC take to report the link up
	// again after light returns following a loss of signal. The paper
	// observes "a few seconds" (§5.3).
	RelockDelay time.Duration
}

// LinkBudgetDB returns TxPower − Sensitivity, the total loss the link can
// absorb.
func (t Transceiver) LinkBudgetDB() float64 { return t.TxPowerDBm - t.SensitivityDBm }

// Amplifier models an inline EDFA used, as in the paper, only to
// compensate for the coupling loss of capturing into a fiber rather than
// an exposed photodetector.
type Amplifier struct {
	Name   string
	GainDB float64
}

// Collimator describes launch/capture optics.
type Collimator struct {
	Name string
	// LaunchRadius is the 1/e² beam radius at the output for a
	// launch-side part, meters.
	LaunchRadius float64
	// ApertureRadius is the clear capture radius for a receive-side
	// part, meters.
	ApertureRadius float64
	// Adjustable indicates an adjustable-focus part that can set a
	// controlled divergence (CFC-2X-C, C40FC-C).
	Adjustable bool
}

// GalvoSpec describes a galvo scanning system.
type GalvoSpec struct {
	Name string
	// BeamAperture is the maximum beam diameter the mirrors pass, meters.
	BeamAperture float64
	// AngularAccuracy is the RMS pointing error of the closed-loop
	// servo, radians.
	AngularAccuracy float64
	// StepLatency is the small-angle settle time.
	StepLatency time.Duration
	// VoltsPerDegree is the command scale (mechanical degrees per volt
	// is 1/VoltsPerDegree). The optical deflection is twice mechanical.
	VoltsPerDegree float64
	// VoltageRange is the symmetric command range ±VoltageRange.
	VoltageRange float64
}

// RadPerVolt returns the optical beam deflection per command volt.
func (g GalvoSpec) RadPerVolt() float64 {
	mechDegPerVolt := 1 / g.VoltsPerDegree
	return 2 * mechDegPerVolt * degToRad
}

const degToRad = 3.14159265358979323846 / 180

// DAQSpec describes the USB data-acquisition device driving the galvo
// power supplies.
type DAQSpec struct {
	Name string
	// Bits is the DAC resolution.
	Bits int
	// OutputRange is the symmetric output ±OutputRange volts.
	OutputRange float64
	// WriteLatency is the host→analog settling latency per update; the
	// paper measures 1–2 ms dominated by the DAQ conversion.
	WriteLatency time.Duration
}

// VoltageStep returns the smallest voltage increment the DAC can produce.
func (d DAQSpec) VoltageStep() float64 {
	return 2 * d.OutputRange / float64(int64(1)<<uint(d.Bits))
}

// The part catalog below mirrors Appendix A of the paper.
var (
	// SFP10GZR is the Cisco SFP-10G-ZR100 1550 nm transceiver [14]:
	// 0–4 dBm launch, −25 dBm sensitivity.
	SFP10GZR = Transceiver{
		Name:               "SFP-10G-ZR 1550nm",
		LineRateGbps:       10.3125,
		OptimalGoodputGbps: 9.4,
		TxPowerDBm:         0,
		SensitivityDBm:     -25,
		RelockDelay:        3 * time.Second,
	}

	// SFP28LR is the 25G SFP28 LR [1] used (with Intel XXV710 NICs)
	// because SFP28-ER-compatible NICs do not exist; link budget
	// 12–18 dB. We model the best of that range.
	SFP28LR = Transceiver{
		Name:               "SFP28-25G-LR",
		LineRateGbps:       25.78,
		OptimalGoodputGbps: 23.5,
		TxPowerDBm:         0,
		SensitivityDBm:     -18,
		RelockDelay:        3 * time.Second,
	}

	// EDFA is the erbium-doped fiber amplifier [34] compensating the
	// diverging beam's coupling loss.
	EDFA = Amplifier{Name: "EDFA 1550nm", GainDB: 20}

	// BE02Expander is the ThorLabs BE02-05-C beam expander used for the
	// wide collimated beam option (20 mm output).
	BE02Expander = Collimator{Name: "BE02-05-C", LaunchRadius: MM(10)}

	// CFC2X is the ThorLabs CFC-2X-C adjustable aspheric collimator used
	// at the TX for the diverging beam; ~4 mm launch aperture.
	CFC2X = Collimator{Name: "CFC-2X-C", LaunchRadius: MM(2), Adjustable: true}

	// F810FC is the ThorLabs F810FC-1550 receive collimator (Ø1 inch
	// optic, ~24 mm clear aperture).
	F810FC = Collimator{Name: "F810FC-1550", ApertureRadius: MM(12)}

	// C40FC is the ThorLabs C40FC-C adjustable-focus collimator used at
	// both ends of the 25G link for better diverging-beam capture.
	C40FC = Collimator{Name: "C40FC-C", LaunchRadius: MM(2), ApertureRadius: MM(12), Adjustable: true}

	// GVS102 is the ThorLabs 2-axis large-beam galvo system: 10 mm beam,
	// 10 µrad accuracy, 300 µs small-angle step response, 0.5 V/°.
	GVS102 = GalvoSpec{
		Name:            "GVS102",
		BeamAperture:    MM(10),
		AngularAccuracy: 10e-6,
		StepLatency:     300 * time.Microsecond,
		VoltsPerDegree:  0.5,
		VoltageRange:    10,
	}

	// USB1608G is the MCC USB-1608G DAQ [5] driving the galvo PSUs.
	USB1608G = DAQSpec{
		Name:         "USB-1608G",
		Bits:         16,
		OutputRange:  10,
		WriteLatency: 1500 * time.Microsecond,
	}
)
