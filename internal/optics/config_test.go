package optics

import (
	"math"
	"testing"
)

// The tests in this file pin the calibration to the paper's Table 1 and
// Fig 11: not exact values (our substrate is a simulator), but the shapes
// and magnitudes that the paper's conclusions rest on.

func TestTable1PeakPowers(t *testing.T) {
	// Collimated ≈ +15 dBm, diverging 20 mm ≈ −10 dBm (Table 1).
	col := Collimated10G.PeakReceivedPowerDBm()
	div := Diverging10G.PeakReceivedPowerDBm()
	if math.Abs(col-15) > 1.5 {
		t.Errorf("collimated peak = %.2f dBm, want ≈15", col)
	}
	if math.Abs(div-(-10)) > 1.5 {
		t.Errorf("diverging peak = %.2f dBm, want ≈-10", div)
	}
	// The defining trade-off: ~25 dB between the designs.
	if gap := col - div; gap < 20 || gap > 30 {
		t.Errorf("collimated-vs-diverging power gap = %.1f dB, want 20-30", gap)
	}
}

func TestTable1AngularTolerances(t *testing.T) {
	col := Collimated10G.Tolerances()
	div := Diverging10G.Tolerances()

	// Collimated: ~2 mrad both ends (paper: 2.00 / 2.28).
	if m := ToMrad(col.TXAngular); m < 1.5 || m > 3 {
		t.Errorf("collimated TX tolerance = %.2f mrad, want ≈2", m)
	}
	if m := ToMrad(col.RXAngular); m < 1.5 || m > 3 {
		t.Errorf("collimated RX tolerance = %.2f mrad, want ≈2.3", m)
	}
	// Diverging: RX ≈ 5-6 mrad (paper 5.77), TX ≫ collimated (paper
	// 15.81; our geometric model gives ~12).
	if m := ToMrad(div.RXAngular); m < 4.5 || m > 7 {
		t.Errorf("diverging RX tolerance = %.2f mrad, want ≈5.8", m)
	}
	if div.TXAngular < 4*col.TXAngular {
		t.Errorf("diverging TX tolerance %.2f mrad not ≫ collimated %.2f mrad",
			ToMrad(div.TXAngular), ToMrad(col.TXAngular))
	}
	if div.RXAngular < 2*col.RXAngular {
		t.Errorf("diverging RX tolerance %.2f mrad not ≫ collimated %.2f mrad",
			ToMrad(div.RXAngular), ToMrad(col.RXAngular))
	}
}

func TestFig11RXToleranceGeneralShape(t *testing.T) {
	// RX angular tolerance rises with beam diameter, peaks near 16 mm at
	// ≈5.77 mrad, then falls as the shrinking margin wins.
	var bestD, bestTol float64
	var prev float64
	for d := 6.0; d <= 26; d += 2 {
		tol := Diverging10G.WithRXDiameter(MM(d)).RXAngularTolerance()
		if tol > bestTol {
			bestTol, bestD = tol, d
		}
		_ = prev
		prev = tol
	}
	if bestD < 12 || bestD > 20 {
		t.Errorf("RX tolerance peaks at %v mm, want near 16", bestD)
	}
	if m := ToMrad(bestTol); math.Abs(m-5.77) > 1.0 {
		t.Errorf("peak RX tolerance = %.2f mrad, want ≈5.77", m)
	}
	// Rising before the peak, falling after.
	lo := Diverging10G.WithRXDiameter(MM(8)).RXAngularTolerance()
	hi := Diverging10G.WithRXDiameter(MM(24)).RXAngularTolerance()
	if lo >= bestTol || hi >= bestTol {
		t.Errorf("tolerance not unimodal: lo=%v peak=%v hi=%v", lo, bestTol, hi)
	}
}

func TestFig11ChosenDesignIs16mm(t *testing.T) {
	if Diverging10G16mm.RXBeamDiameter != MM(16) {
		t.Errorf("chosen design diameter = %v", Diverging10G16mm.RXBeamDiameter)
	}
}

func Test25GDesign(t *testing.T) {
	r := Diverging25G.Tolerances()
	// §5.3.1: RX angular ≈ 8.73 mrad (0.5°) — slightly better than the
	// 10G design's; lateral ≈ 6 mm — markedly tighter than 10G because
	// of the focal walk-off of the tight 25G receive chain.
	if m := ToMrad(r.RXAngular); m < 7.5 || m > 10 {
		t.Errorf("25G RX tolerance = %.2f mrad, want ≈8.73", m)
	}
	if r.RXAngular <= Diverging10G16mm.RXAngularTolerance() {
		t.Error("25G RX tolerance should exceed 10G's (§5.3.1)")
	}
	if mm := ToMM(r.Lateral); mm < 4.5 || mm > 8 {
		t.Errorf("25G lateral tolerance = %.1f mm, want ≈6", mm)
	}
	if r.Lateral >= Diverging10G16mm.LateralTolerance() {
		t.Error("25G lateral tolerance should be tighter than 10G's")
	}
	// The 25G margin is smaller than 10G's (the SFP28's much worse
	// link budget dominates any collimator improvement) — the §5.3.1
	// challenge.
	if Diverging25G.MarginDB() >= Diverging10G16mm.MarginDB() {
		t.Errorf("25G margin %.1f should be below 10G margin %.1f",
			Diverging25G.MarginDB(), Diverging10G16mm.MarginDB())
	}
}

func TestReceivedPowerMonotonicity(t *testing.T) {
	c := Diverging10G16mm
	// Worse offset → less power.
	p0 := c.ReceivedPowerDBm(Misalignment{Range: 1.75})
	p1 := c.ReceivedPowerDBm(Misalignment{Range: 1.75, LateralOffset: MM(5)})
	p2 := c.ReceivedPowerDBm(Misalignment{Range: 1.75, LateralOffset: MM(10)})
	if !(p0 > p1 && p1 > p2) {
		t.Errorf("power not monotone in offset: %v %v %v", p0, p1, p2)
	}
	// Worse incidence → less power.
	q1 := c.ReceivedPowerDBm(Misalignment{Range: 1.75, IncidenceMismatch: Mrad(3)})
	q2 := c.ReceivedPowerDBm(Misalignment{Range: 1.75, IncidenceMismatch: Mrad(6)})
	if !(p0 > q1 && q1 > q2) {
		t.Errorf("power not monotone in incidence: %v %v %v", p0, q1, q2)
	}
}

func TestReceivedPowerDefaultRange(t *testing.T) {
	c := Diverging10G16mm
	got := c.ReceivedPowerDBm(Misalignment{})
	want := c.ReceivedPowerDBm(Misalignment{Range: c.NominalRange})
	almost(t, got, want, 1e-12, "zero range defaults to nominal")
}

func TestConnectedThreshold(t *testing.T) {
	c := Diverging10G16mm
	if !c.Connected(Misalignment{Range: 1.75}) {
		t.Fatal("aligned link not connected")
	}
	// Far beyond tolerance must disconnect.
	if c.Connected(Misalignment{Range: 1.75, IncidenceMismatch: Mrad(50)}) {
		t.Error("grossly misaligned link still connected")
	}
}

func TestToleranceConsistentWithConnected(t *testing.T) {
	// Just inside the reported tolerance: connected. Just outside: not.
	for _, c := range []LinkConfig{Collimated10G, Diverging10G, Diverging25G} {
		tol := c.RXAngularTolerance()
		if !c.Connected(Misalignment{Range: c.NominalRange, IncidenceMismatch: tol * 0.99}) {
			t.Errorf("%s: inside RX tolerance not connected", c.Name)
		}
		if c.Connected(Misalignment{Range: c.NominalRange, IncidenceMismatch: tol * 1.01}) {
			t.Errorf("%s: outside RX tolerance still connected", c.Name)
		}
	}
}

func TestLateralToleranceDivergingVsCollimated(t *testing.T) {
	// For a collimated beam lateral movement only loses overlap (wide
	// tolerance); for diverging the wavefront tilt shrinks it.
	col := Collimated10G.LateralTolerance()
	div := Diverging10G16mm.LateralTolerance()
	if div >= col {
		t.Errorf("diverging lateral tolerance %.1f mm ≥ collimated %.1f mm",
			ToMM(div), ToMM(col))
	}
	// Both comfortably exceed the few-mm TP residual error (§5.2's
	// "tolerances should be at least 2-4 mm").
	if ToMM(div) < 4 {
		t.Errorf("diverging lateral tolerance %.1f mm too small", ToMM(div))
	}
}

func TestWithRXDiameterRenames(t *testing.T) {
	c := Diverging10G.WithRXDiameter(MM(16))
	if c.Name == Diverging10G.Name {
		t.Error("WithRXDiameter did not rename the config")
	}
	if c.RXBeamDiameter != MM(16) {
		t.Errorf("diameter = %v", c.RXBeamDiameter)
	}
}

func TestBeamKindString(t *testing.T) {
	if Collimated.String() != "collimated" || Diverging.String() != "diverging" {
		t.Error("BeamKind strings")
	}
	if BeamKind(9).String() == "" {
		t.Error("unknown BeamKind should still render")
	}
}
