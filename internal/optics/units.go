// Package optics models the radiometry of the Cyclops FSO link: Gaussian
// beam propagation, aperture capture, fiber-coupling losses, dBm link
// budgets, and a catalog of the commodity parts the paper's prototype used
// (SFPs, EDFA, collimators, galvo systems).
//
// The model is calibrated so that the measured characteristics of the
// paper's prototype emerge from the same mechanisms the paper describes:
//
//   - A collimated beam couples efficiently (high peak power) but tolerates
//     only ~2 mrad of angular misalignment, because every ray arrives
//     parallel to the beam axis and the fiber-coupling acceptance is narrow.
//   - A diverging beam pays ~25 dB of coupling loss but tolerates several
//     times more movement: transmitter rotation only shifts intensity
//     (local ray directions at a fixed aperture do not change when the
//     source rotates), and the wider angular spectrum of the diverging
//     wavefront widens the receiver's effective angular acceptance.
package optics

import "math"

// DBmToMilliwatt converts optical power in dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts optical power in milliwatts to dBm.
// Zero or negative power maps to -inf dBm.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// FractionToDB converts a power fraction (0,1] to a loss in dB (positive
// number = loss). A zero or negative fraction maps to +inf loss.
func FractionToDB(frac float64) float64 {
	if frac <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(frac)
}

// DBToFraction converts a loss in dB (positive = loss) to a power fraction.
func DBToFraction(lossDB float64) float64 { return math.Pow(10, -lossDB/10) }

// Mrad converts milliradians to radians.
func Mrad(m float64) float64 { return m * 1e-3 }

// ToMrad converts radians to milliradians.
func ToMrad(rad float64) float64 { return rad * 1e3 }

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// ToDeg converts radians to degrees.
func ToDeg(rad float64) float64 { return rad * 180 / math.Pi }

// MM converts millimeters to meters.
func MM(mm float64) float64 { return mm * 1e-3 }

// ToMM converts meters to millimeters.
func ToMM(m float64) float64 { return m * 1e3 }
