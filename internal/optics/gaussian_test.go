package optics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBeamRadius(t *testing.T) {
	b := GaussianBeam{W0: MM(2), Divergence: Mrad(4)}
	almost(t, b.RadiusAt(0), MM(2), 1e-12, "radius at 0")
	almost(t, b.RadiusAt(1.75), MM(2)+0.004*1.75, 1e-12, "radius at 1.75m")
	almost(t, b.DiameterAt(1.75), 2*(MM(2)+0.004*1.75), 1e-12, "diameter")
	// Negative z is symmetric.
	almost(t, b.RadiusAt(-1), b.RadiusAt(1), 1e-15, "symmetry")
}

func TestDivergenceFor(t *testing.T) {
	// 2 mm launch radius → 20 mm diameter at 1.75 m needs (10-2)/1750 rad.
	got := DivergenceFor(MM(2), MM(20), 1.75)
	almost(t, got, 0.008/1.75, 1e-12, "divergence")
	// Target smaller than launch clamps to collimated.
	if got := DivergenceFor(MM(10), MM(10), 1.75); got != 0 {
		t.Errorf("shrinking beam divergence = %v, want 0", got)
	}
}

func TestCaptureCenteredClosedForm(t *testing.T) {
	// Quadrature must agree with the closed form for centered apertures.
	cases := []struct{ w, a float64 }{
		{MM(10), MM(12)},
		{MM(10), MM(5)},
		{MM(8), MM(12)},
		{MM(2), MM(12)},
		{MM(20), MM(12)},
	}
	for _, c := range cases {
		num := CaptureFraction(c.w, c.a, 0)
		closed := CaptureFractionCentered(c.w, c.a)
		almost(t, num, closed, 2e-4, "capture w/a centered")
	}
}

func TestCaptureMonotoneInOffset(t *testing.T) {
	w, a := MM(10), MM(12)
	prev := math.Inf(1)
	for d := 0.0; d <= 0.04; d += 0.002 {
		f := CaptureFraction(w, a, d)
		if f > prev+1e-9 {
			t.Fatalf("capture increased with offset at d=%v", d)
		}
		prev = f
	}
}

func TestCaptureBounds(t *testing.T) {
	f := func(wmm, amm, dmm float64) bool {
		w, a, d := MM(math.Abs(wmm))+1e-4, MM(math.Abs(amm))+1e-4, MM(math.Abs(dmm))
		c := CaptureFraction(w, a, d)
		return c >= 0 && c <= 1
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Rand:     rand.New(rand.NewSource(9)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64() * 40)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCaptureDegenerateInputs(t *testing.T) {
	if CaptureFraction(0, MM(12), 0) != 0 {
		t.Error("zero beam radius should capture nothing")
	}
	if CaptureFraction(MM(10), 0, 0) != 0 {
		t.Error("zero aperture should capture nothing")
	}
	if CaptureFractionCentered(0, 1) != 0 || CaptureFractionCentered(1, 0) != 0 {
		t.Error("closed form degenerate inputs")
	}
}

func TestCaptureTinyBeamFullyCaptured(t *testing.T) {
	// A beam much narrower than the aperture is fully captured when
	// centered.
	got := CaptureFraction(MM(1), MM(12), 0)
	if got < 0.999 {
		t.Errorf("narrow beam capture = %v", got)
	}
	// And lost when offset beyond the aperture edge.
	got = CaptureFraction(MM(1), MM(12), MM(20))
	if got > 1e-6 {
		t.Errorf("far-offset narrow beam capture = %v", got)
	}
}

func TestCaptureFarFieldGaussianRatio(t *testing.T) {
	// For an aperture much smaller than the beam, the offset response is
	// the Gaussian intensity ratio exp(-2d²/w²).
	w, a := MM(50), MM(2)
	base := CaptureFraction(w, a, 0)
	for _, dmm := range []float64{10, 20, 30} {
		d := MM(dmm)
		want := base * math.Exp(-2*d*d/(w*w))
		got := CaptureFraction(w, a, d)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("small-aperture ratio at d=%vmm: got %v want %v", dmm, got, want)
		}
	}
}

func TestAngleCoupling(t *testing.T) {
	acc := Mrad(4)
	almost(t, AngleCouplingFraction(0, acc), 1, 1e-12, "aligned")
	almost(t, AngleCouplingFraction(acc, acc), math.Exp(-2), 1e-12, "at acceptance")
	// Symmetric in angle sign.
	almost(t, AngleCouplingFraction(-Mrad(2), acc), AngleCouplingFraction(Mrad(2), acc), 1e-15, "symmetry")
	// Loss form agrees.
	almost(t, AngleCouplingLossDB(acc, acc), -10*math.Log10(math.Exp(-2)), 1e-9, "loss dB")
}

func TestAngleCouplingZeroAcceptance(t *testing.T) {
	if AngleCouplingFraction(0, 0) != 1 {
		t.Error("zero angle with zero acceptance should pass")
	}
	if AngleCouplingFraction(1e-9, 0) != 0 {
		t.Error("any angle with zero acceptance should block")
	}
}
