package optics

import (
	"strings"
	"testing"
)

func TestWDMStandardCollimatorLosesLanes(t *testing.T) {
	r := WDM40GStandard.Evaluate()
	if r.OperationalLanes >= len(r.Lanes) {
		t.Errorf("standard collimator closed all %d lanes — the §6 problem vanished", len(r.Lanes))
	}
	if r.OperationalLanes == 0 {
		t.Error("standard collimator closed no lanes — too pessimistic")
	}
	// The center lanes survive; the outer lanes pay the penalty.
	for _, l := range r.Lanes {
		if l.PenaltyDB < 0 {
			t.Errorf("negative penalty %v", l.PenaltyDB)
		}
	}
	inner := r.Lanes[1].PenaltyDB
	outer := r.Lanes[0].PenaltyDB
	if outer <= inner {
		t.Errorf("outer lane penalty %.1f not above inner %.1f", outer, inner)
	}
}

func TestWDMCustomCollimatorClosesAllLanes(t *testing.T) {
	r := WDM40GCustom.Evaluate()
	if r.OperationalLanes != len(r.Lanes) {
		t.Errorf("custom collimator closed %d/%d lanes", r.OperationalLanes, len(r.Lanes))
	}
	if r.AggregateGbps < 40 {
		t.Errorf("aggregate %.0f Gbps, want ≥40", r.AggregateGbps)
	}
	if !strings.Contains(r.String(), "4/4") {
		t.Errorf("report: %s", r.String())
	}
}

func TestWDMCustomBeatsStandard(t *testing.T) {
	std := WDM40GStandard.Evaluate()
	custom := WDM40GCustom.Evaluate()
	if custom.AggregateGbps <= std.AggregateGbps {
		t.Errorf("custom %.0f Gbps not above standard %.0f", custom.AggregateGbps, std.AggregateGbps)
	}
}
