package optics

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestDBmConversions(t *testing.T) {
	almost(t, DBmToMilliwatt(0), 1, 1e-12, "0 dBm")
	almost(t, DBmToMilliwatt(10), 10, 1e-9, "10 dBm")
	almost(t, DBmToMilliwatt(-30), 0.001, 1e-12, "-30 dBm")
	almost(t, MilliwattToDBm(1), 0, 1e-12, "1 mW")
	almost(t, MilliwattToDBm(100), 20, 1e-9, "100 mW")
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Error("0 mW should be -inf dBm")
	}
	if !math.IsInf(MilliwattToDBm(-1), -1) {
		t.Error("negative power should be -inf dBm")
	}
}

func TestDBmRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-40, -25, -10, 0, 4, 15} {
		almost(t, MilliwattToDBm(DBmToMilliwatt(dbm)), dbm, 1e-9, "roundtrip")
	}
}

func TestFractionDB(t *testing.T) {
	almost(t, FractionToDB(1), 0, 1e-12, "unity")
	almost(t, FractionToDB(0.1), 10, 1e-9, "10% loss")
	almost(t, FractionToDB(0.5), 3.0103, 1e-3, "half")
	if !math.IsInf(FractionToDB(0), 1) {
		t.Error("zero fraction should be +inf loss")
	}
	almost(t, DBToFraction(3.0103), 0.5, 1e-4, "3dB")
	almost(t, DBToFraction(FractionToDB(0.037)), 0.037, 1e-12, "roundtrip")
}

func TestAngleUnits(t *testing.T) {
	almost(t, Mrad(5), 0.005, 1e-15, "Mrad")
	almost(t, ToMrad(0.005), 5, 1e-12, "ToMrad")
	almost(t, Deg(180), math.Pi, 1e-12, "Deg")
	almost(t, ToDeg(math.Pi/2), 90, 1e-12, "ToDeg")
	almost(t, ToDeg(Deg(17)), 17, 1e-12, "deg roundtrip")
}

func TestLengthUnits(t *testing.T) {
	almost(t, MM(20), 0.020, 1e-15, "MM")
	almost(t, ToMM(0.016), 16, 1e-12, "ToMM")
}

func TestTransceiverLinkBudget(t *testing.T) {
	almost(t, SFP10GZR.LinkBudgetDB(), 25, 1e-9, "10G ZR budget")
	almost(t, SFP28LR.LinkBudgetDB(), 18, 1e-9, "SFP28 budget")
	// The paper's observation: the 25G parts have ~13 dB less budget
	// headroom than the 10G ZR parts (§5.3.1 says "about 13dB less").
	diff := SFP10GZR.LinkBudgetDB() - SFP28LR.LinkBudgetDB()
	if diff < 5 || diff > 15 {
		t.Errorf("budget gap 10G vs 25G = %v dB, want several dB", diff)
	}
}

func TestGalvoSpec(t *testing.T) {
	// GVS102 at 0.5 V/° → 2 mechanical degrees per volt → 4 optical
	// degrees per volt.
	almost(t, GVS102.RadPerVolt(), Deg(4), 1e-9, "rad per volt")
	if GVS102.BeamAperture != MM(10) {
		t.Errorf("GVS102 aperture = %v", GVS102.BeamAperture)
	}
}

func TestDAQVoltageStep(t *testing.T) {
	// 16-bit over ±10 V → ~0.3 mV steps.
	step := USB1608G.VoltageStep()
	if step < 0.0002 || step > 0.0004 {
		t.Errorf("DAQ step = %v V, want ~0.3 mV", step)
	}
}
