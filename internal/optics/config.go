package optics

import (
	"fmt"
	"math"
)

// BeamKind selects between the two §5.1 design options.
type BeamKind int

const (
	// Collimated is option (a): a wide collimated beam from a beam
	// expander. High peak power, narrow angular tolerance.
	Collimated BeamKind = iota
	// Diverging is option (b): an adjustable-collimator beam whose
	// divergence is set so the beam reaches a chosen diameter at the
	// receiver. Lower peak power, much wider tolerance.
	Diverging
)

func (k BeamKind) String() string {
	switch k {
	case Collimated:
		return "collimated"
	case Diverging:
		return "diverging"
	default:
		return fmt.Sprintf("BeamKind(%d)", int(k))
	}
}

// LinkConfig captures everything radiometric about one link design: the
// transceiver, amplifier, beam option, and the calibration constants that
// encode how the prototype's optics behave. The geometric state (where the
// terminals are, how the beam actually travels) lives in internal/link;
// this type answers "given these misalignment scalars, what power arrives?"
type LinkConfig struct {
	Name        string
	Transceiver Transceiver
	Amp         Amplifier
	Kind        BeamKind

	// NominalRange is the design TX–RX distance, meters (1.5–2 m rigs;
	// we use 1.75 m as the paper's own simulation does).
	NominalRange float64

	// LaunchRadius is the 1/e² beam radius at the TX output.
	LaunchRadius float64

	// RXBeamDiameter is the target 1/e² beam diameter at NominalRange
	// for the diverging option (ignored for collimated). Table 1 used
	// 20 mm; Fig 11 sweeps it; 16 mm is the chosen optimum.
	RXBeamDiameter float64

	// ApertureRadius is the receive collimator clear radius.
	ApertureRadius float64

	// BaseInsertionDB is the fixed insertion loss: connectors, fiber,
	// mirror reflectivity, and (for the diverging option) the residual
	// mode mismatch at zero divergence.
	BaseInsertionDB float64

	// DivergenceLossDBPerMrad2 is the extra fiber-coupling loss per
	// mrad² of divergence half-angle: capturing a spherical wavefront
	// with collimator optics designed for plane waves costs quadratically
	// in the wavefront curvature. Calibrated so the 20 mm diverging beam
	// shows the paper's ~30 dB coupling loss.
	DivergenceLossDBPerMrad2 float64

	// AcceptBaseMrad and AcceptPerMradDiv set the receiver's angular
	// acceptance (1/e² half-angle, mrad) as acceptance = base + k·δ
	// where δ is the divergence half-angle in mrad: a diverging beam's
	// wider angular spectrum relaxes the incidence-angle requirement.
	AcceptBaseMrad   float64
	AcceptPerMradDiv float64

	// LateralAcceptance, when non-zero, adds a focal-plane walk-off
	// penalty: a lateral offset d of the receive optics from the beam
	// axis displaces the focused image on the fiber facet, costing
	// exp(-2·(d/LateralAcceptance)²) of coupled power in addition to
	// the aperture-overlap and incidence-angle terms. The 25G receive
	// chain (tight adjustable-focus collimators into SFP28s) exhibits
	// this strongly — it is why §5.3.1 reports only ~6 mm of lateral
	// tolerance despite ~8.7 mrad of angular tolerance. Zero disables
	// the term (the 10G multimode chain is comparatively insensitive).
	LateralAcceptance float64
}

// Beam returns the Gaussian beam this configuration launches.
func (c LinkConfig) Beam() GaussianBeam {
	return GaussianBeam{W0: c.LaunchRadius, Divergence: c.DivergenceHalfAngle()}
}

// DivergenceHalfAngle returns the design divergence half-angle in radians
// (0 for collimated).
func (c LinkConfig) DivergenceHalfAngle() float64 {
	if c.Kind == Collimated {
		return 0
	}
	return DivergenceFor(c.LaunchRadius, c.RXBeamDiameter, c.NominalRange)
}

// InsertionLossDB returns the total fixed loss for this design, including
// the divergence-dependent fiber-coupling penalty.
func (c LinkConfig) InsertionLossDB() float64 {
	d := ToMrad(c.DivergenceHalfAngle())
	return c.BaseInsertionDB + c.DivergenceLossDBPerMrad2*d*d
}

// AngularAcceptance returns the receiver's angular acceptance (1/e²
// half-angle) in radians.
func (c LinkConfig) AngularAcceptance() float64 {
	d := ToMrad(c.DivergenceHalfAngle())
	return Mrad(c.AcceptBaseMrad + c.AcceptPerMradDiv*d)
}

// Misalignment describes the geometric state of the link reduced to the
// three scalars that determine received power.
type Misalignment struct {
	// Range is the TX-origin → RX-aperture distance, meters.
	Range float64
	// LateralOffset is the distance from the beam axis to the RX
	// aperture center, measured in the aperture plane, meters.
	LateralOffset float64
	// IncidenceMismatch is the angle between the receive collimator's
	// optical axis and the local incoming ray direction at the aperture
	// center, radians. For a diverging beam the local ray direction
	// points from the beam origin to the aperture center; for a
	// collimated beam it is the beam axis direction.
	IncidenceMismatch float64
}

// ReceivedPowerDBm returns the power arriving at the receiver's SFP for a
// given misalignment. Perfect alignment (zero offsets) yields the peak
// received power of Table 1.
func (c LinkConfig) ReceivedPowerDBm(m Misalignment) float64 {
	r := m.Range
	if r <= 0 {
		r = c.NominalRange
	}
	w := c.Beam().RadiusAt(r)
	geo := CaptureFraction(w, c.ApertureRadius, m.LateralOffset)
	ang := AngleCouplingFraction(m.IncidenceMismatch, c.AngularAcceptance())
	p := c.Transceiver.TxPowerDBm + c.Amp.GainDB - c.InsertionLossDB()
	p -= FractionToDB(geo) + FractionToDB(ang)
	if c.LateralAcceptance > 0 {
		lat := m.LateralOffset / c.LateralAcceptance
		p -= FractionToDB(math.Exp(-2 * lat * lat))
	}
	return p
}

// PeakReceivedPowerDBm is the aligned-link received power.
func (c LinkConfig) PeakReceivedPowerDBm() float64 {
	return c.ReceivedPowerDBm(Misalignment{Range: c.NominalRange})
}

// MarginDB is the dB of additional loss the aligned link can absorb
// before the receiver loses signal.
func (c LinkConfig) MarginDB() float64 {
	return c.PeakReceivedPowerDBm() - c.Transceiver.SensitivityDBm
}

// Connected reports whether the received power for the given misalignment
// clears the receiver sensitivity.
func (c LinkConfig) Connected(m Misalignment) bool {
	return c.ReceivedPowerDBm(m) >= c.Transceiver.SensitivityDBm
}

// WithRXDiameter returns a copy with the diverging beam retargeted to the
// given 1/e² diameter at the receiver (the Fig 11 sweep knob).
func (c LinkConfig) WithRXDiameter(d float64) LinkConfig {
	c.RXBeamDiameter = d
	c.Name = fmt.Sprintf("%s %.0fmm@RX", c.Transceiver.Name, ToMM(d))
	return c
}

// Standard link designs, calibrated to the prototype's Table 1 / §5.3.1
// characteristics. See DESIGN.md for the calibration derivation.
var (
	// Collimated10G is §5.1 option (a): BE02-05-C 20 mm collimated beam,
	// 10G ZR SFPs. Peak ≈ +15 dBm, tolerances ≈ 2 mrad.
	Collimated10G = LinkConfig{
		Name:            "10G collimated 20mm",
		Transceiver:     SFP10GZR,
		Amp:             EDFA,
		Kind:            Collimated,
		NominalRange:    1.75,
		LaunchRadius:    BE02Expander.LaunchRadius,
		ApertureRadius:  F810FC.ApertureRadius,
		BaseInsertionDB: 5,
		AcceptBaseMrad:  1.0,
	}

	// Diverging10G is §5.1 option (b) at the Table 1 operating point:
	// CFC-2X-C launch, 20 mm 1/e² diameter at RX. Peak ≈ −10 dBm,
	// RX tolerance ≈ 5–6 mrad.
	Diverging10G = LinkConfig{
		Name:                     "10G diverging 20mm@RX",
		Transceiver:              SFP10GZR,
		Amp:                      EDFA,
		Kind:                     Diverging,
		NominalRange:             1.75,
		LaunchRadius:             CFC2X.LaunchRadius,
		RXBeamDiameter:           MM(20),
		ApertureRadius:           F810FC.ApertureRadius,
		BaseInsertionDB:          10,
		DivergenceLossDBPerMrad2: 0.957,
		AcceptBaseMrad:           1.83,
		AcceptPerMradDiv:         0.487,
	}

	// Diverging10G16mm is the chosen §5.1 design: 16 mm beam diameter at
	// RX, where the RX angular tolerance peaks (Fig 11).
	Diverging10G16mm = Diverging10G.WithRXDiameter(MM(16))

	// Diverging25G is the §5.3.1 25G prototype: SFP28 LR (markedly
	// smaller link budget than the 10G ZR parts), C40FC-C
	// adjustable-focus collimators at both ends. The tighter receive
	// chain widens the angular acceptance (RX tolerance ≈8.7 mrad,
	// better than 10G) but couples through a small focused spot, so
	// lateral walk-off bites at ≈6 mm — both §5.3.1 observations.
	Diverging25G = LinkConfig{
		Name:                     "25G diverging 16mm@RX",
		Transceiver:              SFP28LR,
		Amp:                      EDFA,
		Kind:                     Diverging,
		NominalRange:             1.75,
		LaunchRadius:             C40FC.LaunchRadius,
		RXBeamDiameter:           MM(16),
		ApertureRadius:           C40FC.ApertureRadius,
		BaseInsertionDB:          16,
		DivergenceLossDBPerMrad2: 0.80,
		AcceptBaseMrad:           5.6,
		AcceptPerMradDiv:         0.487,
		LateralAcceptance:        MM(7.5),
	}
)

func init() {
	// The calibration must keep every standard design connectable when
	// aligned; a misconfigured catalog would silently break every
	// downstream experiment, so fail fast.
	for _, c := range []LinkConfig{Collimated10G, Diverging10G, Diverging10G16mm, Diverging25G} {
		if c.MarginDB() <= 0 {
			//cyclops:panic-ok init-time catalog validation; a broken standard design must fail the process, not one experiment
			panic(fmt.Sprintf("optics: %s has non-positive margin %.1f dB", c.Name, c.MarginDB()))
		}
		if math.IsNaN(c.PeakReceivedPowerDBm()) {
			//cyclops:panic-ok init-time catalog validation; a broken standard design must fail the process, not one experiment
			panic(fmt.Sprintf("optics: %s has NaN peak power", c.Name))
		}
	}
}
