package optics

import "math"

// GaussianBeam describes a TEM00 beam by its 1/e² intensity radius at the
// waist (assumed at the transmitter aperture for our short links) and its
// far-field divergence half-angle. Over the 1.5–2 m spans Cyclops cares
// about, the radius evolves essentially linearly:
//
//	w(z) ≈ W0 + Divergence·z
//
// which is exact in the geometric (large divergence) limit the adjustable
// collimator operates in, and within a percent of the true hyperbolic
// profile for the collimated option at these ranges.
type GaussianBeam struct {
	W0         float64 // 1/e² radius at the transmitter, meters
	Divergence float64 // half-angle, radians (0 for an ideal collimated beam)
}

// RadiusAt returns the 1/e² intensity radius at distance z.
func (b GaussianBeam) RadiusAt(z float64) float64 {
	return b.W0 + b.Divergence*math.Abs(z)
}

// DiameterAt returns the 1/e² intensity diameter at distance z.
func (b GaussianBeam) DiameterAt(z float64) float64 { return 2 * b.RadiusAt(z) }

// DivergenceFor returns the divergence half-angle needed for the beam to
// reach 1/e² diameter d at distance z, clamped at ≥ 0 (a target diameter
// smaller than the launch diameter yields a collimated beam).
func DivergenceFor(w0, d, z float64) float64 {
	div := (d/2 - w0) / z
	if div < 0 {
		div = 0
	}
	return div
}

// CaptureFraction returns the fraction of total beam power falling inside
// a circular aperture of radius a whose center is offset by dist from the
// beam axis, for a beam with 1/e² radius w at the aperture plane.
//
// The intensity profile is I(r) = (2/(πw²))·exp(-2r²/w²) (unit total
// power). The integral over the offset disk has no closed form, so we
// integrate numerically in polar coordinates around the aperture center.
// The quadrature is fixed-order (64×32 midpoint), accurate to ~1e-6 for
// the parameter ranges Cyclops uses — far below the 0.1 dB that matters.
func CaptureFraction(w, a, dist float64) float64 {
	if w <= 0 || a <= 0 {
		return 0
	}
	const nr, nt = 64, 32
	inv2w2 := 2 / (w * w)
	norm := 2 / (math.Pi * w * w)
	var sum float64
	dr := a / nr
	dt := 2 * math.Pi / nt
	for i := 0; i < nr; i++ {
		r := (float64(i) + 0.5) * dr
		for j := 0; j < nt; j++ {
			t := (float64(j) + 0.5) * dt
			// Point in the aperture, measured from the beam axis.
			x := dist + r*math.Cos(t)
			y := r * math.Sin(t)
			sum += math.Exp(-(x*x+y*y)*inv2w2) * r
		}
	}
	frac := norm * sum * dr * dt
	if frac > 1 {
		frac = 1
	}
	return frac
}

// CaptureFractionCentered is the closed form of CaptureFraction for a
// centered aperture: 1 - exp(-2a²/w²). Used both as a fast path and as a
// cross-check for the quadrature.
func CaptureFractionCentered(w, a float64) float64 {
	if w <= 0 || a <= 0 {
		return 0
	}
	return 1 - math.Exp(-2*a*a/(w*w))
}

// AngleCouplingFraction returns the fiber-coupling efficiency for an
// incidence-angle mismatch theta given the terminal's angular acceptance
// (the 1/e² half-angle of the coupling response):
//
//	η(θ) = exp(-2·(θ/acceptance)²)
//
// This Gaussian angular response is the standard single-mode/multimode
// overlap model; the acceptance constant is a property of the collimator
// and fiber and is calibrated per part in the catalog.
func AngleCouplingFraction(theta, acceptance float64) float64 {
	if acceptance <= 0 {
		if theta == 0 {
			return 1
		}
		return 0
	}
	r := theta / acceptance
	return math.Exp(-2 * r * r)
}

// AngleCouplingLossDB returns the same response as a dB loss.
func AngleCouplingLossDB(theta, acceptance float64) float64 {
	return FractionToDB(AngleCouplingFraction(theta, acceptance))
}
