package motion

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/trace"
)

func basePose() geom.Pose {
	return geom.NewPose(geom.QuatIdentity(), geom.V(0.35, 0.25, 1.0))
}

// measureSpeeds samples a program at 1 ms and returns max linear and
// angular speeds over 10 ms windows.
func measureSpeeds(p Program) (maxLin, maxAng float64) {
	const win = 10 * time.Millisecond
	for t := time.Duration(0); t+win <= p.Duration(); t += win {
		a, b := p.Pose(t), p.Pose(t+win)
		lin, ang := a.Delta(b)
		maxLin = math.Max(maxLin, lin/win.Seconds())
		maxAng = math.Max(maxAng, ang/win.Seconds())
	}
	return maxLin, maxAng
}

func TestStatic(t *testing.T) {
	s := Static{P: basePose(), Len: time.Second}
	if s.Pose(0) != s.Pose(999*time.Millisecond) {
		t.Error("static pose moved")
	}
	if s.Duration() != time.Second {
		t.Error("duration")
	}
}

func TestLinearStrokesKinematics(t *testing.T) {
	l := LinearStrokes{
		Base:       basePose(),
		Axis:       geom.V(1, 0, 0),
		HalfTravel: 0.25,
		StartSpeed: 0.10,
		SpeedStep:  0.05,
		Strokes:    4,
		Dwell:      200 * time.Millisecond,
	}
	// Starts at the -end.
	p0 := l.Pose(0)
	if math.Abs(p0.Trans.X-(basePose().Trans.X-0.25)) > 1e-9 {
		t.Errorf("start X = %v", p0.Trans.X)
	}
	// Motion is purely along the axis; rotation fixed.
	maxLin, maxAng := measureSpeeds(l)
	if maxAng > 1e-9 {
		t.Errorf("linear program rotated: %v rad/s", maxAng)
	}
	// Peak measured speed ≈ final stroke's commanded peak.
	want := l.PeakSpeed()
	if maxLin < want*0.9 || maxLin > want*1.1 {
		t.Errorf("peak speed = %v, commanded %v", maxLin, want)
	}
	// Ends of strokes dwell.
	endT := l.strokeDur(0) + l.Dwell/2
	pEnd := l.Pose(endT)
	if math.Abs(pEnd.Trans.X-(basePose().Trans.X+0.25)) > 1e-9 {
		t.Errorf("dwell not at +end: %v", pEnd.Trans.X)
	}
	// Pose beyond duration is stable.
	after := l.Pose(l.Duration() + time.Second)
	if math.Abs(after.Trans.Dist(basePose().Trans)-0.25) > 1e-6 {
		t.Errorf("post-program pose = %v", after.Trans)
	}
}

func TestLinearStrokesSpeedRamp(t *testing.T) {
	l := LinearStrokes{
		Base: basePose(), Axis: geom.V(1, 0, 0), HalfTravel: 0.25,
		StartSpeed: 0.1, SpeedStep: 0.1, Strokes: 3, Dwell: 0,
	}
	// Later strokes are faster, so shorter.
	if l.strokeDur(2) >= l.strokeDur(0) {
		t.Error("stroke durations not decreasing with speed ramp")
	}
	if got := l.PeakSpeed(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("PeakSpeed = %v", got)
	}
}

func TestAngularSweepsKinematics(t *testing.T) {
	a := AngularSweeps{
		Base:       basePose(),
		Axis:       geom.V(0, 0, 1),
		HalfAngle:  0.35, // ±20°
		StartSpeed: 0.2,
		SpeedStep:  0.1,
		Sweeps:     3,
		Dwell:      100 * time.Millisecond,
	}
	maxLin, maxAng := measureSpeeds(a)
	if maxLin > 1e-9 {
		t.Errorf("angular program translated: %v m/s", maxLin)
	}
	want := a.PeakSpeed()
	if maxAng < want*0.9 || maxAng > want*1.1 {
		t.Errorf("peak angular speed = %v, commanded %v", maxAng, want)
	}
}

func TestHandHeldExploresMixedMotion(t *testing.T) {
	h := &HandHeld{
		Base:       basePose(),
		MaxLinear:  0.6,
		MaxAngular: 1.5,
		Len:        20 * time.Second,
		Seed:       1,
	}
	maxLin, maxAng := measureSpeeds(h)
	if maxLin < 0.15 {
		t.Errorf("hand motion max linear %v m/s — too tame", maxLin)
	}
	if maxAng < 0.4 {
		t.Errorf("hand motion max angular %v rad/s — too tame", maxAng)
	}
	// Bounded: stays within arm's reach and plausible speeds.
	for ts := time.Duration(0); ts < h.Len; ts += 100 * time.Millisecond {
		if d := h.Pose(ts).Trans.Dist(basePose().Trans); d > 0.8 {
			t.Fatalf("hand motion wandered %v m from base", d)
		}
	}
	// Deterministic.
	h2 := &HandHeld{Base: basePose(), MaxLinear: 0.6, MaxAngular: 1.5, Len: 20 * time.Second, Seed: 1}
	if h.Pose(7*time.Second) != h2.Pose(7*time.Second) {
		t.Error("hand motion not deterministic in seed")
	}
}

func TestHandHeldRampsUp(t *testing.T) {
	h := &HandHeld{Base: basePose(), MaxLinear: 0.6, MaxAngular: 1.5, Len: 30 * time.Second, Seed: 2}
	speedIn := func(from, to time.Duration) float64 {
		var m float64
		for t := from; t+10*time.Millisecond <= to; t += 10 * time.Millisecond {
			lin, _ := h.Pose(t).Delta(h.Pose(t + 10*time.Millisecond))
			m = math.Max(m, lin/0.01)
		}
		return m
	}
	early := speedIn(0, 5*time.Second)
	late := speedIn(25*time.Second, 30*time.Second)
	if late <= early {
		t.Errorf("intensity did not ramp: early %v, late %v", early, late)
	}
}

func TestTracePlaybackRehomed(t *testing.T) {
	tr := trace.Generate(3, 0, 5*time.Second, geom.V(2, 3, 4))
	p := &TracePlayback{Base: basePose(), T: tr}
	// First pose lands on base.
	lin, ang := p.Pose(0).Delta(basePose())
	if lin > 1e-9 || ang > 1e-6 {
		t.Errorf("playback start not at base: %v m, %v rad", lin, ang)
	}
	// Relative motion preserved.
	wantLin, wantAng := tr.Samples[0].Pose.Delta(tr.Samples[100].Pose)
	gotLin, gotAng := p.Pose(0).Delta(p.Pose(time.Second))
	if math.Abs(wantLin-gotLin) > 1e-9 || math.Abs(wantAng-gotAng) > 1e-6 {
		t.Errorf("playback distorted motion: %v/%v vs %v/%v", gotLin, gotAng, wantLin, wantAng)
	}
	if p.Duration() != tr.Duration() {
		t.Error("duration mismatch")
	}
}

func TestTracePlaybackEmpty(t *testing.T) {
	p := &TracePlayback{Base: basePose()}
	if got := p.Pose(0); got != basePose().Compose(geom.PoseIdentity()) {
		_ = got // empty trace yields base-composed identity; just ensure no panic
	}
}
