// Package motion provides the headset motion programs of the §5.3
// evaluation rigs: the linear rail, the rotation stage, free hand-held
// "arbitrary" motion, and playback of recorded viewing traces. A Program
// is a pure function from simulation time to true headset pose, which the
// experiment loop samples at millisecond resolution.
package motion

import (
	"math"
	"math/rand"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/trace"
)

// Program yields the true headset pose over time.
type Program interface {
	// Pose returns the headset pose at time t.
	Pose(t time.Duration) geom.Pose
	// Duration is the program length; Pose clamps beyond it.
	Duration() time.Duration
}

// Static holds the headset at one pose forever.
type Static struct {
	P   geom.Pose
	Len time.Duration
}

// Pose implements Program.
func (s Static) Pose(time.Duration) geom.Pose { return s.P }

// Duration implements Program.
func (s Static) Duration() time.Duration { return s.Len }

// LinearStrokes reproduces the rail procedure of §5.3: the assembly moves
// end to end in smooth strokes, momentarily resting to turn, with the
// stroke speed increasing stage by stage "until the observed throughput
// drops".
type LinearStrokes struct {
	// Base is the pose at the rail center; the rotation stays fixed.
	Base geom.Pose
	// Axis is the rail direction (unit).
	Axis geom.Vec3
	// HalfTravel is half the rail length, meters (the assembly moves
	// Base ± HalfTravel·Axis).
	HalfTravel float64
	// StartSpeed and SpeedStep define the per-stroke peak-speed ramp:
	// stroke k runs at StartSpeed + k·SpeedStep (m/s).
	StartSpeed, SpeedStep float64
	// Strokes is the number of one-way strokes.
	Strokes int
	// Dwell is the rest at each end.
	Dwell time.Duration
}

func (l LinearStrokes) strokeSpeed(k int) float64 {
	return l.StartSpeed + float64(k)*l.SpeedStep
}

// strokeDur returns stroke k's duration given its peak speed: the position
// profile is x(t) = -H·cos(πt/T), whose speed peaks at πH/T mid-stroke, so
// T = πH/peak.
func (l LinearStrokes) strokeDur(k int) time.Duration {
	peak := l.strokeSpeed(k)
	if peak <= 0 {
		return time.Second
	}
	return time.Duration(math.Pi * l.HalfTravel / peak * float64(time.Second))
}

// Duration implements Program.
func (l LinearStrokes) Duration() time.Duration {
	var d time.Duration
	for k := 0; k < l.Strokes; k++ {
		d += l.strokeDur(k) + l.Dwell
	}
	return d
}

// Pose implements Program.
func (l LinearStrokes) Pose(t time.Duration) geom.Pose {
	axis := l.Axis.Unit()
	dir := 1.0 // +1: moving from -end to +end
	for k := 0; k < l.Strokes; k++ {
		sd := l.strokeDur(k)
		if t < sd {
			// Raised-cosine position profile from -HalfTravel to
			// +HalfTravel (times dir).
			frac := float64(t) / float64(sd)
			x := -math.Cos(math.Pi*frac) * l.HalfTravel * dir
			return geom.NewPose(l.Base.Rot, l.Base.Trans.Add(axis.Scale(x)))
		}
		t -= sd
		if t < l.Dwell {
			return geom.NewPose(l.Base.Rot, l.Base.Trans.Add(axis.Scale(l.HalfTravel*dir)))
		}
		t -= l.Dwell
		dir = -dir
	}
	// Program over: rest at the final end.
	end := l.HalfTravel * dir * -1
	return geom.NewPose(l.Base.Rot, l.Base.Trans.Add(axis.Scale(end)))
}

// PeakSpeed returns the fastest commanded stroke speed — the upper end of
// the Fig 13 x-axis this program explores.
func (l LinearStrokes) PeakSpeed() float64 { return l.strokeSpeed(l.Strokes - 1) }

// AngularSweeps is the rotation-stage analogue: the assembly oscillates in
// yaw about the base pose with a per-sweep peak angular speed ramp.
type AngularSweeps struct {
	Base geom.Pose
	// Axis is the stage rotation axis in the world frame (unit).
	Axis geom.Vec3
	// HalfAngle is the sweep amplitude, radians.
	HalfAngle float64
	// StartSpeed and SpeedStep ramp the per-sweep peak angular speed
	// (rad/s).
	StartSpeed, SpeedStep float64
	Sweeps                int
	Dwell                 time.Duration
}

func (a AngularSweeps) sweepSpeed(k int) float64 {
	return a.StartSpeed + float64(k)*a.SpeedStep
}

// sweepDur mirrors LinearStrokes.strokeDur: peak angular speed πA/T.
func (a AngularSweeps) sweepDur(k int) time.Duration {
	peak := a.sweepSpeed(k)
	if peak <= 0 {
		return time.Second
	}
	return time.Duration(math.Pi * a.HalfAngle / peak * float64(time.Second))
}

// Duration implements Program.
func (a AngularSweeps) Duration() time.Duration {
	var d time.Duration
	for k := 0; k < a.Sweeps; k++ {
		d += a.sweepDur(k) + a.Dwell
	}
	return d
}

// Pose implements Program.
func (a AngularSweeps) Pose(t time.Duration) geom.Pose {
	axis := a.Axis.Unit()
	dir := 1.0
	angleAt := func(frac float64) float64 {
		return -math.Cos(math.Pi*frac) * a.HalfAngle * dir
	}
	for k := 0; k < a.Sweeps; k++ {
		sd := a.sweepDur(k)
		if t < sd {
			ang := angleAt(float64(t) / float64(sd))
			return geom.NewPose(geom.QuatFromAxisAngle(axis, ang).Mul(a.Base.Rot), a.Base.Trans)
		}
		t -= sd
		if t < a.Dwell {
			return geom.NewPose(geom.QuatFromAxisAngle(axis, a.HalfAngle*dir).Mul(a.Base.Rot), a.Base.Trans)
		}
		t -= a.Dwell
		dir = -dir
	}
	return geom.NewPose(geom.QuatFromAxisAngle(axis, -a.HalfAngle*dir).Mul(a.Base.Rot), a.Base.Trans)
}

// PeakSpeed returns the fastest commanded sweep speed (rad/s).
func (a AngularSweeps) PeakSpeed() float64 { return a.sweepSpeed(a.Sweeps - 1) }

// HandHeld simulates the §5.3 user study: the assembly held in hands and
// moved freely in front of the TX with simultaneous linear and angular
// motion. Linear and angular speeds follow smoothed random processes whose
// intensity ramps over the program so a single run explores the whole
// speed range of Fig 14.
type HandHeld struct {
	Base geom.Pose
	// MaxLinear and MaxAngular bound the speed ramp targets (m/s, rad/s).
	MaxLinear, MaxAngular float64
	// Len is the program duration.
	Len time.Duration
	// Seed fixes the random motion.
	Seed int64

	once    bool
	samples []geom.Pose
	step    time.Duration
}

// Duration implements Program.
func (h *HandHeld) Duration() time.Duration { return h.Len }

// Pose implements Program. The trajectory is synthesized lazily at 5 ms
// resolution and interpolated.
func (h *HandHeld) Pose(t time.Duration) geom.Pose {
	if !h.once {
		h.synthesize()
	}
	if t < 0 {
		t = 0
	}
	idx := int(t / h.step)
	if idx >= len(h.samples)-1 {
		return h.samples[len(h.samples)-1]
	}
	frac := float64(t-time.Duration(idx)*h.step) / float64(h.step)
	return h.samples[idx].Interpolate(h.samples[idx+1], frac)
}

func (h *HandHeld) synthesize() {
	h.once = true
	h.step = 5 * time.Millisecond
	n := int(h.Len/h.step) + 2
	rng := rand.New(rand.NewSource(h.Seed))
	dt := h.step.Seconds()

	pos := h.Base.Trans
	rot := h.Base.Rot
	var vel geom.Vec3
	var angVel geom.Vec3

	h.samples = make([]geom.Pose, 0, n)
	for i := 0; i < n; i++ {
		h.samples = append(h.samples, geom.NewPose(rot, pos))

		// Intensity ramps 0→1 over the program.
		ramp := float64(i) / float64(n)
		targetLin := h.MaxLinear * ramp
		targetAng := h.MaxAngular * ramp

		// OU velocity processes pulled toward the ramped magnitudes.
		velSigma := targetLin * 0.8
		angSigma := targetAng * 0.8
		vel = vel.Scale(1 - dt/0.4).Add(geom.V(
			velSigma*math.Sqrt(dt)*rng.NormFloat64(),
			velSigma*math.Sqrt(dt)*rng.NormFloat64(),
			velSigma*math.Sqrt(dt)*rng.NormFloat64(),
		))
		// Roll (about the vertical beam axis, Z) is damped: people
		// pitch and yaw their heads far more than they roll, and roll
		// barely stresses the link anyway.
		angVel = angVel.Scale(1 - dt/0.35).Add(geom.V(
			angSigma*math.Sqrt(dt)*rng.NormFloat64(),
			angSigma*math.Sqrt(dt)*rng.NormFloat64(),
			0.4*angSigma*math.Sqrt(dt)*rng.NormFloat64(),
		))

		// Keep the assembly within arm's reach of the base point.
		pull := h.Base.Trans.Sub(pos).Scale(dt * 2)
		pos = pos.Add(vel.Scale(dt)).Add(pull)
		if w := angVel.Norm(); w > 1e-12 {
			rot = geom.QuatFromAxisAngle(angVel, w*dt).Mul(rot).Normalize()
		}
		// And roughly facing up (the collimator must keep line of
		// sight to the ceiling): damp attitude back toward base.
		rot = rot.Slerp(h.Base.Rot, dt*0.8)
	}
}

// TracePlayback replays a recorded (or synthesized) viewing trace,
// re-homed so the trace's first pose lands on Base.
type TracePlayback struct {
	Base geom.Pose
	T    trace.Trace

	once syncptr
}

type syncptr struct {
	done bool
	tf   geom.Pose
}

// Duration implements Program.
func (p *TracePlayback) Duration() time.Duration { return p.T.Duration() }

// Pose implements Program.
func (p *TracePlayback) Pose(t time.Duration) geom.Pose {
	if !p.once.done {
		p.once.done = true
		if len(p.T.Samples) > 0 {
			// tf maps trace coordinates onto the rig: Base ∘ first⁻¹.
			p.once.tf = p.Base.Compose(p.T.Samples[0].Pose.Inverse())
		} else {
			p.once.tf = geom.PoseIdentity()
		}
	}
	return p.once.tf.Compose(p.T.PoseAt(t))
}
