package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"cyclops/internal/geom"
)

func degPerSec(rad float64) float64 { return rad * 180 / math.Pi }

func TestGenerateShape(t *testing.T) {
	tr := Generate(1, 0, time.Minute, geom.V(0.35, 0.25, 1.0))
	if got := len(tr.Samples); got != 6001 {
		t.Errorf("1-min trace has %d samples, want 6001 at 10 ms", got)
	}
	if tr.Duration() != time.Minute {
		t.Errorf("duration = %v", tr.Duration())
	}
}

func TestFig3SpeedCalibration(t *testing.T) {
	// The Fig 3 claim: during normal use, angular ≤ ~19 deg/s and linear
	// ≤ ~14 cm/s. We check the 95th percentile across a sample of traces
	// sits in that regime, with tails above but bounded.
	var p95Lin, p95Ang, maxLin, maxAng float64
	const n = 25
	for i := 0; i < n; i++ {
		s := Generate(7, i, time.Minute, geom.V(0.35, 0.25, 1.0)).Stats()
		p95Lin += s.P95Linear
		p95Ang += s.P95Angular
		maxLin = math.Max(maxLin, s.MaxLinear)
		maxAng = math.Max(maxAng, s.MaxAngular)
	}
	p95Lin /= n
	p95Ang /= n

	if got := p95Lin * 100; got < 2 || got > 16 {
		t.Errorf("mean P95 linear speed = %.1f cm/s, want ≲14", got)
	}
	if got := degPerSec(p95Ang); got < 5 || got > 24 {
		t.Errorf("mean P95 angular speed = %.1f deg/s, want ≲19", got)
	}
	// Tails exist (saccades) but stay within plausible head motion.
	if degPerSec(maxAng) < 20 {
		t.Errorf("no angular tail: max %.1f deg/s", degPerSec(maxAng))
	}
	if degPerSec(maxAng) > 200 || maxLin > 1.0 {
		t.Errorf("implausible speeds: %.1f deg/s, %.2f m/s", degPerSec(maxAng), maxLin)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(3, 5, 10*time.Second, geom.Zero)
	b := Generate(3, 5, 10*time.Second, geom.Zero)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i].Pose != b.Samples[i].Pose {
			t.Fatalf("sample %d differs", i)
		}
	}
	// Different indices differ.
	c := Generate(3, 6, 10*time.Second, geom.Zero)
	if a.Samples[500].Pose == c.Samples[500].Pose {
		t.Error("different trace indices identical")
	}
}

func TestPoseAtInterpolation(t *testing.T) {
	tr := Generate(4, 0, time.Second, geom.Zero)
	// Exactly on a sample.
	if got := tr.PoseAt(100 * time.Millisecond); got != tr.Samples[10].Pose {
		t.Error("PoseAt on-sample mismatch")
	}
	// Midpoint lies between neighbors.
	mid := tr.PoseAt(105 * time.Millisecond)
	l1, _ := tr.Samples[10].Pose.Delta(mid)
	l2, _ := mid.Delta(tr.Samples[11].Pose)
	full, _ := tr.Samples[10].Pose.Delta(tr.Samples[11].Pose)
	if math.Abs(l1+l2-full) > 1e-9 {
		t.Errorf("interpolated pose not on segment: %v + %v vs %v", l1, l2, full)
	}
	// Clamping.
	if got := tr.PoseAt(-time.Second); got != tr.Samples[0].Pose {
		t.Error("no clamp below")
	}
	if got := tr.PoseAt(time.Hour); got != tr.Samples[len(tr.Samples)-1].Pose {
		t.Error("no clamp above")
	}
}

func TestPoseAtEmpty(t *testing.T) {
	var tr Trace
	if got := tr.PoseAt(0); got != geom.PoseIdentity() {
		t.Error("empty trace should return identity")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(5, 1, 2*time.Second, geom.V(0.1, 0.2, 1.0))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(tr.Samples) {
		t.Fatalf("lost samples: %d vs %d", len(back.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		lin, ang := tr.Samples[i].Pose.Delta(back.Samples[i].Pose)
		if lin > 1e-6 || ang > 1e-6 {
			t.Fatalf("sample %d drifted: %v m, %v rad", i, lin, ang)
		}
		if tr.Samples[i].At != back.Samples[i].At {
			t.Fatalf("sample %d time drifted", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("t_ms,x\n"), "x"); err == nil {
		t.Error("header-only CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("h\n1,2\n"), "x"); err == nil {
		t.Error("wrong-width CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader(
		"t_ms,x,y,z,yaw,pitch,roll\n0,a,0,0,0,0,0\n"), "x"); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestEulerRoundTrip(t *testing.T) {
	for _, angles := range [][3]float64{
		{0, 0, 0}, {0.5, 0.2, -0.3}, {-1.2, 0.4, 0.1}, {2.8, -0.6, 0.5},
	} {
		q := geom.QuatFromEuler(angles[0], angles[1], angles[2])
		y, p, r := eulerFromQuat(q)
		q2 := geom.QuatFromEuler(y, p, r)
		if ang := q.AngleTo(q2); ang > 1e-6 {
			t.Errorf("euler roundtrip for %v drifted %v rad", angles, ang)
		}
	}
}

func TestDatasetSize(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus in -short mode")
	}
	ds := Dataset(11, geom.V(0.35, 0.25, 1.0))
	if len(ds) != 500 {
		t.Fatalf("dataset has %d traces, want 500", len(ds))
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, tr := range ds {
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %s", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestDatasetWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("500-trace corpus ×3 in -short mode")
	}
	origin := geom.V(0.35, 0.25, 1.0)
	serial := DatasetWorkers(11, origin, 1)
	for _, workers := range []int{4, 8} {
		got := DatasetWorkers(11, origin, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: corpus differs from serial generation", workers)
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	var tr Trace
	s := tr.Stats()
	if s.MaxLinear != 0 || s.MaxAngular != 0 {
		t.Error("empty trace stats nonzero")
	}
}

func TestPercentileOrdering(t *testing.T) {
	tr := Generate(6, 2, 30*time.Second, geom.Zero)
	s := tr.Stats()
	if s.P95Linear > s.MaxLinear || s.P95Angular > s.MaxAngular {
		t.Error("P95 exceeds max")
	}
}
