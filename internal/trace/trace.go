// Package trace provides head-motion traces for the §5.4 evaluation: 500
// one-minute viewing sessions sampled every 10 ms, as in the public 360°
// video dataset of Lo et al. [47] the paper uses.
//
// The original dataset is not redistributable here, so the generator
// synthesizes traces whose speed statistics are calibrated to the paper's
// own characterization (Fig 3): during normal use, angular speed stays
// below ≈19 deg/s and linear speed below ≈14 cm/s, with occasional faster
// excursions (video-driven saccades, posture shifts) in the distribution
// tail. Traces are deterministic in (seed, index), and the package can
// also load externally supplied traces from CSV in the same layout as the
// public dataset (time, x, y, z, yaw, pitch, roll).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/parallel"
	"cyclops/internal/xrand"
)

// SampleInterval is the dataset's report period.
const SampleInterval = 10 * time.Millisecond

// Sample is one trace row: a head pose at a time offset.
type Sample struct {
	At   time.Duration
	Pose geom.Pose
}

// Trace is one viewing session.
type Trace struct {
	ID      string
	Samples []Sample
}

// Duration returns the trace length.
func (t Trace) Duration() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].At
}

// PoseAt returns the head pose at time at, interpolating between samples
// (slerp for orientation, lerp for position) and clamping beyond the ends.
func (t Trace) PoseAt(at time.Duration) geom.Pose {
	n := len(t.Samples)
	if n == 0 {
		return geom.PoseIdentity()
	}
	if at <= t.Samples[0].At {
		return t.Samples[0].Pose
	}
	if at >= t.Samples[n-1].At {
		return t.Samples[n-1].Pose
	}
	// Samples are uniformly spaced; index directly.
	idx := int(at / SampleInterval)
	if idx >= n-1 {
		idx = n - 2
	}
	a, b := t.Samples[idx], t.Samples[idx+1]
	span := b.At - a.At
	if span <= 0 {
		return a.Pose
	}
	frac := float64(at-a.At) / float64(span)
	return a.Pose.Interpolate(b.Pose, frac)
}

// SpeedStats summarizes a trace's speed distribution.
type SpeedStats struct {
	MaxLinear  float64 // m/s
	MaxAngular float64 // rad/s
	P95Linear  float64
	P95Angular float64
}

// Stats computes per-sample speeds across the trace.
func (t Trace) Stats() SpeedStats {
	var lin, ang []float64
	for i := 1; i < len(t.Samples); i++ {
		dt := (t.Samples[i].At - t.Samples[i-1].At).Seconds()
		if dt <= 0 {
			continue
		}
		l, a := t.Samples[i-1].Pose.Delta(t.Samples[i].Pose)
		lin = append(lin, l/dt)
		ang = append(ang, a/dt)
	}
	return SpeedStats{
		MaxLinear:  maxOf(lin),
		MaxAngular: maxOf(ang),
		P95Linear:  percentile(lin, 0.95),
		P95Angular: percentile(ang, 0.95),
	}
}

// Speeds returns the flat per-sample speed series (linear m/s, angular
// rad/s) — the raw material of the Fig 3 CDFs.
func (t Trace) Speeds() (lin, ang []float64) {
	for i := 1; i < len(t.Samples); i++ {
		dt := (t.Samples[i].At - t.Samples[i-1].At).Seconds()
		if dt <= 0 {
			continue
		}
		l, a := t.Samples[i-1].Pose.Delta(t.Samples[i].Pose)
		lin = append(lin, l/dt)
		ang = append(ang, a/dt)
	}
	return lin, ang
}

func maxOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	// Insertion-free selection via sort.
	sortFloats(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func sortFloats(s []float64) {
	// Small helper to avoid importing sort for one call site... but
	// clarity wins: use a simple heapless quicksort via sort.Float64s.
	quick(s, 0, len(s)-1)
}

func quick(s []float64, lo, hi int) {
	for lo < hi {
		p := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quick(s, lo, j)
			lo = i
		} else {
			quick(s, i, hi)
			hi = j
		}
	}
}

// WriteCSV emits the trace in the dataset layout:
// t_ms,x,y,z,yaw,pitch,roll (angles in radians).
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"t_ms", "x", "y", "z", "yaw", "pitch", "roll"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		yaw, pitch, roll := eulerFromQuat(s.Pose.Rot)
		rec := []string{
			strconv.FormatInt(int64(s.At/time.Millisecond), 10),
			fmtF(s.Pose.Trans.X), fmtF(s.Pose.Trans.Y), fmtF(s.Pose.Trans.Z),
			fmtF(yaw), fmtF(pitch), fmtF(roll),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

// ReadCSV parses a trace written by WriteCSV (or the public dataset
// converted to the same layout).
func ReadCSV(r io.Reader, id string) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	if len(rows) < 2 {
		return Trace{}, fmt.Errorf("trace: no data rows")
	}
	tr := Trace{ID: id}
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return Trace{}, fmt.Errorf("trace: row %d has %d fields, want 7", i+1, len(row))
		}
		var f [7]float64
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return Trace{}, fmt.Errorf("trace: row %d field %d: %w", i+1, j, err)
			}
			f[j] = v
		}
		tr.Samples = append(tr.Samples, Sample{
			At: time.Duration(f[0]) * time.Millisecond,
			Pose: geom.NewPose(
				geom.QuatFromEuler(f[4], f[5], f[6]),
				geom.V(f[1], f[2], f[3]),
			),
		})
	}
	return tr, nil
}

// eulerFromQuat extracts yaw (about +Y), pitch (about +X), roll (about +Z)
// matching geom.QuatFromEuler's composition order.
func eulerFromQuat(q geom.Quat) (yaw, pitch, roll float64) {
	m := q.Mat().M
	// R = Ry(yaw)·Rx(pitch)·Rz(roll); derive from matrix entries.
	pitch = math.Asin(clamp1(-m[1][2]))
	if math.Abs(math.Cos(pitch)) > 1e-9 {
		yaw = math.Atan2(m[0][2], m[2][2])
		roll = math.Atan2(m[1][0], m[1][1])
	} else {
		yaw = math.Atan2(-m[2][0], m[0][0])
		roll = 0
	}
	return yaw, pitch, roll
}

func clamp1(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Generate synthesizes one viewing trace. The head model combines:
//
//   - yaw: an Ornstein–Uhlenbeck angular velocity (video-driven scanning)
//     with occasional saccades toward new regions of interest;
//   - pitch/roll: smaller OU wander around level;
//   - position: slow OU sway around the seated/standing point.
//
// Parameters are calibrated so the per-sample speed distribution matches
// Fig 3: ~95 % of angular speeds below ≈19 deg/s and linear below
// ≈14 cm/s, with a tail reaching a few times that during saccades.
func Generate(seed int64, index int, length time.Duration, origin geom.Vec3) Trace {
	return GenerateInto(seed, index, length, origin, nil)
}

// genBlock is the SoA block width of the synthesis loop: pass 1 runs the
// state recurrence (RNG draws and OU updates) for a block of samples,
// recording the per-sample Euler angles and positions into stack-resident
// arrays; pass 2 builds each pose and stores it straight into the sample
// buffer (the same per-element call chain as geom.PosesFromEulerBatch,
// minus a staging array that cost a 64-byte store+load per sample). The
// split keeps the serially-dependent recurrence and the independent pose
// construction in separate tight loops over L1-resident data. 256 samples
// is ~12 KB of block state. The width is purely a restructuring knob: the
// per-sample operation sequence is identical at any block size
// (TestGenerateMatchesReference pins the bytes).
const genBlock = 256

// GenerateInto is Generate with a caller-owned sample buffer: when
// cap(buf) is large enough the returned trace aliases buf instead of
// allocating. The corpus engine recycles one buffer per shard through
// this (a ~400 KB make plus its clear, per trace, otherwise). The
// synthesized samples are byte-identical to Generate's
// (TestGenerateMatchesReference).
func GenerateInto(seed int64, index int, length time.Duration, origin geom.Vec3, buf []Sample) Trace {
	// xrand replicates rand.New(rand.NewSource(...)) bit for bit with
	// concrete types, so the draws inline into this loop (see the xrand
	// package doc); the synthesized corpus is unchanged byte for byte.
	rng := xrand.New(seed*1_000_003 + int64(index))
	n := int(length/SampleInterval) + 1
	dt := SampleInterval.Seconds()

	// OU processes: dv = -v/τ·dt + σ·√dt·N
	const (
		tauYawRate = 0.9  // s
		sigYawRate = 0.09 // rad/s per √s
		tauPitch   = 0.7
		sigPitch   = 0.05
		tauPos     = 1.8
		sigPos     = 0.020 // m/s per √s
		saccadeHz  = 0.25  // expected saccades per second
	)

	// Loop-invariant products, hoisted with their original left-to-right
	// association so every per-step float is bit-identical to computing
	// them inline (a*b*c ≡ (a*b)*c; the hoisted factor is exactly a*b).
	sqrtDt := math.Sqrt(dt)
	var (
		saccadeProb = saccadeHz * dt
		shiftProb   = 0.18 * dt
		yawNoise    = sigYawRate * sqrtDt
		pitchNoise  = sigPitch * sqrtDt
		rollNoise   = 0.5 * sigPitch * sqrtDt
		posNoise    = sigPos * sqrtDt
		posNoiseZ   = 0.5 * sigPos * sqrtDt
		pullBack    = dt * 0.8
		velDecay    = -dt / tauPos
	)

	var yaw, pitch, roll float64
	var yawRate, pitchRate, rollRate float64
	pos := origin
	vel := geom.Vec3{}
	var saccadeLeft int
	var saccadeRate float64
	// Posture shifts: brief whole-body translations (leaning in,
	// re-seating) that produce the linear-speed tail past ~14 cm/s
	// responsible for the §5.4 off-slots.
	var shiftLeft int
	var shiftVel geom.Vec3
	var n6 [6]float64

	samples := buf
	if cap(samples) >= n {
		samples = samples[:n]
	} else {
		samples = make([]Sample, n)
	}
	tr := Trace{ID: fmt.Sprintf("synthetic-%d", index), Samples: samples}

	// Per-block SoA state: sample i's pose inputs are the state values
	// *before* iteration i's updates, so pass 1 records them and pass 2
	// builds the poses — the same scalar operations in the same order per
	// sample, just regrouped across independent samples.
	var yawB, pitchB, rollB [genBlock]float64
	var posB [genBlock]geom.Vec3

	at := time.Duration(0)
	for base := 0; base < n; base += genBlock {
		b := n - base
		if b > genBlock {
			b = genBlock
		}
		for k := 0; k < b; k++ {
			yawB[k], pitchB[k], rollB[k] = yaw, pitch, roll
			posB[k] = pos

			// Saccade bursts: brief, faster re-orientations.
			if saccadeLeft == 0 && rng.Float64() < saccadeProb {
				saccadeLeft = 20 + rng.Intn(30) // 200–500 ms
				// Mostly 9–23 deg/s re-orientations (the Fig 3
				// distribution's upper region); one in six is a fast
				// glance at 30–60 deg/s — the tail that makes the
				// §5.4 off-slots.
				if rng.Float64() < 1.0/6 {
					saccadeRate = (rng.Float64()*0.5 + 0.5) * sign(rng)
				} else {
					saccadeRate = (rng.Float64()*0.25 + 0.15) * sign(rng)
				}
			}
			effYawRate := yawRate
			if saccadeLeft > 0 {
				saccadeLeft--
				effYawRate += saccadeRate
			}

			// Posture shifts: ~every 6 s, a 300–600 ms translation burst.
			if shiftLeft == 0 && rng.Float64() < shiftProb {
				shiftLeft = 30 + rng.Intn(30)
				dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), 0.3*rng.NormFloat64())
				if !dir.IsZero() {
					// Mostly gentle leans straddling the ~12 cm/s
					// drift limit (brief, scattered outages); a
					// quarter are decisive re-seats well past it
					// (clustered outages).
					speed := 0.07 + rng.Float64()*0.13
					if rng.Float64() < 0.25 {
						speed = 0.15 + rng.Float64()*0.20
					}
					shiftVel = dir.Unit().Scale(speed)
				}
			}
			effVel := vel
			if shiftLeft > 0 {
				shiftLeft--
				effVel = effVel.Add(shiftVel)
			}

			yaw += effYawRate * dt
			pitch += pitchRate * dt
			roll += rollRate * dt
			// Keep pitch/roll near level (people don't hold tilted heads).
			pitch -= pitch * dt / 2.5
			roll -= roll * dt / 1.5

			// The six OU noise draws are consecutive in the stream (nothing
			// draws between the rate updates and the velocity noise), so one
			// batched call replaces six — same values in the same order.
			rng.Norm6(&n6)
			yawRate += -yawRate*dt/tauYawRate + yawNoise*n6[0]
			pitchRate += -pitchRate*dt/tauPitch + pitchNoise*n6[1]
			rollRate += -rollRate*dt/tauPitch + rollNoise*n6[2]

			pos = pos.Add(effVel.Scale(dt))
			// Pull back toward the origin (seated viewer sway).
			vel = vel.Add(origin.Sub(pos).Scale(pullBack))
			vel = vel.Add(vel.Scale(velDecay)).Add(geom.V(
				posNoise*n6[3],
				posNoise*n6[4],
				posNoiseZ*n6[5],
			))
		}

		out := samples[base : base+b : base+b]
		yb, pb, rb, ps := yawB[:b], pitchB[:b], rollB[:b], posB[:b]
		for k := range out {
			out[k] = Sample{At: at, Pose: geom.NewPose(geom.QuatFromEuler(yb[k], pb[k], rb[k]), ps[k])}
			at += SampleInterval
		}
	}
	return tr
}

func sign(rng *xrand.Rand) float64 {
	if rng.Float64() < 0.5 {
		return -1
	}
	return 1
}

// DatasetTraces is the §5.4 corpus size: 50 viewers × 10 one-minute
// videos.
const DatasetTraces = 500

// Source is a streaming corpus: trace i is Generate(Seed, i, Length,
// origin), produced on demand. It satisfies sim.CorpusSource, so a corpus
// of any size runs through the sharded engine without ever being held in
// memory. Len and At are pure functions of the fields — safe for
// concurrent use and for re-generation on resumed runs.
type Source struct {
	// Seed derives every trace's RNG (with the index).
	Seed int64
	// N is the corpus size.
	N int
	// Length is each trace's duration.
	Length time.Duration
	// Origin is the head position every trace wanders around.
	Origin geom.Vec3
	// OriginAt, when non-nil, gives trace i its own origin (the arena's
	// floor grid) and Origin is ignored. Must be pure in i.
	OriginAt func(i int) geom.Vec3
}

// Len returns the corpus size.
func (s Source) Len() int { return s.N }

// At generates trace i.
func (s Source) At(i int) Trace {
	return s.AtInto(i, nil)
}

// AtInto generates trace i into a caller-owned sample buffer (see
// GenerateInto). The corpus engine uses this to recycle one buffer per
// shard instead of allocating per trace; the samples are byte-identical
// to At's.
func (s Source) AtInto(i int, buf []Sample) Trace {
	origin := s.Origin
	if s.OriginAt != nil {
		origin = s.OriginAt(i)
	}
	return GenerateInto(s.Seed, i, s.Length, origin, buf)
}

// Dataset generates the full 500-trace corpus the §5.4 evaluation uses.
// Each trace derives its RNG from (seed, index) alone, so any worker
// count yields the identical corpus.
//
// Deprecated: construct a Source (N: DatasetTraces, Length: time.Minute)
// and stream it through sim.RunCorpus — or sim.Materialize it when a
// materialized slice is genuinely needed.
func Dataset(seed int64, origin geom.Vec3) []Trace {
	return DatasetWorkers(seed, origin, 0)
}

// DatasetWorkers is Dataset with an explicit worker count (≤ 0 means the
// parallel package default, 1 forces the serial path).
//
// Deprecated: see Dataset.
func DatasetWorkers(seed int64, origin geom.Vec3, workers int) []Trace {
	src := Source{Seed: seed, N: DatasetTraces, Length: time.Minute, Origin: origin}
	return parallel.Map(src.Len(), workers, src.At)
}
