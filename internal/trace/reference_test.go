package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cyclops/internal/geom"
)

// generateReference is the trace synthesizer as originally written: one
// straight-line per-sample loop over math/rand, scalar NormFloat64 draws,
// and scalar pose construction. It exists only as the bit-identity oracle
// for the optimized pipeline behind Generate (the xrand replica, the
// batched Norm6 draws, the blocked SoA pose pass) — every divergence in
// any of those layers shows up here as a byte difference.
func generateReference(seed int64, index int, length time.Duration, origin geom.Vec3) Trace {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(index)))
	n := int(length/SampleInterval) + 1
	dt := SampleInterval.Seconds()

	const (
		tauYawRate = 0.9
		sigYawRate = 0.09
		tauPitch   = 0.7
		sigPitch   = 0.05
		tauPos     = 1.8
		sigPos     = 0.020
		saccadeHz  = 0.25
	)

	sqrtDt := math.Sqrt(dt)
	var (
		saccadeProb = saccadeHz * dt
		shiftProb   = 0.18 * dt
		yawNoise    = sigYawRate * sqrtDt
		pitchNoise  = sigPitch * sqrtDt
		rollNoise   = 0.5 * sigPitch * sqrtDt
		posNoise    = sigPos * sqrtDt
		posNoiseZ   = 0.5 * sigPos * sqrtDt
		pullBack    = dt * 0.8
		velDecay    = -dt / tauPos
	)

	refSign := func() float64 {
		if rng.Float64() < 0.5 {
			return -1
		}
		return 1
	}

	var yaw, pitch, roll float64
	var yawRate, pitchRate, rollRate float64
	pos := origin
	vel := geom.Vec3{}
	var saccadeLeft int
	var saccadeRate float64
	var shiftLeft int
	var shiftVel geom.Vec3

	tr := Trace{ID: "", Samples: make([]Sample, n)}
	for i, at := 0, time.Duration(0); i < n; i, at = i+1, at+SampleInterval {
		tr.Samples[i] = Sample{
			At:   at,
			Pose: geom.NewPose(geom.QuatFromEuler(yaw, pitch, roll), pos),
		}

		if saccadeLeft == 0 && rng.Float64() < saccadeProb {
			saccadeLeft = 20 + rng.Intn(30)
			if rng.Float64() < 1.0/6 {
				saccadeRate = (rng.Float64()*0.5 + 0.5) * refSign()
			} else {
				saccadeRate = (rng.Float64()*0.25 + 0.15) * refSign()
			}
		}
		effYawRate := yawRate
		if saccadeLeft > 0 {
			saccadeLeft--
			effYawRate += saccadeRate
		}

		if shiftLeft == 0 && rng.Float64() < shiftProb {
			shiftLeft = 30 + rng.Intn(30)
			dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), 0.3*rng.NormFloat64())
			if !dir.IsZero() {
				speed := 0.07 + rng.Float64()*0.13
				if rng.Float64() < 0.25 {
					speed = 0.15 + rng.Float64()*0.20
				}
				shiftVel = dir.Unit().Scale(speed)
			}
		}
		effVel := vel
		if shiftLeft > 0 {
			shiftLeft--
			effVel = effVel.Add(shiftVel)
		}

		yaw += effYawRate * dt
		pitch += pitchRate * dt
		roll += rollRate * dt
		pitch -= pitch * dt / 2.5
		roll -= roll * dt / 1.5

		yawRate += -yawRate*dt/tauYawRate + yawNoise*rng.NormFloat64()
		pitchRate += -pitchRate*dt/tauPitch + pitchNoise*rng.NormFloat64()
		rollRate += -rollRate*dt/tauPitch + rollNoise*rng.NormFloat64()

		pos = pos.Add(effVel.Scale(dt))
		vel = vel.Add(origin.Sub(pos).Scale(pullBack))
		vel = vel.Add(vel.Scale(velDecay)).Add(geom.V(
			posNoise*rng.NormFloat64(),
			posNoise*rng.NormFloat64(),
			posNoiseZ*rng.NormFloat64(),
		))
	}
	return tr
}

func samplesBitEqual(a, b []Sample) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range a {
		if a[i].At != b[i].At ||
			!eq(a[i].Pose.Rot.W, b[i].Pose.Rot.W) || !eq(a[i].Pose.Rot.X, b[i].Pose.Rot.X) ||
			!eq(a[i].Pose.Rot.Y, b[i].Pose.Rot.Y) || !eq(a[i].Pose.Rot.Z, b[i].Pose.Rot.Z) ||
			!eq(a[i].Pose.Trans.X, b[i].Pose.Trans.X) || !eq(a[i].Pose.Trans.Y, b[i].Pose.Trans.Y) ||
			!eq(a[i].Pose.Trans.Z, b[i].Pose.Trans.Z) {
			return i, false
		}
	}
	return 0, true
}

// TestGenerateMatchesReference pins the optimized synthesis pipeline to
// the original math/rand scalar implementation, byte for byte, across
// full-length traces. Trace lengths straddle the SoA block boundary
// (n = 6001 = 46·128 + 113 exercises a partial tail block; the short
// lengths cover n < block and n ≡ 0 mod block).
func TestGenerateMatchesReference(t *testing.T) {
	origin := geom.V(0.1, -1.4, 0.3)
	cases := []struct {
		seed   int64
		index  int
		length time.Duration
	}{
		{3, 0, time.Minute},
		{3, 17, time.Minute},
		{700, 499, time.Minute},
		{-9, 5, 900 * time.Millisecond},            // n=91 < genBlock
		{42, 1, (2*genBlock - 1) * SampleInterval}, // n=2·genBlock exactly
		{42, 2, (genBlock - 1) * SampleInterval},   // n=genBlock exactly
	}
	for _, c := range cases {
		want := generateReference(c.seed, c.index, c.length, origin)
		got := Generate(c.seed, c.index, c.length, origin)
		if i, ok := samplesBitEqual(got.Samples, want.Samples); !ok {
			t.Errorf("seed=%d index=%d len=%v: sample %d diverges: got %+v want %+v",
				c.seed, c.index, c.length, i, got.Samples[i], want.Samples[i])
		}
	}
}

// TestGenerateIntoReuse pins the buffer-reuse contract: a large-enough
// buffer is aliased (no allocation of a fresh sample slice) and the
// samples are byte-identical to a fresh Generate; a too-small buffer is
// abandoned for a fresh allocation.
func TestGenerateIntoReuse(t *testing.T) {
	origin := geom.V(0, -1.5, 0)
	fresh := Generate(5, 3, time.Second, origin)

	buf := make([]Sample, 0, len(fresh.Samples)+7)
	// Poison the buffer: every word must be overwritten.
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = Sample{At: -1, Pose: geom.NewPose(geom.Quat{W: math.NaN()}, geom.V(1e300, 1e300, 1e300))}
	}
	reused := GenerateInto(5, 3, time.Second, origin, buf[:0])
	if &reused.Samples[0] != &buf[0] {
		t.Fatalf("GenerateInto did not alias the provided buffer")
	}
	if i, ok := samplesBitEqual(reused.Samples, fresh.Samples); !ok {
		t.Fatalf("reused-buffer trace diverges at sample %d", i)
	}

	small := make([]Sample, 0, 3)
	grown := GenerateInto(5, 3, time.Second, origin, small)
	if i, ok := samplesBitEqual(grown.Samples, fresh.Samples); !ok {
		t.Fatalf("grown-buffer trace diverges at sample %d", i)
	}
}
