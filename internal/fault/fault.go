// Package fault is the deterministic fault-injection subsystem: it plans
// seeded, reproducible fault windows over a run or a trace and reduces
// them to a per-instant State that the consuming layer (core.Run, the
// chaos slot model in internal/sim) applies through the small injection
// surfaces the device packages expose (plant attenuation, galvo
// hold/range-limit, tracker holdover). The device packages themselves
// stay fault-agnostic: nothing in link, galvo, or vrh imports this
// package or knows a schedule exists.
//
// The fault taxonomy mirrors what takes down a ceiling-to-headset FSO
// link in practice, beyond the headset motion §5.4 models:
//
//   - Occlusion: a hand, arm, or body part crosses the beam. Modeled as a
//     path-attenuation window with linear ramp edges (an obstruction
//     sweeps through a finite beam over a few ms, it does not teleport).
//   - TrackerBlackout: the VRH tracking pipeline drops reports entirely
//     (camera washout, runtime hiccup).
//   - TrackerFreeze: the pipeline keeps publishing but the pose is stale
//     (the Holdover failure mode: fresh timestamps, frozen pose).
//   - GalvoStuck: a mirror servo stops responding; commands are accepted
//     but the mirrors do not move.
//   - GalvoSaturation: a failing driver can no longer reach the full
//     output range; commands clamp to a reduced |voltage| limit.
//   - SolverDiverge: transient pointing-solver divergence (degenerate
//     steering basis, poisoned model state) — the solve attempt fails.
//   - HazeFade: slow environmental attenuation (venue haze, fog-machine
//     output, dust) — a seeded ramp-up/plateau/ramp-down envelope seconds
//     long, vs the milliseconds of an occlusion trapezoid. Overlapping
//     haze windows sum, and the haze total adds to the occlusion maximum:
//     fog in the air and a hand through the beam attenuate independently.
//
// # Determinism contract
//
// Plan is a pure function of (Config, seed, duration): the same inputs
// produce a byte-identical Schedule (pinned by String in the tests), and
// Schedule.At is a pure function of time, so any consumer that walks time
// deterministically stays bit-identical at any worker count.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cyclops/internal/obs"
)

// Kind enumerates the fault classes.
type Kind uint8

const (
	// Occlusion attenuates the optical path (hand/body through the beam).
	Occlusion Kind = iota
	// TrackerBlackout drops tracking reports entirely.
	TrackerBlackout
	// TrackerFreeze re-publishes the last pose with fresh timestamps.
	TrackerFreeze
	// GalvoStuck makes the mirror servos ignore commands.
	GalvoStuck
	// GalvoSaturation clamps commandable voltages to a reduced range.
	GalvoSaturation
	// SolverDiverge makes pointing solves fail for the window.
	SolverDiverge
	// HazeFade is a slow environmental attenuation ramp. New kinds append
	// here: each class seeds its rand stream from the Kind value, so
	// renumbering would reshuffle every pinned schedule.
	HazeFade

	numKinds
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case Occlusion:
		return "occlusion"
	case TrackerBlackout:
		return "tracker-blackout"
	case TrackerFreeze:
		return "tracker-freeze"
	case GalvoStuck:
		return "galvo-stuck"
	case GalvoSaturation:
		return "galvo-saturation"
	case SolverDiverge:
		return "solver-diverge"
	case HazeFade:
		return "haze-fade"
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Window is one fault episode: the Kind is active on [Start, End).
type Window struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration
	// DepthDB is the plateau attenuation of an Occlusion or HazeFade
	// window, dB.
	DepthDB float64
	// Ramp is the attenuation edge time: attenuation ramps linearly from 0
	// to DepthDB over Ramp at the leading edge (and, when RampDown is
	// zero, back down over Ramp at the trailing edge). Zero means a
	// hard-edged obstruction.
	Ramp time.Duration
	// RampDown, when nonzero, is a separate trailing-edge ramp time —
	// haze dissipates slower than it rolls in. Zero keeps the historical
	// symmetric trapezoid (trailing edge uses Ramp).
	RampDown time.Duration
	// Limit is the reduced |voltage| bound of a GalvoSaturation window.
	Limit float64
}

// attenAt evaluates the attenuation envelope at time t (t in [Start, End)):
// a trapezoid with independent leading (Ramp) and trailing (RampDown,
// defaulting to Ramp) edge times.
func (w Window) attenAt(t time.Duration) float64 {
	up, down := w.Ramp, w.RampDown
	if down <= 0 {
		down = up
	}
	if up <= 0 && down <= 0 {
		return w.DepthDB
	}
	frac := 1.0
	if in := t - w.Start; up > 0 && in < up {
		frac = float64(in) / float64(up)
	}
	if out := w.End - t; down > 0 && out < down {
		if f := float64(out) / float64(down); f < frac {
			frac = f
		}
	}
	return w.DepthDB * frac
}

// State is the instantaneous fault condition a consumer applies at one
// simulation instant.
type State struct {
	// AttenDB is the total extra optical path attenuation, dB (0 = clear
	// path): the deepest active occlusion plus the summed haze fades.
	AttenDB float64
	// HazeDB is the environmental (HazeFade) component of AttenDB —
	// consumers that model RF blockage separately subtract it to recover
	// the physical-obstruction component (haze does not block mmWave).
	HazeDB float64
	// TrackerBlackout: the report due now is dropped.
	TrackerBlackout bool
	// TrackerFreeze: the report due now repeats the last pose.
	TrackerFreeze bool
	// GalvoStuck: mirror commands are ignored.
	GalvoStuck bool
	// GalvoSatLimit is the reduced |voltage| bound (0 = full range).
	GalvoSatLimit float64
	// SolverDiverge: pointing solves fail.
	SolverDiverge bool
}

// Any reports whether any fault is active.
func (s State) Any() bool {
	return s.AttenDB != 0 || s.TrackerBlackout || s.TrackerFreeze ||
		s.GalvoStuck || s.GalvoSatLimit != 0 || s.SolverDiverge
}

// Schedule is a planned set of fault windows, sorted by (Start, Kind).
type Schedule struct {
	// Seed is the seed the schedule was planned from; consumers derive
	// their own recovery-jitter streams from it so a run's entire hidden
	// variation still flows from one number.
	Seed    int64
	Windows []Window
}

// Empty reports whether the schedule injects nothing. core.Run treats an
// empty schedule exactly like a nil one: no injection, no supervisor, and
// bit-identical output to a fault-free run.
func (s *Schedule) Empty() bool { return s == nil || len(s.Windows) == 0 }

// At reduces the schedule to the instantaneous fault state at time t.
// Overlapping occlusions take the deepest attenuation, overlapping haze
// fades sum (independent scattering media stack), and the haze total adds
// to the occlusion maximum; overlapping saturations take the tightest
// limit. Every reduction is commutative, so the injected dB sequence is
// invariant under any permutation of the window list.
func (s *Schedule) At(t time.Duration) State {
	var st State
	if s == nil {
		return st
	}
	for i := range s.Windows {
		w := &s.Windows[i]
		if t < w.Start {
			break // sorted by Start: nothing later can be active
		}
		if t >= w.End {
			continue
		}
		switch w.Kind {
		case Occlusion:
			if a := w.attenAt(t); a > st.AttenDB {
				st.AttenDB = a
			}
		case TrackerBlackout:
			st.TrackerBlackout = true
		case TrackerFreeze:
			st.TrackerFreeze = true
		case GalvoStuck:
			st.GalvoStuck = true
		case GalvoSaturation:
			if st.GalvoSatLimit == 0 || w.Limit < st.GalvoSatLimit {
				st.GalvoSatLimit = w.Limit
			}
		case SolverDiverge:
			st.SolverDiverge = true
		case HazeFade:
			st.HazeDB += w.attenAt(t)
		}
	}
	st.AttenDB += st.HazeDB
	return st
}

// String renders the schedule one window per line — the canonical form the
// determinism tests pin byte for byte.
func (s *Schedule) String() string {
	if s.Empty() {
		return "fault schedule: empty\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault schedule (seed %d, %d windows):\n", s.Seed, len(s.Windows))
	for _, w := range s.Windows {
		fmt.Fprintf(&b, "  %-16s %v-%v", w.Kind, w.Start, w.End)
		if w.Kind == Occlusion {
			fmt.Fprintf(&b, " depth %.1fdB ramp %v", w.DepthDB, w.Ramp)
		}
		if w.Kind == HazeFade {
			fmt.Fprintf(&b, " depth %.1fdB ramp %v/%v", w.DepthDB, w.Ramp, w.RampDown)
		}
		if w.Kind == GalvoSaturation {
			fmt.Fprintf(&b, " limit %.2fV", w.Limit)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ClassConfig shapes one fault class: a mean event rate and a uniform
// duration range. PerMin <= 0 disables the class.
type ClassConfig struct {
	// PerMin is the mean event rate, episodes per minute (exponential
	// inter-arrivals).
	PerMin float64
	// MinDur and MaxDur bound the uniform episode duration.
	MinDur, MaxDur time.Duration
}

// Config parameterizes Plan: one ClassConfig per fault class plus the
// class-specific shape parameters.
type Config struct {
	Occlusion ClassConfig
	// OcclusionDepthDB bounds the uniform per-episode plateau attenuation.
	OcclusionDepthDB [2]float64
	// OcclusionRamp is the obstruction edge time (see Window.Ramp).
	OcclusionRamp time.Duration

	Blackout   ClassConfig
	Freeze     ClassConfig
	Stuck      ClassConfig
	Saturation ClassConfig
	// SaturationLimit is the reduced |voltage| bound during saturation.
	SaturationLimit float64
	Diverge         ClassConfig

	Haze ClassConfig
	// HazeDepthDB bounds the uniform per-episode plateau attenuation of a
	// haze fade.
	HazeDepthDB [2]float64
	// HazeRampUp and HazeRampDown bound the uniform per-episode leading
	// and trailing edge times (haze clears slower than it rolls in).
	HazeRampUp   [2]time.Duration
	HazeRampDown [2]time.Duration
}

// DefaultConfig is a moderately hostile mix of every class — the
// cyclops-sim -chaos demo schedule. Rates are deliberately far above any
// plausible deployment so a minute of run exercises every recovery path;
// occlusions are rarer than the rest because each one costs its window
// plus the SFP's 3 s re-lock.
func DefaultConfig() Config {
	return Config{
		Occlusion:        ClassConfig{PerMin: 3, MinDur: 100 * time.Millisecond, MaxDur: 400 * time.Millisecond},
		OcclusionDepthDB: [2]float64{25, 45},
		OcclusionRamp:    10 * time.Millisecond,
		Blackout:         ClassConfig{PerMin: 4, MinDur: 50 * time.Millisecond, MaxDur: 150 * time.Millisecond},
		Freeze:           ClassConfig{PerMin: 2, MinDur: 50 * time.Millisecond, MaxDur: 150 * time.Millisecond},
		Stuck:            ClassConfig{PerMin: 1, MinDur: 100 * time.Millisecond, MaxDur: 300 * time.Millisecond},
		Saturation:       ClassConfig{PerMin: 1, MinDur: 200 * time.Millisecond, MaxDur: 500 * time.Millisecond},
		SaturationLimit:  0.5,
		Diverge:          ClassConfig{PerMin: 4, MinDur: 30 * time.Millisecond, MaxDur: 120 * time.Millisecond},
	}
}

// DefaultHazeConfig is the haze-only environmental-fade schedule the
// cyclops-sim -haze flag and the fig16-hybrid haze-ramp arm use: episodes
// seconds long with multi-second edges, deep enough at the plateau to
// push the optical budget below sensitivity. It is deliberately a
// separate config from DefaultConfig — the chaos demo schedule stays
// byte-identical — and composes with it by copying the Haze* fields.
func DefaultHazeConfig() Config {
	return Config{
		Haze:         ClassConfig{PerMin: 2, MinDur: 6 * time.Second, MaxDur: 12 * time.Second},
		HazeDepthDB:  [2]float64{18, 30},
		HazeRampUp:   [2]time.Duration{1 * time.Second, 3 * time.Second},
		HazeRampDown: [2]time.Duration{2 * time.Second, 5 * time.Second},
	}
}

// Plan generates the seeded fault schedule for a run of the given
// duration. Each class draws from its own rand stream (derived from seed
// and the class kind), so enabling or re-tuning one class never perturbs
// another's episodes — the property that makes a rate×duration sweep a
// controlled experiment rather than a reshuffle.
func Plan(cfg Config, seed int64, dur time.Duration) Schedule {
	s := Schedule{Seed: seed}
	plan := func(kind Kind, cc ClassConfig, shape func(rng *rand.Rand, w *Window)) {
		if cc.PerMin <= 0 || cc.MaxDur <= 0 || dur <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(kind)*7919 + 1))
		meanGap := time.Duration(60 / cc.PerMin * float64(time.Second))
		at := time.Duration(rng.ExpFloat64() * float64(meanGap))
		for at < dur {
			d := cc.MinDur
			if cc.MaxDur > cc.MinDur {
				d += time.Duration(rng.Float64() * float64(cc.MaxDur-cc.MinDur))
			}
			end := at + d
			if end > dur {
				end = dur
			}
			w := Window{Kind: kind, Start: at, End: end}
			if shape != nil {
				shape(rng, &w)
			}
			s.Windows = append(s.Windows, w)
			at = end + time.Duration(rng.ExpFloat64()*float64(meanGap))
		}
	}
	plan(Occlusion, cfg.Occlusion, func(rng *rand.Rand, w *Window) {
		lo, hi := cfg.OcclusionDepthDB[0], cfg.OcclusionDepthDB[1]
		w.DepthDB = lo + rng.Float64()*(hi-lo)
		w.Ramp = cfg.OcclusionRamp
	})
	plan(TrackerBlackout, cfg.Blackout, nil)
	plan(TrackerFreeze, cfg.Freeze, nil)
	plan(GalvoStuck, cfg.Stuck, nil)
	plan(GalvoSaturation, cfg.Saturation, func(_ *rand.Rand, w *Window) {
		w.Limit = cfg.SaturationLimit
	})
	plan(SolverDiverge, cfg.Diverge, nil)
	plan(HazeFade, cfg.Haze, func(rng *rand.Rand, w *Window) {
		lo, hi := cfg.HazeDepthDB[0], cfg.HazeDepthDB[1]
		w.DepthDB = lo + rng.Float64()*(hi-lo)
		w.Ramp = durBetween(rng, cfg.HazeRampUp)
		w.RampDown = durBetween(rng, cfg.HazeRampDown)
	})

	sort.SliceStable(s.Windows, func(i, j int) bool {
		if s.Windows[i].Start != s.Windows[j].Start {
			return s.Windows[i].Start < s.Windows[j].Start
		}
		return s.Windows[i].Kind < s.Windows[j].Kind
	})
	return s
}

// durBetween draws a uniform duration from the inclusive-exclusive range
// r; a degenerate range pins the value to r[0].
func durBetween(rng *rand.Rand, r [2]time.Duration) time.Duration {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + time.Duration(rng.Float64()*float64(r[1]-r[0]))
}

// OutageMetrics is the shared outage instrument pair. Both consumers of
// the schedule — core.Run's supervisor and the sim chaos corpus — record
// under these names, and the obs registry panics on re-registration with
// different bounds, so the names and buckets are defined exactly once,
// here.
type OutageMetrics struct {
	// Outages counts link outages attributed to injected faults (and, in
	// core.Run, any outage the supervisor had to recover from).
	Outages *obs.Counter
	// Reacquire is the outage-to-link-up recovery time distribution. The
	// buckets straddle the SFP re-lock delay (3 s in both transceiver
	// configs): fast spiral/backoff recoveries land low, full re-lock
	// tails land around 3-5 s.
	Reacquire *obs.Histogram
}

// ReacquireBuckets are the cyclops_reacquire_seconds histogram bounds.
var ReacquireBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 3, 4, 5, 8, 15}

// NewOutageMetrics registers the outage instruments in reg (nil reg → nil
// metrics, recording disabled).
func NewOutageMetrics(reg *obs.Registry) *OutageMetrics {
	if reg == nil {
		return nil
	}
	return &OutageMetrics{
		Outages: reg.Counter("cyclops_outage_total",
			"Link outages observed under fault injection."),
		Reacquire: reg.Histogram("cyclops_reacquire_seconds",
			"Outage-to-recovery time: link down until the SFP re-locks.",
			ReacquireBuckets),
	}
}

// HandoverMetrics is the shared multi-TX handover instrument set. Like
// OutageMetrics, both consumers — core.Run's supervisor and the sim chaos
// slot model — record under these names, so they are defined exactly once,
// here.
type HandoverMetrics struct {
	// Handovers counts make-before-break switches to a standby TX.
	Handovers *obs.Counter
	// Dark is the dark-time distribution of each handover: last light on
	// the old path to first light on the new one. The buckets sit far
	// below ReacquireBuckets — a working handover costs one realignment
	// latency (~1.8 ms), not a 3 s SFP re-lock.
	Dark *obs.Histogram
	// Staleness is the age of the standby pre-point at the moment of the
	// most recent switch (core.Run only; the slot model has no pre-point
	// clock and leaves it at zero).
	Staleness *obs.Gauge
}

// HandoverDarkBuckets are the cyclops_handover_seconds histogram bounds.
var HandoverDarkBuckets = []float64{0.001, 0.002, 0.003, 0.005, 0.01, 0.02, 0.05, 0.1}

// NewHandoverMetrics registers the handover instruments in reg (nil reg →
// nil metrics, recording disabled).
func NewHandoverMetrics(reg *obs.Registry) *HandoverMetrics {
	if reg == nil {
		return nil
	}
	return &HandoverMetrics{
		Handovers: reg.Counter("cyclops_handover_total",
			"Make-before-break switches to a standby transmitter."),
		Dark: reg.Histogram("cyclops_handover_seconds",
			"Dark time per handover: last light on the old TX path to first light on the standby.",
			HandoverDarkBuckets),
		Staleness: reg.Gauge("cyclops_handover_standby_staleness_seconds",
			"Age of the standby pre-point voltages at the most recent handover."),
	}
}
