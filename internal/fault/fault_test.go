package fault

import (
	"testing"
	"time"
)

// Plan is a pure function of (Config, seed, duration): the schedule must
// render byte-identically across calls, and distinct seeds must actually
// move the windows.
func TestPlanDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := Plan(cfg, 42, 30*time.Second)
	b := Plan(cfg, 42, 30*time.Second)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a.String(), b.String())
	}
	if len(a.Windows) == 0 {
		t.Fatal("default config over 30s produced no windows")
	}
	c := Plan(cfg, 43, 30*time.Second)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanWindowsWellFormed(t *testing.T) {
	dur := 45 * time.Second
	s := Plan(DefaultConfig(), 7, dur)
	var prev time.Duration = -1
	for i, w := range s.Windows {
		if w.Start < 0 || w.End > dur || w.End <= w.Start {
			t.Errorf("window %d malformed: %+v", i, w)
		}
		if w.Start < prev {
			t.Errorf("window %d out of order: start %v after %v", i, w.Start, prev)
		}
		prev = w.Start
		if w.Kind == Occlusion && (w.DepthDB < 25 || w.DepthDB > 45) {
			t.Errorf("occlusion depth out of configured bounds: %+v", w)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	s := &Schedule{Windows: []Window{
		{Kind: Occlusion, Start: 100 * time.Millisecond, End: 300 * time.Millisecond,
			DepthDB: 40, Ramp: 20 * time.Millisecond},
		{Kind: Occlusion, Start: 150 * time.Millisecond, End: 250 * time.Millisecond, DepthDB: 10},
		{Kind: TrackerBlackout, Start: 200 * time.Millisecond, End: 220 * time.Millisecond},
		{Kind: GalvoSaturation, Start: 200 * time.Millisecond, End: 260 * time.Millisecond, Limit: 1.5},
		{Kind: GalvoSaturation, Start: 210 * time.Millisecond, End: 240 * time.Millisecond, Limit: 0.5},
	}}
	cases := []struct {
		at    time.Duration
		atten float64
		black bool
		limit float64
	}{
		{0, 0, false, 0},
		{100 * time.Millisecond, 0, false, 0},  // leading-edge ramp starts at 0
		{110 * time.Millisecond, 20, false, 0}, // halfway up the 20 ms ramp
		{150 * time.Millisecond, 40, false, 0}, // plateau; overlap takes max(40, 10)
		{205 * time.Millisecond, 40, true, 1.5},
		{215 * time.Millisecond, 40, true, 0.5},  // tighter limit wins
		{250 * time.Millisecond, 40, false, 1.5}, // 0.5 V window already over
		{295 * time.Millisecond, 10, false, 0},   // trailing ramp: 5 ms left of 20 ms
		{300 * time.Millisecond, 0, false, 0},    // End is exclusive
	}
	for _, c := range cases {
		st := s.At(c.at)
		if st.AttenDB != c.atten || st.TrackerBlackout != c.black || st.GalvoSatLimit != c.limit {
			t.Errorf("At(%v) = %+v, want atten %v blackout %v limit %v",
				c.at, st, c.atten, c.black, c.limit)
		}
	}
}

func TestEmptySchedule(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule must be Empty")
	}
	if nilSched.At(time.Second).Any() {
		t.Error("nil schedule must inject nothing")
	}
	empty := &Schedule{Seed: 5}
	if !empty.Empty() || empty.At(0).Any() {
		t.Error("windowless schedule must be Empty and inject nothing")
	}
	if got := Plan(Config{}, 1, time.Minute); !got.Empty() {
		t.Errorf("zero config planned %d windows", len(got.Windows))
	}
}
