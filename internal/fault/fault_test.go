package fault

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// Plan is a pure function of (Config, seed, duration): the schedule must
// render byte-identically across calls, and distinct seeds must actually
// move the windows.
func TestPlanDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := Plan(cfg, 42, 30*time.Second)
	b := Plan(cfg, 42, 30*time.Second)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a.String(), b.String())
	}
	if len(a.Windows) == 0 {
		t.Fatal("default config over 30s produced no windows")
	}
	c := Plan(cfg, 43, 30*time.Second)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanWindowsWellFormed(t *testing.T) {
	dur := 45 * time.Second
	s := Plan(DefaultConfig(), 7, dur)
	var prev time.Duration = -1
	for i, w := range s.Windows {
		if w.Start < 0 || w.End > dur || w.End <= w.Start {
			t.Errorf("window %d malformed: %+v", i, w)
		}
		if w.Start < prev {
			t.Errorf("window %d out of order: start %v after %v", i, w.Start, prev)
		}
		prev = w.Start
		if w.Kind == Occlusion && (w.DepthDB < 25 || w.DepthDB > 45) {
			t.Errorf("occlusion depth out of configured bounds: %+v", w)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	s := &Schedule{Windows: []Window{
		{Kind: Occlusion, Start: 100 * time.Millisecond, End: 300 * time.Millisecond,
			DepthDB: 40, Ramp: 20 * time.Millisecond},
		{Kind: Occlusion, Start: 150 * time.Millisecond, End: 250 * time.Millisecond, DepthDB: 10},
		{Kind: TrackerBlackout, Start: 200 * time.Millisecond, End: 220 * time.Millisecond},
		{Kind: GalvoSaturation, Start: 200 * time.Millisecond, End: 260 * time.Millisecond, Limit: 1.5},
		{Kind: GalvoSaturation, Start: 210 * time.Millisecond, End: 240 * time.Millisecond, Limit: 0.5},
	}}
	cases := []struct {
		at    time.Duration
		atten float64
		black bool
		limit float64
	}{
		{0, 0, false, 0},
		{100 * time.Millisecond, 0, false, 0},  // leading-edge ramp starts at 0
		{110 * time.Millisecond, 20, false, 0}, // halfway up the 20 ms ramp
		{150 * time.Millisecond, 40, false, 0}, // plateau; overlap takes max(40, 10)
		{205 * time.Millisecond, 40, true, 1.5},
		{215 * time.Millisecond, 40, true, 0.5},  // tighter limit wins
		{250 * time.Millisecond, 40, false, 1.5}, // 0.5 V window already over
		{295 * time.Millisecond, 10, false, 0},   // trailing ramp: 5 ms left of 20 ms
		{300 * time.Millisecond, 0, false, 0},    // End is exclusive
	}
	for _, c := range cases {
		st := s.At(c.at)
		if st.AttenDB != c.atten || st.TrackerBlackout != c.black || st.GalvoSatLimit != c.limit {
			t.Errorf("At(%v) = %+v, want atten %v blackout %v limit %v",
				c.at, st, c.atten, c.black, c.limit)
		}
	}
}

func TestEmptySchedule(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule must be Empty")
	}
	if nilSched.At(time.Second).Any() {
		t.Error("nil schedule must inject nothing")
	}
	empty := &Schedule{Seed: 5}
	if !empty.Empty() || empty.At(0).Any() {
		t.Error("windowless schedule must be Empty and inject nothing")
	}
	if got := Plan(Config{}, 1, time.Minute); !got.Empty() {
		t.Errorf("zero config planned %d windows", len(got.Windows))
	}
}

// TestHazePlanWellFormed: the haze-only default config plans ramped
// windows with depth and both edges inside the configured bounds, and the
// schedule renders the asymmetric ramps.
func TestHazePlanWellFormed(t *testing.T) {
	cfg := DefaultHazeConfig()
	dur := 2 * time.Minute
	s := Plan(cfg, 11, dur)
	if len(s.Windows) == 0 {
		t.Fatal("default haze config over 2min produced no windows")
	}
	for i, w := range s.Windows {
		if w.Kind != HazeFade {
			t.Fatalf("window %d: haze-only config planned kind %v", i, w.Kind)
		}
		if w.DepthDB < cfg.HazeDepthDB[0] || w.DepthDB > cfg.HazeDepthDB[1] {
			t.Errorf("window %d depth %v outside %v", i, w.DepthDB, cfg.HazeDepthDB)
		}
		if w.Ramp < cfg.HazeRampUp[0] || w.Ramp > cfg.HazeRampUp[1] {
			t.Errorf("window %d ramp-up %v outside %v", i, w.Ramp, cfg.HazeRampUp)
		}
		if w.RampDown < cfg.HazeRampDown[0] || w.RampDown > cfg.HazeRampDown[1] {
			t.Errorf("window %d ramp-down %v outside %v", i, w.RampDown, cfg.HazeRampDown)
		}
	}
	again := Plan(cfg, 11, dur)
	if a, b := s.String(), again.String(); a != b {
		t.Fatalf("haze plan not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(s.String(), "haze-fade") {
		t.Errorf("schedule render missing haze windows:\n%s", s.String())
	}
}

// TestHazeKindAppended: HazeFade must stay numbered after SolverDiverge —
// each class seeds its rand stream from the Kind value, so renumbering
// would silently reshuffle every pinned schedule.
func TestHazeKindAppended(t *testing.T) {
	if HazeFade != SolverDiverge+1 {
		t.Fatalf("HazeFade = %d, want %d (appended after SolverDiverge)",
			HazeFade, SolverDiverge+1)
	}
	// Adding the haze class must not perturb the other classes' episodes.
	base := Plan(DefaultConfig(), 42, 30*time.Second)
	cfg := DefaultConfig()
	h := DefaultHazeConfig()
	cfg.Haze, cfg.HazeDepthDB = h.Haze, h.HazeDepthDB
	cfg.HazeRampUp, cfg.HazeRampDown = h.HazeRampUp, h.HazeRampDown
	mixed := Plan(cfg, 42, 30*time.Second)
	var stripped Schedule
	stripped.Seed = mixed.Seed
	for _, w := range mixed.Windows {
		if w.Kind != HazeFade {
			stripped.Windows = append(stripped.Windows, w)
		}
	}
	if base.String() != stripped.String() {
		t.Fatalf("enabling haze perturbed other classes:\n%s\nvs\n%s",
			base.String(), stripped.String())
	}
}

// TestHazeOcclusionComposition: an occlusion trapezoid and a haze ramp
// overlapping on the same plant must sum, with the haze component
// recoverable from HazeDB, and overlapping haze windows must stack.
func TestHazeOcclusionComposition(t *testing.T) {
	sec := time.Second
	s := &Schedule{Windows: []Window{
		// Haze: 2s up-ramp to 20 dB, plateau, 4s down-ramp, over [0s, 20s).
		{Kind: HazeFade, Start: 0, End: 20 * sec, DepthDB: 20,
			Ramp: 2 * sec, RampDown: 4 * sec},
		// Second haze layer on [5s, 15s): hard edges, 5 dB.
		{Kind: HazeFade, Start: 5 * sec, End: 15 * sec, DepthDB: 5},
		// Occlusion inside the plateau: 30 dB, 100 ms symmetric ramp.
		{Kind: Occlusion, Start: 10 * sec, End: 11 * sec, DepthDB: 30,
			Ramp: 100 * time.Millisecond},
	}}
	cases := []struct {
		at          time.Duration
		haze, total float64
	}{
		{0, 0, 0},                               // haze up-ramp starts at zero
		{1 * sec, 10, 10},                       // halfway up the 2s ramp
		{3 * sec, 20, 20},                       // plateau
		{6 * sec, 25, 25},                       // both haze layers stack
		{10*sec + 50*time.Millisecond, 25, 40},  // occlusion halfway up: 15 + 25
		{10*sec + 500*time.Millisecond, 25, 55}, // occlusion plateau: 30 + 25
		{16 * sec, 20, 20},                      // second layer over, still plateau
		{18 * sec, 10, 10},                      // halfway down the 4s down-ramp
		{20 * sec, 0, 0},                        // End exclusive
	}
	for _, c := range cases {
		st := s.At(c.at)
		if st.HazeDB != c.haze || st.AttenDB != c.total {
			t.Errorf("At(%v): haze %v total %v, want %v/%v",
				c.at, st.HazeDB, st.AttenDB, c.haze, c.total)
		}
	}
}

// TestCompositionPermutationInvariant: every At reduction is commutative
// (occlusion max, haze sum, saturation min), so permuting the window list
// must never change the injected dB sequence. This is the property that
// lets Plan order classes freely and lets overlapping windows from
// different classes compose on the same plant.
func TestCompositionPermutationInvariant(t *testing.T) {
	cfg := DefaultConfig()
	h := DefaultHazeConfig()
	cfg.Haze, cfg.HazeDepthDB = h.Haze, h.HazeDepthDB
	cfg.HazeRampUp, cfg.HazeRampDown = h.HazeRampUp, h.HazeRampDown
	dur := 90 * time.Second
	base := Plan(cfg, 23, dur)
	if len(base.Windows) < 4 {
		t.Fatalf("need a few windows to permute, got %d", len(base.Windows))
	}
	sample := func(s *Schedule) []State {
		var out []State
		for at := time.Duration(0); at <= dur; at += 50 * time.Millisecond {
			out = append(out, s.At(at))
		}
		return out
	}
	want := sample(&base)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		perm := Schedule{Seed: base.Seed, Windows: append([]Window(nil), base.Windows...)}
		rng.Shuffle(len(perm.Windows), func(i, j int) {
			perm.Windows[i], perm.Windows[j] = perm.Windows[j], perm.Windows[i]
		})
		// At relies on the (Start, Kind) sort for its early break; a
		// permuted plan must be re-sorted the same way Plan sorts — the
		// invariant under test is that the *reduction* is order-free.
		sort.SliceStable(perm.Windows, func(i, j int) bool {
			if perm.Windows[i].Start != perm.Windows[j].Start {
				return perm.Windows[i].Start < perm.Windows[j].Start
			}
			return perm.Windows[i].Kind < perm.Windows[j].Kind
		})
		got := sample(&perm)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: state diverged at sample %d: %+v vs %+v",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestAsymmetricRampBitCompat: a window with RampDown zero must evaluate
// exactly as the historical symmetric trapezoid at every instant.
func TestAsymmetricRampBitCompat(t *testing.T) {
	w := Window{Kind: Occlusion, Start: 100 * time.Millisecond,
		End: 400 * time.Millisecond, DepthDB: 33, Ramp: 20 * time.Millisecond}
	legacy := func(t time.Duration) float64 {
		if w.Ramp <= 0 {
			return w.DepthDB
		}
		frac := 1.0
		if in := t - w.Start; in < w.Ramp {
			frac = float64(in) / float64(w.Ramp)
		}
		if out := w.End - t; out < w.Ramp {
			if f := float64(out) / float64(w.Ramp); f < frac {
				frac = f
			}
		}
		return w.DepthDB * frac
	}
	for at := w.Start; at < w.End; at += time.Millisecond {
		if got, want := w.attenAt(at), legacy(at); got != want {
			t.Fatalf("attenAt(%v) = %v, legacy %v", at, got, want)
		}
	}
}
