// Package obs is the repo's dependency-free, deterministic observability
// layer: counters, gauges, and fixed-bucket histograms registered in a
// Registry, exposed three ways —
//
//   - a stable, sorted text exposition in Prometheus format (Exposition),
//   - cheap value-type Snapshots with Diff/Merge, embedded in experiment
//     results (core.RunResult.Metrics, sim.CorpusResult.Metrics),
//   - a process-wide Default registry the cyclops-bench / cyclops-sim
//     -metrics flags dump.
//
// # Determinism contract
//
// The parallel experiment engine (internal/parallel) promises bit-identical
// results at any worker count, and metrics must not break that. The rules:
//
//   - every parallel job records into its own Registry (parallel.MapObs
//     hands one out per job) — instruments are never shared across jobs;
//   - per-job Snapshots are merged serially, in job-index order, after the
//     fan-out returns. Counter increments are integer-valued in practice
//     (exact in float64 far beyond any realistic count), and histogram
//     sums merge in a fixed order, so the merged Snapshot — and its text
//     exposition — is byte-identical for workers 1, 4, 8, or the default
//     pool;
//   - reductions never happen inside worker goroutines.
//
// All instruments and the Registry are safe for concurrent use (the
// process-wide Default registry receives merges from concurrent runs), and
// all methods are nil-receiver-safe so uninstrumented code paths pay one
// predictable branch and nothing else.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counter is a monotonically increasing metric. In this codebase counters
// carry integer-valued increments (ticks, packets, iterations), which keeps
// float64 accumulation exact and therefore order-independent.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative v is ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric. Gauges merge additively across
// snapshots, so use them for quantities where a sum is meaningful (e.g.
// per-run totals); ratios belong in a pair of counters.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket histogram: Bounds are strictly increasing
// upper bounds (le), with an implicit +Inf bucket at the end. Buckets are
// fixed at registration so per-worker histograms always merge exactly.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value. Non-finite values are clamped to the extreme
// buckets and excluded from the sum (a ±Inf sum would poison every later
// merge).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	switch {
	case math.IsNaN(v):
		// drop: no bucket is meaningful
	case math.IsInf(v, 1):
		h.counts[len(h.counts)-1]++
		h.count++
	case math.IsInf(v, -1):
		h.counts[0]++
		h.count++
	default:
		i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v → its le bucket
		h.counts[i]++
		h.sum += v
		h.count++
	}
	h.mu.Unlock()
}

// Registry holds named instruments. The zero registry is not usable; call
// NewRegistry. All methods are safe on a nil *Registry and return nil
// instruments, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// defaultRegistry is the process-wide registry behind Default().
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Per-run registries publish
// their snapshots here (via Merge) so the -metrics flags have one place to
// dump; its float sums may differ in the last bit across scheduling orders,
// which is why determinism guarantees are stated on per-run Snapshots, not
// on Default.
func Default() *Registry { return defaultRegistry }

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) setHelp(name, help string) {
	if help != "" && r.help[name] == "" {
		r.help[name] = help
	}
}

// otherKind returns the instrument kind already holding name when it is
// not the wanted kind, or "" when the name is free (or already the right
// kind). Call with r.mu held.
func (r *Registry) otherKind(name, want string) string {
	if _, ok := r.counters[name]; ok && want != "counter" {
		return "counter"
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		return "gauge"
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		return "histogram"
	}
	return ""
}

// mustRegister validates a registration under r.mu. Registration happens
// at construction time with literal names (cyclops-vet's metrics rule
// enforces that), so a bad name or a kind clash is a programmer error:
// failing fast beats silently corrupting every later exposition.
func (r *Registry) mustRegister(name, kind string) {
	if !validName(name) {
		//cyclops:panic-ok registration-time contract violation with a literal name is a programmer error
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if other := r.otherKind(name, kind); other != "" {
		//cyclops:panic-ok kind clash at registration is a programmer error, not a runtime condition
		panic(fmt.Sprintf("obs: %q already registered as a %s", name, other))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mustRegister(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.setHelp(name, help)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mustRegister(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.setHelp(name, help)
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given strictly increasing upper bounds. Re-registration with different
// bounds panics — fixed buckets are what make merges exact.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			//cyclops:panic-ok bounds are compile-time literals; a bad table is a programmer error
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mustRegister(name, "histogram")
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	} else if !sameBounds(h.bounds, bounds) {
		//cyclops:panic-ok fixed buckets are the merge-exactness invariant; re-registration with new bounds is a programmer error
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	r.setHelp(name, help)
	return h
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HistogramSnapshot is a histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Snapshot is a frozen, value-typed view of a registry — cheap to embed in
// experiment results and safe to compare, diff, and merge. The zero
// Snapshot is empty and valid.
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	// Help carries the registered help strings so a Snapshot's
	// exposition keeps its # HELP lines.
	Help map[string]string
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	for _, name := range sortedKeys(r.counters) {
		if s.Counters == nil {
			s.Counters = map[string]float64{}
		}
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		if s.Gauges == nil {
			s.Gauges = map[string]float64{}
		}
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.hists) {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		h := r.hists[name]
		h.mu.Lock()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.count,
		}
		h.mu.Unlock()
	}
	for _, name := range sortedKeys(r.help) {
		if s.Help == nil {
			s.Help = map[string]string{}
		}
		s.Help[name] = r.help[name]
	}
	return s
}

// Merge folds a snapshot into the live registry: counters and histogram
// buckets add, gauges add. Histograms are created with the snapshot's
// bounds when absent and must match bounds when present.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for _, name := range sortedKeys(s.Counters) {
		r.Counter(name, s.Help[name]).Add(s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		r.Gauge(name, s.Help[name]).Add(s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		h := r.Histogram(name, s.Help[name], hs.Bounds)
		h.mu.Lock()
		for i, c := range hs.Counts {
			h.counts[i] += c
		}
		h.sum += hs.Sum
		h.count += hs.Count
		h.mu.Unlock()
	}
}

// Exposition renders the registry's current state; see Snapshot.Exposition.
func (r *Registry) Exposition() string { return r.Snapshot().Exposition() }

// Merge returns the union of two snapshots: counters and histogram buckets
// add, gauges add, help strings union (s wins on conflict). Merging
// serially in a fixed order yields bit-identical results; histograms with
// mismatched bounds panic (instrumentation bug).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{}
	for _, src := range []map[string]float64{s.Counters, o.Counters} {
		for _, name := range sortedKeys(src) {
			if out.Counters == nil {
				out.Counters = map[string]float64{}
			}
			out.Counters[name] += src[name]
		}
	}
	for _, src := range []map[string]float64{s.Gauges, o.Gauges} {
		for _, name := range sortedKeys(src) {
			if out.Gauges == nil {
				out.Gauges = map[string]float64{}
			}
			out.Gauges[name] += src[name]
		}
	}
	for _, src := range []map[string]HistogramSnapshot{s.Histograms, o.Histograms} {
		for _, name := range sortedKeys(src) {
			hs := src[name]
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			have, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = HistogramSnapshot{
					Bounds: append([]float64(nil), hs.Bounds...),
					Counts: append([]uint64(nil), hs.Counts...),
					Sum:    hs.Sum,
					Count:  hs.Count,
				}
				continue
			}
			if !sameBounds(have.Bounds, hs.Bounds) {
				//cyclops:panic-ok bounds mismatch across merged snapshots is an instrumentation bug, not a runtime condition
				panic(fmt.Sprintf("obs: merge of histogram %q with different bounds", name))
			}
			for i, c := range hs.Counts {
				have.Counts[i] += c
			}
			have.Sum += hs.Sum
			have.Count += hs.Count
			out.Histograms[name] = have
		}
	}
	for _, src := range []map[string]string{o.Help, s.Help} {
		for _, name := range sortedKeys(src) {
			help := src[name]
			if help == "" {
				continue
			}
			if out.Help == nil {
				out.Help = map[string]string{}
			}
			out.Help[name] = help
		}
	}
	return out
}

// MergeAll reduces snapshots serially, in slice order — the reduction step
// for parallel.MapObs' per-job registries.
func MergeAll(snaps []Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out = out.Merge(s)
	}
	return out
}

// Diff returns s minus prev: counters and histogram buckets subtract
// (clamped at zero), gauges keep s's current value. Use it to isolate what
// one run contributed to a shared registry.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{}
	for _, name := range sortedKeys(s.Counters) {
		if out.Counters == nil {
			out.Counters = map[string]float64{}
		}
		d := s.Counters[name] - prev.Counters[name]
		if d < 0 {
			d = 0
		}
		out.Counters[name] = d
	}
	for _, name := range sortedKeys(s.Gauges) {
		if out.Gauges == nil {
			out.Gauges = map[string]float64{}
		}
		out.Gauges[name] = s.Gauges[name]
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		if out.Histograms == nil {
			out.Histograms = map[string]HistogramSnapshot{}
		}
		d := HistogramSnapshot{
			Bounds: append([]float64(nil), hs.Bounds...),
			Counts: append([]uint64(nil), hs.Counts...),
			Sum:    hs.Sum,
			Count:  hs.Count,
		}
		if ps, ok := prev.Histograms[name]; ok && sameBounds(ps.Bounds, hs.Bounds) {
			for i := range d.Counts {
				if d.Counts[i] >= ps.Counts[i] {
					d.Counts[i] -= ps.Counts[i]
				} else {
					d.Counts[i] = 0
				}
			}
			d.Sum -= ps.Sum
			if d.Count >= ps.Count {
				d.Count -= ps.Count
			} else {
				d.Count = 0
			}
		}
		out.Histograms[name] = d
	}
	for _, name := range sortedKeys(s.Help) {
		if out.Help == nil {
			out.Help = map[string]string{}
		}
		out.Help[name] = s.Help[name]
	}
	return out
}

// Exposition renders the snapshot in Prometheus text exposition format,
// families sorted by name, values formatted with the shortest exact
// representation — the same bytes for the same snapshot, always.
func (s Snapshot) Exposition() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	kind := map[string]string{}
	for _, name := range sortedKeys(s.Counters) {
		names = append(names, name)
		kind[name] = "counter"
	}
	for _, name := range sortedKeys(s.Gauges) {
		names = append(names, name)
		kind[name] = "gauge"
	}
	for _, name := range sortedKeys(s.Histograms) {
		names = append(names, name)
		kind[name] = "histogram"
	}
	sort.Strings(names)
	for _, name := range names {
		if help := s.Help[name]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind[name])
		switch kind[name] {
		case "counter":
			fmt.Fprintf(&b, "%s %s\n", name, fmtFloat(s.Counters[name]))
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", name, fmtFloat(s.Gauges[name]))
		case "histogram":
			hs := s.Histograms[name]
			var cum uint64
			for i, bound := range hs.Bounds {
				cum += hs.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum)
			}
			if len(hs.Counts) > 0 {
				cum += hs.Counts[len(hs.Counts)-1]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", name, fmtFloat(hs.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", name, hs.Count)
		}
	}
	return b.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys is the one sanctioned map iteration in this package: every
// walk over a metrics map goes through it so iteration order is erased
// before it can reach a merge, diff, or exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//cyclops:deterministic-ok iteration order is erased by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
