package obs

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// buildSample fills a registry with one instrument of each kind, the way
// the instrumented packages do.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("cyclops_test_ticks_total", "Simulation ticks executed.").Add(12345)
	r.Counter("cyclops_test_disconnects_total", "Up to down transitions.").Inc()
	r.Gauge("cyclops_test_workers", "Configured worker count.").Set(8)
	h := r.Histogram("cyclops_test_latency_seconds", "Repoint latency.",
		[]float64{0.001, 0.002, 0.005})
	for _, v := range []float64{0.0004, 0.0015, 0.0015, 0.003, 0.05} {
		h.Observe(v)
	}
	return r
}

func TestExpositionGolden(t *testing.T) {
	got := buildSample().Exposition()
	path := filepath.Join("testdata", "exposition.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with go test -run TestExpositionGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestExpositionStable(t *testing.T) {
	// Two registries built identically must render identical bytes — the
	// property the determinism suite leans on.
	a := buildSample().Exposition()
	b := buildSample().Exposition()
	if a != b {
		t.Error("identical registries rendered different expositions")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 9, math.Inf(1), math.Inf(-1), math.NaN()} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// le=1: {0.5, 1, -Inf}; le=2: {1.5, 2}; le=4: {3}; +Inf: {9, +Inf}.
	want := []uint64{3, 2, 1, 2}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8 (NaN dropped)", s.Count)
	}
	if math.IsInf(s.Sum, 0) || math.IsNaN(s.Sum) {
		t.Errorf("sum %v not finite: non-finite observations must not poison it", s.Sum)
	}
}

func TestSnapshotMergeDiff(t *testing.T) {
	a := buildSample().Snapshot()
	b := buildSample().Snapshot()
	m := a.Merge(b)
	if got := m.Counters["cyclops_test_ticks_total"]; got != 2*12345 {
		t.Errorf("merged counter = %v, want %v", got, 2*12345)
	}
	hs := m.Histograms["cyclops_test_latency_seconds"]
	if hs.Count != 10 {
		t.Errorf("merged histogram count = %d, want 10", hs.Count)
	}

	// Diff recovers one contribution: counters and histogram counts come
	// back exactly; gauges deliberately keep the current (merged) value.
	d := m.Diff(a)
	if !reflect.DeepEqual(d.Counters, b.Counters) {
		t.Errorf("diff counters = %v, want %v", d.Counters, b.Counters)
	}
	dh, bh := d.Histograms["cyclops_test_latency_seconds"], b.Histograms["cyclops_test_latency_seconds"]
	if !reflect.DeepEqual(dh.Counts, bh.Counts) || dh.Count != bh.Count {
		t.Errorf("diff histogram = %+v, want counts of %+v", dh, bh)
	}
	if math.Abs(dh.Sum-bh.Sum) > 1e-12 {
		t.Errorf("diff histogram sum = %v, want ≈%v", dh.Sum, bh.Sum)
	}

	// MergeAll over per-job snapshots is order-fixed and byte-stable.
	x := MergeAll([]Snapshot{a, b}).Exposition()
	y := MergeAll([]Snapshot{a, b}).Exposition()
	if x != y {
		t.Error("MergeAll not byte-stable across identical inputs")
	}
}

func TestRegistryMergeSnapshot(t *testing.T) {
	r := NewRegistry()
	s := buildSample().Snapshot()
	r.Merge(s)
	r.Merge(s)
	if got := r.Counter("cyclops_test_ticks_total", "").Value(); got != 2*12345 {
		t.Errorf("registry after two merges: counter = %v, want %v", got, 2*12345)
	}
	if got := r.Snapshot().Histograms["cyclops_test_latency_seconds"].Count; got != 10 {
		t.Errorf("registry after two merges: histogram count = %d, want 10", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if got := r.Snapshot(); len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	r.Merge(Snapshot{})
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("clash", "")
	r.Gauge("clash", "")
}

func TestBoundsClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram with different bounds must panic")
		}
	}()
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2})
	r.Histogram("h", "", []float64{1, 3})
}

func TestConcurrentUse(t *testing.T) {
	// The Default registry receives merges from concurrent runs; this must
	// be race-free (run with -race) and count exactly.
	r := NewRegistry()
	src := buildSample().Snapshot()
	var wg sync.WaitGroup
	const goroutines = 8
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Merge(src)
			r.Counter("cyclops_test_ticks_total", "").Add(5)
			r.Histogram("cyclops_test_latency_seconds", "", []float64{0.001, 0.002, 0.005}).Observe(0.0001)
		}()
	}
	wg.Wait()
	want := float64(goroutines) * (12345 + 5)
	if got := r.Counter("cyclops_test_ticks_total", "").Value(); got != want {
		t.Errorf("concurrent merges: counter = %v, want %v", got, want)
	}
}
