// Package xrand is a devirtualized, bit-exact replica of the subset of
// math/rand that the trace synthesizer draws from: the Mitchell/Reeds
// additive lagged-Fibonacci source behind rand.NewSource, plus Float64,
// Intn, and the ziggurat NormFloat64 on top of it.
//
// Why it exists: trace.Generate sits on the corpus hot path and spends a
// measurable fraction of its time crossing the rand.Source interface
// (every Float64/NormFloat64 is a virtual Int63 call the compiler cannot
// inline). Replicating the generator with concrete types removes the
// interface dispatch and lets the draws inline into the synthesis loop,
// while producing the exact same stream bit for bit — the sequence
// contract is pinned by TestSequenceMatchesMathRand against math/rand
// itself across seeds (including zero and negative).
//
// The algorithm bodies below are transcribed from Go's math/rand
// (rng.go, rand.go, normal.go) and must not be "improved": any change
// to evaluation order or constants breaks stream equality and with it
// the repo-wide determinism contract (DESIGN.md §2).
package xrand

import "math"

const (
	rngLen   = 607
	rngTap   = 273
	rngMax   = 1 << 63
	rngMask  = rngMax - 1
	int32max = (1 << 31) - 1

	rn = 3.442619855899 // ziggurat base-strip bound
)

// Rand is a concrete (non-interface) replica of
// rand.New(rand.NewSource(seed)): the 607-word additive generator with
// tap 273, consumed directly by the derived draws.
//
// Instead of stepping the feedback register one word per draw (two
// index decrements, two wraparound branches, two loads and a store, as
// rngSource.Uint64 does), the register advances a full period of 607
// words at a time into buf, in exactly the order the stdlib's
// decrementing tap/feed walk would emit them. The per-draw fast path is
// then a bounds check and a buffered load — and small enough for the
// compiler to inline into Int63/Float64 callers. The emitted stream is
// unchanged word for word (TestSequenceMatchesMathRand).
type Rand struct {
	pos int // next unread word in buf; rngLen means empty
	buf [rngLen]int64
	vec [rngLen]int64
}

// seedrand advances the Lehmer seeding LCG:
// x[n+1] = 48271 * x[n] mod (2**31 - 1).
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// New returns a generator whose output stream is bit-identical to
// rand.New(rand.NewSource(seed)) for the methods defined here.
func New(seed int64) *Rand {
	r := new(Rand)
	r.Seed(seed)
	return r
}

// Seed re-initializes the feedback register exactly as
// rngSource.Seed does: reduce the seed mod 2³¹−1, warm the LCG for 20
// rounds, then fill each word from three 20-bit LCG chunks XORed with
// the precomputed rngCooked state.
func (r *Rand) Seed(seed int64) {
	r.pos = rngLen // buffer empty; first draw refills

	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := int32(seed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			var u int64
			u = int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			r.vec[i] = u
		}
	}
}

// refill advances the register 607 steps and stores the outputs in
// draw order. The stdlib walk starts at tap=0, feed=334 and decrements
// both before each draw, so the first 334 outputs update words
// 333,332,…,0 (whose tap partner is k+273) and the remaining 273
// update words 606,…,334 (tap partner k−334); after 607 draws the
// indices are back at their start, so one refill is exactly one period.
func (r *Rand) refill() {
	i := 0
	for k := rngLen - rngTap - 1; k >= 0; k-- {
		x := r.vec[k] + r.vec[k+rngTap]
		r.vec[k] = x
		r.buf[i] = x
		i++
	}
	for k := rngLen - 1; k >= rngLen-rngTap; k-- {
		x := r.vec[k] + r.vec[k-(rngLen-rngTap)]
		r.vec[k] = x
		r.buf[i] = x
		i++
	}
	r.pos = 0
}

// Uint64 is the generator step: the next buffered lagged-Fibonacci word.
// The local-pos shape lets the compiler prove pos < len(buf) on both
// branches and drop the bounds check from the fast path.
func (r *Rand) Uint64() uint64 {
	pos := r.pos
	if pos >= rngLen {
		r.refill()
		pos = 0
	}
	x := r.buf[pos]
	r.pos = pos + 1
	return uint64(x)
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() & rngMask) }

// Uint32 returns a 32-bit integer (top bits of Int63, as math/rand).
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int31 returns a non-negative 31-bit integer.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Int31n returns an integer in [0,n). Replicates math/rand's rejection
// sampling exactly, including the power-of-two mask fast path.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		//cyclops:panic-ok replicates math/rand.Int31n's contract exactly (stream and behavior parity)
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Intn returns an integer in [0,n). The trace synthesizer only draws
// small n, but the Int63n branch is kept so the replica stays a drop-in
// for any math/rand caller.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		//cyclops:panic-ok replicates math/rand.Intn's contract exactly (stream and behavior parity)
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Int63n returns an integer in [0,n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		//cyclops:panic-ok replicates math/rand.Int63n's contract exactly (stream and behavior parity)
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Float64 returns a float64 in [0,1). The legacy 63-bit construction
// with resample-on-1.0 is kept verbatim for stream equality.
func (r *Rand) Float64() float64 {
again:
	f := float64(r.Int63()) / (1 << 63)
	if f == 1 {
		goto again // resample; this branch is taken O(never)
	}
	return f
}

// absInt32 is branchless |i| (including MinInt32 → 2³¹): the ziggurat
// tests it on every draw with a uniformly random sign bit, so a branch
// here mispredicts half the time.
func absInt32(i int32) uint32 {
	m := i >> 31 // 0 or -1
	return uint32((i ^ m) - m)
}

// NormFloat64 returns a standard-normal float64 via the Marsaglia/Tsang
// ziggurat, identical draw-for-draw to math/rand's (same tables, same
// fast path, same base-strip tail loop). The >99% fast path is split
// from the wedge/tail work so the common case stays branch-light; the
// split changes no draw order (normSlow resumes the stdlib loop at the
// exact point the fast path failed).
func (r *Rand) NormFloat64() float64 {
	j := int32(r.Uint32()) // Possibly negative
	i := j & 0x7F
	x := float64(j) * wn64[i]
	if absInt32(j) < kn[i] {
		// This case should be hit better than 99% of the time.
		return x
	}
	return r.normSlow(j, i, x)
}

// Norm6 fills out with the next six NormFloat64 draws — exactly the
// values six successive NormFloat64 calls would return, in order. The
// trace synthesizer consumes its six per-sample OU noise draws through
// this: one call instead of six, with one buffered-word availability
// check covering all six fast paths in the common case (the ziggurat
// fast path consumes exactly one word per draw; rejection work drops to
// the same normSlow as the scalar entry point, preserving the stream).
func (r *Rand) Norm6(out *[6]float64) {
	pos := r.pos
	if pos+6 <= rngLen {
		for d := 0; d < 6; d++ {
			v := r.buf[pos]
			pos++
			j := int32(uint32(int64(uint64(v)&rngMask) >> 31))
			i := j & 0x7F
			x := float64(j) * wn64[i]
			if absInt32(j) < kn[i] {
				out[d] = x
				continue
			}
			// Rare: hand the in-flight draw to the slow path (which
			// draws more words itself) and finish the rest scalar.
			r.pos = pos
			out[d] = r.normSlow(j, i, x)
			for d++; d < 6; d++ {
				out[d] = r.NormFloat64()
			}
			return
		}
		r.pos = pos
		return
	}
	for d := 0; d < 6; d++ {
		out[d] = r.NormFloat64()
	}
}

func (r *Rand) normSlow(j, i int32, x float64) float64 {
	for {
		if i == 0 {
			// This extra work is only required for the base strip.
			for {
				x = -math.Log(r.Float64()) * (1.0 / rn)
				y := -math.Log(r.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return rn + x
			}
			return -rn - x
		}
		if fn[i]+float32(r.Float64())*(fn[i-1]-fn[i]) < float32(math.Exp(-.5*x*x)) {
			return x
		}
		j = int32(r.Uint32())
		i = j & 0x7F
		x = float64(j) * wn64[i]
		if absInt32(j) < kn[i] {
			return x
		}
	}
}
