package xrand

import (
	"math"
	"math/rand"
	"testing"
)

// TestSequenceMatchesMathRand pins the whole point of this package: for
// any seed, the replica's draw stream is bit-identical to
// rand.New(rand.NewSource(seed)). The mixed draw schedule below
// interleaves every method the trace synthesizer uses (Float64,
// NormFloat64, Intn) plus the raw integer draws, so a divergence in any
// path — including rejection resampling — desynchronizes the streams
// and fails loudly.
func TestSequenceMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 7, 700, 701, 1199, math.MinInt64, math.MaxInt64, 89482311, -89482311}
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 20000; i++ {
			switch i % 7 {
			case 0:
				r, g := ref.Float64(), got.Float64()
				if math.Float64bits(r) != math.Float64bits(g) {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, r)
				}
			case 1:
				r, g := ref.NormFloat64(), got.NormFloat64()
				if math.Float64bits(r) != math.Float64bits(g) {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, r)
				}
			case 2:
				if r, g := ref.Intn(30), got.Intn(30); r != g {
					t.Fatalf("seed %d draw %d: Intn(30) %d != %d", seed, i, g, r)
				}
			case 3:
				if r, g := ref.Int63(), got.Int63(); r != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, r)
				}
			case 4:
				if r, g := ref.Uint32(), got.Uint32(); r != g {
					t.Fatalf("seed %d draw %d: Uint32 %d != %d", seed, i, g, r)
				}
			case 5:
				// Non-power-of-two and power-of-two Int31n paths.
				if r, g := ref.Int31n(7), got.Int31n(7); r != g {
					t.Fatalf("seed %d draw %d: Int31n(7) %d != %d", seed, i, g, r)
				}
				if r, g := ref.Int31n(8), got.Int31n(8); r != g {
					t.Fatalf("seed %d draw %d: Int31n(8) %d != %d", seed, i, g, r)
				}
			case 6:
				if r, g := ref.Int63n(1<<40+3), got.Int63n(1<<40+3); r != g {
					t.Fatalf("seed %d draw %d: Int63n %d != %d", seed, i, g, r)
				}
			}
		}
	}
}

// TestSeedReducesLikeMathRand covers the Seed edge cases: multiples of
// 2³¹−1 reduce to zero (which remaps to 89482311), and negatives wrap.
func TestSeedReducesLikeMathRand(t *testing.T) {
	for _, seed := range []int64{int32max, 2 * int32max, -int32max, int32max + 5, -(int32max + 5)} {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 100; i++ {
			if r, g := ref.Int63(), got.Int63(); r != g {
				t.Fatalf("seed %d draw %d: %d != %d", seed, i, g, r)
			}
		}
	}
}

// TestNorm6MatchesScalar pins Norm6 to six scalar NormFloat64 draws —
// including across refill boundaries and slow-path rejections, which the
// long run below crosses many times.
func TestNorm6MatchesScalar(t *testing.T) {
	for _, seed := range []int64{1, 7, -3, 0} {
		ref := New(seed)
		got := New(seed)
		var out [6]float64
		for n := 0; n < 50000; n++ {
			got.Norm6(&out)
			for d := 0; d < 6; d++ {
				want := ref.NormFloat64()
				if math.Float64bits(want) != math.Float64bits(out[d]) {
					t.Fatalf("seed %d call %d draw %d: %v != %v", seed, n, d, out[d], want)
				}
			}
		}
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for name, fn := range map[string]func(*Rand){
		"Intn":   func(r *Rand) { r.Intn(0) },
		"Int31n": func(r *Rand) { r.Int31n(-1) },
		"Int63n": func(r *Rand) { r.Int63n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(<=0) did not panic", name)
				}
			}()
			fn(New(1))
		}()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.NormFloat64()
	}
	_ = s
}

func BenchmarkStdNormFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.NormFloat64()
	}
	_ = s
}
