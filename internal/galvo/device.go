// Package galvo simulates the physical galvo-mirror hardware of the
// prototype: a ThorLabs GVS102-class two-axis scanner driven through a USB
// DAQ. The simulator owns a hidden ground-truth gma.Params describing the
// unit's true (as-built) geometry and exposes only what the real hardware
// exposes — a voltage command interface with quantization, settle latency,
// servo pointing noise, and command clamping.
//
// Every learning algorithm in Cyclops interacts with the device through
// this surface; nothing outside the package (except tests, via Truth) may
// read the hidden geometry. That discipline is what makes the reproduced
// calibration errors meaningful.
package galvo

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/optics"
)

// Device is one simulated two-axis galvo assembly (mirrors + servo + DAQ
// channel pair), including the fixed collimator/SFP launch optics that
// complete a GMA.
type Device struct {
	mu sync.Mutex

	truth gma.Params
	// truthC is the compiled truth model: Beam/BeamAt run on every
	// plant power read (once per 1 ms tick), and the compilation hoists
	// the voltage-independent geometry once at construction.
	truthC gma.Compiled
	spec   optics.GalvoSpec
	daq    optics.DAQSpec
	rng    *rand.Rand

	v1, v2 float64 // commanded voltages after clamping+quantization

	// held freezes the mirror servos: commands are accepted (and their
	// latency accounted) but the mirrors do not move — the stuck-actuator
	// failure mode.
	held bool
	// rangeLimit, when > 0, clamps commandable |voltage| below the DAQ's
	// own output range — the saturated-driver failure mode.
	rangeLimit float64

	// slewRate is the mechanical slew rate used for large steps,
	// rad/s. The GVS102 does ~100 Hz full-field scanning, i.e. on the
	// order of a few hundred rad/s; small steps are dominated by the
	// fixed servo settle time instead.
	slewRate float64
}

// Option configures a Device.
type Option func(*Device)

// WithSlewRate overrides the mechanical slew rate (rad/s).
func WithSlewRate(r float64) Option {
	return func(d *Device) { d.slewRate = r }
}

// New builds a device around the given true geometry. The seed fixes the
// servo-noise stream so experiments are reproducible.
func New(truth gma.Params, spec optics.GalvoSpec, daq optics.DAQSpec, seed int64, opts ...Option) *Device {
	d := &Device{
		truth:    truth,
		truthC:   truth.Compile(),
		spec:     spec,
		daq:      daq,
		rng:      rand.New(rand.NewSource(seed)),
		slewRate: 300,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// NewUnit manufactures a device with realistic unit-to-unit geometry
// variation: the truth is gma.Nominal perturbed by assembly tolerances.
func NewUnit(seed int64) *Device {
	rng := rand.New(rand.NewSource(seed))
	return New(gma.Perturbed(rng), optics.GVS102, optics.USB1608G, seed+1)
}

// SetVoltages commands the two mirror channels. The command is clamped to
// the DAQ output range and quantized to its DAC step. It returns the time
// the pointing change takes to complete: DAQ conversion plus servo settle
// plus slew for large steps. (The simulator has no hidden clock; callers —
// the pointing loop, the simulation engine — account the returned latency.)
func (d *Device) SetVoltages(v1, v2 float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()

	q1 := d.quantize(clamp(v1, d.effectiveRange()))
	q2 := d.quantize(clamp(v2, d.effectiveRange()))

	// Mechanical travel for the larger of the two channels.
	delta := math.Max(math.Abs(q1-d.v1), math.Abs(q2-d.v2)) * d.truth.Theta1
	lat := d.daq.WriteLatency + d.spec.StepLatency +
		time.Duration(delta/d.slewRate*float64(time.Second))

	// A held servo accepts the command (the DAQ write happens, latency
	// and all) but the mirrors never move.
	if !d.held {
		d.v1, d.v2 = q1, q2
	}
	return lat
}

// SetHold freezes or releases the mirror servos. While held, voltage
// commands are accepted but ignored; releasing the hold leaves the
// mirrors at their last pre-hold position until the next command. This is
// the stuck-actuator injection surface — the device does not know a fault
// schedule exists.
func (d *Device) SetHold(h bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.held = h
}

// SetRangeLimit clamps commandable |voltage| to limit volts, below the
// DAQ's own output range — the saturated-driver injection surface. A
// non-positive limit restores the full range. Already-commanded voltages
// are unaffected until the next command.
func (d *Device) SetRangeLimit(limit float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if limit < 0 {
		limit = 0
	}
	d.rangeLimit = limit
}

// effectiveRange is the active |voltage| clamp: the DAQ output range,
// tightened by any injected saturation limit. Callers hold d.mu.
func (d *Device) effectiveRange() float64 {
	if d.rangeLimit > 0 && d.rangeLimit < d.daq.OutputRange {
		return d.rangeLimit
	}
	return d.daq.OutputRange
}

// Voltages returns the currently commanded (clamped, quantized) voltages.
func (d *Device) Voltages() (v1, v2 float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.v1, d.v2
}

// VoltageStep returns the smallest commandable voltage increment — the
// paper's "minimum GM voltage step", used as the pointing-iteration stop
// threshold.
func (d *Device) VoltageStep() float64 { return d.daq.VoltageStep() }

// VoltageRange returns the symmetric command limit.
func (d *Device) VoltageRange() float64 { return d.daq.OutputRange }

// Beam returns the beam the assembly is emitting right now, in the
// device's K-space frame, including servo pointing noise (the GVS102's
// 10 µrad-class jitter). Each call samples fresh noise, exactly like
// reading a jittering physical beam.
func (d *Device) Beam() (geom.Ray, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Servo noise enters as an equivalent voltage perturbation on each
	// mirror: angular accuracy is optical; mechanical is half; one
	// mechanical radian is 1/θ₁ volts.
	sigmaV := d.spec.AngularAccuracy / 2 / d.truth.Theta1
	n1 := d.v1 + d.rng.NormFloat64()*sigmaV
	n2 := d.v2 + d.rng.NormFloat64()*sigmaV
	return d.truthC.Beam(n1, n2)
}

// BeamAt evaluates the emitted beam for explicit voltages without changing
// the device state — the hardware equivalent is briefly commanding the
// mirrors and reading where the spot lands. Noise is applied as in Beam.
func (d *Device) BeamAt(v1, v2 float64) (geom.Ray, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sigmaV := d.spec.AngularAccuracy / 2 / d.truth.Theta1
	q1 := d.quantize(clamp(v1, d.effectiveRange())) + d.rng.NormFloat64()*sigmaV
	q2 := d.quantize(clamp(v2, d.effectiveRange())) + d.rng.NormFloat64()*sigmaV
	return d.truthC.Beam(q1, q2)
}

// Truth exposes the hidden geometry. It exists for test oracles and for
// constructing the physical link simulation; learning code must never call
// it.
func (d *Device) Truth() gma.Params { return d.truth }

// Spec returns the galvo specification.
func (d *Device) Spec() optics.GalvoSpec { return d.spec }

func (d *Device) quantize(v float64) float64 {
	step := d.daq.VoltageStep()
	return math.Round(v/step) * step
}

func clamp(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}
