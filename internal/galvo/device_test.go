package galvo

import (
	"math"
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/gma"
	"cyclops/internal/optics"
)

func newTestDevice() *Device {
	return New(gma.Nominal(), optics.GVS102, optics.USB1608G, 1)
}

func TestSetVoltagesClampAndQuantize(t *testing.T) {
	d := newTestDevice()
	d.SetVoltages(99, -99)
	v1, v2 := d.Voltages()
	if v1 != 10 || v2 != -10 {
		t.Errorf("clamp: got %v %v, want ±10", v1, v2)
	}

	d.SetVoltages(1.23456789, 0)
	v1, _ = d.Voltages()
	step := d.VoltageStep()
	if r := math.Mod(v1, step); math.Abs(r) > 1e-12 && math.Abs(r-step) > 1e-12 {
		t.Errorf("voltage %v not on DAC grid (step %v)", v1, step)
	}
	if math.Abs(v1-1.23456789) > step {
		t.Errorf("quantized %v too far from command", v1)
	}
}

func TestSetVoltagesLatency(t *testing.T) {
	d := newTestDevice()
	// Small step: dominated by DAQ write + servo settle (1–2 ms, §5.2).
	lat := d.SetVoltages(0.01, 0.01)
	if lat < time.Millisecond || lat > 3*time.Millisecond {
		t.Errorf("small-step latency = %v, want 1-3 ms", lat)
	}
	// Large step takes longer than small step.
	d2 := newTestDevice()
	latBig := d2.SetVoltages(10, 10)
	if latBig <= lat {
		t.Errorf("large step %v not slower than small step %v", latBig, lat)
	}
}

func TestBeamFollowsCommands(t *testing.T) {
	d := newTestDevice()
	d.SetVoltages(0, 0)
	b0, err := d.Beam()
	if err != nil {
		t.Fatal(err)
	}
	d.SetVoltages(0, 2)
	b1, err := d.Beam()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * gma.Nominal().Theta1 * 2 // optical = 2× mechanical, 2 V
	got := b0.Dir.AngleTo(b1.Dir)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("deflection = %v rad, want ≈%v", got, want)
	}
}

func TestBeamNoiseIsSmallAndNonZero(t *testing.T) {
	d := newTestDevice()
	d.SetVoltages(0, 0)
	ref, _ := d.Truth().Beam(0, 0)
	var maxDev float64
	var anyDev bool
	for i := 0; i < 200; i++ {
		b, err := d.Beam()
		if err != nil {
			t.Fatal(err)
		}
		dev := b.Dir.AngleTo(ref.Dir)
		if dev > 0 {
			anyDev = true
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	if !anyDev {
		t.Error("servo noise absent")
	}
	// GVS102-class noise: tens of µrad at most, nowhere near a mrad.
	if maxDev > 100e-6 {
		t.Errorf("servo noise %v rad too large", maxDev)
	}
}

func TestBeamAtDoesNotChangeState(t *testing.T) {
	d := newTestDevice()
	d.SetVoltages(1, -1)
	w1, w2 := d.Voltages() // quantized versions of the command
	if _, err := d.BeamAt(3, 3); err != nil {
		t.Fatal(err)
	}
	v1, v2 := d.Voltages()
	if v1 != w1 || v2 != w2 {
		t.Errorf("BeamAt mutated state: %v %v, want %v %v", v1, v2, w1, w2)
	}
}

func TestNewUnitVariation(t *testing.T) {
	a, b := NewUnit(1), NewUnit(2)
	if a.Truth() == b.Truth() {
		t.Error("two units share identical geometry")
	}
	// Both still function.
	for _, d := range []*Device{a, b} {
		if _, err := d.Beam(); err != nil {
			t.Fatalf("unit cannot emit: %v", err)
		}
	}
}

func TestNewUnitDeterministic(t *testing.T) {
	if NewUnit(7).Truth() != NewUnit(7).Truth() {
		t.Error("same seed produced different units")
	}
}

func TestWithSlewRate(t *testing.T) {
	slow := New(gma.Nominal(), optics.GVS102, optics.USB1608G, 1, WithSlewRate(1))
	fast := New(gma.Nominal(), optics.GVS102, optics.USB1608G, 1, WithSlewRate(1e6))
	ls := slow.SetVoltages(10, 10)
	lf := fast.SetVoltages(10, 10)
	if ls <= lf {
		t.Errorf("slow slew %v not slower than fast %v", ls, lf)
	}
}

func TestBeamTracksBoardTarget(t *testing.T) {
	// Sanity: sweeping v1 moves the board hit in X, sweeping v2 in Y —
	// the rectangular coverage cone.
	d := newTestDevice()
	board := geom.NewPlane(geom.V(0, 0, 1.5), geom.V(0, 0, -1))
	hit := func(v1, v2 float64) geom.Vec3 {
		b, err := d.BeamAt(v1, v2)
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := board.Intersect(b)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h00 := hit(0, 0)
	h10 := hit(1, 0)
	h01 := hit(0, 1)
	if math.Abs(h10.X-h00.X) < 0.01 {
		t.Error("v1 did not steer X")
	}
	if math.Abs(h01.Y-h00.Y) < 0.01 {
		t.Error("v2 did not steer Y")
	}
}

// A held (stuck-mirror) device acknowledges commands — latency and all —
// but the mirrors never move; releasing the hold restores normal motion.
func TestSetVoltagesHold(t *testing.T) {
	d := newTestDevice()
	d.SetVoltages(1, -1)
	h1, h2 := d.Voltages()
	d.SetHold(true)
	lat := d.SetVoltages(5, 5)
	if lat <= 0 {
		t.Error("held device reported zero latency")
	}
	v1, v2 := d.Voltages()
	if v1 != h1 || v2 != h2 {
		t.Errorf("held mirrors moved: got %v %v, want %v %v", v1, v2, h1, h2)
	}
	d.SetHold(false)
	d.SetVoltages(2, 2)
	if v1, v2 = d.Voltages(); v1 == h1 || v2 == h2 {
		t.Errorf("released mirrors did not move: got %v %v", v1, v2)
	}
}

// A saturation fault tightens the commandable range below the DAQ's; a
// zero or negative limit restores the full range.
func TestSetVoltagesRangeLimit(t *testing.T) {
	d := newTestDevice()
	step := d.VoltageStep()
	d.SetRangeLimit(0.5)
	d.SetVoltages(3, -3)
	v1, v2 := d.Voltages()
	if math.Abs(v1-0.5) > step || math.Abs(v2+0.5) > step {
		t.Errorf("saturated clamp: got %v %v, want ≈±0.5", v1, v2)
	}
	// A limit wider than the DAQ's output range has no effect.
	d.SetRangeLimit(99)
	d.SetVoltages(99, -99)
	if v1, v2 = d.Voltages(); v1 != 10 || v2 != -10 {
		t.Errorf("wide limit: got %v %v, want ±10", v1, v2)
	}
	d.SetRangeLimit(0)
	d.SetVoltages(3, -3)
	if v1, v2 = d.Voltages(); math.Abs(v1-3) > step || math.Abs(v2+3) > step {
		t.Errorf("cleared limit: got %v %v, want ≈±3", v1, v2)
	}
}
