package netem

import (
	"math"
	"testing"
	"time"
)

const ms = time.Millisecond

func TestStreamSteadyState(t *testing.T) {
	s := NewStream()
	// 500 ms of a clean 9.4 Gbps link at 1 ms ticks.
	for i := 0; i < 500; i++ {
		s.Tick(time.Duration(i)*ms, ms, true, 9.4)
	}
	ws := s.Finish()
	if len(ws) < 9 {
		t.Fatalf("got %d windows, want ≈10", len(ws))
	}
	// After the initial ramp, windows sit at the line rate.
	for _, w := range ws[4:] {
		if math.Abs(w.Gbps-9.4) > 0.1 {
			t.Errorf("window at %v = %.2f Gbps, want 9.4", w.Start, w.Gbps)
		}
	}
	if s.Packets() == 0 {
		t.Error("no packets accounted")
	}
}

func TestStreamOutageAndRamp(t *testing.T) {
	s := NewStream()
	state := func(i int) bool { return i < 100 || i >= 200 }
	for i := 0; i < 500; i++ {
		s.Tick(time.Duration(i)*ms, ms, state(i), 9.4)
	}
	ws := s.Finish()
	// Windows fully inside the outage read zero.
	var sawZero, sawFull bool
	for _, w := range ws {
		if w.Start >= 100*ms && w.Start+50*ms <= 200*ms && w.Gbps == 0 {
			sawZero = true
		}
		if w.Start >= 400*ms && math.Abs(w.Gbps-9.4) < 0.1 {
			sawFull = true
		}
	}
	if !sawZero {
		t.Error("no zero window during outage")
	}
	if !sawFull {
		t.Error("no recovery to full rate")
	}
	// The first window after recovery is partial (slow-start ramp).
	for _, w := range ws {
		if w.Start == 200*ms {
			if w.Gbps >= 9.0 {
				t.Errorf("window right after recovery = %.2f Gbps — ramp missing", w.Gbps)
			}
		}
	}
}

func TestStreamPacketAccountingCarriesRemainder(t *testing.T) {
	// At 10 Gbps over 1 ms ticks each tick delivers 833.33 packets.
	// Truncating per tick (the old accounting) loses the 0.33 every
	// tick — 333 packets per second, ~0.04 % of traffic gone. The total
	// over N ticks must match total_bits/8/MTU within one packet.
	s := NewStream()
	s.RampTime = 0
	const ticks = 1000
	for i := 0; i < ticks; i++ {
		s.Tick(time.Duration(i)*ms, ms, true, 10)
	}
	totalBits := 10e9 * (ticks * ms).Seconds()
	want := totalBits / 8 / float64(s.MTU) // 833333.33
	if got := float64(s.Packets()); math.Abs(got-want) > 1 {
		t.Errorf("packets = %.0f, want %.2f ± 1 (per-tick truncation?)", got, want)
	}

	// The remainder must also survive ramps, where per-tick fractions
	// vary: total packet count still tracks total delivered bits.
	s2 := NewStream()
	var bits float64
	for i := 0; i < 400; i++ {
		up := i%100 < 60 // outage every 100 ms; ramp on recovery
		s2.Tick(time.Duration(i)*ms, ms, up, 9.4)
		if up {
			rate := 9.4
			sinceUp := time.Duration(i%100) * ms
			if sinceUp < s2.RampTime {
				rate *= float64(sinceUp) / float64(s2.RampTime)
			}
			bits += rate * 1e9 * ms.Seconds()
		}
	}
	want2 := bits / 8 / float64(s2.MTU)
	if got := float64(s2.Packets()); math.Abs(got-want2) > 1 {
		t.Errorf("ramped packets = %.0f, want %.2f ± 1", got, want2)
	}
}

func TestStreamWindowRolloverGaps(t *testing.T) {
	// Sparse ticks must still produce continuous windows.
	s := NewStream()
	s.Tick(0, ms, true, 10)
	s.Tick(230*ms, ms, true, 10)
	ws := s.Finish()
	// Four complete windows (0-50, 50-100, 100-150, 150-200); the window
	// containing the 230 ms tick is incomplete and dropped.
	if len(ws) != 4 {
		t.Fatalf("rollover produced %d windows, want 4", len(ws))
	}
	if ws[1].Gbps != 0 || ws[2].Gbps != 0 {
		t.Error("idle windows not zero")
	}
}

func TestStreamMeanGbps(t *testing.T) {
	s := NewStream()
	s.RampTime = 0
	for i := 0; i < 200; i++ {
		s.Tick(time.Duration(i)*ms, ms, i%2 == 0, 10)
	}
	s.Finish()
	mean := s.MeanGbps()
	if math.Abs(mean-5) > 0.3 {
		t.Errorf("50%%-duty mean = %.2f Gbps, want ≈5", mean)
	}
}

func TestVideoProfiles(t *testing.T) {
	// §2.1: 8K RGB 30 fps ≈ 24 Gbps.
	if g := Video8K30.Gbps(); math.Abs(g-23.9) > 0.5 {
		t.Errorf("8K30 = %.1f Gbps, want ≈24", g)
	}
	if g := Video4K30.Gbps(); math.Abs(g-6.0) > 0.2 {
		t.Errorf("4K30 = %.1f Gbps, want ≈6", g)
	}
	if g := Video4K90.Gbps(); math.Abs(g-17.9) > 0.5 {
		t.Errorf("4K90 = %.1f Gbps, want ≈17.9", g)
	}
}

func TestFrameStreamerCleanLink(t *testing.T) {
	// A 10G link carries 4K30 (6 Gbps) without late frames.
	f := NewFrameStreamer(Video4K30)
	for i := 0; i < 2000; i++ {
		f.Tick(time.Duration(i)*ms, ms, true, 9.4)
	}
	st := f.Stats()
	if st.Generated < 55 {
		t.Fatalf("generated %d frames in 2 s, want ≈60", st.Generated)
	}
	if st.Dropped > 0 {
		t.Errorf("dropped %d frames on a clean link", st.Dropped)
	}
	if st.Late > 1 {
		t.Errorf("%d late frames on a clean link", st.Late)
	}
	if st.DeliveredFraction() < 0.9 {
		t.Errorf("delivered fraction %.2f", st.DeliveredFraction())
	}
}

func TestFrameStreamerOverloadedLink(t *testing.T) {
	// 8K30 (24 Gbps) cannot fit a 10G link: frames drop.
	f := NewFrameStreamer(Video8K30)
	for i := 0; i < 2000; i++ {
		f.Tick(time.Duration(i)*ms, ms, true, 9.4)
	}
	st := f.Stats()
	if st.Dropped == 0 {
		t.Error("no drops on an oversubscribed link")
	}
	// Raw 8K30 (23.9 Gbps) marginally exceeds even the 25G goodput
	// (23.5 Gbps) — the §2.1 argument for still-higher-rate links —
	// but 4K90 (17.9 Gbps) fits with headroom.
	f2 := NewFrameStreamer(Video4K90)
	for i := 0; i < 2000; i++ {
		f2.Tick(time.Duration(i)*ms, ms, true, 23.5)
	}
	if st2 := f2.Stats(); st2.Dropped > 0 || st2.Late > 1 {
		t.Errorf("25G link struggled with 4K90: %v", st2)
	}
}

func TestFrameStreamerOutage(t *testing.T) {
	f := NewFrameStreamer(Video4K30)
	for i := 0; i < 2000; i++ {
		up := i < 500 || i > 800
		f.Tick(time.Duration(i)*ms, ms, up, 9.4)
	}
	st := f.Stats()
	if st.Dropped == 0 {
		t.Error("300 ms outage should drop frames (queue cap)")
	}
	if st.MaxDelay < 50*ms {
		t.Errorf("max delay %v too small for an outage", st.MaxDelay)
	}
	if st.DeliveredFraction() > 0.95 {
		t.Errorf("delivered fraction %.2f too high with outage", st.DeliveredFraction())
	}
}

// Frozen ticks suspend accounting: any 50 ms window containing a frozen
// tick is dropped at rollover rather than reported as a fabricated
// zero-goodput measurement, and TCP re-ramps when normal ticks resume.
func TestStreamFreezeTick(t *testing.T) {
	s := NewStream()
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * ms
		if i >= 100 && i < 200 {
			s.FreezeTick(at, ms)
		} else {
			s.Tick(at, ms, true, 9.4)
		}
	}
	ws := s.Finish()
	if s.FrozenWindows() == 0 {
		t.Fatal("no windows were frozen")
	}
	for _, w := range ws {
		if w.Start >= 100*ms && w.Start < 200*ms {
			t.Errorf("window at %v reported during the frozen span", w.Start)
		}
		if w.Gbps < 0 {
			t.Errorf("window at %v has negative goodput %v", w.Start, w.Gbps)
		}
	}
	// TCP restarts from slow start after the freeze.
	var after []Window
	for _, w := range ws {
		if w.Start >= 200*ms {
			after = append(after, w)
		}
	}
	if len(after) < 2 {
		t.Fatal("no windows after the freeze")
	}
	if after[0].Gbps >= 9.0 {
		t.Errorf("first window after freeze = %.2f Gbps — re-ramp missing", after[0].Gbps)
	}
	if last := after[len(after)-1]; math.Abs(last.Gbps-9.4) > 0.1 {
		t.Errorf("did not recover to line rate: %.2f Gbps", last.Gbps)
	}
}

// A freeze-only stream reports nothing and never panics.
func TestStreamAllFrozen(t *testing.T) {
	s := NewStream()
	for i := 0; i < 200; i++ {
		s.FreezeTick(time.Duration(i)*ms, ms)
	}
	ws := s.Finish()
	if len(ws) != 0 {
		t.Errorf("all-frozen stream reported %d windows", len(ws))
	}
	if s.FrozenWindows() == 0 {
		t.Error("frozen windows not counted")
	}
}
