package netem

import (
	"fmt"
	"time"
)

// VideoProfile describes a raw VR video stream (§2.1's bandwidth
// motivation).
type VideoProfile struct {
	Name string
	// FPS is the frame rate.
	FPS float64
	// BitsPerFrame is the raw frame size.
	BitsPerFrame float64
}

// Gbps returns the stream's raw data rate.
func (v VideoProfile) Gbps() float64 { return v.BitsPerFrame * v.FPS / 1e9 }

// Standard profiles from the paper's §2.1 discussion.
var (
	// Video8K30 is uncompressed 8K RGB at 30 fps ≈ 24 Gbps.
	Video8K30 = VideoProfile{Name: "8K RGB 30fps", FPS: 30, BitsPerFrame: 7680 * 4320 * 24}
	// Video4K90 is uncompressed 4K RGB at 90 fps ≈ 17.9 Gbps — a
	// profile a 25G link carries with headroom.
	Video4K90 = VideoProfile{Name: "4K RGB 90fps", FPS: 90, BitsPerFrame: 3840 * 2160 * 24}
	// Video4K30 is uncompressed 4K RGB at 30 fps ≈ 6 Gbps — the kind of
	// stream a 10G link carries.
	Video4K30 = VideoProfile{Name: "4K RGB 30fps", FPS: 30, BitsPerFrame: 3840 * 2160 * 24}
)

// FrameStats summarizes a streaming session.
type FrameStats struct {
	Generated int
	Delivered int
	// Late counts frames delivered after more than one frame period
	// (motion-to-photon budget blown).
	Late int
	// Dropped counts frames abandoned because the queue exceeded
	// MaxQueue (the renderer skips ahead rather than letting latency
	// grow unboundedly).
	Dropped  int
	MaxDelay time.Duration
}

// DeliveredFraction returns Delivered/Generated.
func (s FrameStats) DeliveredFraction() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Generated)
}

func (s FrameStats) String() string {
	return fmt.Sprintf("frames: %d generated, %d delivered (%d late, %d dropped), max delay %v",
		s.Generated, s.Delivered, s.Late, s.Dropped, s.MaxDelay)
}

// FrameStreamer models the renderer pushing raw video frames over the
// link: frames are generated on the FPS clock, queued, and drained at the
// link's instantaneous rate.
type FrameStreamer struct {
	Profile VideoProfile
	// MaxQueue bounds queued frames before the renderer drops (default 3).
	MaxQueue int

	queue     []frame
	nextGen   time.Duration
	remaining float64 // bits left of the frame currently transmitting
	stats     FrameStats
}

type frame struct {
	born time.Duration
}

// NewFrameStreamer builds a streamer for the profile.
func NewFrameStreamer(p VideoProfile) *FrameStreamer {
	return &FrameStreamer{Profile: p, MaxQueue: 3}
}

// Tick advances the streamer by tickLen at time at with the given link
// state.
func (f *FrameStreamer) Tick(at, tickLen time.Duration, up bool, lineRateGbps float64) {
	period := time.Duration(float64(time.Second) / f.Profile.FPS)

	// Generate frames due in this tick.
	for f.nextGen <= at {
		f.stats.Generated++
		if len(f.queue) >= f.MaxQueue {
			f.stats.Dropped++
		} else {
			if len(f.queue) == 0 && f.remaining == 0 {
				f.remaining = f.Profile.BitsPerFrame
				f.queue = append(f.queue, frame{born: f.nextGen})
			} else {
				f.queue = append(f.queue, frame{born: f.nextGen})
			}
		}
		f.nextGen += period
	}

	if !up || len(f.queue) == 0 {
		return
	}
	if f.remaining == 0 {
		f.remaining = f.Profile.BitsPerFrame
	}

	budget := lineRateGbps * 1e9 * tickLen.Seconds()
	now := at + tickLen
	for budget > 0 && len(f.queue) > 0 {
		if budget >= f.remaining {
			budget -= f.remaining
			f.remaining = 0
			done := f.queue[0]
			f.queue = f.queue[1:]
			delay := now - done.born
			f.stats.Delivered++
			if delay > period {
				f.stats.Late++
			}
			if delay > f.stats.MaxDelay {
				f.stats.MaxDelay = delay
			}
			if len(f.queue) > 0 {
				f.remaining = f.Profile.BitsPerFrame
			}
		} else {
			f.remaining -= budget
			budget = 0
		}
	}
}

// Stats returns the session summary so far.
func (f *FrameStreamer) Stats() FrameStats { return f.stats }
