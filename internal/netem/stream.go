// Package netem provides the traffic layer of the evaluation: an
// iperf-equivalent bulk TCP stream measured over 50 ms windows (the §5.3
// methodology), and a VR frame streamer that models the renderer→headset
// video flow the link exists to carry.
//
// The package is deliberately decoupled from the optics: it consumes a
// per-tick link verdict (up/down + line rate) and produces packet and
// throughput accounting. The link-state dynamics (sensitivity threshold,
// SFP re-lock) live in internal/link.
package netem

import (
	"math"
	"time"

	"cyclops/internal/obs"
)

// Window is one throughput measurement: average goodput over the window
// starting at Start.
type Window struct {
	Start time.Duration
	Gbps  float64
}

// Stream is a bulk-transfer (iperf-style) sender measured over fixed
// windows. TCP dynamics are reduced to the one effect that shapes the
// paper's plots: after an outage, goodput ramps back linearly over
// RampTime (connection re-establishment + slow start) instead of stepping
// instantly to full rate.
type Stream struct {
	// WindowLen is the measurement window (the paper uses 50 ms).
	WindowLen time.Duration
	// MTU is the packet payload size in bytes (1500 default).
	MTU int
	// RampTime is the time to return to full rate after an outage.
	RampTime time.Duration
	// Metrics, when non-nil, receives the stream's totals (packets,
	// carried/offered bits, windows) once, when Finish is called —
	// aggregate flushing keeps the per-tick cost at two float adds.
	Metrics *StreamMetrics

	cur     time.Duration // current window start
	bits    float64       // bits delivered in the current window
	started bool
	upAt    time.Duration // when the link last came up
	wasUp   bool
	packets int64
	// fracPkts carries the sub-packet remainder between ticks: a tick
	// rarely delivers a whole number of MTUs (833.33 at 10 Gbps over
	// 1 ms), and truncating per tick would systematically undercount.
	fracPkts float64
	windows  []Window
	// curFrozen marks the current window as containing frozen
	// (degraded-mode) ticks; frozen windows are dropped at rollover
	// instead of being reported as fabricated zero-goodput measurements.
	curFrozen     bool
	frozenWindows int64
	// carriedBits / offeredBits total the run: offered counts the line
	// rate over every tick (up or down), so carried/offered is the
	// fraction of the link's nominal capacity actually delivered.
	carriedBits float64
	offeredBits float64
	flushed     bool
}

// StreamMetrics holds the traffic layer's observability instruments.
type StreamMetrics struct {
	Packets     *obs.Counter
	CarriedBits *obs.Counter
	OfferedBits *obs.Counter
	Windows     *obs.Counter
}

// NewStreamMetrics registers the stream instruments in reg (nil reg → nil
// metrics, recording disabled).
func NewStreamMetrics(reg *obs.Registry) *StreamMetrics {
	if reg == nil {
		return nil
	}
	return &StreamMetrics{
		Packets: reg.Counter("cyclops_netem_packets_total",
			"MTU-sized packets delivered by the bulk stream."),
		CarriedBits: reg.Counter("cyclops_netem_carried_bits_total",
			"Bits actually delivered (after outages and TCP ramp)."),
		OfferedBits: reg.Counter("cyclops_netem_offered_bits_total",
			"Bits the link would carry at the optimal rate with zero downtime."),
		Windows: reg.Counter("cyclops_netem_windows_total",
			"Completed 50 ms throughput measurement windows."),
	}
}

// NewStream builds a stream with the paper's measurement parameters.
func NewStream() *Stream {
	return &Stream{
		WindowLen: 50 * time.Millisecond,
		MTU:       1500,
		RampTime:  150 * time.Millisecond,
	}
}

// Tick advances the stream by tickLen at simulation time at: the link is
// either up at lineRateGbps or down. Ticks must be fed in order and
// aligned (at is the tick start).
func (s *Stream) Tick(at, tickLen time.Duration, up bool, lineRateGbps float64) {
	if !s.started {
		s.started = true
		s.cur = at
		s.wasUp = up
		s.upAt = at
	}
	// Window rollover (possibly multiple if ticks are coarse).
	for at >= s.cur+s.WindowLen {
		s.flushWindow()
	}

	if up && !s.wasUp {
		s.upAt = at
	}
	s.wasUp = up

	s.offeredBits += lineRateGbps * 1e9 * tickLen.Seconds()
	if up {
		rate := lineRateGbps
		if s.RampTime > 0 {
			sinceUp := at - s.upAt
			if sinceUp < s.RampTime {
				rate *= float64(sinceUp) / float64(s.RampTime)
			}
		}
		bits := rate * 1e9 * tickLen.Seconds()
		s.bits += bits
		s.carriedBits += bits
		s.fracPkts += bits / 8 / float64(s.MTU)
		if whole := math.Floor(s.fracPkts); whole > 0 {
			s.packets += int64(whole)
			s.fracPkts -= whole
		}
	}
}

func (s *Stream) flushWindow() {
	if s.curFrozen {
		// The window spent time in degraded mode: its accounting is
		// frozen, not measured-at-zero. Drop it rather than report a
		// throughput number the stream never observed.
		s.curFrozen = false
		s.frozenWindows++
		s.cur += s.WindowLen
		s.bits = 0
		return
	}
	gbps := s.bits / 1e9 / s.WindowLen.Seconds()
	s.windows = append(s.windows, Window{Start: s.cur, Gbps: gbps})
	s.cur += s.WindowLen
	s.bits = 0
}

// FreezeTick advances the stream clock by one tick without accruing any
// offered or carried bits — the graceful-degradation mode: when the
// supervisor declares the link degraded, traffic accounting pauses
// instead of charging a long outage against the throughput record.
// Windows containing frozen ticks are dropped at rollover (see
// FrozenWindows), and the link is treated as down so TCP re-ramps when
// normal ticks resume. Mixing FreezeTick and Tick within one window
// drops that window entirely.
func (s *Stream) FreezeTick(at, tickLen time.Duration) {
	if !s.started {
		s.started = true
		s.cur = at
		s.upAt = at
	}
	for at >= s.cur+s.WindowLen {
		s.flushWindow()
	}
	s.curFrozen = true
	s.wasUp = false
}

// FrozenWindows counts measurement windows dropped because they contained
// degraded-mode (frozen) ticks.
func (s *Stream) FrozenWindows() int64 { return s.frozenWindows }

// Finish returns all completed measurements. A partially filled trailing
// window is discarded — averaging a fraction of a window against the full
// window length would fabricate a throughput dip that never happened.
// If Metrics is attached, the stream's totals are flushed into it exactly
// once, on the first Finish.
func (s *Stream) Finish() []Window {
	if s.Metrics != nil && !s.flushed {
		s.flushed = true
		s.Metrics.Packets.Add(float64(s.packets))
		s.Metrics.CarriedBits.Add(s.carriedBits)
		s.Metrics.OfferedBits.Add(s.offeredBits)
		s.Metrics.Windows.Add(float64(len(s.windows)))
	}
	return s.windows
}

// CarriedFraction is the share of the link's nominal zero-downtime
// capacity actually delivered so far (1 means no outages and no ramping).
func (s *Stream) CarriedFraction() float64 {
	if s.offeredBits == 0 {
		return 0
	}
	return s.carriedBits / s.offeredBits
}

// Windows returns the completed measurement windows so far.
func (s *Stream) Windows() []Window { return s.windows }

// Packets returns the cumulative delivered packet count.
func (s *Stream) Packets() int64 { return s.packets }

// MeanGbps returns the average goodput across all completed windows.
func (s *Stream) MeanGbps() float64 {
	if len(s.windows) == 0 {
		return 0
	}
	var sum float64
	for _, w := range s.windows {
		sum += w.Gbps
	}
	return sum / float64(len(s.windows))
}
