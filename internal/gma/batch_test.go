package gma

import (
	"errors"
	"math/rand"
	"testing"

	"cyclops/internal/geom"
)

// TestBeamBatchBitIdentical is the batched kernel's contract: for every
// model and every pair in a batch, BeamBatch writes exactly the floats —
// and exactly the error value — that Compiled.Beam returns for that pair.
// The sweep covers >100k voltage pairs across randomized models and batch
// sizes (including the solver's real shapes, 2/3/81), with voltages far
// past the operating range so both pre-wrapped mirror-miss errors appear.
func TestBeamBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sizes := []int{1, 2, 3, 5, 8, 64, 81}
	var hits, misses int
	pairs := 0
	for m := 0; pairs < 120_000; m++ {
		p := randParams(rng)
		c := p.Compile()
		for _, n := range sizes {
			buf := NewBeamBatchBuf(n)
			for i := 0; i < n; i++ {
				buf.V1[i] = (rng.Float64()*2 - 1) * 40
				buf.V2[i] = (rng.Float64()*2 - 1) * 40
			}
			// Poison the outputs: every element must be written.
			for i := 0; i < n; i++ {
				buf.Origin[i] = geom.V(1e300, 1e300, 1e300)
				buf.Dir[i] = geom.V(1e300, 1e300, 1e300)
				buf.Err[i] = errors.New("stale")
			}
			c.BeamBatch(buf)
			for i := 0; i < n; i++ {
				pairs++
				want, wantErr := c.Beam(buf.V1[i], buf.V2[i])
				if buf.Err[i] != wantErr {
					t.Fatalf("model %d n=%d pair %d (%v, %v): err %v, scalar %v",
						m, n, i, buf.V1[i], buf.V2[i], buf.Err[i], wantErr)
				}
				if wantErr != nil {
					misses++
					if !errors.Is(buf.Err[i], ErrBeamMissesMirror) {
						t.Fatalf("batch miss error does not wrap ErrBeamMissesMirror: %v", buf.Err[i])
					}
				} else {
					hits++
				}
				// Error pairs must zero the outputs exactly like Beam's
				// zero Ray return, so the comparison is unconditional.
				if rayBits(buf.Ray(i)) != rayBits(want) {
					t.Fatalf("model %d n=%d pair %d (%v, %v):\n  scalar %v\n  batch  %v",
						m, n, i, buf.V1[i], buf.V2[i], want, buf.Ray(i))
				}
			}
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate sweep: %d hits, %d misses", hits, misses)
	}
}

// TestBeamBatchZeroAllocs pins the batched kernel's zero-allocation
// contract over a reused buffer, on a batch mixing clean pairs with a
// mirror miss (the miss path stores a pre-wrapped error, no boxing).
func TestBeamBatchZeroAllocs(t *testing.T) {
	c := Nominal().Compile()
	missV1 := findMissVoltage(t, &c)
	buf := NewBeamBatchBuf(8)
	for i := range buf.V1 {
		buf.V1[i] = 1.3 - 0.1*float64(i)
		buf.V2[i] = -0.7 + 0.1*float64(i)
	}
	buf.V1[5] = missV1 // one guaranteed miss inside the batch
	if n := testing.AllocsPerRun(1000, func() {
		c.BeamBatch(buf)
	}); n != 0 {
		t.Fatalf("BeamBatch allocates %v per call, want 0", n)
	}
	if buf.Err[5] == nil || !errors.Is(buf.Err[5], ErrBeamMissesMirror) {
		t.Fatalf("expected a mirror miss at pair 5, got %v", buf.Err[5])
	}
}

// findMissVoltage scans for a first-mirror voltage that makes the nominal
// assembly miss, mirroring the probe TestCompiledBeamZeroAllocs uses.
func findMissVoltage(t *testing.T, c *Compiled) float64 {
	t.Helper()
	for v := 5.0; v <= 400; v += 0.5 {
		if _, err := c.Beam(v, 0); err != nil {
			return v
		}
	}
	t.Fatal("no missing voltage found on the nominal assembly")
	return 0
}

// benchBatch measures one BeamBatch call over n pairs (report divides to
// per-pair cost); the N=1 case isolates the fixed batch overhead against
// BenchmarkCompiledBeam.
func benchBatch(b *testing.B, n int) {
	c := Nominal().Compile()
	buf := NewBeamBatchBuf(n)
	for i := 0; i < n; i++ {
		buf.V1[i] = 1.3 - 0.01*float64(i)
		buf.V2[i] = -0.7 + 0.01*float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.BeamBatch(buf)
	}
}

func BenchmarkBeamBatch1(b *testing.B)  { benchBatch(b, 1) }
func BenchmarkBeamBatch8(b *testing.B)  { benchBatch(b, 8) }
func BenchmarkBeamBatch64(b *testing.B) { benchBatch(b, 64) }
