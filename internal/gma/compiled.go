package gma

import (
	"fmt"
	"math"

	"cyclops/internal/geom"
)

// Pre-wrapped mirror-miss errors. Params.Beam used to wrap
// ErrBeamMissesMirror with fmt.Errorf on every failing call; the hot
// pointing loop probes beams that can miss (coarse seeding sweeps the full
// voltage square), and a heap allocation per miss would break the
// zero-allocation contract of the compiled path. The messages and the
// errors.Is(err, ErrBeamMissesMirror) behavior are unchanged.
var (
	errFirstMirror  = fmt.Errorf("first mirror: %w", ErrBeamMissesMirror)
	errSecondMirror = fmt.Errorf("second mirror: %w", ErrBeamMissesMirror)
)

// mirrorRot is one mirror's precompiled Rodrigues rotation: the unit
// rotation axis, the axis outer-product terms that AxisAngle rebuilds from
// scratch on every call, and the unit zero-voltage normal the rotation is
// applied to.
type mirrorRot struct {
	axis                   geom.Vec3 // unit rotation axis (r⃗ᵢ normalized)
	xx, xy, xz, yy, yz, zz float64   // axis outer products
	n                      geom.Vec3 // unit zero-voltage normal (n⃗ᵢ normalized)
}

func newMirrorRot(axis, normal geom.Vec3) mirrorRot {
	u := axis.Unit()
	return mirrorRot{
		axis: u,
		xx:   u.X * u.X, xy: u.X * u.Y, xz: u.X * u.Z,
		yy: u.Y * u.Y, yz: u.Y * u.Z, zz: u.Z * u.Z,
		n: normal.Unit(),
	}
}

// rotated returns R(axis, theta)·n, matching AxisAngle followed by
// Mat3.Apply bit for bit: the matrix entries use the same left-associated
// products (x*y*oc ≡ (x*y)*oc, with the x*y factor precompiled; IEEE
// multiplication is commutative, so the transposed entries' y*x equals the
// cached x*y exactly), and math.Sincos returns exactly (Sin, Cos) — pinned
// by TestSincosBitIdentical in internal/geom.
func (m *mirrorRot) rotated(theta float64) geom.Vec3 {
	s, c := math.Sincos(theta)
	oc := 1 - c
	x, y, z := m.axis.X, m.axis.Y, m.axis.Z
	m00, m01, m02 := c+m.xx*oc, m.xy*oc-z*s, m.xz*oc+y*s
	m10, m11, m12 := m.xy*oc+z*s, c+m.yy*oc, m.yz*oc-x*s
	m20, m21, m22 := m.xz*oc-y*s, m.yz*oc+x*s, c+m.zz*oc
	v := m.n
	return geom.Vec3{
		X: m00*v.X + m01*v.Y + m02*v.Z,
		Y: m10*v.X + m11*v.Y + m12*v.Z,
		Z: m20*v.X + m21*v.Y + m22*v.Z,
	}
}

// Compiled is a GMA model preprocessed for repeated Beam evaluation. The
// pointing function evaluates G thousands of times per second (three beam
// evaluations per G′ iteration, two models per coincidence step), but only
// the two mirror angles change between calls — everything else in Params
// is voltage-independent. Compile hoists that invariant work (unit
// normalization of five direction vectors, the input ray, the Rodrigues
// axis products, the first mirror's plane offset) so Beam runs the
// voltage-dependent remainder only, with zero heap allocations.
//
// The contract is strict bit-identity: for every (v1, v2),
// Compiled.Beam(v1, v2) returns exactly the floats (and the same error
// classification) Params.Beam returns. TestCompiledBeamBitIdentical
// enforces this over randomized models and voltage sweeps.
type Compiled struct {
	// Src is the source parameter set, kept for callers that need the
	// raw §4.1 quantities (reporting, re-compilation after a transform).
	Src Params

	in      geom.Ray  // unit-direction input beam (p₀, x⃗₀/|x⃗₀|)
	q1SubP0 geom.Vec3 // q₁ − p₀: the first plane offset seen by Intersect
	q2      geom.Vec3 // second mirror plane point
	m1, m2  mirrorRot
	theta1  float64
}

// Compile precomputes the voltage-independent parts of G. The returned
// value is self-contained; callers typically keep a pointer and call Beam
// on it from the hot loop.
func (p Params) Compile() Compiled {
	in := geom.NewRay(p.P0, p.X0)
	return Compiled{
		Src:     p,
		in:      in,
		q1SubP0: p.Q1.Sub(p.P0),
		q2:      p.Q2,
		m1:      newMirrorRot(p.R1, p.N1),
		m2:      newMirrorRot(p.R2, p.N2),
		theta1:  p.Theta1,
	}
}

// Beam evaluates G(v1, v2) exactly as Params.Beam does — same §4.1
// sequence, same floats, same error classification — without recomputing
// the voltage-independent subexpressions and without touching the heap.
//
// Two deliberate reuses keep it lean while staying bit-identical: the
// reflection's d·n is the intersection's denominator recomputed (both are
// pure, so reusing the first result is exact), and the plane normals are
// the rotated unit normals passed through the same Unit() normalization
// NewPlane applies.
//
//cyclops:hotpath zero-alloc contract pinned by TestCompiledBeamZeroAllocs and make alloc-check
func (c *Compiled) Beam(v1, v2 float64) (geom.Ray, error) {
	pn1 := c.m1.rotated(c.theta1 * v1).Unit()
	pn2 := c.m2.rotated(c.theta1 * v2).Unit()

	// First mirror: Reflect(in, Plane{q₁, pn1}).
	d := c.in.Dir
	denom := d.Dot(pn1)
	if math.Abs(denom) < 1e-15 {
		return geom.Ray{}, errFirstMirror
	}
	t := c.q1SubP0.Dot(pn1) / denom
	if t < 0 {
		return geom.Ray{}, errFirstMirror
	}
	hit := c.in.At(t)
	dir1 := d.Sub(pn1.Scale(2 * denom)).Unit()

	// Second mirror: Reflect(mid, Plane{q₂, pn2}).
	denom2 := dir1.Dot(pn2)
	if math.Abs(denom2) < 1e-15 {
		return geom.Ray{}, errSecondMirror
	}
	t2 := c.q2.Sub(hit).Dot(pn2) / denom2
	if t2 < 0 {
		return geom.Ray{}, errSecondMirror
	}
	hit2 := hit.Add(dir1.Scale(t2))
	dir2 := dir1.Sub(pn2.Scale(2 * denom2)).Unit()
	return geom.Ray{Origin: hit2, Dir: dir2}, nil
}

// BoardHit evaluates f(G(v1,v2)) against a target board, like
// Params.BoardHit but on the compiled model.
func (c *Compiled) BoardHit(v1, v2 float64, board geom.Plane) (geom.Vec3, error) {
	beam, err := c.Beam(v1, v2)
	if err != nil {
		return geom.Vec3{}, err
	}
	hit, _, err := board.Intersect(beam)
	if err != nil {
		return geom.Vec3{}, fmt.Errorf("board: %w", err)
	}
	return hit, nil
}
