package gma

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cyclops/internal/geom"
)

// randParams builds a plausible two-mirror assembly with randomized
// perturbations: geometry close enough to the nominal rig that most
// voltage pairs produce a beam, but with every parameter off-axis and
// non-unit so the compiled path's normalizations are exercised.
func randParams(rng *rand.Rand) Params {
	j := func(scale float64) float64 { return (rng.Float64()*2 - 1) * scale }
	jv := func(scale float64) geom.Vec3 { return geom.V(j(scale), j(scale), j(scale)) }
	p := Params{
		P0:     geom.V(-0.05, 0, 0).Add(jv(0.01)),
		X0:     geom.V(1, 0, 0).Add(jv(0.2)).Scale(1 + rng.Float64()),
		N1:     geom.V(-1, 1, 0).Add(jv(0.3)).Scale(1 + rng.Float64()),
		Q1:     jv(0.005),
		R1:     geom.V(0, 0, 1).Add(jv(0.2)),
		N2:     geom.V(0, -1, 1).Add(jv(0.3)).Scale(1 + rng.Float64()),
		Q2:     geom.V(0, 0.04, 0).Add(jv(0.005)),
		R2:     geom.V(1, 0, 0).Add(jv(0.2)),
		Theta1: 0.02 + rng.Float64()*0.02,
	}
	return p
}

func rayBits(r geom.Ray) [6]uint64 {
	return [6]uint64{
		math.Float64bits(r.Origin.X), math.Float64bits(r.Origin.Y), math.Float64bits(r.Origin.Z),
		math.Float64bits(r.Dir.X), math.Float64bits(r.Dir.Y), math.Float64bits(r.Dir.Z),
	}
}

// TestCompiledBeamBitIdentical is the compiled model's contract: for every
// model and voltage pair, Compiled.Beam returns exactly the floats — and
// exactly the error — that the uncompiled Params.Beam returns.
func TestCompiledBeamBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models, voltsPerModel := 200, 500
	var hits, misses int
	for m := 0; m < models; m++ {
		p := randParams(rng)
		c := p.Compile()
		for k := 0; k < voltsPerModel; k++ {
			// Sweep well past the ±12 V operating range so the
			// miss/error paths are compared too.
			v1 := (rng.Float64()*2 - 1) * 40
			v2 := (rng.Float64()*2 - 1) * 40
			want, wantErr := p.Beam(v1, v2)
			got, gotErr := c.Beam(v1, v2)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("model %d Beam(%v, %v): err %v vs compiled %v", m, v1, v2, wantErr, gotErr)
			}
			if wantErr != nil {
				misses++
				if gotErr != wantErr {
					t.Fatalf("model %d Beam(%v, %v): error value %q vs compiled %q",
						m, v1, v2, wantErr, gotErr)
				}
				if !errors.Is(gotErr, ErrBeamMissesMirror) {
					t.Fatalf("compiled miss error does not wrap ErrBeamMissesMirror: %v", gotErr)
				}
				continue
			}
			hits++
			if rayBits(got) != rayBits(want) {
				t.Fatalf("model %d Beam(%v, %v):\n  params   %v\n  compiled %v",
					m, v1, v2, want, got)
			}
		}
	}
	// The sweep must exercise both outcomes or the contract is vacuous.
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate sweep: %d hits, %d misses", hits, misses)
	}
}

// TestCompiledBoardHitBitIdentical extends the contract through the board
// intersection used by the K-space training rig.
func TestCompiledBoardHitBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	board := geom.NewPlane(geom.V(1.75, 0.04, 0), geom.V(-1, 0, 0))
	for m := 0; m < 100; m++ {
		p := randParams(rng)
		c := p.Compile()
		for k := 0; k < 100; k++ {
			v1, v2 := (rng.Float64()*2-1)*12, (rng.Float64()*2-1)*12
			want, wantErr := p.BoardHit(v1, v2, board)
			got, gotErr := c.BoardHit(v1, v2, board)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("BoardHit err mismatch: %v vs %v", wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if math.Float64bits(want.X) != math.Float64bits(got.X) ||
				math.Float64bits(want.Y) != math.Float64bits(got.Y) ||
				math.Float64bits(want.Z) != math.Float64bits(got.Z) {
				t.Fatalf("BoardHit(%v, %v): %v vs compiled %v", v1, v2, want, got)
			}
		}
	}
}

// TestCompiledBeamZeroAllocs pins the zero-allocation contract on both the
// success and the miss path.
func TestCompiledBeamZeroAllocs(t *testing.T) {
	p := Nominal()
	c := p.Compile()
	var sink geom.Ray
	if n := testing.AllocsPerRun(1000, func() {
		r, err := c.Beam(1.3, -0.7)
		if err != nil {
			t.Fatalf("nominal beam failed: %v", err)
		}
		sink = r
	}); n != 0 {
		t.Fatalf("Compiled.Beam allocates %v per successful call, want 0", n)
	}
	// Find a voltage pair that genuinely misses (rotating the first
	// mirror toward grazing incidence), then pin the miss path too.
	missV1, found := 0.0, false
	for v := 5.0; v <= 400 && !found; v += 0.5 {
		if _, err := c.Beam(v, 0); err != nil {
			missV1, found = v, true
		}
	}
	if !found {
		t.Fatal("no missing voltage found in sweep")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := c.Beam(missV1, 0); err == nil {
			t.Fatalf("expected a miss at v1=%v", missV1)
		}
	}); n != 0 {
		t.Fatalf("Compiled.Beam allocates %v per missing call, want 0", n)
	}
	_ = sink
}
