package gma

import (
	"testing"
)

// The compiled-vs-uncompiled pair quantifies what Compile hoists out of
// the hot loop; bench-hotpath records both in BENCH_hotpath.json, and the
// 0 allocs/op on the compiled path is asserted by TestCompiledBeamZeroAllocs.

func BenchmarkParamsBeam(b *testing.B) {
	p := Nominal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Beam(1.3, -0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledBeam(b *testing.B) {
	c := Nominal().Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Beam(1.3, -0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	p := Nominal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := p.Compile()
		_ = c
	}
}
