package gma

import (
	"math"
	"math/rand"
	"testing"

	"cyclops/internal/geom"
)

func TestNominalZeroVoltageBeam(t *testing.T) {
	beam, err := Nominal().Beam(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At rest the assembly folds +X → +Y → +Z.
	if !beam.Dir.NearlyEqual(geom.V(0, 0, 1), 1e-9) {
		t.Errorf("rest beam dir = %v, want +Z", beam.Dir)
	}
	// Originating point is on the second mirror (the 10 mm gap point).
	if !beam.Origin.NearlyEqual(geom.V(0, 0.010, 0), 1e-9) {
		t.Errorf("rest beam origin = %v", beam.Origin)
	}
}

func TestVoltageSteering(t *testing.T) {
	p := Nominal()
	rest, _ := p.Beam(0, 0)

	// Driving the second mirror rotates the output in the Y-Z plane by
	// twice the mechanical angle.
	b2, err := p.Beam(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotAngle := rest.Dir.AngleTo(b2.Dir)
	if math.Abs(gotAngle-2*p.Theta1) > 1e-9 {
		t.Errorf("second-mirror deflection = %v rad/V, want %v", gotAngle, 2*p.Theta1)
	}
	if math.Abs(b2.Dir.X) > 1e-9 {
		t.Errorf("second mirror leaked X deflection: %v", b2.Dir)
	}

	// Driving the first mirror steers in X.
	b1, err := p.Beam(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1.Dir.X) < 1e-3 {
		t.Errorf("first mirror produced no X deflection: %v", b1.Dir)
	}
}

func TestDistortionOriginMoves(t *testing.T) {
	// The footnote-6 effect: the output beam's originating point p is NOT
	// constant — driving the first mirror moves the strike point on the
	// second mirror. This is the distortion [58] that the full model
	// captures and the fixed-origin simplification of [32,33] misses.
	p := Nominal()
	b0, _ := p.Beam(0, 0)
	b1, _ := p.Beam(2, 0)
	if b0.Origin.Dist(b1.Origin) < 1e-5 {
		t.Errorf("origin did not move with first-mirror voltage: %v vs %v",
			b0.Origin, b1.Origin)
	}
}

func TestBoardHitCenter(t *testing.T) {
	p := Nominal()
	board := geom.NewPlane(geom.V(0, 0, 1.5), geom.V(0, 0, -1))
	hit, err := p.BoardHit(0, 0, board)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.NearlyEqual(geom.V(0, 0.010, 1.5), 1e-9) {
		t.Errorf("rest hit = %v", hit)
	}
}

func TestBoardHitSmallAngleLinearity(t *testing.T) {
	// For small voltages the board displacement is ≈ 2·θ₁·v·distance.
	p := Nominal()
	board := geom.NewPlane(geom.V(0, 0, 1.5), geom.V(0, 0, -1))
	h0, _ := p.BoardHit(0, 0, board)
	h1, _ := p.BoardHit(0, 0.1, board)
	moved := h0.Dist(h1)
	want := 2 * p.Theta1 * 0.1 * 1.5
	if math.Abs(moved-want)/want > 0.02 {
		t.Errorf("small-angle displacement = %v, want ≈%v", moved, want)
	}
}

func TestBeamMissesMirror(t *testing.T) {
	p := Nominal()
	// Point the input beam away from the first mirror entirely.
	p.X0 = geom.V(-1, 0, 0)
	if _, err := p.Beam(0, 0); err == nil {
		t.Error("expected miss error")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		p := Perturbed(rng)
		q, err := FromVector(p.Vector())
		if err != nil {
			t.Fatal(err)
		}
		if q != p {
			t.Fatalf("roundtrip mismatch:\n%+v\n%+v", p, q)
		}
	}
}

func TestFromVectorWrongLength(t *testing.T) {
	if _, err := FromVector(make([]float64, 7)); err == nil {
		t.Error("short vector accepted")
	}
}

func TestTransformedConsistency(t *testing.T) {
	// Evaluating the transformed model equals transforming the
	// evaluation: G_world(v) == M·G_local(v).
	rng := rand.New(rand.NewSource(4))
	p := Perturbed(rng)
	m := geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(1, 2, 0.5), 0.8),
		geom.V(0.3, -1.2, 2.0),
	)
	pw := p.Transformed(m)
	for i := 0; i < 20; i++ {
		v1 := rng.Float64()*4 - 2
		v2 := rng.Float64()*4 - 2
		local, err := p.Beam(v1, v2)
		if err != nil {
			t.Fatal(err)
		}
		world, err := pw.Beam(v1, v2)
		if err != nil {
			t.Fatal(err)
		}
		wantRay := m.ApplyRay(local)
		if !world.Origin.NearlyEqual(wantRay.Origin, 1e-9) {
			t.Fatalf("transformed origin mismatch: %v vs %v", world.Origin, wantRay.Origin)
		}
		if !world.Dir.NearlyEqual(wantRay.Dir, 1e-9) {
			t.Fatalf("transformed dir mismatch: %v vs %v", world.Dir, wantRay.Dir)
		}
	}
}

func TestValid(t *testing.T) {
	if err := Nominal().Valid(); err != nil {
		t.Errorf("nominal invalid: %v", err)
	}
	bad := Nominal()
	bad.Theta1 = 0
	if bad.Valid() == nil {
		t.Error("zero Theta1 accepted")
	}
	bad = Nominal()
	bad.N1 = geom.Zero
	if bad.Valid() == nil {
		t.Error("zero normal accepted")
	}
	bad = Nominal()
	bad.Q2 = geom.V(math.NaN(), 0, 0)
	if bad.Valid() == nil {
		t.Error("NaN point accepted")
	}
}

// TestValidDeterministicMessage pins the error text when several fields
// are invalid at once: Valid must always blame the first bad field in
// declaration order, not whichever a map iteration happened to visit
// first (the bug cyclops-vet's map-order rule caught).
func TestValidDeterministicMessage(t *testing.T) {
	bad := Nominal()
	bad.N1 = geom.Zero
	bad.R2 = geom.Zero
	for i := 0; i < 100; i++ {
		err := bad.Valid()
		if err == nil {
			t.Fatal("invalid params accepted")
		}
		if got := err.Error(); got != "gma: N1 is zero" {
			t.Fatalf("iteration %d: error %q, want %q (field order must be deterministic)",
				i, got, "gma: N1 is zero")
		}
	}
	bad = Nominal()
	bad.Q1 = geom.V(math.Inf(1), 0, 0)
	bad.Q2 = geom.V(math.NaN(), 0, 0)
	for i := 0; i < 100; i++ {
		err := bad.Valid()
		if err == nil {
			t.Fatal("non-finite params accepted")
		}
		if got := err.Error(); got != "gma: Q1 is not finite" {
			t.Fatalf("iteration %d: error %q, want %q (field order must be deterministic)",
				i, got, "gma: Q1 is not finite")
		}
	}
}

func TestPerturbedStaysFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	board := geom.NewPlane(geom.V(0, 0, 1.5), geom.V(0, 0, -1))
	for i := 0; i < 100; i++ {
		p := Perturbed(rng)
		if err := p.Valid(); err != nil {
			t.Fatalf("perturbed params invalid: %v", err)
		}
		if _, err := p.BoardHit(0, 0, board); err != nil {
			t.Fatalf("perturbed assembly cannot hit board: %v", err)
		}
	}
}

func TestPerturbedDiffersFromNominal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Perturbed(rng)
	if p == Nominal() {
		t.Error("perturbation was a no-op")
	}
	// But only slightly: rest beams differ by well under a degree of
	// direction and a few mm of board hit.
	board := geom.NewPlane(geom.V(0, 0, 1.5), geom.V(0, 0, -1))
	h0, _ := Nominal().BoardHit(0, 0, board)
	h1, err := p.BoardHit(0, 0, board)
	if err != nil {
		t.Fatal(err)
	}
	if d := h0.Dist(h1); d > 0.1 {
		t.Errorf("perturbation moved rest hit by %v m — too much", d)
	}
}
