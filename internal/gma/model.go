// Package gma implements the paper's parameterized Galvo-Mirror-Assembly
// model G (§4.1): the closed-form map from a pair of mirror voltages to the
// output beam (originating point p on the second mirror and direction x⃗).
//
// The same model serves three roles:
//
//   - with its *true* (hidden) parameters it drives the physical galvo
//     simulator (internal/galvo);
//   - with *learned* parameters it is the artifact of the K-space
//     calibration (internal/kspace);
//   - mapped into VR-space (internal/vrspace) it powers the real-time
//     pointing function (internal/pointing).
package gma

import (
	"errors"
	"fmt"
	"math"

	"cyclops/internal/geom"
)

// Params are the nine GMA quantities of §4.1(A), Figure 7:
//
//	input beam (p₀, x⃗₀); first mirror (n⃗₁, q₁, r⃗₁); second mirror
//	(n⃗₂, q₂, r⃗₂); and the voltage-to-angle constant θ₁.
//
// Directions need not be stored normalized; Beam normalizes on use, which
// keeps the parameter space unconstrained for the optimizer.
type Params struct {
	P0 geom.Vec3 // input beam originating point
	X0 geom.Vec3 // input beam direction
	N1 geom.Vec3 // first mirror normal at zero voltage
	Q1 geom.Vec3 // point on the first mirror plane and its rotation axis
	R1 geom.Vec3 // first mirror rotation axis direction
	N2 geom.Vec3 // second mirror normal at zero voltage
	Q2 geom.Vec3 // point on the second mirror plane and its rotation axis
	R2 geom.Vec3 // second mirror rotation axis direction

	// Theta1 is the mirror rotation per volt (radians/volt), assumed the
	// same for both mirrors as in the paper.
	Theta1 float64
}

// ErrBeamMissesMirror is returned when, for the given voltages, the beam
// path fails to strike one of the mirrors (wildly wrong parameters during
// early optimizer iterations can do this).
var ErrBeamMissesMirror = errors.New("gma: beam misses a mirror")

// Beam evaluates G(v1, v2): the output beam for mirror voltages v1 (first
// mirror) and v2 (second mirror). The returned ray's Origin is the point p
// on the second mirror and Dir is the unit direction x⃗.
//
// The evaluation follows §4.1 exactly:
//
//	n⃗₁' = R(r⃗₁, θ₁·v1)·n⃗₁          n⃗₂' = R(r⃗₂, θ₁·v2)·n⃗₂
//	(p_mid, x⃗_mid) = R(p₀, x⃗₀, n⃗₁', q₁)
//	(p, x⃗)        = R(p_mid, x⃗_mid, n⃗₂', q₂)
//
// Note q₁ and q₂ do not move under rotation — they lie on the rotation
// axes.
func (p Params) Beam(v1, v2 float64) (geom.Ray, error) {
	n1 := geom.AxisAngle(p.R1, p.Theta1*v1).Apply(p.N1.Unit())
	n2 := geom.AxisAngle(p.R2, p.Theta1*v2).Apply(p.N2.Unit())

	in := geom.NewRay(p.P0, p.X0)
	mid, err := geom.Reflect(in, geom.NewPlane(p.Q1, n1))
	if err != nil {
		return geom.Ray{}, errFirstMirror
	}
	out, err := geom.Reflect(mid, geom.NewPlane(p.Q2, n2))
	if err != nil {
		return geom.Ray{}, errSecondMirror
	}
	return out, nil
}

// BoardHit evaluates f(G(v1,v2)) for a target board: the point where the
// output beam strikes the given plane. This is the observable quantity of
// the K-space training rig (Figure 8).
func (p Params) BoardHit(v1, v2 float64, board geom.Plane) (geom.Vec3, error) {
	beam, err := p.Beam(v1, v2)
	if err != nil {
		return geom.Vec3{}, err
	}
	hit, _, err := board.Intersect(beam)
	if err != nil {
		return geom.Vec3{}, fmt.Errorf("board: %w", err)
	}
	return hit, nil
}

// NumParams is the length of the flat parameter vector used by the
// K-space fit: 8 vectors × 3 components + θ₁.
const NumParams = 25

// Vector flattens the parameters for the optimizer.
func (p Params) Vector() []float64 {
	return []float64{
		p.P0.X, p.P0.Y, p.P0.Z,
		p.X0.X, p.X0.Y, p.X0.Z,
		p.N1.X, p.N1.Y, p.N1.Z,
		p.Q1.X, p.Q1.Y, p.Q1.Z,
		p.R1.X, p.R1.Y, p.R1.Z,
		p.N2.X, p.N2.Y, p.N2.Z,
		p.Q2.X, p.Q2.Y, p.Q2.Z,
		p.R2.X, p.R2.Y, p.R2.Z,
		p.Theta1,
	}
}

// FromVector rebuilds Params from a flat vector produced by Vector.
func FromVector(v []float64) (Params, error) {
	if len(v) != NumParams {
		return Params{}, fmt.Errorf("gma: parameter vector has %d values, want %d", len(v), NumParams)
	}
	vec := func(i int) geom.Vec3 { return geom.V(v[i], v[i+1], v[i+2]) }
	return Params{
		P0: vec(0), X0: vec(3),
		N1: vec(6), Q1: vec(9), R1: vec(12),
		N2: vec(15), Q2: vec(18), R2: vec(21),
		Theta1: v[24],
	}, nil
}

// Transformed returns the parameters re-expressed in a parent frame: every
// point and direction is mapped through the pose. This is how a GMA model
// learned in K-space is carried into VR-space once the §4.2 mapping is
// known.
func (p Params) Transformed(m geom.Pose) Params {
	return Params{
		P0: m.Apply(p.P0), X0: m.ApplyDir(p.X0),
		N1: m.ApplyDir(p.N1), Q1: m.Apply(p.Q1), R1: m.ApplyDir(p.R1),
		N2: m.ApplyDir(p.N2), Q2: m.Apply(p.Q2), R2: m.ApplyDir(p.R2),
		Theta1: p.Theta1,
	}
}

// Valid performs a sanity check: directions non-zero, θ₁ non-zero, all
// values finite. Fields are checked in declaration order so the error
// always names the same field for the same input — callers (and their
// golden tests) see stable error text even when several fields are bad.
func (p Params) Valid() error {
	type field struct {
		name string
		v    geom.Vec3
	}
	directions := []field{
		{"X0", p.X0}, {"N1", p.N1}, {"R1", p.R1}, {"N2", p.N2}, {"R2", p.R2},
	}
	for _, f := range directions {
		if f.v.IsZero() {
			return fmt.Errorf("gma: %s is zero", f.name)
		}
	}
	all := []field{
		{"P0", p.P0}, {"X0", p.X0}, {"N1", p.N1}, {"Q1", p.Q1}, {"R1", p.R1},
		{"N2", p.N2}, {"Q2", p.Q2}, {"R2", p.R2},
	}
	for _, f := range all {
		if !f.v.Finite() {
			return fmt.Errorf("gma: %s is not finite", f.name)
		}
	}
	if p.Theta1 == 0 || math.IsNaN(p.Theta1) || math.IsInf(p.Theta1, 0) {
		return errors.New("gma: Theta1 invalid")
	}
	return nil
}
