package gma

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cyclops/internal/geom"
)

// Property tests on the GMA model's physical invariants.

func gmaQuickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestPropertyBeamDirUnit(t *testing.T) {
	p := Nominal()
	f := func(v1, v2 float64) bool {
		v1 = math.Mod(v1, 10)
		v2 = math.Mod(v2, 10)
		b, err := p.Beam(v1, v2)
		if err != nil {
			return true // out of the fold's geometric range: fine
		}
		return math.Abs(b.Dir.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, gmaQuickCfg(1)); err != nil {
		t.Error(err)
	}
}

func TestPropertyOriginOnSecondMirrorPlane(t *testing.T) {
	// The output origin p must lie on the (rotated) second mirror plane,
	// which always contains Q2.
	p := Nominal()
	f := func(v1, v2 float64) bool {
		v1 = math.Mod(v1, 8)
		v2 = math.Mod(v2, 8)
		b, err := p.Beam(v1, v2)
		if err != nil {
			return true
		}
		n2 := geom.AxisAngle(p.R2, p.Theta1*v2).Apply(p.N2.Unit())
		return math.Abs(b.Origin.Sub(p.Q2).Dot(n2)) < 1e-9
	}
	if err := quick.Check(f, gmaQuickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestPropertyVoltageSymmetry(t *testing.T) {
	// The second mirror's deflection is antisymmetric about its rest
	// angle: ±v produce mirror-image directions about the rest plane.
	p := Nominal()
	f := func(v float64) bool {
		v = math.Mod(v, 5)
		b0, e0 := p.Beam(0, 0)
		bp, e1 := p.Beam(0, v)
		bm, e2 := p.Beam(0, -v)
		if e0 != nil || e1 != nil || e2 != nil {
			return true
		}
		ap := b0.Dir.AngleTo(bp.Dir)
		am := b0.Dir.AngleTo(bm.Dir)
		return math.Abs(ap-am) < 1e-9
	}
	if err := quick.Check(f, gmaQuickCfg(3)); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeflectionLinearity(t *testing.T) {
	// Optical deflection of the second mirror is exactly 2·θ₁·Δv —
	// rotation composition about a fixed axis is exact, not small-angle.
	p := Nominal()
	f := func(v float64) bool {
		v = math.Mod(v, 6)
		b0, e0 := p.Beam(0, 0)
		b1, e1 := p.Beam(0, v)
		if e0 != nil || e1 != nil {
			return true
		}
		want := math.Abs(2 * p.Theta1 * v)
		// Normalize into [0, π].
		for want > math.Pi {
			want = 2*math.Pi - want
		}
		return math.Abs(b0.Dir.AngleTo(b1.Dir)-want) < 1e-9
	}
	if err := quick.Check(f, gmaQuickCfg(4)); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransformedPreservesAngles(t *testing.T) {
	// A rigid transform preserves every angle between beams.
	rng := rand.New(rand.NewSource(5))
	p := Perturbed(rng)
	m := geom.NewPose(
		geom.QuatFromAxisAngle(geom.V(0.3, 1, -0.2), 1.1),
		geom.V(2, -1, 0.5),
	)
	pw := p.Transformed(m)
	f := func(a1, a2, b1, b2 float64) bool {
		a1, a2 = math.Mod(a1, 4), math.Mod(a2, 4)
		b1, b2 = math.Mod(b1, 4), math.Mod(b2, 4)
		la, e1 := p.Beam(a1, a2)
		lb, e2 := p.Beam(b1, b2)
		wa, e3 := pw.Beam(a1, a2)
		wb, e4 := pw.Beam(b1, b2)
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return true
		}
		return math.Abs(la.Dir.AngleTo(lb.Dir)-wa.Dir.AngleTo(wb.Dir)) < 1e-9
	}
	if err := quick.Check(f, gmaQuickCfg(6)); err != nil {
		t.Error(err)
	}
}
