package gma

import (
	"math/rand"

	"cyclops/internal/geom"
)

// Nominal returns the catalog ("CAD design") geometry of a GVS102-style
// two-axis assembly, expressed in the assembly's own K-space frame:
//
//   - The input beam from the collimator travels along +X and strikes the
//     first mirror at the frame origin.
//   - The first mirror (rest normal (-1,1,0)/√2, rotation axis +Z) folds
//     the beam to +Y.
//   - After a 10 mm gap the second mirror (rest normal (0,-1,1)/√2,
//     rotation axis +X) folds it to +Z — toward the calibration board.
//   - θ₁ corresponds to the GVS102's 0.5 V/° command scale: 2 mechanical
//     degrees per volt ≈ 0.0349 rad/V.
//
// Rotating the first mirror steers the output in X, the second in Y, so the
// coverage cone is the rectangular cone of §2.2.
func Nominal() Params {
	return Params{
		P0:     geom.V(-0.05, 0, 0),
		X0:     geom.V(1, 0, 0),
		N1:     geom.V(-1, 1, 0),
		Q1:     geom.V(0, 0, 0),
		R1:     geom.V(0, 0, 1),
		N2:     geom.V(0, -1, 1),
		Q2:     geom.V(0, 0.010, 0),
		R2:     geom.V(1, 0, 0),
		Theta1: 0.0349,
	}
}

// Perturbed returns Nominal with small manufacturing/assembly deviations
// drawn from rng: sub-millimeter positions, sub-degree mirror attitudes,
// and a fraction-of-a-percent gain error. A prototype's true GMA differs
// from its CAD drawing by about this much — it is exactly the gap the
// K-space calibration of §4.1 exists to close, and the reason TX-GMA and
// RX-GMA "will likely have different values for p₀ and x⃗₀" even when built
// from identical parts.
func Perturbed(rng *rand.Rand) Params {
	p := Nominal()
	jv := func(v geom.Vec3, s float64) geom.Vec3 {
		return v.Add(geom.V(rng.NormFloat64()*s, rng.NormFloat64()*s, rng.NormFloat64()*s))
	}
	const (
		posJitter = 0.5e-3 // 0.5 mm on mounting positions
		dirJitter = 5e-3   // ~0.3° on directions
	)
	p.P0 = jv(p.P0, posJitter)
	p.X0 = jv(p.X0, dirJitter)
	p.N1 = jv(p.N1, dirJitter)
	p.Q1 = jv(p.Q1, posJitter)
	p.R1 = jv(p.R1, dirJitter)
	p.N2 = jv(p.N2, dirJitter)
	p.Q2 = jv(p.Q2, posJitter)
	p.R2 = jv(p.R2, dirJitter)
	p.Theta1 *= 1 + rng.NormFloat64()*0.002
	return p
}
