package gma

import (
	"math"

	"cyclops/internal/geom"
)

// BeamBatchBuf is the caller-owned structure-of-arrays workspace for
// Compiled.BeamBatch: parallel slices of input voltage pairs and output
// beams. len(V1) defines the batch size N; V2, Origin, Dir, and Err must
// each hold at least N elements. Callers on the hot path back the slices
// with stack arrays (or reuse one heap buffer per loop) so a batched
// evaluation allocates nothing — BeamBatch only writes through the
// slices, never retains or grows them.
type BeamBatchBuf struct {
	// V1, V2 are the input voltage pairs: pair i is (V1[i], V2[i]).
	V1, V2 []float64
	// Origin, Dir receive the output beam for each pair that evaluates
	// cleanly (both zeroed when Err[i] != nil, matching Beam's zero Ray).
	Origin []geom.Vec3
	Dir    []geom.Vec3
	// Err receives the per-pair error classification: nil, or one of the
	// pre-wrapped mirror-miss errors Beam itself returns (errors.Is
	// against ErrBeamMissesMirror behaves identically).
	Err []error
}

// NewBeamBatchBuf returns a buffer sized for n pairs. Hot loops with a
// fixed batch size should prefer stack arrays sliced into the struct.
func NewBeamBatchBuf(n int) *BeamBatchBuf {
	return &BeamBatchBuf{
		V1:     make([]float64, n),
		V2:     make([]float64, n),
		Origin: make([]geom.Vec3, n),
		Dir:    make([]geom.Vec3, n),
		Err:    make([]error, n),
	}
}

// Ray reassembles the output beam for pair i. Only meaningful when
// Err[i] == nil.
func (b *BeamBatchBuf) Ray(i int) geom.Ray {
	return geom.Ray{Origin: b.Origin[i], Dir: b.Dir[i]}
}

// BeamBatch evaluates G over len(b.V1) voltage pairs in one call. For
// every pair i the outputs are bit-identical to Compiled.Beam(V1[i],
// V2[i]) — the same §4.1 operation sequence in the same order per pair,
// with the same pre-wrapped error values on a mirror miss — so batching
// is purely a loop restructure, not a numerical change (pinned by
// TestBeamBatchBitIdentical over randomized models and ≥100k pairs).
//
// What the batch form buys over N scalar calls: the voltage-independent
// model loads (input ray, plane offsets, both precompiled Rodrigues
// rotations) are hoisted out of the per-pair loop into locals, so the
// solver's grouped evaluations (the G′ 3-probe, the 9×9 coarse seed)
// pay them once per call instead of once per evaluation.
//
//cyclops:hotpath zero-alloc contract pinned by TestBeamBatchZeroAllocs and make alloc-check
func (c *Compiled) BeamBatch(b *BeamBatchBuf) {
	n := len(b.V1)
	v1 := b.V1
	v2 := b.V2[:n]
	org := b.Origin[:n]
	dir := b.Dir[:n]
	errs := b.Err[:n]

	// Hoisted model loads: everything Beam reads from *Compiled per
	// call, loaded once for the whole batch.
	m1, m2 := c.m1, c.m2
	d := c.in.Dir
	p0 := c.in.Origin
	q1SubP0 := c.q1SubP0
	q2 := c.q2
	theta1 := c.theta1

	for i := 0; i < n; i++ {
		pn1 := m1.rotated(theta1 * v1[i]).Unit()
		pn2 := m2.rotated(theta1 * v2[i]).Unit()

		// First mirror: Reflect(in, Plane{q₁, pn1}).
		denom := d.Dot(pn1)
		if math.Abs(denom) < 1e-15 {
			org[i], dir[i], errs[i] = geom.Vec3{}, geom.Vec3{}, errFirstMirror
			continue
		}
		t := q1SubP0.Dot(pn1) / denom
		if t < 0 {
			org[i], dir[i], errs[i] = geom.Vec3{}, geom.Vec3{}, errFirstMirror
			continue
		}
		hit := p0.Add(d.Scale(t))
		dir1 := d.Sub(pn1.Scale(2 * denom)).Unit()

		// Second mirror: Reflect(mid, Plane{q₂, pn2}).
		denom2 := dir1.Dot(pn2)
		if math.Abs(denom2) < 1e-15 {
			org[i], dir[i], errs[i] = geom.Vec3{}, geom.Vec3{}, errSecondMirror
			continue
		}
		t2 := q2.Sub(hit).Dot(pn2) / denom2
		if t2 < 0 {
			org[i], dir[i], errs[i] = geom.Vec3{}, geom.Vec3{}, errSecondMirror
			continue
		}
		org[i] = hit.Add(dir1.Scale(t2))
		dir[i] = dir1.Sub(pn2.Scale(2 * denom2)).Unit()
		errs[i] = nil
	}
}
