// Package handover implements the multi-transmitter extension sketched in
// §3: "To circumvent occasional occlusions and/or limited field-of-view
// coverage of the GMs, we can use multiple TXs on the ceiling with
// appropriate handover techniques."
//
// An Array is several ceiling transmitters sharing one headset-mounted
// receiver. Occluders (a raised arm, another person) block individual
// TX→RX line-of-sight paths; the handover controller notices a dying path
// and re-points the receiver at the best unblocked transmitter. The
// package's experiment loop measures availability with and without
// handover under identical occlusion traffic — the ablation for the §3
// claim.
package handover

import (
	"errors"
	"fmt"
	"math"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

// Occluder is a moving opaque sphere that blocks any beam path passing
// through it.
type Occluder struct {
	Radius float64
	// Path gives the center position over time.
	Path func(t time.Duration) geom.Vec3
}

// CrossingOccluder returns an occluder that repeatedly sweeps through the
// space between the play area and the ceiling: from start to end over
// period, then jumps back — a person walking through, an arm raised and
// lowered.
func CrossingOccluder(radius float64, start, end geom.Vec3, period time.Duration) Occluder {
	return Occluder{
		Radius: radius,
		Path: func(t time.Duration) geom.Vec3 {
			if period <= 0 {
				return start
			}
			frac := float64(t%period) / float64(period)
			return start.Lerp(end, frac)
		},
	}
}

// Array is a multi-TX deployment: one plant per transmitter, all sharing
// the receiver hardware identity and headset pose.
type Array struct {
	Plants    []*link.Plant
	Occluders []Occluder

	// PathFaults, when set, gives each TX path its own deterministic
	// fault schedule (occlusion attenuation applied through the plant's
	// SetAttenuationDB surface). nil entries — and a nil slice — mean a
	// clear path. This is the injection surface core.Run's multi-TX
	// recovery consumes; the geometric Occluders above remain the
	// standalone experiment's occlusion model.
	PathFaults []*fault.Schedule

	active int
}

// ErrNoTransmitters is returned for an empty position list.
var ErrNoTransmitters = errors.New("handover: no transmitter positions")

// NewArray installs transmitters at the given ceiling positions. The seed
// fixes all hidden variation; each TX gets its own hardware identity while
// the RX assembly is shared.
func NewArray(cfg optics.LinkConfig, seed int64, txPositions []geom.Vec3) (*Array, error) {
	if len(txPositions) == 0 {
		return nil, ErrNoTransmitters
	}
	a := &Array{}
	for i, pos := range txPositions {
		a.Plants = append(a.Plants, link.NewPlantAt(cfg, seed+int64(i)*31, seed, pos))
	}
	return a, nil
}

// RingPositions returns count ceiling mount points evenly ringed around
// the primary TX position at the given spacing — the default multi-TX
// placement the fig16-handover sweep and cyclops-sim's -tx flag use.
// count is the number of standby positions (the primary at the ring's
// center is not included).
func RingPositions(count int, spacing float64) []geom.Vec3 {
	pos := make([]geom.Vec3, 0, count)
	for k := 0; k < count; k++ {
		th := 2 * math.Pi * float64(k) / float64(count)
		pos = append(pos, geom.V(spacing*math.Cos(th), spacing*math.Sin(th), link.CeilingHeight))
	}
	return pos
}

// StandbysFor builds standby transmitter plants for an existing primary
// installation: one plant per position, each with its own TX hardware
// identity but sharing the primary's RX assembly identity (rxSeed must be
// the primary system's seed, so every plant agrees on the receiver it
// serves). The returned plants are the HandoverOptions.Standbys input of
// core.Run.
func StandbysFor(cfg optics.LinkConfig, rxSeed int64, positions []geom.Vec3) []*link.Plant {
	plants := make([]*link.Plant, 0, len(positions))
	for i, pos := range positions {
		plants = append(plants, link.NewPlantAt(cfg, rxSeed+int64(i+1)*31, rxSeed, pos))
	}
	return plants
}

// SetHeadset moves the (shared) headset on every plant.
func (a *Array) SetHeadset(p geom.Pose) {
	for _, pl := range a.Plants {
		pl.SetHeadset(p)
	}
}

// PathAttenDB returns the injected attenuation on TX i's path at time t
// (0 when the path has no schedule). It reads the schedule only — the
// plant's own attenuation surface is driven by whoever runs the clock.
func (a *Array) PathAttenDB(i int, t time.Duration) float64 {
	if a.PathFaults == nil || i >= len(a.PathFaults) {
		return 0
	}
	return a.PathFaults[i].At(t).AttenDB
}

// Active returns the index of the transmitting TX.
func (a *Array) Active() int { return a.active }

// Blocked reports whether TX i's line of sight to the receiver is blocked
// by any occluder at time t.
func (a *Array) Blocked(i int, t time.Duration) bool {
	pl := a.Plants[i]
	seg := geom.Segment{
		A: pl.TXMountTruth().Trans,
		B: pl.RXWorldPose().Trans,
	}
	for _, oc := range a.Occluders {
		if seg.DistanceTo(oc.Path(t)) < oc.Radius {
			return true
		}
	}
	return false
}

// PowerDBm returns the received power from TX i at time t: the plant's
// radiometric power, or no light when occluded or when i is not the
// transmitting cell (only the active TX's laser reaches the fiber).
func (a *Array) PowerDBm(i int, t time.Duration) float64 {
	if i != a.active {
		return math.Inf(-1)
	}
	if a.Blocked(i, t) {
		return math.Inf(-1)
	}
	return a.Plants[i].ReceivedPowerDBm()
}

// PointAt aligns the array on TX i: oracle pointing of that plant's two
// terminals (the handover study isolates the switching mechanism from
// learning error; the calibration pipeline is exercised elsewhere).
// It returns the realignment latency.
func (a *Array) PointAt(i int) (time.Duration, error) {
	v, err := a.Plants[i].OracleAlignedVoltages()
	if err != nil {
		return 0, fmt.Errorf("handover: pointing at TX %d: %w", i, err)
	}
	a.Plants[i].ApplyVoltages(v)
	a.active = i
	return 1800 * time.Microsecond, nil
}

// BestCandidate returns the unblocked TX whose (hypothetically aligned)
// geometry is closest to the receiver — the controller's switch target —
// or -1 if every path is blocked.
func (a *Array) BestCandidate(t time.Duration) int {
	best := -1
	bestDist := math.Inf(1)
	for i, pl := range a.Plants {
		if a.Blocked(i, t) {
			continue
		}
		d := pl.TXMountTruth().Trans.Dist(pl.RXWorldPose().Trans)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Result summarizes an occlusion run.
type Result struct {
	// LightFraction is the fraction of ticks with usable optical power
	// at the receiver.
	LightFraction float64
	// UpFraction includes SFP re-lock penalties after each dark period.
	UpFraction float64
	Handovers  int
	// Repoints counts every PointAt the run issued: the initial
	// alignment, the tracking-cadence repoints, and the handover
	// switches. Pinned by the repoint-cadence regression test.
	Repoints int
	// Ticks is the number of simulation slots the run covered — dur/tick
	// under the half-open convention shared with internal/sim.
	Ticks int
	// BlockedAllFraction is the fraction of ticks when every TX was
	// occluded (no controller can help there).
	BlockedAllFraction float64
}

// RunOptions configures an occlusion experiment.
type RunOptions struct {
	Program  motion.Program
	Duration time.Duration
	// Enable turns the handover controller on; off, the array sticks
	// with TX 0 (the single-TX baseline sees the same occluders).
	Enable bool
	// SwitchAfter is how long the active path must stay dark before the
	// controller switches (debounce against momentary flickers).
	SwitchAfter time.Duration
}

// Run drives the array through the motion program under its occluders.
func (a *Array) Run(opts RunOptions) (Result, error) {
	if opts.Program == nil {
		return Result{}, errors.New("handover: no motion program")
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = opts.Program.Duration()
	}
	if opts.SwitchAfter <= 0 {
		opts.SwitchAfter = 20 * time.Millisecond
	}
	const tick = time.Millisecond
	const repointEvery = 12 * time.Millisecond

	mon := link.NewMonitor(a.Plants[0].Config.Transceiver)
	a.SetHeadset(opts.Program.Pose(0))
	if _, err := a.PointAt(0); err != nil {
		return Result{}, err
	}

	var res Result
	res.Repoints++ // the initial alignment above
	var ticks, light, up, allBlocked int
	var darkSince time.Duration = -1
	var repointUntil time.Duration = -1

	// Re-point the active TX on the tracking cadence (oracle): keeps the
	// active path aligned as the headset moves.
	var nextPoint time.Duration

	// Half-open [0, dur): dur/tick slots, the same fencepost convention
	// internal/sim's availability and chaos loops use, so the two stacks'
	// availability denominators agree slot for slot. (core.Run keeps its
	// own deliberate closed-interval loop — see the note there.)
	for at := time.Duration(0); at < dur; at += tick {
		a.SetHeadset(opts.Program.Pose(at))

		if at >= nextPoint && at >= repointUntil {
			if _, err := a.PointAt(a.active); err == nil {
				res.Repoints++
				nextPoint = at + repointEvery
			}
		}

		power := a.PowerDBm(a.active, at)
		if at < repointUntil {
			power = math.Inf(-1) // mirrors still slewing to the new TX
		}

		hasLight := power >= a.Plants[0].Config.Transceiver.SensitivityDBm
		if hasLight {
			light++
			darkSince = -1
		} else if darkSince < 0 && at >= repointUntil {
			// Start the dark clock only once the mirrors have settled on
			// the new TX: the forced darkness of the slew window must not
			// count against the SwitchAfter debounce, or any SwitchAfter
			// at or below the realignment latency flaps straight off a
			// TX the controller just switched to.
			darkSince = at
		}

		// Handover decision.
		if opts.Enable && darkSince >= 0 && at-darkSince >= opts.SwitchAfter {
			if cand := a.BestCandidate(at); cand >= 0 && cand != a.active {
				if lat, err := a.PointAt(cand); err == nil {
					res.Handovers++
					res.Repoints++
					repointUntil = at + lat
					darkSince = -1
					// The switch realigned everything: push the tracking
					// cadence out past the slew, or the first settled tick
					// issues a redundant PointAt and the cadence phase
					// shifts against single-TX runs.
					nextPoint = at + lat + repointEvery
				}
			}
		}

		if mon.Observe(at, power) {
			up++
		}
		everyBlocked := true
		for i := range a.Plants {
			if !a.Blocked(i, at) {
				everyBlocked = false
				break
			}
		}
		if everyBlocked {
			allBlocked++
		}
		ticks++
	}

	res.Ticks = ticks
	res.LightFraction = float64(light) / float64(ticks)
	res.UpFraction = float64(up) / float64(ticks)
	res.BlockedAllFraction = float64(allBlocked) / float64(ticks)
	return res, nil
}
