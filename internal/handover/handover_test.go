package handover

import (
	"testing"
	"time"

	"cyclops/internal/geom"
	"cyclops/internal/link"
	"cyclops/internal/motion"
	"cyclops/internal/optics"
)

func twoTXPositions() []geom.Vec3 {
	return []geom.Vec3{
		{X: 0, Y: 0, Z: link.CeilingHeight},
		{X: 1.2, Y: 0.8, Z: link.CeilingHeight},
	}
}

func staticProgram(d time.Duration) motion.Program {
	return motion.Static{P: link.DefaultHeadsetPose(), Len: d}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(optics.Diverging10G16mm, 1, nil); err == nil {
		t.Error("empty TX list accepted")
	}
}

func TestArraySharesReceiver(t *testing.T) {
	a, err := NewArray(optics.Diverging10G16mm, 2, twoTXPositions())
	if err != nil {
		t.Fatal(err)
	}
	// Same RX hardware identity across plants.
	if a.Plants[0].RXDev.Truth() != a.Plants[1].RXDev.Truth() {
		t.Error("plants do not share the RX device")
	}
	// Distinct TX hardware and mounts.
	if a.Plants[0].TXDev.Truth() == a.Plants[1].TXDev.Truth() {
		t.Error("plants share TX hardware")
	}
	if a.Plants[0].TXMountTruth().Trans == a.Plants[1].TXMountTruth().Trans {
		t.Error("plants share TX position")
	}
}

func TestEachTXCanServeTheHeadset(t *testing.T) {
	a, err := NewArray(optics.Diverging10G16mm, 3, twoTXPositions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Plants {
		if _, err := a.PointAt(i); err != nil {
			t.Fatalf("TX %d cannot point: %v", i, err)
		}
		if p := a.PowerDBm(i, 0); p < a.Plants[i].Config.Transceiver.SensitivityDBm {
			t.Errorf("TX %d aligned power %.1f dBm below sensitivity", i, p)
		}
	}
}

func TestInactiveTXContributesNoLight(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 4, twoTXPositions())
	if _, err := a.PointAt(0); err != nil {
		t.Fatal(err)
	}
	if p := a.PowerDBm(1, 0); p > -1e6 {
		t.Errorf("inactive TX delivered %.1f dBm", p)
	}
}

func TestBlockedDetectsOccluder(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 5, twoTXPositions())
	// A sphere parked on TX 0's path midpoint.
	mid := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
	a.Occluders = []Occluder{{Radius: 0.15, Path: func(time.Duration) geom.Vec3 { return mid }}}
	if !a.Blocked(0, 0) {
		t.Error("occluder on path not detected")
	}
	if a.Blocked(1, 0) {
		t.Error("clear path reported blocked")
	}
	if p := a.PowerDBm(0, 0); p > -1e6 {
		t.Errorf("blocked path delivered %.1f dBm", p)
	}
}

func TestCrossingOccluderMoves(t *testing.T) {
	oc := CrossingOccluder(0.1, geom.V(0, 0, 0), geom.V(1, 0, 0), time.Second)
	if got := oc.Path(0); !got.NearlyEqual(geom.V(0, 0, 0), 1e-9) {
		t.Errorf("start = %v", got)
	}
	if got := oc.Path(500 * time.Millisecond); !got.NearlyEqual(geom.V(0.5, 0, 0), 1e-9) {
		t.Errorf("midpoint = %v", got)
	}
	// Wraps.
	if got := oc.Path(1500 * time.Millisecond); !got.NearlyEqual(geom.V(0.5, 0, 0), 1e-9) {
		t.Errorf("wrap = %v", got)
	}
	// Zero period is static.
	oc0 := CrossingOccluder(0.1, geom.V(2, 0, 0), geom.V(3, 0, 0), 0)
	if got := oc0.Path(time.Hour); got != geom.V(2, 0, 0) {
		t.Errorf("zero-period occluder moved: %v", got)
	}
}

func TestBestCandidateSkipsBlocked(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 6, twoTXPositions())
	mid := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
	a.Occluders = []Occluder{{Radius: 0.15, Path: func(time.Duration) geom.Vec3 { return mid }}}
	if got := a.BestCandidate(0); got != 1 {
		t.Errorf("best candidate = %d, want 1 (TX 0 blocked)", got)
	}
	// Block both: no candidate.
	mid1 := a.Plants[1].TXMountTruth().Trans.Lerp(a.Plants[1].RXWorldPose().Trans, 0.5)
	a.Occluders = append(a.Occluders, Occluder{Radius: 0.15, Path: func(time.Duration) geom.Vec3 { return mid1 }})
	if got := a.BestCandidate(0); got != -1 {
		t.Errorf("best candidate = %d, want -1 (all blocked)", got)
	}
}

func TestRunWithoutOccluders(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 7, twoTXPositions())
	res, err := a.Run(RunOptions{Program: staticProgram(2 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.LightFraction < 0.999 || res.UpFraction < 0.999 {
		t.Errorf("clear-sky run degraded: %+v", res)
	}
	if res.Handovers != 0 {
		t.Errorf("spurious handovers: %d", res.Handovers)
	}
}

// TestHandoverImprovesAvailability is the §3 claim: under periodic
// occlusion of the primary path, handover to a second TX recovers most of
// the lost time.
func TestHandoverImprovesAvailability(t *testing.T) {
	mkArray := func() *Array {
		a, err := NewArray(optics.Diverging10G16mm, 8, twoTXPositions())
		if err != nil {
			t.Fatal(err)
		}
		// An occluder that parks on TX 0's path for the second half of
		// each 20 s cycle, far from TX 1's path.
		mid := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
		away := mid.Add(geom.V(-2, -2, 0))
		a.Occluders = []Occluder{{
			Radius: 0.15,
			Path: func(tt time.Duration) geom.Vec3 {
				if (tt/time.Second)%20 >= 10 {
					return mid
				}
				return away
			},
		}}
		return a
	}

	base, err := mkArray().Run(RunOptions{Program: staticProgram(40 * time.Second), Enable: false})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := mkArray().Run(RunOptions{Program: staticProgram(40 * time.Second), Enable: true})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: blocked ~half the time.
	if base.LightFraction > 0.65 {
		t.Errorf("baseline light fraction %.2f — occluder ineffective", base.LightFraction)
	}
	// Handover: recovers nearly everything (switch + relock costs a few
	// seconds per cycle).
	if hand.LightFraction < base.LightFraction+0.25 {
		t.Errorf("handover light %.2f vs baseline %.2f — no real improvement",
			hand.LightFraction, base.LightFraction)
	}
	if hand.Handovers == 0 {
		t.Error("no handovers executed")
	}
	if hand.BlockedAllFraction > 0.01 {
		t.Errorf("both paths blocked %.2f of the time — bad fixture", hand.BlockedAllFraction)
	}
}

func TestRunValidation(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 9, twoTXPositions())
	if _, err := a.Run(RunOptions{}); err == nil {
		t.Error("nil program accepted")
	}
}

// windowOccluder parks on pos during [from, to) and sits at away otherwise.
func windowOccluder(pos, away geom.Vec3, from, to time.Duration) Occluder {
	return Occluder{
		Radius: 0.15,
		Path: func(tt time.Duration) geom.Vec3 {
			if tt >= from && tt < to {
				return pos
			}
			return away
		},
	}
}

// TestNoFlapDuringSlew is the regression test for the slew-window debounce
// bug: the forced darkness while the mirrors slew to the new TX used to
// re-arm darkSince, so any SwitchAfter at or below the 1.8 ms realignment
// latency ping-ponged the controller between TXs.
//
// Fixture: TX 0's path is occluded during [5ms, 8ms); TX 1's path catches a
// one-tick blip at [8ms, 9ms) — exactly when the old code's slew-armed dark
// clock matured. Old code: a second handover back to TX 0 at t=8ms
// (Handovers=2, ends on TX 0). Fixed code: the dark clock starts only after
// the slew settles, the t=8ms blip is a single dark tick below SwitchAfter,
// and the run ends on TX 1 with exactly one handover.
func TestNoFlapDuringSlew(t *testing.T) {
	a, err := NewArray(optics.Diverging10G16mm, 10, twoTXPositions())
	if err != nil {
		t.Fatal(err)
	}
	mid0 := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
	mid1 := a.Plants[1].TXMountTruth().Trans.Lerp(a.Plants[1].RXWorldPose().Trans, 0.5)
	away := mid0.Add(geom.V(-2, -2, 0))
	a.Occluders = []Occluder{
		windowOccluder(mid0, away, 5*time.Millisecond, 8*time.Millisecond),
		windowOccluder(mid1, away, 8*time.Millisecond, 9*time.Millisecond),
	}
	res, err := a.Run(RunOptions{
		Program:     staticProgram(30 * time.Millisecond),
		Enable:      true,
		SwitchAfter: time.Millisecond, // below the 1.8 ms realignment latency
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handovers != 1 {
		t.Errorf("handovers = %d, want 1 (slew darkness flapped the controller)", res.Handovers)
	}
	if a.Active() != 1 {
		t.Errorf("active TX = %d, want 1 (controller flapped back)", a.Active())
	}
}

// TestRunTickFencepost pins the half-open slot convention: a run of
// duration D covers exactly D/tick slots, matching internal/sim's
// availability and chaos loops (the old closed loop counted one extra).
func TestRunTickFencepost(t *testing.T) {
	a, _ := NewArray(optics.Diverging10G16mm, 11, twoTXPositions())
	res, err := a.Run(RunOptions{Program: staticProgram(100 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 100 {
		t.Errorf("ticks = %d, want 100 (half-open [0, dur) at 1 ms)", res.Ticks)
	}
}

// TestHandoverReschedulesRepointCadence is the regression test for the
// stale-cadence bug: a successful handover realigns everything, but the old
// code left nextPoint where it was, so the first post-slew cadence tick
// issued a redundant PointAt and phase-shifted the tracking cadence.
//
// Fixture: TX 0 occluded during [5ms, 8ms), SwitchAfter=1ms, 14 ms run.
// Repoints: initial alignment, the t=0 cadence point, the t=6ms handover —
// and nothing else, because the switch pushes the cadence out to
// t=19.8ms > dur. Old code added a fourth at the stale t=12ms slot.
func TestHandoverReschedulesRepointCadence(t *testing.T) {
	a, err := NewArray(optics.Diverging10G16mm, 12, twoTXPositions())
	if err != nil {
		t.Fatal(err)
	}
	mid0 := a.Plants[0].TXMountTruth().Trans.Lerp(a.Plants[0].RXWorldPose().Trans, 0.5)
	away := mid0.Add(geom.V(-2, -2, 0))
	a.Occluders = []Occluder{windowOccluder(mid0, away, 5*time.Millisecond, 8*time.Millisecond)}
	res, err := a.Run(RunOptions{
		Program:     staticProgram(14 * time.Millisecond),
		Enable:      true,
		SwitchAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handovers != 1 {
		t.Fatalf("handovers = %d, want 1", res.Handovers)
	}
	if res.Repoints != 3 {
		t.Errorf("repoints = %d, want 3 (initial, t=0 cadence, handover); stale cadence fired", res.Repoints)
	}
}
