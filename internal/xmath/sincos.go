// Package xmath holds bit-exact fast paths for the stdlib math calls on
// the corpus hot path. Like internal/xrand, nothing here is a new
// approximation: every function computes the identical IEEE-754 result
// to its math counterpart (pinned by exhaustive randomized equality
// tests), it just gets there with less work for the argument ranges the
// trace synthesizer actually produces.
//
// The big win is Sincos3: head-pose synthesis evaluates three
// independent sin/cos pairs per sample (yaw/pitch/roll half-angles).
// Calling math.Sincos three times serializes three ~50-cycle
// latency-bound Horner chains behind call boundaries; evaluating them in
// one straight-line body lets the compiler interleave the chains and the
// out-of-order core overlap them. On top of that, small angles
// (|x| < π/4 — always true for pitch/roll half-angles) skip the
// Cody-Waite reduction entirely: in that range the reduction is exactly
// the identity (j = 0, y = 0, so z = ((x−0·PI4A)−0·PI4B)−0·PI4C = x),
// so the skip is bit-identical by construction, not by approximation.
package xmath

import "math"

// Cody-Waite extended-precision decomposition of π/4, transcribed from
// math/sin.go. The three-term subtraction keeps the reduced argument
// accurate to the last bit for |x| below reduceThreshold.
const (
	pi4a = 7.85398125648498535156e-1  // 0x3fe921fb40000000
	pi4b = 3.77489470793079817668e-8  // 0x3e64442d00000000
	pi4c = 2.69515142907905952645e-15 // 0x3ce8469898cc5170

	// reduceThreshold mirrors math/trig_reduce.go: above it the stdlib
	// switches to Payne-Hanek reduction, which we do not replicate —
	// those arguments (|x| ≥ 2²⁹) fall back to math.Sincos itself.
	reduceThreshold = 1 << 29
)

// Polynomial coefficients for sin/cos on [0, π/4], transcribed from
// math/sin.go (Cephes cmath release 2.8).
var sinPoly = [...]float64{
	1.58962301576546568060e-10, // 0x3de5d8fd1fd19ccd
	-2.50507477628578072866e-8, // 0xbe5ae5e5a9291f5d
	2.75573136213857245213e-6,  // 0x3ec71de3567d48a1
	-1.98412698295895385996e-4, // 0xbf2a01a019bfdf03
	8.33333333332211858878e-3,  // 0x3f8111111110f7d0
	-1.66666666666666307295e-1, // 0xbfc5555555555548
}

var cosPoly = [...]float64{
	-1.13585365213876817300e-11, // 0xbda8fa49a0861a9b
	2.08757008419747316778e-9,   // 0x3e21ee9d7b4e3f05
	-2.75573141792967388112e-7,  // 0xbe927e4f7eac4bc6
	2.48015872888517045348e-5,   // 0x3efa01a019c844f5
	-1.38888888888730564116e-3,  // 0xbf56c16c16c14f91
	4.16666666666665929218e-2,   // 0x3fa555555555554b
}

// sincosKernel evaluates the two polynomials at the reduced argument z
// and applies the octant fixups. It is the shared tail of the scalar and
// batched entry points; the expression shapes are verbatim from
// math.Sincos so every rounding step matches.
func sincosKernel(z float64, j uint64, sinSign, cosSign bool) (sin, cos float64) {
	zz := z * z
	cos = 1.0 - 0.5*zz + zz*zz*((((((cosPoly[0]*zz)+cosPoly[1])*zz+cosPoly[2])*zz+cosPoly[3])*zz+cosPoly[4])*zz+cosPoly[5])
	sin = z + z*zz*((((((sinPoly[0]*zz)+sinPoly[1])*zz+sinPoly[2])*zz+sinPoly[3])*zz+sinPoly[4])*zz+sinPoly[5])
	if j == 1 || j == 2 {
		sin, cos = cos, sin
	}
	if cosSign {
		cos = -cos
	}
	if sinSign {
		sin = -sin
	}
	return
}

// sincosReduce maps x to a reduced argument z ∈ [0, π/4], octant j, and
// the two sign flips, exactly as math.Sincos does for finite
// |x| < reduceThreshold. ok is false when the caller must fall back to
// math.Sincos (zero, non-finite, or Payne-Hanek range).
func sincosReduce(x float64) (z float64, j uint64, sinSign, cosSign, ok bool) {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, 0, false, false, false
	}
	if x < 0 {
		x = -x
		sinSign = true
	}
	if x >= reduceThreshold {
		return 0, 0, false, false, false
	}

	g := x * (4 / math.Pi)
	if g < 1 {
		// j = 0: y = 0 and the Cody-Waite chain is exactly the identity
		// (z = ((x−0·pi4a)−0·pi4b)−0·pi4c = x), with no octant fixups.
		return x, 0, sinSign, false, true
	}
	j = uint64(g)   // integer part of x/(Pi/4)
	y := float64(j) // integer part of x/(Pi/4), as float
	if j&1 == 1 {   // map zeros to origin
		j++
		y++
	}
	j &= 7
	z = ((x - y*pi4a) - y*pi4b) - y*pi4c
	if j > 3 { // reflect in x axis
		j -= 4
		sinSign, cosSign = !sinSign, !cosSign
	}
	if j > 1 {
		cosSign = !cosSign
	}
	return z, j, sinSign, cosSign, true
}

// Sincos returns math.Sincos(x), bit for bit, skipping the shared
// special-case dispatch for the common finite small-magnitude arguments.
func Sincos(x float64) (sin, cos float64) {
	z, j, ss, cs, ok := sincosReduce(x)
	if !ok {
		return math.Sincos(x)
	}
	return sincosKernel(z, j, ss, cs)
}

// Sincos3 evaluates three independent sin/cos pairs in one straight-line
// body. Each element's result is bit-identical to math.Sincos of that
// element (the elements are independent, so evaluating them together
// reorders nothing within any one of them); elements outside the
// replicated range fall back to math.Sincos individually.
func Sincos3(a, b, c float64) (sinA, cosA, sinB, cosB, sinC, cosC float64) {
	// Reduction, manually unrolled per element (sincosReduce is over the
	// inline budget, and a call here would serialize the three chains).
	// Each block is operation-for-operation sincosReduce.
	var (
		za, zb, zc    float64
		ja, jb, jc    uint64
		ssa, ssb, ssc bool
		csa, csb, csc bool
	)
	oka, okb, okc := false, false, false
	xa, xb, xc := a, b, c
	if xa < 0 {
		xa = -xa
		ssa = true
	}
	if xb < 0 {
		xb = -xb
		ssb = true
	}
	if xc < 0 {
		xc = -xc
		ssc = true
	}
	// x != x filters NaN; positive zero and +Inf fail the range check.
	// The g < 1 fast branch is the package-doc small-angle skip: j = 0
	// makes the Cody-Waite chain exactly the identity, so z = x with no
	// octant fixups. Pitch/roll half-angles always take it, and yaw's
	// random walk crosses π/4 rarely, so the branches stay predicted.
	if xa > 0 && xa < reduceThreshold {
		if ga := xa * (4 / math.Pi); ga < 1 {
			za = xa
		} else {
			ja = uint64(ga)
			ya := float64(ja)
			if ja&1 == 1 {
				ja++
				ya++
			}
			ja &= 7
			za = ((xa - ya*pi4a) - ya*pi4b) - ya*pi4c
			if ja > 3 {
				ja -= 4
				ssa, csa = !ssa, !csa
			}
			if ja > 1 {
				csa = !csa
			}
		}
		oka = true
	}
	if xb > 0 && xb < reduceThreshold {
		if gb := xb * (4 / math.Pi); gb < 1 {
			zb = xb
		} else {
			jb = uint64(gb)
			yb := float64(jb)
			if jb&1 == 1 {
				jb++
				yb++
			}
			jb &= 7
			zb = ((xb - yb*pi4a) - yb*pi4b) - yb*pi4c
			if jb > 3 {
				jb -= 4
				ssb, csb = !ssb, !csb
			}
			if jb > 1 {
				csb = !csb
			}
		}
		okb = true
	}
	if xc > 0 && xc < reduceThreshold {
		if gc := xc * (4 / math.Pi); gc < 1 {
			zc = xc
		} else {
			jc = uint64(gc)
			yc := float64(jc)
			if jc&1 == 1 {
				jc++
				yc++
			}
			jc &= 7
			zc = ((xc - yc*pi4a) - yc*pi4b) - yc*pi4c
			if jc > 3 {
				jc -= 4
				ssc, csc = !ssc, !csc
			}
			if jc > 1 {
				csc = !csc
			}
		}
		okc = true
	}
	if oka && okb && okc {
		// The three kernel bodies are spelled out back to back rather
		// than calling sincosKernel: the helper is over the inline
		// budget, and the interleaving win only exists when the three
		// mutually independent multiply-add chains sit in one frame
		// for the scheduler to overlap. Expression shapes are verbatim
		// from sincosKernel (itself verbatim from math.Sincos), so
		// each element's rounding sequence is untouched.
		zza := za * za
		zzb := zb * zb
		zzc := zc * zc
		cosA = 1.0 - 0.5*zza + zza*zza*((((((cosPoly[0]*zza)+cosPoly[1])*zza+cosPoly[2])*zza+cosPoly[3])*zza+cosPoly[4])*zza+cosPoly[5])
		cosB = 1.0 - 0.5*zzb + zzb*zzb*((((((cosPoly[0]*zzb)+cosPoly[1])*zzb+cosPoly[2])*zzb+cosPoly[3])*zzb+cosPoly[4])*zzb+cosPoly[5])
		cosC = 1.0 - 0.5*zzc + zzc*zzc*((((((cosPoly[0]*zzc)+cosPoly[1])*zzc+cosPoly[2])*zzc+cosPoly[3])*zzc+cosPoly[4])*zzc+cosPoly[5])
		sinA = za + za*zza*((((((sinPoly[0]*zza)+sinPoly[1])*zza+sinPoly[2])*zza+sinPoly[3])*zza+sinPoly[4])*zza+sinPoly[5])
		sinB = zb + zb*zzb*((((((sinPoly[0]*zzb)+sinPoly[1])*zzb+sinPoly[2])*zzb+sinPoly[3])*zzb+sinPoly[4])*zzb+sinPoly[5])
		sinC = zc + zc*zzc*((((((sinPoly[0]*zzc)+sinPoly[1])*zzc+sinPoly[2])*zzc+sinPoly[3])*zzc+sinPoly[4])*zzc+sinPoly[5])
		if ja == 1 || ja == 2 {
			sinA, cosA = cosA, sinA
		}
		if csa {
			cosA = -cosA
		}
		if ssa {
			sinA = -sinA
		}
		if jb == 1 || jb == 2 {
			sinB, cosB = cosB, sinB
		}
		if csb {
			cosB = -cosB
		}
		if ssb {
			sinB = -sinB
		}
		if jc == 1 || jc == 2 {
			sinC, cosC = cosC, sinC
		}
		if csc {
			cosC = -cosC
		}
		if ssc {
			sinC = -sinC
		}
		return
	}
	if oka {
		sinA, cosA = sincosKernel(za, ja, ssa, csa)
	} else {
		sinA, cosA = math.Sincos(a)
	}
	if okb {
		sinB, cosB = sincosKernel(zb, jb, ssb, csb)
	} else {
		sinB, cosB = math.Sincos(b)
	}
	if okc {
		sinC, cosC = sincosKernel(zc, jc, ssc, csc)
	} else {
		sinC, cosC = math.Sincos(c)
	}
	return
}
