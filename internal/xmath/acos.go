package xmath

import "math"

// Arctangent rational-approximation constants, transcribed from
// math/atan.go (Cephes atan.c).
const (
	atanP0 = -8.750608600031904122785e-01
	atanP1 = -1.615753718733365076637e+01
	atanP2 = -7.500855792314704667340e+01
	atanP3 = -1.228866684490136173410e+02
	atanP4 = -6.485021904942025371773e+01
	atanQ0 = +2.485846490142306297962e+01
	atanQ1 = +1.650270098316988542046e+02
	atanQ2 = +4.328810604912902668951e+02
	atanQ3 = +4.853903996359136964868e+02
	atanQ4 = +1.945506571482613964425e+02

	morebits = 6.123233995736765886130e-17 // pi/2 = PIO2 + Morebits
	tan3pio8 = 2.41421356237309504880      // tan(3*pi/8)
)

// xatan evaluates the degree-4/5 rational arctangent approximant on
// [0, 0.66], verbatim from math/atan.go.
func xatan(x float64) float64 {
	z := x * x
	z = z * ((((atanP0*z+atanP1)*z+atanP2)*z+atanP3)*z + atanP4) / (((((z+atanQ0)*z+atanQ1)*z+atanQ2)*z+atanQ3)*z + atanQ4)
	z = x*z + x
	return z
}

// satan reduces a positive argument to [0, 0.66] and calls xatan,
// verbatim from math/atan.go.
func satan(x float64) float64 {
	if x <= 0.66 {
		return xatan(x)
	}
	if x > tan3pio8 {
		return math.Pi/2 - xatan(1/x) + morebits
	}
	return math.Pi/4 + xatan((x-1)/(x+1)) + 0.5*morebits
}

// Acos returns math.Acos(x), bit for bit. The stdlib routes
// Acos → acos → Asin → asin → satan → xatan through four call frames;
// the availability slot model computes one arccosine per report pair
// (the angular-delta of consecutive head poses), so the flattened body
// pays off at corpus scale. Operation order inside each step is
// untouched — only the call plumbing is gone.
func Acos(x float64) float64 {
	// asin(x), inlined from math/asin.go.
	var a float64
	switch {
	case x == 0:
		a = x
	default:
		sign := false
		if x < 0 {
			x = -x
			sign = true
		}
		if x > 1 {
			return math.NaN() // Pi/2 - NaN is NaN either way
		}
		temp := math.Sqrt(1 - x*x)
		if x > 0.7 {
			temp = math.Pi/2 - satan(temp/x)
		} else {
			temp = satan(x / temp)
		}
		if sign {
			temp = -temp
		}
		a = temp
	}
	return math.Pi/2 - a
}
