package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestAcosBitIdentical sweeps the full domain with dense coverage near
// the branch points (0.66 and 0.7 after reduction, ±1, 0) plus
// out-of-domain and non-finite inputs.
func TestAcosBitIdentical(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		w, g := math.Acos(x), Acos(x)
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("Acos(%g): got %x want %x", x, math.Float64bits(g), math.Float64bits(w))
		}
	}
	for _, x := range []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 0.7, -0.7,
		0.7 + 1e-16, 0.7 - 1e-16, 0.66, 0.9999999999, -0.9999999999,
		1 + 1e-15, -1 - 1e-15, 2, -2, math.NaN(), math.Inf(1), math.Inf(-1),
		5e-324, -5e-324,
	} {
		check(x)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500000; i++ {
		check(rng.Float64()*2 - 1)
	}
	// The slot model's arguments cluster at 1⁻ (tiny head rotations).
	for i := 0; i < 200000; i++ {
		check(1 - rng.Float64()*1e-6)
	}
}

func BenchmarkAcos(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += Acos(1 - float64(i%1000)*1e-6)
	}
	_ = s
}

func BenchmarkStdAcos(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Acos(1 - float64(i%1000)*1e-6)
	}
	_ = s
}
