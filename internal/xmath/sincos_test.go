package xmath

import (
	"math"
	"math/rand"
	"testing"
)

func eqBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestSincosBitIdentical sweeps the argument ranges the trace
// synthesizer produces plus every special case: exact zeros (both
// signs), denormals, small angles, full octant coverage, near-multiples
// of π/4, the Payne-Hanek fallback range, and non-finite inputs.
func TestSincosBitIdentical(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		ws, wc := math.Sincos(x)
		gs, gc := Sincos(x)
		if !eqBits(gs, ws) || !eqBits(gc, wc) {
			t.Fatalf("Sincos(%g): got (%x,%x) want (%x,%x)", x,
				math.Float64bits(gs), math.Float64bits(gc),
				math.Float64bits(ws), math.Float64bits(wc))
		}
	}

	for _, x := range []float64{
		0, math.Copysign(0, -1), 1e-308, -1e-308, 5e-324,
		0.1, -0.1, math.Pi / 4, math.Pi/4 - 1e-16, math.Pi/4 + 1e-16,
		math.Pi / 2, math.Pi, 3 * math.Pi / 2, 2 * math.Pi,
		1, -1, 2, -2, 3, -3, 100, -100, 1e6, -1e6,
		float64(reduceThreshold) - 1, float64(reduceThreshold),
		float64(reduceThreshold) + 1, 1e12, -1e12, 1e300,
		math.NaN(), math.Inf(1), math.Inf(-1),
	} {
		check(x)
	}
	// Every octant boundary ±ulps.
	for k := 0; k <= 16; k++ {
		b := float64(k) * math.Pi / 4
		for _, d := range []float64{0, 1e-18, -1e-18, 1e-9, -1e-9} {
			check(b + d)
			check(-(b + d))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500000; i++ {
		check((rng.Float64() - 0.5) * 20) // head-angle range
	}
	for i := 0; i < 200000; i++ {
		check((rng.Float64() - 0.5) * 2e9) // spans the reduce threshold
	}
}

// TestSincos3BitIdentical drives the batched entry point through mixed
// fast/fallback element combinations.
func TestSincos3BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specials := []float64{0, math.NaN(), math.Inf(1), 1e12, -3, 0.01}
	draw := func(i int) float64 {
		if i%7 == 0 {
			return specials[rng.Intn(len(specials))]
		}
		return (rng.Float64() - 0.5) * 20
	}
	for i := 0; i < 300000; i++ {
		a, b, c := draw(i), draw(i+1), draw(i+2)
		wsa, wca := math.Sincos(a)
		wsb, wcb := math.Sincos(b)
		wsc, wcc := math.Sincos(c)
		gsa, gca, gsb, gcb, gsc, gcc := Sincos3(a, b, c)
		if !eqBits(gsa, wsa) || !eqBits(gca, wca) ||
			!eqBits(gsb, wsb) || !eqBits(gcb, wcb) ||
			!eqBits(gsc, wsc) || !eqBits(gcc, wcc) {
			t.Fatalf("Sincos3(%g,%g,%g) diverges from math.Sincos", a, b, c)
		}
	}
}

func BenchmarkSincos3(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := float64(i%100) * 0.05
		sa, ca, sb, cb, sc, cc := Sincos3(x, 0.1*x, -0.05*x)
		s += sa + ca + sb + cb + sc + cc
	}
	_ = s
}

func BenchmarkStdSincos3(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := float64(i%100) * 0.05
		sa, ca := math.Sincos(x)
		sb, cb := math.Sincos(0.1 * x)
		sc, cc := math.Sincos(-0.05 * x)
		s += sa + ca + sb + cb + sc + cc
	}
	_ = s
}
